package predict

import (
	"testing"
)

// TestPredictorsAllocFree locks in the steady-state allocation contract
// of every predictor: after a warmup long enough to fill windows,
// histories, and internal scratch, one Observe+Predict step must not
// allocate at all. The per-tick simulation loop calls this pair once
// per zone per tick, so even a single allocation here multiplies into
// hundreds of thousands per run (the regression this guards against).
func TestPredictorsAllocFree(t *testing.T) {
	cases := []struct {
		name    string
		factory Factory
	}{
		{"LastValue", NewLastValue()},
		{"Average", NewAverage()},
		{"MovingAverage", NewMovingAverage(DefaultWindow)},
		{"ExpSmoothing", NewExpSmoothing(0.5, "Exp. smoothing 50%")},
		{"Holt", NewHolt(0.5, 0.3)},
		{"SlidingWindowMedian", NewSlidingWindowMedian(DefaultWindow)},
		{"SeasonalNaive", NewSeasonalNaive(24)},
		{"AR", NewAR(3, 8, 128)},
		{"Neural", NewNeural(PaperNeuralConfig(1))},
	}
	// A varying, non-constant signal so the AR refit and the neural
	// smoother take their general (not degenerate) code paths.
	signal := make([]float64, 256)
	for i := range signal {
		signal[i] = float64(100 + (i*37)%900)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.factory()
			// Warm up well past every internal buffer's fill point
			// (windows, AR history, neural input window, lazy scratch).
			for i := 0; i < 512; i++ {
				p.Observe(signal[i%len(signal)])
				_ = p.Predict()
			}
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				p.Observe(signal[i%len(signal)])
				_ = p.Predict()
				i++
			})
			if avg != 0 {
				t.Errorf("%s: Observe+Predict allocates %.2f objects/op in steady state, want 0", tc.name, avg)
			}
		})
	}
}

// TestZoneSetPredictEachIntoAllocFree guards the operator-side forecast
// path: reusing the previous result slice must make per-tick
// forecasting allocation-free.
func TestZoneSetPredictEachIntoAllocFree(t *testing.T) {
	z := NewZoneSet(NewLastValue(), 16)
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i)
	}
	if err := z.Observe(vals); err != nil {
		t.Fatal(err)
	}
	var dst []float64
	dst = z.PredictEachInto(dst)
	avg := testing.AllocsPerRun(100, func() {
		dst = z.PredictEachInto(dst)
	})
	if avg != 0 {
		t.Errorf("PredictEachInto allocates %.2f objects/op with a reused slice, want 0", avg)
	}
}
