package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// RequestPathReport is the cross-process request critical path: the
// client's round trip joined, request by request, with the daemon-side
// stages it decomposes into (queue wait, observe cycle, lease
// acquisition). Built by CrossProcess from a mmogload client trace and
// a mmogd server trace whose spans were chained with W3C traceparent.
type RequestPathReport struct {
	// ClientRequests / ServerRequests count the client.request and
	// daemon.request spans in their respective traces; Matched counts
	// the server requests whose recorded parent is a client span —
	// the requests the merged timeline can follow end to end.
	ClientRequests int
	ServerRequests int
	Matched        int

	// Stage latencies over the whole run (microseconds).
	ClientRTT LatencyDist // client.request: send -> final status, retries included
	QueueWait LatencyDist // daemon.queue_wait: accepted -> dequeued by the worker
	Observe   LatencyDist // daemon.observe: dequeue -> observe cycle finished
	Acquire   LatencyDist // operator.acquire: the lease-acquisition step
}

// argID reads a numeric span-ID argument from a trace event. Chrome
// trace args round-trip through JSON as float64, which is exact for
// the IDs the tracer mints (PID-prefixed, < 2^53).
func argID(ev TraceEvent, key string) (uint64, bool) {
	v, ok := ev.Args[key].(float64)
	if !ok {
		return 0, false
	}
	return uint64(v), true
}

// CrossProcess joins a client trace (cmd/mmogload -trace-out) with a
// server trace (cmd/mmogd -trace-out) into one timeline. daemon.request
// spans name their parent client span (propagated in the traceparent
// header), which both scores the match rate and anchors the clock
// alignment: the two processes rebase timestamps to their own first
// span, so the client events are shifted by the median observed
// client-request / server-request offset before merging. Client events
// come back with PID 2 so the viewer renders the two processes as
// separate tracks; server events keep PID 1 and their parent/span IDs,
// which stay collision-free thanks to the PID-prefixed ID bases.
func CrossProcess(client, server *Trace) (*RequestPathReport, []TraceEvent) {
	rp := &RequestPathReport{}

	clientBySpan := map[uint64]TraceEvent{}
	for _, ev := range client.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Name == "client.request" {
			rp.ClientRequests++
			rp.ClientRTT.observe(ev.Dur)
			if id, ok := argID(ev, "span"); ok {
				clientBySpan[id] = ev
			}
		}
	}

	var offsets []float64
	for _, ev := range server.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "daemon.request":
			rp.ServerRequests++
			if parent, ok := argID(ev, "parent"); ok {
				if c, hit := clientBySpan[parent]; hit {
					rp.Matched++
					offsets = append(offsets, c.TS-ev.TS)
				}
			}
		case "daemon.queue_wait":
			rp.QueueWait.observe(ev.Dur)
		case "daemon.observe":
			rp.Observe.observe(ev.Dur)
		case "operator.acquire":
			rp.Acquire.observe(ev.Dur)
		}
	}
	rp.ClientRTT.finalize()
	rp.QueueWait.finalize()
	rp.Observe.finalize()
	rp.Acquire.finalize()

	// Median client->server offset: robust against the few requests
	// whose retries or shed responses skew the pairwise deltas.
	var shift float64
	if len(offsets) > 0 {
		sort.Float64s(offsets)
		shift = offsets[len(offsets)/2]
	}

	merged := make([]TraceEvent, 0, len(client.TraceEvents)+len(server.TraceEvents))
	merged = append(merged, server.TraceEvents...)
	for _, ev := range client.TraceEvents {
		ev.PID = 2
		ev.TS -= shift
		merged = append(merged, ev)
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].TS < merged[j].TS })
	return rp, merged
}

// WriteMergedTrace writes a merged timeline back out as a Chrome
// trace_event document, viewable like any single-process trace.
func WriteMergedTrace(w io.Writer, events []TraceEvent) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return err
}

// AttachRequestPath folds a cross-process merge into the report, with
// a consistency check that the traced client requests all reached the
// server trace (every accepted, shed, or rejected request produces a
// daemon.request span; only transport-failed ones may be missing).
func (rp *Report) AttachRequestPath(rpp *RequestPathReport) {
	rp.RequestPath = rpp
	rp.Checks = append(rp.Checks,
		check("cross-process trace: matched requests bounded by both traces",
			"true",
			fmt.Sprint(rpp.Matched <= rpp.ClientRequests && rpp.Matched <= rpp.ServerRequests)))
}
