// Command scrape is a minimal HTTP client-to-stdout used by the shell
// smokes when curl is not installed: it fetches one URL and writes the
// body to stdout, failing on any non-2xx status. With -post <file> it
// POSTs the file's bytes as application/json instead ("-" reads the
// body from stdin). No dependencies — `go run ./scripts/scrape <url>`.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	args := os.Args[1:]
	var bodyPath string
	if len(args) == 3 && args[0] == "-post" {
		bodyPath = args[1]
		args = args[2:]
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: scrape [-post <file|->] <url>")
		os.Exit(2)
	}
	url := args[0]

	client := &http.Client{Timeout: 30 * time.Second}
	var resp *http.Response
	var err error
	if bodyPath != "" {
		body := io.Reader(os.Stdin)
		if bodyPath != "-" {
			f, ferr := os.Open(bodyPath)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, ferr)
				os.Exit(1)
			}
			defer f.Close()
			body = f
		}
		resp, err = client.Post(url, "application/json", body)
	} else {
		resp, err = client.Get(url)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		// Surface the typed error body before failing — the smokes
		// grep stderr to assert rejections.
		io.Copy(os.Stderr, resp.Body)
		fmt.Fprintf(os.Stderr, "scrape: %s -> %s\n", url, resp.Status)
		os.Exit(1)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
