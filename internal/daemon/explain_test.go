package daemon

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"mmogdc/internal/ecosystem"
)

type explainDoc struct {
	Game      string               `json:"game"`
	Depth     int                  `json:"depth"`
	Count     int                  `json:"count"`
	Decisions []ecosystem.Decision `json:"decisions"`
}

func getExplain(t *testing.T, url string) (int, explainDoc) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc explainDoc
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("explain body: %v", err)
		}
	}
	return resp.StatusCode, doc
}

func TestExplainEndpoint(t *testing.T) {
	d := newTestDaemon(t, func(c *Config) { c.ExplainDepth = 4 })
	defer drain(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	for i := 0; i < 6; i++ {
		resp := postObserve(t, srv.URL, "g1", []float64{400 + float64(i*100), 50, 25})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("observe %d -> %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	waitTicks(t, d, "g1", 6)

	code, doc := getExplain(t, srv.URL+"/v1/explain?game=g1")
	if code != http.StatusOK {
		t.Fatalf("explain -> %d", code)
	}
	if doc.Game != "g1" || doc.Depth != 4 {
		t.Fatalf("doc header = %+v, want game g1 depth 4", doc)
	}
	if doc.Count == 0 || doc.Count > 4 || len(doc.Decisions) != doc.Count {
		t.Fatalf("count %d with %d decisions, want 1..4 and equal", doc.Count, len(doc.Decisions))
	}
	for i, dec := range doc.Decisions {
		if dec.Tag != "g1" {
			t.Fatalf("decision %d tag = %q", i, dec.Tag)
		}
		if len(dec.Candidates) == 0 {
			t.Fatalf("decision %d has no candidate verdicts", i)
		}
		if i > 0 && dec.Seq <= doc.Decisions[i-1].Seq {
			t.Fatalf("decisions not oldest-first: seq %d after %d", dec.Seq, doc.Decisions[i-1].Seq)
		}
	}

	// A growing demand curve keeps allocating, so at least one record
	// must carry a grant.
	granted := false
	for _, dec := range doc.Decisions {
		for _, v := range dec.Candidates {
			if v.Disposition == ecosystem.DispGranted || v.Disposition == ecosystem.DispPartialTrimmed {
				granted = true
			}
		}
	}
	if !granted {
		t.Fatal("no granting disposition in any retained decision")
	}

	// Filters: an impossible tick matches nothing; the zone filter
	// keeps the operator's own tag.
	if _, filtered := getExplain(t, srv.URL+"/v1/explain?game=g1&tick=99999"); filtered.Count != 0 {
		t.Fatalf("tick filter kept %d decisions", filtered.Count)
	}
	if _, filtered := getExplain(t, srv.URL+"/v1/explain?game=g1&zone=g1"); filtered.Count != doc.Count {
		t.Fatalf("zone=g1 kept %d of %d", filtered.Count, doc.Count)
	}
	if _, filtered := getExplain(t, srv.URL+"/v1/explain?game=g1&zone=other"); filtered.Count != 0 {
		t.Fatalf("zone filter kept %d decisions", filtered.Count)
	}

	// Bad tick value and unknown game are typed errors.
	resp, err := http.Get(srv.URL + "/v1/explain?game=g1&tick=-3")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || decodeError(t, resp) != "bad_value" {
		t.Fatalf("negative tick -> %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/explain?game=nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown game -> %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestExplainDisabled(t *testing.T) {
	d := newTestDaemon(t, nil)
	defer drain(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/explain?game=g1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound || decodeError(t, resp) != "explain_disabled" {
		t.Fatalf("explain with depth 0 -> %d, want 404 explain_disabled", resp.StatusCode)
	}
}

func TestExplainCircuitOpenSynthesis(t *testing.T) {
	hot := fastHot()
	hot.BreakerThreshold = 2
	hot.BreakerCooldown = 100
	d := newTestDaemon(t, func(c *Config) {
		c.ExplainDepth = 8
		c.Hot = hot
	})
	defer drain(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Trip the eu circuit directly (both test centers live in it), then
	// push an observation: admission is refused with 503 and the
	// refusal must still be explainable.
	d.brk.record(nil, []string{"dc-a"})
	d.brk.record(nil, []string{"dc-a", "dc-b"})
	resp := postObserve(t, srv.URL, "g1", []float64{100, 50, 25})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("observe with open circuit -> %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	code, doc := getExplain(t, srv.URL+"/v1/explain?game=g1")
	if code != http.StatusOK || doc.Count != 1 {
		t.Fatalf("explain -> %d with %d decisions, want one synthesized record", code, doc.Count)
	}
	dec := doc.Decisions[0]
	if dec.Seq != 0 {
		t.Fatalf("synthesized decision seq = %d, want 0 (matcher never saw it)", dec.Seq)
	}
	if len(dec.Candidates) != 2 {
		t.Fatalf("got %d verdicts, want both region centers: %+v", len(dec.Candidates), dec.Candidates)
	}
	for i, v := range dec.Candidates {
		if v.Disposition != ecosystem.DispCircuitOpen {
			t.Fatalf("verdict %d = %+v, want circuit-open", i, v)
		}
	}
	if dec.Candidates[0].Center != "dc-a" || dec.Candidates[1].Center != "dc-b" {
		t.Fatalf("centers not sorted: %+v", dec.Candidates)
	}
}
