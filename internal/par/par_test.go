package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := New(workers)
			defer p.Close()
			for _, n := range []int{0, 1, 2, 7, 100, 1000} {
				hits := make([]int32, n)
				p.For(n, func(i int) {
					atomic.AddInt32(&hits[i], 1)
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("n=%d: index %d executed %d times", n, i, h)
					}
				}
			}
		})
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	if q := New(1); q.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", q.Workers())
	}
}

func TestPoolIsReusable(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		p.For(64, func(i int) { total.Add(1) })
	}
	if total.Load() != 50*64 {
		t.Fatalf("total = %d", total.Load())
	}
}

func TestConcurrentForCalls(t *testing.T) {
	p := New(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.For(100, func(i int) { total.Add(int64(i)) })
		}()
	}
	wg.Wait()
	if want := int64(8 * 100 * 99 / 2); total.Load() != want {
		t.Fatalf("total = %d, want %d", total.Load(), want)
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	p := New(2)
	defer p.Close()
	var total atomic.Int64
	p.For(8, func(i int) {
		p.For(8, func(j int) { total.Add(1) })
	})
	if total.Load() != 64 {
		t.Fatalf("total = %d", total.Load())
	}
}

func TestForPropagatesPanic(t *testing.T) {
	p := New(4)
	defer p.Close()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	p.For(100, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
	t.Fatal("For should have panicked")
}

func TestMapOrderAndError(t *testing.T) {
	p := New(4)
	defer p.Close()
	out, err := Map(p, 10, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	boom := errors.New("boom")
	if _, err := Map(p, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestSequentialPoolRunsInline(t *testing.T) {
	p := New(1)
	defer p.Close()
	// Order must be strictly 0..n-1 on the caller's goroutine.
	var got []int
	p.For(5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want in-order indices", got)
		}
	}
}

func TestPoolStats(t *testing.T) {
	// Sequential pool: every index is the caller's.
	seq := New(1)
	defer seq.Close()
	seq.For(7, func(int) {})
	seq.For(3, func(int) {})
	seq.For(0, func(int) {}) // empty loops are not For calls
	if s := seq.Stats(); s != (Stats{ForCalls: 2, CallerIndices: 10}) {
		t.Fatalf("sequential stats = %+v", s)
	}

	// Parallel pool: caller + helpers cover every index exactly once.
	p := New(4)
	defer p.Close()
	const rounds, n = 20, 64
	for r := 0; r < rounds; r++ {
		p.For(n, func(int) {})
	}
	s := p.Stats()
	if s.ForCalls != rounds {
		t.Fatalf("ForCalls = %d, want %d", s.ForCalls, rounds)
	}
	if got := s.CallerIndices + s.HelperIndices; got != rounds*n {
		t.Fatalf("caller+helper indices = %d, want %d (stats = %+v)", got, rounds*n, s)
	}
	if s.CallerIndices == 0 {
		t.Fatalf("caller never executed an index: %+v", s)
	}

	// Nested For: inner loops run on busy workers, so helper dispatches
	// are skipped and the indices still all execute.
	p2 := New(2)
	defer p2.Close()
	var inner atomic.Int64
	p2.For(2, func(int) {
		p2.For(8, func(int) { inner.Add(1) })
	})
	if inner.Load() != 16 {
		t.Fatalf("inner iterations = %d, want 16", inner.Load())
	}
	s2 := p2.Stats()
	if got := s2.CallerIndices + s2.HelperIndices; got != 2+16 {
		t.Fatalf("nested indices = %d, want 18 (stats = %+v)", got, s2)
	}
}

// TestForWorkerCoversEveryIndexWithValidWorker checks the worker-index
// variant: every index runs exactly once, worker IDs stay inside
// [0, Workers()), and the caller's goroutine is worker 0 on the
// sequential path.
func TestForWorkerCoversEveryIndexWithValidWorker(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		const n = 500
		var mu sync.Mutex
		count := make([]int, n)
		seen := map[int]bool{}
		p.ForWorker(n, func(i, w int) {
			if w < 0 || w >= p.Workers() {
				t.Errorf("workers=%d: worker index %d out of range", workers, w)
			}
			mu.Lock()
			count[i]++
			seen[w] = true
			mu.Unlock()
		})
		for i, c := range count {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
		if workers == 1 && (len(seen) != 1 || !seen[0]) {
			t.Fatalf("sequential pool used workers %v, want only 0", seen)
		}
		p.Close()
	}
}
