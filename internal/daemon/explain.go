package daemon

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"mmogdc/internal/ecosystem"
)

// Decision provenance for the service path: when Config.ExplainDepth
// is set, the daemon installs a decision log on the shared matcher and
// copies each game's per-tick Decision into a bounded per-game ring,
// which GET /v1/explain serves. Entries are deep copies taken under
// ecoMu right after the observe pass (the operator's LastDecision
// aliases matcher scratch, so this is the only safe moment), and the
// ring is bounded — enabling explain costs one ring of Decisions per
// game and nothing per request. Observations a region circuit breaker
// refuses never reach the matcher; handleObserve synthesizes a
// circuit-open decision for them so the refusal is explainable too.

// explainRing is a bounded ring of deep-copied decisions. Guarded by
// Daemon.ecoMu.
type explainRing struct {
	ring []ecosystem.Decision
	next int
	full bool
}

func newExplainRing(depth int) *explainRing {
	if depth < 1 {
		depth = 1
	}
	return &explainRing{ring: make([]ecosystem.Decision, depth)}
}

// push deep-copies d into the ring (d aliases matcher/log scratch).
func (e *explainRing) push(d *ecosystem.Decision) {
	slot := &e.ring[e.next]
	cands := append(slot.Candidates[:0], d.Candidates...)
	*slot = *d
	slot.Candidates = cands
	e.next++
	if e.next == len(e.ring) {
		e.next = 0
		e.full = true
	}
}

// snapshot copies the retained decisions out, oldest first.
func (e *explainRing) snapshot() []ecosystem.Decision {
	var src []ecosystem.Decision
	if e.full {
		src = append(src, e.ring[e.next:]...)
		src = append(src, e.ring[:e.next]...)
	} else {
		src = append(src, e.ring[:e.next]...)
	}
	for i := range src {
		src[i].Candidates = append([]ecosystem.CandidateVerdict(nil), src[i].Candidates...)
	}
	return src
}

// centersIn lists the centers of one failure domain, sorted for a
// deterministic synthesized verdict order.
func (b *breaker) centersIn(region string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for name, r := range b.centerRegion {
		if r == region {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// explainCircuitOpen records a synthesized decision for an observation
// the region breaker refused: every center of the gated region gets a
// circuit-open verdict. The matcher never saw the request, so Seq is 0
// and the tick is the game's admission counter (the tick the refused
// observation would have become).
func (d *Daemon) explainCircuitOpen(g *game, region string) {
	if g.explain == nil {
		return
	}
	dec := ecosystem.Decision{
		Tick: int(g.tick.Load()),
		Tag:  g.spec.Name,
	}
	for _, name := range d.brk.centersIn(region) {
		dec.Candidates = append(dec.Candidates, ecosystem.CandidateVerdict{
			Center:      name,
			Disposition: ecosystem.DispCircuitOpen,
		})
	}
	d.ecoMu.Lock()
	g.explain.push(&dec)
	d.ecoMu.Unlock()
}

// handleExplain serves GET /v1/explain?game=&zone=&tick=: the last-N
// decision records for one game, oldest first. tick filters to one
// provisioning tick; zone filters by the requesting tag (the embedded
// operator tags its requests with the game name, so for the daemon the
// two coincide — the parameter exists for decision streams imported
// from the per-zone simulation).
func (d *Daemon) handleExplain(w http.ResponseWriter, r *http.Request) {
	g := d.gameFor(w, r)
	if g == nil {
		return
	}
	if g.explain == nil {
		d.typedError(w, http.StatusNotFound, "explain_disabled",
			"decision provenance is off (start the daemon with -explain)")
		return
	}
	q := r.URL.Query()
	tickFilter := -1
	if s := q.Get("tick"); s != "" {
		t, err := strconv.Atoi(s)
		if err != nil || t < 0 {
			d.typedError(w, http.StatusBadRequest, "bad_value",
				"tick must be a non-negative integer")
			return
		}
		tickFilter = t
	}
	zone := q.Get("zone")

	d.ecoMu.Lock()
	decisions := g.explain.snapshot()
	d.ecoMu.Unlock()

	if tickFilter >= 0 || zone != "" {
		kept := decisions[:0]
		for _, dec := range decisions {
			if tickFilter >= 0 && dec.Tick != tickFilter {
				continue
			}
			if zone != "" && dec.Tag != zone {
				continue
			}
			kept = append(kept, dec)
		}
		decisions = kept
	}
	if decisions == nil {
		decisions = []ecosystem.Decision{}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(map[string]any{
		"game": g.spec.Name, "depth": len(g.explain.ring),
		"count": len(decisions), "decisions": decisions,
	})
}
