package predict

import (
	"math"

	"mmogdc/internal/neural"
)

// PretrainShared reproduces the paper's two offline phases for the
// per-sub-zone deployment (Section IV-C): the data-set collection
// phase gathers entity-count samples "for all sub-zones at equidistant
// time steps", and the training phase uses most of those samples as
// training sets and the rest as test sets, running training eras until
// the convergence criterion fires. One network is trained on the
// pooled samples of every sub-zone; the returned Factory hands each
// sub-zone a clone of the trained network that keeps adapting online.
//
// collected[z] is the collected signal of sub-zone z. The returned
// TrainResult reports the offline training outcome.
func PretrainShared(cfg NeuralConfig, collected [][]float64, trainFraction float64, tc neural.TrainConfig) (Factory, neural.TrainResult) {
	if cfg.Capacity == 0 {
		// Auto-calibrate the normalization to the collected signals so
		// the network operates in a well-scaled range.
		maxV := 1.0
		for _, signal := range collected {
			for _, v := range signal {
				if v > maxV {
					maxV = v
				}
			}
		}
		cfg.Capacity = maxV * 1.25
	}
	if cfg.OutputScale == 0 && !cfg.Direct {
		// Auto-calibrate the target scale so the normalized deltas the
		// network regresses on have a healthy RMS (~0.5); without this
		// the gradients on small sub-zone signals are vanishingly weak.
		var ss float64
		var n int
		for _, signal := range collected {
			for i := 1; i < len(signal); i++ {
				d := (signal[i] - signal[i-1]) / cfg.Capacity
				ss += d * d
				n++
			}
		}
		if n > 0 && ss > 0 {
			rms := math.Sqrt(ss / float64(n))
			cfg.OutputScale = 0.5 / rms
			if cfg.OutputScale > 200 {
				cfg.OutputScale = 200
			}
			if cfg.OutputScale < 1 {
				cfg.OutputScale = 1
			}
		}
	}
	proto := MustNeural(cfg)
	var samples []neural.Sample
	w := proto.cfg.Window
	for _, signal := range collected {
		for i := 0; i+w < len(signal); i++ {
			in := make([]float64, w)
			for j := 0; j < w; j++ {
				in[j] = proto.norm.Norm(signal[i+j])
			}
			in = proto.pre.Process(in)
			target := proto.norm.Norm(signal[i+w])
			if !cfg.Direct {
				target -= proto.norm.Norm(signal[i+w-1])
			}
			samples = append(samples, neural.Sample{
				In:     in,
				Target: []float64{target * proto.cfg.OutputScale},
			})
		}
	}
	var res neural.TrainResult
	if len(samples) > 0 {
		if trainFraction <= 0 || trainFraction > 1 {
			trainFraction = 0.8
		}
		split := int(float64(len(samples)) * trainFraction)
		if split < 1 {
			split = 1
		}
		res = proto.net.Fit(samples[:split], samples[split:], tc)
	}
	factory := func() Predictor {
		p := MustNeural(cfg)
		p.net = proto.net.Clone()
		return p
	}
	return factory, res
}
