package predict

import (
	"testing"
	"time"

	"mmogdc/internal/obs"
)

// TestTimePredictionsWithManualClock pins the timing harness itself:
// with a manual clock stepping 5µs per reading, every Predict call
// measures exactly 5µs, so the whole five-number summary is 5.0 —
// no hardware speed, scheduler noise, or clock resolution involved.
func TestTimePredictionsWithManualClock(t *testing.T) {
	clk := obs.NewManualClock(time.Unix(0, 0), 5*time.Microsecond)
	r := obs.NewRegistry()
	hist := r.Histogram("predict_seconds", "per-call prediction latency", obs.TimeBuckets)

	signal := make([]float64, 101)
	for i := range signal {
		signal[i] = float64(i % 7)
	}
	fn, err := TimePredictionsWith(NewLastValue(), signal, clk, hist)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{fn.Min, fn.Q1, fn.Median, fn.Q3, fn.Max} {
		if v != 5.0 {
			t.Fatalf("five-number summary not exactly 5µs everywhere: %+v", fn)
		}
	}
	// The histogram saw one observation per scored sample, in seconds.
	if hist.Count() != int64(len(signal)-1) {
		t.Fatalf("histogram count = %d, want %d", hist.Count(), len(signal)-1)
	}
	wantSum := float64(len(signal)-1) * 5e-6
	if diff := hist.Sum() - wantSum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("histogram sum = %v, want %v", hist.Sum(), wantSum)
	}

	// A nil histogram must be accepted (the default TimePredictions
	// path).
	if _, err := TimePredictionsWith(NewLastValue(), signal, clk, nil); err != nil {
		t.Fatal(err)
	}
}
