package experiments

import "mmogdc/internal/obs"

// clock times the micro-benchmarks in this package. It defaults to the
// wall clock; tests swap in an obs.ManualClock for exact, hardware-free
// timing assertions.
var clock obs.Clock = obs.System

// nowNano returns a monotonic nanosecond timestamp for micro-timing.
func nowNano() int64 { return clock.Now().UnixNano() }
