// End-to-end integration tests: the full pipeline from trace
// generation through predictor pretraining, ecosystem matching, and
// metric collection, exercised the way the cmd/ tools drive it.
package mmogdc

import (
	"bytes"
	"math"
	"testing"

	"mmogdc/internal/core"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

// TestEndToEndDynamicProvisioning runs the whole stack on a small but
// realistic configuration and checks the paper's headline claims hold
// on it.
func TestEndToEndDynamicProvisioning(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// 1. Two days of population data plus a one-day collection trace.
	dataset := trace.Generate(trace.Config{Seed: 11, Days: 2})
	shadow := trace.Generate(trace.Config{Seed: 12, Days: 1})
	collected := make([][]float64, len(shadow.Groups))
	for i, g := range shadow.Groups {
		collected[i] = g.Load.Values
	}

	// 2. The paper's neural predictor, offline-trained.
	neural, report := predict.PretrainShared(
		predict.PaperNeuralConfig(13), collected, 0.8, predict.PaperTrainConfig(14))
	if report.Eras == 0 {
		t.Fatal("offline training did not run")
	}

	// 3. The Table III ecosystem under HP-1/HP-2.
	game := mmog.NewGame("integration", mmog.GenreMMORPG)
	run := func(f predict.Factory) *core.Result {
		res, err := core.Run(core.Config{
			Centers:   datacenter.BuildCenters(datacenter.TableIIISites(), datacenter.Policies()[:2]),
			Workloads: []core.Workload{{Game: game, Dataset: dataset, Predictor: f}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	neuralRes := run(neural)
	averageRes := run(predict.NewAverage())

	static, err := core.Run(core.Config{
		Static:    true,
		Workloads: []core.Workload{{Game: game, Dataset: dataset}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Headline claim 1: dynamic provisioning over-allocates far less
	// than static.
	if neuralRes.AvgOverPct[datacenter.CPU] >= static.AvgOverPct[datacenter.CPU] {
		t.Errorf("dynamic over-allocation %.1f%% should beat static %.1f%%",
			neuralRes.AvgOverPct[datacenter.CPU], static.AvgOverPct[datacenter.CPU])
	}
	// Headline claim 2: the neural predictor disrupts game play far
	// less often than the cumulative-average strawman.
	if neuralRes.Events*10 > averageRes.Events {
		t.Errorf("neural events %d should be at least 10x below average's %d",
			neuralRes.Events, averageRes.Events)
	}
	// Sanity: the disruption level stays under the paper's 3%-of-ticks
	// bound for well-predicted dynamic provisioning.
	if float64(neuralRes.Events) > 0.03*float64(neuralRes.Ticks) {
		t.Errorf("neural events %d exceed 3%% of %d ticks", neuralRes.Events, neuralRes.Ticks)
	}
}

// TestEndToEndTraceRoundTripThroughSimulation serializes a trace to
// CSV, loads it back, and confirms the simulation produces identical
// metrics — the cmd/tracegen -> cmd/mmogsim workflow.
func TestEndToEndTraceRoundTripThroughSimulation(t *testing.T) {
	ds := trace.Generate(trace.Config{Seed: 21, Days: 1, Regions: []trace.Region{
		trace.DefaultRegions()[0],
	}})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	game := mmog.NewGame("roundtrip", mmog.GenreRPG)
	run := func(d *trace.Dataset) *core.Result {
		res, err := core.Run(core.Config{
			Centers: datacenter.BuildCenters(datacenter.TableIIISites(),
				[]datacenter.HostingPolicy{datacenter.OptimalPolicy()}),
			Workloads: []core.Workload{{Game: game, Dataset: d, Predictor: predict.NewLastValue()}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(ds), run(loaded)
	if a.Events != b.Events {
		t.Errorf("events differ after CSV round trip: %d vs %d", a.Events, b.Events)
	}
	// CSV stores one decimal per sample; the over-allocation averages
	// must agree tightly.
	if math.Abs(a.AvgOverPct[datacenter.CPU]-b.AvgOverPct[datacenter.CPU]) > 0.5 {
		t.Errorf("over-allocation differs after round trip: %v vs %v",
			a.AvgOverPct[datacenter.CPU], b.AvgOverPct[datacenter.CPU])
	}
}

// TestEndToEndLatencyConstrainedGame drives the geographic matching:
// a latency-bound game must be served only from admissible centers.
func TestEndToEndLatencyConstrainedGame(t *testing.T) {
	regions := []trace.Region{trace.DefaultRegions()[0]} // Europe only
	ds := trace.Generate(trace.Config{Seed: 31, Days: 1, Regions: regions})
	game := mmog.NewGame("latency", mmog.GenreFPS)
	game.LatencyKm = 1000 // very close: Europe only

	centers := datacenter.BuildCenters(datacenter.TableIIISites(),
		[]datacenter.HostingPolicy{datacenter.OptimalPolicy()})
	res, err := core.Run(core.Config{
		Centers:      centers,
		TrackCenters: true,
		Workloads:    []core.Workload{{Game: game, Dataset: ds, Predictor: predict.NewLastValue()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range centers {
		cs := res.CenterStats[c.Name]
		isEU := c.Name == "U.K. (1)" || c.Name == "U.K. (2)" ||
			c.Name == "Netherlands (1)" || c.Name == "Netherlands (2)" ||
			c.Name == "Finland (1)" || c.Name == "Finland (2)" ||
			c.Name == "Sweden (1)" || c.Name == "Sweden (2)"
		if !isEU && cs.AvgAllocatedCPU > 0 {
			t.Errorf("non-European center %s served a 1000km-bound European game (%.2f CPU)",
				c.Name, cs.AvgAllocatedCPU)
		}
	}
}
