package emulator_test

import (
	"fmt"

	"mmogdc/internal/emulator"
)

// Running one of the paper's Table I emulations: the data set carries
// per-sub-zone entity counts, the world total, and the interaction
// (co-located pair) counts, all at two-minute resolution.
func ExampleRun() {
	cfg := emulator.TableIConfigs()[0] // "Set 1": 80% aggressive players
	cfg.Steps = 10
	ds := emulator.Run(cfg)
	fmt.Printf("%s: %d sub-zones, %d steps\n", cfg.Name, len(ds.Zones), ds.Total.Len())
	fmt.Printf("signal class: Type %d\n", emulator.SignalTypeOf(cfg))
	// ds.Config carries the applied defaults (1800 entities).
	fmt.Printf("population bounded: %v\n", ds.Total.At(9) <= float64(ds.Config.Entities))
	// Output:
	// Set 1: 144 sub-zones, 10 steps
	// signal class: Type 3
	// population bounded: true
}

// Stepping a world manually, the way the live example monitors it.
func ExampleWorld_Step() {
	w := emulator.NewWorld(emulator.Config{
		Name: "demo", Seed: 7, GridW: 4, GridH: 4, Entities: 100,
		ProfileMix: [4]float64{50, 50, 0, 0},
		PeakLoad:   emulator.High, // full popularity: all 100 entities play
	})
	w.Step()
	counts := w.ZoneCounts()
	sum := 0
	for _, n := range counts {
		sum += n
	}
	fmt.Printf("%d zones hold %d active entities\n", len(counts), sum)
	fmt.Printf("interacting pairs counted: %v\n", w.InteractionCount() > 0)
	fmt.Printf("conserved: %v\n", sum == w.ActiveEntities())
	// Output:
	// 16 zones hold 100 active entities
	// interacting pairs counted: true
	// conserved: true
}
