package core

import (
	"strings"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/ecosystem"
	"mmogdc/internal/obs"
	"mmogdc/internal/par"
)

// runObs is the engine's observability harness: every instrument the
// tick loop publishes into, pre-registered so the hot path never takes
// the registry lock. It is strictly write-only with respect to the
// simulation — nothing in Run ever reads it back — so an obs-enabled
// run is bit-identical to a disabled one (TestObsRunBitIdentical).
// All methods are no-ops on a nil receiver; a disabled run makes no
// clock calls and allocates nothing (BenchmarkObsOverhead).
type runObs struct {
	o *obs.Obs

	// Per-phase tick timing (DESIGN.md §6 phases).
	tickDur      *obs.Histogram
	phaseObserve *obs.Histogram
	phaseReduce  *obs.Histogram
	phaseAcquire *obs.Histogram

	// Checkpoint latency, split into encode and write.
	ckptEncode *obs.Histogram
	ckptWrite  *obs.Histogram
	ckptWrites *obs.Counter

	// Provisioning counters (the Resilience bridge: incremented at the
	// same sites as the Result.Resilience fields).
	ticks          *obs.Counter
	disruptive     *obs.Counter
	unmet          *obs.Counter
	grants         *obs.Counter
	grantLeases    *obs.Counter
	failovers      *obs.Counter
	failoverLeases *obs.Counter
	retries        *obs.Counter
	rejections     *obs.Counter
	partialGrants  *obs.Counter
	droppedSamples *obs.Counter
	outagesFull    *obs.Counter
	outagesPartial *obs.Counter
	recoveries     *obs.Counter

	// Live-run gauges, set once per tick on the sequential reduce path.
	tickGauge *obs.Gauge
	allocCPU  *obs.Gauge
	loadCPU   *obs.Gauge
	overPct   *obs.Gauge
	underPct  *obs.Gauge

	// Worker-pool utilization, bridged from par.Stats deltas.
	poolCaller *obs.Counter
	poolHelper *obs.Counter
	poolSkips  *obs.Counter
	lastPool   par.Stats
}

// newRunObs registers the engine's metric families; a nil bundle
// disables everything.
func newRunObs(o *obs.Obs) *runObs {
	if o == nil {
		return nil
	}
	r := o.Registry
	ro := &runObs{o: o}

	ro.tickDur = r.Histogram("mmogdc_tick_duration_seconds",
		"Wall-clock duration of one full simulation tick.", obs.TimeBuckets)
	phase := func(name string) *obs.Histogram {
		return r.Histogram("mmogdc_tick_phase_duration_seconds",
			"Wall-clock duration of one tick phase (observe/predict, reduce, acquire).",
			obs.TimeBuckets, obs.L("phase", name))
	}
	ro.phaseObserve = phase("observe")
	ro.phaseReduce = phase("reduce")
	ro.phaseAcquire = phase("acquire")

	ro.ckptEncode = r.Histogram("mmogdc_checkpoint_encode_seconds",
		"Time to serialize the engine state into a checkpoint payload.", obs.TimeBuckets)
	ro.ckptWrite = r.Histogram("mmogdc_checkpoint_write_seconds",
		"Time to seal, fsync, and rename a checkpoint to disk.", obs.TimeBuckets)
	ro.ckptWrites = r.Counter("mmogdc_checkpoint_writes_total",
		"Checkpoints written to disk.")

	ro.ticks = r.Counter("mmogdc_ticks_total", "Scored simulation ticks.")
	ro.disruptive = r.Counter("mmogdc_disruptive_ticks_total",
		"Ticks with a significant under-allocation (|Y| > 1%) on any resource.")
	ro.unmet = r.Counter("mmogdc_unmet_ticks_total",
		"Ticks where the ecosystem could not serve the full demand.")
	ro.grants = r.Counter("mmogdc_grants_total",
		"Acquisitions that won at least one lease.")
	ro.grantLeases = r.Counter("mmogdc_grant_leases_total",
		"Leases acquired across all grants.")
	ro.failovers = r.Counter("mmogdc_failovers_total",
		"Zone-ticks that re-acquired capacity lost to a failed or degraded center.")
	ro.failoverLeases = r.Counter("mmogdc_failover_leases_total",
		"Leases won by failover re-acquisitions.")
	ro.retries = r.Counter("mmogdc_retries_total",
		"Backed-off re-attempts after injected grant rejections.")
	ro.rejections = r.Counter("mmogdc_rejections_total",
		"Grant attempts vetoed by the fault injector.")
	ro.partialGrants = r.Counter("mmogdc_partial_grants_total",
		"Grants the fault injector trimmed to a fraction.")
	ro.droppedSamples = r.Counter("mmogdc_dropped_samples_total",
		"Monitoring samples lost and carried forward (LOCF).")
	ro.outagesFull = r.Counter("mmogdc_outages_total",
		"Center outage events by kind.", obs.L("kind", "full"))
	ro.outagesPartial = r.Counter("mmogdc_outages_total",
		"Center outage events by kind.", obs.L("kind", "partial"))
	ro.recoveries = r.Counter("mmogdc_recoveries_total",
		"Center recovery events (full or partial capacity returning).")

	ro.tickGauge = r.Gauge("mmogdc_tick", "Current simulation tick.")
	ro.allocCPU = r.Gauge("mmogdc_allocated_cpu_units",
		"Total CPU units allocated at the last scored tick.")
	ro.loadCPU = r.Gauge("mmogdc_load_cpu_units",
		"Total CPU demand at the last scored tick.")
	ro.overPct = r.Gauge("mmogdc_over_allocation_pct",
		"CPU over-allocation beyond the load at the last scored tick (%).")
	ro.underPct = r.Gauge("mmogdc_under_allocation_pct",
		"CPU under-allocation at the last scored tick (%, <= 0).")

	ro.poolCaller = r.Counter("mmogdc_pool_indices_total",
		"Per-zone work items executed, by executor.", obs.L("executor", "caller"))
	ro.poolHelper = r.Counter("mmogdc_pool_indices_total",
		"Per-zone work items executed, by executor.", obs.L("executor", "helper"))
	ro.poolSkips = r.Counter("mmogdc_pool_helper_skips_total",
		"Helper dispatches skipped because every resident worker was busy.")
	return ro
}

// now reads the obs clock; the zero Time when disabled (no clock call).
func (ro *runObs) now() time.Time {
	if ro == nil {
		return time.Time{}
	}
	return ro.o.Now()
}

// observeDone, reduceDone, and acquireDone record one phase's
// duration. Phase selection happens inside the method: an argument of
// ro.phaseObserve at the call site would dereference a nil ro.
func (ro *runObs) observeDone(from, to time.Time) {
	if ro == nil {
		return
	}
	ro.phaseObserve.Observe(to.Sub(from).Seconds())
}

func (ro *runObs) reduceDone(from, to time.Time) {
	if ro == nil {
		return
	}
	ro.phaseReduce.Observe(to.Sub(from).Seconds())
}

func (ro *runObs) acquireDone(from, to time.Time) {
	if ro == nil {
		return
	}
	ro.phaseAcquire.Observe(to.Sub(from).Seconds())
}

// tickDone closes out one tick: total duration, gauges, tick counter,
// and the worker-pool utilization delta.
func (ro *runObs) tickDone(t int, from, to time.Time, allocCPU, loadCPU, overPct, underPct float64, pool *par.Pool) {
	if ro == nil {
		return
	}
	ro.tickDur.Observe(to.Sub(from).Seconds())
	ro.ticks.Inc()
	ro.tickGauge.Set(float64(t))
	ro.allocCPU.Set(allocCPU)
	ro.loadCPU.Set(loadCPU)
	ro.overPct.Set(overPct)
	ro.underPct.Set(underPct)
	s := pool.Stats()
	ro.poolCaller.Add(s.CallerIndices - ro.lastPool.CallerIndices)
	ro.poolHelper.Add(s.HelperIndices - ro.lastPool.HelperIndices)
	ro.poolSkips.Add(s.HelperSkips - ro.lastPool.HelperSkips)
	ro.lastPool = s
}

// outage records one center losing capacity (fraction is the share
// that vanished; >= 1 means fully offline).
func (ro *runObs) outage(t int, center string, fraction float64) {
	if ro == nil {
		return
	}
	if fraction >= 1 {
		ro.outagesFull.Inc()
		ro.o.Recorder.Record(obs.Event{Tick: t, Kind: obs.EventOutage, Subject: center})
	} else {
		ro.outagesPartial.Inc()
		ro.o.Recorder.Record(obs.Event{Tick: t, Kind: obs.EventDegrade, Subject: center, Value: fraction})
	}
}

// recovery records capacity returning to a center.
func (ro *runObs) recovery(t int, center string, fraction float64) {
	if ro == nil {
		return
	}
	ro.recoveries.Inc()
	kind := obs.EventRecover
	if fraction < 1 {
		kind = obs.EventRestore
	}
	ro.o.Recorder.Record(obs.Event{Tick: t, Kind: kind, Subject: center, Value: fraction})
}

// droppedSample records one monitoring dropout.
func (ro *runObs) droppedSample(t int, tag string) {
	if ro == nil {
		return
	}
	ro.droppedSamples.Inc()
	ro.o.Recorder.Record(obs.Event{Tick: t, Kind: obs.EventDropped, Subject: tag})
}

// retried records one backed-off re-attempt.
func (ro *runObs) retried(t int, tag string) {
	if ro == nil {
		return
	}
	ro.retries.Inc()
	ro.o.Recorder.Record(obs.Event{Tick: t, Kind: obs.EventRetry, Subject: tag})
}

// acquired records the outcome of one AllocateDetailed call: grants,
// injected rejections/trims, and the failover case.
func (ro *runObs) acquired(t int, tag string, leases []*datacenter.Lease, out ecosystem.Outcome, lost []string) {
	if ro == nil {
		return
	}
	ro.rejections.Add(int64(out.Rejections))
	ro.partialGrants.Add(int64(out.PartialGrants))
	if out.Rejections > 0 {
		ro.o.Recorder.Record(obs.Event{Tick: t, Kind: obs.EventRejection, Subject: tag, Value: float64(out.Rejections)})
	}
	if len(leases) > 0 {
		ro.grants.Inc()
		ro.grantLeases.Add(int64(len(leases)))
		cpu := 0.0
		for _, l := range leases {
			cpu += l.Alloc[datacenter.CPU]
		}
		ro.o.Recorder.Record(obs.Event{Tick: t, Kind: obs.EventGrant, Subject: tag, Value: cpu})
	}
	if len(lost) > 0 {
		ro.failovers.Inc()
		ro.failoverLeases.Add(int64(len(leases)))
		ro.o.Recorder.Record(obs.Event{
			Tick: t, Kind: obs.EventFailover, Subject: tag,
			Detail: "lost: " + strings.Join(lost, ","), Value: float64(len(leases)),
		})
	}
}

// disruptiveTick records one tick with a significant under-allocation.
func (ro *runObs) disruptiveTick() {
	if ro == nil {
		return
	}
	ro.disruptive.Inc()
}

// unmetTick records one tick with unserved demand.
func (ro *runObs) unmetTick() {
	if ro == nil {
		return
	}
	ro.unmet.Inc()
}

// resumed records a run picking up from a checkpoint.
func (ro *runObs) resumed(tick int) {
	if ro == nil {
		return
	}
	ro.o.Recorder.Record(obs.Event{Tick: tick, Kind: obs.EventResume, Value: float64(tick)})
}

// checkpointed records one checkpoint write: encode latency (encStart
// to encDone), write latency (encDone to done), size, and the event.
func (ro *runObs) checkpointed(t, bytes int, encStart, encDone, done time.Time) {
	if ro == nil {
		return
	}
	ro.ckptEncode.Observe(encDone.Sub(encStart).Seconds())
	ro.ckptWrite.Observe(done.Sub(encDone).Seconds())
	ro.ckptWrites.Inc()
	ro.o.Recorder.Record(obs.Event{Tick: t, Kind: obs.EventCheckpoint, Value: float64(bytes)})
}

// finish bridges the end-of-run aggregates that only exist as Result
// fields — per-center availability and the resilience summary — into
// gauges, so a scraped or dumped registry carries the whole story.
func (ro *runObs) finish(res *Result) {
	if ro == nil {
		return
	}
	r := ro.o.Registry
	resil := res.Resilience
	for name, avail := range resil.Availability {
		r.Gauge("mmogdc_center_availability",
			"Mean fraction of a center's capacity available over the run.",
			obs.L("center", name)).Set(avail)
	}
	r.Gauge("mmogdc_capacity_lost_cpu_ticks",
		"Tick-weighted CPU capacity unavailable to the ecosystem.").Set(resil.CapacityLostCPUTicks)
	r.Gauge("mmogdc_mean_time_to_recover_ticks",
		"Mean ticks from outage start to the next disruption-free tick.").Set(resil.MeanTimeToRecoverTicks)
	r.Gauge("mmogdc_service_recovered",
		"Outage windows after which service healed within the run.").Set(float64(resil.ServiceRecovered))
	r.Gauge("mmogdc_capacity_recovered",
		"Outage windows whose center returned to full health within the run.").Set(float64(resil.CapacityRecovered))
	r.Gauge("mmogdc_avg_over_allocation_pct",
		"Mean CPU over-allocation beyond the load over the run (%).").Set(res.AvgOverPct[datacenter.CPU])
	r.Gauge("mmogdc_avg_under_allocation_pct",
		"Mean CPU under-allocation over the run (%, <= 0).").Set(res.AvgUnderPct[datacenter.CPU])
	r.Gauge("mmogdc_resumed_from_tick",
		"Checkpoint tick this run resumed from (0 = fresh).").Set(float64(res.ResumedFromTick))
}
