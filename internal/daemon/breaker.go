package daemon

import (
	"sync"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
	"mmogdc/internal/obs"
)

// breakerState is one region circuit's position. The zero value is
// closed (healthy: observations flow).
type breakerState int

const (
	breakerClosed breakerState = iota
	// breakerOpen refuses observations for games homed in the region;
	// after BreakerCooldown refusals the next request is admitted as a
	// probe.
	breakerOpen
	// breakerHalfOpen has one probe in flight. A grant from the region
	// closes the circuit; a rejection reopens it. Admission behaves
	// like open (a probe whose tick never touches the region must not
	// wedge the circuit), so a fresh probe is admitted every
	// BreakerCooldown refusals until the region answers.
	breakerHalfOpen
)

// regionBreaker is one failure domain's circuit.
type regionBreaker struct {
	state       breakerState
	consecFails int // consecutive observe passes the region rejected
	denied      int // refusals since the circuit opened (probe pacing)

	gState *obs.Gauge
	mTrips *obs.Counter
}

// breaker is the daemon's per-region circuit breaker. Grant health is
// attributed to failure domains by mapping each center to its
// geo.RegionOf region; a region that rejects BreakerThreshold
// consecutive acquisition passes trips its circuit, and observations
// for games homed there are refused with a typed 503
// (region_unavailable) instead of queueing work the region cannot
// serve. The clock is request-driven — state advances only on recorded
// observe outcomes and counted refusals — so a fixed request sequence
// walks a fixed state sequence.
type breaker struct {
	d *Daemon

	mu           sync.Mutex
	regions      map[string]*regionBreaker
	centerRegion map[string]string
}

func newBreaker(d *Daemon, centers []*datacenter.Center) *breaker {
	b := &breaker{
		d:            d,
		regions:      make(map[string]*regionBreaker),
		centerRegion: make(map[string]string, len(centers)),
	}
	for _, c := range centers {
		region := geo.RegionOf(c.Location)
		b.centerRegion[c.Name] = region
		b.region(region)
	}
	return b
}

// region returns (registering on first sight) the named region's
// circuit. Callers hold b.mu or are inside newBreaker.
func (b *breaker) region(name string) *regionBreaker {
	rb := b.regions[name]
	if rb == nil {
		r := b.d.obs.Registry
		lr := obs.L("region", name)
		rb = &regionBreaker{
			gState: r.Gauge("mmogdc_daemon_breaker_state",
				"Region circuit state: 0 closed, 1 half-open, 2 open.", lr),
			mTrips: r.Counter("mmogdc_daemon_breaker_trips_total",
				"Times the region's circuit opened.", lr),
		}
		b.regions[name] = rb
	}
	return rb
}

func (rb *regionBreaker) set(s breakerState) {
	rb.state = s
	switch s {
	case breakerClosed:
		rb.gState.Set(0)
	case breakerHalfOpen:
		rb.gState.Set(1)
	case breakerOpen:
		rb.gState.Set(2)
	}
}

// allow decides whether an observation for a game homed in region may
// be admitted. A refusal is counted; every BreakerCooldown-th refusal
// on a non-closed circuit converts into a half-open probe admission.
func (b *breaker) allow(region string) bool {
	hot := b.d.hot.Load()
	if hot.BreakerThreshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	rb := b.regions[region]
	if rb == nil || rb.state == breakerClosed {
		return true
	}
	rb.denied++
	if rb.denied >= hot.BreakerCooldown {
		rb.denied = 0
		rb.set(breakerHalfOpen)
		return true
	}
	return false
}

// record ingests one observe pass's grant activity (center names from
// operator.GrantActivity). A region that granted anything is healthy:
// its failure streak resets and its circuit closes. A region that only
// rejected extends its streak; at BreakerThreshold the circuit trips
// (and a failed half-open probe re-trips immediately). Regions the
// pass never touched are left alone.
func (b *breaker) record(granted, rejected []string) {
	hot := b.d.hot.Load()
	if hot.BreakerThreshold <= 0 || (len(granted) == 0 && len(rejected) == 0) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ok := map[string]bool{}
	for _, name := range granted {
		if region, known := b.centerRegion[name]; known {
			ok[region] = true
		}
	}
	bad := map[string]bool{}
	for _, name := range rejected {
		if region, known := b.centerRegion[name]; known && !ok[region] {
			bad[region] = true
		}
	}
	for region := range ok {
		rb := b.region(region)
		rb.consecFails = 0
		rb.denied = 0
		if rb.state != breakerClosed {
			rb.set(breakerClosed)
		}
	}
	for region := range bad {
		rb := b.region(region)
		rb.consecFails++
		switch {
		case rb.state == breakerHalfOpen:
			// The probe itself was rejected: straight back to open.
			rb.denied = 0
			rb.mTrips.Inc()
			rb.set(breakerOpen)
		case rb.state == breakerClosed && rb.consecFails >= hot.BreakerThreshold:
			rb.denied = 0
			rb.mTrips.Inc()
			rb.set(breakerOpen)
		}
	}
}

// snapshotStates returns region → state for the ops surface and tests.
func (b *breaker) snapshotStates() map[string]breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]breakerState, len(b.regions))
	for name, rb := range b.regions {
		out[name] = rb.state
	}
	return out
}
