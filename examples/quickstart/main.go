// Quickstart: provision one MMOG dynamically for a simulated day.
//
// The example walks the full pipeline in ~60 lines: generate a
// population trace, describe the game (interaction model + latency
// tolerance), stand up a data-center ecosystem, pick a predictor, run
// the provisioning simulation, and read the paper's three metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mmogdc/internal/core"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

func main() {
	// 1. A day of RuneScape-like population data: five regions, ~125
	// server groups, sampled every two minutes.
	dataset := trace.Generate(trace.Config{Seed: 1, Days: 1})

	// 2. The game: an MMORPG whose per-zone cost follows the O(n^2)
	// interaction model, latency-tolerant enough for any data center.
	game := mmog.NewGame("quickstart", mmog.GenreMMORPG)

	// 3. The ecosystem: the paper's Table III sites (17 centers, 166
	// machines) renting under a well-fitted fine-grained policy.
	// (Swap in datacenter.Policies()[:2] for the mis-fitted HP-1/HP-2
	// setup of Table V to see policy-induced waste.)
	centers := datacenter.BuildCenters(datacenter.TableIIISites(),
		[]datacenter.HostingPolicy{datacenter.OptimalPolicy()})

	// 4. A load predictor per server group. Last-value is the
	// simplest useful choice; see examples/prediction for the neural
	// predictor.
	predictor := predict.NewLastValue()

	// 5. Run: every two minutes the operator predicts each group's
	// load, converts it into CPU/memory/network demand, and leases the
	// gap from the best-matching center.
	res, err := core.Run(core.Config{
		Centers:   centers,
		Workloads: []core.Workload{{Game: game, Dataset: dataset, Predictor: predictor}},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d two-minute ticks over %d server groups\n", res.Ticks, len(dataset.Groups))
	fmt.Printf("CPU over-allocation:  %6.1f%% (resources leased beyond the actual load)\n",
		res.AvgOverPct[datacenter.CPU])
	fmt.Printf("CPU under-allocation: %6.3f%% (load the leases failed to cover)\n",
		res.AvgUnderPct[datacenter.CPU])
	fmt.Printf("disruptive ticks (|Y|>1%%): %d\n", res.Events)

	// Compare against the static industry practice: dedicated
	// infrastructure sized for every group at full capacity.
	static, err := core.Run(core.Config{
		Static:    true,
		Workloads: []core.Workload{{Game: game, Dataset: dataset}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic over-allocation: %6.1f%% — dynamic provisioning is %.1fx more efficient\n",
		static.AvgOverPct[datacenter.CPU],
		static.AvgOverPct[datacenter.CPU]/res.AvgOverPct[datacenter.CPU])
}
