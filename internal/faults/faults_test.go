package faults

import (
	"testing"
)

func chaosConfig(seed uint64) Config {
	return Config{
		Seed:             seed,
		MTBFTicks:        40,
		MTTRTicks:        15,
		DegradedShare:    0.5,
		RejectProb:       0.1,
		PartialGrantProb: 0.1,
		DropoutProb:      0.05,
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{MTBFTicks: -1},
		{MTTRTicks: -1},
		{DegradedShare: 1.5},
		{RejectProb: -0.1},
		{PartialGrantProb: 2},
		{DropoutProb: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if err := chaosConfig(1).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config claims to inject")
	}
	for _, c := range []Config{
		{MTBFTicks: 10},
		{RejectProb: 0.1},
		{PartialGrantProb: 0.1},
		{DropoutProb: 0.1},
	} {
		if !c.Enabled() {
			t.Errorf("config %+v claims disabled", c)
		}
	}
}

func TestPlanDeterministicForSeed(t *testing.T) {
	centers := []string{"a", "b", "c"}
	for seed := uint64(1); seed <= 10; seed++ {
		p1 := NewPlan(chaosConfig(seed), centers, 720)
		p2 := NewPlan(chaosConfig(seed), centers, 720)
		o1, o2 := p1.Outages(), p2.Outages()
		if len(o1) != len(o2) {
			t.Fatalf("seed %d: outage counts differ (%d vs %d)", seed, len(o1), len(o2))
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("seed %d: outage %d differs: %+v vs %+v", seed, i, o1[i], o2[i])
			}
		}
	}
	// Different seeds should not reproduce the same schedule.
	a := NewPlan(chaosConfig(1), centers, 720).Outages()
	b := NewPlan(chaosConfig(2), centers, 720).Outages()
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same && len(a) > 0 {
		t.Fatal("seeds 1 and 2 generated identical non-empty schedules")
	}
}

func TestOutagesWellFormedAndRecoverInRun(t *testing.T) {
	centers := []string{"a", "b", "c", "d"}
	const ticks = 500
	for seed := uint64(1); seed <= 20; seed++ {
		p := NewPlan(chaosConfig(seed), centers, ticks)
		prev := -1
		for _, o := range p.Outages() {
			if o.Start < 1 || o.Start >= ticks-1 {
				t.Fatalf("seed %d: outage starts at %d outside (0, %d)", seed, o.Start, ticks-1)
			}
			if o.End <= o.Start {
				t.Fatalf("seed %d: outage [%d, %d) is empty", seed, o.Start, o.End)
			}
			if o.End > ticks-1 {
				t.Fatalf("seed %d: outage ends at %d, after the last tick %d — it never recovers", seed, o.End, ticks-1)
			}
			if o.Fraction <= 0 || o.Fraction > 1 {
				t.Fatalf("seed %d: outage fraction %v outside (0, 1]", seed, o.Fraction)
			}
			if o.Start < prev {
				t.Fatalf("seed %d: schedule not ordered by start tick", seed)
			}
			prev = o.Start
		}
	}
}

func TestOutagesPerCenterDoNotOverlap(t *testing.T) {
	// The generator resumes each center's clock at the previous outage's
	// end; overlap across centers is fine, within one center it is not.
	p := NewPlan(chaosConfig(7), []string{"a", "b"}, 2000)
	lastEnd := map[string]int{}
	for _, o := range p.Outages() {
		if o.Start < lastEnd[o.Center] {
			t.Fatalf("center %s: outage at %d starts before previous end %d", o.Center, o.Start, lastEnd[o.Center])
		}
		if o.End > lastEnd[o.Center] {
			lastEnd[o.Center] = o.End
		}
	}
}

func TestFailuresAtRecoveriesAtPartitionSchedule(t *testing.T) {
	p := NewPlan(chaosConfig(3), []string{"a", "b", "c"}, 720)
	fails, recovers := 0, 0
	for t2 := 0; t2 < 720; t2++ {
		fails += len(p.FailuresAt(t2))
		recovers += len(p.RecoveriesAt(t2))
	}
	n := len(p.Outages())
	if n == 0 {
		t.Fatal("chaos config generated no outages over 720 ticks")
	}
	if fails != n || recovers != n {
		t.Fatalf("schedule partition broken: %d outages, %d fail events, %d recover events", n, fails, recovers)
	}
}

func TestDropSampleIsPureAndRateBounded(t *testing.T) {
	p := NewPlan(Config{Seed: 9, DropoutProb: 0.1}, nil, 100)
	drops := 0
	const zones, ticks = 50, 400
	for z := 0; z < zones; z++ {
		for tick := 0; tick < ticks; tick++ {
			a := p.DropSample(z, tick)
			if a != p.DropSample(z, tick) {
				t.Fatalf("DropSample(%d, %d) is not pure", z, tick)
			}
			if a {
				drops++
			}
		}
	}
	rate := float64(drops) / (zones * ticks)
	if rate < 0.05 || rate > 0.15 {
		t.Fatalf("dropout rate %v far from configured 0.1", rate)
	}
	// Zero probability never drops.
	none := NewPlan(Config{Seed: 9}, nil, 100)
	for z := 0; z < 10; z++ {
		for tick := 0; tick < 50; tick++ {
			if none.DropSample(z, tick) {
				t.Fatal("DropoutProb 0 dropped a sample")
			}
		}
	}
}

func TestGrantFaultStreamDeterministic(t *testing.T) {
	run := func() (rejects, partials int, fracs []float64) {
		p := NewPlan(Config{Seed: 4, RejectProb: 0.2, PartialGrantProb: 0.3}, nil, 100)
		for i := 0; i < 500; i++ {
			rej, frac := p.GrantFault("dc")
			if rej {
				rejects++
				continue
			}
			if frac < 1 {
				partials++
				if frac < 0.25 || frac > 0.75 {
					t.Fatalf("partial grant fraction %v outside [0.25, 0.75]", frac)
				}
			}
			fracs = append(fracs, frac)
		}
		return
	}
	r1, p1, f1 := run()
	r2, p2, f2 := run()
	if r1 != r2 || p1 != p2 || len(f1) != len(f2) {
		t.Fatalf("grant streams diverged: %d/%d rejects, %d/%d partials", r1, r2, p1, p2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("grant fraction %d diverged: %v vs %v", i, f1[i], f2[i])
		}
	}
	if r1 == 0 || p1 == 0 {
		t.Fatalf("expected both rejects (%d) and partials (%d) over 500 attempts", r1, p1)
	}
}

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if p.Outages() != nil || p.FailuresAt(3) != nil || p.RecoveriesAt(3) != nil {
		t.Fatal("nil plan returned outages")
	}
	if p.DropSample(0, 0) {
		t.Fatal("nil plan dropped a sample")
	}
	if rej, frac := p.GrantFault("dc"); rej || frac != 1 {
		t.Fatal("nil plan faulted a grant")
	}
}

func TestValidateRejectsMTTRAtLeastMTBF(t *testing.T) {
	for _, c := range []Config{
		{MTBFTicks: 30, MTTRTicks: 30},
		{MTBFTicks: 30, MTTRTicks: 45},
		{MTBFTicks: 5}, // MTTR defaults to 10 >= 5
		{RegionMTBFTicks: 20, RegionMTTRTicks: 20},
		{RegionMTBFTicks: 8}, // region MTTR defaults to 10 >= 8
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("always-down config %+v accepted", c)
		}
	}
	for _, c := range []Config{
		{MTBFTicks: 30, MTTRTicks: 29},
		{MTBFTicks: 30}, // defaulted MTTR 10 < 30
		{RegionMTBFTicks: 150, RegionMTTRTicks: 25},
	} {
		if err := c.Validate(); err != nil {
			t.Errorf("valid config %+v rejected: %v", c, err)
		}
	}
}

func regionConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		Regions:         map[string]string{"a": "eu", "b": "eu", "c": "na"},
		RegionMTBFTicks: 100,
		RegionMTTRTicks: 20,
		AftershockProb:  0.5,
	}
}

func TestRegionBlackoutDownsWholeDomain(t *testing.T) {
	cfg := regionConfig(11)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	p := NewPlan(cfg, []string{"a", "b", "c"}, 2000)
	if len(p.Blackouts()) == 0 {
		t.Fatal("region process generated no blackouts over 2000 ticks")
	}
	// Every blackout must produce one full outage per member center of
	// the region, all sharing the window.
	for _, b := range p.Blackouts() {
		members := map[string]bool{}
		for _, o := range p.Outages() {
			if o.Region == b.Region && o.Start == b.Start && o.End == b.End && o.Fraction == 1 {
				members[o.Center] = true
			}
		}
		want := 2 // eu
		if b.Region == "na" {
			want = 1
		}
		if len(members) != want {
			t.Fatalf("blackout %+v downed %d centers, want %d", b, len(members), want)
		}
	}
	// Aftershocks are partial and tagged with the region.
	aftershocks := 0
	for _, o := range p.Outages() {
		if o.Region != "" && o.Fraction < 1 {
			aftershocks++
			if o.Fraction < 0.2 || o.Fraction > 0.8 {
				t.Fatalf("aftershock fraction %v outside [0.2, 0.8]", o.Fraction)
			}
		}
	}
	if aftershocks == 0 {
		t.Fatal("AftershockProb 0.5 produced no aftershocks")
	}
}

func TestScheduledBlackoutDeterministic(t *testing.T) {
	cfg := Config{
		Seed:    3,
		Regions: map[string]string{"a": "eu", "b": "eu"},
		ScheduledBlackouts: []RegionBlackout{
			{Region: "eu", Start: 100, Duration: 40},
		},
	}
	if !cfg.Enabled() || !cfg.CorrelatedEnabled() {
		t.Fatal("scheduled blackout config claims disabled")
	}
	p := NewPlan(cfg, []string{"a", "b"}, 720)
	bs := p.Blackouts()
	if len(bs) != 1 || bs[0] != (Blackout{Region: "eu", Start: 100, End: 140}) {
		t.Fatalf("unexpected blackouts %+v", bs)
	}
	if n := len(p.FailuresAt(100)); n != 2 {
		t.Fatalf("%d failures at blackout start, want 2", n)
	}
	if n := len(p.RecoveriesAt(140)); n != 2 {
		t.Fatalf("%d recoveries at blackout end, want 2", n)
	}
	if n := len(p.BlackoutsAt(100)); n != 1 {
		t.Fatalf("%d blackouts at 100, want 1", n)
	}
	if n := len(p.BlackoutRecoveriesAt(140)); n != 1 {
		t.Fatalf("%d blackout recoveries at 140, want 1", n)
	}
	// Clamped inside the run when the window runs off the end.
	late := NewPlan(Config{
		Seed:    3,
		Regions: map[string]string{"a": "eu"},
		ScheduledBlackouts: []RegionBlackout{
			{Region: "eu", Start: 700, Duration: 500},
		},
	}, []string{"a"}, 720)
	if bs := late.Blackouts(); len(bs) != 1 || bs[0].End != 719 {
		t.Fatalf("late blackout not clamped: %+v", bs)
	}
}

func TestRegionFaultsDoNotPerturbIndependentDraws(t *testing.T) {
	// The bit-identity contract: enabling the correlated layer must not
	// change a single draw of the per-center outage, crash, grant, or
	// dropout streams.
	centers := []string{"a", "b", "c"}
	base := chaosConfig(7)
	base.OperatorCrashMTBFTicks = 200
	withRegions := base
	withRegions.Regions = map[string]string{"a": "eu", "b": "eu", "c": "na"}
	withRegions.RegionMTBFTicks = 300
	withRegions.RegionMTTRTicks = 25
	withRegions.AftershockProb = 0.7
	withRegions.ScheduledBlackouts = []RegionBlackout{{Region: "na", Start: 50, Duration: 30}}

	p0 := NewPlan(base, centers, 2000)
	p1 := NewPlan(withRegions, centers, 2000)

	// Per-center outages (Region == "") identical in content and order.
	var ind0, ind1 []Outage
	for _, o := range p0.Outages() {
		ind0 = append(ind0, o)
	}
	for _, o := range p1.Outages() {
		if o.Region == "" {
			ind1 = append(ind1, o)
		}
	}
	if len(ind0) != len(ind1) {
		t.Fatalf("independent outage counts diverged: %d vs %d", len(ind0), len(ind1))
	}
	for i := range ind0 {
		if ind0[i] != ind1[i] {
			t.Fatalf("independent outage %d diverged: %+v vs %+v", i, ind0[i], ind1[i])
		}
	}
	// Crash schedule identical.
	c0, c1 := p0.OperatorCrashes(), p1.OperatorCrashes()
	if len(c0) != len(c1) {
		t.Fatalf("crash schedules diverged: %v vs %v", c0, c1)
	}
	for i := range c0 {
		if c0[i] != c1[i] {
			t.Fatalf("crash schedules diverged at %d: %v vs %v", i, c0, c1)
		}
	}
	// Grant stream identical.
	for i := 0; i < 200; i++ {
		r0, f0 := p0.GrantFault("dc")
		r1, f1 := p1.GrantFault("dc")
		if r0 != r1 || f0 != f1 {
			t.Fatalf("grant stream diverged at attempt %d", i)
		}
	}
	// Dropout hash identical.
	for z := 0; z < 10; z++ {
		for tick := 0; tick < 200; tick++ {
			if p0.DropSample(z, tick) != p1.DropSample(z, tick) {
				t.Fatalf("dropout stream diverged at (%d, %d)", z, tick)
			}
		}
	}
}

func TestRegionPlanDeterministicForSeed(t *testing.T) {
	centers := []string{"a", "b", "c"}
	for seed := uint64(1); seed <= 5; seed++ {
		p1 := NewPlan(regionConfig(seed), centers, 2000)
		p2 := NewPlan(regionConfig(seed), centers, 2000)
		o1, o2 := p1.Outages(), p2.Outages()
		if len(o1) != len(o2) {
			t.Fatalf("seed %d: outage counts differ", seed)
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("seed %d: outage %d differs: %+v vs %+v", seed, i, o1[i], o2[i])
			}
		}
		b1, b2 := p1.Blackouts(), p2.Blackouts()
		if len(b1) != len(b2) {
			t.Fatalf("seed %d: blackout counts differ", seed)
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("seed %d: blackout %d differs", seed, i)
			}
		}
	}
}
