package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden files:
//
//	go test ./internal/experiments -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden experiment outputs")

// goldenIDs lists the experiments whose quick-mode output is fully
// deterministic (seeded PRNGs only — no wall-clock timing). Timing
// experiments (fig06, ext03, ext09) and anything else that measures
// durations are excluded.
var goldenIDs = []string{
	"fig01", "fig02", "fig03", "fig04", "tab01",
	"tab05", "fig07", "fig08", "tab06", "fig09", "fig10",
	"fig11", "fig12", "fig13", "fig14", "tab07",
	"ext01", "ext02", "ext04", "ext05", "ext06", "ext07", "ext08", "ext11",
}

// TestGoldenOutputs pins the quick-mode reports byte-for-byte: any
// behavioral drift in the substrates shows up as a diff here before it
// silently reshapes the paper's tables. Regenerate deliberately with
// -update after intentional changes.
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden comparison")
	}
	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			spec, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := spec.Run(quick())
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, id+".txt")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Skipf("no golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from golden file %s;\nregenerate with -update if the change is intentional.\nfirst divergence: %s",
					path, firstDiff(got, string(want)))
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(a, b string) string {
	la, lb := splitLines(a), splitLines(b)
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return "line " + itoa(i+1) + ": got " + la[i] + " | want " + lb[i]
		}
	}
	if len(la) != len(lb) {
		return "length differs: " + itoa(len(la)) + " vs " + itoa(len(lb)) + " lines"
	}
	return "(identical?)"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
