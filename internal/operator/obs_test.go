package operator

import (
	"context"
	"math"
	"testing"
	"time"

	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/obs"
	"mmogdc/internal/predict"
)

// TestObsBridgesMetrics drives an operator with monitoring dropouts
// enabled and checks the registry counters land on exactly the values
// Metrics reports, and that enabling obs changes no metric.
func TestObsBridgesMetrics(t *testing.T) {
	run := func(o *obs.Obs) Metrics {
		op, err := New(Config{
			Game:      mmog.NewGame("op", mmog.GenreMMORPG),
			Origin:    geo.London,
			Predictor: predict.NewLastValue(),
			Matcher:   testMatcher(10),
			Obs:       o,
		})
		if err != nil {
			t.Fatal(err)
		}
		now := t0
		for i := 0; i < 30; i++ {
			loads := []float64{800, 600, 400}
			if i%7 == 3 {
				loads[1] = math.NaN() // monitoring dropout
			}
			if err := op.Observe(now, loads); err != nil {
				t.Fatal(err)
			}
			now = now.Add(2 * time.Minute)
		}
		return op.Metrics()
	}

	plain := run(nil)
	o := obs.New()
	instrumented := run(o)
	if plain != instrumented {
		t.Fatalf("obs changed operator metrics:\n%+v\n%+v", plain, instrumented)
	}

	r := o.Registry
	g := obs.L("game", "op")
	checks := []struct {
		name string
		got  int64
		want int
	}{
		{"mmogdc_operator_ticks_total", r.Counter("mmogdc_operator_ticks_total", "", g).Value(), instrumented.Ticks},
		{"mmogdc_operator_dropped_samples_total", r.Counter("mmogdc_operator_dropped_samples_total", "", g).Value(), instrumented.DroppedSamples},
		{"mmogdc_operator_rejections_total", r.Counter("mmogdc_operator_rejections_total", "", g).Value(), instrumented.Rejections},
		{"mmogdc_operator_retries_total", r.Counter("mmogdc_operator_retries_total", "", g).Value(), instrumented.Retries},
		{"mmogdc_operator_failovers_total", r.Counter("mmogdc_operator_failovers_total", "", g).Value(), instrumented.Failovers},
	}
	for _, c := range checks {
		if c.got != int64(c.want) {
			t.Errorf("%s = %d, want %d (Metrics parity)", c.name, c.got, c.want)
		}
	}
	if instrumented.DroppedSamples == 0 {
		t.Fatal("scenario never dropped a sample")
	}
	if h := r.Histogram("mmogdc_operator_observe_duration_seconds", "", obs.TimeBuckets, g); h.Count() != int64(instrumented.Ticks) {
		t.Errorf("observe duration count = %d, want %d", h.Count(), instrumented.Ticks)
	}
	if lg := r.Gauge("mmogdc_operator_load_cpu_units", "", g); lg.Value() <= 0 {
		t.Errorf("load gauge = %v, want > 0", lg.Value())
	}
	// The recorder saw the dropouts.
	sawDrop := false
	for _, e := range o.Recorder.Events() {
		if e.Kind == obs.EventDropped {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Error("flight recorder has no dropped-sample events")
	}
}

// TestObserveCtxSpanParent pins the request-tracing contract: a span
// ID stamped into the context (by the daemon's per-request span)
// becomes the parent of the operator.observe cycle span, and the
// operator.acquire span is that cycle's child — so a merged trace
// chains client request -> daemon -> observe -> acquire.
func TestObserveCtxSpanParent(t *testing.T) {
	o := obs.New()
	o.Clock = obs.NewManualClock(t0, time.Millisecond)
	o.EnableTracing(0)
	op, err := New(Config{
		Game:      mmog.NewGame("op", mmog.GenreMMORPG),
		Origin:    geo.London,
		Predictor: predict.NewLastValue(),
		Matcher:   testMatcher(10),
		Obs:       o,
	})
	if err != nil {
		t.Fatal(err)
	}

	const reqSpan = obs.SpanID(7777)
	ctx := obs.ContextWithSpan(context.Background(), reqSpan)
	// First observe with real demand: forecasts a shortfall and must
	// acquire leases, producing the acquire span.
	if err := op.ObserveCtx(ctx, t0, []float64{800, 600, 400}); err != nil {
		t.Fatal(err)
	}

	var observe, acquire *obs.SpanRec
	for _, r := range o.Tracer.Records() {
		r := r
		switch r.Name {
		case "operator.observe":
			observe = &r
		case "operator.acquire":
			acquire = &r
		}
	}
	if observe == nil || acquire == nil {
		t.Fatalf("missing spans: observe=%v acquire=%v", observe, acquire)
	}
	if observe.Parent != reqSpan {
		t.Fatalf("operator.observe parent = %d, want %d", observe.Parent, reqSpan)
	}
	if acquire.Parent != observe.ID {
		t.Fatalf("operator.acquire parent = %d, want observe span %d", acquire.Parent, observe.ID)
	}
	if acquire.Value < 1 {
		t.Fatalf("acquire span value (leases won) = %v, want >= 1", acquire.Value)
	}

	// Without a stamped context the cycle stays a root span.
	if err := op.ObserveCtx(context.Background(), t0.Add(2*time.Minute), []float64{800, 600, 400}); err != nil {
		t.Fatal(err)
	}
	recs := o.Tracer.Records()
	last := recs[len(recs)-1]
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Name == "operator.observe" {
			last = recs[i]
			break
		}
	}
	if last.Parent != 0 {
		t.Fatalf("unstamped observe cycle has parent %d", last.Parent)
	}
}
