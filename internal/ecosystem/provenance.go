// Decision provenance: an optional, bounded record of *why* each
// Allocate call granted what it granted. When a DecisionLog is
// installed, AllocateDetailed writes one Decision per request — the
// ordered candidate ranking with a typed per-candidate disposition —
// into a reusable ring, so the operator, the daemon's /v1/explain
// endpoint, and mmogaudit's why-chains can all walk an allocation
// back to the candidates that were passed over and the reason each
// was. Like every observability layer in this repo it is write-only
// and free when off: with no log installed the matching walk takes
// the exact same branches and allocates nothing extra.
package ecosystem

import "strings"

// Disposition classifies what the matching walk did with one
// candidate center. The values are untyped string constants, so every
// Decision shares the same interned backing — recording a disposition
// never allocates.
type Disposition string

// The disposition taxonomy. Every candidate a request could have used
// lands on exactly one of these; "unexplained" is deliberately absent
// (an audit that cannot resolve a disposition has found a bug, not a
// category).
const (
	// DispGranted: the center leased the full fitted grant.
	DispGranted Disposition = "granted"
	// DispPartialTrimmed: the injector trimmed the grant (or the trim
	// rounded it to zero) — the center served less than it could have.
	DispPartialTrimmed Disposition = "partial-trimmed"
	// DispNoCapacity: the center's free capacity fits no usable grant
	// (no whole CPU bulk available).
	DispNoCapacity Disposition = "no-capacity"
	// DispExcludedByFailover: the request's Exclude list named the
	// center — a failover refusing to lease back from the center that
	// just dropped the zone.
	DispExcludedByFailover Disposition = "excluded-by-failover"
	// DispOutOfLatencyClass: the center sits beyond the game's
	// latency tolerance (MaxDistanceKm).
	DispOutOfLatencyClass Disposition = "out-of-latency-class"
	// DispFaulted: the center accepted the grant but the lease call
	// itself failed (capacity raced away or the center is down).
	DispFaulted Disposition = "faulted"
	// DispRejectedByInjector: the fault injector vetoed the grant
	// outright.
	DispRejectedByInjector Disposition = "rejected-by-injector"
	// DispCircuitOpen: the daemon's region circuit breaker refused the
	// request before it reached the matcher. Synthesized by the daemon
	// at the admission boundary — the matcher itself never sees these
	// requests.
	DispCircuitOpen Disposition = "circuit-open"
	// DispNotNeeded: the candidate ranked after demand was already
	// met — admissible, but the walk never reached it.
	DispNotNeeded Disposition = "not-needed"
)

// CandidateVerdict is one candidate's fate in one matching walk.
type CandidateVerdict struct {
	// Center is the candidate center's name.
	Center string `json:"center"`
	// Rank is the candidate's 1-based position in the admissible
	// preference order, or 0 for centers filtered out before ranking
	// (excluded-by-failover, out-of-latency-class, circuit-open).
	Rank int `json:"rank"`
	// DistKm is the center's distance from the request origin.
	DistKm float64 `json:"dist_km"`
	// Disposition says what the walk did with the candidate.
	Disposition Disposition `json:"disposition"`
	// CPU is the CPU actually leased from the center (0 unless
	// granted or partial-trimmed).
	CPU float64 `json:"cpu"`
}

// Decision is the provenance record of one Allocate call: every
// center's verdict, in walk order (ranked candidates first, then the
// filtered ones), plus the residual demand.
type Decision struct {
	// Seq is the decision's position in the log's total order.
	Seq uint64 `json:"seq"`
	// Tick is the provisioning tick the caller stamped (the matcher
	// itself has no clock).
	Tick int `json:"tick"`
	// Tag is the requesting workload (Request.Tag).
	Tag string `json:"tag"`
	// UnmetCPU is the CPU demand left unserved after the walk.
	UnmetCPU float64 `json:"unmet_cpu"`
	// Candidates holds one verdict per considered center.
	Candidates []CandidateVerdict `json:"candidates"`
}

// WalkDetail renders the decision as the compact parseable form
// "center=disposition,center=disposition,..." that flight-recorder
// decision events carry in their Detail field. It allocates — callers
// on the disabled path must not reach it.
func (d *Decision) WalkDetail() string {
	var b strings.Builder
	for i := range d.Candidates {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(d.Candidates[i].Center)
		b.WriteByte('=')
		b.WriteString(string(d.Candidates[i].Disposition))
	}
	return b.String()
}

// DecisionLog is a bounded ring of Decisions. Entries are stored by
// value and their candidate slices reused in place, so steady-state
// recording allocates nothing once the ring has warmed up. A
// DecisionLog is not safe for concurrent use — it shares the
// matcher's single-owner discipline.
type DecisionLog struct {
	ring    []Decision
	next    int
	full    bool
	total   uint64
	cur     *Decision
	scratch []CandidateVerdict // filtered-center verdicts, appended after the ranked walk
}

// NewDecisionLog returns a log retaining the last capacity decisions
// (minimum 1).
func NewDecisionLog(capacity int) *DecisionLog {
	if capacity < 1 {
		capacity = 1
	}
	return &DecisionLog{ring: make([]Decision, capacity)}
}

// begin opens the next ring slot for a new decision, reusing its
// candidate slice.
func (l *DecisionLog) begin(tag string) *Decision {
	d := &l.ring[l.next]
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.total++
	d.Seq = l.total
	d.Tick = 0
	d.Tag = tag
	d.UnmetCPU = 0
	d.Candidates = d.Candidates[:0]
	l.cur = d
	return d
}

// Last returns the most recently recorded decision, or nil. The
// pointer aliases ring storage: it is valid until the ring wraps back
// onto it, and its candidate slice is reused then.
func (l *DecisionLog) Last() *Decision {
	if l.total == 0 {
		return nil
	}
	i := l.next - 1
	if i < 0 {
		i = len(l.ring) - 1
	}
	return &l.ring[i]
}

// Total returns how many decisions were ever recorded.
func (l *DecisionLog) Total() uint64 { return l.total }

// Snapshot deep-copies the retained decisions, oldest first.
func (l *DecisionLog) Snapshot() []Decision {
	var src []Decision
	if l.full {
		src = append(src, l.ring[l.next:]...)
		src = append(src, l.ring[:l.next]...)
	} else {
		src = append(src, l.ring[:l.next]...)
	}
	for i := range src {
		src[i].Candidates = append([]CandidateVerdict(nil), src[i].Candidates...)
	}
	return src
}
