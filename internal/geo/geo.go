// Package geo models the geographic side of the MMOG ecosystem: the
// locations of data centers and player regions, great-circle distances
// between them, and the paper's five latency-tolerance classes
// (Section V-E), which translate a game's latency tolerance into a
// maximal player-to-server distance.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle
// distances.
const EarthRadiusKm = 6371.0

// Point is a geographic coordinate in degrees.
type Point struct {
	LatDeg float64
	LonDeg float64
}

// DistanceKm returns the great-circle (haversine) distance between two
// points in kilometres.
func DistanceKm(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.LatDeg * degToRad
	lat2 := b.LatDeg * degToRad
	dLat := (b.LatDeg - a.LatDeg) * degToRad
	dLon := (b.LonDeg - a.LonDeg) * degToRad
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// LatencyClass is one of the paper's five maximal player-to-server
// distance classes (Section V-E).
type LatencyClass int

const (
	// SameLocation requires servers at the same location as the
	// players (d ≈ 0 km).
	SameLocation LatencyClass = iota
	// VeryClose allows servers within 1,000 km.
	VeryClose
	// Close allows servers within 2,000 km.
	Close
	// Far allows servers within 4,000 km.
	Far
	// VeryFar allows any server to serve any player.
	VeryFar
)

// AllLatencyClasses lists the classes in increasing tolerance order.
var AllLatencyClasses = []LatencyClass{SameLocation, VeryClose, Close, Far, VeryFar}

// sameLocationSlackKm treats co-located sites as "same location" even
// though their coordinates differ by a few kilometres.
const sameLocationSlackKm = 50

// MaxDistanceKm returns the maximal allowed player-to-server distance
// for the class. VeryFar returns +Inf.
func (c LatencyClass) MaxDistanceKm() float64 {
	switch c {
	case SameLocation:
		return sameLocationSlackKm
	case VeryClose:
		return 1000
	case Close:
		return 2000
	case Far:
		return 4000
	case VeryFar:
		return math.Inf(1)
	default:
		return math.Inf(1)
	}
}

// Admits reports whether a server at distance dKm may serve players
// under this latency class.
func (c LatencyClass) Admits(dKm float64) bool {
	return dKm <= c.MaxDistanceKm()
}

// String implements fmt.Stringer with the paper's labels.
func (c LatencyClass) String() string {
	switch c {
	case SameLocation:
		return "Same location (d≈0km)"
	case VeryClose:
		return "Very close (d<1000km)"
	case Close:
		return "Close (d<2000km)"
	case Far:
		return "Far (d<4000km)"
	case VeryFar:
		return "Very far (d>4000km)"
	default:
		return fmt.Sprintf("LatencyClass(%d)", int(c))
	}
}

// ClassOf returns the tightest latency class that admits dKm. The
// boundaries are inclusive, matching Admits: a server at exactly
// 1000 km is still VeryClose.
func ClassOf(dKm float64) LatencyClass {
	switch {
	case dKm <= sameLocationSlackKm:
		return SameLocation
	case dKm <= 1000:
		return VeryClose
	case dKm <= 2000:
		return Close
	case dKm <= 4000:
		return Far
	default:
		return VeryFar
	}
}

// RegionOf buckets a point into a named failure domain. Centers in the
// same region share power grids, backbone fiber, and weather, so the
// correlated-fault model (internal/faults) fails them together. The
// buckets cover the named locations below with continental granularity:
// "eu", "na-west", "na-east", "au". Anything outside those boxes falls
// back to a deterministic 30-degree grid cell ("cell(lat,lon)"), so the
// function is total and two centers at nearby coordinates land in the
// same domain.
func RegionOf(p Point) string {
	switch {
	case p.LatDeg > 35 && p.LonDeg >= -15 && p.LonDeg <= 45:
		return "eu"
	case p.LatDeg > 25 && p.LonDeg >= -130 && p.LonDeg < -100:
		return "na-west"
	case p.LatDeg > 25 && p.LonDeg >= -100 && p.LonDeg <= -60:
		return "na-east"
	case p.LatDeg < 0 && p.LonDeg > 100:
		return "au"
	default:
		return fmt.Sprintf("cell(%d,%d)",
			int(math.Floor(p.LatDeg/30)), int(math.Floor(p.LonDeg/30)))
	}
}

// Named well-known locations for the Table III experimental setup and
// the five RuneScape trace regions. Coordinates are approximate city
// centroids; only relative distances matter for the latency classes.
var (
	Helsinki   = Point{60.17, 24.94}
	Stockholm  = Point{59.33, 18.07}
	London     = Point{51.51, -0.13}
	Amsterdam  = Point{52.37, 4.90}
	SanJose    = Point{37.34, -121.89}
	Seattle    = Point{47.61, -122.33}
	Vancouver  = Point{49.28, -123.12}
	Chicago    = Point{41.88, -87.63}
	NewYork    = Point{40.71, -74.01}
	Ashburn    = Point{39.04, -77.49}
	Toronto    = Point{43.65, -79.38}
	Montreal   = Point{45.50, -73.57}
	Sydney     = Point{-33.87, 151.21}
	Melbourne  = Point{-37.81, 144.96}
	LosAngeles = Point{34.05, -118.24}
)
