package audit

import (
	"bytes"
	"strings"
	"testing"

	"mmogdc/internal/obs"
)

// span builds one complete-phase trace event with the tracer's arg
// schema (span/parent IDs as JSON numbers, i.e. float64 after decode).
func span(name string, ts, dur float64, id, parent uint64) TraceEvent {
	args := map[string]any{"span": float64(id)}
	if parent != 0 {
		args["parent"] = float64(parent)
	}
	return TraceEvent{Name: name, Cat: "t", Ph: "X", TS: ts, Dur: dur, PID: 1, Args: args}
}

func TestCrossProcessMergesAndScores(t *testing.T) {
	// Client: three requests; the third was never admitted (transport
	// failure), so the server trace has no daemon.request for it.
	client := &Trace{TraceEvents: []TraceEvent{
		span("client.request", 100, 50, 0x2000001, 0),
		span("client.request", 300, 40, 0x2000002, 0),
		span("client.request", 500, 45, 0x2000003, 0),
	}}
	// Server: two matched requests (parent = the client span), plus the
	// per-request pipeline stages. Server clock rebased differently —
	// its first request sits at TS 0 while the client's sits at 100.
	server := &Trace{TraceEvents: []TraceEvent{
		span("daemon.request", 0, 48, 0x1000001, 0x2000001),
		span("daemon.request", 200, 38, 0x1000002, 0x2000002),
		span("daemon.queue_wait", 10, 5, 0x1000003, 0x1000001),
		span("daemon.queue_wait", 210, 7, 0x1000004, 0x1000002),
		span("daemon.observe", 15, 20, 0x1000005, 0x1000001),
		span("daemon.observe", 217, 18, 0x1000006, 0x1000002),
		span("operator.acquire", 20, 10, 0x1000007, 0x1000005),
	}}

	rpp, merged := CrossProcess(client, server)
	if rpp.ClientRequests != 3 || rpp.ServerRequests != 2 || rpp.Matched != 2 {
		t.Fatalf("counts = client %d server %d matched %d, want 3/2/2",
			rpp.ClientRequests, rpp.ServerRequests, rpp.Matched)
	}
	if rpp.ClientRTT.Count != 3 || rpp.QueueWait.Count != 2 ||
		rpp.Observe.Count != 2 || rpp.Acquire.Count != 1 {
		t.Fatalf("stage counts = %d/%d/%d/%d, want 3/2/2/1",
			rpp.ClientRTT.Count, rpp.QueueWait.Count, rpp.Observe.Count, rpp.Acquire.Count)
	}
	if rpp.QueueWait.MeanUS != 6 {
		t.Fatalf("queue wait mean = %v, want 6", rpp.QueueWait.MeanUS)
	}

	if len(merged) != len(client.TraceEvents)+len(server.TraceEvents) {
		t.Fatalf("merged %d events, want %d", len(merged), 10)
	}
	// Both pairwise offsets are 100, so the median shift realigns the
	// client requests exactly onto their server requests; client events
	// move to PID 2, server events keep PID 1 and their IDs.
	for _, ev := range merged {
		switch ev.Name {
		case "client.request":
			if ev.PID != 2 {
				t.Fatalf("client event kept pid %d", ev.PID)
			}
			id, _ := argID(ev, "span")
			if id == 0x2000001 && ev.TS != 0 {
				t.Fatalf("client request 1 aligned to TS %v, want 0", ev.TS)
			}
		default:
			if ev.PID != 1 {
				t.Fatalf("server event %s moved to pid %d", ev.Name, ev.PID)
			}
		}
	}

	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, merged); err != nil {
		t.Fatal(err)
	}
	reparsed, err := LoadTrace(&buf)
	if err != nil {
		t.Fatalf("merged trace does not round-trip: %v", err)
	}
	if len(reparsed.TraceEvents) != len(merged) {
		t.Fatalf("round-trip lost events: %d != %d", len(reparsed.TraceEvents), len(merged))
	}

	rp := Analyze(nil, nil, nil)
	rp.AttachRequestPath(rpp)
	var out bytes.Buffer
	if err := rp.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matched requests: 2 (client 3, server 2)") {
		t.Fatalf("critical-path section missing:\n%s", out.String())
	}
}

// TestAlertQualityScoring pins the precision/recall/lag arithmetic: two
// episodes, one detected with lag 1, one missed, plus one false alarm
// outside any episode's window.
func TestAlertQualityScoring(t *testing.T) {
	events := []obs.Event{
		// Episode 1: ticks 10-12. Episode 2: ticks 40-41.
		{Tick: 10, Kind: obs.EventBreach, Subject: "g", Value: -5},
		{Tick: 11, Kind: obs.EventBreach, Subject: "g", Value: -6},
		{Tick: 12, Kind: obs.EventBreach, Subject: "g", Value: -4},
		{Tick: 40, Kind: obs.EventBreach, Subject: "g", Value: -2},
		{Tick: 41, Kind: obs.EventBreach, Subject: "g", Value: -2},
		// Fires inside episode 1 (lag 1), plus a false alarm at tick
		// 100, far past every episode's lookback-extended window.
		{Tick: 11, Kind: obs.EventSLOAlert, Subject: "r", Detail: "firing", Value: 3},
		{Tick: 30, Kind: obs.EventSLOAlert, Subject: "r", Detail: "resolved"},
		{Tick: 100, Kind: obs.EventSLOAlert, Subject: "r", Detail: "firing", Value: 2},
	}
	rp := Analyze(events, nil, nil)
	a := rp.Alerts
	if a == nil {
		t.Fatal("slo_alert events present but Alerts nil")
	}
	if a.Fired != 2 || a.TruePositives != 1 || a.Episodes != 2 || a.Detected != 1 {
		t.Fatalf("scoring = %+v, want fired 2, tp 1, episodes 2, detected 1", a)
	}
	if a.Precision() != 0.5 || a.Recall() != 0.5 {
		t.Fatalf("precision %v recall %v, want 0.5 / 0.5", a.Precision(), a.Recall())
	}
	if a.MeanLagTicks != 1 || a.MaxLagTicks != 1 {
		t.Fatalf("lag mean %v max %d, want 1 / 1", a.MeanLagTicks, a.MaxLagTicks)
	}

	var out bytes.Buffer
	if err := rp.Render(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"## Alert quality",
		"precision 0.500  recall 0.500",
		"detection lag ticks: mean 1.0  max 1",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}

	// Without slo_alert events the section must not exist at all.
	rp2 := Analyze(events[:5], nil, nil)
	if rp2.Alerts != nil {
		t.Fatal("Alerts non-nil without slo_alert events")
	}
	out.Reset()
	if err := rp2.Render(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Alert quality") {
		t.Fatal("alert-quality section rendered without an engine")
	}
}

// TestAttachLoadPerStatus pins the new accounting check: per-status
// counts must sum to the sample total when the breakdown is present.
func TestAttachLoadPerStatus(t *testing.T) {
	ld := &LoadReport{
		Game: "g", Samples: 10, Accepted: 7, Shed: 2, Rejected: 1,
		RTTByStatus: map[string]StatusQuantiles{
			"accepted": {Count: 7, LoadQuantiles: LoadQuantiles{P50MS: 1}},
			"shed":     {Count: 2, LoadQuantiles: LoadQuantiles{P50MS: 0.2}},
			"rejected": {Count: 1, LoadQuantiles: LoadQuantiles{P50MS: 0.1}},
		},
	}
	rp := Analyze(nil, nil, nil)
	rp.AttachLoad(ld)
	for _, c := range rp.Checks {
		if !c.OK {
			t.Fatalf("check %q failed: want %s got %s", c.Name, c.Want, c.Got)
		}
	}
	var out bytes.Buffer
	if err := rp.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "accepted (7):") {
		t.Fatalf("per-status RTT line missing:\n%s", out.String())
	}

	// A miscounted breakdown must fail the check.
	bad := *ld
	bad.RTTByStatus = map[string]StatusQuantiles{"accepted": {Count: 3}}
	rp2 := Analyze(nil, nil, nil)
	rp2.AttachLoad(&bad)
	found := false
	for _, c := range rp2.Checks {
		if strings.Contains(c.Name, "per-status") && !c.OK {
			found = true
		}
	}
	if !found {
		t.Fatal("miscounted per-status breakdown passed the accounting check")
	}
}
