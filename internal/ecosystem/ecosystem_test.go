package ecosystem

import (
	"math"
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
)

var t0 = time.Date(2007, 8, 18, 0, 0, 0, 0, time.UTC)

func mkPolicy(name string, cpuBulk float64, timeBulk time.Duration) datacenter.HostingPolicy {
	var b datacenter.Vector
	b[datacenter.CPU] = cpuBulk
	return datacenter.HostingPolicy{Name: name, Bulk: b, TimeBulk: timeBulk}
}

func cpuReq(tag string, units float64, origin geo.Point, maxKm float64) Request {
	var d datacenter.Vector
	d[datacenter.CPU] = units
	return Request{Tag: tag, Origin: origin, MaxDistanceKm: maxKm, Demand: d}
}

func TestAllocatePrefersFinerGrain(t *testing.T) {
	coarse := datacenter.NewCenter("coarse", geo.London, 10, mkPolicy("c", 1.0, time.Hour))
	fine := datacenter.NewCenter("fine", geo.London, 10, mkPolicy("f", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{coarse, fine})
	leases, unmet := m.Allocate(cpuReq("z", 0.6, geo.London, math.Inf(1)), t0)
	if !unmet.IsZero() {
		t.Fatalf("unmet = %v", unmet)
	}
	if len(leases) != 1 || leases[0].Center != fine {
		t.Fatalf("allocated from %v, want fine center", leases[0].Center.Name)
	}
	if leases[0].Alloc[datacenter.CPU] != 0.75 {
		t.Fatalf("alloc = %v", leases[0].Alloc[datacenter.CPU])
	}
}

func TestAllocatePrefersShorterTimeBulkOnGrainTie(t *testing.T) {
	long := datacenter.NewCenter("long", geo.London, 10, mkPolicy("l", 0.25, 24*time.Hour))
	short := datacenter.NewCenter("short", geo.London, 10, mkPolicy("s", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{long, short})
	leases, _ := m.Allocate(cpuReq("z", 0.5, geo.London, math.Inf(1)), t0)
	if leases[0].Center != short {
		t.Fatalf("allocated from %s, want short", leases[0].Center.Name)
	}
}

func TestAllocatePrefersCloserOnFullTie(t *testing.T) {
	far := datacenter.NewCenter("far", geo.Sydney, 10, mkPolicy("p", 0.25, time.Hour))
	near := datacenter.NewCenter("near", geo.Amsterdam, 10, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{far, near})
	leases, _ := m.Allocate(cpuReq("z", 0.5, geo.London, math.Inf(1)), t0)
	if leases[0].Center != near {
		t.Fatalf("allocated from %s, want near", leases[0].Center.Name)
	}
}

func TestAllocateRespectsLatencyTolerance(t *testing.T) {
	sydney := datacenter.NewCenter("sydney", geo.Sydney, 10, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{sydney})
	// London players with a 2,000 km budget cannot use Sydney.
	_, unmet := m.Allocate(cpuReq("z", 0.5, geo.London, 2000), t0)
	if unmet.IsZero() {
		t.Fatal("distant center should be inadmissible")
	}
	// Unbounded tolerance admits it.
	_, unmet = m.Allocate(cpuReq("z", 0.5, geo.London, math.Inf(1)), t0)
	if !unmet.IsZero() {
		t.Fatal("unbounded tolerance should be served")
	}
}

func TestAllocateSplitsAcrossCenters(t *testing.T) {
	// First center can host 1 CPU unit, demand is 1.5: the rest must
	// spill to the second.
	small := datacenter.NewCenter("small", geo.London, 1, mkPolicy("s", 0.25, time.Hour))
	big := datacenter.NewCenter("big", geo.London, 10, mkPolicy("b", 0.5, time.Hour))
	m := NewMatcher([]*datacenter.Center{small, big})
	leases, unmet := m.Allocate(cpuReq("z", 1.5, geo.London, math.Inf(1)), t0)
	if !unmet.IsZero() {
		t.Fatalf("unmet = %v", unmet)
	}
	if len(leases) != 2 {
		t.Fatalf("got %d leases, want a split", len(leases))
	}
	if leases[0].Center != small || leases[0].Alloc[datacenter.CPU] != 1.0 {
		t.Fatalf("first lease = %s %v", leases[0].Center.Name, leases[0].Alloc)
	}
	if leases[1].Center != big || leases[1].Alloc[datacenter.CPU] != 0.5 {
		t.Fatalf("second lease = %s %v", leases[1].Center.Name, leases[1].Alloc)
	}
}

func TestAllocateReportsUnmet(t *testing.T) {
	tiny := datacenter.NewCenter("tiny", geo.London, 1, mkPolicy("t", 0.5, time.Hour))
	m := NewMatcher([]*datacenter.Center{tiny})
	leases, unmet := m.Allocate(cpuReq("z", 3, geo.London, math.Inf(1)), t0)
	if len(leases) != 1 {
		t.Fatalf("leases = %d", len(leases))
	}
	if got := unmet[datacenter.CPU]; got != 2 {
		t.Fatalf("unmet CPU = %v, want 2", got)
	}
}

func TestAllocateZeroDemand(t *testing.T) {
	m := NewMatcher(nil)
	leases, unmet := m.Allocate(cpuReq("z", 0, geo.London, math.Inf(1)), t0)
	if leases != nil || !unmet.IsZero() {
		t.Fatal("zero demand should be a no-op")
	}
}

func TestAllocateNegativeDemandClamped(t *testing.T) {
	c := datacenter.NewCenter("c", geo.London, 2, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{c})
	var d datacenter.Vector
	d[datacenter.CPU] = -1
	d[datacenter.Memory] = -2
	leases, unmet := m.Allocate(Request{Tag: "z", Origin: geo.London, MaxDistanceKm: math.Inf(1), Demand: d}, t0)
	if leases != nil || !unmet.IsZero() {
		t.Fatal("negative demand should be a no-op")
	}
}

func TestCPULeadsTheGrant(t *testing.T) {
	// A center whose CPU is exhausted must not serve network-only
	// slices of a CPU-bearing request.
	c := datacenter.NewCenter("c", geo.London, 1, mkPolicy("p", 1.0, time.Hour))
	m := NewMatcher([]*datacenter.Center{c})
	if _, unmet := m.Allocate(cpuReq("a", 1, geo.London, math.Inf(1)), t0); !unmet.IsZero() {
		t.Fatal("first request should fit")
	}
	var d datacenter.Vector
	d[datacenter.CPU] = 1
	d[datacenter.ExtNetOut] = 0.5
	_, unmet := m.Allocate(Request{Tag: "b", Origin: geo.London, MaxDistanceKm: math.Inf(1), Demand: d}, t0)
	if unmet[datacenter.CPU] != 1 || unmet[datacenter.ExtNetOut] != 0.5 {
		t.Fatalf("unmet = %v, want full demand unmet", unmet)
	}
}

func TestExpireAcrossCenters(t *testing.T) {
	a := datacenter.NewCenter("a", geo.London, 2, mkPolicy("p", 0.25, time.Hour))
	b := datacenter.NewCenter("b", geo.London, 2, mkPolicy("p", 0.25, 2*time.Hour))
	m := NewMatcher([]*datacenter.Center{a, b})
	m.Allocate(cpuReq("z1", 0.5, geo.London, math.Inf(1)), t0)
	// Exhaust a's CPU so the second request lands on b.
	m.Allocate(cpuReq("z2", 1.5, geo.London, math.Inf(1)), t0)
	m.Allocate(cpuReq("z3", 1.0, geo.London, math.Inf(1)), t0)
	released := m.Expire(t0.Add(time.Hour))
	if released == 0 {
		t.Fatal("nothing expired after the short time bulk")
	}
	if got := a.Allocated()[datacenter.CPU]; got != 0 {
		t.Fatalf("center a still holds %v CPU", got)
	}
}

func TestFreeByCenter(t *testing.T) {
	a := datacenter.NewCenter("a", geo.London, 1, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{a})
	m.Allocate(cpuReq("z", 0.5, geo.London, math.Inf(1)), t0)
	free := m.FreeByCenter()
	if got := free["a"][datacenter.CPU]; got != 0.5 {
		t.Fatalf("free CPU = %v, want 0.5", got)
	}
}

func TestCoarsePoliciesPenalized(t *testing.T) {
	// The Section V-E effect in miniature: with enough fine-grained
	// capacity elsewhere, a coarse-policy center ends the day unused.
	coarse := datacenter.NewCenter("coarse", geo.London, 10, mkPolicy("c", 1.11, time.Hour))
	fine := datacenter.NewCenter("fine", geo.NewYork, 10, mkPolicy("f", 0.22, time.Hour))
	m := NewMatcher([]*datacenter.Center{coarse, fine})
	for i := 0; i < 8; i++ {
		_, unmet := m.Allocate(cpuReq("z", 0.4, geo.London, math.Inf(1)), t0)
		if !unmet.IsZero() {
			t.Fatalf("request %d unmet", i)
		}
	}
	if got := coarse.Allocated()[datacenter.CPU]; got != 0 {
		t.Fatalf("coarse center used (%v CPU) despite fine alternative", got)
	}
	if fine.Allocated()[datacenter.CPU] == 0 {
		t.Fatal("fine center unused")
	}
}
