package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"mmogdc/internal/core"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
	"mmogdc/internal/series"
)

// Extensions returns the experiments that go beyond the paper's
// evaluation: the future-work features Section VII announces and
// ablations of this reproduction's design choices.
func Extensions() []Spec {
	return []Spec{
		{ID: "ext01", Artifact: "Future work (Sec. V-F)",
			Title: "Prioritizing requests by MMOG interaction type under contention", Run: Ext01Priority},
		{ID: "ext02", Artifact: "Motivation (Sec. I)",
			Title: "Operating cost: static infrastructure vs dynamic rental", Run: Ext02Cost},
		{ID: "ext03", Artifact: "Predictor families (Sec. IV-A)",
			Title: "AR and seasonal predictors vs the paper's seven", Run: Ext03Predictors},
		{ID: "ext04", Artifact: "Service models (Sec. II-B)",
			Title: "Advance reservations vs purely reactive leasing", Run: Ext04Reservations},
		{ID: "ext05", Artifact: "Update models (Sec. II-A)",
			Title: "Empirical interaction-scaling exponents per profile mix", Run: Ext05Interaction},
		{ID: "ext06", Artifact: "Resource units (Sec. V-A)",
			Title: "Calibrating the ExtNet[out] unit from packet-level sessions", Run: Ext06Bandwidth},
		{ID: "ext07", Artifact: "Safety margin (Sec. V-C)",
			Title: "Sweeping the over-prediction margin against residual events", Run: Ext07Margin},
		{ID: "ext08", Artifact: "Resilience",
			Title: "Data-center outage injection and recovery", Run: Ext08Failure},
		{ID: "ext09", Artifact: "Forecast horizon",
			Title: "Multi-step-ahead forecast accuracy by predictor", Run: Ext09Horizon},
		{ID: "ext10", Artifact: "Resilience",
			Title: "Stochastic fault injection: dynamic vs static degradation", Run: Ext10Resilience},
		{ID: "ext11", Artifact: "Resilience",
			Title: "Correlated failure-domain scenario corpus with audit attribution", Run: Ext11Chaos},
	}
}

// Ext01Priority implements the paper's announced future work: "the
// impact of prioritizing the resource requests according to the
// interaction type of the MMOG". Three games (the Table VII types)
// share an ecosystem deliberately scaled down so capacity is
// contended; with prioritization, the compute-intensive games request
// first.
func Ext01Priority(o Options) (string, error) {
	opts := o.withDefaults()
	if !opts.Quick && opts.Days > 7 {
		opts.Days = 7
	}
	full := provisioningTrace(opts)
	neural := neuralFactory(opts)

	games := []*mmog.Game{
		{Name: "MMOG A", Update: mmog.UpdateNLogN, LatencyKm: math.Inf(1), Profile: mmog.DefaultProfile},
		{Name: "MMOG B", Update: mmog.UpdateQuadratic, LatencyKm: math.Inf(1), Profile: mmog.DefaultProfile},
		{Name: "MMOG C", Update: mmog.UpdateQuadraticLog, LatencyKm: math.Inf(1), Profile: mmog.DefaultProfile},
	}

	// A deliberately tight ecosystem: one-third of the Table III
	// machines, so the three operators contend for capacity.
	tightCenters := func() []*datacenter.Center {
		sites := datacenter.TableIIISites()
		for i := range sites {
			sites[i].Machines = (sites[i].Machines + 2) / 3
		}
		return datacenter.BuildCenters(sites, []datacenter.HostingPolicy{datacenter.OptimalPolicy()})
	}

	run := func(prioritize bool) (*core.Result, error) {
		workloads, err := splitWorkloads(full, games, [3]int{33, 33, 33}, neural)
		if err != nil {
			return nil, err
		}
		return core.Run(core.Config{
			Centers:                 tightCenters(),
			Workloads:               workloads,
			PrioritizeByInteraction: prioritize,
		})
	}

	base, err := run(false)
	if err != nil {
		return "", err
	}
	prio, err := run(true)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Extension 1 — interaction-type request prioritization under contention\n")
	b.WriteString("(three equal games on a 1/3-capacity ecosystem)\n\n")
	var rows [][]string
	for _, g := range games {
		rows = append(rows, []string{g.Name, g.Update.String(),
			f3(base.AvgUnderByGame[g.Name]), f3(prio.AvgUnderByGame[g.Name])})
	}
	b.WriteString(table([]string{"game", "interaction",
		"under [%] (fifo)", "under [%] (prioritized)"}, rows))
	fmt.Fprintf(&b, "\nEcosystem events: fifo %d, prioritized %d; unmet ticks: fifo %d, prioritized %d\n",
		base.Events, prio.Events, base.Unmet, prio.Unmet)
	b.WriteString("Prioritization shifts scarcity away from the games where a shortfall is\n")
	b.WriteString("steepest (the super-linear update models) onto the lighter titles.\n")
	return b.String(), nil
}

// Ext02Cost quantifies the paper's economic motivation: what the same
// two weeks of operation cost under static self-owned infrastructure
// vs dynamic rental, for each prediction algorithm. Rental is billed
// per lease at the centers' price tables; the static fleet is billed
// as owned machines around the clock at the same CPU rate.
func Ext02Cost(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	game := standardGame()
	neural := neuralFactory(opts)

	duration := time.Duration(ds.Samples()) * series.DefaultTick

	var b strings.Builder
	b.WriteString("Extension 2 — operating cost, static infrastructure vs dynamic rental\n")
	b.WriteString("(arbitrary currency; CPU 1.00/unit-hour, Mem 0.10, In 0.02, Out 0.15)\n\n")

	// Static fleet: one machine per server group (the group's peak
	// fits one machine), owned 24/7.
	staticMachines := float64(len(ds.Groups))
	staticAlloc := datacenter.PerMachineCapacity.Scale(staticMachines)
	staticCost := datacenter.DefaultPrices.AllocationCost(staticAlloc, duration)
	fmt.Fprintf(&b, "static fleet: %d machines around the clock -> cost %.0f\n\n", len(ds.Groups), staticCost)

	var rows [][]string
	for _, p := range tab5Predictors(neural) {
		centers := hp12Centers()
		res, err := core.Run(core.Config{
			Centers:   centers,
			Workloads: []core.Workload{{Game: game, Dataset: ds, Predictor: p.F}},
		})
		if err != nil {
			return "", err
		}
		cost := datacenter.TotalCostOf(centers)
		rows = append(rows, []string{p.Name, fmt.Sprintf("%.0f", cost),
			fmt.Sprintf("%.1f%%", cost/staticCost*100),
			fmt.Sprintf("%d", res.Events)})
	}
	b.WriteString(table([]string{"predictor", "rental cost", "of static cost", "events"}, rows))
	b.WriteString("\nDynamic rental costs a fraction of the dedicated fleet even under the\n")
	b.WriteString("mis-fitted HP-1/HP-2 policies — the economic version of Fig. 8.\n")
	return b.String(), nil
}

// Ext03Predictors evaluates the predictor families the paper discusses
// but does not implement — an autoregressive AR(p) model refit by
// Yule-Walker, and a seasonal-naive (diurnal template) predictor — on
// the population trace, next to the paper's seven. It also times them,
// quantifying Section IV-A's claim that the elaborated methods are
// "more time consuming and resource intensive".
func Ext03Predictors(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	zones := make([][]float64, len(ds.Groups))
	for i, g := range ds.Groups {
		zones[i] = g.Load.Values
	}
	neural := neuralFactory(opts)

	entries := []struct {
		name string
		f    predict.Factory
	}{
		{"Neural (pretrained)", neural},
		{"AR(6), refit hourly", predict.NewAR(6, 30, 4*series.DefaultTicksPerDay)},
		{"Holt (trend-corrected)", predict.NewHolt(0.5, 0.1)},
		{"Seasonal naive (24h)", predict.NewSeasonalNaive(series.DefaultTicksPerDay)},
		{"Last value", predict.NewLastValue()},
		{"Exp. smoothing 50%", predict.NewExpSmoothing(0.5, "Exp. smoothing 50%")},
	}

	var b strings.Builder
	b.WriteString("Extension 3 — predictor families beyond the paper's seven\n\n")
	var rows [][]string
	for _, e := range entries {
		errPct := predict.EvaluateZonesFrom(e.f, zones, 1)
		// Time the full per-sample path (Observe + Predict): the AR
		// model's cost lives in its periodic refits, not in the
		// forecast itself.
		timing, err := timeFullPrediction(e.f, zones[0])
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{e.name, f2(errPct), f3(timing.Median), f3(timing.Max)})
	}
	b.WriteString(table([]string{"predictor", "error [%]", "step median [µs]", "step max [µs]"}, rows))
	b.WriteString("\nMeasured trade-offs: the AR model concentrates its cost in periodic\n")
	b.WriteString("Yule-Walker refits (visible in the max column) and is competitive in\n")
	b.WriteString("accuracy on this trace — on 2026 hardware the paper's 2008 cost objection\n")
	b.WriteString("no longer bites, though the fixed linear structure cannot express the\n")
	b.WriteString("nonlinear conditioning the network learns. The seasonal template is cheap\n")
	b.WriteString("and strong on the pure diurnal cycle but blind to round-level dynamics\n")
	b.WriteString("and population events — the adaptivity argument of Section IV-A.\n")
	return b.String(), nil
}
