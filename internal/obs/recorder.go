package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured provisioning event for the flight recorder:
// what happened (Kind), to whom (Subject — a center name or zone tag),
// when (Tick), with an optional free-form Detail and numeric Value
// whose meaning depends on the kind (granted CPU units, outage
// fraction, checkpoint bytes, ...). Seq is the event's position in the
// recorder's total order (assigned by Record, starting at 1), so a
// JSONL replay stays totally ordered across ring overwrites; Span is
// the ID of the enclosing tracer span when tracing was on, so events
// and spans cross-reference.
type Event struct {
	Seq     uint64  `json:"seq"`
	Tick    int     `json:"tick"`
	Kind    string  `json:"kind"`
	Subject string  `json:"subject,omitempty"`
	Detail  string  `json:"detail,omitempty"`
	Value   float64 `json:"value,omitempty"`
	Span    SpanID  `json:"span,omitempty"`
}

// Event kinds recorded by the provisioning engines.
const (
	EventGrant      = "grant"          // leases acquired (Value: CPU units granted)
	EventRejection  = "rejection"      // injected grant rejections hit (Value: count)
	EventFailover   = "failover"       // same-tick re-acquisition of lost capacity (Value: leases won)
	EventRetry      = "retry"          // backed-off re-attempt after rejections
	EventOutage     = "outage"         // a center went fully offline
	EventDegrade    = "degrade"        // a center lost a fraction of machines (Value: surviving fraction)
	EventRecover    = "recover"        // a center returned to full health
	EventRestore    = "restore"        // partial capacity restored (Value: fraction back)
	EventDropped    = "dropped_sample" // a monitoring sample was lost (LOCF carried forward)
	EventCheckpoint = "checkpoint"     // a checkpoint was written (Value: payload bytes)
	EventResume     = "resume"         // the run resumed from a checkpoint (Value: tick)
	EventBreach     = "sla_breach"     // a tick with significant under-allocation (Value: worst Y%, <= 0)

	// Correlated-failure and graceful-degradation kinds (PR 8).
	EventRegionBlackout = "region_blackout"   // every center of a failure domain went dark (Subject: region)
	EventRegionRecover  = "region_recover"    // a blacked-out region's centers came back (Subject: region)
	EventBrownoutStart  = "brownout_start"    // surviving capacity < demand; priority shedding engaged (Value: demand−budget CPU)
	EventBrownoutEnd    = "brownout_end"      // capacity covers demand again; shedding disengaged
	EventShed           = "shed"              // a zone's demand was shed in brownout (Value: players shed)
	EventDeferred       = "failover_deferred" // storm control pushed a failover to a later tick (Value: retry tick)

	// SLO engine kind (PR 9).
	EventSLOAlert = "slo_alert" // a burn-rate rule fired or resolved (Subject: rule, Detail: "firing"/"resolved", Value: short-window burn)

	// Decision provenance kind (PR 10). Subject is the requesting
	// zone/game tag, Detail the per-candidate walk
	// ("center=disposition,..."), Value the DecisionLog sequence
	// number, Span the enclosing acquire span — the join key tying a
	// grant/failover event to the ranking that produced it.
	EventDecision = "decision"
)

// Recorder is a bounded ring buffer of Events — the flight recorder.
// When full, the oldest events are overwritten; Total and Dropped
// account for the loss. An optional sink receives every event as one
// JSON line at record time, for post-mortem replay of a whole run.
// All methods are safe on a nil receiver and for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	buf      []Event
	next     int // write cursor
	full     bool
	total    uint64
	sink     io.Writer
	sinkErrs uint64
}

// DefaultRecorderCapacity is the ring size NewRecorder uses for
// capacity <= 0.
const DefaultRecorderCapacity = 4096

// NewRecorder builds a recorder holding the last capacity events
// (DefaultRecorderCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// SetSink streams every subsequently recorded event to w as JSONL.
// Pass nil to detach. Write errors are counted (SinkErrs), never
// propagated — observability must not fail the run.
func (r *Recorder) SetSink(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = w
	r.mu.Unlock()
}

// Record appends one event, assigning its Seq (the recorder's total
// order, starting at 1) under the lock so retained events and sink
// lines share one numbering even after the ring wraps.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.Seq = r.total + 1
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	sink := r.sink
	if sink != nil {
		// Marshal inside the lock so sink lines keep record order.
		line, err := json.Marshal(e)
		if err == nil {
			line = append(line, '\n')
			_, err = sink.Write(line)
		}
		if err != nil {
			r.sinkErrs++
		}
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Total returns how many events were ever recorded.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// SinkErrs returns how many sink writes failed.
func (r *Recorder) SinkErrs() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErrs
}
