package operator

import (
	"fmt"
	"io"
	"time"

	"mmogdc/internal/checkpoint"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/predict"
)

// payloadKind stamps operator checkpoints so they can never be
// confused with the batch engine's (internal/core) snapshots.
const payloadKind = "mmogdc/operator@2"

// Snapshot serializes the operator's complete provisioning state: the
// per-zone predictors, tick counter and running metrics, the LOCF
// dropout buffer, the rejection-backoff state, and a descriptor for
// every live lease. Restoring it yields an operator whose subsequent
// forecasts are bit-identical to the uninterrupted one's.
//
// The raw payload pairs with checkpoint.Manager for atomic on-disk
// cadence saves; Checkpoint wraps it in the sealed self-validating
// framing for single-stream use.
func (o *Operator) Snapshot() ([]byte, error) {
	e := checkpoint.NewEnc()
	e.Str(payloadKind)
	e.Str(o.cfg.Game.Name)
	if o.zones == nil {
		e.Int(-1)
	} else {
		e.Int(o.zones.Len())
		zs, err := o.zones.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("operator: %w", err)
		}
		e.Bytes(zs)
	}
	e.Int(o.ticks)
	e.F64(o.shortfallSum)
	e.F64(o.overSum)
	e.Int(o.overTicks)
	e.Int(o.events)
	e.F64s(o.lastForecast)
	e.F64s(o.lastLoads)
	e.Int(o.droppedSamples)
	e.Int(o.failovers)
	e.Int(o.rejections)
	e.Int(o.partialGrants)
	e.Int(o.retries)
	e.Int(o.consecRejects)
	e.Int(o.retryAtTick)
	e.Int(o.failoversDeferred)
	e.Int(o.failoverAtTick)
	e.Int(o.nextFailoverOK)
	e.Int(len(o.pendingLost))
	for _, name := range o.pendingLost {
		e.Str(name)
	}
	live := 0
	for _, l := range o.leases {
		if !l.Released() {
			live++
		}
	}
	e.Int(live)
	for _, l := range o.leases {
		if l.Released() {
			continue // tombstones are transient failover hints, not state
		}
		e.Str(l.Center.Name)
		e.F64s(l.Alloc[:])
		e.Time(l.Start)
		e.Time(l.Expires)
		e.Str(l.Tag)
	}
	return e.Data(), nil
}

// Checkpoint writes the operator's state to w as one sealed
// (checksummed, versioned) blob.
func (o *Operator) Checkpoint(w io.Writer) error {
	payload, err := o.Snapshot()
	if err != nil {
		return err
	}
	if _, err := w.Write(checkpoint.Seal(payload)); err != nil {
		return fmt.Errorf("operator: checkpoint: %w", err)
	}
	return nil
}

// Reconciliation reports how a restored operator's checkpointed lease
// book was matched against the live ecosystem.
type Reconciliation struct {
	// Adopted leases survived the crash: a live lease with the same
	// center, allocation, and window still existed and was re-claimed.
	Adopted int
	// Lost leases did not survive (their center failed, shed them, or
	// disappeared from the configuration). Each leaves a tombstone that
	// steers the first post-restore tick's failover re-acquisition away
	// from the center that lost it.
	Lost int
	// Orphaned counts live ecosystem leases carrying this game's tag
	// that the checkpoint does not know — acquired between the
	// checkpoint and the crash. They are released back to their centers
	// so the restored operator does not double-provision.
	Orphaned int
}

// FromSnapshot rebuilds an operator from a raw Snapshot payload and
// reconciles its lease book against cfg.Matcher's live state. See
// Restore for the sealed-stream variant.
func FromSnapshot(cfg Config, payload []byte) (*Operator, *Reconciliation, error) {
	o, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	d := checkpoint.NewDec(payload)
	if kind := d.Str(); kind != payloadKind {
		if err := d.Err(); err != nil {
			return nil, nil, fmt.Errorf("operator: %w", err)
		}
		return nil, nil, fmt.Errorf("operator: checkpoint kind %q, want %q", kind, payloadKind)
	}
	if game := d.Str(); game != cfg.Game.Name {
		if err := d.Err(); err != nil {
			return nil, nil, fmt.Errorf("operator: %w", err)
		}
		return nil, nil, fmt.Errorf("operator: checkpoint for game %q, config is %q", game, cfg.Game.Name)
	}
	nz := d.Int()
	var zoneState []byte
	if nz >= 0 {
		zoneState = d.Bytes()
	}
	o.ticks = d.Int()
	o.shortfallSum = d.F64()
	o.overSum = d.F64()
	o.overTicks = d.Int()
	o.events = d.Int()
	o.lastForecast = d.F64s()
	o.lastLoads = d.F64s()
	o.droppedSamples = d.Int()
	o.failovers = d.Int()
	o.rejections = d.Int()
	o.partialGrants = d.Int()
	o.retries = d.Int()
	o.consecRejects = d.Int()
	o.retryAtTick = d.Int()
	o.failoversDeferred = d.Int()
	o.failoverAtTick = d.Int()
	o.nextFailoverOK = d.Int()
	nPending := d.Int()
	if err := d.Err(); err != nil {
		return nil, nil, fmt.Errorf("operator: %w", err)
	}
	if nPending < 0 || nPending > 1<<16 {
		return nil, nil, fmt.Errorf("operator: checkpoint parks %d failovers", nPending)
	}
	for i := 0; i < nPending; i++ {
		o.pendingLost = append(o.pendingLost, d.Str())
	}
	nLeases := d.Int()
	if err := d.Err(); err != nil {
		return nil, nil, fmt.Errorf("operator: %w", err)
	}
	type leaseRec struct {
		center       string
		alloc        datacenter.Vector
		start, until time.Time
		tag          string
	}
	recs := make([]leaseRec, nLeases)
	for i := range recs {
		recs[i].center = d.Str()
		alloc := d.F64s()
		recs[i].start = d.Time()
		recs[i].until = d.Time()
		recs[i].tag = d.Str()
		if d.Err() == nil {
			if len(alloc) != int(datacenter.NumResources) {
				return nil, nil, fmt.Errorf("operator: lease %d has %d resources", i, len(alloc))
			}
			copy(recs[i].alloc[:], alloc)
		}
	}
	if err := d.Close(); err != nil {
		return nil, nil, fmt.Errorf("operator: %w", err)
	}
	if nz >= 0 {
		o.zones = predict.NewZoneSet(cfg.Predictor, nz)
		if err := o.zones.Restore(zoneState); err != nil {
			return nil, nil, fmt.Errorf("operator: %w", err)
		}
		o.cleanBuf = make([]float64, nz)
		if len(o.lastLoads) != nz {
			return nil, nil, fmt.Errorf("operator: checkpoint has %d zones but %d load samples", nz, len(o.lastLoads))
		}
	}

	// Reconcile the checkpointed lease book against the live ecosystem.
	rec := &Reconciliation{}
	claimed := make(map[*datacenter.Lease]bool)
	for _, r := range recs {
		c := cfg.Matcher.CenterByName(r.center)
		var adopted *datacenter.Lease
		if c != nil {
			for _, l := range c.LeasesByTag(r.tag) {
				if !claimed[l] && l.Alloc == r.alloc &&
					l.Start.Equal(r.start) && l.Expires.Equal(r.until) {
					adopted = l
					break
				}
			}
		}
		if adopted != nil {
			claimed[adopted] = true
			o.leases = append(o.leases, adopted)
			rec.Adopted++
			continue
		}
		// The lease is gone — its center failed or shed it while the
		// operator was down (or the center left the configuration). A
		// tombstone makes the loss visible to the first Observe, which
		// fails the capacity over away from that center.
		o.leases = append(o.leases, datacenter.Tombstone(c, r.alloc, r.start, r.until, r.tag))
		rec.Lost++
	}
	// Leases the ecosystem holds under this game's tag that the
	// checkpoint predates: the crashed operator acquired them after its
	// last checkpoint. Release them — the restored operator will re-lease
	// what its (rewound) forecast actually demands.
	for _, c := range cfg.Matcher.Centers() {
		for _, l := range c.LeasesByTag(cfg.Game.Name) {
			if !claimed[l] {
				c.Release(l)
				rec.Orphaned++
			}
		}
	}
	return o, rec, nil
}

// Restore rebuilds an operator from a sealed checkpoint stream written
// by Checkpoint, rejecting corrupted or truncated data, and reconciles
// the restored lease book against the live ecosystem (see
// Reconciliation).
func Restore(cfg Config, r io.Reader) (*Operator, *Reconciliation, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("operator: restore: %w", err)
	}
	payload, err := checkpoint.Open(blob)
	if err != nil {
		return nil, nil, fmt.Errorf("operator: restore: %w", err)
	}
	return FromSnapshot(cfg, payload)
}

// Shutdown ends the session cleanly: every live lease is released back
// to its center, and, when w is non-nil, a final sealed checkpoint of
// the post-release state is flushed to it. A subsequent Restore from
// that checkpoint resumes the forecasting state with an empty lease
// book — exactly what a clean stop left behind.
func (o *Operator) Shutdown(now time.Time, w io.Writer) error {
	o.cfg.Matcher.Expire(now)
	for _, l := range o.leases {
		if !l.Released() && l.Center != nil {
			l.Center.Release(l)
		}
	}
	o.leases = o.leases[:0]
	if w == nil {
		return nil
	}
	return o.Checkpoint(w)
}
