package datacenter

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mmogdc/internal/geo"
)

var t0 = time.Date(2007, 8, 18, 0, 0, 0, 0, time.UTC)

func testPolicy() HostingPolicy {
	var b Vector
	b[CPU] = 0.25
	b[Memory] = 2
	return HostingPolicy{Name: "test", Bulk: b, TimeBulk: time.Hour}
}

func TestVectorOps(t *testing.T) {
	a := Vector{1, 2, 3, 4}
	b := Vector{4, 3, 2, 1}
	if a.Add(b) != (Vector{5, 5, 5, 5}) {
		t.Fatal("Add wrong")
	}
	if a.Sub(b) != (Vector{-3, -1, 1, 3}) {
		t.Fatal("Sub wrong")
	}
	if a.Scale(2) != (Vector{2, 4, 6, 8}) {
		t.Fatal("Scale wrong")
	}
	if a.Max(b) != (Vector{4, 3, 3, 4}) {
		t.Fatal("Max wrong")
	}
	if (Vector{-1, 2, -3, 0}).ClampNonNegative() != (Vector{0, 2, 0, 0}) {
		t.Fatal("Clamp wrong")
	}
	if !(Vector{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
	if !a.FitsWithin(a) || a.FitsWithin(Vector{0.5, 2, 3, 4}) {
		t.Fatal("FitsWithin wrong")
	}
}

func TestResourceStrings(t *testing.T) {
	want := map[Resource]string{
		CPU: "CPU", Memory: "Memory", ExtNetIn: "ExtNet[in]", ExtNetOut: "ExtNet[out]",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
	if Resource(9).String() != "Resource(9)" {
		t.Error("unknown resource label")
	}
}

func TestRoundUp(t *testing.T) {
	p := testPolicy()
	var req Vector
	req[CPU] = 0.3
	req[Memory] = 0.1
	req[ExtNetIn] = 0.7 // unconstrained
	got := p.RoundUp(req)
	if got[CPU] != 0.5 {
		t.Errorf("CPU rounded to %v, want 0.5", got[CPU])
	}
	if got[Memory] != 2 {
		t.Errorf("Memory rounded to %v, want 2 (one bulk)", got[Memory])
	}
	if got[ExtNetIn] != 0.7 {
		t.Errorf("unconstrained resource changed: %v", got[ExtNetIn])
	}
}

func TestRoundUpExactMultiple(t *testing.T) {
	p := testPolicy()
	var req Vector
	req[CPU] = 0.5
	if got := p.RoundUp(req); got[CPU] != 0.5 {
		t.Fatalf("exact multiple re-rounded: %v", got[CPU])
	}
}

func TestRoundUpNegativeAndZero(t *testing.T) {
	p := testPolicy()
	var req Vector
	req[CPU] = -3
	got := p.RoundUp(req)
	if got[CPU] != 0 {
		t.Fatalf("negative request should round to 0, got %v", got[CPU])
	}
	if !p.RoundUp(Vector{}).IsZero() {
		t.Fatal("zero request should stay zero")
	}
}

func TestRoundUpProperty(t *testing.T) {
	p := testPolicy()
	err := quick.Check(func(cpu, mem float64) bool {
		var req Vector
		req[CPU] = math.Abs(math.Mod(cpu, 100))
		req[Memory] = math.Abs(math.Mod(mem, 100))
		got := p.RoundUp(req)
		// Rounded >= requested, and within one bulk above.
		if got[CPU] < req[CPU]-1e-9 || got[CPU] > req[CPU]+0.25+1e-9 {
			return false
		}
		if got[Memory] < req[Memory]-1e-9 || got[Memory] > req[Memory]+2+1e-9 {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGrain(t *testing.T) {
	p := testPolicy()
	if p.Grain() != 0.25 {
		t.Fatalf("Grain = %v", p.Grain())
	}
	noCPU := HostingPolicy{Name: "x"}
	if !math.IsInf(noCPU.Grain(), 1) {
		t.Fatal("policy without CPU bulk should sort coarsest")
	}
}

func TestCenterLeaseLifecycle(t *testing.T) {
	c := NewCenter("dc", geo.London, 4, testPolicy())
	wantCap := PerMachineCapacity.Scale(4)
	if c.Capacity() != wantCap {
		t.Fatalf("capacity = %v", c.Capacity())
	}
	var req Vector
	req[CPU] = 0.6
	l, err := c.Lease(req, t0, "zone1")
	if err != nil {
		t.Fatal(err)
	}
	if l.Alloc[CPU] != 0.75 {
		t.Fatalf("leased CPU = %v, want 0.75", l.Alloc[CPU])
	}
	if !l.Active(t0) || !l.Active(t0.Add(59*time.Minute)) {
		t.Fatal("lease should be active within the hour")
	}
	if l.Active(t0.Add(time.Hour)) {
		t.Fatal("lease should end at expiry")
	}
	if c.Allocated()[CPU] != 0.75 {
		t.Fatalf("allocated = %v", c.Allocated())
	}
	if got := c.Free()[CPU]; got != 4-0.75 {
		t.Fatalf("free CPU = %v", got)
	}
	// Expiry releases.
	if n := c.Expire(t0.Add(30 * time.Minute)); n != 0 {
		t.Fatalf("early expire released %d leases", n)
	}
	if n := c.Expire(t0.Add(time.Hour)); n != 1 {
		t.Fatalf("expire released %d leases, want 1", n)
	}
	if !c.Allocated().IsZero() {
		t.Fatalf("allocated after expiry = %v", c.Allocated())
	}
	if c.ActiveLeases() != 0 {
		t.Fatal("lease list not cleaned")
	}
}

func TestCenterLeaseInsufficient(t *testing.T) {
	c := NewCenter("dc", geo.London, 1, testPolicy())
	var req Vector
	req[CPU] = 0.9
	if _, err := c.Lease(req, t0, "a"); err != nil {
		t.Fatal(err)
	}
	// 0.9 rounds to 1.0: the machine is full.
	if _, err := c.Lease(req, t0, "b"); err != ErrInsufficient {
		t.Fatalf("expected ErrInsufficient, got %v", err)
	}
}

func TestCenterLeaseEmptyRequest(t *testing.T) {
	c := NewCenter("dc", geo.London, 1, testPolicy())
	if _, err := c.Lease(Vector{}, t0, "x"); err == nil {
		t.Fatal("empty request should error")
	}
}

func TestCenterNeverOverAllocates(t *testing.T) {
	c := NewCenter("dc", geo.London, 2, testPolicy())
	now := t0
	issued := 0
	for i := 0; i < 100; i++ {
		var req Vector
		req[CPU] = 0.3
		if _, err := c.Lease(req, now, "z"); err == nil {
			issued++
		}
		if !c.Allocated().FitsWithin(c.Capacity()) {
			t.Fatalf("over-allocated at iteration %d: %v > %v", i, c.Allocated(), c.Capacity())
		}
	}
	// 2 machines / 0.5 units per lease = 4 leases maximum.
	if issued != 4 {
		t.Fatalf("issued %d leases, want 4", issued)
	}
}

func TestPoliciesTableIV(t *testing.T) {
	ps := Policies()
	if len(ps) != 11 {
		t.Fatalf("want 11 policies, got %d", len(ps))
	}
	cases := []struct {
		name    string
		cpu     float64
		minutes float64
	}{
		{"HP-1", 0.25, 360},
		{"HP-3", 0.22, 180},
		{"HP-7", 1.11, 180},
		{"HP-11", 0.37, 2880},
	}
	for _, c := range cases {
		p, err := PolicyByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Bulk[CPU] != c.cpu {
			t.Errorf("%s CPU bulk = %v, want %v", c.name, p.Bulk[CPU], c.cpu)
		}
		if p.TimeBulk.Minutes() != c.minutes {
			t.Errorf("%s time bulk = %v min, want %v", c.name, p.TimeBulk.Minutes(), c.minutes)
		}
	}
	// HP-1/2 bundle network, HP-3..11 do not.
	hp1, _ := PolicyByName("HP-1")
	if hp1.Bulk[ExtNetIn] != 6 || hp1.Bulk[ExtNetOut] != 0.33 {
		t.Errorf("HP-1 network bulks = %v/%v", hp1.Bulk[ExtNetIn], hp1.Bulk[ExtNetOut])
	}
	hp5, _ := PolicyByName("HP-5")
	if hp5.Bulk[ExtNetIn] != 0 || hp5.Bulk[ExtNetOut] != 0 {
		t.Error("HP-5 should not constrain network")
	}
	if _, err := PolicyByName("HP-99"); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestTableIIISites(t *testing.T) {
	sites := TableIIISites()
	totalMachines, totalCenters := 0, 0
	for _, s := range sites {
		totalMachines += s.Machines
		totalCenters += s.Centers
	}
	if totalMachines != 166 {
		t.Errorf("total machines = %d, want 166", totalMachines)
	}
	if totalCenters != 17 {
		t.Errorf("total centers = %d, want 17", totalCenters)
	}
	continents := map[string]bool{}
	for _, s := range sites {
		continents[s.Continent] = true
	}
	for _, want := range []string{"Europe", "North America", "Australia"} {
		if !continents[want] {
			t.Errorf("missing continent %s", want)
		}
	}
}

func TestBuildCenters(t *testing.T) {
	centers := BuildCenters(TableIIISites(), Policies()[:2])
	if len(centers) != 17 {
		t.Fatalf("built %d centers, want 17", len(centers))
	}
	if TotalMachines(centers) != 166 {
		t.Fatalf("total machines = %d", TotalMachines(centers))
	}
	// Two-center sites must split machines and alternate policies.
	byName := map[string]*Center{}
	for _, c := range centers {
		byName[c.Name] = c
	}
	uk1, uk2 := byName["U.K. (1)"], byName["U.K. (2)"]
	if uk1 == nil || uk2 == nil {
		t.Fatal("UK centers missing")
	}
	if uk1.Machines+uk2.Machines != 20 {
		t.Fatalf("UK machines = %d + %d", uk1.Machines, uk2.Machines)
	}
	if uk1.Policy.Name == uk2.Policy.Name {
		t.Fatal("same-site centers should alternate policies")
	}
}

func TestBuildCentersOddSplit(t *testing.T) {
	sites := []SiteSpec{{Name: "X", Location: geo.London, Centers: 2, Machines: 15}}
	centers := BuildCenters(sites, Policies()[:2])
	if centers[0].Machines != 8 || centers[1].Machines != 7 {
		t.Fatalf("odd split = %d/%d, want 8/7", centers[0].Machines, centers[1].Machines)
	}
}

func TestBuildCentersDefaultPolicies(t *testing.T) {
	centers := BuildCenters(TableIIISites()[:1], nil)
	if len(centers) != 2 {
		t.Fatal("default build failed")
	}
	if centers[0].Policy.Name != "HP-1" || centers[1].Policy.Name != "HP-2" {
		t.Fatalf("default policies = %s/%s", centers[0].Policy.Name, centers[1].Policy.Name)
	}
}

func TestFailAndRecover(t *testing.T) {
	c := NewCenter("dc", geo.London, 4, testPolicy())
	var req Vector
	req[CPU] = 0.5
	l, err := c.Lease(req, t0, "z")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve(req, t0.Add(2*time.Hour), "r"); err != nil {
		t.Fatal(err)
	}
	dropped := c.Fail()
	if len(dropped) != 2 {
		t.Fatalf("dropped = %d, want lease + reservation", len(dropped))
	}
	if l.Active(t0.Add(time.Minute)) {
		t.Fatal("lease survived the failure")
	}
	if !c.Allocated().IsZero() || c.Reservations() != 0 {
		t.Fatal("failed center retains state")
	}
	if !c.Offline() {
		t.Fatal("center not marked offline")
	}
	if _, err := c.Lease(req, t0.Add(time.Minute), "z"); err != ErrOffline {
		t.Fatalf("offline lease err = %v", err)
	}
	if _, err := c.Reserve(req, t0.Add(3*time.Hour), "r"); err != ErrOffline {
		t.Fatalf("offline reserve err = %v", err)
	}
	c.Recover()
	if c.Offline() {
		t.Fatal("center still offline after recovery")
	}
	if _, err := c.Lease(req, t0.Add(2*time.Minute), "z"); err != nil {
		t.Fatalf("post-recovery lease failed: %v", err)
	}
}

func TestOverlappingFailuresRefcounted(t *testing.T) {
	// Two overlapping failure windows: the center must stay offline
	// until BOTH have recovered. Before refcounting, the first Recover
	// flipped the center back online mid-outage.
	c := NewCenter("dc", geo.London, 4, testPolicy())
	var req Vector
	req[CPU] = 0.5
	if _, err := c.Lease(req, t0, "z"); err != nil {
		t.Fatal(err)
	}
	dropped := c.Fail()
	if len(dropped) != 1 {
		t.Fatalf("first failure dropped %d leases, want 1", len(dropped))
	}
	if nested := c.Fail(); nested != nil {
		t.Fatalf("nested failure dropped %d leases, want none (already dark)", len(nested))
	}
	c.Recover()
	if !c.Offline() {
		t.Fatal("center revived while the outer failure window is still open")
	}
	if c.AvailableFraction() != 0 {
		t.Fatalf("offline center reports %v available", c.AvailableFraction())
	}
	c.Recover()
	if c.Offline() {
		t.Fatal("center still offline after both windows recovered")
	}
	// A stray Recover on a healthy center must not underflow.
	c.Recover()
	if c.Offline() {
		t.Fatal("extra Recover corrupted the failure state")
	}
}

func TestDegradeShedsNewestFirst(t *testing.T) {
	c := NewCenter("dc", geo.London, 4, testPolicy())
	var req Vector
	req[CPU] = 1.0
	old, err := c.Lease(req, t0, "old")
	if err != nil {
		t.Fatal(err)
	}
	mid, err := c.Lease(req, t0, "mid")
	if err != nil {
		t.Fatal(err)
	}
	newest, err := c.Lease(req, t0, "new")
	if err != nil {
		t.Fatal(err)
	}
	// Losing half the machines leaves room for only two leases: the
	// newest is shed, the older two survive.
	shed := c.Degrade(0.5)
	if len(shed) != 1 || shed[0] != newest {
		t.Fatalf("degrade shed %d leases, want the newest only", len(shed))
	}
	if !old.Active(t0.Add(time.Minute)) || !mid.Active(t0.Add(time.Minute)) {
		t.Fatal("degradation shed an older lease")
	}
	if got := c.AvailableFraction(); got != 0.5 {
		t.Fatalf("available fraction = %v, want 0.5", got)
	}
	if got := c.EffectiveCapacity()[CPU]; got != 2 {
		t.Fatalf("effective capacity = %v, want 2", got)
	}
	for r, v := range c.Free() {
		if v < 0 {
			t.Fatalf("negative free %v for resource %v under degradation", v, Resource(r))
		}
	}
	if !c.Allocated().FitsWithin(c.EffectiveCapacity()) {
		t.Fatal("degraded center over-committed")
	}
	c.Restore(0.5)
	if got := c.AvailableFraction(); got != 1 {
		t.Fatalf("available fraction after restore = %v, want 1", got)
	}
	if got := c.Free()[CPU]; got != 2 {
		t.Fatalf("free CPU after restore = %v, want 2 (two leases still held)", got)
	}
}

func TestDegradeComposes(t *testing.T) {
	c := NewCenter("dc", geo.London, 10, testPolicy())
	c.Degrade(0.3)
	c.Degrade(0.3)
	if got := c.AvailableFraction(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("stacked degradations: available = %v, want 0.4", got)
	}
	c.Restore(0.3)
	if got := c.AvailableFraction(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("after first restore: available = %v, want 0.7", got)
	}
	c.Restore(0.3)
	if got := c.AvailableFraction(); got != 1 {
		t.Fatalf("after full restore: available = %v, want exactly 1", got)
	}

	// Raw-sum semantics: stacked degradations may exceed the whole
	// center; each Restore gives back exactly what its Degrade took.
	c.Degrade(0.8)
	c.Degrade(0.8)
	if got := c.AvailableFraction(); got != 0 {
		t.Fatalf("over-degraded center: available = %v, want 0", got)
	}
	c.Restore(0.8)
	if got := c.AvailableFraction(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("partial restore of over-degraded center: available = %v, want 0.2", got)
	}
	c.Restore(0.8)
	if got := c.AvailableFraction(); got != 1 {
		t.Fatalf("final restore: available = %v, want exactly 1", got)
	}
}

func TestFailDominatesDegrade(t *testing.T) {
	c := NewCenter("dc", geo.London, 4, testPolicy())
	c.Degrade(0.25)
	c.Fail()
	if got := c.AvailableFraction(); got != 0 {
		t.Fatalf("failed center reports %v available", got)
	}
	if !c.EffectiveCapacity().IsZero() {
		t.Fatalf("failed center reports effective capacity %v", c.EffectiveCapacity())
	}
	c.Recover()
	if got := c.AvailableFraction(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("recovered center: available = %v, want the standing degradation 0.75", got)
	}
	c.Restore(0.25)
	if got := c.AvailableFraction(); got != 1 {
		t.Fatalf("fully restored: available = %v", got)
	}
}
