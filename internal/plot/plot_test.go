package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasicShape(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		YLabel: "players",
		XLabel: "time",
		Width:  40,
		Height: 8,
		Series: []Series{{Name: "load", Values: []float64{0, 1, 2, 3, 4, 5, 6, 7}}},
	}
	out := c.Render()
	if !strings.Contains(out, "test chart") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* load") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "y: players") || !strings.Contains(out, "time") {
		t.Fatal("axis labels missing")
	}
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 8 {
		t.Fatalf("plot rows = %d, want 8", plotLines)
	}
}

func TestRenderMonotoneSeriesFillsCorners(t *testing.T) {
	c := Chart{Width: 20, Height: 5,
		Series: []Series{{Name: "ramp", Values: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}}}
	out := c.Render()
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Top row holds the max (right side), bottom row the min (left).
	top := rows[0]
	if !strings.Contains(top, "*") {
		t.Fatalf("top row empty: %q", top)
	}
	if strings.Index(top, "*") < len(top)/2 {
		t.Fatal("max of a ramp should plot on the right")
	}
}

func TestRenderMultiSeriesMarkers(t *testing.T) {
	c := Chart{Width: 30, Height: 6, Series: []Series{
		{Name: "a", Values: []float64{1, 1, 1}},
		{Name: "b", Values: []float64{2, 2, 2}},
	}}
	out := c.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("distinct markers missing")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Fatal("legend entries missing")
	}
}

func TestRenderEmptyAndDegenerate(t *testing.T) {
	if out := (&Chart{Title: "empty"}).Render(); !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart = %q", out)
	}
	out := (&Chart{Series: []Series{{Name: "nan", Values: []float64{math.NaN()}}}}).Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatal("all-NaN series should render as no data")
	}
	// Constant series must not divide by zero.
	out = (&Chart{Width: 10, Height: 4,
		Series: []Series{{Name: "c", Values: []float64{5, 5, 5}}}}).Render()
	if !strings.Contains(out, "*") {
		t.Fatal("constant series not plotted")
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	c := Chart{Width: 12, Height: 4, Series: []Series{
		{Name: "gappy", Values: []float64{1, math.NaN(), 3, math.Inf(1), 5}},
	}}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatal("finite points not plotted")
	}
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatal("non-finite values leaked into labels")
	}
}

func TestSampleAt(t *testing.T) {
	vals := []float64{0, 10, 20, 30}
	// Four columns over four samples: identity.
	for x := 0; x < 4; x++ {
		v, ok := sampleAt(vals, x, 4)
		if !ok || v != float64(x*10) {
			t.Fatalf("sampleAt(%d) = %v, %v", x, v, ok)
		}
	}
	// More columns than samples: later columns beyond data are not ok.
	if _, ok := sampleAt([]float64{1}, 3, 8); ok {
		t.Fatal("column beyond single sample should be not-ok")
	}
	if v, ok := sampleAt([]float64{1}, 0, 8); !ok || v != 1 {
		t.Fatal("first column should carry the single sample")
	}
	if _, ok := sampleAt(nil, 0, 8); ok {
		t.Fatal("empty series should be not-ok")
	}
}

func TestLine(t *testing.T) {
	out := Line("t", []float64{1, 2, 3})
	if !strings.Contains(out, "t") || !strings.Contains(out, "*") {
		t.Fatalf("Line output = %q", out)
	}
}

func TestHeatmapRender(t *testing.T) {
	h := Heatmap{
		Title:  "world",
		Rows:   2,
		Cols:   3,
		Values: []float64{0, 5, 10, 10, 5, 0},
	}
	out := h.Render()
	if !strings.Contains(out, "world") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "@@") {
		t.Fatal("max cell not rendered at full density")
	}
	if !strings.Contains(out, "scale:") {
		t.Fatal("scale legend missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 2 rows + scale
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestHeatmapInvalid(t *testing.T) {
	h := Heatmap{Rows: 2, Cols: 2, Values: []float64{1}}
	if out := h.Render(); !strings.Contains(out, "invalid") {
		t.Fatalf("bad dims rendered: %q", out)
	}
	empty := Heatmap{Rows: 1, Cols: 1, Values: []float64{math.NaN()}}
	if out := empty.Render(); !strings.Contains(out, "no data") {
		t.Fatalf("NaN-only heatmap: %q", out)
	}
}

func TestHeatmapConstant(t *testing.T) {
	h := Heatmap{Rows: 1, Cols: 2, Values: []float64{3, 3}}
	out := h.Render()
	if !strings.Contains(out, "@@@@") {
		t.Fatalf("constant non-zero map should render at full density: %q", out)
	}
	z := Heatmap{Rows: 1, Cols: 2, Values: []float64{0, 0}}
	rows := strings.Split(z.Render(), "\n")
	if strings.Contains(rows[0], "@") {
		t.Fatalf("all-zero map should be empty glyphs: %q", rows[0])
	}
}
