package series

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2007, 8, 18, 0, 0, 0, 0, time.UTC)

func TestNewAndAppend(t *testing.T) {
	s := New(DefaultTick, t0)
	if s.Len() != 0 {
		t.Fatalf("new series has %d samples", s.Len())
	}
	s.Append(1, 2, 3)
	if s.Len() != 3 || s.At(1) != 2 {
		t.Fatalf("after append: len=%d at(1)=%v", s.Len(), s.At(1))
	}
}

func TestAtOutOfRange(t *testing.T) {
	s := FromValues(DefaultTick, []float64{1})
	if !math.IsNaN(s.At(-1)) || !math.IsNaN(s.At(1)) {
		t.Fatal("out-of-range At should be NaN")
	}
}

func TestTimeAt(t *testing.T) {
	s := New(DefaultTick, t0)
	s.Append(0, 0, 0)
	if got := s.TimeAt(0); !got.Equal(t0) {
		t.Fatalf("TimeAt(0) = %v", got)
	}
	if got := s.TimeAt(30); !got.Equal(t0.Add(time.Hour)) {
		t.Fatalf("TimeAt(30) = %v, want start+1h", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := FromValues(DefaultTick, []float64{1, 2, 3})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Fatal("Clone aliases the original storage")
	}
}

func TestSlice(t *testing.T) {
	s := New(DefaultTick, t0)
	s.Append(0, 1, 2, 3, 4, 5)
	v := s.Slice(2, 4)
	if v.Len() != 2 || v.At(0) != 2 || v.At(1) != 3 {
		t.Fatalf("slice values wrong: %v", v.Values)
	}
	if !v.Start.Equal(t0.Add(4 * time.Minute)) {
		t.Fatalf("slice start = %v", v.Start)
	}
	// Clamping.
	if s.Slice(-5, 100).Len() != 6 {
		t.Fatal("slice should clamp to series bounds")
	}
	if s.Slice(4, 2).Len() != 0 {
		t.Fatal("inverted slice should be empty")
	}
}

func TestWindowPadding(t *testing.T) {
	s := FromValues(DefaultTick, []float64{10, 20, 30})
	// Window ending at index 2 of size 5 pads the front with the
	// earliest value.
	w := s.Window(2, 5)
	want := []float64{10, 10, 10, 20, 30}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("window = %v, want %v", w, want)
		}
	}
}

func TestWindowExact(t *testing.T) {
	s := FromValues(DefaultTick, []float64{1, 2, 3, 4})
	w := s.Window(3, 3)
	if w[0] != 2 || w[1] != 3 || w[2] != 4 {
		t.Fatalf("window = %v", w)
	}
}

func TestWindowEmptySeries(t *testing.T) {
	s := New(DefaultTick, t0)
	w := s.Window(0, 3)
	for _, v := range w {
		if v != 0 {
			t.Fatalf("empty-series window = %v, want zeros", w)
		}
	}
}

func TestResample(t *testing.T) {
	s := New(DefaultTick, t0)
	s.Append(1, 3, 5, 7, 9, 11)
	r := s.Resample(2)
	if r.Len() != 3 {
		t.Fatalf("resampled len = %d", r.Len())
	}
	want := []float64{2, 6, 10}
	for i, w := range want {
		if r.At(i) != w {
			t.Fatalf("resampled = %v, want %v", r.Values, want)
		}
	}
	if r.Tick != 4*time.Minute {
		t.Fatalf("resampled tick = %v", r.Tick)
	}
}

func TestResampleTrailingPartial(t *testing.T) {
	s := FromValues(DefaultTick, []float64{2, 4, 6, 8, 10})
	r := s.Resample(2)
	if r.Len() != 3 || r.At(2) != 10 {
		t.Fatalf("partial group not averaged over actual length: %v", r.Values)
	}
}

func TestResampleFactorOne(t *testing.T) {
	s := FromValues(DefaultTick, []float64{1, 2})
	r := s.Resample(1)
	r.Values[0] = 99
	if s.Values[0] != 1 {
		t.Fatal("Resample(1) should return an independent clone")
	}
}

func TestScale(t *testing.T) {
	s := FromValues(DefaultTick, []float64{1, 2, 3})
	s.Scale(2)
	if s.At(0) != 2 || s.At(2) != 6 {
		t.Fatalf("scaled = %v", s.Values)
	}
}

func TestAddSeries(t *testing.T) {
	a := FromValues(DefaultTick, []float64{1, 2, 3})
	b := FromValues(DefaultTick, []float64{10, 20, 30})
	if err := a.AddSeries(b); err != nil {
		t.Fatal(err)
	}
	if a.At(2) != 33 {
		t.Fatalf("sum = %v", a.Values)
	}
	if err := a.AddSeries(FromValues(DefaultTick, []float64{1})); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSumAcross(t *testing.T) {
	all := []*Series{
		FromValues(DefaultTick, []float64{1, 2}),
		FromValues(DefaultTick, []float64{3, 4}),
		FromValues(DefaultTick, []float64{5, 6}),
	}
	sum, err := SumAcross(all)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0) != 9 || sum.At(1) != 12 {
		t.Fatalf("SumAcross = %v", sum.Values)
	}
	// Inputs must be untouched.
	if all[0].At(0) != 1 {
		t.Fatal("SumAcross mutated its first input")
	}
	if _, err := SumAcross(nil); err == nil {
		t.Fatal("SumAcross(nil) should error")
	}
}

func TestCrossSection(t *testing.T) {
	all := []*Series{
		FromValues(DefaultTick, []float64{1, 2}),
		FromValues(DefaultTick, []float64{3, 4}),
	}
	xs := CrossSection(all, 1)
	if len(xs) != 2 || xs[0] != 2 || xs[1] != 4 {
		t.Fatalf("cross-section = %v", xs)
	}
}

func TestResamplePreservesMean(t *testing.T) {
	err := quick.Check(func(raw []float64, factorRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		var sum float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			xs = append(xs, v)
			sum += v
		}
		if len(xs) == 0 {
			return true
		}
		factor := int(factorRaw%5) + 1
		// Only whole groups preserve the mean exactly; trim the tail.
		n := (len(xs) / factor) * factor
		if n == 0 {
			return true
		}
		s := FromValues(DefaultTick, xs[:n])
		r := s.Resample(factor)
		var rsum float64
		for _, v := range r.Values {
			rsum += v
		}
		var osum float64
		for _, v := range xs[:n] {
			osum += v
		}
		return math.Abs(rsum*float64(factor)-osum) <= 1e-6*(1+math.Abs(osum))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
