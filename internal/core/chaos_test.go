package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/faults"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/obs"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

// blackoutConfig builds a two-domain deployment (eu and na-east, per
// geo.RegionOf) whose European capacity hosts most of the load, so a
// scheduled eu blackout forces a correlated mass failover onto the
// surviving domain. Centers are built fresh per call so checkpoint
// tests can restart over the same config.
func blackoutConfig() Config {
	ds := trace.Generate(trace.Config{Seed: 7, Days: 1, Regions: []trace.Region{
		{ID: 0, Name: "Europe", Location: geo.London, Groups: 8},
		{ID: 1, Name: "US East Coast", Location: geo.NewYork, UTCOffsetHours: -5, Groups: 4},
	}})
	var bulk datacenter.Vector
	bulk[datacenter.CPU] = 0.25
	policy := datacenter.HostingPolicy{Name: "fine", Bulk: bulk, TimeBulk: time.Hour}
	// Sized close to the peak demand (~4.5 CPU across all zones), so
	// losing a domain is a real capacity event, not a rounding error.
	centers := []*datacenter.Center{
		datacenter.NewCenter("london", geo.London, 4, policy),
		datacenter.NewCenter("amsterdam", geo.Amsterdam, 3, policy),
		datacenter.NewCenter("nyc", geo.NewYork, 4, policy),
		datacenter.NewCenter("ashburn", geo.Ashburn, 3, policy),
	}
	return Config{
		Centers: centers,
		Workloads: []Workload{{
			Game: mmog.NewGame("chaos", mmog.GenreMMORPG), Dataset: ds,
			Predictor: predict.NewLastValue(),
		}},
		Faults: &faults.Config{
			Seed: 3,
			// The blackout lands on the evening demand peak — the
			// worst case the scenario corpus cares about.
			ScheduledBlackouts: []faults.RegionBlackout{
				{Region: "eu", Start: 480, Duration: 40},
			},
		},
	}
}

// recordedEvents runs cfg with a recorder sink attached and returns the
// result plus every event of the run in record order.
func recordedEvents(t *testing.T, cfg Config) (*Result, []obs.Event) {
	t.Helper()
	o := obs.New()
	var buf bytes.Buffer
	o.Recorder.SetSink(&buf)
	cfg.Obs = o
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	return res, events
}

// TestRegionBlackoutDownsDomainAndFailsOver: a scheduled eu blackout
// must down both European centers at once, drive failovers onto the
// surviving domain, and heal completely by the end of the run.
func TestRegionBlackoutDownsDomainAndFailsOver(t *testing.T) {
	cfg := blackoutConfig()
	res, events := recordedEvents(t, cfg)
	r := res.Resilience
	if r.RegionBlackouts != 1 {
		t.Fatalf("RegionBlackouts = %d, want 1", r.RegionBlackouts)
	}
	// Both eu centers lose exactly the blackout window; na stays whole.
	for name, want := range map[string]bool{
		"london": true, "amsterdam": true, "nyc": false, "ashburn": false,
	} {
		av := r.Availability[name]
		if want && av >= 1 {
			t.Errorf("center %s availability %v, want < 1 (blacked out)", name, av)
		}
		if !want && av < 1 {
			t.Errorf("center %s availability %v, want 1 (outside the domain)", name, av)
		}
	}
	if r.Outages != 2 || r.FullOutages != 2 {
		t.Errorf("outage windows %d (full %d), want 2 full — one per eu center", r.Outages, r.FullOutages)
	}
	if r.Failovers == 0 {
		t.Error("blackout caused no failovers")
	}
	if r.CapacityRecovered != r.Outages {
		t.Errorf("capacity recovered %d of %d outages", r.CapacityRecovered, r.Outages)
	}
	for _, c := range cfg.Centers {
		if c.AvailableFraction() < 1 {
			t.Errorf("center %s still impaired after the run", c.Name)
		}
	}
	if r.TimeToFullRecoveryTicks < 40 {
		t.Errorf("TimeToFullRecoveryTicks = %d, want >= blackout duration 40", r.TimeToFullRecoveryTicks)
	}
	// The recorder saw the domain-level bracketing events.
	var black, recover int
	for _, e := range events {
		switch e.Kind {
		case obs.EventRegionBlackout:
			black++
			if e.Subject != "eu" {
				t.Errorf("region_blackout subject %q, want eu", e.Subject)
			}
			if e.Tick != 480 {
				t.Errorf("region_blackout at tick %d, want 480", e.Tick)
			}
		case obs.EventRegionRecover:
			recover++
			if e.Tick != 520 {
				t.Errorf("region_recover at tick %d, want 520", e.Tick)
			}
		}
	}
	if black != 1 || recover != 1 {
		t.Errorf("blackout/recover events %d/%d, want 1/1", black, recover)
	}
}

// TestStormControlCapsSameTickFailovers is the acceptance contract of
// the failover budget: with FailoverBudgetPerTick = 1 no tick performs
// more than one failover re-acquisition; the overflow is deferred with
// jittered backoff and eventually served.
func TestStormControlCapsSameTickFailovers(t *testing.T) {
	// Unbudgeted baseline: the blackout must actually cause a failover
	// stampede, or the capped run proves nothing.
	base := blackoutConfig()
	_, baseEvents := recordedEvents(t, base)
	perTick := map[int]int{}
	for _, e := range baseEvents {
		if e.Kind == obs.EventFailover {
			perTick[e.Tick]++
		}
	}
	stampede := 0
	for _, n := range perTick {
		if n > stampede {
			stampede = n
		}
	}
	if stampede < 2 {
		t.Fatalf("baseline blackout never stacked %d >= 2 failovers on one tick — scenario too weak", stampede)
	}

	capped := blackoutConfig()
	capped.FailoverBudgetPerTick = 1
	res, events := recordedEvents(t, capped)
	perTick = map[int]int{}
	deferred := 0
	for _, e := range events {
		switch e.Kind {
		case obs.EventFailover:
			perTick[e.Tick]++
		case obs.EventDeferred:
			deferred++
			if until := int(e.Value); until <= e.Tick {
				t.Errorf("deferred failover retries at tick %d, not after tick %d", until, e.Tick)
			}
		}
	}
	for tick, n := range perTick {
		if n > 1 {
			t.Errorf("tick %d performed %d failovers, budget is 1", tick, n)
		}
	}
	if res.Resilience.FailoversDeferred == 0 || deferred == 0 {
		t.Fatalf("budget 1 under a domain blackout deferred nothing (counter %d, events %d)",
			res.Resilience.FailoversDeferred, deferred)
	}
	// Deferral delays service restoration but must not lose it: the
	// parked zones still re-acquire once their jitter expires.
	if res.Resilience.Failovers == 0 {
		t.Fatal("capped run performed no failovers at all")
	}
	for _, c := range capped.Centers {
		if c.AvailableFraction() < 1 {
			t.Errorf("center %s still impaired after the run", c.Name)
		}
	}
}

// TestBrownoutShedsByPriority: blacking out the larger domain while
// brownout mode is on must engage shedding — brownout ticks accrue,
// shed zones release their leases, and the accounting (player-ticks,
// transitions, recovery time) is populated; after the region returns
// the run leaves brownout and heals.
func TestBrownoutShedsByPriority(t *testing.T) {
	cfg := blackoutConfig()
	cfg.Brownout = true
	// A stiff reserve makes the post-blackout budget (half the surviving
	// na capacity) fall short of demand while the na zones still hold
	// live leases — so shedding releases real capacity, not tombstones.
	cfg.BrownoutReserveFrac = 0.5
	res, events := recordedEvents(t, cfg)
	r := res.Resilience
	if r.BrownoutTicks == 0 {
		t.Fatal("losing both domains engaged no brownout ticks")
	}
	if r.ShedLeases == 0 || r.ShedPlayerTicks <= 0 {
		t.Fatalf("brownout shed nothing: leases %d, player-ticks %v", r.ShedLeases, r.ShedPlayerTicks)
	}
	var starts, ends, sheds int
	for _, e := range events {
		switch e.Kind {
		case obs.EventBrownoutStart:
			starts++
			if e.Value <= 0 {
				t.Errorf("brownout_start gap %v, want > 0", e.Value)
			}
		case obs.EventBrownoutEnd:
			ends++
		case obs.EventShed:
			sheds++
		}
	}
	if starts == 0 || sheds == 0 {
		t.Fatalf("brownout events missing: %d starts, %d sheds", starts, sheds)
	}
	if ends != starts {
		t.Errorf("%d brownout_start vs %d brownout_end — a brownout episode never closed", starts, ends)
	}
	if r.TimeToFullRecoveryTicks == 0 {
		t.Error("TimeToFullRecoveryTicks = 0 despite an impairment that healed")
	}
	for _, c := range cfg.Centers {
		if c.AvailableFraction() < 1 {
			t.Errorf("center %s still impaired after the run", c.Name)
		}
	}
}

// TestChaosFeaturesAreDeterministic: the full chaos stack — correlated
// blackout, storm control, brownout — replays bit-identically, across
// worker counts.
func TestChaosFeaturesAreDeterministic(t *testing.T) {
	mk := func(workers int) *Result {
		cfg := blackoutConfig()
		cfg.Workers = workers
		cfg.FailoverBudgetPerTick = 2
		cfg.Brownout = true
		cfg.BrownoutReserveFrac = 0.05
		cfg.Faults.RegionMTBFTicks = 250
		cfg.Faults.RegionMTTRTicks = 15
		cfg.Faults.AftershockProb = 0.5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := mk(1), mk(1), mk(4)
	compareResults(t, a, b)
	compareResults(t, a, c)
	compareResilience(t, a.Resilience, b.Resilience)
	compareResilience(t, a.Resilience, c.Resilience)
}

// TestCheckpointResumeMidRegionBlackout is satellite coverage for crash
// recovery under correlated faults: a run killed in the middle of a
// region blackout — with storm control actively deferring failovers and
// brownout engaged — must resume to a bit-identical Result.
func TestCheckpointResumeMidRegionBlackout(t *testing.T) {
	mk := func() Config {
		cfg := blackoutConfig()
		cfg.FailoverBudgetPerTick = 1
		cfg.Brownout = true
		cfg.BrownoutReserveFrac = 0.1
		cfg.Faults.ScheduledBlackouts = append(cfg.Faults.ScheduledBlackouts,
			faults.RegionBlackout{Region: "na-east", Start: 490, Duration: 20})
		cfg.TrackCenters = true
		return cfg
	}
	ref, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	stopped := mk()
	stopped.CheckpointDir = dir
	stopped.CheckpointEveryTicks = 50
	stopped.StopAfterTick = 495 // inside both blackout windows
	if _, err := Run(stopped); !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped run returned %v, want ErrStopped", err)
	}

	resumed := mk()
	resumed.CheckpointDir = dir
	resumed.CheckpointEveryTicks = 50
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFromTick != 495 {
		t.Fatalf("resumed from tick %d, want 495", res.ResumedFromTick)
	}
	assertResultsEqual(t, ref, res)
	if ref.Resilience.RegionBlackouts != 2 {
		t.Fatalf("scenario ran %d region blackouts, want 2", ref.Resilience.RegionBlackouts)
	}
}
