// Command mmogd is the long-running provisioning daemon: the online
// observe→predict→lease loop of internal/operator served over HTTP
// (internal/daemon), with admission control and backpressure, hot
// config reload, crash-safe checkpointing, and graceful drain.
//
//	mmogd -addr 127.0.0.1:8080 -games live -checkpoint-dir /var/lib/mmogd
//
// Clients push monitoring samples with POST /v1/observe and read the
// forecast and lease book back from /v1/forecast and /v1/leases; the
// observability surface (/metrics, /events, /debug/pprof) rides on the
// same port. cmd/mmogload is the matching load generator.
//
// Signals:
//
//	SIGHUP          re-read -config (when set) and hot-reload it
//	SIGTERM/SIGINT  graceful drain: stop admitting (readyz -> 503),
//	                flush queued ticks, release leases, write a final
//	                checkpoint, exit 0
//	a second TERM/INT, or a drain that outlives -drain-timeout,
//	hard-exits with code 3
//
// Exit codes: 0 clean drain, 2 usage or startup failure, 3 drain
// deadline exceeded or second signal.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mmogdc/internal/daemon"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/ecosystem"
	"mmogdc/internal/emulator"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/obs"
	"mmogdc/internal/predict"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port)")
		games     = flag.String("games", "live", "comma-separated game names to provision (RPG update model)")
		predictor = flag.String("predictor", "lastvalue", "per-zone predictor: lastvalue|average|movingavg|median|expsmoothing|neural")
		machines  = flag.Int("machines", 4, "machines per data center (two centers: Amsterdam + London)")
		queue     = flag.Int("queue", 64, "ingest queue depth per game (full queue sheds with 429)")
		maxBody   = flag.Int64("max-body", 1<<20, "maximum request body bytes")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for per-game checkpoints (restored and reconciled at startup; empty disables)")
		ckptEvery = flag.Int("checkpoint-every", 30, "ticks between cadence checkpoints (0 disables)")
		tickSec   = flag.Float64("tick-seconds", 120, "virtual monitoring interval one sample advances the clock by")
		obsTmo    = flag.Duration("observe-timeout", time.Second, "deadline on one observe->predict->acquire pass (0 disables)")
		obsDelay  = flag.Duration("observe-delay", 0, "injected processing delay per sample (backpressure fault knob)")
		fReject   = flag.Float64("fault-reject", 0, "probability a center grant attempt is rejected")
		fPartial  = flag.Float64("fault-partial", 0, "probability a grant is trimmed to 25-75%")
		fDropout  = flag.Float64("fault-dropout", 0, "probability a zone sample is dropped (LOCF bridges it)")
		fSeed     = flag.Uint64("fault-seed", 1, "seed for the injection streams")
		cfgPath   = flag.String("config", "", "hot-config JSON file (loaded at start, re-read on SIGHUP)")
		drainTmo  = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline before hard exit")
		explainN  = flag.Int("explain", 0, "retain the last N allocation decisions per game and serve them on GET /v1/explain (0 disables)")
		obsEvents = flag.String("obs-events", "", "append every flight-recorder event to this JSONL file")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace of request/observe/acquire spans here at drain (enables tracing)")
		rtMetrics = flag.Bool("runtime-metrics", true, "export Go runtime self-telemetry (GC, heap, goroutines, sched latency) on /metrics")
	)
	flag.Parse()

	hot := daemon.HotConfig{
		TickSeconds:      *tickSec,
		CheckpointEvery:  *ckptEvery,
		ObserveTimeoutMS: int(*obsTmo / time.Millisecond),
		ObserveDelayMS:   int(*obsDelay / time.Millisecond),
		FaultRejectProb:  *fReject,
		FaultPartialProb: *fPartial,
		FaultDropoutProb: *fDropout,
		FaultSeed:        *fSeed,
	}
	if *cfgPath != "" {
		loaded, err := loadHot(*cfgPath, hot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "daemon: -config: %v\n", err)
			return 2
		}
		hot = loaded
	}

	factory, err := factoryFor(*predictor)
	if err != nil {
		fmt.Fprintln(os.Stderr, "daemon:", err)
		return 2
	}

	telemetry := obs.New()
	var eventsFile *os.File
	if *obsEvents != "" {
		eventsFile, err = os.Create(*obsEvents)
		if err != nil {
			fmt.Fprintln(os.Stderr, "daemon:", err)
			return 2
		}
		telemetry.Recorder.SetSink(eventsFile)
	}
	if *traceOut != "" {
		// PID-prefixed span IDs keep the daemon's IDs disjoint from the
		// load generator's, so mmogaudit can merge both trace files
		// without collisions.
		telemetry.EnableTracing(0).SetIDBase(obs.PIDSpanBase())
	}
	if *rtMetrics {
		telemetry.EnableRuntimeMetrics()
	}

	centers := []*datacenter.Center{
		datacenter.NewCenter("local", geo.Amsterdam, *machines, datacenter.OptimalPolicy()),
		datacenter.NewCenter("nearby", geo.London, *machines, datacenter.OptimalPolicy()),
	}
	var specs []daemon.GameSpec
	for _, name := range strings.Split(*games, ",") {
		if name = strings.TrimSpace(name); name != "" {
			specs = append(specs, daemon.GameSpec{Name: name, Genre: mmog.GenreRPG, Origin: geo.Amsterdam})
		}
	}

	d, err := daemon.New(daemon.Config{
		Games:         specs,
		Predictor:     factory,
		Matcher:       ecosystem.NewMatcher(centers),
		Obs:           telemetry,
		QueueDepth:    *queue,
		MaxBodyBytes:  *maxBody,
		CheckpointDir: *ckptDir,
		Hot:           hot,
		ExplainDepth:  *explainN,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "daemon:", err)
		return 2
	}
	for _, spec := range specs {
		if tick, rec, ok := d.Reconciliation(spec.Name); ok {
			fmt.Fprintf(os.Stderr, "daemon: game %q restored checkpoint from tick %d: %d leases adopted, %d lost, %d orphans released\n",
				spec.Name, tick, rec.Adopted, rec.Lost, rec.Orphaned)
		}
	}

	srv, err := d.Serve(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "daemon:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "daemon: serving http on %s\n", srv.Addr())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	drained := make(chan error, 1)
	draining := false
	for {
		select {
		case err := <-drained:
			srv.Close()
			if eventsFile != nil {
				eventsFile.Close()
			}
			if *traceOut != "" {
				if werr := writeTrace(*traceOut, telemetry); werr != nil {
					fmt.Fprintln(os.Stderr, "daemon: trace-out:", werr)
				}
			}
			if err != nil {
				if errors.Is(err, daemon.ErrDrainTimeout) {
					fmt.Fprintln(os.Stderr, "daemon: drain deadline exceeded — hard exit")
					return 3
				}
				fmt.Fprintln(os.Stderr, "daemon: drain:", err)
				return 1
			}
			fmt.Fprintln(os.Stderr, "daemon: drain complete")
			return 0
		case s := <-sig:
			switch s {
			case syscall.SIGHUP:
				if *cfgPath == "" {
					fmt.Fprintln(os.Stderr, "daemon: SIGHUP ignored (no -config file)")
					continue
				}
				cand, err := loadHot(*cfgPath, d.Hot())
				if err == nil {
					err = d.Reload(cand)
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "daemon: reload rejected, keeping active config: %v\n", err)
				} else {
					fmt.Fprintln(os.Stderr, "daemon: reload applied")
				}
			default: // SIGINT, SIGTERM
				if draining {
					fmt.Fprintln(os.Stderr, "daemon: second signal — hard exit")
					return 3
				}
				draining = true
				fmt.Fprintf(os.Stderr, "daemon: draining (deadline %s)\n", *drainTmo)
				go func() {
					ctx, cancel := context.WithTimeout(context.Background(), *drainTmo)
					defer cancel()
					drained <- d.Drain(ctx)
				}()
			}
		}
	}
}

// writeTrace flushes the collected spans as a Chrome trace file.
func writeTrace(path string, telemetry *obs.Obs) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.Tracer.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadHot reads a hot-config JSON file on top of the given base, so a
// partial file tweaks only the fields it names.
func loadHot(path string, base daemon.HotConfig) (daemon.HotConfig, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	dec := json.NewDecoder(strings.NewReader(string(blob)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&base); err != nil {
		return base, err
	}
	return base, nil
}

// factoryFor maps a predictor name to its factory. The neural option
// pretrains a shared network on an emulated observation day first
// (mirroring examples/live), so startup takes noticeably longer.
func factoryFor(name string) (predict.Factory, error) {
	switch name {
	case "lastvalue":
		return predict.NewLastValue(), nil
	case "average":
		return predict.NewAverage(), nil
	case "movingavg":
		return predict.NewMovingAverage(predict.DefaultWindow), nil
	case "median":
		return predict.NewSlidingWindowMedian(predict.DefaultWindow), nil
	case "expsmoothing":
		return predict.NewExpSmoothing(0.5, "Exp. smoothing 50%"), nil
	case "neural":
		cfg := emulator.TableIConfigs()[4]
		cfg.Seed += 1000
		cfg.Steps = 720
		run := emulator.Run(cfg)
		collected := make([][]float64, len(run.Zones))
		for i, z := range run.Zones {
			collected[i] = z.Values
		}
		ncfg := predict.PaperNeuralConfig(7)
		ncfg.Degree = -1
		factory, report := predict.PretrainShared(ncfg, collected, 0.8, predict.PaperTrainConfig(9))
		fmt.Fprintf(os.Stderr, "daemon: offline training: %d eras, converged=%v\n", report.Eras, report.Converged)
		return factory, nil
	default:
		return nil, fmt.Errorf("unknown predictor %q", name)
	}
}
