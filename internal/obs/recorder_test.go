package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Tick: i, Kind: EventGrant})
	}
	if r.Total() != 5 || r.Len() != 3 || r.Dropped() != 2 {
		t.Fatalf("total=%d len=%d dropped=%d", r.Total(), r.Len(), r.Dropped())
	}
	events := r.Events()
	for i, e := range events {
		if e.Tick != i+2 {
			t.Fatalf("events = %+v, want ticks 2,3,4 oldest-first", events)
		}
	}

	// Before wrapping, everything is retained in order.
	r2 := NewRecorder(8)
	r2.Record(Event{Tick: 1, Kind: EventOutage, Subject: "c1", Value: 0.5})
	r2.Record(Event{Tick: 2, Kind: EventRecover, Subject: "c1"})
	if r2.Dropped() != 0 || r2.Len() != 2 {
		t.Fatalf("dropped=%d len=%d", r2.Dropped(), r2.Len())
	}
	if es := r2.Events(); es[0].Kind != EventOutage || es[1].Kind != EventRecover {
		t.Fatalf("events = %+v", es)
	}
}

func TestRecorderJSONLSink(t *testing.T) {
	var sb strings.Builder
	r := NewRecorder(2) // smaller than the event count: the sink still sees everything
	r.SetSink(&sb)
	r.Record(Event{Tick: 1, Kind: EventGrant, Subject: "g/zone1", Value: 2.5})
	r.Record(Event{Tick: 2, Kind: EventFailover, Subject: "g/zone2", Detail: "lost: c1", Value: 3})
	r.Record(Event{Tick: 3, Kind: EventCheckpoint, Value: 4096})

	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 3 {
		t.Fatalf("sink got %d lines, want 3 (ring overwrites must not drop sink lines)", len(lines))
	}
	if lines[0].Subject != "g/zone1" || lines[1].Detail != "lost: c1" || lines[2].Value != 4096 {
		t.Fatalf("sink lines = %+v", lines)
	}
	if r.SinkErrs() != 0 {
		t.Fatalf("sink errs = %d", r.SinkErrs())
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestRecorderSinkErrorsDoNotPropagate(t *testing.T) {
	r := NewRecorder(4)
	r.SetSink(failingWriter{})
	r.Record(Event{Kind: EventGrant})
	r.Record(Event{Kind: EventGrant})
	if r.SinkErrs() != 2 {
		t.Fatalf("sink errs = %d, want 2", r.SinkErrs())
	}
	if r.Len() != 2 {
		t.Fatal("ring must keep recording despite sink failures")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Tick: i, Kind: EventRetry})
				_ = r.Events()
				_ = r.Len()
			}
		}()
	}
	wg.Wait()
	if r.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", r.Total())
	}
	if r.Len() != 64 || r.Dropped() != 4000-64 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

// TestRecorderSeqTotalOrder pins the Seq contract: Record assigns 1,
// 2, 3, ... in record order, and after the ring wraps the retained
// events carry exactly the seqs (Dropped()+1 .. Total()] — so Dropped
// and the retained numbering can never disagree.
func TestRecorderSeqTotalOrder(t *testing.T) {
	var sink strings.Builder
	r := NewRecorder(4)
	r.SetSink(&sink)
	for i := 0; i < 11; i++ {
		r.Record(Event{Tick: i, Kind: EventGrant})
	}
	if r.Total() != 11 || r.Dropped() != 7 {
		t.Fatalf("total=%d dropped=%d, want 11/7", r.Total(), r.Dropped())
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d, want 4", len(events))
	}
	for i, e := range events {
		want := r.Dropped() + uint64(i) + 1
		if e.Seq != want {
			t.Fatalf("retained[%d].Seq = %d, want %d (events: %+v)", i, e.Seq, want, events)
		}
	}
	if last := events[len(events)-1].Seq; last != r.Total() {
		t.Fatalf("newest seq = %d, want Total() = %d", last, r.Total())
	}

	// The sink saw every event, seqs 1..Total in order, even the ones
	// the ring overwrote.
	var seq uint64
	sc := bufio.NewScanner(strings.NewReader(sink.String()))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		seq++
		if e.Seq != seq {
			t.Fatalf("sink line %d has seq %d", seq, e.Seq)
		}
	}
	if seq != r.Total() {
		t.Fatalf("sink saw %d events, want %d", seq, r.Total())
	}
}

// TestRecorderConcurrentDropAccounting pins the loss accounting under
// racing writers: however records interleave, Total = writes, the ring
// retains exactly its capacity, Dropped covers the difference, and the
// retained events carry the contiguous final Seq range — i.e. the
// counters can never silently disagree with the retained contents.
// Run under -race this also proves Record/Events/Dropped share one
// synchronization domain.
func TestRecorderConcurrentDropAccounting(t *testing.T) {
	const (
		capacity = 32
		writers  = 8
		perW     = 400
	)
	var sink strings.Builder
	r := NewRecorder(capacity)
	r.SetSink(&sink)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				r.Record(Event{Tick: i, Kind: EventShed, Subject: "w"})
				if i%17 == 0 {
					_ = r.Dropped()
					_ = r.Events()
				}
			}
		}(w)
	}
	wg.Wait()

	const total = writers * perW
	if r.Total() != total {
		t.Fatalf("total = %d, want %d", r.Total(), total)
	}
	if r.Len() != capacity {
		t.Fatalf("len = %d, want %d", r.Len(), capacity)
	}
	if r.Dropped() != total-capacity {
		t.Fatalf("dropped = %d, want %d", r.Dropped(), total-capacity)
	}
	events := r.Events()
	if len(events) != capacity {
		t.Fatalf("retained %d events, want %d", len(events), capacity)
	}
	for i, e := range events {
		if want := uint64(total-capacity) + uint64(i) + 1; e.Seq != want {
			t.Fatalf("retained[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	// The sink saw all total events exactly once (seqs are assigned and
	// written under the same lock).
	lines := strings.Count(sink.String(), "\n")
	if lines != total {
		t.Fatalf("sink captured %d lines, want %d", lines, total)
	}
	if r.SinkErrs() != 0 {
		t.Fatalf("sink errors = %d", r.SinkErrs())
	}
}
