// Package ecosystem implements the paper's request–offer matching
// between game operators and hosters (Section II-C). Game operators
// submit resource requests derived from predicted game load; data
// centers answer with offers shaped by their hosting policies. The
// matching mechanism favors the game operator on three criteria:
//
//  1. the offer must cover at least the requested amounts (requests
//     are rounded up to whole bulks);
//  2. only centers within the game's latency tolerance — expressed as
//     a maximal player-to-server distance — are considered;
//  3. among admissible centers, the finest-grained resources with the
//     shortest reservation time are selected first, which is how game
//     operators "penalize the data centers with unsuitable hosting
//     policies by not using their resources".
package ecosystem

import (
	"slices"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
)

// Request asks for resources to serve players at a location.
type Request struct {
	// Tag identifies the requesting workload (e.g. server group).
	Tag string
	// Origin is where the demand's players are.
	Origin geo.Point
	// MaxDistanceKm is the game's latency tolerance as a maximal
	// player-to-server distance; +Inf admits every center.
	MaxDistanceKm float64
	// Demand is the resources needed, in abstract units.
	Demand datacenter.Vector
	// Exclude lists center names the matcher must skip for this
	// request. The failover path uses it so a zone re-acquiring
	// capacity lost to a failed or degraded center does not lease
	// right back from the center that just dropped it.
	Exclude []string
}

// GrantFaults injects hoster-side failures into the matching: before
// each grant attempt the matcher asks the injector whether the center
// rejects the request outright or trims it to a fraction. Injectors
// must be deterministic for a deterministic attempt sequence (see
// faults.Plan, the canonical implementation).
type GrantFaults interface {
	GrantFault(center string) (reject bool, frac float64)
}

// Outcome reports what fault injection did to one Allocate call.
type Outcome struct {
	// Rejections counts center grants vetoed by the injector.
	Rejections int
	// PartialGrants counts grants the injector trimmed.
	PartialGrants int
	// RejectedBy names the centers whose grants were vetoed, in the
	// matching walk's preference order — the attribution a circuit
	// breaker needs to localize failing domains. The slice aliases
	// matcher scratch and is only valid until the next Allocate call;
	// callers that retain it must copy.
	RejectedBy []string
	// Decision is the provenance record of this call — every
	// candidate's verdict — when a DecisionLog is installed, nil
	// otherwise. It aliases log ring storage and is valid until the
	// ring wraps; callers that retain it must deep-copy.
	Decision *Decision
}

// Matcher allocates requests across a set of data centers. A Matcher
// is not safe for concurrent use: Allocate mutates center lease books
// and reuses internal candidate scratch across calls (each simulation
// run owns its matcher exclusively).
type Matcher struct {
	centers []*datacenter.Center
	faults  GrantFaults
	// cands and rejected are scratch reused by AllocateDetailed so the
	// per-tick acquire walk does not allocate in steady state.
	cands    []candidate
	rejected []string
	// log, when installed, receives one Decision per AllocateDetailed
	// call. nil (the default) keeps the walk provenance-free.
	log *DecisionLog
}

// SetFaultInjector installs (or, with nil, removes) the grant-fault
// injector consulted on every subsequent grant attempt.
func (m *Matcher) SetFaultInjector(f GrantFaults) { m.faults = f }

// SetDecisionLog installs (or, with nil, removes) the decision
// provenance log. Recording is write-only: the matching walk grants
// exactly the same leases with or without a log.
func (m *Matcher) SetDecisionLog(l *DecisionLog) { m.log = l }

// DecisionLog returns the installed provenance log, or nil.
func (m *Matcher) DecisionLog() *DecisionLog { return m.log }

// NewMatcher returns a matcher over the centers.
func NewMatcher(centers []*datacenter.Center) *Matcher {
	return &Matcher{centers: centers}
}

// Centers returns the matcher's centers.
func (m *Matcher) Centers() []*datacenter.Center { return m.centers }

// CenterByName finds a center by name, or nil. Checkpoint restore uses
// it to reconnect lease records with the centers that granted them.
func (m *Matcher) CenterByName(name string) *datacenter.Center {
	for _, c := range m.centers {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Expire releases expired leases in all centers and returns the total
// released.
func (m *Matcher) Expire(now time.Time) int {
	n := 0
	for _, c := range m.centers {
		n += c.Expire(now)
	}
	return n
}

// candidate pairs a center with its distance from the request.
type candidate struct {
	center *datacenter.Center
	distKm float64
}

// compareCandidates orders candidates by the matching preference:
// finer resource grain, then shorter time bulk, then closer center,
// then name (a unique key, making the order total).
func compareCandidates(a, b candidate) int {
	ga, gb := a.center.Policy.Grain(), b.center.Policy.Grain()
	switch {
	case ga < gb:
		return -1
	case ga > gb:
		return 1
	}
	ta, tb := a.center.Policy.TimeBulk, b.center.Policy.TimeBulk
	switch {
	case ta < tb:
		return -1
	case ta > tb:
		return 1
	}
	switch {
	case a.distKm < b.distKm:
		return -1
	case a.distKm > b.distKm:
		return 1
	}
	switch {
	case a.center.Name < b.center.Name:
		return -1
	case a.center.Name > b.center.Name:
		return 1
	}
	return 0
}

// Allocate leases resources for the request, splitting it across
// centers when the preferred center cannot host all of it. It returns
// the leases obtained and the unmet demand (zero when fully served).
//
// The split follows the matching preference order; each center serves
// as much of the remaining demand as its free capacity allows (in
// whole bulks), and the remainder spills to the next candidate.
func (m *Matcher) Allocate(req Request, now time.Time) ([]*datacenter.Lease, datacenter.Vector) {
	leases, unmet, _ := m.AllocateDetailed(req, now)
	return leases, unmet
}

// AllocateDetailed is Allocate plus the fault-injection outcome —
// callers implementing retry/backoff need to distinguish an injected
// rejection (worth retrying later) from genuine capacity exhaustion.
func (m *Matcher) AllocateDetailed(req Request, now time.Time) ([]*datacenter.Lease, datacenter.Vector, Outcome) {
	var out Outcome
	m.rejected = m.rejected[:0]
	remaining := req.Demand.ClampNonNegative()
	if remaining.IsZero() {
		return nil, datacenter.Vector{}, out
	}

	// Provenance: one Decision per non-trivial call. Centers filtered
	// before ranking collect in the log's scratch (rank 0) and are
	// appended after the ranked walk, so Candidates reads in walk
	// order. dec stays nil when no log is installed — every recording
	// site below is gated on it and the walk is unchanged.
	var dec *Decision
	if m.log != nil {
		dec = m.log.begin(req.Tag)
		m.log.scratch = m.log.scratch[:0]
	}

	cands := m.cands[:0]
	for _, c := range m.centers {
		if excluded(req.Exclude, c.Name) {
			if dec != nil {
				m.log.scratch = append(m.log.scratch, CandidateVerdict{
					Center:      c.Name,
					DistKm:      geo.DistanceKm(req.Origin, c.Location),
					Disposition: DispExcludedByFailover,
				})
			}
			continue
		}
		d := geo.DistanceKm(req.Origin, c.Location)
		if d <= req.MaxDistanceKm {
			cands = append(cands, candidate{center: c, distKm: d})
		} else if dec != nil {
			m.log.scratch = append(m.log.scratch, CandidateVerdict{
				Center:      c.Name,
				DistKm:      d,
				Disposition: DispOutOfLatencyClass,
			})
		}
	}
	m.cands = cands
	// Preference: finer resource grain, then shorter time bulk, then
	// closer center, then name for determinism. The name tie-break
	// makes the order total, so any correct sort yields the same
	// permutation; SortFunc with a static comparator avoids the
	// reflection and closure allocations of sort.Slice.
	slices.SortFunc(cands, compareCandidates)

	var leases []*datacenter.Lease
	for i, cand := range cands {
		if remaining.IsZero() {
			if dec == nil {
				break
			}
			// Keep walking to give the unreached tail a verdict — no
			// fitToFree and no injector draw, so the fault stream and
			// the lease book are untouched.
			dec.Candidates = append(dec.Candidates, CandidateVerdict{
				Center: cand.center.Name, Rank: i + 1, DistKm: cand.distKm,
				Disposition: DispNotNeeded,
			})
			continue
		}
		c := cand.center
		verdict := func(disp Disposition, cpu float64) {
			dec.Candidates = append(dec.Candidates, CandidateVerdict{
				Center: c.Name, Rank: i + 1, DistKm: cand.distKm,
				Disposition: disp, CPU: cpu,
			})
		}
		grant := fitToFree(c, remaining)
		if grant.IsZero() {
			if dec != nil {
				verdict(DispNoCapacity, 0)
			}
			continue
		}
		trimmed := false
		if m.faults != nil {
			// The injector is consulted only for attempts that would
			// actually lease, so the fault stream's consumption is a
			// pure function of the (deterministic) matching walk.
			reject, frac := m.faults.GrantFault(c.Name)
			if reject {
				out.Rejections++
				m.rejected = append(m.rejected, c.Name)
				out.RejectedBy = m.rejected
				if dec != nil {
					verdict(DispRejectedByInjector, 0)
				}
				continue
			}
			if frac < 1 {
				out.PartialGrants++
				trimmed = true
				grant = fitToFree(c, grant.Scale(frac))
				if grant.IsZero() {
					if dec != nil {
						verdict(DispPartialTrimmed, 0)
					}
					continue
				}
			}
		}
		l, err := c.Lease(grant, now, req.Tag)
		if err != nil {
			if dec != nil {
				verdict(DispFaulted, 0)
			}
			continue
		}
		if dec != nil {
			disp := DispGranted
			if trimmed {
				disp = DispPartialTrimmed
			}
			verdict(disp, l.Alloc[datacenter.CPU])
		}
		leases = append(leases, l)
		remaining = remaining.Sub(l.Alloc).ClampNonNegative()
	}
	if dec != nil {
		dec.Candidates = append(dec.Candidates, m.log.scratch...)
		dec.UnmetCPU = remaining[datacenter.CPU]
		out.Decision = dec
	}
	return leases, remaining, out
}

// excluded reports whether name is on the request's exclusion list
// (lists are tiny — a linear scan beats a map allocation per call).
func excluded(list []string, name string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

// fitToFree trims a demand so its bulk-rounded form fits the center's
// free capacity: per resource, the request is lowered to the largest
// whole-bulk amount not exceeding the free capacity. Unconstrained
// resources are capped at the free amount directly. The CPU component
// leads: if no CPU can be granted at a center but CPU was demanded,
// nothing is taken from it (a game server without CPU is useless).
func fitToFree(c *datacenter.Center, demand datacenter.Vector) datacenter.Vector {
	free := c.Free()
	var out datacenter.Vector
	for i, want := range demand {
		if want <= 0 {
			continue
		}
		b := c.Policy.Bulk[i]
		avail := free[i]
		if b <= 0 {
			if want <= avail {
				out[i] = want
			} else {
				out[i] = avail
			}
			continue
		}
		// Bulks needed vs bulks available.
		needBulks := int((want + b - 1e-9) / b)
		if float64(needBulks)*b < want {
			needBulks++
		}
		availBulks := int(avail / b)
		n := needBulks
		if n > availBulks {
			n = availBulks
		}
		out[i] = float64(n) * b
	}
	if demand[datacenter.CPU] > 0 && out[datacenter.CPU] <= 0 {
		return datacenter.Vector{}
	}
	return out
}

// FreeByCenter reports each center's free resources, in center order —
// the Fig. 14 view of which hosters are left with unused capacity.
func (m *Matcher) FreeByCenter() map[string]datacenter.Vector {
	out := make(map[string]datacenter.Vector, len(m.centers))
	for _, c := range m.centers {
		out[c.Name] = c.Free()
	}
	return out
}
