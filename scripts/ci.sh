#!/usr/bin/env sh
# CI entry point — equivalent to `make ci` for environments without
# make. Keeps the race detector on the full suite so the parallel
# per-zone engine in internal/core is re-proven on every PR.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -bench CoreRun -benchtime 1x .
