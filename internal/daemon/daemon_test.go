package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/ecosystem"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
)

func testMatcher() *ecosystem.Matcher {
	var b datacenter.Vector
	b[datacenter.CPU] = 0.05
	p := datacenter.HostingPolicy{Name: "fine", Bulk: b, TimeBulk: time.Hour}
	return ecosystem.NewMatcher([]*datacenter.Center{
		datacenter.NewCenter("dc-a", geo.London, 50, p),
		datacenter.NewCenter("dc-b", geo.Amsterdam, 50, p),
	})
}

// fastHot is a test hot config without the two-minute tick's real-time
// semantics: cadence knobs on, injection off.
func fastHot() HotConfig {
	return HotConfig{TickSeconds: 1, ObserveTimeoutMS: 2000, FaultSeed: 1}
}

func newTestDaemon(t *testing.T, mutate func(*Config)) *Daemon {
	t.Helper()
	cfg := Config{
		Games:     []GameSpec{{Name: "g1", Genre: mmog.GenreMMORPG, Origin: geo.London}},
		Predictor: predict.NewLastValue(),
		Matcher:   testMatcher(),
		Hot:       fastHot(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// drain shuts the daemon down, failing the test on any drain error.
func drain(t *testing.T, d *Daemon) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func postObserve(t *testing.T, url, game string, values []float64) *http.Response {
	t.Helper()
	body, _ := json.Marshal(ObserveRequest{Game: game, Values: values})
	resp, err := http.Post(url+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeError(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var doc map[string]apiError
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("error body not typed JSON: %v", err)
	}
	return doc["error"].Code
}

// waitTicks polls until the named game has observed at least n ticks.
func waitTicks(t *testing.T, d *Daemon, game string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for d.Ticks(game) < n {
		if time.Now().After(deadline) {
			t.Fatalf("game %q stuck at %d ticks, want %d", game, d.Ticks(game), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestObserveFlow(t *testing.T) {
	d := newTestDaemon(t, nil)
	defer drain(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	for i := 0; i < 5; i++ {
		resp := postObserve(t, srv.URL, "g1", []float64{100, 50, 25})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("observe %d -> %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	waitTicks(t, d, "g1", 5)

	// The forecast and lease book are readable over the API.
	resp, err := http.Get(srv.URL + "/v1/forecast")
	if err != nil {
		t.Fatal(err)
	}
	var fc struct {
		Game     string    `json:"game"`
		Ticks    int       `json:"ticks"`
		Zones    int       `json:"zones"`
		Total    float64   `json:"total"`
		Forecast []float64 `json:"forecast"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fc.Game != "g1" || fc.Ticks != 5 || fc.Zones != 3 || fc.Total <= 0 {
		t.Fatalf("forecast = %+v", fc)
	}

	resp, err = http.Get(srv.URL + "/v1/leases")
	if err != nil {
		t.Fatal(err)
	}
	var ls struct {
		Count    int     `json:"count"`
		CPUUnits float64 `json:"cpu_units"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ls); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ls.Count == 0 || ls.CPUUnits <= 0 {
		t.Fatalf("leases = %+v (the operator should have leased the forecast)", ls)
	}

	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
	}
}

func TestTypedAdmissionErrors(t *testing.T) {
	d := newTestDaemon(t, func(c *Config) { c.MaxBodyBytes = 256 })
	defer drain(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Fix the zone count at 2.
	resp := postObserve(t, srv.URL, "g1", []float64{1, 2})
	resp.Body.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/observe", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed JSON", `{"game": "g1", values`, 400, "malformed_body"},
		{"unknown field", `{"game": "g1", "values": [1], "extra": true}`, 400, "malformed_body"},
		{"unknown game", `{"game": "nope", "values": [1, 2]}`, 404, "unknown_game"},
		{"no zones", `{"game": "g1", "values": []}`, 400, "bad_value"},
		{"negative load", `{"game": "g1", "values": [1, -3]}`, 400, "bad_value"},
		{"zone mismatch", `{"game": "g1", "values": [1, 2, 3]}`, 409, "zone_mismatch"},
		{"oversized body", `{"game": "g1", "values": [` + strings.Repeat("1,", 400) + `1]}`, 413, "oversized_body"},
	}
	for _, tc := range cases {
		resp := post(tc.body)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s -> %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if code := decodeError(t, resp); code != tc.code {
			t.Fatalf("%s -> code %q, want %q", tc.name, code, tc.code)
		}
	}

	// Method confusion must not reach the operator.
	resp, err := http.Get(srv.URL + "/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/observe -> %d, want 405", resp.StatusCode)
	}
}

func TestBackpressureSheds429(t *testing.T) {
	hot := fastHot()
	hot.ObserveDelayMS = 50 // slow observe loop: the queue must back up
	d := newTestDaemon(t, func(c *Config) {
		c.QueueDepth = 2
		c.Hot = hot
	})
	defer drain(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var accepted, shed int
	for i := 0; i < 12; i++ {
		resp := postObserve(t, srv.URL, "g1", []float64{10, 20})
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			if code := decodeError(t, resp); code != "queue_full" {
				t.Fatalf("429 code %q, want queue_full", code)
			}
			continue // decodeError closed the body
		default:
			t.Fatalf("observe -> %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if shed == 0 {
		t.Fatalf("no 429s despite a full queue (accepted %d)", accepted)
	}
	if accepted == 0 {
		t.Fatal("everything shed — admission is broken, not backpressured")
	}
	// The shed counter is visible on /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf(`mmogdc_daemon_shed_total{game="g1"} %d`, shed)
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("/metrics missing %q", want)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	d := newTestDaemon(t, nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp := postObserve(t, srv.URL, "g1", []float64{5, 5})
	resp.Body.Close()
	drain(t, d)

	// readyz flips to 503, healthz stays up, and admission is closed
	// with the typed draining error.
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while drained -> %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz while drained -> %d, want 200", resp.StatusCode)
	}
	resp = postObserve(t, srv.URL, "g1", []float64{5, 5})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("observe while drained -> %d, want 503", resp.StatusCode)
	}
	if code := decodeError(t, resp); code != "draining" {
		t.Fatalf("draining code %q", code)
	}
}

// Goroutine hygiene: a full serve–load–drain cycle must return the
// process to its baseline goroutine count — the daemon leaks nothing.
func TestDrainLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	d := newTestDaemon(t, nil)
	srv := httptest.NewServer(d.Handler())
	for i := 0; i < 8; i++ {
		resp := postObserve(t, srv.URL, "g1", []float64{10, 20})
		resp.Body.Close()
	}
	waitTicks(t, d, "g1", 8)
	drain(t, d)
	srv.CloseClientConnections()
	srv.Close()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines %d > baseline %d after drain\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
