// Package plot renders small ASCII line charts for the experiment
// reports, so the "figure" experiments produce something figure-shaped
// in a terminal: multiple series over a shared x-axis, auto-scaled
// y-range, per-series markers, and a legend.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	// Name appears in the legend.
	Name string
	// Values are the y samples, evenly spaced on the x-axis.
	Values []float64
}

// Chart is a multi-series ASCII line chart. Zero values for Width and
// Height pick sensible defaults (72x16 plot area).
type Chart struct {
	Title  string
	YLabel string
	XLabel string
	Width  int
	Height int
	Series []Series
}

// markers distinguish series in the plot area.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 16
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if hi == lo {
		hi = lo + 1
	}

	// Plot grid.
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for x := 0; x < w; x++ {
			v, ok := sampleAt(s.Values, x, w)
			if !ok {
				continue
			}
			yf := (v - lo) / (hi - lo)
			y := h - 1 - int(yf*float64(h-1)+0.5)
			if y < 0 {
				y = 0
			}
			if y >= h {
				y = h - 1
			}
			grid[y][x] = m
		}
	}

	// Y-axis labels on five rows.
	labelFor := map[int]string{}
	for i := 0; i <= 4; i++ {
		row := i * (h - 1) / 4
		val := hi - (hi-lo)*float64(row)/float64(h-1)
		labelFor[row] = fmt.Sprintf("%10.4g", val)
	}
	for y := 0; y < h; y++ {
		if lbl, ok := labelFor[y]; ok {
			b.WriteString(lbl)
		} else {
			b.WriteString(strings.Repeat(" ", 10))
		}
		b.WriteString(" |")
		b.Write(grid[y])
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", w) + "\n")
	if c.XLabel != "" {
		pad := 11 + (w-len(c.XLabel))/2
		if pad < 0 {
			pad = 0
		}
		b.WriteString(strings.Repeat(" ", pad) + c.XLabel + "\n")
	}

	// Legend.
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if len(legend) > 0 {
		b.WriteString(strings.Repeat(" ", 12) + strings.Join(legend, "   ") + "\n")
	}
	if c.YLabel != "" {
		b.WriteString(strings.Repeat(" ", 12) + "y: " + c.YLabel + "\n")
	}
	return b.String()
}

// sampleAt maps plot column x (of w) onto the series by averaging the
// covered bucket. It returns ok=false for columns beyond the series.
func sampleAt(values []float64, x, w int) (float64, bool) {
	n := len(values)
	if n == 0 {
		return 0, false
	}
	if n == 1 {
		return values[0], x == 0
	}
	from := x * n / w
	to := (x + 1) * n / w
	if to <= from {
		to = from + 1
	}
	if from >= n {
		return 0, false
	}
	if to > n {
		to = n
	}
	var sum float64
	cnt := 0
	for i := from; i < to; i++ {
		if math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			continue
		}
		sum += values[i]
		cnt++
	}
	if cnt == 0 {
		return 0, false
	}
	return sum / float64(cnt), true
}

// Line is a convenience one-series chart renderer.
func Line(title string, values []float64) string {
	c := Chart{Title: title, Series: []Series{{Name: "", Values: values}}}
	return c.Render()
}
