package experiments

import (
	"fmt"
	"strings"

	"mmogdc/internal/core"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/faults"
	"mmogdc/internal/predict"
	"mmogdc/internal/stats"
)

// Ext07Margin sweeps the safety margin on predicted demand — the
// paper's own suggestion for when even rare under-allocation events
// "cannot be tolerated": "a mechanism that allocates more than the
// predicted volume of required resources can be used" (Section V-C).
// The sweep quantifies what each percent of margin buys in events and
// costs in over-allocation.
func Ext07Margin(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	game := standardGame()
	neural := neuralFactory(opts)

	margins := []float64{0, 0.02, 0.05, 0.10, 0.20}
	results, err := parallelMap(len(margins), func(i int) (*core.Result, error) {
		return core.Run(core.Config{
			Centers:      hp12Centers(),
			SafetyMargin: margins[i],
			Workloads:    []core.Workload{{Game: game, Dataset: ds, Predictor: neural}},
		})
	})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Extension 7 — safety margin on predicted demand (Sec. V-C's remedy)\n\n")
	var rows [][]string
	for i, res := range results {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", margins[i]*100),
			f2(res.AvgOverPct[datacenter.CPU]),
			f3(res.AvgUnderPct[datacenter.CPU]),
			fmt.Sprintf("%d", res.Events),
		})
	}
	b.WriteString(table([]string{"margin", "over [%]", "under [%]", "events"}, rows))
	b.WriteString("\nA few percent of margin buys the residual under-allocation events away at\n")
	b.WriteString("a proportional over-allocation cost — the knob an operator turns when its\n")
	b.WriteString("game cannot tolerate disruption at all.\n")
	return b.String(), nil
}

// Ext08Failure injects a data-center outage and measures how dynamic
// provisioning absorbs it: the failed center's leases vanish, the
// operator's next two-minute cycle re-acquires the capacity elsewhere.
// A statically-provisioned fleet hosted in the failed center would
// stay dark for the whole outage.
func Ext08Failure(o Options) (string, error) {
	opts := o.withDefaults()
	if !opts.Quick && opts.Days > 4 {
		opts.Days = 4
	}
	ds := provisioningTrace(opts)
	game := standardGame()
	neural := neuralFactory(opts)

	// Fail the largest center for two hours, mid-trace.
	failAt := ds.Samples() / 2
	const outageTicks = 60
	victim := "U.K. (1)" // the center closest to the largest region

	run := func(failures []core.Failure) (*core.Result, error) {
		return core.Run(core.Config{
			Centers:   optimalCenters(),
			Failures:  failures,
			Workloads: []core.Workload{{Game: game, Dataset: ds, Predictor: neural}},
		})
	}
	clean, err := run(nil)
	if err != nil {
		return "", err
	}
	failed, err := run([]core.Failure{{Center: victim, AtTick: failAt, DurationTicks: outageTicks}})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Extension 8 — data-center outage resilience\n")
	fmt.Fprintf(&b, "(%s offline for %d minutes at mid-trace)\n\n", victim, outageTicks*2)

	// The under-allocation dip around the failure tick.
	window := func(res *core.Result, from, to int) (worst float64) {
		if from < 0 {
			from = 0
		}
		if to > len(res.UnderPct) {
			to = len(res.UnderPct)
		}
		return stats.Min(res.UnderPct[from:to])
	}
	rows := [][]string{
		{"no outage", f3(window(clean, failAt-5, failAt+outageTicks)),
			fmt.Sprintf("%d", clean.Events)},
		{"with outage", f3(window(failed, failAt-5, failAt+outageTicks)),
			fmt.Sprintf("%d", failed.Events)},
	}
	b.WriteString(table([]string{"scenario", "worst under [%] near the outage", "events"}, rows))

	// Recovery time: ticks from the failure until Y returns above the
	// disruption threshold.
	recovery := 0
	for i := failAt - 1; i < len(failed.UnderPct); i++ {
		if failed.UnderPct[i] < -core.SignificantUnderPct {
			recovery = i - (failAt - 1) + 1
		} else if i > failAt+2 {
			break
		}
	}
	fmt.Fprintf(&b, "\nThe operator re-acquires the lost capacity from other centers within\n")
	fmt.Fprintf(&b, "~%d tick(s) (%d minutes of disrupted play); a static deployment inside the\n",
		recovery, recovery*2)
	fmt.Fprintf(&b, "failed center would have been dark for the full %d minutes.\n", outageTicks*2)
	return b.String(), nil
}

// Ext10Resilience sweeps stochastic fault rates — MTBF/MTTR-driven
// center outages plus grant rejections and monitoring dropouts — and
// compares how dynamic and static provisioning degrade. Ext08 injects
// one scheduled outage; this extension turns the full stochastic
// injector on and raises the rate until the ecosystem is in constant
// churn. A static fleet rides out every outage of its home centers at
// full loss; the dynamic operator fails over within a tick and only
// the ecosystem-wide capacity dips remain.
func Ext10Resilience(o Options) (string, error) {
	opts := o.withDefaults()
	if !opts.Quick && opts.Days > 4 {
		opts.Days = 4
	}
	ds := provisioningTrace(opts)
	game := standardGame()
	neural := neuralFactory(opts)
	ticks := ds.Samples()

	// Fault mixes scaled to the trace length: MTBF as a share of the
	// run so quick mode still sees several outages per scenario.
	scenarios := []struct {
		name string
		cfg  *faults.Config
	}{
		{"none", nil},
		{"rare", &faults.Config{Seed: opts.Seed, MTBFTicks: float64(ticks) / 3,
			MTTRTicks: 30, DegradedShare: 0.5}},
		{"frequent", &faults.Config{Seed: opts.Seed, MTBFTicks: float64(ticks) / 8,
			MTTRTicks: 30, DegradedShare: 0.5, RejectProb: 0.02, DropoutProb: 0.02}},
		{"chaos", &faults.Config{Seed: opts.Seed, MTBFTicks: float64(ticks) / 20,
			MTTRTicks: 30, DegradedShare: 0.5, RejectProb: 0.05,
			PartialGrantProb: 0.05, DropoutProb: 0.05}},
	}

	type pair struct{ dyn, stat *core.Result }
	results, err := parallelMap(len(scenarios), func(i int) (pair, error) {
		dyn, err := core.Run(core.Config{
			Centers:   optimalCenters(),
			Faults:    scenarios[i].cfg,
			Workloads: []core.Workload{{Game: game, Dataset: ds, Predictor: neural}},
		})
		if err != nil {
			return pair{}, err
		}
		stat, err := core.Run(core.Config{
			Static:    true,
			Centers:   optimalCenters(),
			Faults:    scenarios[i].cfg,
			Workloads: []core.Workload{{Game: game, Dataset: ds}},
		})
		if err != nil {
			return pair{}, err
		}
		return pair{dyn: dyn, stat: stat}, nil
	})
	if err != nil {
		return "", err
	}

	meanAvail := func(r *core.Resilience) float64 {
		if len(r.Availability) == 0 {
			return 1
		}
		var sum float64
		for _, v := range r.Availability {
			sum += v
		}
		return sum / float64(len(r.Availability))
	}

	var b strings.Builder
	b.WriteString("Extension 10 — resilience under stochastic fault injection\n")
	fmt.Fprintf(&b, "(%d ticks; outages drawn per center from exp(MTBF)/exp(MTTR), seed %d)\n\n", ticks, opts.Seed)

	var rows [][]string
	for i, p := range results {
		r := p.dyn.Resilience
		rows = append(rows, []string{
			scenarios[i].name,
			fmt.Sprintf("%d (%d full)", r.Outages, r.FullOutages),
			fmt.Sprintf("%.2f%%", meanAvail(r)*100),
			f2(r.MeanTimeToRecoverTicks),
			fmt.Sprintf("%d", r.Failovers),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Rejections),
			fmt.Sprintf("%d", r.DroppedSamples),
		})
	}
	b.WriteString(table([]string{"faults", "outages", "avail", "svc MTTR [ticks]",
		"failovers", "retries", "rejections", "dropped"}, rows))

	b.WriteString("\nDynamic vs static under the same fault plans:\n\n")
	rows = rows[:0]
	for i, p := range results {
		rows = append(rows, []string{
			scenarios[i].name,
			fmt.Sprintf("%d", p.dyn.Events),
			f3(p.dyn.AvgUnderPct[datacenter.CPU]),
			fmt.Sprintf("%d", p.stat.Events),
			f3(p.stat.AvgUnderPct[datacenter.CPU]),
		})
	}
	b.WriteString(table([]string{"faults", "events (dyn)", "under [%] (dyn)",
		"events (static)", "under [%] (static)"}, rows))
	b.WriteString("\nThe dynamic operator re-leases lost capacity the same tick a center dies,\n")
	b.WriteString("so its disruption grows with the ecosystem-wide capacity actually missing;\n")
	b.WriteString("the static fleet loses its home center's full share for the whole outage\n")
	b.WriteString("and its events climb steeply with the fault rate — the resilience argument\n")
	b.WriteString("for renting from many hosters instead of owning one room of machines.\n")
	return b.String(), nil
}

// Ext09Horizon evaluates multi-step-ahead forecasts. The paper
// predicts one two-minute step, but the hosting policies' time bulks
// reserve resources for hours — a lease is really sized by where the
// load is heading, not by the next sample. The experiment scores the
// predictors at horizons of 2, 10, 30, and 60 minutes on the
// population trace (recursive forecasting for the window-based
// methods).
func Ext09Horizon(o Options) (string, error) {
	opts := o.withDefaults()
	if !opts.Quick && opts.Days > 4 {
		opts.Days = 4
	}
	ds := provisioningTrace(opts)
	neural := neuralFactory(opts)

	horizons := []int{1, 5, 15, 30}
	entries := []struct {
		name string
		f    predict.Factory
	}{
		{"Neural (pretrained)", neural},
		{"Last value", predict.NewLastValue()},
		{"Holt (trend)", predict.NewHolt(0.5, 0.1)},
		{"Exp. smoothing 50%", predict.NewExpSmoothing(0.5, "Exp. smoothing 50%")},
	}

	// Score a sample of groups (full per-zone multi-horizon
	// evaluation is O(zones * n * h)).
	groups := ds.Groups
	if len(groups) > 20 {
		groups = groups[:20]
	}

	var b strings.Builder
	b.WriteString("Extension 9 — forecast error [%] by horizon (recursive multi-step)\n\n")
	header := []string{"predictor"}
	for _, h := range horizons {
		header = append(header, fmt.Sprintf("h=%d (%dmin)", h, h*2))
	}
	rows, err := parallelMap(len(entries), func(i int) ([]string, error) {
		row := []string{entries[i].name}
		for _, h := range horizons {
			var errSum float64
			for _, g := range groups {
				errSum += predict.EvaluateHorizon(entries[i].f, g.Load.Values, h)
			}
			row = append(row, f2(errSum/float64(len(groups))))
		}
		return row, nil
	})
	if err != nil {
		return "", err
	}
	b.WriteString(table(header, rows))
	b.WriteString("\nErrors grow with the horizon for every method; the learned predictor keeps\n")
	b.WriteString("a clear edge at every horizon, because it extrapolates both the round\n")
	b.WriteString("cycle (short horizons) and the diurnal slope (long horizons) where the\n")
	b.WriteString("fixed methods capture at most one of the two.\n")
	return b.String(), nil
}
