package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRTTBase(t *testing.T) {
	if got := RTTmsAtDistance(0); got != 15 {
		t.Fatalf("zero-distance RTT = %v, want base penalty 15", got)
	}
	if got := RTTmsAtDistance(-5); got != 15 {
		t.Fatalf("negative distance RTT = %v", got)
	}
}

func TestRTTGrowsWithDistance(t *testing.T) {
	prev := 0.0
	for _, d := range []float64{0, 100, 1000, 5000, 15000} {
		rtt := RTTmsAtDistance(d)
		if rtt <= prev {
			t.Fatalf("RTT not increasing at %v km", d)
		}
		prev = rtt
	}
}

func TestRTTKnownScale(t *testing.T) {
	// Transatlantic (~5600 km London-NY): RTT should land in the
	// familiar 80-120 ms band.
	rtt := RTTms(London, NewYork)
	if rtt < 60 || rtt > 130 {
		t.Fatalf("London-NY RTT = %v ms, want ~60-130", rtt)
	}
	// Same metro: near the base penalty.
	if rtt := RTTmsAtDistance(20); rtt > 20 {
		t.Fatalf("metro RTT = %v ms", rtt)
	}
}

func TestMaxDistanceInversion(t *testing.T) {
	err := quick.Check(func(raw float64) bool {
		budget := 16 + math.Abs(math.Mod(raw, 400))
		d := MaxDistanceKmForRTT(budget)
		back := RTTmsAtDistance(d)
		return math.Abs(back-budget) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxDistanceBelowBase(t *testing.T) {
	if MaxDistanceKmForRTT(10) != 0 {
		t.Fatal("sub-base budget should force co-location")
	}
	if MaxDistanceKmForRTT(15) != 0 {
		t.Fatal("exact-base budget should force co-location")
	}
}

func TestClassForRTTGenreBudgets(t *testing.T) {
	if got := ClassForRTT(10); got != SameLocation {
		t.Errorf("ClassForRTT(10) = %v", got)
	}
	if got := ClassForRTT(30); got != VeryClose {
		// 15 ms of slack -> 937 km.
		t.Errorf("ClassForRTT(30) = %v", got)
	}
	if got := ClassForRTT(50); got != Far {
		// 35 ms -> 2187 km -> Far.
		t.Errorf("ClassForRTT(50) = %v", got)
	}
	if got := ClassForRTT(1000); got != VeryFar {
		t.Errorf("ClassForRTT(1000) = %v", got)
	}
}

func TestClassForRTTMonotone(t *testing.T) {
	prev := SameLocation
	for budget := 5.0; budget <= 500; budget += 5 {
		c := ClassForRTT(budget)
		if c < prev {
			t.Fatalf("class regressed at budget %v ms", budget)
		}
		prev = c
	}
}
