package core

import (
	"math"
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

// nanPredictor misbehaves on purpose: it forecasts NaN, then +Inf,
// then negative values, cycling.
type nanPredictor struct{ n int }

func (p *nanPredictor) Name() string    { return "nan" }
func (p *nanPredictor) Observe(float64) { p.n++ }
func (p *nanPredictor) Predict() float64 {
	switch p.n % 3 {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	default:
		return -100
	}
}

func TestMisbehavingPredictorDoesNotPoisonMetrics(t *testing.T) {
	ds := syntheticDataset(2, 60, 900)
	res, err := Run(Config{
		Centers: fineCenters(10),
		Workloads: []Workload{{
			Game: testGame(), Dataset: ds,
			Predictor: func() predict.Predictor { return &nanPredictor{} },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range res.AvgOverPct {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("over-allocation of %v is %v", datacenter.Resource(r), v)
		}
	}
	for r, v := range res.AvgUnderPct {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("under-allocation of %v is %v", datacenter.Resource(r), v)
		}
	}
	// A predictor that never requests anything leaves everything
	// under-allocated: events on every tick.
	if res.Events != res.Ticks {
		t.Errorf("events = %d, want every tick (%d)", res.Events, res.Ticks)
	}
}

func TestNoCentersMeansFullyUnmet(t *testing.T) {
	ds := syntheticDataset(2, 40, 900)
	res, err := Run(Config{
		Centers: nil,
		Workloads: []Workload{{
			Game: testGame(), Dataset: ds, Predictor: predict.NewLastValue(),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unmet != res.Ticks-1 && res.Unmet != res.Ticks {
		t.Fatalf("unmet = %d of %d ticks with no centers", res.Unmet, res.Ticks)
	}
	if res.Events != res.Ticks {
		t.Fatalf("every tick should be an event with no capacity, got %d/%d", res.Events, res.Ticks)
	}
}

func TestOutageHeavyTraceHandled(t *testing.T) {
	// Failure injection: a trace where outages constantly zero groups.
	ds := trace.Generate(trace.Config{
		Seed: 5, Days: 1, OutageRatePerDay: 40,
		Regions: []trace.Region{{ID: 0, Name: "Europe", Location: geo.London, Groups: 6}},
	})
	res, err := Run(Config{
		Centers: fineCenters(20),
		Workloads: []Workload{{
			Game: testGame(), Dataset: ds, Predictor: predict.NewLastValue(),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.OverPct {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("outage trace produced non-finite over-allocation")
		}
	}
}

func TestSimulationInvariantsAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ds := trace.Generate(trace.Config{
			Seed: seed, Days: 1,
			Regions: []trace.Region{{ID: 0, Name: "Europe", Location: geo.London, Groups: 5}},
		})
		res, err := Run(Config{
			Centers: fineCenters(15),
			Workloads: []Workload{{
				Game: testGame(), Dataset: ds, Predictor: predict.NewExpSmoothing(0.5, "e"),
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.OverPct) != res.Ticks || len(res.UnderPct) != res.Ticks || len(res.CumEvents) != res.Ticks {
			t.Fatalf("seed %d: series lengths inconsistent with ticks", seed)
		}
		for i, u := range res.UnderPct {
			if u > 1e-9 {
				t.Fatalf("seed %d: positive under-allocation %v at tick %d", seed, u, i)
			}
		}
		for i := 1; i < len(res.CumEvents); i++ {
			if res.CumEvents[i] < res.CumEvents[i-1] {
				t.Fatalf("seed %d: cumulative events decreased", seed)
			}
		}
		for r, v := range res.AvgUnderPct {
			if v > 1e-9 {
				t.Fatalf("seed %d: positive avg under-allocation %v for %v", seed, v, datacenter.Resource(r))
			}
		}
	}
}

func TestCentersNeverOverCommittedDuringRun(t *testing.T) {
	ds := trace.Generate(trace.Config{
		Seed: 9, Days: 1,
		Regions: []trace.Region{{ID: 0, Name: "Europe", Location: geo.London, Groups: 8}},
	})
	var b datacenter.Vector
	b[datacenter.CPU] = 0.25
	p := datacenter.HostingPolicy{Name: "x", Bulk: b, TimeBulk: time.Hour}
	centers := []*datacenter.Center{
		datacenter.NewCenter("a", geo.London, 3, p),
		datacenter.NewCenter("b", geo.London, 3, p),
	}
	_, err := Run(Config{
		Centers: centers,
		Workloads: []Workload{{
			Game: testGame(), Dataset: ds, Predictor: predict.NewLastValue(),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range centers {
		if !c.Allocated().FitsWithin(c.Capacity()) {
			t.Fatalf("center %s over-committed: %v > %v", c.Name, c.Allocated(), c.Capacity())
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() *Result {
		ds := trace.Generate(trace.Config{
			Seed: 77, Days: 1,
			Regions: []trace.Region{{ID: 0, Name: "Europe", Location: geo.London, Groups: 4}},
		})
		res, err := Run(Config{
			Centers: fineCenters(10),
			Workloads: []Workload{{
				Game: testGame(), Dataset: ds,
				Predictor: predict.NewNeural(predict.PaperNeuralConfig(5)),
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Events != b.Events || a.Unmet != b.Unmet {
		t.Fatalf("runs diverged: events %d/%d unmet %d/%d", a.Events, b.Events, a.Unmet, b.Unmet)
	}
	for i := range a.OverPct {
		if a.OverPct[i] != b.OverPct[i] {
			t.Fatalf("over-allocation series diverged at tick %d", i)
		}
	}
}

func TestUpdateModelSweepEventOrdering(t *testing.T) {
	// Fig. 10's shape in miniature: with the machine-based Y
	// denominator, the cubic model accumulates at least as many events
	// as the linear one on the same trace.
	run := func(m mmog.UpdateModel) int {
		ds := trace.Generate(trace.Config{Seed: 31, Days: 2,
			Regions: []trace.Region{{ID: 0, Name: "Europe", Location: geo.London, Groups: 10}}})
		g := mmog.NewGame("x", mmog.GenreMMORPG)
		g.Update = m
		res, err := Run(Config{
			Centers:   fineCenters(40),
			Workloads: []Workload{{Game: g, Dataset: ds, Predictor: predict.NewLastValue()}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Events
	}
	linear := run(mmog.UpdateLinear)
	cubic := run(mmog.UpdateCubic)
	if cubic < linear {
		t.Fatalf("cubic events %d < linear events %d", cubic, linear)
	}
}

func TestFailureInjectionCausesAndHealsDisruption(t *testing.T) {
	ds := syntheticDataset(4, 200, 1200)
	game := testGame()
	centers := fineCenters(20)
	res, err := Run(Config{
		Centers:  centers,
		Failures: []Failure{{Center: "dc", AtTick: 100, DurationTicks: 30}},
		Workloads: []Workload{{
			Game: game, Dataset: ds, Predictor: predict.NewLastValue(),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The tick after the failure shows a deep shortfall (the only
	// center died), and the operator recovers once it is back.
	atFailure := res.UnderPct[99] // tick index 100 scores at position 99
	if atFailure > -10 {
		t.Fatalf("failure tick under-allocation = %v, want deep dip", atFailure)
	}
	// While the only center is down, shortfalls persist; after
	// recovery (tick 130) the operator re-acquires within a tick.
	after := res.UnderPct[131]
	if after < -1 {
		t.Fatalf("post-recovery under-allocation = %v, want healed", after)
	}
	if centers[0].Offline() {
		t.Fatal("center should be recovered at the end")
	}
}

func TestFailureUnknownCenterRejected(t *testing.T) {
	// A failure naming no configured center used to be silently
	// skipped — a typo in a scenario file meant the outage never
	// happened. It is a configuration error like the other Failures
	// checks.
	ds := syntheticDataset(2, 50, 900)
	_, err := Run(Config{
		Centers:  fineCenters(10),
		Failures: []Failure{{Center: "nope", AtTick: 10, DurationTicks: 5}},
		Workloads: []Workload{{
			Game: testGame(), Dataset: ds, Predictor: predict.NewLastValue(),
		}},
	})
	if err == nil {
		t.Fatal("failure naming an unknown center should be a config error")
	}
}
