package predict

import "mmogdc/internal/neural"

// PaperNeuralConfig returns the canonical configuration of the paper's
// neural predictor as reproduced in this repository: a (6,3,1) MLP
// over the last six samples, a degree-2 polynomial de-noising
// preprocessor, residual (delta) outputs with auto-calibrated scaling,
// Huber-clipped updates, and a gentle online learning rate for
// deployment-time adaptation.
func PaperNeuralConfig(seed uint64) NeuralConfig {
	return NeuralConfig{
		Seed:               seed,
		Window:             6,
		Hidden:             3,
		Degree:             2,
		LearningRate:       0.01,
		OnlineLearningRate: 0.002,
		ErrorClip:          0.25,
	}
}

// PaperTrainConfig returns the offline training-era configuration used
// by the experiments: shuffled eras with learning-rate decay and the
// patience-based convergence criterion.
func PaperTrainConfig(shuffleSeed uint64) neural.TrainConfig {
	return neural.TrainConfig{
		LearningRate:   0.01,
		Momentum:       0.5,
		MaxEras:        80,
		Patience:       10,
		MinImprovement: 1e-5,
		ShuffleSeed:    shuffleSeed,
		LRDecay:        0.05,
		ErrorClip:      0.25,
	}
}
