// Package checkpoint implements the durable-state layer of the
// provisioning stack: a compact deterministic binary codec, a sealed
// (versioned + checksummed) blob format, and an atomic on-disk store
// that keeps the latest snapshots of a run and falls back to the
// previous good one when the newest is truncated or bit-flipped.
//
// The paper's middleware plays a contract-bound role between game
// operators and hosters; its online state — predictor histories,
// standing leases, backoff counters — must survive a controller
// restart. Everything in this package is built for that: encodings
// round-trip float64 values bit-exactly (so a restored run continues
// the uninterrupted trajectory), writes are temp-file + fsync + rename
// (a crash mid-write never destroys the previous snapshot), and a
// checksum mismatch is always a loud error, never a silently loaded
// half-checkpoint.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"time"
)

// Version is the current sealed-blob format version. Decoders reject
// blobs written by a different version rather than guessing.
const Version = 1

// magic marks a sealed checkpoint blob. Eight bytes, fixed.
const magic = "MMOGCKPT"

// headerLen is magic + version (u32) + payload length (u64) + CRC64.
const headerLen = len(magic) + 4 + 8 + 8

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrCorrupt reports a sealed blob that failed validation: truncated,
// bit-flipped, or not a checkpoint at all.
var ErrCorrupt = fmt.Errorf("checkpoint: corrupt or truncated blob")

// Seal frames a payload into a self-validating blob:
// magic | version | payload length | CRC64(payload) | payload.
func Seal(payload []byte) []byte {
	out := make([]byte, headerLen+len(payload))
	copy(out, magic)
	binary.LittleEndian.PutUint32(out[8:], Version)
	binary.LittleEndian.PutUint64(out[12:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(out[20:], crc64.Checksum(payload, crcTable))
	copy(out[headerLen:], payload)
	return out
}

// Open validates a sealed blob and returns its payload. Any damage —
// wrong magic, truncation, trailing garbage, checksum mismatch —
// yields an error wrapping ErrCorrupt; a version from a different
// format generation is reported distinctly.
func Open(blob []byte) ([]byte, error) {
	if len(blob) < headerLen || string(blob[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(blob[8:]); v != Version {
		return nil, fmt.Errorf("checkpoint: version %d, want %d", v, Version)
	}
	n := binary.LittleEndian.Uint64(blob[12:])
	if uint64(len(blob)-headerLen) != n {
		return nil, fmt.Errorf("%w: payload length %d, header says %d", ErrCorrupt, len(blob)-headerLen, n)
	}
	payload := blob[headerLen:]
	if crc64.Checksum(payload, crcTable) != binary.LittleEndian.Uint64(blob[20:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Enc appends primitives to a growing payload. All integers are
// little-endian fixed width; floats are IEEE-754 bit images, so NaN
// payloads and signed zeros round-trip exactly.
type Enc struct {
	b []byte
}

// NewEnc returns an empty encoder.
func NewEnc() *Enc { return &Enc{} }

// Data returns the encoded payload.
func (e *Enc) Data() []byte { return e.b }

// U64 appends an unsigned 64-bit value.
func (e *Enc) U64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

// Int appends a signed integer.
func (e *Enc) Int(v int) { e.U64(uint64(int64(v))) }

// F64 appends a float64 bit-exactly.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a boolean.
func (e *Enc) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Bytes appends a length-prefixed byte slice (for nested snapshots).
func (e *Enc) Bytes(p []byte) {
	e.U64(uint64(len(p)))
	e.b = append(e.b, p...)
}

// F64s appends a length-prefixed float64 slice.
func (e *Enc) F64s(vs []float64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// Ints appends a length-prefixed int slice.
func (e *Enc) Ints(vs []int) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.Int(v)
	}
}

// Time appends an instant with nanosecond precision.
func (e *Enc) Time(t time.Time) {
	e.Int(int(t.Unix()))
	e.Int(t.Nanosecond())
}

// Dec reads primitives back out of a payload. Errors are sticky: the
// first underrun poisons the decoder and every later read returns the
// zero value, so call sites can decode a whole record and check Err
// (or Close) once.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over the payload.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Close returns the first decoding error, or an error if the payload
// was not fully consumed (a length drift between writer and reader).
func (d *Dec) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b)-d.off)
	}
	return nil
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b)-d.off < n {
		d.err = fmt.Errorf("%w: payload underrun", ErrCorrupt)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// U64 reads an unsigned 64-bit value.
func (d *Dec) U64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// Int reads a signed integer.
func (d *Dec) Int() int { return int(int64(d.U64())) }

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a boolean.
func (d *Dec) Bool() bool {
	p := d.take(1)
	return p != nil && p[0] != 0
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.lenPrefixed()) }

// Bytes reads a length-prefixed byte slice.
func (d *Dec) Bytes() []byte {
	p := d.lenPrefixed()
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

func (d *Dec) lenPrefixed() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.err = fmt.Errorf("%w: length %d exceeds payload", ErrCorrupt, n)
		return nil
	}
	return d.take(int(n))
}

// F64s reads a length-prefixed float64 slice (nil when empty).
func (d *Dec) F64s() []float64 {
	n := d.U64()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.b)-d.off)/8 {
		d.err = fmt.Errorf("%w: slice length %d exceeds payload", ErrCorrupt, n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// Ints reads a length-prefixed int slice (nil when empty).
func (d *Dec) Ints() []int {
	n := d.U64()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.b)-d.off)/8 {
		d.err = fmt.Errorf("%w: slice length %d exceeds payload", ErrCorrupt, n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// Time reads an instant written by Enc.Time, in UTC.
func (d *Dec) Time() time.Time {
	sec := d.Int()
	nsec := d.Int()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(int64(sec), int64(nsec)).UTC()
}
