// Command tracegen generates a synthetic RuneScape-like population
// trace and writes it as CSV (one column per server group, one row per
// two-minute sample).
//
// Usage:
//
//	tracegen -days 14 -seed 42 -out trace.csv
//	tracegen -days 61 -fig2-events -out two_months.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"mmogdc/internal/trace"
)

func main() {
	var (
		days   = flag.Int("days", 14, "trace length in days")
		seed   = flag.Uint64("seed", 42, "random seed")
		out    = flag.String("out", "", "output file (default stdout)")
		events = flag.Bool("fig2-events", false, "include the Fig. 2 population events (crash + two surges)")
	)
	flag.Parse()

	cfg := trace.Config{Seed: *seed, Days: *days}
	if *events {
		cfg.Events = trace.Fig2Events()
	}
	ds := trace.Generate(cfg)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d groups x %d samples\n", len(ds.Groups), ds.Samples())
}
