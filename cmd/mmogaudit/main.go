// Command mmogaudit reconstructs a post-run provisioning audit from
// the telemetry artifacts a simulation wrote: the flight-recorder
// event stream, the metrics snapshot, and the span trace.
//
// Usage:
//
//	mmogsim -days 2 -mtbf 150 -obs-events run.jsonl -metrics-out run.json -trace-out run.trace
//	mmogaudit -events run.jsonl -metrics run.json -trace run.trace
//
// Only -events is required; the metrics and trace inputs unlock the
// consistency checks and the timing sections. -o writes the report to
// a file instead of stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"mmogdc/internal/audit"
)

func main() {
	var (
		eventsPath  = flag.String("events", "", "flight-recorder JSONL (from mmogsim -obs-events); required")
		metricsPath = flag.String("metrics", "", "metrics snapshot JSON (from mmogsim -metrics-out)")
		tracePath   = flag.String("trace", "", "Chrome trace_event JSON (from mmogsim -trace-out)")
		loadPath    = flag.String("load", "", "load-generator report JSON (from mmogload -o)")
		clientPath  = flag.String("client-trace", "", "client-side Chrome trace (from mmogload -trace-out); with -trace, unlocks the cross-process request critical path")
		mergedPath  = flag.String("merged-trace-out", "", "write the merged client+server Chrome trace here (requires -trace and -client-trace)")
		outPath     = flag.String("o", "", "write the report here instead of stdout")
		failUnclass = flag.Bool("fail-on-unclassified", false,
			"exit 1 when any SLA-breach episode has no attributable root cause")
		failMissed = flag.Bool("fail-on-missed-breach", false,
			"exit 1 when a breach episode fired no SLO alert (or no engine was armed at all)")
		failDrops = flag.Bool("fail-on-drops", false,
			"exit 1 on degraded telemetry: the recorder ring overwrote events or the event sink errored (needs -metrics)")
		failUnexplained = flag.Bool("fail-on-unexplained", false,
			"exit 1 when a breach episode's decision chain is incomplete (or the stream has episodes but no decision provenance at all)")
	)
	flag.Parse()

	if *eventsPath == "" {
		fmt.Fprintln(os.Stderr, "mmogaudit: -events is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*eventsPath)
	if err != nil {
		fatal(err)
	}
	events, err := audit.LoadEvents(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var md *audit.MetricsDoc
	if *metricsPath != "" {
		f, err := os.Open(*metricsPath)
		if err != nil {
			fatal(err)
		}
		md, err = audit.LoadMetrics(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	var tr *audit.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		tr, err = audit.LoadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	var clientTr *audit.Trace
	if *clientPath != "" {
		f, err := os.Open(*clientPath)
		if err != nil {
			fatal(err)
		}
		clientTr, err = audit.LoadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	report := audit.Analyze(events, md, tr)

	if clientTr != nil && tr != nil {
		rpp, merged := audit.CrossProcess(clientTr, tr)
		report.AttachRequestPath(rpp)
		if *mergedPath != "" {
			f, err := os.Create(*mergedPath)
			if err != nil {
				fatal(err)
			}
			err = audit.WriteMergedTrace(f, merged)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
		}
	} else if *mergedPath != "" {
		fmt.Fprintln(os.Stderr, "mmogaudit: -merged-trace-out needs both -trace and -client-trace")
		os.Exit(2)
	}

	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		ld, err := audit.LoadLoadReport(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		report.AttachLoad(ld)
	}

	out := os.Stdout
	if *outPath != "" {
		out, err = os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
	}
	if err := report.Render(out); err != nil {
		fatal(err)
	}

	// A failed consistency check is an audit finding, not a crash —
	// report it in the exit status so CI can gate on it.
	for _, c := range report.Checks {
		if !c.OK {
			fmt.Fprintf(os.Stderr, "mmogaudit: consistency check failed: %s (want %s, got %s)\n",
				c.Name, c.Want, c.Got)
			os.Exit(1)
		}
	}
	if *failUnclass && report.Unclassified > 0 {
		fmt.Fprintf(os.Stderr, "mmogaudit: %d SLA-breach episode(s) unclassified — no signal in the stream explains them\n",
			report.Unclassified)
		os.Exit(1)
	}
	if *failMissed {
		switch a := report.Alerts; {
		case a == nil && len(report.Episodes) > 0:
			fmt.Fprintf(os.Stderr, "mmogaudit: %d breach episode(s) but no SLO engine armed (no slo_alert events)\n",
				len(report.Episodes))
			os.Exit(1)
		case a != nil && a.Detected < a.Episodes:
			fmt.Fprintf(os.Stderr, "mmogaudit: %d of %d breach episode(s) fired no SLO alert\n",
				a.Episodes-a.Detected, a.Episodes)
			os.Exit(1)
		}
	}
	if *failDrops && (report.Recorder.Dropped > 0 || report.Recorder.SinkErrs > 0) {
		fmt.Fprintf(os.Stderr, "mmogaudit: degraded telemetry — %d event(s) overwritten by the recorder ring, %d sink error(s)\n",
			report.Recorder.Dropped, report.Recorder.SinkErrs)
		os.Exit(1)
	}
	if *failUnexplained {
		switch {
		case !report.HasDecisions && len(report.Episodes) > 0:
			fmt.Fprintf(os.Stderr, "mmogaudit: %d breach episode(s) but no decision provenance in the stream (run with -provenance / -explain)\n",
				len(report.Episodes))
			os.Exit(1)
		case report.UnexplainedChains > 0:
			fmt.Fprintf(os.Stderr, "mmogaudit: %d acquisition(s) in breach windows have no decision record\n",
				report.UnexplainedChains)
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
