package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"mmogdc/internal/slo"
)

// A clean drain releases every lease and flushes a final checkpoint, so
// the restart reconciles trivially: N ticks restored, nothing adopted,
// nothing lost, nothing orphaned.
func TestDrainCheckpointRestartClean(t *testing.T) {
	dir := t.TempDir()
	d := newTestDaemon(t, func(c *Config) { c.CheckpointDir = dir })
	srv := httptest.NewServer(d.Handler())

	const n = 6
	for i := 0; i < n; i++ {
		resp := postObserve(t, srv.URL, "g1", []float64{40, 60})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("observe -> %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	waitTicks(t, d, "g1", n)
	drain(t, d)
	srv.Close()

	// Restart into a fresh ecosystem (the old one died with the process).
	d2 := newTestDaemon(t, func(c *Config) { c.CheckpointDir = dir })
	defer drain(t, d2)
	tick, rec, ok := d2.Reconciliation("g1")
	if !ok {
		t.Fatal("restarted daemon reports no restore")
	}
	if tick != n {
		t.Fatalf("restored tick = %d, want %d", tick, n)
	}
	if rec.Adopted != 0 || rec.Lost != 0 || rec.Orphaned != 0 {
		t.Fatalf("clean drain should reconcile 0/0/0, got %+v", rec)
	}
	if got := d2.Ticks("g1"); got != n {
		t.Fatalf("restored operator at %d ticks, want %d", got, n)
	}
	// The restored checkpoint fixes the zone count: a mismatched
	// snapshot is refused before it can wedge the operator.
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	resp := postObserve(t, srv2.URL, "g1", []float64{1, 2, 3})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched zones after restore -> %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
}

// A crash (no drain) leaves live leases in the checkpoint; the restart
// into a fresh ecosystem must report them lost — the reconciliation is
// honest about what did not survive.
func TestCrashRestartReportsLostLeases(t *testing.T) {
	dir := t.TempDir()
	hot := fastHot()
	hot.CheckpointEvery = 1
	d := newTestDaemon(t, func(c *Config) {
		c.CheckpointDir = dir
		c.Hot = hot
	})
	srv := httptest.NewServer(d.Handler())

	for i := 0; i < 4; i++ {
		resp := postObserve(t, srv.URL, "g1", []float64{200, 100})
		resp.Body.Close()
	}
	waitTicks(t, d, "g1", 4)
	// Simulated crash: the process dies with leases on the books. The
	// first daemon is deliberately NOT drained before the restart.
	srv.Close()

	d2 := newTestDaemon(t, func(c *Config) { c.CheckpointDir = dir })
	tick, rec, ok := d2.Reconciliation("g1")
	if !ok || tick == 0 {
		t.Fatalf("no cadence checkpoint restored (ok=%v tick=%d)", ok, tick)
	}
	if rec.Lost == 0 {
		t.Fatalf("crash restart into a fresh ecosystem reconciled %+v, want Lost > 0", rec)
	}
	if rec.Adopted != 0 {
		t.Fatalf("nothing can be adopted from a dead ecosystem, got %+v", rec)
	}
	drain(t, d2)
	drain(t, d) // cleanup: stop the abandoned daemon's workers
}

func TestDrainDeadlineThenRecovery(t *testing.T) {
	hot := fastHot()
	hot.ObserveDelayMS = 200 // each queued sample holds the drain 200ms
	d := newTestDaemon(t, func(c *Config) {
		c.QueueDepth = 8
		c.Hot = hot
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	for i := 0; i < 4; i++ {
		resp := postObserve(t, srv.URL, "g1", []float64{10, 20})
		resp.Body.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := d.Drain(ctx)
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("drain err = %v, want ErrDrainTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want the context cause wrapped", err)
	}
	// cmd/mmogd hard-exits here; a caller that chooses to wait again
	// instead gets the completed shutdown once the workers flush.
	drain(t, d)
}

func TestReloadInvalidKeepsActiveConfig(t *testing.T) {
	d := newTestDaemon(t, nil)
	defer drain(t, d)
	before := d.Hot()

	bad := before
	bad.FaultRejectProb = 1.5
	if err := d.Reload(bad); err == nil {
		t.Fatal("Reload accepted fault_reject_prob = 1.5")
	}
	if !reflect.DeepEqual(d.Hot(), before) {
		t.Fatalf("rejected reload still swapped config: %+v", d.Hot())
	}
}

func TestConfigPostPartialMerge(t *testing.T) {
	d := newTestDaemon(t, nil)
	defer drain(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	before := d.Hot()

	// A partial body tweaks only the named fields.
	resp, err := http.Post(srv.URL+"/v1/config", "application/json",
		strings.NewReader(`{"checkpoint_every": 7, "fault_dropout_prob": 0.25}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("valid config POST -> %d", resp.StatusCode)
	}
	after := d.Hot()
	if after.CheckpointEvery != 7 || after.FaultDropoutProb != 0.25 {
		t.Fatalf("partial reload did not apply: %+v", after)
	}
	if after.TickSeconds != before.TickSeconds || after.ObserveTimeoutMS != before.ObserveTimeoutMS {
		t.Fatalf("partial reload clobbered unnamed fields: %+v", after)
	}

	// An invalid candidate is rejected with the typed error and the
	// active config stays as it was.
	resp, err = http.Post(srv.URL+"/v1/config", "application/json",
		strings.NewReader(`{"tick_seconds": -5}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config POST -> %d, want 400", resp.StatusCode)
	}
	if code := decodeError(t, resp); code != "invalid_config" {
		t.Fatalf("invalid config code %q", code)
	}
	if !reflect.DeepEqual(d.Hot(), after) {
		t.Fatalf("rejected POST still swapped config: %+v", d.Hot())
	}

	// An unknown field is a malformed body, not a silent no-op.
	resp, err = http.Post(srv.URL+"/v1/config", "application/json",
		strings.NewReader(`{"not_a_knob": true}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field config POST -> %d, want 400", resp.StatusCode)
	}
	if code := decodeError(t, resp); code != "malformed_body" {
		t.Fatalf("unknown-field code %q", code)
	}

	// GET /v1/config reports the active document.
	resp, err = http.Get(srv.URL + "/v1/config")
	if err != nil {
		t.Fatal(err)
	}
	var got HotConfig
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !reflect.DeepEqual(got, d.Hot()) {
		t.Fatalf("GET /v1/config = %+v, want %+v", got, d.Hot())
	}
}

// TestConfigGetPostRoundTrip pins that GET /v1/config emits a document
// the daemon itself accepts: after a partial merge, POSTing the GET
// body back re-validates cleanly and reproduces the active HotConfig
// bit for bit — the observable config is never a lossy rendering of
// the real one.
func TestConfigGetPostRoundTrip(t *testing.T) {
	hot := fastHot()
	hot.BreakerThreshold = 5
	hot.BreakerCooldown = 3
	hot.SLORules = []slo.RuleConfig{breachRule()}
	d := newTestDaemon(t, func(c *Config) { c.Hot = hot })
	defer drain(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Perturb the active config through a partial merge first, so the
	// round trip covers a state no static file ever described.
	resp, err := http.Post(srv.URL+"/v1/config", "application/json",
		strings.NewReader(`{"observe_delay_ms": 1, "fault_partial_prob": 0.125}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial merge -> %d", resp.StatusCode)
	}
	merged := d.Hot()

	get := func() string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/config")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	doc := get()

	// The GET document POSTs back without tripping validation or the
	// unknown-field guard.
	resp, err = http.Post(srv.URL+"/v1/config", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("round-trip POST -> %d", resp.StatusCode)
	}
	if !reflect.DeepEqual(d.Hot(), merged) {
		t.Fatalf("round trip changed the active config:\n%+v\n%+v", d.Hot(), merged)
	}
	if again := get(); again != doc {
		t.Fatalf("GET not stable across its own round trip:\n%s\n%s", doc, again)
	}
}

// Fault injection is hot-swappable: with reject probability 1 no grant
// can land, with 0 the next tick provisions normally.
func TestFaultInjectionHotSwap(t *testing.T) {
	hot := fastHot()
	hot.FaultRejectProb = 1
	d := newTestDaemon(t, func(c *Config) { c.Hot = hot })
	defer drain(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp := postObserve(t, srv.URL, "g1", []float64{100, 50})
	resp.Body.Close()
	waitTicks(t, d, "g1", 1)
	if n := leaseCount(t, srv.URL); n != 0 {
		t.Fatalf("%d leases granted under reject_prob=1", n)
	}

	ok := hot
	ok.FaultRejectProb = 0
	if err := d.Reload(ok); err != nil {
		t.Fatal(err)
	}
	resp = postObserve(t, srv.URL, "g1", []float64{100, 50})
	resp.Body.Close()
	waitTicks(t, d, "g1", 2)
	if n := leaseCount(t, srv.URL); n == 0 {
		t.Fatal("no leases after clearing the reject fault")
	}
}

func leaseCount(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/v1/leases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Count
}
