// Prediction: train and deploy the paper's neural load predictor.
//
// The example reproduces the predictor workflow of Section IV on one
// emulated game world: collect per-sub-zone entity counts from an
// earlier observation day, train the (6,3,1) network in eras until the
// convergence criterion fires, then predict a fresh day one step ahead
// and compare against the six classical baselines.
//
//	go run ./examples/prediction
package main

import (
	"fmt"

	"mmogdc/internal/emulator"
	"mmogdc/internal/predict"
)

func main() {
	// The game world: Table I "Set 2" — a fast-paced, aggressive
	// population with high instantaneous dynamics.
	cfg := emulator.TableIConfigs()[1]

	// Offline phase 1 — data-set collection: observe an earlier day of
	// the same game (same configuration, different randomness).
	collectCfg := cfg
	collectCfg.Seed += 1000
	collected := zonesOf(emulator.Run(collectCfg))

	// Offline phase 2 — era-based training on the pooled sub-zone
	// samples, with the polynomial preprocessor and the convergence
	// criterion of Section IV-C.
	ncfg := predict.PaperNeuralConfig(7)
	ncfg.Degree = -1 // raw windows suit the emulator's zone signals
	neural, report := predict.PretrainShared(ncfg, collected, 0.8, predict.PaperTrainConfig(11))
	fmt.Printf("offline training: %d eras, test loss %.4f, converged=%v\n\n",
		report.Eras, report.TestLoss, report.Converged)

	// Deployment: predict a fresh day of the same game, per sub-zone,
	// one step (two minutes) ahead.
	zones := zonesOf(emulator.Run(cfg))

	fmt.Printf("%-24s %10s\n", "predictor", "error [%]")
	fmt.Printf("%-24s %10.2f\n", "Neural", predict.EvaluateZonesFrom(neural, zones, 1))
	for _, f := range predict.Baselines() {
		fmt.Printf("%-24s %10.2f\n", f().Name(), predict.EvaluateZonesFrom(f, zones, 1))
	}
	fmt.Println("\nerror = sum of per-sample absolute prediction errors over the total player")
	fmt.Println("volume (Section IV-D2). Lower is better.")
}

func zonesOf(ds *emulator.DataSet) [][]float64 {
	out := make([][]float64, len(ds.Zones))
	for z, s := range ds.Zones {
		out[z] = s.Values
	}
	return out
}
