// Package operator implements the game operator's online provisioning
// loop as a reusable component — the middleware role the paper's
// edutain@grid project occupies between the game and the data centers.
// Every tick the operator ingests the monitored per-zone load,
// forecasts the next interval with its per-zone predictors, converts
// the forecast into a resource demand through the game's update model,
// and leases any shortfall from the ecosystem. The trace-driven
// batch simulator in internal/core implements the same cycle for whole
// experiment runs; this package is its online, incremental sibling for
// live deployments (see examples/live).
package operator

import (
	"fmt"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/ecosystem"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
)

// Config assembles an operator.
type Config struct {
	// Game fixes the update model, resource profile, and latency
	// tolerance.
	Game *mmog.Game
	// Origin is where the game's players are (for latency matching).
	Origin geo.Point
	// Predictor builds one predictor per monitored zone.
	Predictor predict.Factory
	// Matcher is the data-center ecosystem to lease from.
	Matcher *ecosystem.Matcher
	// SafetyMargin inflates forecasts before requesting (0 = exact).
	SafetyMargin float64
	// Tick is the monitoring interval; defaults to two minutes.
	Tick time.Duration
}

// Operator runs the predict→demand→lease cycle for one game.
type Operator struct {
	cfg    Config
	zones  *predict.ZoneSet
	leases []*datacenter.Lease
	ticks  int
	// running totals for Metrics.
	shortfallSum float64
	overSum      float64
	overTicks    int
	events       int
	lastForecast []float64
}

// New validates the configuration and returns an operator.
func New(cfg Config) (*Operator, error) {
	if cfg.Game == nil {
		return nil, fmt.Errorf("operator: game required")
	}
	if cfg.Predictor == nil {
		return nil, fmt.Errorf("operator: predictor required")
	}
	if cfg.Matcher == nil {
		return nil, fmt.Errorf("operator: matcher required")
	}
	if cfg.Tick == 0 {
		cfg.Tick = 2 * time.Minute
	}
	return &Operator{cfg: cfg}, nil
}

// Metrics summarizes the operator's run so far.
type Metrics struct {
	// Ticks is the number of Observe calls handled.
	Ticks int
	// AvgOverPct is the mean CPU over-allocation beyond the load.
	AvgOverPct float64
	// AvgShortfall is the mean unserved CPU demand in units.
	AvgShortfall float64
	// Events counts ticks whose shortfall exceeded 1% of the
	// session's machines.
	Events int
}

// Observe ingests one monitoring snapshot (per-zone loads at time
// now), scores the allocation that was in force against it, and leases
// toward the next interval's forecast. The zone count is fixed by the
// first call.
func (o *Operator) Observe(now time.Time, zoneLoads []float64) error {
	if o.zones == nil {
		o.zones = predict.NewZoneSet(o.cfg.Predictor, len(zoneLoads))
	}
	o.cfg.Matcher.Expire(now)

	// Score the standing allocation against the actual load.
	have := o.activeCPU(now)
	demand := o.demandFor(zoneLoads)
	load := demand[datacenter.CPU]
	if load > 0 {
		o.overSum += (have/load - 1) * 100
		o.overTicks++
	}
	if short := load - have; short > 0 {
		o.shortfallSum += short
		machines := have
		if machines < 1 {
			machines = 1
		}
		if short/machines*100 > 1 {
			o.events++
		}
	}
	o.ticks++

	// Forecast the next interval and lease the gap.
	if err := o.zones.Observe(zoneLoads); err != nil {
		return err
	}
	o.lastForecast = o.zones.PredictEach()
	want := o.demandFor(o.lastForecast)
	want = want.Scale(1 + o.cfg.SafetyMargin)
	need := want.Sub(o.allocAt(now.Add(o.cfg.Tick))).ClampNonNegative()
	if !need.IsZero() {
		leases, _ := o.cfg.Matcher.Allocate(ecosystem.Request{
			Tag:           o.cfg.Game.Name,
			Origin:        o.cfg.Origin,
			MaxDistanceKm: o.cfg.Game.LatencyKm,
			Demand:        need,
		}, now)
		o.leases = append(o.leases, leases...)
	}
	return nil
}

// Forecast returns the latest per-zone forecast (nil before the first
// Observe).
func (o *Operator) Forecast() []float64 { return o.lastForecast }

// Metrics returns the running summary.
func (o *Operator) Metrics() Metrics {
	m := Metrics{Ticks: o.ticks, Events: o.events}
	if o.overTicks > 0 {
		m.AvgOverPct = o.overSum / float64(o.overTicks)
	}
	if o.ticks > 0 {
		m.AvgShortfall = o.shortfallSum / float64(o.ticks)
	}
	return m
}

// demandFor converts per-zone loads into the total resource demand.
func (o *Operator) demandFor(zoneLoads []float64) datacenter.Vector {
	d := o.cfg.Game.DemandForZones(zoneLoads)
	var v datacenter.Vector
	v[datacenter.CPU] = d.CPU
	v[datacenter.Memory] = d.Memory
	v[datacenter.ExtNetIn] = d.ExtNetIn
	v[datacenter.ExtNetOut] = d.ExtNetOut
	return v
}

// activeCPU sums the live leases' CPU at now, pruning dead ones.
func (o *Operator) activeCPU(now time.Time) float64 {
	var sum float64
	live := o.leases[:0]
	for _, l := range o.leases {
		if l.Active(now) {
			sum += l.Alloc[datacenter.CPU]
			live = append(live, l)
		}
	}
	o.leases = live
	return sum
}

// allocAt sums leases still active at t, without pruning (the renewal
// check of the acquire phase).
func (o *Operator) allocAt(t time.Time) datacenter.Vector {
	var sum datacenter.Vector
	for _, l := range o.leases {
		if l.Active(t) {
			sum = sum.Add(l.Alloc)
		}
	}
	return sum
}
