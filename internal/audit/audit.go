// Package audit reconstructs a Section-V-style provisioning post-
// mortem from a finished run's telemetry artifacts: the flight-recorder
// JSONL event stream (-obs-events), the metrics snapshot
// (-metrics-out), and the Chrome trace_event span trace (-trace-out).
// cmd/mmogaudit is its CLI front end.
//
// The three inputs are complementary views of one run: events carry
// the total-ordered what-happened stream (every event, even ones the
// in-memory ring overwrote), the metrics document carries the run's
// aggregate truth (Result-derived counts the audit cross-checks the
// events against), and the trace carries timing — phase breakdowns and
// failover/retry latency come from span durations.
package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mmogdc/internal/core"
	"mmogdc/internal/obs"
)

// RecorderStats is the flight recorder's loss accounting as written
// into the metrics document.
type RecorderStats struct {
	Total    uint64 `json:"total"`
	Retained int    `json:"retained"`
	Dropped  uint64 `json:"dropped"`
	SinkErrs uint64 `json:"sink_errs"`
}

// MetricsDoc is the -metrics-out document: the full registry snapshot
// plus the run's headline results. BuildMetricsDoc writes it,
// LoadMetrics reads it back.
type MetricsDoc struct {
	Metrics    map[string]any   `json:"metrics"`
	Resilience *core.Resilience `json:"resilience"`
	Ticks      int              `json:"ticks"`
	Events     int              `json:"events"`
	Unmet      int              `json:"unmet"`
	Recorder   RecorderStats    `json:"recorder"`
}

// BuildMetricsDoc assembles the metrics document for one finished run —
// the single definition cmd/mmogsim serializes and this package parses,
// so writer and reader cannot drift apart. It syncs the recorder-loss
// gauges first, so the embedded snapshot carries them too.
func BuildMetricsDoc(telemetry *obs.Obs, res *core.Result) *MetricsDoc {
	telemetry.SyncRecorderGauges()
	rec := telemetry.Rec()
	return &MetricsDoc{
		Metrics:    telemetry.Reg().Snapshot(),
		Resilience: res.Resilience,
		Ticks:      res.Ticks,
		Events:     res.Events,
		Unmet:      res.Unmet,
		Recorder: RecorderStats{
			Total:    rec.Total(),
			Retained: rec.Len(),
			Dropped:  rec.Dropped(),
			SinkErrs: rec.SinkErrs(),
		},
	}
}

// LoadEvents parses a flight-recorder JSONL stream (one obs.Event per
// line, as written by Recorder.SetSink). Blank lines are skipped; a
// malformed line fails with its line number.
func LoadEvents(r io.Reader) ([]obs.Event, error) {
	var out []obs.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal(text, &e); err != nil {
			return nil, fmt.Errorf("audit: events line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("audit: events: %w", err)
	}
	return out, nil
}

// LoadMetrics parses a -metrics-out document.
func LoadMetrics(r io.Reader) (*MetricsDoc, error) {
	var doc MetricsDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("audit: metrics: %w", err)
	}
	return &doc, nil
}

// TraceEvent is one Chrome trace_event object as exported by
// obs.Tracer.WriteTrace.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id"`
	Args map[string]any `json:"args"`
}

// Trace is a parsed Chrome trace_event document.
type Trace struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
}

// LoadTrace parses a Chrome trace_event JSON document
// ({"traceEvents": [...]}).
func LoadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("audit: trace: %w", err)
	}
	return &t, nil
}
