package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrNoCheckpoint reports a directory that holds no checkpoint files
// at all — a fresh start, not a failure.
var ErrNoCheckpoint = fmt.Errorf("checkpoint: no checkpoint found")

// filePrefix and fileSuffix frame the on-disk naming:
// checkpoint-<tick>.ckpt, zero-padded so lexical order is tick order.
const (
	filePrefix = "checkpoint-"
	fileSuffix = ".ckpt"
)

// Manager stores sealed snapshots in a directory, one file per tick,
// written atomically. It keeps the newest Keep snapshots so that a
// corrupted latest file still leaves a previous good one to fall back
// to.
type Manager struct {
	dir string
	// Keep is how many snapshots survive pruning (minimum 2: the
	// corruption fallback needs a predecessor).
	Keep int
}

// NewManager creates the directory if needed and returns a manager
// over it.
func NewManager(dir string) (*Manager, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Manager{dir: dir, Keep: 2}, nil
}

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// Path returns the file name a snapshot of the given tick uses.
func (m *Manager) Path(tick int) string {
	return filepath.Join(m.dir, fmt.Sprintf("%s%09d%s", filePrefix, tick, fileSuffix))
}

// Save seals the payload and writes it atomically (temp file + fsync +
// rename, then directory fsync), pruning all but the newest Keep
// snapshots. A crash at any instant leaves either the previous set of
// files or the new one — never a half-written checkpoint under the
// final name.
func (m *Manager) Save(tick int, payload []byte) error {
	blob := Seal(payload)
	final := m.Path(tick)
	tmp, err := os.CreateTemp(m.dir, filePrefix+"tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if d, err := os.Open(m.dir); err == nil {
		// Persist the rename itself; without this a power cut can roll
		// the directory entry back even though the data blocks are safe.
		d.Sync()
		d.Close()
	}
	m.prune()
	return nil
}

// prune removes all but the newest Keep snapshots (best effort).
func (m *Manager) prune() {
	ticks, _ := m.Ticks()
	keep := m.Keep
	if keep < 2 {
		keep = 2
	}
	for i := 0; i < len(ticks)-keep; i++ {
		os.Remove(m.Path(ticks[i]))
	}
}

// Ticks lists the stored snapshot ticks in ascending order.
func (m *Manager) Ticks() ([]int, error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var ticks []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix)
		t, err := strconv.Atoi(num)
		if err != nil {
			continue // temp files and strangers are not checkpoints
		}
		ticks = append(ticks, t)
	}
	sort.Ints(ticks)
	return ticks, nil
}

// Snapshot is one validated checkpoint loaded from the store.
type Snapshot struct {
	// Tick is the simulation tick the snapshot was taken at.
	Tick int
	// Payload is the decoded (checksum-verified) checkpoint payload.
	Payload []byte
	// Corrupt names newer snapshot files that failed validation and
	// were skipped to reach this one — surfaced so callers can warn.
	Corrupt []string
}

// Latest loads the newest valid snapshot, falling back over corrupted
// files to the previous good one. It returns ErrNoCheckpoint when the
// directory holds no checkpoint files, and a hard error when files
// exist but none validates — a damaged store must never be mistaken
// for a fresh start.
func (m *Manager) Latest() (*Snapshot, error) {
	ticks, err := m.Ticks()
	if err != nil {
		return nil, err
	}
	if len(ticks) == 0 {
		return nil, ErrNoCheckpoint
	}
	var corrupt []string
	for i := len(ticks) - 1; i >= 0; i-- {
		path := m.Path(ticks[i])
		blob, err := os.ReadFile(path)
		if err == nil {
			var payload []byte
			if payload, err = Open(blob); err == nil {
				return &Snapshot{Tick: ticks[i], Payload: payload, Corrupt: corrupt}, nil
			}
		}
		corrupt = append(corrupt, filepath.Base(path))
	}
	return nil, fmt.Errorf("checkpoint: all %d snapshot(s) corrupt (%s): %w",
		len(corrupt), strings.Join(corrupt, ", "), ErrCorrupt)
}
