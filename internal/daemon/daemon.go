package daemon

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"mmogdc/internal/checkpoint"
	"mmogdc/internal/ecosystem"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/obs"
	"mmogdc/internal/operator"
	"mmogdc/internal/slo"
	"mmogdc/internal/xrand"
)

// ErrDrainTimeout is returned by Drain when the deadline expires
// before the in-flight work flushed; cmd/mmogd hard-exits with a
// distinct code on it.
var ErrDrainTimeout = errors.New("daemon: drain deadline exceeded")

// sample is one admitted observation waiting in a game's ingest queue.
type sample struct {
	values []float64
	tick   int64
	enq    time.Time
	// span is the admitting HTTP request's span ID (0 when tracing is
	// off): the queue-wait and observe spans hang off it, so a merged
	// trace shows the whole request-scoped critical path.
	span obs.SpanID
}

// game is one provisioned game's runtime state: the operator, its
// bounded ingest queue, the worker metrics, and the checkpoint store.
type game struct {
	spec GameSpec
	// region is the failure domain the game is homed in
	// (geo.RegionOf(spec.Origin)); the circuit breaker gates admission
	// by it.
	region string
	mgr    *checkpoint.Manager

	// op, now, and dropRng are guarded by Daemon.ecoMu (the operator
	// shares the matcher with every other game).
	op      *operator.Operator
	now     time.Time
	dropRng *xrand.Rand

	// Restore outcome (nil when the game started fresh).
	rec          *operator.Reconciliation
	restoredTick int

	// qmu guards queue against the close in BeginDrain; admission
	// holds it shared, the drain exclusively.
	qmu    sync.RWMutex
	queue  chan sample
	closed bool

	// explain retains the game's recent decision records when
	// Config.ExplainDepth is set (nil otherwise). Guarded by ecoMu.
	explain *explainRing

	// zones is the expected zone count (0 until the first accepted
	// observation or a restored checkpoint fixes it).
	zones atomic.Int64
	// tick numbers admitted observations (the value 202 responses
	// report).
	tick atomic.Int64

	mIngest     *obs.Counter
	mShed       *obs.Counter
	mTimeouts   *obs.Counter
	mErrors     *obs.Counter
	mCkpt       *obs.Counter
	mCkptErrs   *obs.Counter
	mQueueDepth *obs.Gauge
	mLoop       *obs.Histogram
}

// Daemon is the running provisioning service. Build one with New,
// expose it with Serve (or Handler), and stop it with Drain.
type Daemon struct {
	cfg   Config
	hot   atomic.Pointer[HotConfig]
	obs   *obs.Obs
	games map[string]*game
	order []string

	// ecoMu serializes every touch of the shared matcher and the
	// operators behind it — the ecosystem is single-threaded by
	// contract, so observes, ops reads, and the drain all line up here.
	ecoMu sync.Mutex

	inj *grantInjector
	brk *breaker

	// slo is the burn-rate alert engine compiled from the hot config's
	// rules (nil when none are configured — the common case). Swapped
	// whole on reload; Eval is internally locked, so the per-game
	// workers evaluate without holding ecoMu.
	slo atomic.Pointer[slo.Engine]

	draining  atomic.Bool
	drainOnce sync.Once
	wg        sync.WaitGroup

	mRejected     map[string]*obs.Counter
	mReloadOK     *obs.Counter
	mReloadBad    *obs.Counter
	mDraining     *obs.Gauge
	mDrainSeconds *obs.Gauge
}

// New validates cfg, restores any checkpointed state, installs the
// grant-fault injector on the matcher, and starts one ingest worker
// per game. The daemon is live (but unreachable) until Serve.
func New(cfg Config) (*Daemon, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:       cfg,
		obs:       cfg.Obs,
		games:     make(map[string]*game, len(cfg.Games)),
		mRejected: map[string]*obs.Counter{},
	}
	hot := cfg.Hot
	d.hot.Store(&hot)
	d.inj = newGrantInjector(d, hot.FaultSeed)
	cfg.Matcher.SetFaultInjector(d.inj)
	d.brk = newBreaker(d, cfg.Matcher.Centers())
	if cfg.ExplainDepth > 0 && cfg.Matcher.DecisionLog() == nil {
		cfg.Matcher.SetDecisionLog(ecosystem.NewDecisionLog(cfg.ExplainDepth))
	}

	r := d.obs.Registry
	d.mReloadOK = r.Counter("mmogdc_daemon_reloads_total",
		"Hot config reloads by outcome.", obs.L("outcome", "applied"))
	d.mReloadBad = r.Counter("mmogdc_daemon_reloads_total",
		"Hot config reloads by outcome.", obs.L("outcome", "rejected"))
	d.mDraining = r.Gauge("mmogdc_daemon_draining",
		"1 while the daemon is draining (readyz reports 503).")
	d.mDrainSeconds = r.Gauge("mmogdc_daemon_drain_seconds",
		"Wall-clock duration of the completed drain.")

	for _, spec := range cfg.Games {
		g, err := d.newGame(spec, hot)
		if err != nil {
			return nil, err
		}
		d.games[spec.Name] = g
		d.order = append(d.order, spec.Name)
	}
	// Rules were validated with the rest of the hot config; compiling
	// them needs d.order for the default-game resolution, so it happens
	// after the games exist and before any worker can evaluate.
	if err := d.rebuildSLO(hot); err != nil {
		return nil, err
	}
	for _, name := range d.order {
		d.wg.Add(1)
		go d.worker(d.games[name])
	}
	return d, nil
}

// rebuildSLO swaps in an engine compiled from h's rules (nil when h
// has none) and deactivates the outgoing engine's alerts so a retired
// rule cannot leave a stuck mmogdc_slo_alert_active series.
func (d *Daemon) rebuildSLO(h HotConfig) error {
	var eng *slo.Engine
	if len(h.SLORules) > 0 {
		var err error
		eng, err = slo.NewEngine(h.SLORules, d.obs.Registry, d.obs.Recorder, d.order[0])
		if err != nil {
			return err
		}
	}
	if old := d.slo.Swap(eng); old != nil {
		old.Deactivate()
	}
	return nil
}

func (d *Daemon) newGame(spec GameSpec, hot HotConfig) (*game, error) {
	opCfg := operator.Config{
		Game:         mmog.NewGame(spec.Name, spec.Genre),
		Origin:       spec.Origin,
		Predictor:    d.cfg.Predictor,
		Matcher:      d.cfg.Matcher,
		SafetyMargin: d.cfg.SafetyMargin,
		Tick:         hot.Tick(),
		Obs:          d.obs,
	}
	g := &game{
		spec:         spec,
		region:       geo.RegionOf(spec.Origin),
		queue:        make(chan sample, d.cfg.QueueDepth),
		now:          d.cfg.Start,
		dropRng:      xrand.New(hot.FaultSeed ^ 0xd40f001d5eed ^ hashName(spec.Name)),
		restoredTick: -1,
	}
	if d.cfg.ExplainDepth > 0 {
		g.explain = newExplainRing(d.cfg.ExplainDepth)
	}
	if d.cfg.CheckpointDir != "" {
		mgr, err := checkpoint.NewManager(filepath.Join(d.cfg.CheckpointDir, spec.Name))
		if err != nil {
			return nil, err
		}
		g.mgr = mgr
		snap, err := mgr.Latest()
		switch {
		case err == nil:
			op, rec, rerr := operator.FromSnapshot(opCfg, snap.Payload)
			if rerr != nil {
				return nil, rerr
			}
			g.op, g.rec, g.restoredTick = op, rec, snap.Tick
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Fresh game.
		default:
			return nil, err
		}
	}
	if g.op == nil {
		op, err := operator.New(opCfg)
		if err != nil {
			return nil, err
		}
		g.op = op
	}
	ticks := g.op.Metrics().Ticks
	g.tick.Store(int64(ticks))
	g.now = d.cfg.Start.Add(time.Duration(ticks) * hot.Tick())
	if z := g.op.ZoneCount(); z > 0 {
		g.zones.Store(int64(z))
	}

	r := d.obs.Registry
	lg := obs.L("game", spec.Name)
	g.mIngest = r.Counter("mmogdc_daemon_ingest_total",
		"Observations admitted into the ingest queue.", lg)
	g.mShed = r.Counter("mmogdc_daemon_shed_total",
		"Observations shed with 429 because the ingest queue was full.", lg)
	g.mTimeouts = r.Counter("mmogdc_daemon_observe_timeouts_total",
		"Observe passes cut short by the observe deadline.", lg)
	g.mErrors = r.Counter("mmogdc_daemon_observe_errors_total",
		"Observe passes that failed outright.", lg)
	g.mCkpt = r.Counter("mmogdc_daemon_checkpoints_total",
		"Cadence and drain checkpoints written.", lg)
	g.mCkptErrs = r.Counter("mmogdc_daemon_checkpoint_errors_total",
		"Checkpoint writes that failed.", lg)
	g.mQueueDepth = r.Gauge("mmogdc_daemon_queue_depth",
		"Observations waiting in the ingest queue.", lg)
	g.mLoop = r.Histogram("mmogdc_daemon_observe_loop_seconds",
		"Admission-to-observed latency of one observation (queue wait plus the observe pass).",
		obs.TimeBuckets, lg)
	return g, nil
}

// hashName folds a game name into the per-game dropout stream seed
// (FNV-1a) so co-hosted games do not share dropout patterns.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Hot returns the active hot configuration.
func (d *Daemon) Hot() HotConfig { return *d.hot.Load() }

// Reload validates h and, if valid, swaps it in atomically; an invalid
// candidate is rejected and the previous configuration stays active.
// Changing FaultSeed reseeds the injection streams.
func (d *Daemon) Reload(h HotConfig) error {
	if err := h.Validate(); err != nil {
		d.mReloadBad.Inc()
		return err
	}
	old := d.hot.Load()
	d.hot.Store(&h)
	if h.FaultSeed != old.FaultSeed {
		d.inj.reseed(h.FaultSeed)
		d.ecoMu.Lock()
		for _, name := range d.order {
			g := d.games[name]
			g.dropRng = xrand.New(h.FaultSeed ^ 0xd40f001d5eed ^ hashName(name))
		}
		d.ecoMu.Unlock()
	}
	if !reflect.DeepEqual(old.SLORules, h.SLORules) {
		// Cannot fail: Validate above already accepted the rules.
		_ = d.rebuildSLO(h)
	}
	d.mReloadOK.Inc()
	return nil
}

// Draining reports whether the daemon has stopped admitting.
func (d *Daemon) Draining() bool { return d.draining.Load() }

// Reconciliation returns the named game's restore outcome: the
// checkpoint tick and the lease reconciliation, or ok=false when the
// game started fresh (or is unknown).
func (d *Daemon) Reconciliation(gameName string) (tick int, rec operator.Reconciliation, ok bool) {
	g := d.games[gameName]
	if g == nil || g.rec == nil {
		return 0, operator.Reconciliation{}, false
	}
	return g.restoredTick, *g.rec, true
}

// Admission error sentinels (mapped to typed HTTP errors in server.go).
var (
	errQueueFull = errors.New("daemon: ingest queue full")
	errDraining  = errors.New("daemon: draining")
)

// enqueue admits one observation into g's bounded queue, or reports
// why it cannot: the daemon is draining, or the queue is full (the
// caller sheds with 429 + Retry-After).
func (d *Daemon) enqueue(g *game, values []float64, span obs.SpanID) (int64, error) {
	g.qmu.RLock()
	defer g.qmu.RUnlock()
	if g.closed || d.draining.Load() {
		return 0, errDraining
	}
	// The obs clock (System by default) stamps admission so the
	// queue-wait span and the observe-loop histogram share one
	// timebase — and tests with a ManualClock get deterministic waits.
	s := sample{values: values, span: span, enq: d.obs.Now()}
	select {
	case g.queue <- s:
		tick := g.tick.Add(1)
		g.mIngest.Inc()
		g.mQueueDepth.Set(float64(len(g.queue)))
		return tick, nil
	default:
		g.mShed.Inc()
		return 0, errQueueFull
	}
}

// worker drains one game's ingest queue until BeginDrain closes it.
func (d *Daemon) worker(g *game) {
	defer d.wg.Done()
	for s := range g.queue {
		d.observeOne(g, s)
	}
}

// observeOne runs one admitted observation through the operator:
// injected dropouts, the context deadline, the virtual clock advance,
// and the checkpoint cadence.
func (d *Daemon) observeOne(g *game, s sample) {
	hot := d.hot.Load()
	if delay := hot.ObserveDelay(); delay > 0 {
		// The injected slow-observe happens outside the ecosystem lock
		// so the ops endpoints stay responsive while the queue backs up.
		time.Sleep(delay)
	}
	ctx := context.Background()
	if t := hot.ObserveTimeout(); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	// With tracing on, close the request's queue-wait span and open
	// the observe span; the operator picks the latter up from the
	// context so its cycle/acquire spans chain to the request.
	var obSpan *obs.Span
	if trc := d.obs.Trc(); trc != nil {
		deq := d.obs.Now()
		trc.Complete(obs.SpanRec{
			Name: "daemon.queue_wait", Cat: "daemon", Parent: s.span,
			Subject: g.spec.Name, Start: s.enq, End: deq,
		})
		obSpan = trc.BeginAt("daemon.observe", "daemon", s.span, deq)
		obSpan.SetSubject(g.spec.Name)
		ctx = obs.ContextWithSpan(ctx, obSpan.ID())
	}

	d.ecoMu.Lock()
	if p := hot.FaultDropoutProb; p > 0 {
		for i := range s.values {
			if g.dropRng.Bool(p) {
				s.values[i] = math.NaN()
			}
		}
	}
	vnow := g.now // this observation's virtual game time
	err := g.op.ObserveCtx(ctx, g.now, s.values)
	// Feed the circuit breaker while the scratch slices are still valid
	// (GrantActivity aliases per-tick buffers the next Observe reuses).
	granted, rejected := g.op.GrantActivity()
	d.brk.record(granted, rejected)
	// Same aliasing rule for the decision record: copy it into the
	// explain ring before the next Observe can reuse the log slot.
	if g.explain != nil {
		if dec := g.op.LastDecision(); dec != nil {
			g.explain.push(dec)
		}
	}
	g.now = g.now.Add(hot.Tick())
	ticks := g.op.Metrics().Ticks
	var payload []byte
	needCkpt := g.mgr != nil && hot.CheckpointEvery > 0 && ticks > 0 && ticks%hot.CheckpointEvery == 0
	if needCkpt {
		var serr error
		if payload, serr = g.op.Snapshot(); serr != nil {
			needCkpt = false
			g.mCkptErrs.Inc()
		}
	}
	d.ecoMu.Unlock()

	switch {
	case err == nil:
	case errors.Is(err, operator.ErrObserveAborted), errors.Is(err, operator.ErrAcquireAborted):
		g.mTimeouts.Inc()
	default:
		g.mErrors.Inc()
	}
	if needCkpt {
		if err := g.mgr.Save(ticks, payload); err != nil {
			g.mCkptErrs.Inc()
		} else {
			g.mCkpt.Inc()
		}
	}
	// Evaluate the burn-rate rules on the observation's virtual clock
	// (ticks-1 is this observation's tick index — the same axis the
	// operator's sla_breach events use, so mmogaudit can score
	// detection lag). Reading the registry outside ecoMu is safe: the
	// instruments are atomics.
	if eng := d.slo.Load(); eng != nil {
		eng.Eval(g.spec.Name, ticks-1, vnow)
	}
	end := d.obs.Now()
	if obSpan != nil {
		obSpan.SetTick(ticks - 1)
		obSpan.EndAt(end)
	}
	g.mLoop.Observe(end.Sub(s.enq).Seconds())
	g.mQueueDepth.Set(float64(len(g.queue)))
}

// BeginDrain flips the daemon into draining: /readyz reports 503, new
// observations are refused with 503, and each game's queue is closed
// so the workers exit after flushing what is already admitted.
// Idempotent.
func (d *Daemon) BeginDrain() {
	d.drainOnce.Do(func() {
		d.draining.Store(true)
		d.mDraining.Set(1)
		for _, name := range d.order {
			g := d.games[name]
			g.qmu.Lock()
			g.closed = true
			close(g.queue)
			g.qmu.Unlock()
		}
	})
}

// Drain gracefully stops the daemon: BeginDrain, wait for every
// in-flight and queued observation to flush (each bounded by the
// observe deadline), then release all leases via Operator.Shutdown and
// flush a final checkpoint per game. If ctx expires before the flush
// completes, Drain returns ErrDrainTimeout (wrapping the context
// error) without shutting the operators down — the caller hard-exits.
// After a timeout, a later call retries the wait and completes the
// shutdown once the workers have flushed.
func (d *Daemon) Drain(ctx context.Context) error {
	start := time.Now()
	d.BeginDrain()
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", ErrDrainTimeout, ctx.Err())
	}

	var firstErr error
	for _, name := range d.order {
		g := d.games[name]
		d.ecoMu.Lock()
		err := g.op.Shutdown(g.now, nil)
		var payload []byte
		ticks := g.op.Metrics().Ticks
		if err == nil && g.mgr != nil {
			payload, err = g.op.Snapshot()
		}
		d.ecoMu.Unlock()
		if err == nil && g.mgr != nil {
			err = g.mgr.Save(ticks, payload)
		}
		if err != nil {
			g.mCkptErrs.Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("daemon: drain %q: %w", name, err)
			}
			continue
		}
		if g.mgr != nil {
			g.mCkpt.Inc()
		}
	}
	d.mDrainSeconds.Set(time.Since(start).Seconds())
	return firstErr
}

// Ticks returns the named game's observed tick count (0 for unknown
// games).
func (d *Daemon) Ticks(gameName string) int {
	g := d.games[gameName]
	if g == nil {
		return 0
	}
	d.ecoMu.Lock()
	defer d.ecoMu.Unlock()
	return g.op.Metrics().Ticks
}
