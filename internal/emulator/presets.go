package emulator

import "time"

// seriesStart anchors the emitted series; the absolute date is
// irrelevant to prediction, only the 2-minute tick matters.
var seriesStart = time.Date(2008, 3, 1, 0, 0, 0, 0, time.UTC)

// TableIConfigs returns the paper's eight emulator configurations
// (Table I). The profile mixes, peak-hours flags, and data-set names
// are taken directly from the table; the qualitative dynamics levels
// are assigned so the sets fall into the paper's three signal classes:
//
//	Type I   (sets 2, 3, 4): high instantaneous, medium overall;
//	Type II  (sets 6, 7, 8): low instantaneous;
//	Type III (sets 1, 5):    medium instantaneous.
//
// Seeds differ per set so the eight signals are independent.
func TableIConfigs() []Config {
	return []Config{
		{Name: "Set 1", Seed: 101, ProfileMix: [4]float64{80, 10, 0, 10},
			PeakHours: false, PeakLoad: High, Overall: Medium, Instant: Medium},
		{Name: "Set 2", Seed: 102, ProfileMix: [4]float64{60, 10, 0, 20},
			PeakHours: false, PeakLoad: High, Overall: Medium, Instant: High},
		{Name: "Set 3", Seed: 103, ProfileMix: [4]float64{70, 20, 0, 10},
			PeakHours: false, PeakLoad: High, Overall: Medium, Instant: High},
		{Name: "Set 4", Seed: 104, ProfileMix: [4]float64{70, 30, 0, 0},
			PeakHours: false, PeakLoad: High, Overall: Medium, Instant: High},
		{Name: "Set 5", Seed: 105, ProfileMix: [4]float64{30, 40, 30, 0},
			PeakHours: true, PeakLoad: Medium, Overall: High, Instant: Medium},
		{Name: "Set 6", Seed: 106, ProfileMix: [4]float64{10, 80, 10, 0},
			PeakHours: true, PeakLoad: Medium, Overall: High, Instant: Low},
		{Name: "Set 7", Seed: 107, ProfileMix: [4]float64{20, 40, 40, 0},
			PeakHours: true, PeakLoad: Medium, Overall: High, Instant: Low},
		{Name: "Set 8", Seed: 108, ProfileMix: [4]float64{20, 80, 0, 0},
			PeakHours: true, PeakLoad: Medium, Overall: High, Instant: Low},
	}
}

// SignalType classifies a Table I set the way Section IV-D1 does.
type SignalType int

const (
	// TypeI signals have high instantaneous and medium overall
	// dynamics (sets 2, 3, 4).
	TypeI SignalType = iota + 1
	// TypeII signals have low instantaneous dynamics (sets 6, 7, 8).
	TypeII
	// TypeIII signals have medium instantaneous dynamics (sets 1, 5).
	TypeIII
)

// SignalTypeOf returns the signal class of a configuration.
func SignalTypeOf(c Config) SignalType {
	switch c.Instant {
	case High:
		return TypeI
	case Low:
		return TypeII
	default:
		return TypeIII
	}
}
