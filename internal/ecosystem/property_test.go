package ecosystem

import (
	"math"
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
	"mmogdc/internal/xrand"
)

// TestMatcherInvariantsUnderRandomLoad drives the matcher with random
// request streams against random center configurations and checks the
// structural invariants after every operation:
//
//   - no center is ever allocated beyond its capacity;
//   - granted leases plus unmet demand cover at least the request
//     (never less than asked minus what was declared unmet);
//   - every lease respects the requester's latency bound;
//   - expiry is complete (allocations return to zero when everything
//     has lapsed).
func TestMatcherInvariantsUnderRandomLoad(t *testing.T) {
	rng := xrand.New(0xfeed)
	locations := []geo.Point{geo.London, geo.NewYork, geo.SanJose, geo.Sydney, geo.Chicago}

	for round := 0; round < 30; round++ {
		// Random ecosystem.
		nCenters := 1 + rng.Intn(5)
		centers := make([]*datacenter.Center, nCenters)
		for i := range centers {
			var bulk datacenter.Vector
			bulk[datacenter.CPU] = 0.1 + 0.5*rng.Float64()
			bulk[datacenter.Memory] = float64(rng.Intn(3))
			policy := datacenter.HostingPolicy{
				Name:     "rand",
				Bulk:     bulk,
				TimeBulk: time.Duration(30+rng.Intn(180)) * time.Minute,
			}
			centers[i] = datacenter.NewCenter(
				string(rune('A'+i)), locations[rng.Intn(len(locations))], 1+rng.Intn(6), policy)
		}
		m := NewMatcher(centers)
		now := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)

		for step := 0; step < 60; step++ {
			origin := locations[rng.Intn(len(locations))]
			maxKm := math.Inf(1)
			if rng.Bool(0.4) {
				maxKm = 500 + 8000*rng.Float64()
			}
			var demand datacenter.Vector
			demand[datacenter.CPU] = 3 * rng.Float64()
			if rng.Bool(0.5) {
				demand[datacenter.Memory] = 4 * rng.Float64()
			}

			leases, unmet := m.Allocate(Request{
				Tag: "prop", Origin: origin, MaxDistanceKm: maxKm, Demand: demand,
			}, now)

			var granted datacenter.Vector
			for _, l := range leases {
				granted = granted.Add(l.Alloc)
				if d := geo.DistanceKm(origin, l.Center.Location); d > maxKm {
					t.Fatalf("round %d: lease at %.0f km violates %.0f km bound", round, d, maxKm)
				}
			}
			// granted + unmet >= demand (rounding may exceed demand).
			covered := granted.Add(unmet)
			for r := 0; r < int(datacenter.NumResources); r++ {
				if covered[r]+1e-9 < demand[r] {
					t.Fatalf("round %d: resource %v demand %v not covered by %v granted + %v unmet",
						round, datacenter.Resource(r), demand[r], granted[r], unmet[r])
				}
			}
			for _, c := range centers {
				if !c.Allocated().FitsWithin(c.Capacity()) {
					t.Fatalf("round %d: center %s over-allocated", round, c.Name)
				}
			}
			now = now.Add(time.Duration(1+rng.Intn(30)) * time.Minute)
			m.Expire(now)
		}

		// Everything lapses eventually.
		m.Expire(now.Add(100 * time.Hour))
		for _, c := range centers {
			if !c.Allocated().IsZero() {
				t.Fatalf("round %d: center %s retains allocation after global expiry", round, c.Name)
			}
		}
	}
}

// randomFaults is a stochastic GrantFaults injector for property
// testing: it rejects or trims grants at random.
type randomFaults struct{ r *xrand.Rand }

func (f randomFaults) GrantFault(string) (bool, float64) {
	if f.r.Bool(0.2) {
		return true, 0
	}
	if f.r.Bool(0.2) {
		return false, 0.25 + 0.5*f.r.Float64()
	}
	return false, 1
}

// TestMatcherInvariantsUnderRandomFaults repeats the random-load drive
// with a stochastic fault injector installed. Rejections and partial
// grants must never break the accounting: whatever the injector
// withholds has to reappear as unmet demand, capacity must stay
// respected, and the Outcome must reflect what actually happened.
func TestMatcherInvariantsUnderRandomFaults(t *testing.T) {
	rng := xrand.New(0xfa17)
	locations := []geo.Point{geo.London, geo.NewYork, geo.SanJose, geo.Sydney}

	sawRejection, sawPartial := false, false
	for round := 0; round < 30; round++ {
		nCenters := 1 + rng.Intn(4)
		centers := make([]*datacenter.Center, nCenters)
		for i := range centers {
			var bulk datacenter.Vector
			bulk[datacenter.CPU] = 0.1 + 0.5*rng.Float64()
			policy := datacenter.HostingPolicy{
				Name:     "rand",
				Bulk:     bulk,
				TimeBulk: time.Duration(30+rng.Intn(180)) * time.Minute,
			}
			centers[i] = datacenter.NewCenter(
				string(rune('A'+i)), locations[rng.Intn(len(locations))], 1+rng.Intn(6), policy)
		}
		m := NewMatcher(centers)
		m.SetFaultInjector(randomFaults{r: rng.Split(uint64(round) + 1)})
		now := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)

		for step := 0; step < 40; step++ {
			var demand datacenter.Vector
			demand[datacenter.CPU] = 3 * rng.Float64()
			req := Request{
				Tag: "prop", Origin: locations[rng.Intn(len(locations))],
				MaxDistanceKm: math.Inf(1), Demand: demand,
			}
			if rng.Bool(0.2) && nCenters > 1 {
				req.Exclude = []string{centers[rng.Intn(nCenters)].Name}
			}

			leases, unmet, out := m.AllocateDetailed(req, now)
			sawRejection = sawRejection || out.Rejections > 0
			sawPartial = sawPartial || out.PartialGrants > 0

			var granted datacenter.Vector
			for _, l := range leases {
				granted = granted.Add(l.Alloc)
				if excluded(req.Exclude, l.Center.Name) {
					t.Fatalf("round %d: lease from excluded center %s", round, l.Center.Name)
				}
			}
			covered := granted.Add(unmet)
			for r := 0; r < int(datacenter.NumResources); r++ {
				if covered[r]+1e-9 < demand[r] {
					t.Fatalf("round %d: resource %v demand %v not covered by %v granted + %v unmet under faults",
						round, datacenter.Resource(r), demand[r], granted[r], unmet[r])
				}
			}
			for _, c := range centers {
				if !c.Allocated().FitsWithin(c.Capacity()) {
					t.Fatalf("round %d: center %s over-allocated under faults", round, c.Name)
				}
			}
			now = now.Add(time.Duration(1+rng.Intn(30)) * time.Minute)
			m.Expire(now)
		}
	}
	if !sawRejection || !sawPartial {
		t.Fatalf("injector never fired (rejections seen: %v, partials seen: %v)", sawRejection, sawPartial)
	}
}
