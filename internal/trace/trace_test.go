package trace

import (
	"math"
	"testing"

	"mmogdc/internal/stats"
)

// smallConfig keeps per-test generation cheap: one region, few groups.
func smallConfig(seed uint64) Config {
	return Config{
		Seed: seed,
		Days: 4,
		Regions: []Region{
			{ID: 0, Name: "Europe", Groups: 8},
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig(42))
	b := Generate(smallConfig(42))
	if len(a.Groups) != len(b.Groups) {
		t.Fatal("group counts differ")
	}
	for i := range a.Groups {
		av, bv := a.Groups[i].Load.Values, b.Groups[i].Load.Values
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("group %d sample %d differs: %v != %v", i, j, av[j], bv[j])
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(smallConfig(1))
	b := Generate(smallConfig(2))
	same := 0
	for j, v := range a.Groups[0].Load.Values {
		if v == b.Groups[0].Load.Values[j] {
			same++
		}
	}
	if same > len(a.Groups[0].Load.Values)/10 {
		t.Fatalf("different seeds produced %d identical samples", same)
	}
}

func TestSampleCountAndBounds(t *testing.T) {
	ds := Generate(smallConfig(7))
	want := 4 * SamplesPerDay
	if ds.Samples() != want {
		t.Fatalf("samples = %d, want %d", ds.Samples(), want)
	}
	for _, g := range ds.Groups {
		for i, v := range g.Load.Values {
			if v < 0 || v > GroupCapacity {
				t.Fatalf("group %s sample %d = %v out of [0, %d]", g.Name(), i, v, GroupCapacity)
			}
		}
	}
}

func TestDefaultRegionsShape(t *testing.T) {
	regs := DefaultRegions()
	if len(regs) != 5 {
		t.Fatalf("want 5 regions, got %d", len(regs))
	}
	if regs[0].Name != "Europe" || regs[0].Groups != 40 {
		t.Fatalf("region 0 should be Europe with 40 groups: %+v", regs[0])
	}
	weekend := 0
	for _, r := range regs {
		if r.WeekendEffect {
			weekend++
		}
	}
	// Paper: about one third of the traces show weekend behavior.
	if weekend == 0 || weekend == len(regs) {
		t.Fatalf("weekend effect should hold for a strict subset of regions, got %d/%d", weekend, len(regs))
	}
}

func TestDiurnalACF(t *testing.T) {
	// A generated group's load must show the paper's 24h/12h ACF
	// structure: positive peak near lag 720, negative near lag 360.
	cfg := Config{Seed: 11, Days: 8, Regions: []Region{{ID: 0, Name: "eu", Groups: 4}}}
	ds := Generate(cfg)
	for _, g := range ds.Groups {
		if g.Saturated {
			continue
		}
		acf := stats.ACF(g.Load.Values, 740)
		// Search around the expected lags to allow phase jitter.
		_, peak := stats.ArgMax(acf, 700, 740)
		if peak < 0.5 {
			t.Errorf("group %s: ACF 24h peak = %v, want > 0.5", g.Name(), peak)
		}
		_, trough := stats.ArgMin(acf, 340, 380)
		if trough > -0.3 {
			t.Errorf("group %s: ACF 12h trough = %v, want < -0.3", g.Name(), trough)
		}
	}
}

func TestPeakOverMinimumSwing(t *testing.T) {
	// Section III-C: during peak hours the median load is roughly 50%
	// above the minimum. Verify the generated regional median swings
	// by at least 30% over the day.
	cfg := Config{Seed: 13, Days: 7, Regions: []Region{{ID: 0, Name: "eu", Groups: 12}}}
	ds := Generate(cfg)
	load, err := ds.RegionLoad(0)
	if err != nil {
		t.Fatal(err)
	}
	peak := stats.Max(load.Values)
	min := stats.Min(load.Values)
	if min <= 0 {
		// An outage can zero a group but not the whole region with 12
		// groups; a zero regional minimum would be a generator bug.
		t.Fatalf("regional load hit zero")
	}
	if swing := peak / min; swing < 1.3 {
		t.Errorf("peak/min = %v, want >= 1.3", swing)
	}
}

func TestSaturatedGroups(t *testing.T) {
	// With a high saturated fraction, saturated groups must hold ~95%.
	cfg := Config{Seed: 17, Days: 2, SaturatedFraction: 0.9,
		Regions: []Region{{ID: 0, Name: "eu", Groups: 10}}}
	ds := Generate(cfg)
	sat := 0
	for _, g := range ds.Groups {
		if !g.Saturated {
			continue
		}
		sat++
		med := stats.Median(g.Load.Values)
		if math.Abs(med-0.95*GroupCapacity) > 0.02*GroupCapacity {
			t.Errorf("saturated group %s median = %v, want ~%v", g.Name(), med, 0.95*GroupCapacity)
		}
	}
	if sat == 0 {
		t.Fatal("no saturated groups at 90% fraction")
	}
}

func TestOutagesOccurAndAreShort(t *testing.T) {
	cfg := Config{Seed: 19, Days: 10, OutageRatePerDay: 2,
		Regions: []Region{{ID: 0, Name: "eu", Groups: 5}}}
	ds := Generate(cfg)
	zeroRuns := 0
	longest := 0
	for _, g := range ds.Groups {
		run := 0
		for _, v := range g.Load.Values {
			if v == 0 {
				run++
				if run > longest {
					longest = run
				}
			} else {
				if run > 0 {
					zeroRuns++
				}
				run = 0
			}
		}
	}
	if zeroRuns == 0 {
		t.Fatal("no outages at rate 2/day over 10 days x 5 groups")
	}
	if longest > 16 {
		t.Fatalf("longest outage = %d samples, want <= 16 (~30 min)", longest)
	}
}

func TestEventMultiplierBeforeEventIsOne(t *testing.T) {
	for _, e := range Fig2Events() {
		if m := e.Multiplier(e.Day - 1); m != 1 {
			t.Errorf("%v multiplier before event = %v", e.Kind, m)
		}
	}
}

func TestUnpopularDecisionShape(t *testing.T) {
	e := Event{Kind: UnpopularDecision, Day: 10, Magnitude: 0.25, RecoveryDays: 3, ResidualLevel: 0.95}
	// Full crash by one day after.
	if m := e.Multiplier(11); math.Abs(m-0.75) > 0.02 {
		t.Errorf("multiplier at crash bottom = %v, want ~0.75", m)
	}
	// Recovers toward but not beyond the residual level.
	if m := e.Multiplier(40); math.Abs(m-0.95) > 0.02 {
		t.Errorf("long-run multiplier = %v, want ~0.95", m)
	}
	for d := 10.0; d < 40; d += 0.5 {
		if m := e.Multiplier(d); m > 1.0001 || m < 0.74 {
			t.Fatalf("multiplier out of range at day %v: %v", d, m)
		}
	}
}

func TestContentReleaseShape(t *testing.T) {
	e := Event{Kind: ContentRelease, Day: 5, Magnitude: 0.5, RecoveryDays: 3.5}
	// Peak close to +50% shortly after release.
	peak := 0.0
	for d := 5.0; d < 7; d += 0.05 {
		if m := e.Multiplier(d); m > peak {
			peak = m
		}
	}
	if peak < 1.35 || peak > 1.51 {
		t.Errorf("surge peak = %v, want in [1.35, 1.51]", peak)
	}
	// Decays back near 1 after several weeks.
	if m := e.Multiplier(40); math.Abs(m-1) > 0.01 {
		t.Errorf("long-run multiplier = %v, want ~1", m)
	}
}

func TestFig2EventsVisibleInGlobalLoad(t *testing.T) {
	cfg := Config{Seed: 23, Days: 40,
		Regions: []Region{{ID: 0, Name: "eu", Groups: 10}},
		Events:  []Event{{Kind: UnpopularDecision, Day: 20, Magnitude: 0.25, RecoveryDays: 3, ResidualLevel: 0.95}},
	}
	ds := Generate(cfg)
	global, err := ds.GlobalLoad()
	if err != nil {
		t.Fatal(err)
	}
	// Compare daily means just before and just after the crash.
	day := SamplesPerDay
	pre := stats.Mean(global.Values[18*day : 20*day])
	post := stats.Mean(global.Values[21*day : 22*day])
	drop := 1 - post/pre
	if drop < 0.15 || drop > 0.35 {
		t.Errorf("crash drop = %.2f, want ~0.25", drop)
	}
}

func TestWeekendEffect(t *testing.T) {
	mk := func(weekend bool) float64 {
		cfg := Config{Seed: 29, Days: 14,
			Regions: []Region{{ID: 0, Name: "x", Groups: 10, WeekendEffect: weekend}}}
		ds := Generate(cfg)
		load, err := ds.RegionLoad(0)
		if err != nil {
			t.Fatal(err)
		}
		// Start date 2007-08-18 is a Saturday: days 0,1,7,8 are weekend.
		var we, wd []float64
		for i, v := range load.Values {
			day := i / SamplesPerDay
			switch day % 7 {
			case 0, 1:
				we = append(we, v)
			default:
				wd = append(wd, v)
			}
		}
		return stats.Mean(we) / stats.Mean(wd)
	}
	with := mk(true)
	without := mk(false)
	if with < 1.1 {
		t.Errorf("weekend/weekday ratio with effect = %v, want > 1.1", with)
	}
	if math.Abs(without-1) > 0.08 {
		t.Errorf("weekend/weekday ratio without effect = %v, want ~1", without)
	}
}

func TestRegionGroupsAndNames(t *testing.T) {
	ds := Generate(Config{Seed: 31, Days: 1, Regions: []Region{
		{ID: 0, Name: "a", Groups: 3},
		{ID: 1, Name: "b", Groups: 2},
	}})
	if got := len(ds.RegionGroups(0)); got != 3 {
		t.Fatalf("region 0 groups = %d", got)
	}
	if got := len(ds.RegionGroups(1)); got != 2 {
		t.Fatalf("region 1 groups = %d", got)
	}
	if ds.Groups[0].Name() != "r0g0" {
		t.Fatalf("first group name = %q", ds.Groups[0].Name())
	}
	if _, err := ds.RegionLoad(9); err == nil {
		t.Fatal("missing region should error")
	}
}

func TestCrossGroupIQRVariesDiurnally(t *testing.T) {
	// Fig. 3 middle subplot: the cross-group IQR has a diurnal cycle.
	cfg := Config{Seed: 37, Days: 6, Regions: []Region{{ID: 0, Name: "eu", Groups: 20}}}
	ds := Generate(cfg)
	groups := ds.RegionGroups(0)
	n := ds.Samples()
	iqr := make([]float64, n)
	for i := 0; i < n; i++ {
		xs := make([]float64, len(groups))
		for gi, g := range groups {
			xs[gi] = g.Load.At(i)
		}
		iqr[i] = stats.IQR(xs)
	}
	acf := stats.ACF(iqr, 740)
	_, peak := stats.ArgMax(acf, 700, 740)
	if peak < 0.2 {
		t.Errorf("IQR ACF 24h peak = %v, want > 0.2", peak)
	}
}

func TestGlobalLoadEmptyDataset(t *testing.T) {
	ds := &Dataset{}
	if _, err := ds.GlobalLoad(); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestEventKindString(t *testing.T) {
	if ContentRelease.String() == "" || UnpopularDecision.String() == "" {
		t.Fatal("event kinds need labels")
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Fatal("unknown event kind label wrong")
	}
}
