// Package core implements the paper's trace-driven resource
// provisioning simulation (Section V). Every two simulated minutes the
// game operator predicts the load of each server group (the number of
// players, converted into a resource demand through the game's
// interaction/update model), requests the missing resources from the
// data-center ecosystem, and lets unneeded leases lapse when their
// time bulk expires. The simulator measures the three metrics of the
// paper:
//
//   - resource over-allocation Ω(t) (Equation 1): the cumulated
//     allocation over the cumulated load, reported here as the
//     percentage allocated *beyond* the load (Ω−100%);
//   - resource under-allocation Υ(t) (Equation 2): the average
//     per-server shortfall, where over-allocation on one server cannot
//     compensate a shortfall on another;
//   - significant under-allocation events: ticks where |Υ| > 1%,
//     i.e. moments when the game play is disrupted.
//
// The static alternative provisions each server group for its peak
// demand up front and never adjusts.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"mmogdc/internal/checkpoint"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/ecosystem"
	"mmogdc/internal/faults"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/obs"
	"mmogdc/internal/par"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

// Backoff policy for injected grant rejections: after the n-th
// consecutive rejected acquisition a zone waits 1, 2, 4, then 8 ticks
// before asking again (bounded exponential backoff).
const (
	maxRetryExp     = 4
	maxBackoffTicks = 8
)

// SignificantUnderPct is the |Υ| threshold (in percent) above which an
// under-allocation is disruptive (Section V).
const SignificantUnderPct = 1.0

// Workload is one MMOG operated on the ecosystem: a game design (the
// update model and latency tolerance), the population trace of its
// server groups, and the predictor driving its requests.
type Workload struct {
	// Game fixes the update model, resource profile, and latency
	// tolerance.
	Game *mmog.Game
	// Dataset provides the per-server-group player counts.
	Dataset *trace.Dataset
	// Predictor builds one predictor per server group (dynamic mode).
	Predictor predict.Factory
}

// Config parameterizes one simulation run.
type Config struct {
	// Workloads are the games sharing the ecosystem.
	Workloads []Workload
	// Centers is the data-center ecosystem (ignored in static mode).
	Centers []*datacenter.Center
	// Static provisions each server group for its trace-wide peak
	// demand instead of predicting and leasing dynamically.
	Static bool
	// SafetyMargin inflates predicted demand by this fraction before
	// requesting (0 = request exactly the prediction).
	SafetyMargin float64
	// TrackCenters enables the per-center accounting used by the
	// latency experiments (Figs. 13 and 14).
	TrackCenters bool
	// PrioritizeByInteraction orders each tick's resource requests by
	// the game's update-model complexity, most compute-intensive
	// first — the extension the paper proposes as future work in
	// Section V-F ("the impact of prioritizing the resource requests
	// according to the interaction type of the MMOG"). Under capacity
	// contention it hands the steepest demand curves first pick, which
	// is where a shortfall hurts the most.
	PrioritizeByInteraction bool
	// Failures injects scheduled data-center outages: each takes the
	// named center offline (dropping all its leases) at a tick and
	// brings it back after a duration. The game operator re-acquires
	// lost capacity the same tick, excluding the failed center from
	// the retry. AtTick must be >= 0 (tick 0 fires before the
	// bootstrap acquire), DurationTicks must be >= 1, and the named
	// center must exist; Run rejects anything else. Overlapping
	// windows for one center compose through refcounting — the center
	// recovers only when its last window closes.
	Failures []Failure
	// Faults configures the seeded stochastic fault injector
	// (internal/faults): MTBF/MTTR center outages (full or partial),
	// lease-grant rejections and partial grants, and monitoring
	// dropouts. Nil injects nothing. The fault plan is pre-generated
	// from Faults.Seed, so the same seed reproduces a bit-identical
	// Result for any Workers setting.
	Faults *faults.Config
	// FailoverBudgetPerTick caps the failover re-acquisitions performed
	// in any one tick (storm control): when a region blackout drops
	// dozens of zones at once, only the first budget zones (in acquire
	// order) fail over immediately; the rest are deferred by a
	// deterministic jittered backoff of 1–4 ticks so the stampede on
	// the surviving centers is spread out. 0 means unlimited — the
	// legacy same-tick failover for every zone.
	FailoverBudgetPerTick int
	// Brownout enables graceful degradation when the surviving
	// effective capacity cannot cover the demand: instead of letting
	// every zone thrash over the shortage, the engine sheds the
	// lowest-priority zones (the tail of the acquire order) — their
	// leases are released and their acquisitions skipped — until the
	// survivors fit the capacity budget. Result.Resilience accounts the
	// brownout ticks and the player-load shed.
	Brownout bool
	// BrownoutReserveFrac is the fraction of each surviving region's
	// effective capacity held back as reserved headroom while brownout
	// mode decides what fits (0 = spend everything surviving). The
	// reserve absorbs prediction error and aftershocks so the kept
	// zones do not immediately breach again.
	BrownoutReserveFrac float64
	// Workers is the parallelism of the per-zone tick phase: 0 sizes
	// the worker pool by GOMAXPROCS, 1 runs fully sequentially on the
	// caller's goroutine. The result is bit-for-bit identical for any
	// worker count — per-zone work is embarrassingly parallel and the
	// reduce and acquire phases stay sequential in deterministic
	// order.
	Workers int
	// CheckpointDir, when non-empty, makes the run crash-safe: the full
	// engine state is written atomically to this directory every
	// CheckpointEveryTicks ticks, and a run started over a directory
	// holding checkpoints resumes from the newest valid one instead of
	// starting fresh. A resumed run's Result is bit-identical to an
	// uninterrupted run with the same Config. Corrupt checkpoint files
	// are skipped (falling back to the previous good one), never
	// silently loaded. Empty disables checkpointing entirely — the run
	// is then bit-identical to one from before this feature existed.
	CheckpointDir string
	// CheckpointEveryTicks is the checkpoint cadence; 0 defaults to 60
	// ticks (two simulated hours at the paper's 2-minute tick).
	CheckpointEveryTicks int
	// StopAfterTick, when > 0, halts the run right after the named
	// tick completed (and, with CheckpointDir set, after force-writing
	// a checkpoint at that tick). Run returns ErrStopped and no Result.
	// This is the deterministic "kill" of crash-recovery drills: run
	// with StopAfterTick, then rerun without it to resume and finish.
	StopAfterTick int
	// Obs, when non-nil, streams the run's telemetry — per-phase tick
	// timing, provisioning counters mirroring Result.Resilience, and
	// flight-recorder events — into the given observability bundle.
	// Obs is strictly write-only with respect to the simulation: a run
	// with Obs set produces a bit-identical Result to one without, and
	// nil costs nothing on the hot path.
	Obs *obs.Obs
	// Provenance, when > 0, installs a decision log of that capacity
	// on the matcher: every acquire records the ordered candidate
	// ranking with per-candidate dispositions, and (with Obs set) each
	// grant/failover gains a companion "decision" flight-recorder
	// event. Write-only like Obs: the Result is bit-identical with
	// provenance on or off, and 0 disables it entirely.
	Provenance int
}

// Failure is one scheduled data-center outage.
type Failure struct {
	// Center is the failing center's name.
	Center string
	// AtTick is the sample index the outage begins at.
	AtTick int
	// DurationTicks is the outage length in samples.
	DurationTicks int
}

// Result collects the metrics of one run.
type Result struct {
	// Ticks is the number of scored samples.
	Ticks int
	// AvgOverPct is the mean over-allocation percentage per resource
	// (Ω−100%), averaged over ticks with non-zero load. A resource
	// that never sees load has no defined over-allocation ratio and
	// reports math.NaN(); formatting layers render it as "n/a".
	AvgOverPct [datacenter.NumResources]float64
	// AvgUnderPct is the mean under-allocation Υ per resource (<= 0).
	AvgUnderPct [datacenter.NumResources]float64
	// Events is the number of ticks with a significant
	// under-allocation (|Υ| > 1%) on any resource.
	Events int
	// CumEvents is the running number of significant events per tick
	// (Figs. 7 and 10).
	CumEvents []int
	// OverPct and UnderPct are the per-tick Ω−100% and Υ series for
	// the CPU resource (Figs. 8 and 9).
	OverPct  []float64
	UnderPct []float64
	// Unmet counts ticks where the ecosystem could not serve the full
	// request (capacity exhausted within the latency bound).
	Unmet int
	// AvgUnderByGame is the mean CPU under-allocation per game,
	// normalized by that game's own machine count — the per-operator
	// view the interaction-prioritization extension is judged by.
	AvgUnderByGame map[string]float64
	// CenterStats maps center name to its accounting (TrackCenters).
	CenterStats map[string]*CenterStats
	// Resilience accounts the run's fault handling (always set; all
	// zeros when nothing was injected).
	Resilience *Resilience
	// ResumedFromTick is the tick of the checkpoint this run resumed
	// from, 0 when the run started fresh.
	ResumedFromTick int
}

// CenterStats accounts one center's CPU usage over a run.
type CenterStats struct {
	// AvgAllocatedCPU is the mean allocated CPU units over the run.
	AvgAllocatedCPU float64
	// AvgFreeCPU is the mean free CPU units.
	AvgFreeCPU float64
	// AllocatedByRegion splits AvgAllocatedCPU by the requesting
	// region's name (Figs. 13/14 need to know whose demand each
	// center served).
	AllocatedByRegion map[string]float64
}

// zoneState tracks one server group during the simulation. The run
// holds all zones in one flat value slice, indexed by idx — the
// per-tick phases walk them by index, so zone state, partials, and
// accumulators all live in contiguous, preallocated memory.
type zoneState struct {
	game      *mmog.Game
	group     *trace.Group
	region    trace.Region
	predictor predict.Predictor
	leases    []*datacenter.Lease
	// tag is the zone's request/accounting tag ("game/group"), built
	// once at construction — the tick loop must never format it.
	tag string
	// idx is the zone's position in the canonical zone order — the
	// index of its slot in the per-tick partials.
	idx int
	// gameIdx indexes the run's game list for the flat per-game
	// accumulators.
	gameIdx int
	// static allocation (static mode only).
	staticAlloc datacenter.Vector
	// home is the center hosting the zone's static fleet (static mode
	// with centers configured); its outages darken the allocation.
	home *datacenter.Center
	// lastObs carries the last monitoring sample that actually
	// arrived; dropouts feed it to the predictor instead (LOCF).
	lastObs float64
	// retries and retryAt implement the bounded backoff after
	// injected grant rejections: the zone skips acquisitions until
	// tick retryAt.
	retries int
	retryAt int
	// pendingLost and failoverAt implement storm control: when the
	// per-tick failover budget is exhausted, the centers that dropped
	// this zone are parked here and the failover re-acquisition runs at
	// tick failoverAt (deterministically jittered).
	pendingLost []string
	failoverAt  int
}

// zonePartial is one zone's contribution to a tick, produced by the
// parallel per-zone phase and folded in by the sequential reduce. All
// fields are pure functions of zone-local state, so their values do
// not depend on the worker count or execution order.
type zonePartial struct {
	// alloc is the allocation in force at the scoring instant.
	alloc datacenter.Vector
	// load is the actual resource demand at the scoring instant.
	load datacenter.Vector
	// need is the gap to request from the ecosystem for the next tick
	// (zero in static mode and on the final tick).
	need datacenter.Vector
	// dropped flags a monitoring dropout at this tick (the sample was
	// carried forward).
	dropped bool
}

// workerArena is one pool worker's private scratch for the parallel
// per-zone phase, padded so no two workers share a cache line. It only
// carries quantities whose combination is order-independent (integer
// counts); every float fold stays in the sequential reduce, which is
// what keeps Result bit-identical across worker counts.
type workerArena struct {
	// dropped counts the monitoring dropouts this worker observed in
	// the current tick.
	dropped int64
	_       [56]byte // pad to a 64-byte cache line
}

// activeAlloc sums the zone's live leases at time now, pruning dead
// ones.
func (z *zoneState) activeAlloc(now time.Time) datacenter.Vector {
	var sum datacenter.Vector
	live := z.leases[:0]
	for _, l := range z.leases {
		if l.Active(now) {
			sum = sum.Add(l.Alloc)
			live = append(live, l)
		}
	}
	z.leases = live
	return sum
}

// allocAt sums the leases that will still be active at time t, without
// pruning. The acquire phase sizes requests against the allocation
// surviving to the *next* scoring instant, so leases are renewed
// before they lapse rather than one tick after.
func (z *zoneState) allocAt(t time.Time) datacenter.Vector {
	var sum datacenter.Vector
	for _, l := range z.leases {
		if l.Active(t) {
			sum = sum.Add(l.Alloc)
		}
	}
	return sum
}

// backOff schedules zone z's next acquisition attempt after an
// injected rejection at tick t: 1, 2, 4, then 8 ticks out, capped.
func backOff(z *zoneState, t int) {
	if z.retries < maxRetryExp {
		z.retries++
	}
	backoff := 1 << (z.retries - 1)
	if backoff > maxBackoffTicks {
		backoff = maxBackoffTicks
	}
	z.retryAt = t + backoff
}

// failoverJitter spreads deferred failovers over the next 1–4 ticks
// with a stateless hash of (zone, tick) — deterministic for any worker
// count (the acquire phase is sequential), different per zone and per
// deferral so a blackout's victims do not re-stampede in lockstep.
func failoverJitter(zone, t int) int {
	h := uint64(zone)*0x9e3779b97f4a7c15 ^ uint64(t)*0xbf58476d1ce4e5b9 ^ 0x5707bac0ff
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return int(h & 3) // 0..3 extra ticks beyond the minimum 1
}

// containsName reports whether the tiny name list holds name.
func containsName(list []string, name string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

// sanitizePrediction guards the simulation against misbehaving
// predictors: negative, NaN, or infinite forecasts are treated as
// zero demand (the operator requests nothing rather than poisoning
// the allocation accounting).
func sanitizePrediction(v float64) float64 {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// demandVector converts a player count into the datacenter resource
// vector via the game's update model and resource profile.
func demandVector(g *mmog.Game, players float64) datacenter.Vector {
	d := g.DemandForEntities(players)
	var v datacenter.Vector
	v[datacenter.CPU] = d.CPU
	v[datacenter.Memory] = d.Memory
	v[datacenter.ExtNetIn] = d.ExtNetIn
	v[datacenter.ExtNetOut] = d.ExtNetOut
	return v
}

// Run executes the simulation and returns its metrics.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("core: no workloads")
	}
	// zones is the flat zone-state arena: one value slice in canonical
	// order, never reallocated after this setup loop (pointers into it
	// are only taken afterwards). gameNames lists the distinct games in
	// workload order; the per-game accumulators are flat slices indexed
	// by zoneState.gameIdx.
	var zones []zoneState
	var gameNameList []string
	samples := 0
	gameNames := map[string]bool{}
	for gi, w := range cfg.Workloads {
		if w.Game == nil || w.Dataset == nil {
			return nil, fmt.Errorf("core: workload needs game and dataset")
		}
		// Per-game accounting (gameAlloc, AvgUnderByGame, ...) is keyed
		// by name; two games sharing one would silently merge.
		if gameNames[w.Game.Name] {
			return nil, fmt.Errorf("core: duplicate game name %q across workloads", w.Game.Name)
		}
		gameNames[w.Game.Name] = true
		gameNameList = append(gameNameList, w.Game.Name)
		if samples == 0 {
			samples = w.Dataset.Samples()
		} else if w.Dataset.Samples() != samples {
			return nil, fmt.Errorf("core: datasets disagree on length")
		}
		regions := map[int]trace.Region{}
		for _, r := range w.Dataset.Regions {
			regions[r.ID] = r
		}
		for _, g := range w.Dataset.Groups {
			z := zoneState{
				game:    w.Game,
				group:   g,
				region:  regions[g.RegionID],
				tag:     fmt.Sprintf("%s/%s", w.Game.Name, g.Name()),
				idx:     len(zones),
				gameIdx: gi,
			}
			if !cfg.Static {
				if w.Predictor == nil {
					return nil, fmt.Errorf("core: dynamic mode needs a predictor for game %s", w.Game.Name)
				}
				z.predictor = w.Predictor()
			}
			zones = append(zones, z)
		}
	}
	if samples < 2 {
		return nil, fmt.Errorf("core: need at least 2 samples")
	}
	centersByName := map[string]*datacenter.Center{}
	for _, c := range cfg.Centers {
		centersByName[c.Name] = c
	}
	for _, f := range cfg.Failures {
		if f.AtTick < 0 {
			return nil, fmt.Errorf("core: failure of %q at negative tick %d", f.Center, f.AtTick)
		}
		if f.DurationTicks < 1 {
			return nil, fmt.Errorf("core: failure of %q needs DurationTicks >= 1, got %d", f.Center, f.DurationTicks)
		}
		if centersByName[f.Center] == nil {
			return nil, fmt.Errorf("core: failure names unknown center %q", f.Center)
		}
	}
	if cfg.FailoverBudgetPerTick < 0 {
		return nil, fmt.Errorf("core: FailoverBudgetPerTick must be >= 0, got %d", cfg.FailoverBudgetPerTick)
	}
	if cfg.BrownoutReserveFrac < 0 || cfg.BrownoutReserveFrac >= 1 {
		return nil, fmt.Errorf("core: BrownoutReserveFrac must be in [0,1), got %v", cfg.BrownoutReserveFrac)
	}
	var plan *faults.Plan
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if cfg.Faults.Enabled() {
			names := make([]string, len(cfg.Centers))
			for i, c := range cfg.Centers {
				names[i] = c.Name
			}
			fcfg := *cfg.Faults
			if fcfg.CorrelatedEnabled() && fcfg.Regions == nil {
				// Derive the failure domains from the centers' geography:
				// centers sharing a continental region share a domain.
				fcfg.Regions = make(map[string]string, len(cfg.Centers))
				for _, c := range cfg.Centers {
					fcfg.Regions[c.Name] = geo.RegionOf(c.Location)
				}
			}
			plan = faults.NewPlan(fcfg, names, samples)
		}
	}

	if cfg.Static {
		// Static provisioning reproduces the industry practice the
		// paper describes: a dedicated infrastructure sized up front
		// for each server group's peak demand.
		for i := range zones {
			z := &zones[i]
			peak := 0.0
			for _, v := range z.group.Load.Values {
				if v > peak {
					peak = v
				}
			}
			z.staticAlloc = demandVector(z.game, peak)
		}
		// With centers configured, each static fleet lives in a home
		// center (round-robin) and darkens with its outages — the
		// dedicated-infrastructure counterpart of the resilience
		// sweep, where dynamic provisioning fails over but a static
		// deployment cannot.
		if len(cfg.Centers) > 0 {
			for i := range zones {
				zones[i].home = cfg.Centers[i%len(cfg.Centers)]
			}
		}
	}

	matcher := ecosystem.NewMatcher(cfg.Centers)
	if plan != nil {
		matcher.SetFaultInjector(plan)
	}
	if cfg.Provenance > 0 {
		matcher.SetDecisionLog(ecosystem.NewDecisionLog(cfg.Provenance))
	}
	res := &Result{CenterStats: map[string]*CenterStats{}}
	if cfg.TrackCenters {
		for _, c := range cfg.Centers {
			res.CenterStats[c.Name] = &CenterStats{AllocatedByRegion: map[string]float64{}}
		}
	}
	// The per-tick series are appended to once per scored tick;
	// preallocating their full capacity keeps the tick loop free of
	// append growth (a resume replaces them with the restored slices).
	res.CumEvents = make([]int, 0, samples-1)
	res.OverPct = make([]float64, 0, samples-1)
	res.UnderPct = make([]float64, 0, samples-1)

	// Per-resource accumulators for the averages.
	var overSum, underSum [datacenter.NumResources]float64
	var overTicks [datacenter.NumResources]int

	// Per-game CPU accumulators: flat slices indexed by zone gameIdx,
	// zeroed in place every tick. gameShortSet replicates the old
	// scratch map's presence semantics — a game accumulates
	// under-allocation this tick only if some zone actually fell short.
	gameAlloc := make([]float64, len(gameNameList))
	gameShort := make([]float64, len(gameNameList))
	gameShortSet := make([]bool, len(gameNameList))
	gameUnderSum := make([]float64, len(gameNameList))

	start := zones[0].group.Load.Start
	tick := zones[0].group.Load.Tick

	// The acquire order decides who gets first pick when capacity is
	// contended. The default is submission order; with interaction
	// prioritization, the most compute-intensive games go first (a
	// stable sort of the index slice — the identical permutation the
	// old pointer-slice sort produced).
	acquireOrder := make([]int, len(zones))
	for i := range acquireOrder {
		acquireOrder[i] = i
	}
	if cfg.PrioritizeByInteraction {
		sort.SliceStable(acquireOrder, func(i, j int) bool {
			return zones[acquireOrder[i]].game.Update > zones[acquireOrder[j]].game.Update
		})
	}

	// Each tick splits into three phases. Phase 1 fans the per-zone
	// work — predictor Observe/Predict, demand conversion, per-zone
	// allocation scoring — out over this pool; every datum it touches
	// is zone-local (predictor state, leases) or read-only (trace,
	// game model), so zones never contend. Phase 2 folds the partials
	// sequentially in canonical zone order, and phase 3 submits the
	// contended resource requests sequentially in acquire order, which
	// keeps Result bit-for-bit independent of the worker count.
	pool := par.New(cfg.Workers)
	defer pool.Close()
	partials := make([]zonePartial, len(zones))
	// Per-worker scratch arenas, one cache line each so workers never
	// share a write-hot line. They hold the per-worker pieces of the
	// tick that are order-independent to combine (integer counts); all
	// float accumulation stays in the sequential reduce.
	arenas := make([]workerArena, pool.Workers())

	resil := &Resilience{Availability: map[string]float64{}}
	res.Resilience = resil
	tracker := newOutageTracker(cfg.Centers, resil)
	ro := newRunObs(cfg.Obs)

	tagToZone := make(map[string]int, len(zones))
	for i := range zones {
		tagToZone[zones[i].tag] = i
	}
	// lostCenters[i] names the centers that dropped zone i's leases at
	// the current tick — the same-tick failover re-acquires from
	// everywhere else.
	lostCenters := make([][]string, len(zones))

	// Brownout and recovery tracking. zoneShed marks the zones whose
	// demand is deliberately unserved this tick; brownoutActive and
	// capLossStart drive the transition events and the time-to-full-
	// recovery accounting (both survive checkpoints).
	var zoneShed []bool
	if cfg.Brownout && !cfg.Static {
		zoneShed = make([]bool, len(zones))
	}
	trackImpairment := !cfg.Static && (plan != nil || len(cfg.Failures) > 0 || cfg.Brownout)
	brownoutActive := false
	capLossStart := -1

	// applyFailures fires the scheduled and injected outages and
	// recoveries due at tick t: the capacity vanishes, the operator
	// fails the lost leases over within the same tick. Tick-0 outages
	// fire before the bootstrap acquire, so a center that is down from
	// the start never hands out leases. Recoveries apply first so
	// windows meeting at one tick compose through the refcount.
	applyFailures := func(t int) {
		for i := range lostCenters {
			lostCenters[i] = lostCenters[i][:0]
		}
		noteLost := func(dropped []*datacenter.Lease, center string) {
			for _, l := range dropped {
				zi, ok := tagToZone[l.Tag]
				if !ok {
					continue
				}
				if !containsName(lostCenters[zi], center) {
					lostCenters[zi] = append(lostCenters[zi], center)
				}
			}
		}
		for _, f := range cfg.Failures {
			if t == f.AtTick+f.DurationTicks {
				centersByName[f.Center].Recover()
				ro.recovery(t, f.Center, 1)
			}
		}
		// Region-level events bracket the member centers' own: the
		// blackout/recover markers fire before the per-center fail and
		// recover records they explain.
		for _, b := range plan.BlackoutRecoveriesAt(t) {
			ro.regionRecover(t, b.Region)
		}
		for _, o := range plan.RecoveriesAt(t) {
			if c := centersByName[o.Center]; o.Fraction >= 1 {
				c.Recover()
			} else {
				c.Restore(o.Fraction)
			}
			ro.recovery(t, o.Center, o.Fraction)
		}
		for _, f := range cfg.Failures {
			if t == f.AtTick {
				noteLost(centersByName[f.Center].Fail(), f.Center)
				ro.outage(t, f.Center, 1)
			}
		}
		for _, b := range plan.BlackoutsAt(t) {
			resil.RegionBlackouts++
			ro.regionBlackout(t, b.Region)
		}
		for _, o := range plan.FailuresAt(t) {
			if c := centersByName[o.Center]; o.Fraction >= 1 {
				noteLost(c.Fail(), o.Center)
			} else {
				noteLost(c.Degrade(o.Fraction), o.Center)
			}
			ro.outage(t, o.Center, o.Fraction)
		}
		tracker.observe(t)
	}

	// Checkpoint/resume: with a directory configured, adopt the newest
	// valid snapshot (skipping corrupt files) and continue from the
	// tick after it; otherwise run from the top. The bootstrap below is
	// part of tick 0 and is skipped on resume — its effects live in the
	// restored state.
	es := &engineState{
		cfg: &cfg, zones: zones, res: res,
		overSum: &overSum, underSum: &underSum, overTicks: &overTicks,
		gameNames: gameNameList, gameUnder: gameUnderSum,
		tracker: tracker, plan: plan, samples: samples,
		brownoutActive: &brownoutActive, capLossStart: &capLossStart,
	}
	var ckptMgr *checkpoint.Manager
	ckptEvery := cfg.CheckpointEveryTicks
	if ckptEvery <= 0 {
		ckptEvery = 60
	}
	resumedTick := 0
	if cfg.CheckpointDir != "" {
		var err error
		ckptMgr, err = checkpoint.NewManager(cfg.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		snap, err := ckptMgr.Latest()
		switch {
		case err == nil:
			if resumedTick, err = es.restore(snap.Payload); err != nil {
				return nil, err
			}
			res.ResumedFromTick = resumedTick
			ro.resumed(resumedTick)
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Fresh run.
		default:
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	saveCheckpoint := func(t int) error {
		if ckptMgr == nil || (t%ckptEvery != 0 && t != cfg.StopAfterTick) {
			return nil
		}
		encStart := ro.now()
		payload, err := es.snapshot(t)
		if err != nil {
			return err
		}
		encDone := ro.now()
		if err := ckptMgr.Save(t, payload); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		ro.checkpointed(t, len(payload), encStart, encDone, ro.now())
		return nil
	}

	if resumedTick == 0 {
		applyFailures(0)
	}

	// Bootstrap: before the first scored tick the operator observes
	// the initial load and provisions for it, so the simulation does
	// not begin with an empty allocation (game sessions do not start
	// cold mid-operation).
	if !cfg.Static && resumedTick == 0 {
		ro.beginBootstrap()
		pool.ForWorker(len(zones), func(i, w int) {
			z := &zones[i]
			sp := ro.zoneSpan(z.tag, 0, w)
			defer sp.End()
			v := z.group.Load.At(0)
			if plan.DropSample(z.idx, 0) || math.IsNaN(v) {
				partials[i].dropped = true
				v = z.lastObs
			} else {
				partials[i].dropped = false
				z.lastObs = v
			}
			z.predictor.Observe(v)
			predicted := sanitizePrediction(z.predictor.Predict())
			partials[i].need = demandVector(z.game, predicted*(1+cfg.SafetyMargin))
		})
		for i := range zones {
			if partials[i].dropped {
				resil.DroppedSamples++
				ro.droppedSample(0, zones[i].tag)
			}
		}
		for _, zi := range acquireOrder {
			z := &zones[zi]
			want := partials[zi].need
			if want.IsZero() {
				continue
			}
			asp := ro.beginZoneAcquire(0, z.tag, nil, false)
			leases, unmet, out := matcher.AllocateDetailed(ecosystem.Request{
				Tag:           z.tag,
				Origin:        z.region.Location,
				MaxDistanceKm: z.game.LatencyKm,
				Demand:        want,
			}, start)
			z.leases = append(z.leases, leases...)
			resil.Rejections += out.Rejections
			resil.PartialGrants += out.PartialGrants
			ro.acquired(0, z.tag, leases, out, nil, asp)
			if out.Rejections > 0 && !unmet.IsZero() {
				backOff(z, 0)
			}
		}
		ro.endBootstrap()
	}

	// Phase 1 (parallel per-zone) body, hoisted out of the tick loop so
	// the fan-out allocates no per-tick closures. curTick/curNow/
	// curFinal are written by the sequential control path before each
	// fan-out. The body: score the allocation in force against the
	// actual demand, observe the new sample, and size the request
	// closing the gap to the predicted next demand. Monitoring dropouts
	// are decided by a stateless hash of (seed, zone, tick), so
	// parallel workers never contend on a random stream.
	var (
		curTick  int
		curNow   time.Time
		curFinal bool
	)
	zoneTick := func(i, w int) {
		z := &zones[i]
		sp := ro.zoneSpan(z.tag, curTick, w)
		defer sp.End()
		pt := &partials[i]
		if cfg.Static {
			pt.alloc = z.staticAlloc
			if z.home != nil {
				pt.alloc = z.staticAlloc.Scale(z.home.AvailableFraction())
			}
		} else {
			pt.alloc = z.activeAlloc(curNow)
		}
		raw := z.group.Load.At(curTick)
		loadVal := raw
		if plan.DropSample(z.idx, curTick) || math.IsNaN(raw) {
			pt.dropped = true
			arenas[w].dropped++
			if math.IsNaN(raw) {
				// The sample is missing from the trace itself; the
				// carried-forward observation is the best load
				// estimate available for scoring.
				loadVal = z.lastObs
			}
		} else {
			pt.dropped = false
			z.lastObs = raw
		}
		pt.load = demandVector(z.game, loadVal)
		pt.need = datacenter.Vector{}
		if cfg.Static || curFinal {
			return
		}
		// Observe tick t (the last sample that arrived — dropouts
		// carry the previous observation forward so the predictor
		// state never ingests a hole), predict tick t+1. The
		// request is sized against the allocation surviving to the
		// next scoring instant, so leases renew before they lapse.
		z.predictor.Observe(z.lastObs)
		predicted := sanitizePrediction(z.predictor.Predict())
		want := demandVector(z.game, predicted*(1+cfg.SafetyMargin))
		have := z.allocAt(curNow.Add(tick))
		pt.need = want.Sub(have).ClampNonNegative()
	}
	observePhase := func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			zoneTick(i, w)
		}
	}

	for t := resumedTick + 1; t < samples; t++ {
		tickStart := ro.now()
		ro.beginTick(t, "tick", tickStart)
		now := start.Add(time.Duration(t) * tick)
		applyFailures(t)
		if !cfg.Static {
			matcher.Expire(now)
		}
		final := t == samples-1
		phaseStart := ro.now()
		ro.beginObserve(phaseStart)

		// Phase 1 (parallel per-zone): chunked contiguous ranges give
		// each worker exclusive runs of the partials slice (no false
		// sharing) and amortize the work-stealing cursor over whole
		// chunks.
		curTick, curNow, curFinal = t, now, final
		for w := range arenas {
			arenas[w].dropped = 0
		}
		pool.ForRanges(len(zones), 0, observePhase)
		observeDone := ro.now()
		ro.observeDone(phaseStart, observeDone)

		// Phase 2 (sequential reduce): fold the per-zone partials in
		// canonical zone order — float summation order is fixed, so
		// the metrics do not depend on the worker count. The dropout
		// count sums the per-worker arena counters (an integer sum,
		// order-independent by construction); the per-zone walk for
		// dropout events only runs when telemetry wants them.
		var droppedNow int64
		for w := range arenas {
			droppedNow += arenas[w].dropped
		}
		resil.DroppedSamples += int(droppedNow)
		if ro != nil && droppedNow > 0 {
			for i := range zones {
				if partials[i].dropped {
					ro.droppedSample(t, zones[i].tag)
				}
			}
		}
		var alloc, load [datacenter.NumResources]float64
		var shortfall [datacenter.NumResources]float64
		for i := range zones {
			z := &zones[i]
			a, l := partials[i].alloc, partials[i].load
			for r := 0; r < int(datacenter.NumResources); r++ {
				alloc[r] += a[r]
				load[r] += l[r]
				if d := a[r] - l[r]; d < 0 {
					shortfall[r] += d
				}
			}
			gameAlloc[z.gameIdx] += a[datacenter.CPU]
			if d := a[datacenter.CPU] - l[datacenter.CPU]; d < 0 {
				gameShort[z.gameIdx] += d
				gameShortSet[z.gameIdx] = true
			}
		}
		// M in Equation 2 is the number of machines participating in
		// the game session: the machine-equivalents the allocation
		// occupies (one machine provides one CPU unit).
		machines := math.Ceil(alloc[datacenter.CPU])
		if machines < 1 {
			machines = 1
		}
		event := false
		worstUnder := 0.0
		for r := 0; r < int(datacenter.NumResources); r++ {
			if load[r] > 0 {
				overSum[r] += (alloc[r]/load[r] - 1) * 100
				overTicks[r]++
			}
			u := shortfall[r] / machines * 100
			underSum[r] += u
			if u < -SignificantUnderPct {
				event = true
			}
			if u < worstUnder {
				worstUnder = u
			}
		}
		if event {
			res.Events++
			ro.breach(t, worstUnder)
		}
		tracker.serviceHealthy(t, !event)
		res.CumEvents = append(res.CumEvents, res.Events)
		if load[datacenter.CPU] > 0 {
			res.OverPct = append(res.OverPct, (alloc[datacenter.CPU]/load[datacenter.CPU]-1)*100)
		} else {
			res.OverPct = append(res.OverPct, 0)
		}
		res.UnderPct = append(res.UnderPct, shortfall[datacenter.CPU]/machines*100)
		res.Ticks++

		// Per-game under-allocation: only games where some zone actually
		// fell short this tick accumulate (matching the old scratch
		// map's presence semantics); the accumulators reset in place.
		for gi := range gameAlloc {
			if gameShortSet[gi] {
				m := math.Ceil(gameAlloc[gi])
				if m < 1 {
					m = 1
				}
				gameUnderSum[gi] += gameShort[gi] / m * 100
			}
			gameAlloc[gi], gameShort[gi], gameShortSet[gi] = 0, 0, false
		}

		// Account center usage.
		if cfg.TrackCenters && !cfg.Static {
			for _, c := range cfg.Centers {
				cs := res.CenterStats[c.Name]
				cs.AvgAllocatedCPU += c.Allocated()[datacenter.CPU]
				cs.AvgFreeCPU += c.Free()[datacenter.CPU]
			}
			for i := range zones {
				z := &zones[i]
				for _, l := range z.leases {
					if l.Active(now) {
						res.CenterStats[l.Center.Name].AllocatedByRegion[z.region.Name] += l.Alloc[datacenter.CPU]
					}
				}
			}
		}

		reduceDone := ro.now()
		ro.reduceDone(observeDone, reduceDone)

		if cfg.Static || final {
			if err := saveCheckpoint(t); err != nil {
				return nil, err
			}
			ro.tickDone(t, tickStart, ro.now(),
				alloc[datacenter.CPU], load[datacenter.CPU],
				res.OverPct[len(res.OverPct)-1], res.UnderPct[len(res.UnderPct)-1], pool)
			if cfg.StopAfterTick > 0 && t >= cfg.StopAfterTick {
				return nil, ErrStopped
			}
			continue
		}

		// Phase 3 (sequential acquire): lease the per-zone gaps, in
		// submission/priority order — capacity contention resolves
		// exactly as in the sequential engine. The gap of a zone whose
		// leases died with a failed center this tick already includes
		// the loss, so the same acquisition doubles as the failover
		// re-acquisition — excluding the centers that dropped it.
		ro.beginAcquireSpan(reduceDone)

		// Brownout: when the surviving effective capacity — minus the
		// reserve held back per failure domain for failover headroom —
		// cannot cover this tick's demand, shed the lowest-priority
		// zones outright instead of letting every zone thrash over the
		// shortfall. The shed set is recomputed each brownout tick from
		// the live acquire order, so zones rejoin as capacity returns.
		if zoneShed != nil {
			budget := 0.0
			for _, c := range cfg.Centers {
				budget += c.EffectiveCapacity()[datacenter.CPU]
			}
			budget *= 1 - cfg.BrownoutReserveFrac
			demand := load[datacenter.CPU]
			if demand > budget {
				resil.BrownoutTicks++
				ro.brownoutTick()
				if !brownoutActive {
					brownoutActive = true
					ro.brownoutTransition(t, true, demand-budget)
				}
				kept := 0.0
				for _, zi := range acquireOrder {
					z := &zones[zi]
					zl := partials[zi].load[datacenter.CPU]
					// Always keep the highest-priority zone: shedding
					// everything serves no one.
					if kept+zl <= budget || kept == 0 {
						kept += zl
						zoneShed[zi] = false
						continue
					}
					zoneShed[zi] = true
					released := 0
					for _, l := range z.leases {
						if !l.Released() && l.Center.Release(l) {
							released++
						}
					}
					z.leases = z.leases[:0]
					if released > 0 || z.lastObs > 0 {
						resil.ShedLeases += released
						resil.ShedPlayerTicks += z.lastObs
						ro.shed(t, z.tag, z.lastObs, released)
					}
				}
			} else if brownoutActive {
				brownoutActive = false
				ro.brownoutTransition(t, false, 0)
				for i := range zoneShed {
					zoneShed[i] = false
				}
			}
		}

		// Time-to-full-recovery: track the longest stretch from capacity
		// impairment (a center down or degraded, or brownout engaged) to
		// the tick full capacity resumed.
		if trackImpairment {
			impaired := brownoutActive
			if !impaired {
				for _, c := range cfg.Centers {
					if c.AvailableFraction() < 1 {
						impaired = true
						break
					}
				}
			}
			switch {
			case impaired && capLossStart < 0:
				capLossStart = t
			case !impaired && capLossStart >= 0:
				if d := t - capLossStart; d > resil.TimeToFullRecoveryTicks {
					resil.TimeToFullRecoveryTicks = d
				}
				capLossStart = -1
			}
		}

		failoversNow := 0
		anyUnmet := false
		for _, zi := range acquireOrder {
			z := &zones[zi]
			if zoneShed != nil && zoneShed[zi] {
				// Shed in brownout: the demand is deliberately unserved,
				// and any parked failover is moot — the leases are gone.
				z.pendingLost = z.pendingLost[:0]
				if z.lastObs > 0 {
					anyUnmet = true
				}
				continue
			}
			lost := lostCenters[zi]
			need := partials[zi].need
			if len(z.pendingLost) > 0 && t >= z.failoverAt {
				// A deferred failover comes due: fold the parked centers
				// into this tick's exclusion list.
				for _, name := range z.pendingLost {
					if !containsName(lost, name) {
						lostCenters[zi] = append(lostCenters[zi], name)
					}
				}
				lost = lostCenters[zi]
				z.pendingLost = z.pendingLost[:0]
			}
			if len(lost) == 0 && t < z.retryAt {
				// Backed off after injected rejections: don't hammer
				// the ecosystem; the demand goes unserved this tick. A
				// failover overrides the backoff — lost capacity is
				// urgent.
				if !need.IsZero() {
					anyUnmet = true
				}
				continue
			}
			if need.IsZero() {
				continue
			}
			if len(lost) > 0 && cfg.FailoverBudgetPerTick > 0 && failoversNow >= cfg.FailoverBudgetPerTick {
				// Storm control: the per-tick failover budget is spent —
				// park the lost centers and come back after a short
				// deterministic jitter, so a region blackout does not
				// stampede every zone onto the survivors at once.
				for _, name := range lost {
					if !containsName(z.pendingLost, name) {
						z.pendingLost = append(z.pendingLost, name)
					}
				}
				z.failoverAt = t + 1 + failoverJitter(zi, t)
				resil.FailoversDeferred++
				ro.failoverDeferred(t, z.tag, z.failoverAt)
				anyUnmet = true
				continue
			}
			retry := z.retries > 0
			asp := ro.beginZoneAcquire(t, z.tag, lost, retry)
			if retry {
				resil.Retries++
				ro.retried(t, z.tag, asp)
			}
			leases, unmet, out := matcher.AllocateDetailed(ecosystem.Request{
				Tag:           z.tag,
				Origin:        z.region.Location,
				MaxDistanceKm: z.game.LatencyKm,
				Demand:        need,
				Exclude:       lost,
			}, now)
			if out.Decision != nil {
				out.Decision.Tick = t
			}
			z.leases = append(z.leases, leases...)
			resil.Rejections += out.Rejections
			resil.PartialGrants += out.PartialGrants
			ro.acquired(t, z.tag, leases, out, lost, asp)
			if len(lost) > 0 {
				failoversNow++
				resil.Failovers++
				resil.FailoverLeases += len(leases)
			}
			if out.Rejections > 0 && !unmet.IsZero() {
				backOff(z, t)
			} else {
				z.retries = 0
			}
			if !unmet.IsZero() {
				anyUnmet = true
			}
		}
		if anyUnmet {
			res.Unmet++
			ro.unmetTick()
		}
		ro.acquireDone(reduceDone, ro.now())
		// Checkpoints land at end-of-tick boundaries: everything tick t
		// did — metrics, leases, predictor updates, backoff — is in the
		// snapshot, and the resumed run re-enters the loop at t+1.
		if err := saveCheckpoint(t); err != nil {
			return nil, err
		}
		ro.tickDone(t, tickStart, ro.now(),
			alloc[datacenter.CPU], load[datacenter.CPU],
			res.OverPct[len(res.OverPct)-1], res.UnderPct[len(res.UnderPct)-1], pool)
		if cfg.StopAfterTick > 0 && t >= cfg.StopAfterTick {
			return nil, ErrStopped
		}
	}
	tracker.finish(res.Ticks)

	res.AvgUnderByGame = map[string]float64{}
	for gi, w := range cfg.Workloads {
		res.AvgUnderByGame[w.Game.Name] = gameUnderSum[gi] / float64(res.Ticks)
	}

	for r := 0; r < int(datacenter.NumResources); r++ {
		if overTicks[r] > 0 {
			res.AvgOverPct[r] = overSum[r] / float64(overTicks[r])
		} else {
			res.AvgOverPct[r] = math.NaN()
		}
		res.AvgUnderPct[r] = underSum[r] / float64(res.Ticks)
	}
	if cfg.TrackCenters {
		for _, cs := range res.CenterStats {
			cs.AvgAllocatedCPU /= float64(res.Ticks)
			cs.AvgFreeCPU /= float64(res.Ticks)
			for k := range cs.AllocatedByRegion {
				cs.AllocatedByRegion[k] /= float64(res.Ticks)
			}
		}
	}
	ro.finish(res)
	return res, nil
}

// DistanceClassShares buckets each center's served CPU by the distance
// between the requesting region and the center, in the five latency
// classes of Section V-E — the data behind Fig. 13.
func DistanceClassShares(res *Result, centers []*datacenter.Center, regions []trace.Region) map[geo.LatencyClass]map[string]float64 {
	regionLoc := map[string]geo.Point{}
	for _, r := range regions {
		regionLoc[r.Name] = r.Location
	}
	out := map[geo.LatencyClass]map[string]float64{}
	for _, c := range centers {
		cs := res.CenterStats[c.Name]
		if cs == nil {
			continue
		}
		for regionName, cpu := range cs.AllocatedByRegion {
			loc, ok := regionLoc[regionName]
			if !ok {
				continue
			}
			class := geo.ClassOf(geo.DistanceKm(loc, c.Location))
			if out[class] == nil {
				out[class] = map[string]float64{}
			}
			out[class][c.Name] += cpu
		}
	}
	return out
}
