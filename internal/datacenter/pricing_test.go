package datacenter

import (
	"math"
	"testing"
	"time"

	"mmogdc/internal/geo"
)

func TestLeaseCost(t *testing.T) {
	var alloc Vector
	alloc[CPU] = 2
	alloc[Memory] = 4
	l := &Lease{
		Alloc:   alloc,
		Start:   t0,
		Expires: t0.Add(3 * time.Hour),
	}
	got := DefaultPrices.LeaseCost(l)
	want := (2*1.00 + 4*0.10) * 3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("LeaseCost = %v, want %v", got, want)
	}
}

func TestLeaseCostZeroDuration(t *testing.T) {
	l := &Lease{Alloc: Vector{1, 1, 1, 1}, Start: t0, Expires: t0}
	if DefaultPrices.LeaseCost(l) != 0 {
		t.Fatal("zero-duration lease should cost 0")
	}
}

func TestAllocationCost(t *testing.T) {
	var alloc Vector
	alloc[ExtNetOut] = 10
	got := DefaultPrices.AllocationCost(alloc, 2*time.Hour)
	if math.Abs(got-10*0.15*2) > 1e-9 {
		t.Fatalf("AllocationCost = %v", got)
	}
	if DefaultPrices.AllocationCost(alloc, -time.Hour) != 0 {
		t.Fatal("negative duration should cost 0")
	}
}

func TestCenterAccumulatesCost(t *testing.T) {
	c := NewCenter("dc", geo.London, 4, testPolicy())
	var req Vector
	req[CPU] = 0.6 // rounds to 0.75, held for 1 hour
	if _, err := c.Lease(req, t0, "z"); err != nil {
		t.Fatal(err)
	}
	want := 0.75 * 1.00 * 1.0
	if math.Abs(c.TotalCost()-want) > 1e-9 {
		t.Fatalf("TotalCost = %v, want %v", c.TotalCost(), want)
	}
	// A second lease adds to the bill; expiry does not refund.
	if _, err := c.Lease(req, t0, "z"); err != nil {
		t.Fatal(err)
	}
	c.Expire(t0.Add(2 * time.Hour))
	if math.Abs(c.TotalCost()-2*want) > 1e-9 {
		t.Fatalf("TotalCost after expiry = %v, want %v", c.TotalCost(), 2*want)
	}
}

func TestSetPrices(t *testing.T) {
	c := NewCenter("dc", geo.London, 4, testPolicy())
	var custom PriceTable
	custom[CPU] = 10
	c.SetPrices(custom)
	var req Vector
	req[CPU] = 0.25
	if _, err := c.Lease(req, t0, "z"); err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.TotalCost()-0.25*10) > 1e-9 {
		t.Fatalf("custom-priced TotalCost = %v", c.TotalCost())
	}
}

func TestTotalCostOf(t *testing.T) {
	a := NewCenter("a", geo.London, 2, testPolicy())
	b := NewCenter("b", geo.London, 2, testPolicy())
	var req Vector
	req[CPU] = 0.25
	a.Lease(req, t0, "x")
	b.Lease(req, t0, "y")
	if got := TotalCostOf([]*Center{a, b}); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("TotalCostOf = %v", got)
	}
}
