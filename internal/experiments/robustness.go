package experiments

import (
	"fmt"
	"strings"

	"mmogdc/internal/core"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/predict"
	"mmogdc/internal/stats"
)

// Ext07Margin sweeps the safety margin on predicted demand — the
// paper's own suggestion for when even rare under-allocation events
// "cannot be tolerated": "a mechanism that allocates more than the
// predicted volume of required resources can be used" (Section V-C).
// The sweep quantifies what each percent of margin buys in events and
// costs in over-allocation.
func Ext07Margin(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	game := standardGame()
	neural := neuralFactory(opts)

	margins := []float64{0, 0.02, 0.05, 0.10, 0.20}
	results, err := parallelMap(len(margins), func(i int) (*core.Result, error) {
		return core.Run(core.Config{
			Centers:      hp12Centers(),
			SafetyMargin: margins[i],
			Workloads:    []core.Workload{{Game: game, Dataset: ds, Predictor: neural}},
		})
	})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Extension 7 — safety margin on predicted demand (Sec. V-C's remedy)\n\n")
	var rows [][]string
	for i, res := range results {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", margins[i]*100),
			f2(res.AvgOverPct[datacenter.CPU]),
			f3(res.AvgUnderPct[datacenter.CPU]),
			fmt.Sprintf("%d", res.Events),
		})
	}
	b.WriteString(table([]string{"margin", "over [%]", "under [%]", "events"}, rows))
	b.WriteString("\nA few percent of margin buys the residual under-allocation events away at\n")
	b.WriteString("a proportional over-allocation cost — the knob an operator turns when its\n")
	b.WriteString("game cannot tolerate disruption at all.\n")
	return b.String(), nil
}

// Ext08Failure injects a data-center outage and measures how dynamic
// provisioning absorbs it: the failed center's leases vanish, the
// operator's next two-minute cycle re-acquires the capacity elsewhere.
// A statically-provisioned fleet hosted in the failed center would
// stay dark for the whole outage.
func Ext08Failure(o Options) (string, error) {
	opts := o.withDefaults()
	if !opts.Quick && opts.Days > 4 {
		opts.Days = 4
	}
	ds := provisioningTrace(opts)
	game := standardGame()
	neural := neuralFactory(opts)

	// Fail the largest center for two hours, mid-trace.
	failAt := ds.Samples() / 2
	const outageTicks = 60
	victim := "U.K. (1)" // the center closest to the largest region

	run := func(failures []core.Failure) (*core.Result, error) {
		return core.Run(core.Config{
			Centers:   optimalCenters(),
			Failures:  failures,
			Workloads: []core.Workload{{Game: game, Dataset: ds, Predictor: neural}},
		})
	}
	clean, err := run(nil)
	if err != nil {
		return "", err
	}
	failed, err := run([]core.Failure{{Center: victim, AtTick: failAt, DurationTicks: outageTicks}})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Extension 8 — data-center outage resilience\n")
	fmt.Fprintf(&b, "(%s offline for %d minutes at mid-trace)\n\n", victim, outageTicks*2)

	// The under-allocation dip around the failure tick.
	window := func(res *core.Result, from, to int) (worst float64) {
		if from < 0 {
			from = 0
		}
		if to > len(res.UnderPct) {
			to = len(res.UnderPct)
		}
		return stats.Min(res.UnderPct[from:to])
	}
	rows := [][]string{
		{"no outage", f3(window(clean, failAt-5, failAt+outageTicks)),
			fmt.Sprintf("%d", clean.Events)},
		{"with outage", f3(window(failed, failAt-5, failAt+outageTicks)),
			fmt.Sprintf("%d", failed.Events)},
	}
	b.WriteString(table([]string{"scenario", "worst under [%] near the outage", "events"}, rows))

	// Recovery time: ticks from the failure until Y returns above the
	// disruption threshold.
	recovery := 0
	for i := failAt - 1; i < len(failed.UnderPct); i++ {
		if failed.UnderPct[i] < -core.SignificantUnderPct {
			recovery = i - (failAt - 1) + 1
		} else if i > failAt+2 {
			break
		}
	}
	fmt.Fprintf(&b, "\nThe operator re-acquires the lost capacity from other centers within\n")
	fmt.Fprintf(&b, "~%d tick(s) (%d minutes of disrupted play); a static deployment inside the\n",
		recovery, recovery*2)
	fmt.Fprintf(&b, "failed center would have been dark for the full %d minutes.\n", outageTicks*2)
	return b.String(), nil
}

// Ext09Horizon evaluates multi-step-ahead forecasts. The paper
// predicts one two-minute step, but the hosting policies' time bulks
// reserve resources for hours — a lease is really sized by where the
// load is heading, not by the next sample. The experiment scores the
// predictors at horizons of 2, 10, 30, and 60 minutes on the
// population trace (recursive forecasting for the window-based
// methods).
func Ext09Horizon(o Options) (string, error) {
	opts := o.withDefaults()
	if !opts.Quick && opts.Days > 4 {
		opts.Days = 4
	}
	ds := provisioningTrace(opts)
	neural := neuralFactory(opts)

	horizons := []int{1, 5, 15, 30}
	entries := []struct {
		name string
		f    predict.Factory
	}{
		{"Neural (pretrained)", neural},
		{"Last value", predict.NewLastValue()},
		{"Holt (trend)", predict.NewHolt(0.5, 0.1)},
		{"Exp. smoothing 50%", predict.NewExpSmoothing(0.5, "Exp. smoothing 50%")},
	}

	// Score a sample of groups (full per-zone multi-horizon
	// evaluation is O(zones * n * h)).
	groups := ds.Groups
	if len(groups) > 20 {
		groups = groups[:20]
	}

	var b strings.Builder
	b.WriteString("Extension 9 — forecast error [%] by horizon (recursive multi-step)\n\n")
	header := []string{"predictor"}
	for _, h := range horizons {
		header = append(header, fmt.Sprintf("h=%d (%dmin)", h, h*2))
	}
	rows, err := parallelMap(len(entries), func(i int) ([]string, error) {
		row := []string{entries[i].name}
		for _, h := range horizons {
			var errSum float64
			for _, g := range groups {
				errSum += predict.EvaluateHorizon(entries[i].f, g.Load.Values, h)
			}
			row = append(row, f2(errSum/float64(len(groups))))
		}
		return row, nil
	})
	if err != nil {
		return "", err
	}
	b.WriteString(table(header, rows))
	b.WriteString("\nErrors grow with the horizon for every method; the learned predictor keeps\n")
	b.WriteString("a clear edge at every horizon, because it extrapolates both the round\n")
	b.WriteString("cycle (short horizons) and the diurnal slope (long horizons) where the\n")
	b.WriteString("fixed methods capture at most one of the two.\n")
	return b.String(), nil
}
