// Command predeval evaluates the seven load-prediction algorithms on
// the eight Table I emulator data sets (the Fig. 5 experiment) or on a
// population-trace CSV produced by tracegen.
//
// Usage:
//
//	predeval                 # Fig. 5 on the emulator sets
//	predeval -trace t.csv    # evaluate on a trace's server groups
package main

import (
	"flag"
	"fmt"
	"os"

	"mmogdc/internal/experiments"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "evaluate on a CSV trace instead of the emulator sets")
		seed      = flag.Uint64("seed", 42, "random seed")
		quick     = flag.Bool("quick", false, "shrink the emulator workloads")
	)
	flag.Parse()

	if *traceFile == "" {
		out, err := experiments.Fig05(experiments.Options{Seed: *seed, Quick: *quick})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	f, err := os.Open(*traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	ds, err := trace.ReadCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	zones := make([][]float64, len(ds.Groups))
	for i, g := range ds.Groups {
		zones[i] = g.Load.Values
	}
	fmt.Printf("%-24s %10s\n", "predictor", "error [%]")
	for _, bf := range predict.Baselines() {
		fmt.Printf("%-24s %10.3f\n", bf().Name(), predict.EvaluateZones(bf, zones))
	}
	nf, _ := predict.PretrainShared(predict.PaperNeuralConfig(*seed), zones, 0.8, predict.PaperTrainConfig(*seed+1))
	fmt.Printf("%-24s %10.3f\n", "Neural (pretrained)", predict.EvaluateZonesFrom(nf, zones, 1))
}
