package neural

import (
	"fmt"

	"mmogdc/internal/checkpoint"
)

// Snapshot serializes the network's learned state — weights, biases,
// and the momentum buffers that shape the very next update — so an
// online-adapting predictor restored from a checkpoint continues
// training exactly where the crashed one stopped. The scratch
// activation buffers are transient and excluded.
func (m *MLP) Snapshot() []byte {
	e := checkpoint.NewEnc()
	e.Str("mlp")
	e.Ints(m.sizes)
	for l := range m.weights {
		for j := range m.weights[l] {
			e.F64s(m.weights[l][j])
			e.F64s(m.wVel[l][j])
		}
		e.F64s(m.biases[l])
		e.F64s(m.bVel[l])
	}
	return e.Data()
}

// Restore overwrites the network's learned state with a Snapshot. The
// layer structure must match the receiver's — a snapshot from a
// differently shaped network is rejected, not silently truncated.
func (m *MLP) Restore(data []byte) error {
	d := checkpoint.NewDec(data)
	if kind := d.Str(); kind != "mlp" {
		return fmt.Errorf("neural: snapshot kind %q, want mlp", kind)
	}
	sizes := d.Ints()
	if len(sizes) != len(m.sizes) {
		return fmt.Errorf("neural: snapshot has %d layers, network %d", len(sizes), len(m.sizes))
	}
	for i, s := range sizes {
		if s != m.sizes[i] {
			return fmt.Errorf("neural: snapshot layer %d size %d, network %d", i, s, m.sizes[i])
		}
	}
	// Decode into fresh storage first so a truncated snapshot cannot
	// leave the network half-restored.
	w := make([][][]float64, len(m.weights))
	wv := make([][][]float64, len(m.weights))
	b := make([][]float64, len(m.weights))
	bv := make([][]float64, len(m.weights))
	for l := range m.weights {
		out, in := m.sizes[l+1], m.sizes[l]
		w[l] = make([][]float64, out)
		wv[l] = make([][]float64, out)
		for j := 0; j < out; j++ {
			w[l][j] = d.F64s()
			wv[l][j] = d.F64s()
			if d.Err() == nil && (len(w[l][j]) != in || len(wv[l][j]) != in) {
				return fmt.Errorf("neural: snapshot row width mismatch at layer %d", l)
			}
		}
		b[l] = d.F64s()
		bv[l] = d.F64s()
		if d.Err() == nil && (len(b[l]) != out || len(bv[l]) != out) {
			return fmt.Errorf("neural: snapshot bias width mismatch at layer %d", l)
		}
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("neural: %w", err)
	}
	m.weights, m.wVel, m.biases, m.bVel = w, wv, b, bv
	return nil
}
