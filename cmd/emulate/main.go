// Command emulate runs the game emulator for one Table I data set and
// prints the per-step total entity count (and optionally the per-zone
// counts as CSV).
//
// Usage:
//
//	emulate -set 3            # run Table I "Set 3", print the total signal
//	emulate -set 5 -zones     # CSV with one column per sub-zone
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mmogdc/internal/emulator"
	"mmogdc/internal/plot"
)

func main() {
	var (
		setIdx  = flag.Int("set", 1, "Table I data set (1-8)")
		zones   = flag.Bool("zones", false, "emit per-sub-zone counts as CSV")
		steps   = flag.Int("steps", 0, "override the number of 2-minute steps (default one day)")
		heatmap = flag.Bool("heatmap", false, "render the final entity distribution as an ASCII heatmap")
	)
	flag.Parse()

	cfgs := emulator.TableIConfigs()
	if *setIdx < 1 || *setIdx > len(cfgs) {
		fmt.Fprintf(os.Stderr, "set must be 1..%d\n", len(cfgs))
		os.Exit(2)
	}
	cfg := cfgs[*setIdx-1]
	if *steps > 0 {
		cfg.Steps = *steps
	}
	ds := emulator.Run(cfg)

	if *heatmap {
		w := cfg
		if w.GridW == 0 {
			w.GridW, w.GridH = 12, 12
		}
		last := ds.Total.Len() - 1
		values := make([]float64, len(ds.Zones))
		for z, s := range ds.Zones {
			values[z] = s.At(last)
		}
		h := plot.Heatmap{
			Title:  fmt.Sprintf("%s — entity distribution at the final step (total %.0f)", cfg.Name, ds.Total.At(last)),
			Rows:   w.GridH,
			Cols:   w.GridW,
			Values: values,
		}
		fmt.Print(h.Render())
		return
	}

	if !*zones {
		fmt.Printf("# %s: mix=%v peakHours=%v overall=%v instant=%v (signal type %d)\n",
			cfg.Name, cfg.ProfileMix, cfg.PeakHours, cfg.Overall, cfg.Instant, emulator.SignalTypeOf(cfg))
		for i, v := range ds.Total.Values {
			fmt.Printf("%d,%.0f\n", i, v)
		}
		return
	}

	header := make([]string, 0, len(ds.Zones)+1)
	header = append(header, "step")
	for z := range ds.Zones {
		header = append(header, fmt.Sprintf("zone%d", z))
	}
	fmt.Println(strings.Join(header, ","))
	for i := 0; i < ds.Total.Len(); i++ {
		row := make([]string, 0, len(ds.Zones)+1)
		row = append(row, fmt.Sprintf("%d", i))
		for _, z := range ds.Zones {
			row = append(row, fmt.Sprintf("%.0f", z.At(i)))
		}
		fmt.Println(strings.Join(row, ","))
	}
}
