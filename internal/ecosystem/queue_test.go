package ecosystem

import (
	"math"
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
)

func TestQueueImmediateServiceBypassesLine(t *testing.T) {
	c := datacenter.NewCenter("dc", geo.London, 4, mkPolicy("p", 0.25, time.Hour))
	q := NewQueue(NewMatcher([]*datacenter.Center{c}))
	leases, queued := q.Submit(cpuReq("a", 1, geo.London, math.Inf(1)), t0)
	if queued || len(leases) != 1 || q.Len() != 0 {
		t.Fatalf("immediate fit misbehaved: queued=%v leases=%d len=%d", queued, len(leases), q.Len())
	}
}

func TestQueueHoldsOverflowAndDrainsFIFO(t *testing.T) {
	c := datacenter.NewCenter("dc", geo.London, 1, mkPolicy("p", 0.5, time.Hour))
	q := NewQueue(NewMatcher([]*datacenter.Center{c}))

	// Fill the machine, then queue two more requests.
	if _, queued := q.Submit(cpuReq("first", 1, geo.London, math.Inf(1)), t0); queued {
		t.Fatal("first request should fit")
	}
	if _, queued := q.Submit(cpuReq("second", 0.5, geo.London, math.Inf(1)), t0); !queued {
		t.Fatal("second request should queue")
	}
	if _, queued := q.Submit(cpuReq("third", 0.5, geo.London, math.Inf(1)), t0); !queued {
		t.Fatal("third request should queue")
	}
	if q.Len() != 2 {
		t.Fatalf("queue length = %d", q.Len())
	}

	// Nothing freed yet: drain grants nothing.
	if granted := q.Drain(t0.Add(30 * time.Minute)); granted != nil {
		t.Fatalf("early drain granted %v", granted)
	}

	// After expiry the whole machine frees: both fit, FIFO intact.
	granted := q.Drain(t0.Add(time.Hour))
	if len(granted["second"]) != 1 || len(granted["third"]) != 1 {
		t.Fatalf("drain grants = %v", granted)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

func TestQueuePartialServiceKeepsRemainder(t *testing.T) {
	c := datacenter.NewCenter("dc", geo.London, 1, mkPolicy("p", 0.5, time.Hour))
	q := NewQueue(NewMatcher([]*datacenter.Center{c}))
	q.Submit(cpuReq("hog", 1, geo.London, math.Inf(1)), t0)
	// A 2-unit request can never fully fit a 1-unit machine.
	if _, queued := q.Submit(cpuReq("big", 2, geo.London, math.Inf(1)), t0); !queued {
		t.Fatal("big request should queue")
	}
	granted := q.Drain(t0.Add(time.Hour))
	if len(granted["big"]) != 1 {
		t.Fatalf("big request not partially served: %v", granted)
	}
	if q.Len() != 1 {
		t.Fatalf("remainder not kept: len = %d", q.Len())
	}
	// The kept remainder is the unserved part (1 unit).
	if got := q.pending[0].Demand[datacenter.CPU]; got != 1 {
		t.Fatalf("remainder demand = %v, want 1", got)
	}
}

func TestQueueRespectsLatencyBound(t *testing.T) {
	far := datacenter.NewCenter("sydney", geo.Sydney, 4, mkPolicy("p", 0.25, time.Hour))
	q := NewQueue(NewMatcher([]*datacenter.Center{far}))
	if _, queued := q.Submit(cpuReq("eu", 1, geo.London, 2000), t0); !queued {
		t.Fatal("unservable request should queue")
	}
	// No admissible capacity will ever free: the request waits forever
	// rather than being misplaced.
	if granted := q.Drain(t0.Add(48 * time.Hour)); granted != nil {
		t.Fatalf("latency-bound request served from Sydney: %v", granted)
	}
	if q.Len() != 1 {
		t.Fatal("request dropped from the queue")
	}
}
