// Package neural implements the multi-layer perceptron behind the
// paper's load predictor (Section IV-C): a low-complexity MLP — the
// paper uses a (6,3,1) structure of input, hidden, and output neuron
// layers — trained by error backpropagation with momentum over
// "training eras", each era presenting all training sets in sequence,
// adjusting the weights, and testing against held-out test sets until
// a convergence criterion is fulfilled. The package also provides the
// polynomial signal preprocessors the paper couples with the network
// to remove unwanted noise from the input signal.
package neural

import (
	"errors"
	"fmt"
	"math"

	"mmogdc/internal/xrand"
)

// MLP is a fully connected feed-forward network with tanh hidden
// layers and a linear output layer, trained with SGD + momentum.
type MLP struct {
	sizes []int
	// weights[l][j][i] connects layer l's input i to neuron j.
	weights [][][]float64
	biases  [][]float64
	// momentum buffers, same shapes as weights/biases.
	wVel [][][]float64
	bVel [][]float64
	// scratch per-layer activations and deltas, reused across calls.
	acts   [][]float64
	deltas [][]float64
}

// NewMLP builds a network with the given layer sizes, e.g.
// NewMLP(r, 6, 3, 1) for the paper's predictor. Weights are
// initialized with Xavier-style scaling from r.
func NewMLP(r *xrand.Rand, sizes ...int) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, errors.New("neural: need at least input and output layers")
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("neural: invalid layer size %d", s)
		}
	}
	m := &MLP{sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2.0 / float64(in+out))
		w := make([][]float64, out)
		v := make([][]float64, out)
		for j := range w {
			w[j] = make([]float64, in)
			v[j] = make([]float64, in)
			for i := range w[j] {
				w[j][i] = r.Norm(0, scale)
			}
		}
		m.weights = append(m.weights, w)
		m.wVel = append(m.wVel, v)
		m.biases = append(m.biases, make([]float64, out))
		m.bVel = append(m.bVel, make([]float64, out))
	}
	m.acts = make([][]float64, len(sizes))
	m.deltas = make([][]float64, len(sizes))
	for l, s := range sizes {
		m.acts[l] = make([]float64, s)
		m.deltas[l] = make([]float64, s)
	}
	return m, nil
}

// InputSize returns the expected input vector length.
func (m *MLP) InputSize() int { return m.sizes[0] }

// OutputSize returns the output vector length.
func (m *MLP) OutputSize() int { return m.sizes[len(m.sizes)-1] }

// Forward runs inference. The returned slice aliases internal scratch
// storage and is valid until the next Forward or Train call.
func (m *MLP) Forward(in []float64) []float64 {
	if len(in) != m.sizes[0] {
		panic(fmt.Sprintf("neural: input size %d, want %d", len(in), m.sizes[0]))
	}
	copy(m.acts[0], in)
	last := len(m.sizes) - 1
	for l := 0; l < last; l++ {
		w := m.weights[l]
		b := m.biases[l]
		src := m.acts[l]
		dst := m.acts[l+1]
		for j := range dst {
			sum := b[j]
			wj := w[j]
			for i, x := range src {
				sum += wj[i] * x
			}
			if l+1 == last {
				dst[j] = sum // linear output
			} else {
				dst[j] = math.Tanh(sum)
			}
		}
	}
	return m.acts[last]
}

// Train runs one backpropagation step on a single (input, target)
// example and returns the pre-update squared error.
func (m *MLP) Train(in, target []float64, lr, momentum float64) float64 {
	return m.TrainClipped(in, target, lr, momentum, 0)
}

// TrainClipped is Train with Huber-style error clipping: the error
// driving the weight update is clamped to ±clip (clip <= 0 disables
// clipping). Clipping bounds the influence of heavy-tailed outliers,
// moving the regression from the conditional mean toward the
// conditional median — which is what the prediction-error metric
// (mean absolute error) rewards. The returned loss is the unclipped
// squared error.
func (m *MLP) TrainClipped(in, target []float64, lr, momentum, clip float64) float64 {
	out := m.Forward(in)
	if len(target) != len(out) {
		panic(fmt.Sprintf("neural: target size %d, want %d", len(target), len(out)))
	}
	last := len(m.sizes) - 1
	var loss float64
	for j := range out {
		err := out[j] - target[j]
		loss += err * err
		if clip > 0 {
			if err > clip {
				err = clip
			} else if err < -clip {
				err = -clip
			}
		}
		m.deltas[last][j] = err // linear output: delta = error
	}
	// Backpropagate through hidden layers (tanh derivative 1 - a^2).
	for l := last - 1; l >= 1; l-- {
		wNext := m.weights[l]
		for i := range m.deltas[l] {
			var sum float64
			for j := range m.deltas[l+1] {
				sum += wNext[j][i] * m.deltas[l+1][j]
			}
			a := m.acts[l][i]
			m.deltas[l][i] = sum * (1 - a*a)
		}
	}
	// Gradient descent with momentum.
	for l := 0; l < last; l++ {
		w := m.weights[l]
		wv := m.wVel[l]
		b := m.biases[l]
		bv := m.bVel[l]
		src := m.acts[l]
		d := m.deltas[l+1]
		for j := range w {
			g := d[j]
			wj, vj := w[j], wv[j]
			for i, x := range src {
				vj[i] = momentum*vj[i] - lr*g*x
				wj[i] += vj[i]
			}
			bv[j] = momentum*bv[j] - lr*g
			b[j] += bv[j]
		}
	}
	return loss
}

// Clone returns a deep copy of the network (weights only; momentum
// buffers are reset).
func (m *MLP) Clone() *MLP {
	c := &MLP{sizes: append([]int(nil), m.sizes...)}
	for l := range m.weights {
		w := make([][]float64, len(m.weights[l]))
		v := make([][]float64, len(m.weights[l]))
		for j := range w {
			w[j] = append([]float64(nil), m.weights[l][j]...)
			v[j] = make([]float64, len(m.weights[l][j]))
		}
		c.weights = append(c.weights, w)
		c.wVel = append(c.wVel, v)
		c.biases = append(c.biases, append([]float64(nil), m.biases[l]...))
		c.bVel = append(c.bVel, make([]float64, len(m.biases[l])))
	}
	c.acts = make([][]float64, len(c.sizes))
	c.deltas = make([][]float64, len(c.sizes))
	for l, s := range c.sizes {
		c.acts[l] = make([]float64, s)
		c.deltas[l] = make([]float64, s)
	}
	return c
}

// Sample is one supervised training example.
type Sample struct {
	In     []float64
	Target []float64
}

// TrainConfig controls offline era-based training.
type TrainConfig struct {
	// LearningRate for SGD; defaults to 0.05.
	LearningRate float64
	// Momentum coefficient; defaults to 0.5.
	Momentum float64
	// MaxEras bounds training; defaults to 200.
	MaxEras int
	// Patience stops after this many eras without test-set
	// improvement; defaults to 10.
	Patience int
	// MinImprovement is the relative test-loss improvement that resets
	// patience; defaults to 1e-4.
	MinImprovement float64
	// ShuffleSeed, when non-zero, reshuffles the training samples
	// before every era. Without shuffling, samples grouped by source
	// (e.g. one sub-zone after another) cause catastrophic
	// interference: the weights end every era biased toward the last
	// group presented.
	ShuffleSeed uint64
	// LRDecay shrinks the learning rate as lr/(1+LRDecay*era),
	// settling the network onto a minimum late in training. Zero
	// disables decay.
	LRDecay float64
	// ErrorClip bounds the per-sample error driving the weight update
	// (Huber-style robustness); zero disables clipping.
	ErrorClip float64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.5
	}
	if c.MaxEras == 0 {
		c.MaxEras = 200
	}
	if c.Patience == 0 {
		c.Patience = 10
	}
	if c.MinImprovement == 0 {
		c.MinImprovement = 1e-4
	}
	return c
}

// TrainResult reports how offline training went.
type TrainResult struct {
	// Eras is the number of completed training eras.
	Eras int
	// TrainLoss and TestLoss are the final mean squared errors.
	TrainLoss float64
	TestLoss  float64
	// Converged is true when the patience criterion stopped training
	// before MaxEras.
	Converged bool
}

// Fit trains the network offline: each era presents all training
// samples in sequence, adjusts the weights, and evaluates on the test
// samples; training stops when the test loss stops improving (the
// paper's convergence criterion) or MaxEras is reached. With no test
// samples the train loss is used for the criterion.
func (m *MLP) Fit(train, test []Sample, cfg TrainConfig) TrainResult {
	c := cfg.withDefaults()
	res := TrainResult{}
	if len(train) == 0 {
		return res
	}
	var shuffler *xrand.Rand
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	if c.ShuffleSeed != 0 {
		shuffler = xrand.New(c.ShuffleSeed)
	}
	best := math.Inf(1)
	bad := 0
	for era := 0; era < c.MaxEras; era++ {
		if shuffler != nil {
			shuffler.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		lr := c.LearningRate / (1 + c.LRDecay*float64(era))
		var trainLoss float64
		for _, idx := range order {
			s := train[idx]
			trainLoss += m.TrainClipped(s.In, s.Target, lr, c.Momentum, c.ErrorClip)
		}
		trainLoss /= float64(len(train))
		testLoss := trainLoss
		if len(test) > 0 {
			testLoss = m.Loss(test)
		}
		res.Eras = era + 1
		res.TrainLoss = trainLoss
		res.TestLoss = testLoss
		if testLoss < best*(1-c.MinImprovement) {
			best = testLoss
			bad = 0
		} else {
			bad++
			if bad >= c.Patience {
				res.Converged = true
				break
			}
		}
	}
	return res
}

// Loss returns the mean squared error over the samples.
func (m *MLP) Loss(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var total float64
	for _, s := range samples {
		out := m.Forward(s.In)
		for j := range out {
			d := out[j] - s.Target[j]
			total += d * d
		}
	}
	return total / float64(len(samples))
}
