package core

import (
	"strings"
	"testing"
	"time"

	"mmogdc/internal/faults"
	"mmogdc/internal/obs"
)

// obsConfig is the equivalence scenario plus a chaos-grade fault plan,
// so every instrumented site fires: outages and degradations, grant
// rejections with retries, partial grants, monitoring dropouts, and
// same-tick failovers.
func obsConfig(workers int, o *obs.Obs) Config {
	cfg := equivalenceConfig(workers)
	cfg.Faults = &faults.Config{
		Seed:             99,
		MTBFTicks:        150,
		MTTRTicks:        25,
		DegradedShare:    0.5,
		RejectProb:       0.05,
		PartialGrantProb: 0.05,
		DropoutProb:      0.05,
	}
	cfg.Obs = o
	return cfg
}

// TestObsRunBitIdentical is the write-only contract of the telemetry
// layer: enabling observability — including span tracing — must not
// change a single bit of the Result, on a run that exercises every
// instrumented path. daemon.TestDaemonObsBitIdentical extends the same
// contract to the service path (request tracing, SLO rules, runtime
// telemetry), and scripts/slo_smoke.sh re-proves it end to end over
// HTTP.
func TestObsRunBitIdentical(t *testing.T) {
	plain, err := Run(obsConfig(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	o.Clock = obs.NewManualClock(time.Unix(0, 0), time.Millisecond)
	o.EnableTracing(0)
	instrumented, err := Run(obsConfig(2, o))
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, plain, instrumented)
	if plain.Resilience.Failovers == 0 || plain.Resilience.Rejections == 0 ||
		plain.Resilience.DroppedSamples == 0 {
		t.Fatalf("degenerate fault scenario: %+v", plain.Resilience)
	}
	if o.Tracer.Len() == 0 {
		t.Fatal("tracing was enabled but captured no spans")
	}

	// Decision provenance is write-only too: an instrumented run with a
	// decision log must still be bit-identical.
	o2 := obs.New()
	o2.Clock = obs.NewManualClock(time.Unix(0, 0), time.Millisecond)
	cfg := obsConfig(2, o2)
	cfg.Provenance = 256
	explained, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, plain, explained)
	decisions := 0
	for _, e := range o2.Recorder.Events() {
		if e.Kind == obs.EventDecision {
			decisions++
		}
	}
	if decisions == 0 {
		t.Fatal("provenance enabled but no decision events recorded")
	}
}

// TestObsTraceCapturesEngineStructure pins the span families the
// engine emits: per-tick roots with phase children, per-zone predict
// spans carrying worker indices, zone acquire spans (including
// failover and retry variants), and async outage windows.
func TestObsTraceCapturesEngineStructure(t *testing.T) {
	o := obs.New()
	o.Clock = obs.NewManualClock(time.Unix(0, 0), time.Millisecond)
	o.Recorder = obs.NewRecorder(1 << 17)
	o.EnableTracing(0)
	res, err := Run(obsConfig(1, o))
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]int{}
	linkedFailovers, linkedRetries, asyncBegins, asyncEnds := 0, 0, 0, 0
	byID := map[obs.SpanID]obs.SpanRec{}
	for _, r := range o.Tracer.Records() {
		byName[r.Name]++
		switch r.Phase {
		case obs.PhaseAsyncBegin:
			asyncBegins++
		case obs.PhaseAsyncEnd:
			asyncEnds++
		default:
			byID[r.ID] = r
		}
		if r.Link != 0 {
			switch r.Name {
			case "acquire.failover":
				linkedFailovers++
			case "acquire.retry":
				linkedRetries++
			}
		}
	}
	if byName["tick"] != res.Ticks {
		t.Errorf("tick spans = %d, want %d", byName["tick"], res.Ticks)
	}
	if byName["bootstrap"] != 1 {
		t.Errorf("bootstrap spans = %d, want 1", byName["bootstrap"])
	}
	if byName["phase.observe"] != res.Ticks || byName["phase.reduce"] != res.Ticks {
		t.Errorf("phase spans observe=%d reduce=%d, want %d each",
			byName["phase.observe"], byName["phase.reduce"], res.Ticks)
	}
	// The final tick skips the acquire phase.
	if byName["phase.acquire"] != res.Ticks-1 {
		t.Errorf("phase.acquire spans = %d, want %d", byName["phase.acquire"], res.Ticks-1)
	}
	if byName["predict"] == 0 || byName["acquire"] == 0 {
		t.Errorf("missing per-zone spans: %v", byName)
	}
	if byName["acquire.failover"] == 0 || linkedFailovers == 0 {
		t.Errorf("failover spans = %d (linked %d), want > 0", byName["acquire.failover"], linkedFailovers)
	}
	if byName["acquire.retry"] == 0 || linkedRetries == 0 {
		t.Errorf("retry spans = %d (linked %d), want > 0", byName["acquire.retry"], linkedRetries)
	}
	if asyncBegins == 0 || asyncEnds == 0 || asyncEnds > asyncBegins {
		t.Errorf("async windows: %d begins, %d ends", asyncBegins, asyncEnds)
	}

	// Every predict span parents to a phase.observe (or bootstrap)
	// span of the same tick.
	for _, r := range byID {
		if r.Name != "predict" {
			continue
		}
		p, ok := byID[r.Parent]
		if !ok || (p.Name != "phase.observe" && p.Name != "bootstrap") || p.Tick != r.Tick {
			t.Fatalf("predict span %+v has parent %+v", r, p)
		}
	}

	// Events carry their enclosing span and a strict Seq total order.
	var lastSeq uint64
	stamped := 0
	for _, e := range o.Recorder.Events() {
		if e.Seq != lastSeq+1 {
			t.Fatalf("event seq %d follows %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Span != 0 {
			stamped++
		}
	}
	if stamped == 0 {
		t.Error("no event carries a span ID")
	}
}

// TestObsCountersMatchResilience pins the Resilience bridge: the
// registry counters must land on exactly the values the Result
// reports, because both are incremented at the same sites.
func TestObsCountersMatchResilience(t *testing.T) {
	o := obs.New()
	// The default 4096-event ring wraps on a run this long; keep every
	// event so the kind census below sees the whole story.
	o.Recorder = obs.NewRecorder(1 << 17)
	res, err := Run(obsConfig(4, o))
	if err != nil {
		t.Fatal(err)
	}
	r := o.Registry
	resil := res.Resilience
	counters := []struct {
		name string
		got  int64
		want int
	}{
		{"mmogdc_ticks_total", r.Counter("mmogdc_ticks_total", "").Value(), res.Ticks},
		{"mmogdc_disruptive_ticks_total", r.Counter("mmogdc_disruptive_ticks_total", "").Value(), res.Events},
		{"mmogdc_unmet_ticks_total", r.Counter("mmogdc_unmet_ticks_total", "").Value(), res.Unmet},
		{"mmogdc_failovers_total", r.Counter("mmogdc_failovers_total", "").Value(), resil.Failovers},
		{"mmogdc_failover_leases_total", r.Counter("mmogdc_failover_leases_total", "").Value(), resil.FailoverLeases},
		{"mmogdc_retries_total", r.Counter("mmogdc_retries_total", "").Value(), resil.Retries},
		{"mmogdc_rejections_total", r.Counter("mmogdc_rejections_total", "").Value(), resil.Rejections},
		{"mmogdc_partial_grants_total", r.Counter("mmogdc_partial_grants_total", "").Value(), resil.PartialGrants},
		{"mmogdc_dropped_samples_total", r.Counter("mmogdc_dropped_samples_total", "").Value(), resil.DroppedSamples},
	}
	for _, c := range counters {
		if c.got != int64(c.want) {
			t.Errorf("%s = %d, want %d (Resilience parity)", c.name, c.got, c.want)
		}
	}

	// Per-phase timing covered every scored tick.
	for _, phase := range []string{"observe", "reduce", "acquire"} {
		h := r.Histogram("mmogdc_tick_phase_duration_seconds", "", obs.TimeBuckets, obs.L("phase", phase))
		want := int64(res.Ticks)
		if phase == "acquire" {
			// The final tick skips the acquire phase.
			want--
		}
		if h.Count() != want {
			t.Errorf("phase %q observations = %d, want %d", phase, h.Count(), want)
		}
	}
	if h := r.Histogram("mmogdc_tick_duration_seconds", "", obs.TimeBuckets); h.Count() != int64(res.Ticks) {
		t.Errorf("tick duration observations = %d, want %d", h.Count(), res.Ticks)
	}

	// End-of-run gauges bridged from the Result.
	for name, avail := range resil.Availability {
		g := r.Gauge("mmogdc_center_availability", "", obs.L("center", name))
		if g.Value() != avail {
			t.Errorf("availability[%s] gauge = %v, want %v", name, g.Value(), avail)
		}
	}
	if g := r.Gauge("mmogdc_capacity_lost_cpu_ticks", ""); g.Value() != resil.CapacityLostCPUTicks {
		t.Errorf("capacity lost gauge = %v, want %v", g.Value(), resil.CapacityLostCPUTicks)
	}

	// The flight recorder saw the outage story.
	kinds := map[string]int{}
	for _, e := range o.Recorder.Events() {
		kinds[e.Kind]++
	}
	for _, want := range []string{obs.EventGrant, obs.EventFailover, obs.EventRejection,
		obs.EventDropped, obs.EventRetry} {
		if kinds[want] == 0 {
			t.Errorf("flight recorder has no %q events (kinds: %v)", want, kinds)
		}
	}
	if kinds[obs.EventOutage]+kinds[obs.EventDegrade] == 0 {
		t.Errorf("flight recorder has no outage/degrade events (kinds: %v)", kinds)
	}

	// Pool utilization bridged: caller+helper indices equal the per-zone
	// work the run dispatched. Every scored tick plus the bootstrap runs
	// one For over all zones.
	caller := r.Counter("mmogdc_pool_indices_total", "", obs.L("executor", "caller")).Value()
	helper := r.Counter("mmogdc_pool_indices_total", "", obs.L("executor", "helper")).Value()
	if caller+helper == 0 {
		t.Error("pool utilization counters never moved")
	}

	// Prometheus exposition carries the key series end-to-end.
	text := r.PrometheusText()
	for _, want := range []string{
		"mmogdc_tick_duration_seconds_bucket",
		"mmogdc_failovers_total",
		"mmogdc_center_availability{center=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
