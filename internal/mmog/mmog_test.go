package mmog

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUpdateModelStrings(t *testing.T) {
	want := map[UpdateModel]string{
		UpdateLinear:       "O(n)",
		UpdateNLogN:        "O(n x log(n))",
		UpdateQuadratic:    "O(n^2)",
		UpdateQuadraticLog: "O(n^2 x log(n))",
		UpdateCubic:        "O(n^3)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if UpdateModel(42).String() != "UpdateModel(42)" {
		t.Error("unknown model String() wrong")
	}
}

func TestCPUUnitsNormalization(t *testing.T) {
	// Every model must cost exactly 1.0 unit at full server capacity.
	for _, m := range AllUpdateModels {
		if got := m.CPUUnits(FullServerClients); math.Abs(got-1) > 1e-12 {
			t.Errorf("%v: CPUUnits(full) = %v, want 1", m, got)
		}
	}
}

func TestCPUUnitsZeroAndNegative(t *testing.T) {
	for _, m := range AllUpdateModels {
		if m.CPUUnits(0) != 0 || m.CPUUnits(-5) != 0 {
			t.Errorf("%v: non-positive entity count should cost 0", m)
		}
	}
}

func TestCPUUnitsMonotone(t *testing.T) {
	for _, m := range AllUpdateModels {
		prev := 0.0
		for n := 1.0; n <= 4*FullServerClients; n *= 1.5 {
			cur := m.CPUUnits(n)
			if cur <= prev {
				t.Fatalf("%v: CPUUnits not strictly increasing at n=%v", m, n)
			}
			prev = cur
		}
	}
}

func TestSuperLinearOrderingAboveCapacity(t *testing.T) {
	// Past the nominal capacity, more complex models must cost more
	// (the hot-spot effect); below half capacity the ordering flips.
	n := 2.0 * FullServerClients
	for i := 0; i+1 < len(AllUpdateModels); i++ {
		lo := AllUpdateModels[i].CPUUnits(n)
		hi := AllUpdateModels[i+1].CPUUnits(n)
		if hi <= lo {
			t.Errorf("at n=%v, %v (%v) should cost more than %v (%v)",
				n, AllUpdateModels[i+1], hi, AllUpdateModels[i], lo)
		}
	}
	n = 0.25 * FullServerClients
	for i := 0; i+1 < len(AllUpdateModels); i++ {
		lo := AllUpdateModels[i].CPUUnits(n)
		hi := AllUpdateModels[i+1].CPUUnits(n)
		if hi >= lo {
			t.Errorf("at quarter load, %v should cost less than %v", AllUpdateModels[i+1], AllUpdateModels[i])
		}
	}
}

func TestEntitiesForCPURoundTrip(t *testing.T) {
	for _, m := range AllUpdateModels {
		for _, n := range []float64{10, 250, 1000, 2000, 3500, 6000} {
			units := m.CPUUnits(n)
			back := m.EntitiesForCPU(units)
			if math.Abs(back-n) > n*1e-6+1e-6 {
				t.Errorf("%v: round trip %v -> %v -> %v", m, n, units, back)
			}
		}
		if m.EntitiesForCPU(0) != 0 || m.EntitiesForCPU(-1) != 0 {
			t.Errorf("%v: non-positive units should map to 0 entities", m)
		}
	}
}

func TestEntitiesForCPUMonotoneProperty(t *testing.T) {
	err := quick.Check(func(a, b float64) bool {
		u1 := math.Abs(math.Mod(a, 10))
		u2 := math.Abs(math.Mod(b, 10))
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		for _, m := range AllUpdateModels {
			if m.EntitiesForCPU(u1) > m.EntitiesForCPU(u2)+1e-6 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGenreDefaults(t *testing.T) {
	cases := []struct {
		g      Genre
		update UpdateModel
	}{
		{GenrePuzzle, UpdateLinear},
		{GenreRPG, UpdateNLogN},
		{GenreMMORPG, UpdateQuadratic},
		{GenreRTS, UpdateQuadraticLog},
		{GenreFPS, UpdateCubic},
	}
	for _, c := range cases {
		if got := c.g.DefaultUpdateModel(); got != c.update {
			t.Errorf("%v default update = %v, want %v", c.g, got, c.update)
		}
	}
}

func TestLatencyToleranceOrdering(t *testing.T) {
	// Faster-paced genres must have tighter latency budgets.
	order := []Genre{GenrePuzzle, GenreRPG, GenreMMORPG, GenreRTS, GenreFPS}
	for i := 0; i+1 < len(order); i++ {
		if order[i].LatencyToleranceMs() <= order[i+1].LatencyToleranceMs() {
			t.Errorf("%v tolerance should exceed %v's", order[i], order[i+1])
		}
	}
}

func TestGenreStrings(t *testing.T) {
	for _, g := range []Genre{GenrePuzzle, GenreRPG, GenreMMORPG, GenreRTS, GenreFPS} {
		if g.String() == "" {
			t.Errorf("genre %d has empty String", int(g))
		}
	}
}

func TestNewGameDefaults(t *testing.T) {
	g := NewGame("test", GenreFPS)
	if g.Update != UpdateCubic {
		t.Errorf("FPS game update = %v", g.Update)
	}
	if !math.IsInf(g.LatencyKm, 1) {
		t.Errorf("default latency should be unconstrained")
	}
	if g.Profile != DefaultProfile {
		t.Errorf("default profile not applied")
	}
}

func TestDemandVectorOps(t *testing.T) {
	a := Demand{CPU: 1, Memory: 2, ExtNetIn: 3, ExtNetOut: 4}
	b := Demand{CPU: 10, Memory: 1, ExtNetIn: 30, ExtNetOut: 1}
	sum := a.Add(b)
	if sum != (Demand{11, 3, 33, 5}) {
		t.Fatalf("Add = %+v", sum)
	}
	if a.Scale(2) != (Demand{2, 4, 6, 8}) {
		t.Fatalf("Scale = %+v", a.Scale(2))
	}
	if a.Max(b) != (Demand{10, 2, 30, 4}) {
		t.Fatalf("Max = %+v", a.Max(b))
	}
	if !(Demand{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestDemandForEntitiesFullServer(t *testing.T) {
	g := NewGame("rs", GenreMMORPG)
	d := g.DemandForEntities(FullServerClients)
	for name, v := range map[string]float64{
		"cpu": d.CPU, "mem": d.Memory, "in": d.ExtNetIn, "out": d.ExtNetOut,
	} {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("full-server %s demand = %v, want 1", name, v)
		}
	}
	if !g.DemandForEntities(0).IsZero() {
		t.Error("zero entities should have zero demand")
	}
}

func TestNetworkScalesLinearlyRegardlessOfModel(t *testing.T) {
	// Network demand tracks client count, not simulation complexity.
	for _, genre := range []Genre{GenrePuzzle, GenreFPS} {
		g := NewGame("x", genre)
		d := g.DemandForEntities(FullServerClients / 2)
		if math.Abs(d.ExtNetOut-0.5) > 1e-9 {
			t.Errorf("%v: half-load ExtNetOut = %v, want 0.5", genre, d.ExtNetOut)
		}
	}
}

func TestHotSpotCostsMoreThanSpreadLoad(t *testing.T) {
	// The same population concentrated in one zone must cost more CPU
	// than spread across zones, for every super-linear model.
	for _, m := range AllUpdateModels[1:] {
		g := &Game{Name: "hs", Update: m, Profile: DefaultProfile}
		hot := g.DemandForZones([]float64{2000, 0, 0, 0})
		spread := g.DemandForZones([]float64{500, 500, 500, 500})
		if hot.CPU <= spread.CPU {
			t.Errorf("%v: hot-spot CPU %v should exceed spread CPU %v", m, hot.CPU, spread.CPU)
		}
		// Network is population-driven, so it must match.
		if math.Abs(hot.ExtNetOut-spread.ExtNetOut) > 1e-9 {
			t.Errorf("%v: network demand should not depend on spread", m)
		}
	}
}

func TestLinearModelIndifferentToSpread(t *testing.T) {
	g := &Game{Name: "lin", Update: UpdateLinear, Profile: DefaultProfile}
	hot := g.DemandForZones([]float64{2000})
	spread := g.DemandForZones([]float64{1000, 1000})
	if math.Abs(hot.CPU-spread.CPU) > 1e-9 {
		t.Errorf("O(n) should be spread-invariant: %v vs %v", hot.CPU, spread.CPU)
	}
}

func TestDemandForZonesAdditive(t *testing.T) {
	g := NewGame("add", GenreMMORPG)
	zones := []float64{100, 900, 1500}
	var want Demand
	for _, n := range zones {
		want = want.Add(g.DemandForEntities(n))
	}
	got := g.DemandForZones(zones)
	if math.Abs(got.CPU-want.CPU) > 1e-12 {
		t.Fatalf("DemandForZones = %+v, want %+v", got, want)
	}
}

func TestDemandNonNegativeProperty(t *testing.T) {
	g := NewGame("prop", GenreRTS)
	err := quick.Check(func(ns []float64) bool {
		zones := make([]float64, 0, len(ns))
		for _, n := range ns {
			if math.IsNaN(n) || math.IsInf(n, 0) {
				continue
			}
			zones = append(zones, math.Mod(n, 1e5))
		}
		d := g.DemandForZones(zones)
		return d.CPU >= 0 && d.Memory >= 0 && d.ExtNetIn >= 0 && d.ExtNetOut >= 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestApplyGenreLatency(t *testing.T) {
	fps := NewGame("fps", GenreFPS).ApplyGenreLatency()
	puzzle := NewGame("puzzle", GenrePuzzle).ApplyGenreLatency()
	if math.IsInf(fps.LatencyKm, 1) {
		t.Fatal("FPS latency bound should be finite")
	}
	if fps.LatencyKm >= puzzle.LatencyKm {
		t.Fatalf("FPS bound %v should be tighter than puzzle's %v", fps.LatencyKm, puzzle.LatencyKm)
	}
	// The chain returns the same game.
	g := NewGame("x", GenreRTS)
	if g.ApplyGenreLatency() != g {
		t.Fatal("ApplyGenreLatency should return the receiver")
	}
}
