// Package operator implements the game operator's online provisioning
// loop as a reusable component — the middleware role the paper's
// edutain@grid project occupies between the game and the data centers.
// Every tick the operator ingests the monitored per-zone load,
// forecasts the next interval with its per-zone predictors, converts
// the forecast into a resource demand through the game's update model,
// and leases any shortfall from the ecosystem. The trace-driven
// batch simulator in internal/core implements the same cycle for whole
// experiment runs; this package is its online, incremental sibling for
// live deployments (see examples/live).
package operator

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/ecosystem"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/obs"
	"mmogdc/internal/predict"
)

// Context-abort sentinels for ObserveCtx. Both wrap the context's own
// error, so errors.Is(err, context.DeadlineExceeded) still matches.
var (
	// ErrObserveAborted means the context expired before the snapshot
	// was ingested: no operator state changed, and the caller may
	// safely re-submit the same snapshot.
	ErrObserveAborted = errors.New("observe aborted before ingestion")
	// ErrAcquireAborted means the snapshot WAS ingested and scored
	// (the tick counter advanced and the predictors saw the sample)
	// but the context expired before the lease acquisition, which was
	// skipped. The snapshot must not be re-submitted; the next tick's
	// acquisition covers the standing shortfall.
	ErrAcquireAborted = errors.New("lease acquisition aborted")
)

// Backoff policy after injected grant rejections, mirroring
// internal/core: 1, 2, 4, then 8 ticks between attempts.
const (
	maxRetryExp     = 4
	maxBackoffTicks = 8
)

// Config assembles an operator.
type Config struct {
	// Game fixes the update model, resource profile, and latency
	// tolerance.
	Game *mmog.Game
	// Origin is where the game's players are (for latency matching).
	Origin geo.Point
	// Predictor builds one predictor per monitored zone.
	Predictor predict.Factory
	// Matcher is the data-center ecosystem to lease from.
	Matcher *ecosystem.Matcher
	// SafetyMargin inflates forecasts before requesting (0 = exact).
	SafetyMargin float64
	// FailoverCooldownTicks rate-limits failover re-acquisitions (storm
	// control): after a failover, further failovers landing within the
	// cooldown are parked and retried after a short deterministic jitter
	// instead of stampeding the surviving centers alongside every other
	// operator hit by the same correlated outage. 0 disables the limit.
	FailoverCooldownTicks int
	// Tick is the monitoring interval; defaults to two minutes.
	Tick time.Duration
	// Obs, when non-nil, streams the operator's telemetry (Observe
	// timing, provisioning counters, flight-recorder events) into the
	// given observability bundle. Write-only: enabling it changes no
	// operator behavior or metric.
	Obs *obs.Obs
}

// Operator runs the predict→demand→lease cycle for one game.
type Operator struct {
	cfg    Config
	zones  *predict.ZoneSet
	leases []*datacenter.Lease
	ticks  int
	// running totals for Metrics.
	shortfallSum float64
	overSum      float64
	overTicks    int
	events       int
	lastForecast []float64
	// lastLoads carries the last monitoring sample that arrived per
	// zone; NaN samples are carried forward (LOCF) so a monitoring
	// dropout never poisons the predictors.
	lastLoads []float64
	cleanBuf  []float64
	// graceful-degradation accounting.
	droppedSamples int
	failovers      int
	rejections     int
	partialGrants  int
	retries        int
	// bounded backoff after injected rejections.
	consecRejects int
	retryAtTick   int
	// failover storm control: centers whose loss was parked by the
	// cooldown, the tick the parked failover retries, and the first
	// tick a new failover is admitted again.
	pendingLost       []string
	failoverAtTick    int
	nextFailoverOK    int
	failoversDeferred int
	// last tick's acquisition activity, for callers (the daemon's
	// circuit breaker) that attribute grant health to centers.
	// lastGranted is reused scratch; lastRejected aliases the matcher's
	// per-call scratch. Both are valid only until the next Observe.
	lastGranted  []string
	lastRejected []string
	// lastDecision is this tick's provenance record when the matcher
	// carries a decision log (nil otherwise, and on ticks that
	// attempted no acquisition). Aliases the log's ring storage.
	lastDecision *ecosystem.Decision
	// oo streams telemetry when Config.Obs is set (nil otherwise; all
	// its methods no-op on nil).
	oo *opObs
}

// New validates the configuration and returns an operator.
func New(cfg Config) (*Operator, error) {
	if cfg.Game == nil {
		return nil, fmt.Errorf("operator: game required")
	}
	if cfg.Predictor == nil {
		return nil, fmt.Errorf("operator: predictor required")
	}
	if cfg.Matcher == nil {
		return nil, fmt.Errorf("operator: matcher required")
	}
	if cfg.Tick == 0 {
		cfg.Tick = 2 * time.Minute
	}
	return &Operator{cfg: cfg, oo: newOpObs(cfg.Obs, cfg.Game.Name)}, nil
}

// Metrics summarizes the operator's run so far.
type Metrics struct {
	// Ticks is the number of Observe calls handled.
	Ticks int
	// AvgOverPct is the mean CPU over-allocation beyond the load.
	AvgOverPct float64
	// AvgShortfall is the mean unserved CPU demand in units.
	AvgShortfall float64
	// Events counts ticks whose shortfall exceeded 1% of the
	// session's machines.
	Events int
	// DroppedSamples counts monitoring samples (NaN/invalid) carried
	// forward instead of observed.
	DroppedSamples int
	// Failovers counts ticks that re-acquired capacity lost to a
	// failed or degraded center, excluding that center from the retry.
	Failovers int
	// Rejections and PartialGrants count injected grant faults
	// encountered; Retries the backed-off re-attempts they caused.
	Rejections    int
	PartialGrants int
	Retries       int
	// FailoversDeferred counts failovers the cooldown parked for a
	// later, jittered tick instead of serving immediately.
	FailoversDeferred int
}

// Observe ingests one monitoring snapshot (per-zone loads at time
// now), scores the allocation that was in force against it, and leases
// toward the next interval's forecast. The zone count is fixed by the
// first call.
//
// Observe degrades gracefully under faults: NaN samples (monitoring
// dropouts) are replaced by each zone's last observation so the
// predictors keep a coherent history; leases that vanish before their
// expiry (their center failed) trigger a same-tick failover that
// excludes the failed centers from the re-acquisition; and injected
// grant rejections back off boundedly (1, 2, 4, then 8 ticks) instead
// of hammering the ecosystem every tick.
func (o *Operator) Observe(now time.Time, zoneLoads []float64) error {
	return o.ObserveCtx(context.Background(), now, zoneLoads)
}

// ObserveCtx is Observe with a deadline: the context is checked at the
// two points where aborting leaves the operator coherent — before any
// state is touched (ErrObserveAborted: the snapshot was not consumed)
// and between the forecast and the lease acquisition
// (ErrAcquireAborted: the snapshot was consumed, the acquisition is
// deferred to the next tick). The stages themselves are not
// interruptible; the granularity is one stage, which bounds one call
// at roughly the cost of a predict pass plus a matcher walk.
func (o *Operator) ObserveCtx(ctx context.Context, now time.Time, zoneLoads []float64) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("operator: %w: %w", ErrObserveAborted, err)
	}
	if o.zones != nil && len(zoneLoads) != o.zones.Len() {
		// Reject before touching any state: a malformed snapshot must
		// not advance the tick counter, expire leases, or skew metrics.
		return fmt.Errorf("operator: observed %d zones, want %d", len(zoneLoads), o.zones.Len())
	}
	if o.zones == nil {
		if len(zoneLoads) == 0 {
			return fmt.Errorf("operator: first snapshot has no zones")
		}
		o.zones = predict.NewZoneSet(o.cfg.Predictor, len(zoneLoads))
		o.lastLoads = make([]float64, len(zoneLoads))
		o.cleanBuf = make([]float64, len(zoneLoads))
	}
	// This tick starts with no acquisition activity; the early returns
	// below (satisfied demand, parked failover, backoff) leave it empty.
	o.lastGranted = o.lastGranted[:0]
	o.lastRejected = nil
	o.lastDecision = nil

	start := o.oo.now()
	// When the daemon traced the originating request it stamps the
	// context with its observe span; this cycle's span (and through it
	// every acquire/event span) then hangs off that request.
	o.oo.beginObserve(start, o.ticks, obs.SpanFromContext(ctx))
	defer o.oo.observed(start)
	o.cfg.Matcher.Expire(now)

	// Carry the last observation forward across monitoring dropouts.
	clean := o.cleanBuf[:0]
	for i, v := range zoneLoads {
		if math.IsNaN(v) {
			o.droppedSamples++
			o.oo.droppedSample(o.ticks, i)
			v = o.lastLoads[i]
		} else {
			o.lastLoads[i] = v
		}
		clean = append(clean, v)
	}

	// Score the standing allocation against the actual load, noting
	// leases that died early — their centers failed under us.
	have, lost := o.activeCPU(now)
	demand := o.demandFor(clean)
	load := demand[datacenter.CPU]
	if load > 0 {
		o.overSum += (have/load - 1) * 100
		o.overTicks++
	}
	if short := load - have; short > 0 {
		o.shortfallSum += short
		machines := have
		if machines < 1 {
			machines = 1
		}
		if u := short / machines * 100; u > 1 {
			o.events++
			o.oo.disruptiveTick(o.ticks, -u)
		}
	}
	o.ticks++
	o.oo.tick(have, load)

	// Forecast the next interval and lease the gap.
	if err := o.zones.Observe(clean); err != nil {
		return err
	}
	o.lastForecast = o.zones.PredictEachInto(o.lastForecast)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("operator: %w: %w", ErrAcquireAborted, err)
	}
	want := o.demandFor(o.lastForecast)
	want = want.Scale(1 + o.cfg.SafetyMargin)
	need := want.Sub(o.allocAt(now.Add(o.cfg.Tick))).ClampNonNegative()
	// A parked failover coming due folds into this tick's exclusions;
	// until then acquisition is held entirely — re-leasing the gap
	// immediately would defeat the cooldown the deferral bought.
	if len(o.pendingLost) > 0 {
		if o.ticks < o.failoverAtTick {
			return nil
		}
		for _, name := range o.pendingLost {
			if !containsCenter(lost, name) {
				lost = append(lost, name)
			}
		}
		o.pendingLost = o.pendingLost[:0]
	}
	if need.IsZero() {
		o.consecRejects = 0
		return nil
	}
	// Backed off after rejections — but a failover overrides the wait:
	// capacity just vanished and waiting would compound the outage.
	if len(lost) == 0 && o.ticks < o.retryAtTick {
		return nil
	}
	// Storm control: a failover inside the cooldown window is parked
	// and retried after a deterministic jitter.
	if len(lost) > 0 && o.cfg.FailoverCooldownTicks > 0 && o.ticks < o.nextFailoverOK {
		for _, name := range lost {
			if !containsCenter(o.pendingLost, name) {
				o.pendingLost = append(o.pendingLost, name)
			}
		}
		o.failoverAtTick = o.ticks + 1 + deferJitter(o.cfg.Game.Name, o.ticks)
		o.failoversDeferred++
		o.oo.failoverDeferred(o.ticks, o.cfg.Game.Name, o.failoverAtTick)
		return nil
	}
	if o.consecRejects > 0 {
		o.retries++
		o.oo.retried(o.ticks, o.cfg.Game.Name)
	}
	acq := o.oo.beginAcquire(o.ticks)
	leases, unmet, out := o.cfg.Matcher.AllocateDetailed(ecosystem.Request{
		Tag:           o.cfg.Game.Name,
		Origin:        o.cfg.Origin,
		MaxDistanceKm: o.cfg.Game.LatencyKm,
		Demand:        need,
		Exclude:       lost,
	}, now)
	acq.SetValue(float64(len(leases)))
	acq.End()
	if out.Decision != nil {
		out.Decision.Tick = o.ticks
		o.lastDecision = out.Decision
	}
	o.leases = append(o.leases, leases...)
	for _, l := range leases {
		o.lastGranted = append(o.lastGranted, l.Center.Name)
	}
	o.lastRejected = out.RejectedBy
	o.rejections += out.Rejections
	o.partialGrants += out.PartialGrants
	o.oo.acquired(o.ticks, o.cfg.Game.Name, leases, out, lost)
	if len(lost) > 0 {
		o.failovers++
		if o.cfg.FailoverCooldownTicks > 0 {
			o.nextFailoverOK = o.ticks + o.cfg.FailoverCooldownTicks
		}
	}
	if out.Rejections > 0 && !unmet.IsZero() {
		if o.consecRejects < maxRetryExp {
			o.consecRejects++
		}
		backoff := 1 << (o.consecRejects - 1)
		if backoff > maxBackoffTicks {
			backoff = maxBackoffTicks
		}
		o.retryAtTick = o.ticks + backoff
	} else {
		o.consecRejects = 0
	}
	return nil
}

// Forecast returns the latest per-zone forecast (nil before the first
// Observe). The returned slice is reused by the next Observe; callers
// that retain it across ticks must copy.
func (o *Operator) Forecast() []float64 { return o.lastForecast }

// GrantActivity reports the most recent Observe's acquisition by
// center: the centers that granted a lease and the centers whose
// grants the fault injector rejected. Both are empty on ticks that
// attempted no acquisition. The slices are scratch reused by the next
// Observe — callers that retain them must copy.
func (o *Operator) GrantActivity() (granted, rejected []string) {
	return o.lastGranted, o.lastRejected
}

// LastDecision returns the most recent Observe's provenance record,
// or nil when the matcher has no decision log or the tick attempted
// no acquisition. The record aliases the decision log's ring storage;
// callers that retain it must deep-copy before the ring wraps.
func (o *Operator) LastDecision() *ecosystem.Decision { return o.lastDecision }

// Metrics returns the running summary.
func (o *Operator) Metrics() Metrics {
	m := Metrics{
		Ticks: o.ticks, Events: o.events,
		DroppedSamples:    o.droppedSamples,
		Failovers:         o.failovers,
		Rejections:        o.rejections,
		PartialGrants:     o.partialGrants,
		Retries:           o.retries,
		FailoversDeferred: o.failoversDeferred,
	}
	if o.overTicks > 0 {
		m.AvgOverPct = o.overSum / float64(o.overTicks)
	}
	if o.ticks > 0 {
		m.AvgShortfall = o.shortfallSum / float64(o.ticks)
	}
	return m
}

// containsCenter reports whether name is in the (tiny) list.
func containsCenter(list []string, name string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

// deferJitter spreads deferred failovers over 0–3 extra ticks with a
// stateless SplitMix64-style hash of (game, tick): deterministic for
// replay and checkpoint equivalence, yet desynchronized across the
// operators a correlated outage hits at once.
func deferJitter(game string, tick int) int {
	h := uint64(1469598103934665603)
	for i := 0; i < len(game); i++ {
		h = (h ^ uint64(game[i])) * 1099511628211
	}
	h ^= uint64(tick) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return int(h & 3)
}

// demandFor converts per-zone loads into the total resource demand.
func (o *Operator) demandFor(zoneLoads []float64) datacenter.Vector {
	d := o.cfg.Game.DemandForZones(zoneLoads)
	var v datacenter.Vector
	v[datacenter.CPU] = d.CPU
	v[datacenter.Memory] = d.Memory
	v[datacenter.ExtNetIn] = d.ExtNetIn
	v[datacenter.ExtNetOut] = d.ExtNetOut
	return v
}

// activeCPU sums the live leases' CPU at now, pruning dead ones. A
// lease that is gone before its expiry was released by a center
// failure; the second return lists those centers (each once) so the
// re-acquisition can route around them.
func (o *Operator) activeCPU(now time.Time) (float64, []string) {
	var sum float64
	var lost []string
	live := o.leases[:0]
	for _, l := range o.leases {
		if l.Active(now) {
			sum += l.Alloc[datacenter.CPU]
			live = append(live, l)
			continue
		}
		if now.Before(l.Expires) && !now.Before(l.Start) && l.Center != nil {
			name := l.Center.Name
			seen := false
			for _, n := range lost {
				if n == name {
					seen = true
					break
				}
			}
			if !seen {
				lost = append(lost, name)
			}
		}
	}
	o.leases = live
	return sum, lost
}

// ZoneCount returns the number of monitored zones (fixed by the first
// Observe or a restored checkpoint; 0 before either).
func (o *Operator) ZoneCount() int {
	if o.zones == nil {
		return 0
	}
	return o.zones.Len()
}

// LeaseView describes one live lease for ops surfaces (the daemon's
// GET /v1/leases). It carries values, not pointers, so callers can
// serialize it without touching the operator again.
type LeaseView struct {
	Center  string    `json:"center"`
	CPU     float64   `json:"cpu_units"`
	Start   time.Time `json:"start"`
	Expires time.Time `json:"expires"`
}

// LeaseViews snapshots the leases active at now, sorted in acquisition
// order. The returned slice is freshly allocated.
func (o *Operator) LeaseViews(now time.Time) []LeaseView {
	var out []LeaseView
	for _, l := range o.leases {
		if l.Active(now) && l.Center != nil {
			out = append(out, LeaseView{
				Center:  l.Center.Name,
				CPU:     l.Alloc[datacenter.CPU],
				Start:   l.Start,
				Expires: l.Expires,
			})
		}
	}
	return out
}

// allocAt sums leases still active at t, without pruning (the renewal
// check of the acquire phase).
func (o *Operator) allocAt(t time.Time) datacenter.Vector {
	var sum datacenter.Vector
	for _, l := range o.leases {
		if l.Active(t) {
			sum = sum.Add(l.Alloc)
		}
	}
	return sum
}
