// Package obs is the repository's stdlib-only observability layer: a
// metrics registry (atomic counters, gauges, fixed-bucket histograms,
// with labeled series and Prometheus text exposition), a bounded
// flight recorder of structured provisioning events, an injectable
// monotonic clock for deterministic micro-timing, and an opt-in HTTP
// server exposing /metrics, /debug/pprof, and /debug/vars.
//
// The layer is strictly write-only with respect to the simulation: the
// engines publish into it but never read back, so a run with obs
// enabled is bit-identical to one without (internal/core regression-
// tests this). Every instrument is nil-safe — methods on a nil
// *Counter, *Gauge, *Histogram, or *Recorder are allocation-free
// no-ops — so instrumented hot paths cost nothing when observability
// is disabled.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key/value dimension of a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families keyed by name. All methods are safe
// for concurrent use, and all methods on a nil *Registry return nil
// instruments (whose operations are no-ops), so a disabled
// observability layer needs no call-site guards.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	buckets    []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
}

// series is one labeled instance of a family.
type series struct {
	labels    []Label // sorted by key
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// family returns (creating if needed) the named family, enforcing that
// a name is never reused with a different kind.
func (r *Registry) family(name, help string, kind metricKind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " registered as " + f.kind.String() + ", requested as " + kind.String())
	}
	return f
}

// canonical sorts a copy of the labels by key and builds the series
// lookup key.
func canonical(labels []Label) ([]Label, string) {
	if len(labels) == 0 {
		return nil, ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := ""
	for _, l := range ls {
		key += l.Key + "\x00" + l.Value + "\x00"
	}
	return ls, key
}

// get returns (creating if needed) the series for the given labels.
func (f *family) get(labels []Label) *series {
	ls, key := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labels: ls}
		switch f.kind {
		case counterKind:
			s.counter = &Counter{}
		case gaugeKind:
			s.gauge = &Gauge{}
		case histogramKind:
			s.histogram = newHistogram(f.buckets)
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the monotonically increasing counter series for
// name+labels, registering it on first use. Repeated calls with the
// same name and labels return the same instance; a nil registry
// returns nil (a no-op counter).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, counterKind, nil).get(labels).counter
}

// Gauge returns the gauge series for name+labels (see Counter).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, gaugeKind, nil).get(labels).gauge
}

// Histogram returns the histogram series for name+labels (see
// Counter). The bucket layout is fixed by the first registration of
// the family; buckets must be sorted strictly ascending and finite
// (an implicit +Inf bucket is always appended).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(name, help, histogramKind, checkBuckets(buckets)).get(labels).histogram
}

// SeriesCount returns the number of registered series across all
// families (0 for a nil registry).
func (r *Registry) SeriesCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, f := range r.families {
		f.mu.Lock()
		n += len(f.series)
		f.mu.Unlock()
	}
	return n
}

// Counter is a monotonically increasing integer counter. All methods
// are safe on a nil receiver (no-ops) and for concurrent use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d; non-positive deltas are ignored (counters only go up).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.n.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a float64 value that can go up and down. All methods are
// safe on a nil receiver (no-ops) and for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative at
// exposition, per-bucket internally) and tracks their sum. All methods
// are safe on a nil receiver (no-ops) and for concurrent use.
type Histogram struct {
	bounds  []float64      // finite upper bounds, ascending
	counts  []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	sumBits atomic.Uint64
	n       atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// checkBuckets validates and copies a bucket layout, dropping a
// trailing +Inf (it is implicit).
func checkBuckets(buckets []float64) []float64 {
	if n := len(buckets); n > 0 && math.IsInf(buckets[n-1], 1) {
		buckets = buckets[:n-1]
	}
	out := append([]float64(nil), buckets...)
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bucket bounds must be finite")
		}
		if i > 0 && out[i-1] >= b {
			panic("obs: histogram buckets must be sorted strictly ascending")
		}
	}
	return out
}

// Observe records one observation. Buckets are le-inclusive
// (Prometheus semantics); NaN lands in the +Inf bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v is the owning bucket; NaN compares false
	// everywhere, overflowing into +Inf like Prometheus does.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the Prometheus base
// unit for time histograms).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// CountAtOrBelow returns the cumulative count of observations that
// landed in buckets whose upper bound is <= bound — the histogram's
// best answer to "how many observations met this latency objective".
// The objective is effectively rounded down to the nearest bucket
// boundary; SLO burn-rate rules over latency histograms read this.
func (h *Histogram) CountAtOrBelow(bound float64) int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i, b := range h.bounds {
		if b > bound {
			return n
		}
		n += h.counts[i].Load()
	}
	return n
}

// snapshotCounts returns per-bucket (non-cumulative) counts, the +Inf
// bucket last.
func (h *Histogram) snapshotCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// TimeBuckets spans 1µs to 10s in a 1–2.5–5 progression: wide enough
// for a whole simulation tick, fine enough for a single prediction.
var TimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets builds n buckets starting at start, each factor times the
// previous — the usual exponential latency/size layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}
