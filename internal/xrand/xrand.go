// Package xrand provides small, fast, deterministic pseudo-random
// number generators for the simulation packages.
//
// Every stochastic component in this repository takes an explicit
// *xrand.Rand so that experiments are exactly reproducible from a
// seed, independent of package initialization order or the global
// math/rand state. The generator is a PCG-XSH-RR variant seeded
// through SplitMix64, which gives good statistical quality at a few
// nanoseconds per draw and supports cheap splitting into independent
// streams (one per server group, per entity, per zone, ...).
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator.
// The zero value is not valid; use New or Split.
type Rand struct {
	state uint64
	inc   uint64
	// spare Gaussian value from the Box-Muller transform.
	gauss    float64
	hasGauss bool
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, never as the main stream.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators created
// with the same seed produce identical streams.
func New(seed uint64) *Rand {
	s := seed
	r := &Rand{}
	r.state = splitmix64(&s)
	r.inc = splitmix64(&s) | 1 // stream selector must be odd
	r.Uint64()                 // warm up
	return r
}

// Split returns a new generator whose stream is statistically
// independent of r's but fully determined by r's current state and
// the supplied label. Splitting does not advance r, so call sites can
// derive per-object generators without perturbing the parent stream.
func (r *Rand) Split(label uint64) *Rand {
	s := r.state ^ (label * 0xd1342543de82ef95)
	c := &Rand{}
	c.state = splitmix64(&s)
	c.inc = splitmix64(&s) | 1
	c.Uint64()
	return c
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	// Two PCG-XSH-RR 32-bit outputs glued together.
	return uint64(r.uint32())<<32 | uint64(r.uint32())
}

func (r *Rand) uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation (32-bit variant
	// is enough for the simulation's ranges).
	bound := uint32(n)
	threshold := -bound % bound
	for {
		v := r.uint32()
		if v >= threshold {
			return int((uint64(v) * uint64(bound)) >> 32)
		}
	}
}

// Int63n returns a uniform value in [0, n) for large n.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	max := uint64(math.MaxUint64 - math.MaxUint64%uint64(n))
	for {
		v := r.Uint64()
		if v < max {
			return int64(v % uint64(n))
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Norm returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exp returns an exponential variate with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return mean * r.ExpFloat64()
}

// Pareto returns a Pareto(scale, shape) variate. Heavy-tailed sizes
// (e.g. game packet payloads) use this.
func (r *Rand) Pareto(scale, shape float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return scale / math.Pow(u, 1/shape)
		}
	}
}

// LogNormal returns exp(Norm(mu, sigma)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedChoice returns an index in [0, len(weights)) chosen with
// probability proportional to weights[i]. Negative weights are treated
// as zero. It panics when the weights sum to zero or the slice is empty.
func (r *Rand) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("xrand: WeightedChoice with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("xrand: WeightedChoice with zero total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
