package checkpoint

import (
	"errors"
	"math"
	"os"
	"testing"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	e := NewEnc()
	e.U64(0xdeadbeefcafef00d)
	e.Int(-42)
	e.F64(math.Pi)
	e.F64(math.NaN())
	e.F64(math.Copysign(0, -1))
	e.Bool(true)
	e.Bool(false)
	e.Str("zone/EU-west")
	e.Bytes([]byte{1, 2, 3})
	e.Bytes(nil)
	e.F64s([]float64{1.5, -2.25, math.Inf(1)})
	e.F64s(nil)
	e.Ints([]int{7, -9})
	now := time.Date(2008, 3, 1, 12, 30, 0, 123456789, time.UTC)
	e.Time(now)

	d := NewDec(e.Data())
	if got := d.U64(); got != 0xdeadbeefcafef00d {
		t.Fatalf("U64 = %x", got)
	}
	if got := d.Int(); got != -42 {
		t.Fatalf("Int = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsNaN(got) {
		t.Fatalf("NaN did not round-trip: %v", got)
	}
	if got := d.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("-0 did not round-trip bit-exactly: %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip")
	}
	if got := d.Str(); got != "zone/EU-west" {
		t.Fatalf("Str = %q", got)
	}
	if got := d.Bytes(); len(got) != 3 || got[0] != 1 {
		t.Fatalf("Bytes = %v", got)
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Fatalf("nil Bytes = %v", got)
	}
	fs := d.F64s()
	if len(fs) != 3 || fs[1] != -2.25 || !math.IsInf(fs[2], 1) {
		t.Fatalf("F64s = %v", fs)
	}
	if got := d.F64s(); got != nil {
		t.Fatalf("empty F64s = %v", got)
	}
	is := d.Ints()
	if len(is) != 2 || is[1] != -9 {
		t.Fatalf("Ints = %v", is)
	}
	if got := d.Time(); !got.Equal(now) {
		t.Fatalf("Time = %v, want %v", got, now)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDecUnderrunIsSticky(t *testing.T) {
	d := NewDec([]byte{1, 2, 3})
	d.U64()
	if d.Err() == nil {
		t.Fatal("underrun not detected")
	}
	// Poisoned decoder keeps returning zero values, never panics.
	if d.Int() != 0 || d.F64() != 0 || d.Str() != "" || d.Bool() {
		t.Fatal("poisoned decoder returned non-zero values")
	}
	if d.Close() == nil {
		t.Fatal("Close swallowed the error")
	}
}

func TestDecHostileLengths(t *testing.T) {
	// A corrupted length prefix must not drive a giant allocation.
	e := NewEnc()
	e.U64(math.MaxUint64 / 2)
	for _, read := range []func(d *Dec){
		func(d *Dec) { d.Str() },
		func(d *Dec) { d.Bytes() },
		func(d *Dec) { d.F64s() },
		func(d *Dec) { d.Ints() },
	} {
		d := NewDec(e.Data())
		read(d)
		if d.Err() == nil {
			t.Fatal("hostile length accepted")
		}
	}
}

func TestDecCloseRejectsTrailingBytes(t *testing.T) {
	e := NewEnc()
	e.Int(1)
	e.Int(2)
	d := NewDec(e.Data())
	d.Int()
	if err := d.Close(); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestSealOpenDetectsDamage(t *testing.T) {
	payload := []byte("the operator's precious state")
	blob := Seal(payload)
	got, err := Open(blob)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("clean blob rejected: %v", err)
	}

	// Truncation at every boundary.
	for _, n := range []int{0, 4, len(magic), headerLen - 1, len(blob) - 1} {
		if _, err := Open(blob[:n]); err == nil {
			t.Fatalf("truncated blob (%d bytes) accepted", n)
		}
	}
	// Trailing garbage.
	if _, err := Open(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("padded blob accepted")
	}
	// A bit flip anywhere in the payload breaks the checksum.
	for _, i := range []int{headerLen, headerLen + 7, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x10
		if _, err := Open(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d not detected: %v", i, err)
		}
	}
	// Wrong magic.
	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := Open(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatal("wrong magic accepted")
	}
	// Future version: distinct, loud error.
	bad = append([]byte(nil), blob...)
	bad[8] = 99
	if _, err := Open(bad); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("version mismatch error = %v", err)
	}
}

func TestManagerSaveLatestRoundTrip(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: %v", err)
	}
	if err := m.Save(10, []byte("ten")); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(20, []byte("twenty")); err != nil {
		t.Fatal(err)
	}
	s, err := m.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tick != 20 || string(s.Payload) != "twenty" || len(s.Corrupt) != 0 {
		t.Fatalf("latest = %+v", s)
	}
}

func TestManagerPrunesOldSnapshots(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, tick := range []int{10, 20, 30, 40} {
		if err := m.Save(tick, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	ticks, err := m.Ticks()
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 2 || ticks[0] != 30 || ticks[1] != 40 {
		t.Fatalf("after pruning ticks = %v", ticks)
	}
}

func TestManagerFallsBackPastCorruptSnapshot(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(10, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(20, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the newest snapshot.
	path := m.Path(20)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := m.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tick != 10 || string(s.Payload) != "good" {
		t.Fatalf("fallback snapshot = %+v", s)
	}
	if len(s.Corrupt) != 1 {
		t.Fatalf("corrupt files = %v", s.Corrupt)
	}

	// Truncate the older one too: now nothing is usable, and that must
	// be a hard error, not a silent fresh start.
	if err := os.Truncate(m.Path(10), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Latest(); err == nil || errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt store: %v", err)
	}
}
