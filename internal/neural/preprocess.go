package neural

import (
	"fmt"
	"math"
)

// Preprocessor transforms a raw input window before it reaches the
// network. The paper attaches "several signal preprocessors based on
// polynomial functions which have the purpose of removing the
// unwanted noise from the processed signal".
type Preprocessor interface {
	// Process returns the de-noised window; the result has the same
	// length as the input. Implementations must not retain the input.
	Process(window []float64) []float64
	// ProcessInto writes the de-noised window into dst, which must have
	// the same length as window and must not alias it. It computes the
	// same values as Process without allocating; implementations may
	// reuse internal scratch across calls, so a Preprocessor used via
	// ProcessInto is not safe for concurrent use.
	ProcessInto(dst, window []float64)
}

// Identity passes the window through unchanged.
type Identity struct{}

// Process implements Preprocessor.
func (Identity) Process(window []float64) []float64 {
	return append([]float64(nil), window...)
}

// ProcessInto implements Preprocessor.
func (Identity) ProcessInto(dst, window []float64) {
	copy(dst, window)
}

// PolySmoother least-squares-fits a polynomial of the configured
// degree to the window and returns the fitted values — a zero-delay
// smoothing filter (Savitzky–Golay style, full-window variant). The
// fit is recomputed per call; ProcessInto keeps that recomputation
// allocation-free by reusing the solver scratch, which is what keeps
// the neural predictor the slowest-but-still-microsecond method in
// Fig. 6 without making it the allocation hot spot of the tick loop.
type PolySmoother struct {
	// Degree of the fitted polynomial; 2 works well for the 6-sample
	// windows the paper uses.
	Degree int

	scratch polyScratch
}

// Process implements Preprocessor. It is usable on a value receiver
// (no scratch is retained) and always returns fresh slices.
func (p PolySmoother) Process(window []float64) []float64 {
	n := len(window)
	deg := p.Degree
	if deg < 0 {
		deg = 0
	}
	if deg >= n {
		// Not enough points to constrain the fit; pass through.
		return append([]float64(nil), window...)
	}
	coef := polyfit(window, deg)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = polyval(coef, float64(i))
	}
	return out
}

// ProcessInto implements Preprocessor. It computes bit-identical
// values to Process into dst, reusing the receiver's scratch, so it
// allocates only on the first call (or when the window geometry
// grows).
func (p *PolySmoother) ProcessInto(dst, window []float64) {
	n := len(window)
	deg := p.Degree
	if deg < 0 {
		deg = 0
	}
	if deg >= n {
		copy(dst, window)
		return
	}
	coef := p.scratch.fit(window, deg)
	for i := 0; i < n; i++ {
		dst[i] = polyval(coef, float64(i))
	}
}

// polyScratch holds the reusable temporaries of the normal-equation
// solve: the power sums, the elimination matrix (row headers over one
// flat cell buffer, so pivoting swaps headers without moving data),
// and the coefficient vector that fit returns (valid until the next
// fit call).
type polyScratch struct {
	s, tv, coef []float64
	rows        [][]float64
	cells       []float64
}

func (ps *polyScratch) ensure(k int) {
	if cap(ps.coef) >= k {
		return
	}
	ps.s = make([]float64, 2*k-1)
	ps.tv = make([]float64, k)
	ps.coef = make([]float64, k)
	ps.rows = make([][]float64, k)
	ps.cells = make([]float64, k*(k+1))
}

// fit solves the degree-d least-squares fit of y[i] ~ poly(i) by the
// normal equations with Gaussian elimination, in the exact operation
// order of the original allocating implementation (the neural goldens
// depend on the bits). Windows are tiny (6–12 samples, degree <= 3),
// so the cubic cost is irrelevant.
func (ps *polyScratch) fit(y []float64, degree int) []float64 {
	n := len(y)
	k := degree + 1
	ps.ensure(k)
	// Precompute power sums S_m = sum(i^m) and T_m = sum(i^m * y_i).
	s := ps.s[:2*k-1]
	tv := ps.tv[:k]
	for m := range s {
		s[m] = 0
	}
	for m := range tv {
		tv[m] = 0
	}
	for i := 0; i < n; i++ {
		x := float64(i)
		pw := 1.0
		for m := 0; m < 2*k-1; m++ {
			s[m] += pw
			if m < k {
				tv[m] += pw * y[i]
			}
			pw *= x
		}
	}
	// Build the normal-equation matrix A[r][c] = S_{r+c}. Row headers
	// are re-pointed at their canonical cell windows every call because
	// pivoting below permutes them.
	a := ps.rows[:k]
	for r := 0; r < k; r++ {
		a[r] = ps.cells[r*(k+1) : (r+1)*(k+1) : (r+1)*(k+1)]
		for c := 0; c < k; c++ {
			a[r][c] = s[r+c]
		}
		a[r][k] = tv[r]
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if a[col][col] == 0 {
			continue // singular; coefficient stays zero
		}
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= k; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	coef := ps.coef[:k]
	for r := k - 1; r >= 0; r-- {
		if a[r][r] == 0 {
			coef[r] = 0
			continue
		}
		sum := a[r][k]
		for c := r + 1; c < k; c++ {
			sum -= a[r][c] * coef[c]
		}
		coef[r] = sum / a[r][r]
	}
	return coef
}

// polyfit fits y[i] ~ poly(i) of the given degree with a throwaway
// scratch, returning a fresh coefficient slice.
func polyfit(y []float64, degree int) []float64 {
	var ps polyScratch
	return ps.fit(y, degree)
}

// polyval evaluates the polynomial (Horner).
func polyval(coef []float64, x float64) float64 {
	v := 0.0
	for i := len(coef) - 1; i >= 0; i-- {
		v = v*x + coef[i]
	}
	return v
}

// Normalizer maps raw values into the network's working range [0, 1]
// given a fixed capacity, and back.
type Normalizer struct {
	// Capacity is the value mapped to 1.0; it must be positive.
	Capacity float64
}

// NewNormalizer validates the capacity.
func NewNormalizer(capacity float64) (Normalizer, error) {
	if capacity <= 0 {
		return Normalizer{}, fmt.Errorf("neural: capacity must be positive, got %v", capacity)
	}
	return Normalizer{Capacity: capacity}, nil
}

// Norm maps a raw value into [0, ...]; values above capacity exceed 1.
func (n Normalizer) Norm(v float64) float64 { return v / n.Capacity }

// Denorm inverts Norm, clamping at zero (a population prediction can
// never be negative).
func (n Normalizer) Denorm(v float64) float64 {
	out := v * n.Capacity
	if out < 0 {
		return 0
	}
	return out
}
