package audit

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"mmogdc/internal/ecosystem"
	"mmogdc/internal/obs"
)

// causeLookbackTicks is how far before an SLA-breach episode the
// classifier looks for a plausible trigger — the engine's maximum
// rejection backoff, so a breach caused by a backed-off zone still
// sees its rejection.
const causeLookbackTicks = 8

// Episode is one maximal run of consecutive SLA-breach ticks
// (sla_breach events), with the root cause the classifier assigned.
type Episode struct {
	StartTick int
	EndTick   int
	Ticks     int
	// WorstUnderPct is the deepest under-allocation Υ inside the
	// episode (<= 0).
	WorstUnderPct float64
	// Cause is the classifier's root-cause attribution, in order of
	// precedence: "region blackout", "brownout shedding", "outage",
	// "rejection backoff", "failover storm control", "prediction miss"
	// (the provisioner was granting but its forecast undershot), or
	// "unclassified" (no signal in the stream explains the breach).
	Cause string
}

// DomainWindow is one failure-domain impairment window reconstructed
// from the event stream: a whole-region blackout or a brownout
// engagement. EndTick is math.MaxInt when the window never closed
// within the run.
type DomainWindow struct {
	// Subject is the region (blackouts) or the engine/game that
	// engaged brownout mode.
	Subject   string
	StartTick int
	EndTick   int
}

// KindCount is one event kind's census entry.
type KindCount struct {
	Kind  string
	Count int
}

// LatencyDist summarizes one span family's durations (microseconds).
type LatencyDist struct {
	Count  int
	MinUS  float64
	MeanUS float64
	MaxUS  float64
}

func (d *LatencyDist) observe(us float64) {
	if d.Count == 0 || us < d.MinUS {
		d.MinUS = us
	}
	if us > d.MaxUS {
		d.MaxUS = us
	}
	d.MeanUS += us // sum until finalized
	d.Count++
}

func (d *LatencyDist) finalize() {
	if d.Count > 0 {
		d.MeanUS /= float64(d.Count)
	}
}

// CenterAttribution is one data center's share of the run's grants.
type CenterAttribution struct {
	Name string
	// Grants counts grant events that included the center.
	Grants int
	// CPUUnits is the granted CPU attributed to the center (a grant
	// spanning k centers contributes value/k to each).
	CPUUnits float64
	// AvailabilityPct is the center's mean available capacity over the
	// run (from the metrics document), or NaN when unknown.
	AvailabilityPct float64
}

// PhaseStat is one span family's timing breakdown from the trace.
type PhaseStat struct {
	Name    string
	Spans   int
	TotalUS float64
	MeanUS  float64
}

// AlertQuality scores the SLO engine's slo_alert firings against the
// ground truth the audit already reconstructs: the SLA-breach episodes.
// A firing at tick t matches an episode covering [Start, End +
// causeLookbackTicks] — the same tolerance the root-cause classifier
// uses, since an alert confirmed one burn window after the breach ends
// is still attributing the same incident.
type AlertQuality struct {
	// Fired counts firing transitions; TruePositives the ones matching
	// some episode (the rest are false alarms).
	Fired         int
	TruePositives int
	// Episodes is the ground-truth episode count; Detected how many had
	// at least one matching firing.
	Episodes int
	Detected int
	// MeanLagTicks / MaxLagTicks measure detection latency: each
	// detected episode's first matching firing tick minus its start.
	MeanLagTicks float64
	MaxLagTicks  int
}

// Precision is TruePositives/Fired (1 when nothing fired — no false
// alarms).
func (a *AlertQuality) Precision() float64 {
	if a.Fired == 0 {
		return 1
	}
	return float64(a.TruePositives) / float64(a.Fired)
}

// Recall is Detected/Episodes (1 when there was nothing to detect).
func (a *AlertQuality) Recall() float64 {
	if a.Episodes == 0 {
		return 1
	}
	return float64(a.Detected) / float64(a.Episodes)
}

// WhyChain walks one SLA-breach episode back through its decision
// chain: every acquisition site (grant/failover/retry event) inside the
// episode's cause window, resolved to the decision record emitted at
// the same (tick, subject), and the per-candidate dispositions those
// decisions carry. An acquisition with no decision record is
// Unexplained — with provenance enabled end to end that count is zero.
type WhyChain struct {
	// Episode is the 1-based index into Report.Episodes.
	Episode int
	// Acquisitions counts distinct (tick, subject) acquisition sites in
	// [StartTick-causeLookbackTicks, EndTick]; Resolved of those had a
	// decision record, Unexplained did not.
	Acquisitions int
	Resolved     int
	Unexplained  int
	// Dispositions aggregates the per-candidate dispositions across the
	// resolved decisions, sorted by disposition name.
	Dispositions []KindCount
}

// Check is one consistency assertion between the artifacts.
type Check struct {
	Name string
	Want string
	Got  string
	OK   bool
}

// Report is the assembled audit.
type Report struct {
	// From the event stream.
	EventTotal  int
	KindTotals  []KindCount
	Episodes    []Episode
	BreachTicks int
	Centers     []CenterAttribution

	// Failure-domain activity from the event stream. All empty/zero on
	// runs without correlated faults, brownout, or storm control — the
	// Render section and the consistency checks they feed are gated on
	// that, so fault-free reports are unchanged.
	Blackouts         []DomainWindow
	Brownouts         []DomainWindow
	ShedEvents        int
	ShedPlayerTicks   float64
	DeferredFailovers int
	// Unclassified counts episodes whose root cause no signal in the
	// stream explains (cmd/mmogaudit can be told to fail on them).
	Unclassified int

	// Decision provenance. HasDecisions is set when the stream carries
	// decision events at all — the Why section and its consistency
	// checks are gated on it, so provenance-free reports are
	// byte-identical to pre-provenance ones. UnexplainedChains sums
	// WhyChain.Unexplained (cmd/mmogaudit can be told to fail on it).
	HasDecisions      bool
	WhyChains         []WhyChain
	UnexplainedChains int

	// From the metrics document (nil-safe: zero when absent).
	HasMetrics bool
	Ticks      int
	Events     int
	Unmet      int
	Recorder   RecorderStats

	// From the trace (empty when absent).
	HasTrace        bool
	FailoverLatency LatencyDist
	RetryLatency    LatencyDist
	Phases          []PhaseStat

	// From a cmd/mmogload report (nil when absent; see AttachLoad).
	Load *LoadReport

	// Alerts scores SLO firings against the breach episodes; nil when
	// the stream has no slo_alert events (engine not armed), so
	// alert-free reports render unchanged.
	Alerts *AlertQuality

	// RequestPath is the cross-process critical path; nil unless
	// AttachRequestPath merged a client and a server trace.
	RequestPath *RequestPathReport

	Checks []Check
}

// Analyze builds the audit from a run's artifacts. events is required;
// md and tr are optional (their sections are omitted when nil).
func Analyze(events []obs.Event, md *MetricsDoc, tr *Trace) *Report {
	rp := &Report{EventTotal: len(events)}
	rp.censusFrom(events)
	rp.episodesFrom(events)
	rp.whyFrom(events)
	rp.alertsFrom(events)
	rp.centersFrom(events, md)
	if md != nil {
		rp.HasMetrics = true
		rp.Ticks = md.Ticks
		rp.Events = md.Events
		rp.Unmet = md.Unmet
		rp.Recorder = md.Recorder
		rp.Checks = append(rp.Checks,
			check("breach ticks match Result.Events",
				fmt.Sprint(md.Events), fmt.Sprint(rp.BreachTicks)),
			check("event stream length matches Recorder.Total",
				fmt.Sprint(md.Recorder.Total), fmt.Sprint(len(events))))
		// Failure-domain cross-checks, gated on the machinery having
		// fired at all so fault-free reports are byte-identical.
		blackoutEvents := rp.kindCount(obs.EventRegionBlackout)
		rb, deferredRes := 0, 0
		if md.Resilience != nil {
			rb = md.Resilience.RegionBlackouts
			deferredRes = md.Resilience.FailoversDeferred
		}
		if blackoutEvents > 0 || rb > 0 {
			rp.Checks = append(rp.Checks,
				check("region blackout events match Resilience.RegionBlackouts",
					fmt.Sprint(rb), fmt.Sprint(blackoutEvents)))
		}
		if rp.DeferredFailovers > 0 || deferredRes > 0 {
			rp.Checks = append(rp.Checks,
				check("deferral events match Resilience.FailoversDeferred",
					fmt.Sprint(deferredRes), fmt.Sprint(rp.DeferredFailovers)))
		}
	}
	if tr != nil {
		rp.HasTrace = true
		rp.timingFrom(tr)
	}
	return rp
}

func check(name, want, got string) Check {
	return Check{Name: name, Want: want, Got: got, OK: want == got}
}

// kindCount returns one kind's census total (0 when absent).
func (rp *Report) kindCount(kind string) int {
	for _, k := range rp.KindTotals {
		if k.Kind == kind {
			return k.Count
		}
	}
	return 0
}

// censusFrom counts events per kind, sorted by kind.
func (rp *Report) censusFrom(events []obs.Event) {
	byKind := map[string]int{}
	for _, e := range events {
		byKind[e.Kind]++
	}
	for kind, n := range byKind {
		rp.KindTotals = append(rp.KindTotals, KindCount{Kind: kind, Count: n})
	}
	sort.Slice(rp.KindTotals, func(i, j int) bool {
		return rp.KindTotals[i].Kind < rp.KindTotals[j].Kind
	})
}

// episodesFrom finds the maximal runs of consecutive breach ticks and
// classifies each one's root cause.
func (rp *Report) episodesFrom(events []obs.Event) {
	// Breach ticks (deduplicated — a multi-operator run can emit one
	// sla_breach per game at one tick) with the worst Υ per tick.
	worst := map[int]float64{}
	var ticks []int
	// Fault windows per center, refcounted like the engine: an
	// outage/degrade deepens, a recover/restore shallows; the window
	// spans first-open to last-close.
	type window struct{ start, end int } // end < start means still open
	depth := map[string]int{}
	open := map[string]int{}
	var windows []window
	// Ticks with injected grant trouble (rejections and their retries).
	rejects := map[int]bool{}
	// Failure-domain signals: region blackout and brownout windows
	// (refcounted by subject like the outage windows), brownout shed
	// and storm-control deferral ticks, and grant ticks (evidence the
	// provisioner was actively tracking — what separates a prediction
	// miss from an unclassified breach).
	blackOpen := map[string]int{}
	brownOpen := map[string]int{}
	sheds := map[int]bool{}
	deferred := map[int]bool{}
	grants := map[int]bool{}
	for _, e := range events {
		switch e.Kind {
		case obs.EventBreach:
			if v, ok := worst[e.Tick]; !ok || e.Value < v {
				if !ok {
					ticks = append(ticks, e.Tick)
				}
				worst[e.Tick] = e.Value
			}
		case obs.EventOutage, obs.EventDegrade:
			if depth[e.Subject] == 0 {
				open[e.Subject] = e.Tick
			}
			depth[e.Subject]++
		case obs.EventRecover, obs.EventRestore:
			if d := depth[e.Subject]; d > 0 {
				depth[e.Subject] = d - 1
				if d == 1 {
					windows = append(windows, window{start: open[e.Subject], end: e.Tick})
				}
			}
		case obs.EventRejection, obs.EventRetry:
			rejects[e.Tick] = true
		case obs.EventRegionBlackout:
			if _, live := blackOpen[e.Subject]; !live {
				blackOpen[e.Subject] = e.Tick
			}
		case obs.EventRegionRecover:
			if start, live := blackOpen[e.Subject]; live {
				delete(blackOpen, e.Subject)
				rp.Blackouts = append(rp.Blackouts,
					DomainWindow{Subject: e.Subject, StartTick: start, EndTick: e.Tick})
			}
		case obs.EventBrownoutStart:
			if _, live := brownOpen[e.Subject]; !live {
				brownOpen[e.Subject] = e.Tick
			}
		case obs.EventBrownoutEnd:
			if start, live := brownOpen[e.Subject]; live {
				delete(brownOpen, e.Subject)
				rp.Brownouts = append(rp.Brownouts,
					DomainWindow{Subject: e.Subject, StartTick: start, EndTick: e.Tick})
			}
		case obs.EventShed:
			rp.ShedEvents++
			rp.ShedPlayerTicks += e.Value
			sheds[e.Tick] = true
		case obs.EventDeferred:
			rp.DeferredFailovers++
			deferred[e.Tick] = true
		case obs.EventGrant:
			grants[e.Tick] = true
		}
	}
	for center, d := range depth {
		if d > 0 { // never recovered within the run
			windows = append(windows, window{start: open[center], end: math.MaxInt})
		}
	}
	for subject, start := range blackOpen { // region never recovered
		rp.Blackouts = append(rp.Blackouts,
			DomainWindow{Subject: subject, StartTick: start, EndTick: math.MaxInt})
	}
	for subject, start := range brownOpen { // brownout never lifted
		rp.Brownouts = append(rp.Brownouts,
			DomainWindow{Subject: subject, StartTick: start, EndTick: math.MaxInt})
	}
	sortWindows(rp.Blackouts)
	sortWindows(rp.Brownouts)
	sort.Ints(ticks)

	overlapsOutage := func(s, e int) bool {
		for _, w := range windows {
			if w.start <= e && s-causeLookbackTicks <= w.end {
				return true
			}
		}
		return false
	}
	overlapsDomain := func(ws []DomainWindow, s, e int) bool {
		for _, w := range ws {
			if w.StartTick <= e && s-causeLookbackTicks <= w.EndTick {
				return true
			}
		}
		return false
	}
	near := func(m map[int]bool, s, e int) bool {
		for t := s - causeLookbackTicks; t <= e; t++ {
			if m[t] {
				return true
			}
		}
		return false
	}
	classify := func(s, e int) string {
		switch {
		case overlapsDomain(rp.Blackouts, s, e):
			return "region blackout"
		case overlapsDomain(rp.Brownouts, s, e) || near(sheds, s, e):
			return "brownout shedding"
		case overlapsOutage(s, e):
			return "outage"
		case near(rejects, s, e):
			return "rejection backoff"
		case near(deferred, s, e):
			return "failover storm control"
		case near(grants, s, e):
			return "prediction miss"
		default:
			return "unclassified"
		}
	}

	rp.BreachTicks = len(ticks)
	for i := 0; i < len(ticks); {
		j := i
		for j+1 < len(ticks) && ticks[j+1] == ticks[j]+1 {
			j++
		}
		ep := Episode{StartTick: ticks[i], EndTick: ticks[j], Ticks: j - i + 1}
		for k := i; k <= j; k++ {
			if v := worst[ticks[k]]; v < ep.WorstUnderPct {
				ep.WorstUnderPct = v
			}
		}
		ep.Cause = classify(ep.StartTick, ep.EndTick)
		if ep.Cause == "unclassified" {
			rp.Unclassified++
		}
		rp.Episodes = append(rp.Episodes, ep)
		i = j + 1
	}
}

// walkDispositions iterates a decision event's Detail — the
// "center=disposition,..." walk ecosystem.Decision.WalkDetail emits —
// calling fn once per candidate verdict.
func walkDispositions(detail string, fn func(center, disp string)) {
	for _, part := range strings.Split(detail, ",") {
		if center, disp, ok := strings.Cut(part, "="); ok {
			fn(center, disp)
		}
	}
}

// whyFrom walks each breach episode back through its decision chain.
// It also cross-checks the decision walks against the grant and
// rejection counters recorded at the same (tick, subject) sites — only
// pairs where both records exist, so a ring-truncated stream degrades
// to fewer comparisons, not false mismatches. Streams with no decision
// events (provenance disabled) are left untouched.
func (rp *Report) whyFrom(events []obs.Event) {
	type site struct {
		tick    int
		subject string
	}
	// A site can carry more than one decision (tick 0 runs bootstrap
	// and the first loop acquire for the same tag), so keep every walk
	// and aggregate the cross-checks per site.
	decisions := map[site][]string{}
	for _, e := range events {
		if e.Kind == obs.EventDecision {
			s := site{e.Tick, e.Subject}
			decisions[s] = append(decisions[s], e.Detail)
		}
	}
	if len(decisions) == 0 {
		return
	}
	rp.HasDecisions = true

	// Acquisition sites, deduplicated in stream order: the events the
	// engines emit when an acquire pass did something worth explaining.
	var sites []site
	seen := map[site]bool{}
	rejBySite := map[site]int{}
	grantMismatches := 0
	for _, e := range events {
		s := site{e.Tick, e.Subject}
		switch e.Kind {
		case obs.EventFailover, obs.EventRetry:
			if !seen[s] {
				seen[s] = true
				sites = append(sites, s)
			}
		case obs.EventRejection:
			rejBySite[s] += int(e.Value)
		case obs.EventGrant:
			if !seen[s] {
				seen[s] = true
				sites = append(sites, s)
			}
			// Every center the grant event names must appear in some
			// decision walk at the site with a granting disposition.
			walks := decisions[s]
			if len(walks) == 0 || !strings.HasPrefix(e.Detail, "centers: ") {
				break
			}
			for _, name := range strings.Split(strings.TrimPrefix(e.Detail, "centers: "), ",") {
				if name == "" {
					continue
				}
				found := false
				for _, walk := range walks {
					walkDispositions(walk, func(center, disp string) {
						if center == name && (disp == string(ecosystem.DispGranted) ||
							disp == string(ecosystem.DispPartialTrimmed)) {
							found = true
						}
					})
				}
				if !found {
					grantMismatches++
				}
			}
		}
	}
	// At every site with decision records, the walks' rejected-by-
	// injector verdicts must sum to the rejection events' counts.
	rejEvents, rejWalk := 0, 0
	for s, walks := range decisions {
		rejEvents += rejBySite[s]
		for _, walk := range walks {
			walkDispositions(walk, func(_, disp string) {
				if disp == string(ecosystem.DispRejectedByInjector) {
					rejWalk++
				}
			})
		}
	}

	for i, ep := range rp.Episodes {
		wc := WhyChain{Episode: i + 1}
		disp := map[string]int{}
		for _, s := range sites {
			if s.tick < ep.StartTick-causeLookbackTicks || s.tick > ep.EndTick {
				continue
			}
			wc.Acquisitions++
			walks, ok := decisions[s]
			if !ok {
				wc.Unexplained++
				continue
			}
			wc.Resolved++
			for _, walk := range walks {
				walkDispositions(walk, func(_, d string) { disp[d]++ })
			}
		}
		for name, n := range disp {
			wc.Dispositions = append(wc.Dispositions, KindCount{Kind: name, Count: n})
		}
		sort.Slice(wc.Dispositions, func(a, b int) bool {
			return wc.Dispositions[a].Kind < wc.Dispositions[b].Kind
		})
		rp.UnexplainedChains += wc.Unexplained
		rp.WhyChains = append(rp.WhyChains, wc)
	}

	rp.Checks = append(rp.Checks,
		check("rejection events match rejected-by-injector dispositions",
			fmt.Sprint(rejEvents), fmt.Sprint(rejWalk)),
		check("granted centers appear in decision walks (mismatches)",
			"0", fmt.Sprint(grantMismatches)))
}

// alertsFrom scores slo_alert firings against the breach episodes.
// Runs without an SLO engine (no slo_alert events at all) leave Alerts
// nil, so their reports are byte-identical to pre-engine ones.
func (rp *Report) alertsFrom(events []obs.Event) {
	saw := false
	var firings []int
	for _, e := range events {
		if e.Kind != obs.EventSLOAlert {
			continue
		}
		saw = true
		if e.Detail == "firing" {
			firings = append(firings, e.Tick)
		}
	}
	if !saw {
		return
	}
	sort.Ints(firings)
	aq := &AlertQuality{Fired: len(firings), Episodes: len(rp.Episodes)}
	for _, t := range firings {
		for _, ep := range rp.Episodes {
			if ep.StartTick <= t && t <= ep.EndTick+causeLookbackTicks {
				aq.TruePositives++
				break
			}
		}
	}
	lagSum := 0
	for _, ep := range rp.Episodes {
		for _, t := range firings { // sorted: first match is the earliest
			if ep.StartTick <= t && t <= ep.EndTick+causeLookbackTicks {
				aq.Detected++
				lag := t - ep.StartTick
				lagSum += lag
				if lag > aq.MaxLagTicks {
					aq.MaxLagTicks = lag
				}
				break
			}
		}
	}
	if aq.Detected > 0 {
		aq.MeanLagTicks = float64(lagSum) / float64(aq.Detected)
	}
	rp.Alerts = aq
}

// sortWindows orders domain windows for a stable report (map-fed).
func sortWindows(ws []DomainWindow) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].StartTick != ws[j].StartTick {
			return ws[i].StartTick < ws[j].StartTick
		}
		return ws[i].Subject < ws[j].Subject
	})
}

// centersFrom attributes grants to data centers via the grant events'
// "centers: a,b" detail, joined with availability from the metrics.
func (rp *Report) centersFrom(events []obs.Event, md *MetricsDoc) {
	type acc struct {
		grants int
		cpu    float64
	}
	byCenter := map[string]*acc{}
	for _, e := range events {
		if e.Kind != obs.EventGrant || !strings.HasPrefix(e.Detail, "centers: ") {
			continue
		}
		names := strings.Split(strings.TrimPrefix(e.Detail, "centers: "), ",")
		for _, name := range names {
			if name == "" {
				continue
			}
			a := byCenter[name]
			if a == nil {
				a = &acc{}
				byCenter[name] = a
			}
			a.grants++
			a.cpu += e.Value / float64(len(names))
		}
	}
	for name, a := range byCenter {
		avail := math.NaN()
		if md != nil && md.Resilience != nil {
			if v, ok := md.Resilience.Availability[name]; ok {
				avail = v * 100
			}
		}
		rp.Centers = append(rp.Centers, CenterAttribution{
			Name: name, Grants: a.grants, CPUUnits: a.cpu, AvailabilityPct: avail,
		})
	}
	sort.Slice(rp.Centers, func(i, j int) bool { return rp.Centers[i].Name < rp.Centers[j].Name })
}

// timingFrom derives the per-phase breakdown and failover/retry latency
// distributions from complete ("X") spans in the trace.
func (rp *Report) timingFrom(tr *Trace) {
	phaseOrder := []string{
		"tick", "phase.observe", "phase.reduce", "phase.acquire",
		"acquire", "acquire.failover", "acquire.retry", "predict",
		"checkpoint.encode", "checkpoint.write", "bootstrap", "operator.observe",
	}
	stats := map[string]*PhaseStat{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		s := stats[ev.Name]
		if s == nil {
			s = &PhaseStat{Name: ev.Name}
			stats[ev.Name] = s
		}
		s.Spans++
		s.TotalUS += ev.Dur
		switch ev.Name {
		case "acquire.failover":
			rp.FailoverLatency.observe(ev.Dur)
		case "acquire.retry":
			rp.RetryLatency.observe(ev.Dur)
		}
	}
	rp.FailoverLatency.finalize()
	rp.RetryLatency.finalize()
	seen := map[string]bool{}
	add := func(name string) {
		if s := stats[name]; s != nil && !seen[name] {
			seen[name] = true
			s.MeanUS = s.TotalUS / float64(s.Spans)
			rp.Phases = append(rp.Phases, *s)
		}
	}
	for _, name := range phaseOrder {
		add(name)
	}
	// Any span families the fixed order missed, alphabetically.
	var rest []string
	for name := range stats {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		add(name)
	}
}

// Render writes the report as markdown/ASCII.
func (rp *Report) Render(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# mmogdc provisioning audit\n\n")

	b.WriteString("## Run summary\n\n")
	if rp.HasMetrics {
		fmt.Fprintf(&b, "ticks: %d  breach ticks: %d  unmet ticks: %d\n",
			rp.Ticks, rp.Events, rp.Unmet)
		fmt.Fprintf(&b, "recorder: %d events total, %d retained, %d overwritten, %d sink errors\n",
			rp.Recorder.Total, rp.Recorder.Retained, rp.Recorder.Dropped, rp.Recorder.SinkErrs)
		if rp.Recorder.Dropped > 0 || rp.Recorder.SinkErrs > 0 {
			fmt.Fprintf(&b, "WARNING: degraded telemetry — %d event(s) overwritten by the ring, %d sink error(s); stream-derived sections may undercount\n",
				rp.Recorder.Dropped, rp.Recorder.SinkErrs)
		}
	}
	fmt.Fprintf(&b, "event stream: %d events\n\n", rp.EventTotal)

	b.WriteString("## Event census\n\n")
	b.WriteString("| kind | count |\n|---|---:|\n")
	for _, k := range rp.KindTotals {
		fmt.Fprintf(&b, "| %s | %d |\n", k.Kind, k.Count)
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "## SLA-breach episodes (%d episodes, %d breach ticks)\n\n",
		len(rp.Episodes), rp.BreachTicks)
	if len(rp.Episodes) == 0 {
		b.WriteString("none — no tick breached the significance threshold\n\n")
	} else {
		b.WriteString("| # | ticks | length | worst Y | root cause |\n|---:|---|---:|---:|---|\n")
		for i, ep := range rp.Episodes {
			span := fmt.Sprint(ep.StartTick)
			if ep.EndTick != ep.StartTick {
				span = fmt.Sprintf("%d-%d", ep.StartTick, ep.EndTick)
			}
			fmt.Fprintf(&b, "| %d | %s | %d | %.3f%% | %s |\n",
				i+1, span, ep.Ticks, ep.WorstUnderPct, ep.Cause)
		}
		if rp.Unclassified > 0 {
			fmt.Fprintf(&b, "\nWARNING: %d episode(s) unclassified — no signal in the stream explains them\n", rp.Unclassified)
		}
		b.WriteString("\n")
	}

	if rp.HasDecisions {
		b.WriteString("## Why (decision provenance)\n\n")
		fmt.Fprintf(&b, "decision records in stream: %d\n\n", rp.kindCount(obs.EventDecision))
		if len(rp.WhyChains) == 0 {
			b.WriteString("no breach episodes — nothing to walk back\n\n")
		} else {
			b.WriteString("| episode | acquisitions | resolved | unexplained | candidate dispositions |\n|---:|---:|---:|---:|---|\n")
			for _, wc := range rp.WhyChains {
				var parts []string
				for _, d := range wc.Dispositions {
					parts = append(parts, fmt.Sprintf("%s %d", d.Kind, d.Count))
				}
				summary := strings.Join(parts, ", ")
				if summary == "" {
					summary = "-"
				}
				fmt.Fprintf(&b, "| %d | %d | %d | %d | %s |\n",
					wc.Episode, wc.Acquisitions, wc.Resolved, wc.Unexplained, summary)
			}
			if rp.UnexplainedChains > 0 {
				fmt.Fprintf(&b, "\nWARNING: %d acquisition(s) in breach windows have no decision record\n", rp.UnexplainedChains)
			}
			b.WriteString("\n")
		}
	}

	if a := rp.Alerts; a != nil {
		b.WriteString("## Alert quality (SLO engine vs ground truth)\n\n")
		fmt.Fprintf(&b, "alerts fired: %d  true positives: %d  false alarms: %d\n",
			a.Fired, a.TruePositives, a.Fired-a.TruePositives)
		fmt.Fprintf(&b, "breach episodes: %d  detected: %d  missed: %d\n",
			a.Episodes, a.Detected, a.Episodes-a.Detected)
		fmt.Fprintf(&b, "precision %.3f  recall %.3f\n", a.Precision(), a.Recall())
		if a.Detected > 0 {
			fmt.Fprintf(&b, "detection lag ticks: mean %.1f  max %d\n", a.MeanLagTicks, a.MaxLagTicks)
		}
		b.WriteString("\n")
	}

	b.WriteString("## Per-center grant attribution\n\n")
	if len(rp.Centers) == 0 {
		b.WriteString("no grants recorded\n\n")
	} else {
		b.WriteString("| center | grants | CPU units | availability |\n|---|---:|---:|---:|\n")
		for _, c := range rp.Centers {
			avail := "n/a"
			if !math.IsNaN(c.AvailabilityPct) {
				avail = fmt.Sprintf("%.3f%%", c.AvailabilityPct)
			}
			fmt.Fprintf(&b, "| %s | %d | %.2f | %s |\n", c.Name, c.Grants, c.CPUUnits, avail)
		}
		b.WriteString("\n")
	}

	if len(rp.Blackouts) > 0 || len(rp.Brownouts) > 0 ||
		rp.ShedEvents > 0 || rp.DeferredFailovers > 0 {
		b.WriteString("## Failure domains\n\n")
		writeWindows := func(label string, ws []DomainWindow) {
			if len(ws) == 0 {
				return
			}
			fmt.Fprintf(&b, "%s:\n\n| subject | ticks |\n|---|---|\n", label)
			for _, w := range ws {
				span := fmt.Sprintf("%d-%d", w.StartTick, w.EndTick)
				if w.EndTick == math.MaxInt {
					span = fmt.Sprintf("%d-(never recovered)", w.StartTick)
				}
				fmt.Fprintf(&b, "| %s | %s |\n", w.Subject, span)
			}
			b.WriteString("\n")
		}
		writeWindows("Region blackouts", rp.Blackouts)
		writeWindows("Brownout windows", rp.Brownouts)
		if rp.ShedEvents > 0 {
			fmt.Fprintf(&b, "brownout shedding: %d shed events, %.1f player-ticks deliberately unserved\n",
				rp.ShedEvents, rp.ShedPlayerTicks)
		}
		if rp.DeferredFailovers > 0 {
			fmt.Fprintf(&b, "failover storm control: %d failovers deferred to jittered retry ticks\n",
				rp.DeferredFailovers)
		}
		if rp.ShedEvents > 0 || rp.DeferredFailovers > 0 {
			b.WriteString("\n")
		}
	}

	if rp.HasTrace {
		b.WriteString("## Failover / retry latency (trace spans)\n\n")
		b.WriteString("| span | count | min us | mean us | max us |\n|---|---:|---:|---:|---:|\n")
		writeDist := func(name string, d LatencyDist) {
			fmt.Fprintf(&b, "| %s | %d | %.1f | %.1f | %.1f |\n",
				name, d.Count, d.MinUS, d.MeanUS, d.MaxUS)
		}
		writeDist("acquire.failover", rp.FailoverLatency)
		writeDist("acquire.retry", rp.RetryLatency)
		b.WriteString("\n")

		b.WriteString("## Per-phase tick time (trace spans)\n\n")
		b.WriteString("| span | count | total us | mean us |\n|---|---:|---:|---:|\n")
		for _, p := range rp.Phases {
			fmt.Fprintf(&b, "| %s | %d | %.1f | %.1f |\n", p.Name, p.Spans, p.TotalUS, p.MeanUS)
		}
		b.WriteString("\n")
	}

	if rpp := rp.RequestPath; rpp != nil {
		b.WriteString("## Request critical path (cross-process trace)\n\n")
		fmt.Fprintf(&b, "matched requests: %d (client %d, server %d)\n\n",
			rpp.Matched, rpp.ClientRequests, rpp.ServerRequests)
		b.WriteString("| stage | count | min us | mean us | max us |\n|---|---:|---:|---:|---:|\n")
		writeStage := func(name string, d LatencyDist) {
			fmt.Fprintf(&b, "| %s | %d | %.1f | %.1f | %.1f |\n",
				name, d.Count, d.MinUS, d.MeanUS, d.MaxUS)
		}
		writeStage("client.request (RTT)", rpp.ClientRTT)
		writeStage("daemon.queue_wait", rpp.QueueWait)
		writeStage("daemon.observe", rpp.Observe)
		writeStage("operator.acquire", rpp.Acquire)
		b.WriteString("\n")
	}

	if rp.Load != nil {
		ld := rp.Load
		b.WriteString("## Daemon load (Meterstick-style)\n\n")
		fmt.Fprintf(&b, "game %s: %d samples in %.2fs (%.1f/s attempted)\n",
			ld.Game, ld.Samples, ld.DurationSeconds, ld.AttemptedHz)
		shedPct := 0.0
		if ld.Samples > 0 {
			shedPct = 100 * float64(ld.Shed) / float64(ld.Samples)
		}
		fmt.Fprintf(&b, "accepted %d  shed %d (%.1f%%)  rejected %d\n",
			ld.Accepted, ld.Shed, shedPct, ld.Rejected)
		if ld.Retries > 0 {
			fmt.Fprintf(&b, "transient retries: %d (capped jittered backoff)\n", ld.Retries)
		}
		fmt.Fprintf(&b, "observe-loop RTT ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
			ld.RTT.P50MS, ld.RTT.P95MS, ld.RTT.P99MS, ld.RTT.MaxMS)
		for _, status := range []string{"accepted", "shed", "rejected"} {
			q, ok := ld.RTTByStatus[status]
			if !ok || q.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %s (%d): p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
				status, q.Count, q.P50MS, q.P95MS, q.P99MS, q.MaxMS)
		}
		if ld.DrainSeconds > 0 {
			fmt.Fprintf(&b, "drain time: %.3fs\n", ld.DrainSeconds)
		}
		b.WriteString("\n")
	}

	if len(rp.Checks) > 0 {
		b.WriteString("## Consistency checks\n\n")
		for _, c := range rp.Checks {
			status := "OK"
			if !c.OK {
				status = fmt.Sprintf("MISMATCH (want %s, got %s)", c.Want, c.Got)
			}
			fmt.Fprintf(&b, "- %s: %s\n", c.Name, status)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
