package core

import (
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

// contendedSetup builds two games (light and heavy) sharing a center
// too small for both.
func contendedSetup(t *testing.T, prioritize bool) *Result {
	t.Helper()
	light := mmog.NewGame("light", mmog.GenreRPG) // O(n log n)
	heavy := mmog.NewGame("heavy", mmog.GenreFPS) // O(n^3)
	dsL := syntheticDataset(3, 120, 1900)         // near-capacity loads
	dsH := syntheticDataset(3, 120, 1900)
	var b datacenter.Vector
	b[datacenter.CPU] = 0.25
	p := datacenter.HostingPolicy{Name: "tight", Bulk: b, TimeBulk: time.Hour}
	centers := []*datacenter.Center{datacenter.NewCenter("dc", geo.London, 4, p)}
	res, err := Run(Config{
		Centers:                 centers,
		PrioritizeByInteraction: prioritize,
		Workloads: []Workload{
			{Game: light, Dataset: dsL, Predictor: predict.NewLastValue()},
			{Game: heavy, Dataset: dsH, Predictor: predict.NewLastValue()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPrioritizationFavorsHeavyGame(t *testing.T) {
	fifo := contendedSetup(t, false)
	prio := contendedSetup(t, true)
	if fifo.Unmet == 0 {
		t.Skip("setup not contended; prioritization unobservable")
	}
	// Under prioritization the heavy game's shortfall must not grow,
	// and should improve relative to FIFO.
	if prio.AvgUnderByGame["heavy"] < fifo.AvgUnderByGame["heavy"]-1e-9 {
		t.Fatalf("prioritized heavy under %v worse than fifo %v",
			prio.AvgUnderByGame["heavy"], fifo.AvgUnderByGame["heavy"])
	}
}

func TestAvgUnderByGamePopulated(t *testing.T) {
	res := contendedSetup(t, false)
	if len(res.AvgUnderByGame) != 2 {
		t.Fatalf("AvgUnderByGame has %d entries", len(res.AvgUnderByGame))
	}
	for name, v := range res.AvgUnderByGame {
		if v > 0 {
			t.Errorf("game %s has positive under-allocation %v", name, v)
		}
	}
}

func TestAvgUnderByGameZeroWhenUncontended(t *testing.T) {
	ds := syntheticDataset(2, 120, 800)
	game := mmog.NewGame("solo", mmog.GenreMMORPG)
	res, err := Run(Config{
		Centers:   fineCenters(50),
		Workloads: []Workload{{Game: game, Dataset: ds, Predictor: predict.NewLastValue()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgUnderByGame["solo"] < -0.5 {
		t.Fatalf("uncontended game under-allocation = %v", res.AvgUnderByGame["solo"])
	}
}

func TestStaticHasGameBreakdownToo(t *testing.T) {
	ds := trace.Generate(trace.Config{Seed: 3, Days: 1,
		Regions: []trace.Region{{ID: 0, Name: "Europe", Location: geo.London, Groups: 3}}})
	res, err := Run(Config{
		Static:    true,
		Workloads: []Workload{{Game: mmog.NewGame("st", mmog.GenreMMORPG), Dataset: ds}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AvgUnderByGame["st"]; got != 0 {
		t.Fatalf("static game under-allocation = %v, want 0", got)
	}
}
