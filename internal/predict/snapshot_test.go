package predict

import (
	"math"
	"strings"
	"testing"

	"mmogdc/internal/neural"
	"mmogdc/internal/xrand"
)

// snapshotFactories enumerates every predictor factory in the package,
// including a pretrained shared-network neural factory, so the
// round-trip property below covers each concrete type end to end.
func snapshotFactories(t *testing.T) map[string]Factory {
	t.Helper()
	collected := make([][]float64, 3)
	r := xrand.New(91)
	for z := range collected {
		sig := make([]float64, 120)
		level := 40.0 + 10*float64(z)
		for i := range sig {
			level += r.NormFloat64() * 3
			sig[i] = level + 15*math.Sin(float64(i)/7)
		}
		collected[z] = sig
	}
	pretrained, _ := PretrainShared(NeuralConfig{Seed: 5}, collected, 0.8,
		neural.TrainConfig{MaxEras: 5, ShuffleSeed: 11})
	return map[string]Factory{
		"lastvalue":     NewLastValue(),
		"average":       NewAverage(),
		"movingavg":     NewMovingAverage(12),
		"expsmoothing":  NewExpSmoothing(0.3, "exp"),
		"holt":          NewHolt(0.4, 0.1),
		"median":        NewSlidingWindowMedian(9),
		"ar":            NewAR(8, 16, 64),
		"seasonalnaive": NewSeasonalNaive(24),
		"neural":        NewNeural(NeuralConfig{Seed: 7, Capacity: 150}),
		"pretrained":    pretrained,
	}
}

// TestSnapshotRoundTripEquivalence is the crash-safety property behind
// operator checkpointing: snapshot a predictor at an arbitrary cut
// point, restore into a fresh factory instance, and from then on both
// must produce bit-identical forecasts on the same stream.
func TestSnapshotRoundTripEquivalence(t *testing.T) {
	for name, f := range snapshotFactories(t) {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				r := xrand.New(seed * 977)
				p := f().(Stateful)
				cut := 1 + int(r.Uint64()%60)
				level := 50.0
				obs := func() float64 {
					level += r.NormFloat64() * 4
					if level < 0 {
						level = 0
					}
					return level
				}
				for i := 0; i < cut; i++ {
					p.Observe(obs())
				}
				q := f().(Stateful)
				if err := q.Restore(p.Snapshot()); err != nil {
					t.Fatalf("seed %d: restore: %v", seed, err)
				}
				if pb, qb := math.Float64bits(p.Predict()), math.Float64bits(q.Predict()); pb != qb {
					t.Fatalf("seed %d: diverged immediately after restore: %x vs %x", seed, pb, qb)
				}
				for i := 0; i < 80; i++ {
					v := obs()
					p.Observe(v)
					q.Observe(v)
					pb, qb := math.Float64bits(p.Predict()), math.Float64bits(q.Predict())
					if pb != qb {
						t.Fatalf("seed %d: diverged %d steps after restore: %x vs %x", seed, i+1, pb, qb)
					}
				}
			}
		})
	}
}

// TestSnapshotRejectsWrongKind ensures a snapshot can never be loaded
// into a different predictor type.
func TestSnapshotRejectsWrongKind(t *testing.T) {
	fs := snapshotFactories(t)
	holt := fs["holt"]().(Stateful)
	holt.Observe(3)
	for name, f := range fs {
		if name == "holt" {
			continue
		}
		q := f().(Stateful)
		if err := q.Restore(holt.Snapshot()); err == nil {
			t.Fatalf("%s accepted a holt snapshot", name)
		}
	}
}

// TestSnapshotRejectsConfigMismatch ensures a snapshot from a
// differently configured factory is refused, not silently adapted.
func TestSnapshotRejectsConfigMismatch(t *testing.T) {
	cases := []struct{ a, b Factory }{
		{NewMovingAverage(12), NewMovingAverage(6)},
		{NewExpSmoothing(0.3, "x"), NewExpSmoothing(0.5, "x")},
		{NewHolt(0.4, 0.1), NewHolt(0.4, 0.2)},
		{NewSlidingWindowMedian(9), NewSlidingWindowMedian(5)},
		{NewAR(8, 16, 64), NewAR(4, 16, 64)},
		{NewSeasonalNaive(24), NewSeasonalNaive(12)},
		{NewNeural(NeuralConfig{Seed: 7, Capacity: 150}), NewNeural(NeuralConfig{Seed: 7, Capacity: 99})},
	}
	for i, c := range cases {
		p := c.a().(Stateful)
		for j := 0; j < 20; j++ {
			p.Observe(float64(j))
		}
		q := c.b().(Stateful)
		if err := q.Restore(p.Snapshot()); err == nil {
			t.Fatalf("case %d (%T): config mismatch accepted", i, p)
		}
	}
}

// TestSnapshotRejectsTruncation ensures every predictor notices a cut
// snapshot instead of restoring garbage.
func TestSnapshotRejectsTruncation(t *testing.T) {
	for name, f := range snapshotFactories(t) {
		p := f().(Stateful)
		for j := 0; j < 30; j++ {
			p.Observe(float64(j % 7))
		}
		snap := p.Snapshot()
		q := f().(Stateful)
		if err := q.Restore(snap[:len(snap)-3]); err == nil {
			t.Fatalf("%s accepted a truncated snapshot", name)
		}
		if err := q.Restore(append(append([]byte(nil), snap...), 0)); err == nil {
			t.Fatalf("%s accepted a padded snapshot", name)
		}
	}
}

// TestZoneSetSnapshotRoundTrip covers the aggregate used by the
// operator: restore must reproduce the whole per-zone forecast vector
// bit-identically and refuse zone-count mismatches.
func TestZoneSetSnapshotRoundTrip(t *testing.T) {
	f := NewAR(4, 8, 32)
	z := NewZoneSet(f, 5)
	r := xrand.New(3)
	vals := make([]float64, 5)
	for i := 0; i < 40; i++ {
		for j := range vals {
			vals[j] = 20 + 10*r.Float64()
		}
		if err := z.Observe(vals); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := z.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w := NewZoneSet(f, 5)
	if err := w.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for j := range vals {
			vals[j] = 20 + 10*r.Float64()
		}
		z.Observe(vals)
		w.Observe(vals)
		a, b := z.PredictEach(), w.PredictEach()
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("zone %d diverged at step %d: %v vs %v", j, i, a[j], b[j])
			}
		}
	}

	wrong := NewZoneSet(f, 4)
	if err := wrong.Restore(snap); err == nil || !strings.Contains(err.Error(), "zones") {
		t.Fatalf("zone-count mismatch: %v", err)
	}
}
