package core

import (
	"testing"

	"mmogdc/internal/faults"
	"mmogdc/internal/predict"
)

// compareResilience extends the parallel-equivalence contract to the
// resilience accounting: every counter and per-center availability must
// be bit-identical across worker counts.
func compareResilience(t *testing.T, a, b *Resilience) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("resilience missing: %v / %v", a, b)
	}
	if a.Outages != b.Outages || a.FullOutages != b.FullOutages || a.PartialOutages != b.PartialOutages {
		t.Fatalf("outage counts differ: %d/%d full %d/%d partial %d/%d",
			a.Outages, b.Outages, a.FullOutages, b.FullOutages, a.PartialOutages, b.PartialOutages)
	}
	if a.CapacityRecovered != b.CapacityRecovered || a.ServiceRecovered != b.ServiceRecovered {
		t.Fatalf("recovery counts differ: capacity %d/%d service %d/%d",
			a.CapacityRecovered, b.CapacityRecovered, a.ServiceRecovered, b.ServiceRecovered)
	}
	if !bitsEqual(a.MeanTimeToRecoverTicks, b.MeanTimeToRecoverTicks) {
		t.Fatalf("MTTR differs: %v != %v", a.MeanTimeToRecoverTicks, b.MeanTimeToRecoverTicks)
	}
	if a.Failovers != b.Failovers || a.FailoverLeases != b.FailoverLeases || a.Retries != b.Retries {
		t.Fatalf("failover/retry counts differ: %d/%d leases %d/%d retries %d/%d",
			a.Failovers, b.Failovers, a.FailoverLeases, b.FailoverLeases, a.Retries, b.Retries)
	}
	if a.Rejections != b.Rejections || a.PartialGrants != b.PartialGrants || a.DroppedSamples != b.DroppedSamples {
		t.Fatalf("injection counts differ: rejections %d/%d partials %d/%d dropped %d/%d",
			a.Rejections, b.Rejections, a.PartialGrants, b.PartialGrants, a.DroppedSamples, b.DroppedSamples)
	}
	if !bitsEqual(a.CapacityLostCPUTicks, b.CapacityLostCPUTicks) {
		t.Fatalf("CapacityLostCPUTicks differs: %v != %v", a.CapacityLostCPUTicks, b.CapacityLostCPUTicks)
	}
	if a.RegionBlackouts != b.RegionBlackouts || a.FailoversDeferred != b.FailoversDeferred ||
		a.BrownoutTicks != b.BrownoutTicks || a.ShedLeases != b.ShedLeases ||
		a.TimeToFullRecoveryTicks != b.TimeToFullRecoveryTicks {
		t.Fatalf("chaos counters differ: blackouts %d/%d deferred %d/%d brownout %d/%d shed %d/%d ttfr %d/%d",
			a.RegionBlackouts, b.RegionBlackouts, a.FailoversDeferred, b.FailoversDeferred,
			a.BrownoutTicks, b.BrownoutTicks, a.ShedLeases, b.ShedLeases,
			a.TimeToFullRecoveryTicks, b.TimeToFullRecoveryTicks)
	}
	if !bitsEqual(a.ShedPlayerTicks, b.ShedPlayerTicks) {
		t.Fatalf("ShedPlayerTicks differs: %v != %v", a.ShedPlayerTicks, b.ShedPlayerTicks)
	}
	if len(a.Availability) != len(b.Availability) {
		t.Fatalf("Availability size %d != %d", len(a.Availability), len(b.Availability))
	}
	for name, v := range a.Availability {
		if w, ok := b.Availability[name]; !ok || !bitsEqual(v, w) {
			t.Fatalf("Availability[%q]: %v != %v", name, v, w)
		}
	}
}

// chaosFaults is a fault mix that exercises every injection channel on
// the equivalence trace: outages (full and partial), grant rejections,
// partial grants, and monitoring dropouts.
func chaosFaults(seed uint64) *faults.Config {
	return &faults.Config{
		Seed:             seed,
		MTBFTicks:        120,
		MTTRTicks:        25,
		DegradedShare:    0.5,
		RejectProb:       0.05,
		PartialGrantProb: 0.05,
		DropoutProb:      0.03,
	}
}

// TestFaultPlanDeterministicAcrossWorkers is the determinism contract
// of the fault injector: a stochastic-fault run must be bit-identical
// for any worker count, including every resilience counter.
func TestFaultPlanDeterministicAcrossWorkers(t *testing.T) {
	mk := func(workers int) *Result {
		cfg := equivalenceConfig(workers)
		cfg.Faults = chaosFaults(11)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par, auto := mk(1), mk(8), mk(0)
	compareResults(t, seq, par)
	compareResults(t, seq, auto)
	compareResilience(t, seq.Resilience, par.Resilience)
	compareResilience(t, seq.Resilience, auto.Resilience)
	// The chaos mix must actually inject: a vacuous pass proves nothing.
	r := seq.Resilience
	if r.Outages == 0 || r.Rejections == 0 || r.DroppedSamples == 0 {
		t.Fatalf("chaos run injected nothing: %+v", r)
	}
}

// TestOverlappingFailureWindowsCompose is the regression test for the
// refcounted fail/recover state. Two scheduled windows on one center,
// [10, 40) and [20, 30): before refcounting, the inner window's
// recovery at tick 30 revived the center while the outer window still
// had ten ticks to run.
func TestOverlappingFailureWindowsCompose(t *testing.T) {
	ds := syntheticDataset(4, 200, 1200)
	res, err := Run(Config{
		Centers: fineCenters(20),
		Failures: []Failure{
			{Center: "dc", AtTick: 10, DurationTicks: 30},
			{Center: "dc", AtTick: 20, DurationTicks: 10},
		},
		Workloads: []Workload{{
			Game: testGame(), Dataset: ds, Predictor: predict.NewLastValue(),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tick t scores at UnderPct[t-1]. Between the inner recovery (30)
	// and the outer one (40) the only center must still be dark.
	for tick := 31; tick < 40; tick++ {
		if u := res.UnderPct[tick-1]; u > -10 {
			t.Fatalf("tick %d: under-allocation %v — inner recovery revived a center the outer window still holds", tick, u)
		}
	}
	// After the outer recovery the operator re-acquires within a tick.
	if u := res.UnderPct[41]; u < -1 {
		t.Fatalf("post-recovery under-allocation %v, want healed", u)
	}
	// The merged window is one outage, fully recovered.
	r := res.Resilience
	if r.Outages != 1 || r.FullOutages != 1 || r.CapacityRecovered != 1 {
		t.Fatalf("overlapping windows should merge into one recovered full outage, got %+v", r)
	}
}

// TestFaultInjectionInvariants drives the full chaos mix across seeds
// and checks structural invariants of the resilience accounting and of
// the capacity model under degradation.
func TestFaultInjectionInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ds := syntheticDataset(6, 400, 1400)
		centers := fineCenters(25)
		cfg := Config{
			Centers: centers,
			Faults: &faults.Config{
				Seed:             seed,
				MTBFTicks:        80,
				MTTRTicks:        20,
				DegradedShare:    0.5,
				RejectProb:       0.05,
				PartialGrantProb: 0.05,
				DropoutProb:      0.1,
			},
			Workloads: []Workload{{
				Game: testGame(), Dataset: ds, Predictor: predict.NewLastValue(),
			}},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := res.Resilience
		if r == nil {
			t.Fatal("resilience missing")
		}
		// Every plan-generated outage ends inside the run, so capacity
		// always comes back.
		if r.CapacityRecovered != r.Outages {
			t.Fatalf("seed %d: %d outages but %d recovered — an injected outage outlived the run", seed, r.Outages, r.CapacityRecovered)
		}
		if r.FullOutages+r.PartialOutages != r.Outages {
			t.Fatalf("seed %d: outage classification %d+%d != %d", seed, r.FullOutages, r.PartialOutages, r.Outages)
		}
		for name, av := range r.Availability {
			if av < 0 || av > 1+1e-9 {
				t.Fatalf("seed %d: availability[%s] = %v outside [0,1]", seed, name, av)
			}
		}
		if r.CapacityLostCPUTicks < 0 {
			t.Fatalf("seed %d: negative capacity lost %v", seed, r.CapacityLostCPUTicks)
		}
		if r.Outages > 0 && r.CapacityLostCPUTicks <= 0 {
			t.Fatalf("seed %d: %d outages but no capacity lost", seed, r.Outages)
		}
		if r.DroppedSamples == 0 {
			t.Fatalf("seed %d: 10%% dropout rate produced no dropped samples over %d ticks", seed, res.Ticks)
		}
		if r.MeanTimeToRecoverTicks < 0 {
			t.Fatalf("seed %d: negative MTTR %v", seed, r.MeanTimeToRecoverTicks)
		}
		// Degradation must never leave a center over-committed.
		for _, c := range centers {
			if !c.Allocated().FitsWithin(c.Capacity()) {
				t.Fatalf("seed %d: center %s over-committed after faulted run", seed, c.Name)
			}
			if c.Offline() {
				t.Fatalf("seed %d: center %s still offline after the run", seed, c.Name)
			}
		}
	}
}

// TestFaultConfigValidatedByRun ensures a bad injector config is a
// configuration error, not a silent no-op.
func TestFaultConfigValidatedByRun(t *testing.T) {
	ds := syntheticDataset(2, 50, 900)
	_, err := Run(Config{
		Centers: fineCenters(10),
		Faults:  &faults.Config{Seed: 1, RejectProb: 1.5},
		Workloads: []Workload{{
			Game: testGame(), Dataset: ds, Predictor: predict.NewLastValue(),
		}},
	})
	if err == nil {
		t.Fatal("invalid fault config accepted")
	}
}
