// Package par provides a small reusable worker pool for data-parallel
// loops over index ranges. The provisioning simulation fans its
// per-zone tick work out over one pool per run, and the experiment
// sweeps use the package-level Map to run independent simulations
// concurrently.
//
// The pool is deliberately minimal: a fixed set of resident workers, a
// ForRanges primitive that splits [0, n) into contiguous chunks claimed
// from an atomic cursor (work stealing at chunk granularity, so uneven
// per-index cost still balances while tiny per-item bodies are not
// dispatched one at a time), the per-index For/ForWorker built on top,
// and a generic Map. The caller always executes one share of the loop
// itself, which makes nested or concurrent For calls deadlock-free even
// when every resident worker is busy: forward progress never depends on
// a worker becoming available.
//
// Chunked distribution matters twice for the simulation's tick loop:
// it divides the cursor contention by the chunk size (one atomic
// fetch-add per chunk instead of per index), and it hands each worker
// contiguous index ranges, so workers writing to adjacent slots of a
// shared output slice (e.g. core's per-zone partials) touch disjoint
// cache-line runs instead of interleaving write-hot lines.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs index-parallel loops on a fixed set of reusable workers.
// A Pool with one worker executes everything inline on the caller's
// goroutine — byte-for-byte the sequential behavior, with no
// goroutines spawned. Pools are safe for concurrent use.
type Pool struct {
	workers int
	tasks   chan func()
	close   sync.Once

	// Utilization counters (see Stats). They observe the pool, never
	// steer it, so reading them has no effect on scheduling.
	forCalls      atomic.Int64
	callerIndices atomic.Int64
	helperIndices atomic.Int64
	helperSkips   atomic.Int64
}

// Stats is a snapshot of a pool's cumulative utilization counters:
// how many For loops ran, how the loop indices split between the
// caller's share and the resident helpers (the work-stealing balance),
// and how often a helper dispatch was skipped because every resident
// worker was busy. Counters only grow; rates come from deltas.
type Stats struct {
	ForCalls      int64
	CallerIndices int64
	HelperIndices int64
	HelperSkips   int64
}

// Stats returns the pool's cumulative utilization counters. Safe for
// concurrent use; the fields are read individually, so a snapshot taken
// while a For is in flight may tear across fields (each field is still
// exact).
func (p *Pool) Stats() Stats {
	return Stats{
		ForCalls:      p.forCalls.Load(),
		CallerIndices: p.callerIndices.Load(),
		HelperIndices: p.helperIndices.Load(),
		HelperSkips:   p.helperSkips.Load(),
	}
}

// New builds a pool. workers <= 0 sizes it by GOMAXPROCS. A pool with
// more than one worker owns workers-1 resident goroutines (the caller
// of For contributes the remaining share) and must be released with
// Close when no longer needed.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan func(), workers-1)
		for i := 0; i < workers-1; i++ {
			go func() {
				for f := range p.tasks {
					f()
				}
			}()
		}
	}
	return p
}

// Workers returns the pool's parallelism (including the caller).
func (p *Pool) Workers() int { return p.workers }

// Close releases the resident workers. For must not be called after
// Close. Closing a sequential (one-worker) pool is a no-op; Close is
// idempotent.
func (p *Pool) Close() {
	if p.tasks != nil {
		p.close.Do(func() { close(p.tasks) })
	}
}

// For runs fn(i) for every i in [0, n), distributing the indices over
// the pool, and returns when all calls have finished. Distinct indices
// may run concurrently; fn must not assume any ordering. A panic in fn
// is re-raised on the caller's goroutine after the loop drains.
func (p *Pool) For(n int, fn func(i int)) {
	p.ForWorker(n, func(i, _ int) { fn(i) })
}

// ForWorker is For with the executing worker's index passed alongside
// each loop index: 0 is the caller's goroutine, 1..Workers()-1 the
// resident helpers. Telemetry uses it to annotate per-index spans with
// the worker that ran them; the index identifies an executor, it
// promises nothing about scheduling. Indices are claimed one at a
// time (chunk = 1), which balances wildly uneven per-index costs; for
// many small uniform bodies prefer ForRanges, which amortizes the
// claim over a whole chunk.
func (p *Pool) ForWorker(n int, fn func(i, worker int)) {
	p.ForRanges(n, 1, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			fn(i, worker)
		}
	})
}

// ForRanges runs fn over contiguous sub-ranges [lo, hi) that exactly
// cover [0, n), distributing the ranges over the pool, and returns
// when all calls have finished. Workers claim one chunk-sized range at
// a time from a shared cursor, so the cost of claiming work is paid
// once per chunk rather than once per index, and each worker owns a
// contiguous run of indices — callers that write fn's results into a
// shared slice get cache-line-disjoint write regions for free.
//
// chunk <= 0 selects an automatic granularity of roughly
// n/(4*Workers()), clamped to at least 1: four claim rounds per worker
// keeps stealing effective when per-range costs are uneven without
// paying per-index dispatch. Distinct ranges may run concurrently and
// in any order; worker 0 is the caller's goroutine. A panic in fn is
// re-raised on the caller's goroutine after the loop drains.
func (p *Pool) ForRanges(n, chunk int, fn func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = n / (4 * p.workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	p.forCalls.Add(1)
	if p.workers == 1 || n <= chunk {
		fn(0, n, 0)
		p.callerIndices.Add(int64(n))
		return
	}
	var (
		cursor   atomic.Int64
		panicMu  sync.Mutex
		panicVal any
		panicked bool
	)
	share := func(counter *atomic.Int64, worker int) {
		var done int64
		defer func() {
			counter.Add(done)
			if r := recover(); r != nil {
				panicMu.Lock()
				if !panicked {
					panicked, panicVal = true, r
				}
				panicMu.Unlock()
				// Stop handing out further ranges; the loop still
				// drains so no goroutine is left behind.
				cursor.Store(int64(n))
			}
		}()
		for {
			lo := cursor.Add(int64(chunk)) - int64(chunk)
			if lo >= int64(n) {
				return
			}
			hi := lo + int64(chunk)
			if hi > int64(n) {
				hi = int64(n)
			}
			fn(int(lo), int(hi), worker)
			done += hi - lo
		}
	}
	chunks := (n + chunk - 1) / chunk
	helpers := p.workers - 1
	if chunks-1 < helpers {
		helpers = chunks - 1
	}
	var wg sync.WaitGroup
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		worker := i + 1
		task := func() {
			defer wg.Done()
			share(&p.helperIndices, worker)
		}
		select {
		case p.tasks <- task:
		default:
			// Every resident worker is busy (nested or concurrent For):
			// skip the helper, the caller's share covers its ranges.
			p.helperSkips.Add(1)
			wg.Done()
		}
	}
	share(&p.callerIndices, 0)
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}

// Map runs fn(0..n-1) on the pool and returns the collected results in
// index order, or the first (lowest-index) error encountered. All n
// calls run even when an early index fails.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	p.For(n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
