package slo

import (
	"strings"
	"testing"
	"time"

	"mmogdc/internal/obs"
)

var t0 = time.Date(2008, 3, 1, 0, 0, 0, 0, time.UTC)

func breachRule(short, long float64) RuleConfig {
	return RuleConfig{
		Name: "breach", Signal: SignalBreachRate, Game: "g",
		Objective: 0.01, ShortWindowS: short, LongWindowS: long, BurnFactor: 1,
	}
}

func TestValidateRules(t *testing.T) {
	good := breachRule(60, 600)
	if err := ValidateRules([]RuleConfig{good}); err != nil {
		t.Fatal(err)
	}
	bad := []RuleConfig{
		{},
		{Name: "x", Signal: "nope", Objective: 0.1, ShortWindowS: 1, LongWindowS: 2},
		{Name: "x", Signal: SignalShedRate, Objective: 0, ShortWindowS: 1, LongWindowS: 2},
		{Name: "x", Signal: SignalShedRate, Objective: 1, ShortWindowS: 1, LongWindowS: 2},
		{Name: "x", Signal: SignalShedRate, Objective: 0.1, ShortWindowS: 0, LongWindowS: 2},
		{Name: "x", Signal: SignalShedRate, Objective: 0.1, ShortWindowS: 2, LongWindowS: 2},
		{Name: "x", Signal: SignalObserveLatency, Objective: 0.1, ShortWindowS: 1, LongWindowS: 2},
	}
	for i, rc := range bad {
		if err := ValidateRules([]RuleConfig{rc}); err == nil {
			t.Errorf("bad rule %d accepted: %+v", i, rc)
		}
	}
	if err := ValidateRules([]RuleConfig{good, good}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate names accepted: %v", err)
	}
}

// A sustained full-burn signal must fire on the second evaluation —
// the first reading is only a baseline — even though the long window
// is far from full: detection lag is what the engine exists to
// minimize.
func TestEngineFiresFastAndResolves(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(0)
	lg := obs.L("game", "g")
	badC := reg.Counter("mmogdc_operator_disruptive_ticks_total", "", lg)
	ticksC := reg.Counter("mmogdc_operator_ticks_total", "", lg)

	e, err := NewEngine([]RuleConfig{breachRule(3, 60)}, reg, rec, "g")
	if err != nil {
		t.Fatal(err)
	}

	now := t0
	stepBad := func(tick int) {
		ticksC.Inc()
		badC.Inc()
		e.Eval("g", tick, now)
		now = now.Add(time.Second)
	}
	stepGood := func(tick int) {
		ticksC.Inc()
		e.Eval("g", tick, now)
		now = now.Add(time.Second)
	}

	stepBad(0)
	if got := e.Firing(); len(got) != 0 {
		t.Fatalf("fired on the baseline reading: %v", got)
	}
	stepBad(1)
	if got := e.Firing(); len(got) != 1 || got[0] != "breach" {
		t.Fatalf("not firing after 2 bad ticks: %v", got)
	}
	if v := reg.Gauge("mmogdc_slo_alert_active", "", obs.L("rule", "breach")).Value(); v != 1 {
		t.Fatalf("active gauge = %v, want 1", v)
	}

	// Recovery: once the short window holds only good ticks the alert
	// resolves, regardless of the still-burning long window.
	for tick := 2; tick < 7; tick++ {
		stepGood(tick)
	}
	if got := e.Firing(); len(got) != 0 {
		t.Fatalf("still firing after recovery: %v", got)
	}
	if v := reg.Gauge("mmogdc_slo_alert_active", "", obs.L("rule", "breach")).Value(); v != 0 {
		t.Fatalf("active gauge = %v, want 0", v)
	}

	var firing, resolved []obs.Event
	for _, ev := range rec.Events() {
		if ev.Kind != obs.EventSLOAlert {
			continue
		}
		switch ev.Detail {
		case "firing":
			firing = append(firing, ev)
		case "resolved":
			resolved = append(resolved, ev)
		}
	}
	if len(firing) != 1 || firing[0].Tick != 1 || firing[0].Subject != "breach" {
		t.Fatalf("firing events: %+v", firing)
	}
	if len(resolved) != 1 || resolved[0].Tick <= firing[0].Tick {
		t.Fatalf("resolved events: %+v", resolved)
	}
	if firing[0].Value < 1 {
		t.Fatalf("firing burn = %v, want >= factor 1", firing[0].Value)
	}
}

// A transient blip must not fire: the short window burns but the long
// window dilutes it below the factor.
func TestEngineLongWindowSuppressesBlips(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(0)
	lg := obs.L("game", "g")
	badC := reg.Counter("mmogdc_operator_disruptive_ticks_total", "", lg)
	ticksC := reg.Counter("mmogdc_operator_ticks_total", "", lg)

	// Objective 0.5 with burn factor 2: fire only when essentially
	// every tick in BOTH windows is bad.
	rule := RuleConfig{Name: "r", Signal: SignalBreachRate, Game: "g",
		Objective: 0.5, ShortWindowS: 2, LongWindowS: 10, BurnFactor: 2}
	e, err := NewEngine([]RuleConfig{rule}, reg, rec, "g")
	if err != nil {
		t.Fatal(err)
	}

	now := t0
	for tick := 0; tick < 20; tick++ {
		ticksC.Inc()
		if tick == 10 { // one bad tick in twenty
			badC.Inc()
		}
		e.Eval("g", tick, now)
		now = now.Add(time.Second)
	}
	if got := e.Firing(); len(got) != 0 {
		t.Fatalf("blip fired the alert: %v", got)
	}
	for _, ev := range rec.Events() {
		if ev.Kind == obs.EventSLOAlert {
			t.Fatalf("unexpected alert event: %+v", ev)
		}
	}
}

func TestEngineLatencySignal(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(0)
	lg := obs.L("game", "g")
	h := reg.Histogram("mmogdc_daemon_observe_loop_seconds", "", obs.TimeBuckets, lg)

	rule := RuleConfig{Name: "slow", Signal: SignalObserveLatency, Game: "g",
		Objective: 0.1, LatencyObjectiveMS: 100, ShortWindowS: 2, LongWindowS: 8}
	e, err := NewEngine([]RuleConfig{rule}, reg, rec, "g")
	if err != nil {
		t.Fatal(err)
	}

	now := t0
	// Baseline of fast loops, then a run of slow ones.
	for tick := 0; tick < 10; tick++ {
		if tick < 4 {
			h.Observe(0.001)
		} else {
			h.Observe(1.5) // far over the 100ms objective
		}
		e.Eval("g", tick, now)
		now = now.Add(time.Second)
	}
	if got := e.Firing(); len(got) != 1 {
		t.Fatalf("latency rule not firing: %v", got)
	}
}

func TestEngineDefaultGameAndDeactivate(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(0)
	lg := obs.L("game", "live")
	badC := reg.Counter("mmogdc_operator_disruptive_ticks_total", "", lg)
	ticksC := reg.Counter("mmogdc_operator_ticks_total", "", lg)

	rule := breachRule(2, 8)
	rule.Game = "" // resolves to the default game
	e, err := NewEngine([]RuleConfig{rule}, reg, rec, "live")
	if err != nil {
		t.Fatal(err)
	}
	now := t0
	for tick := 0; tick < 3; tick++ {
		ticksC.Inc()
		badC.Inc()
		e.Eval("live", tick, now)
		now = now.Add(time.Second)
	}
	if got := e.Firing(); len(got) != 1 {
		t.Fatalf("default-game rule not firing: %v", got)
	}
	e.Deactivate()
	if got := e.Firing(); len(got) != 0 {
		t.Fatalf("Deactivate left rules firing: %v", got)
	}
	if v := reg.Gauge("mmogdc_slo_alert_active", "", obs.L("rule", "breach")).Value(); v != 0 {
		t.Fatalf("active gauge = %v after Deactivate", v)
	}
}

func TestEngineNilSafety(t *testing.T) {
	var e *Engine
	e.Eval("g", 0, t0)
	e.Deactivate()
	if e.Firing() != nil {
		t.Fatal("nil engine firing")
	}
}

func TestNewEngineRejectsBadRules(t *testing.T) {
	if _, err := NewEngine([]RuleConfig{{Name: "x"}}, obs.NewRegistry(), nil, "g"); err == nil {
		t.Fatal("invalid rule compiled")
	}
}
