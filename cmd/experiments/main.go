// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig08 [-days 14] [-seed 42] [-quick]
//	experiments -all
//
// Each experiment prints a plain-text report; DESIGN.md maps the
// experiment IDs to the paper artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mmogdc/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list the available experiments")
		run    = flag.String("run", "", "run one experiment by id (e.g. tab05)")
		all    = flag.Bool("all", false, "run every experiment in paper order")
		days   = flag.Int("days", 0, "provisioning trace length in days (default 14)")
		seed   = flag.Uint64("seed", 0, "random seed (default 42)")
		quick  = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		outDir = flag.String("out", "", "also write each report to <dir>/<id>.txt")
	)
	flag.Parse()
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	writeOut = *outDir

	opts := experiments.Options{Days: *days, Seed: *seed, Quick: *quick}

	switch {
	case *list:
		for _, s := range experiments.All() {
			fmt.Printf("%-7s %-24s %s\n", s.ID, s.Artifact, s.Title)
		}
	case *run != "":
		spec, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		execute(spec, opts)
	case *all:
		for _, s := range experiments.All() {
			execute(s, opts)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeOut is the optional per-report output directory.
var writeOut string

func execute(s experiments.Spec, opts experiments.Options) {
	start := time.Now()
	out, err := s.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", s.ID, err)
		os.Exit(1)
	}
	fmt.Printf("==== %s (%s) ====\n\n%s\n[%s in %.1fs]\n\n", s.ID, s.Artifact, out, s.ID, time.Since(start).Seconds())
	if writeOut != "" {
		path := filepath.Join(writeOut, s.ID+".txt")
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.ID, err)
			os.Exit(1)
		}
	}
}
