// Command analyze characterizes an MMOG population trace the way the
// paper's Section III characterizes RuneScape: per-region load ranges,
// cross-group variability (IQR), autocorrelation structure (diurnal
// cycle detection), saturated-world detection, and an ASCII chart of
// the global population.
//
// Usage:
//
//	tracegen -days 14 -out trace.csv && analyze -trace trace.csv
//	analyze                      # analyze a freshly generated trace
package main

import (
	"flag"
	"fmt"
	"os"

	"mmogdc/internal/analysis"
	"mmogdc/internal/plot"
	"mmogdc/internal/trace"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "CSV trace to analyze (default: generate one)")
		days      = flag.Int("days", 14, "days to generate when no trace is given")
		seed      = flag.Uint64("seed", 42, "seed for the generated trace")
	)
	flag.Parse()

	var ds *trace.Dataset
	if *traceFile == "" {
		ds = trace.Generate(trace.Config{Seed: *seed, Days: *days})
	} else {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		var rerr error
		ds, rerr = trace.ReadCSV(f)
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
	}

	global, err := ds.GlobalLoad()
	if err != nil {
		fatal(err)
	}
	chart := plot.Chart{
		Title:  "global active concurrent players",
		YLabel: "players", XLabel: "time",
		Series: []plot.Series{{Name: "population", Values: global.Resample(30).Values}},
	}
	fmt.Print(chart.Render())
	fmt.Println()

	report, err := analysis.Characterize(ds)
	if err != nil {
		fatal(err)
	}
	fmt.Print(report.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
