#!/usr/bin/env sh
# CI entry point — equivalent to `make ci` for environments without
# make. Keeps the race detector on the full suite so the parallel
# per-zone engine in internal/core is re-proven on every PR.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -bench CoreRun -benchtime 1x .

# Fault-injection smoke: a short chaos run under the race detector must
# finish and report its resilience accounting (the stochastic injector,
# failover, and backoff paths all exercise the parallel engine).
go run -race ./cmd/mmogsim -days 1 -predictor lastvalue \
	-mtbf 150 -mttr 25 -fault-seed 7 \
	-fault-reject 0.05 -fault-dropout 0.02 -fault-degraded 0.5 \
	| grep 'outages:' > /dev/null
