// Package faults implements the seeded, deterministic stochastic
// fault injector of the resilience experiments. The paper collected
// its traces from a live ecosystem that was anything but clean —
// centers disappear, monitoring samples go missing, hosters refuse or
// trim requests — and Section VI studies over-provisioning precisely
// because of that churn. This package turns those messy realities into
// a reproducible fault plan:
//
//   - center outages drawn from MTBF/MTTR exponential distributions,
//     either full (the center goes dark) or partial (it loses a
//     fraction of its machines but keeps serving);
//   - lease-grant rejections and partial grants with configurable
//     probabilities (a hoster vetoing or trimming an otherwise
//     admissible request);
//   - monitoring dropouts: per-zone load samples that never arrive,
//     as in the real RuneScape website scrape.
//
// Everything is pre-generated or derived from pure functions of the
// seed, so a fault-injected simulation is bit-identical for any
// worker count: the outage schedule is fixed before the run starts,
// dropout decisions are a stateless hash of (seed, zone, tick), and
// grant faults consume a dedicated sequential stream driven only by
// the (deterministic) sequence of grant attempts.
package faults

import (
	"fmt"
	"sort"

	"mmogdc/internal/xrand"
)

// Config parameterizes the injector. The zero value injects nothing.
type Config struct {
	// Seed drives every stochastic choice; the same seed reproduces
	// the identical fault plan and grant-fault stream.
	Seed uint64
	// MTBFTicks is the mean number of healthy ticks between outages
	// per center (exponentially distributed); 0 disables outages.
	MTBFTicks float64
	// MTTRTicks is the mean outage duration in ticks (exponentially
	// distributed, minimum 1); defaults to 10 when outages are on.
	MTTRTicks float64
	// DegradedShare is the probability that an outage is partial — the
	// center loses a uniform 10–90% of its machines instead of going
	// fully dark. 0 makes every outage full.
	DegradedShare float64
	// RejectProb is the probability that one center's grant attempt is
	// rejected outright during matching.
	RejectProb float64
	// PartialGrantProb is the probability that a non-rejected grant is
	// trimmed to a uniform 25–75% of the attempted amount.
	PartialGrantProb float64
	// DropoutProb is the probability that one zone's monitoring sample
	// is missing at one tick (the operator must carry the last
	// observation forward).
	DropoutProb float64
	// OperatorCrashMTBFTicks is the mean number of ticks between
	// operator process crashes (exponentially distributed); 0 disables
	// them. Crashes do not touch the ecosystem — the centers keep the
	// crashed operator's leases — they mark the ticks at which a
	// crash-recovery harness kills and restores the operator.
	OperatorCrashMTBFTicks float64

	// Regions maps center name → failure-domain name for the correlated
	// outage model below. Centers absent from the map never join a
	// region blackout. Callers that know center locations typically fill
	// it from geo.RegionOf; a nil map with no region faults configured
	// is the (default) uncorrelated model.
	Regions map[string]string
	// RegionMTBFTicks is the mean number of healthy ticks between
	// whole-region blackouts per region (exponentially distributed);
	// 0 disables the stochastic blackout process. A blackout downs
	// every center of the region at once — the correlated failure mode
	// independent per-center MTBF draws cannot produce.
	RegionMTBFTicks float64
	// RegionMTTRTicks is the mean blackout duration in ticks
	// (exponentially distributed, minimum 1); defaults to 10 when
	// region blackouts are on.
	RegionMTTRTicks float64
	// AftershockProb is the probability that one center of a recovering
	// region suffers a partial-degradation aftershock — it comes back
	// at reduced capacity for a while before restoring fully.
	AftershockProb float64
	// AftershockMeanTicks is the mean aftershock duration in ticks
	// (exponentially distributed, minimum 1); defaults to 5 when
	// aftershocks are on.
	AftershockMeanTicks float64
	// ScheduledBlackouts adds deterministic region blackouts at fixed
	// ticks, independent of the stochastic process — the scenario-corpus
	// hook ("region eu goes dark at peak").
	ScheduledBlackouts []RegionBlackout
}

// RegionBlackout is one deterministic whole-region outage window:
// every center of Region fails at Start and recovers Duration ticks
// later (clamped inside the run).
type RegionBlackout struct {
	Region   string
	Start    int
	Duration int
}

// Enabled reports whether the configuration injects anything at all.
func (c Config) Enabled() bool {
	return c.MTBFTicks > 0 || c.RejectProb > 0 || c.PartialGrantProb > 0 ||
		c.DropoutProb > 0 || c.OperatorCrashMTBFTicks > 0 ||
		c.RegionMTBFTicks > 0 || len(c.ScheduledBlackouts) > 0
}

// CorrelatedEnabled reports whether the configuration injects
// region-correlated faults (stochastic blackouts or a scheduled
// corpus). Callers use it to decide whether to derive a region
// topology for the centers.
func (c Config) CorrelatedEnabled() bool {
	return c.RegionMTBFTicks > 0 || len(c.ScheduledBlackouts) > 0
}

// effectiveMTTR applies the NewPlan default so validation judges the
// repair time that will actually be used.
func effectiveMTTR(mttr, def float64) float64 {
	if mttr <= 0 {
		return def
	}
	return mttr
}

// Validate rejects configurations outside the model's domain.
func (c Config) Validate() error {
	if c.MTBFTicks < 0 || c.MTTRTicks < 0 {
		return fmt.Errorf("faults: MTBF/MTTR must be >= 0 (got %v/%v)", c.MTBFTicks, c.MTTRTicks)
	}
	if c.MTBFTicks > 0 {
		if mttr := effectiveMTTR(c.MTTRTicks, 10); mttr >= c.MTBFTicks {
			return fmt.Errorf("faults: MTTR (%v) must be < MTBF (%v) — repairs at least as slow as failures keep centers permanently down", mttr, c.MTBFTicks)
		}
	}
	if c.OperatorCrashMTBFTicks < 0 {
		return fmt.Errorf("faults: OperatorCrashMTBFTicks must be >= 0 (got %v)", c.OperatorCrashMTBFTicks)
	}
	if c.RegionMTBFTicks < 0 || c.RegionMTTRTicks < 0 {
		return fmt.Errorf("faults: region MTBF/MTTR must be >= 0 (got %v/%v)", c.RegionMTBFTicks, c.RegionMTTRTicks)
	}
	if c.RegionMTBFTicks > 0 {
		if mttr := effectiveMTTR(c.RegionMTTRTicks, 10); mttr >= c.RegionMTBFTicks {
			return fmt.Errorf("faults: region MTTR (%v) must be < region MTBF (%v) — repairs at least as slow as failures keep regions permanently dark", mttr, c.RegionMTBFTicks)
		}
	}
	if c.AftershockMeanTicks < 0 {
		return fmt.Errorf("faults: AftershockMeanTicks must be >= 0 (got %v)", c.AftershockMeanTicks)
	}
	for i, b := range c.ScheduledBlackouts {
		if b.Region == "" {
			return fmt.Errorf("faults: ScheduledBlackouts[%d] has no region", i)
		}
		if b.Start < 0 || b.Duration < 1 {
			return fmt.Errorf("faults: ScheduledBlackouts[%d] (%s) needs Start >= 0 and Duration >= 1 (got %d/%d)", i, b.Region, b.Start, b.Duration)
		}
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DegradedShare", c.DegradedShare},
		{"RejectProb", c.RejectProb},
		{"PartialGrantProb", c.PartialGrantProb},
		{"DropoutProb", c.DropoutProb},
		{"AftershockProb", c.AftershockProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s must be in [0,1], got %v", p.name, p.v)
		}
	}
	return nil
}

// Outage is one fault window of a center: Fail (or Degrade) fires at
// Start, the matching Recover (or Restore) at End. End is always
// clamped inside the run, so every generated outage recovers before
// the simulation finishes.
type Outage struct {
	// Center is the affected center's name.
	Center string
	// Start and End delimit the window in ticks: [Start, End).
	Start, End int
	// Fraction is the share of the center's machines lost: 1 is a full
	// outage, anything below is a partial capacity degradation.
	Fraction float64
	// Region names the failure domain when the window belongs to a
	// correlated region event (blackout or aftershock); empty for the
	// independent per-center draws.
	Region string
}

// Blackout is one whole-region outage window: every mapped center of
// Region is dark over [Start, End).
type Blackout struct {
	Region     string
	Start, End int
}

// Plan is the pre-generated fault schedule of one run plus the
// sequential grant-fault stream. A nil *Plan is valid and injects
// nothing, so callers can thread it unconditionally.
type Plan struct {
	cfg        Config
	outages    []Outage
	failAt     map[int][]Outage
	recoverAt  map[int][]Outage
	blackouts  []Blackout
	blackStart map[int][]Blackout
	blackEnd   map[int][]Blackout
	crashes    []int
	grants     *xrand.Rand
	dropSeed   uint64
}

// NewPlan generates the fault schedule for a run of the given length
// over the named centers. The schedule is a pure function of the
// configuration, the center order, and ticks. Call Validate first;
// NewPlan assumes a valid configuration.
func NewPlan(cfg Config, centers []string, ticks int) *Plan {
	if cfg.MTBFTicks > 0 && cfg.MTTRTicks <= 0 {
		cfg.MTTRTicks = 10
	}
	root := xrand.New(cfg.Seed ^ 0x6fa17a1c5eed5a1d)
	p := &Plan{
		cfg:        cfg,
		failAt:     map[int][]Outage{},
		recoverAt:  map[int][]Outage{},
		blackStart: map[int][]Blackout{},
		blackEnd:   map[int][]Blackout{},
		grants:     root.Split(0x67a47),
		dropSeed:   root.Split(0xd0b0).Uint64(),
	}
	if cfg.MTBFTicks > 0 {
		for i, name := range centers {
			r := root.Split(uint64(i) + 1)
			t := 0
			for {
				start := t + 1 + int(r.Exp(cfg.MTBFTicks))
				if start >= ticks-1 {
					break
				}
				end := start + 1 + int(r.Exp(cfg.MTTRTicks))
				if end > ticks-1 {
					end = ticks - 1
				}
				frac := 1.0
				if r.Bool(cfg.DegradedShare) {
					frac = 0.1 + 0.8*r.Float64()
				}
				p.outages = append(p.outages, Outage{Center: name, Start: start, End: end, Fraction: frac})
				t = end
			}
		}
	}
	if cfg.OperatorCrashMTBFTicks > 0 {
		// The crash schedule consumes its own split stream, so turning
		// crashes on or off never perturbs the outage or grant streams.
		r := root.Split(0xc4a54)
		t := 0
		for {
			t += 1 + int(r.Exp(cfg.OperatorCrashMTBFTicks))
			if t >= ticks-1 {
				break
			}
			p.crashes = append(p.crashes, t)
		}
	}
	if cfg.CorrelatedEnabled() {
		p.generateRegionFaults(root, centers, ticks)
	}
	// Stable: correlated region windows can legitimately tie an
	// independent draw on (Start, Center); generation order breaks the
	// tie deterministically. Without region faults no ties exist, so
	// the ordering is unchanged from the uncorrelated model.
	sort.SliceStable(p.outages, func(i, j int) bool {
		a, b := p.outages[i], p.outages[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Center < b.Center
	})
	for _, o := range p.outages {
		p.failAt[o.Start] = append(p.failAt[o.Start], o)
		p.recoverAt[o.End] = append(p.recoverAt[o.End], o)
	}
	sort.SliceStable(p.blackouts, func(i, j int) bool {
		a, b := p.blackouts[i], p.blackouts[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Region < b.Region
	})
	for _, b := range p.blackouts {
		p.blackStart[b.Start] = append(p.blackStart[b.Start], b)
		p.blackEnd[b.End] = append(p.blackEnd[b.End], b)
	}
	return p
}

// generateRegionFaults layers the correlated region-blackout schedule —
// deterministic corpus blackouts plus the stochastic per-region
// process — on top of the independent per-center draws. Every stream
// here is a fresh Split child of root, so enabling region faults never
// perturbs the per-center, crash, grant, or dropout draws (and
// vice versa: goldens without region faults stay bit-identical).
func (p *Plan) generateRegionFaults(root *xrand.Rand, centers []string, ticks int) {
	cfg := p.cfg
	byRegion := map[string][]string{}
	for _, name := range centers {
		if reg := cfg.Regions[name]; reg != "" {
			byRegion[reg] = append(byRegion[reg], name)
		}
	}
	aftMean := cfg.AftershockMeanTicks
	if aftMean <= 0 {
		aftMean = 5
	}
	addBlackout := func(region string, start, end int, r *xrand.Rand) {
		members := byRegion[region]
		if len(members) == 0 {
			return
		}
		p.blackouts = append(p.blackouts, Blackout{Region: region, Start: start, End: end})
		for _, name := range members {
			p.outages = append(p.outages, Outage{
				Center: name, Start: start, End: end, Fraction: 1, Region: region,
			})
			if cfg.AftershockProb > 0 && r.Bool(cfg.AftershockProb) {
				aEnd := end + 1 + int(r.Exp(aftMean))
				if aEnd > ticks-1 {
					aEnd = ticks - 1
				}
				frac := 0.2 + 0.6*r.Float64()
				if end < ticks-1 && aEnd > end {
					p.outages = append(p.outages, Outage{
						Center: name, Start: end, End: aEnd, Fraction: frac, Region: region,
					})
				}
			}
		}
	}
	// The deterministic corpus first, with its own aftershock stream.
	sa := root.Split(0x5afe7c)
	for _, b := range cfg.ScheduledBlackouts {
		if b.Start >= ticks-1 {
			continue
		}
		end := b.Start + b.Duration
		if end > ticks-1 {
			end = ticks - 1
		}
		addBlackout(b.Region, b.Start, end, sa)
	}
	// Then the stochastic process: one split stream per region, keyed
	// by the sorted region order so the schedule is independent of map
	// iteration and of which centers happen to exist.
	if cfg.RegionMTBFTicks > 0 {
		mttr := cfg.RegionMTTRTicks
		if mttr <= 0 {
			mttr = 10
		}
		regions := make([]string, 0, len(byRegion))
		for reg := range byRegion {
			regions = append(regions, reg)
		}
		sort.Strings(regions)
		regRoot := root.Split(0xb1ac0de)
		for ri, reg := range regions {
			r := regRoot.Split(uint64(ri) + 1)
			t := 0
			for {
				start := t + 1 + int(r.Exp(cfg.RegionMTBFTicks))
				if start >= ticks-1 {
					break
				}
				end := start + 1 + int(r.Exp(mttr))
				if end > ticks-1 {
					end = ticks - 1
				}
				addBlackout(reg, start, end, r)
				t = end
			}
		}
	}
}

// Outages returns the full schedule, ordered by start tick.
func (p *Plan) Outages() []Outage {
	if p == nil {
		return nil
	}
	return p.outages
}

// FailuresAt returns the outages beginning at tick t.
func (p *Plan) FailuresAt(t int) []Outage {
	if p == nil {
		return nil
	}
	return p.failAt[t]
}

// RecoveriesAt returns the outages ending at tick t.
func (p *Plan) RecoveriesAt(t int) []Outage {
	if p == nil {
		return nil
	}
	return p.recoverAt[t]
}

// Blackouts returns the whole-region outage windows (deterministic
// corpus plus the stochastic process), ordered by start tick.
func (p *Plan) Blackouts() []Blackout {
	if p == nil {
		return nil
	}
	return p.blackouts
}

// BlackoutsAt returns the region blackouts beginning at tick t.
func (p *Plan) BlackoutsAt(t int) []Blackout {
	if p == nil {
		return nil
	}
	return p.blackStart[t]
}

// BlackoutRecoveriesAt returns the region blackouts ending at tick t.
func (p *Plan) BlackoutRecoveriesAt(t int) []Blackout {
	if p == nil {
		return nil
	}
	return p.blackEnd[t]
}

// OperatorCrashes returns the ticks at which the operator process
// crashes, in ascending order.
func (p *Plan) OperatorCrashes() []int {
	if p == nil {
		return nil
	}
	return p.crashes
}

// SnapshotGrants captures the state of the sequential grant-fault
// stream so a checkpointed run can resume it mid-sequence; the other
// fault sources (outage schedule, dropout hash) are pure functions of
// the seed and need no snapshot.
func (p *Plan) SnapshotGrants() [4]uint64 {
	return p.grants.Snapshot()
}

// RestoreGrants re-establishes a grant-stream state captured by
// SnapshotGrants.
func (p *Plan) RestoreGrants(s [4]uint64) error {
	return p.grants.Restore(s)
}

// DropSample reports whether zone's monitoring sample at tick is
// missing. It is a pure function of (seed, zone, tick) — safe to call
// from parallel per-zone workers in any order without perturbing any
// stream.
func (p *Plan) DropSample(zone, tick int) bool {
	if p == nil || p.cfg.DropoutProb <= 0 {
		return false
	}
	h := p.dropSeed
	h ^= uint64(zone)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	h ^= uint64(tick) * 0xbf58476d1ce4e5b9
	// SplitMix64 finalizer: full avalanche so neighbouring
	// (zone, tick) pairs decorrelate.
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11)/(1<<53) < p.cfg.DropoutProb
}

// GrantFault decides the fate of one grant attempt at the named
// center: rejected outright, trimmed to frac of the attempt, or
// untouched (frac 1). It consumes the plan's sequential grant stream,
// so the caller must issue attempts in a deterministic order (the
// matching loop is sequential in both provisioning engines).
func (p *Plan) GrantFault(center string) (reject bool, frac float64) {
	if p == nil || (p.cfg.RejectProb <= 0 && p.cfg.PartialGrantProb <= 0) {
		return false, 1
	}
	if p.grants.Bool(p.cfg.RejectProb) {
		return true, 0
	}
	if p.grants.Bool(p.cfg.PartialGrantProb) {
		return false, 0.25 + 0.5*p.grants.Float64()
	}
	return false, 1
}
