package predict

import "fmt"

// ZoneSet runs one predictor per sub-zone and aggregates their
// outputs, implementing the paper's per-sub-zone prediction structure
// (Section IV-B): "the predictor uses as input the entity count for
// each sub-zone ... the predicted entity count for the entire game
// world is the sum of all the sub-zone predictions".
type ZoneSet struct {
	ps []Predictor
}

// NewZoneSet builds n independent predictors from the factory.
func NewZoneSet(f Factory, n int) *ZoneSet {
	z := &ZoneSet{ps: make([]Predictor, n)}
	for i := range z.ps {
		z.ps[i] = f()
	}
	return z
}

// Len returns the number of zones.
func (z *ZoneSet) Len() int { return len(z.ps) }

// Observe feeds the current per-zone values; len(values) must equal
// the zone count.
func (z *ZoneSet) Observe(values []float64) error {
	if len(values) != len(z.ps) {
		return fmt.Errorf("predict: observed %d zones, want %d", len(values), len(z.ps))
	}
	for i, v := range values {
		z.ps[i].Observe(v)
	}
	return nil
}

// PredictEach returns the per-zone next-step forecasts in a fresh
// slice.
func (z *ZoneSet) PredictEach() []float64 {
	return z.PredictEachInto(nil)
}

// PredictEachInto writes the per-zone next-step forecasts into dst,
// growing it if needed, and returns the filled slice. Passing the
// previous result back in makes per-tick forecasting allocation-free.
func (z *ZoneSet) PredictEachInto(dst []float64) []float64 {
	if cap(dst) < len(z.ps) {
		dst = make([]float64, len(z.ps))
	}
	dst = dst[:len(z.ps)]
	for i, p := range z.ps {
		dst[i] = p.Predict()
	}
	return dst
}

// PredictTotal returns the whole-world forecast: the sum of all
// sub-zone predictions.
func (z *ZoneSet) PredictTotal() float64 {
	var sum float64
	for _, p := range z.ps {
		sum += p.Predict()
	}
	return sum
}
