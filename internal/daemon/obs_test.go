package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mmogdc/internal/obs"
	"mmogdc/internal/slo"
)

// breachRule is the forced-breach burn-rate rule the SLO tests arm:
// with fault_reject_prob=1 every acquisition is vetoed, the shortfall
// persists, and the disruptive-tick ratio saturates far above a 1%
// objective — both windows burn immediately.
func breachRule() slo.RuleConfig {
	return slo.RuleConfig{
		Name:         "breach-burn",
		Signal:       slo.SignalBreachRate,
		Objective:    0.01,
		ShortWindowS: 2,
		LongWindowS:  8,
		BurnFactor:   1,
	}
}

// postObserveTraced posts one observation carrying a W3C traceparent,
// returning the status code.
func postObserveTraced(t *testing.T, url, game, traceparent string, values []float64) int {
	t.Helper()
	body, _ := json.Marshal(ObserveRequest{Game: game, Values: values})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/observe", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDaemonRequestTracing pins the cross-process span chain: a client
// traceparent parents the daemon.request span, which parents both the
// daemon.queue_wait and daemon.observe spans, which in turn parent the
// operator.observe cycle and its operator.acquire child. It also pins
// the per-endpoint request histogram (and that health probes are
// excluded from it).
func TestDaemonRequestTracing(t *testing.T) {
	o := obs.New()
	o.EnableTracing(0)
	d := newTestDaemon(t, func(c *Config) { c.Obs = o })
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	const clientSpan = obs.SpanID(0xaa)
	tp := obs.Traceparent(0xbeef, clientSpan)
	if code := postObserveTraced(t, srv.URL, "g1", tp, []float64{800, 600, 400}); code != http.StatusAccepted {
		t.Fatalf("traced observe -> %d", code)
	}
	waitTicks(t, d, "g1", 1)
	// A health probe and an untraced read endpoint for the histogram
	// exclusion / inclusion checks.
	getBody(t, srv.URL+"/healthz")
	getBody(t, srv.URL+"/v1/forecast?game=g1")
	drain(t, d)

	spans := map[string]obs.SpanRec{}
	for _, r := range o.Tracer.Records() {
		if _, dup := spans[r.Name]; !dup {
			spans[r.Name] = r
		}
	}
	request, ok := spans["daemon.request"]
	if !ok {
		t.Fatal("no daemon.request span recorded")
	}
	if request.Parent != clientSpan {
		t.Fatalf("daemon.request parent = %#x, want client span %#x", request.Parent, clientSpan)
	}
	for _, name := range []string{"daemon.queue_wait", "daemon.observe"} {
		s, ok := spans[name]
		if !ok {
			t.Fatalf("no %s span recorded", name)
		}
		if s.Parent != request.ID {
			t.Fatalf("%s parent = %d, want daemon.request %d", name, s.Parent, request.ID)
		}
	}
	observe, ok := spans["operator.observe"]
	if !ok {
		t.Fatal("no operator.observe span recorded")
	}
	if observe.Parent != spans["daemon.observe"].ID {
		t.Fatalf("operator.observe parent = %d, want daemon.observe %d",
			observe.Parent, spans["daemon.observe"].ID)
	}
	if acquire, ok := spans["operator.acquire"]; !ok {
		t.Fatal("no operator.acquire span recorded")
	} else if acquire.Parent != observe.ID {
		t.Fatalf("operator.acquire parent = %d, want operator.observe %d", acquire.Parent, observe.ID)
	}
	if request.Value != float64(http.StatusAccepted) {
		t.Fatalf("daemon.request value = %v, want %d", request.Value, http.StatusAccepted)
	}

	text := o.Registry.PrometheusText()
	for _, want := range []string{
		`mmogdc_daemon_http_request_seconds_count{code="202",path="/v1/observe"}`,
		`mmogdc_daemon_http_request_seconds_count{code="200",path="/v1/forecast"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if strings.Contains(text, `path="/healthz"`) {
		t.Error("health probe leaked into the request histogram")
	}
}

// TestDaemonSLOAlertFires forces an SLA-breach episode (every grant
// rejected) under an armed breach-rate burn rule and checks the engine
// fires: an slo_alert event in the recorder and the active gauge at 1.
// Removing the rules on reload must deactivate the alert.
func TestDaemonSLOAlertFires(t *testing.T) {
	o := obs.New()
	d := newTestDaemon(t, func(c *Config) {
		c.Obs = o
		h := fastHot()
		h.FaultRejectProb = 1
		h.SLORules = []slo.RuleConfig{breachRule()}
		c.Hot = h
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	for i := 0; i < 10; i++ {
		resp := postObserve(t, srv.URL, "g1", []float64{800, 600, 400})
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("observe %d -> %d", i, resp.StatusCode)
		}
	}
	waitTicks(t, d, "g1", 10)

	var firingTick = -1
	for _, e := range o.Recorder.Events() {
		if e.Kind == obs.EventSLOAlert && e.Detail == "firing" && e.Subject == "breach-burn" {
			firingTick = e.Tick
			break
		}
	}
	if firingTick < 0 {
		t.Fatal("no slo_alert firing event recorded")
	}
	if firingTick > 4 {
		t.Errorf("alert fired at tick %d, want early detection (<= 4)", firingTick)
	}
	active := o.Registry.Gauge("mmogdc_slo_alert_active", "", obs.L("rule", "breach-burn"))
	if active.Value() != 1 {
		t.Fatalf("mmogdc_slo_alert_active = %v, want 1", active.Value())
	}

	// Dropping the rules on reload tears the engine down and clears
	// the alert state.
	h := d.Hot()
	h.SLORules = nil
	if err := d.Reload(h); err != nil {
		t.Fatal(err)
	}
	if active.Value() != 0 {
		t.Fatalf("mmogdc_slo_alert_active after rules removed = %v, want 0", active.Value())
	}
	// The daemon keeps observing without an engine.
	resp := postObserve(t, srv.URL, "g1", []float64{800, 600, 400})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("observe after rule removal -> %d", resp.StatusCode)
	}
	drain(t, d)
}

// TestDaemonObsBitIdentical runs the same observation sequence through
// a plain daemon and one with tracing, SLO rules, and runtime
// telemetry all enabled, and requires byte-identical /v1/forecast and
// /v1/leases responses: the observability surface is write-only.
func TestDaemonObsBitIdentical(t *testing.T) {
	run := func(instrumented bool) (string, string) {
		var mutate func(*Config)
		if instrumented {
			o := obs.New()
			o.EnableTracing(0)
			o.EnableRuntimeMetrics()
			mutate = func(c *Config) {
				c.Obs = o
				c.ExplainDepth = 32
				h := fastHot()
				h.SLORules = []slo.RuleConfig{breachRule()}
				c.Hot = h
			}
		}
		d := newTestDaemon(t, mutate)
		srv := httptest.NewServer(d.Handler())
		defer srv.Close()
		tp := obs.Traceparent(7, obs.SpanID(9))
		for i := 0; i < 8; i++ {
			values := []float64{800 + float64(i*40), 600, 400}
			if code := postObserveTraced(t, srv.URL, "g1", tp, values); code != http.StatusAccepted {
				t.Fatalf("observe %d -> %d", i, code)
			}
		}
		waitTicks(t, d, "g1", 8)
		forecast := getBody(t, srv.URL+"/v1/forecast?game=g1")
		leases := getBody(t, srv.URL+"/v1/leases?game=g1")
		drain(t, d)
		return forecast, leases
	}

	plainF, plainL := run(false)
	instF, instL := run(true)
	if plainF != instF {
		t.Errorf("forecast diverged with observability on:\n%s\n%s", plainF, instF)
	}
	if plainL != instL {
		t.Errorf("leases diverged with observability on:\n%s\n%s", plainL, instL)
	}
	if plainF == "" || plainL == "" {
		t.Fatal("empty responses")
	}
}
