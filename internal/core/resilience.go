package core

import (
	"mmogdc/internal/datacenter"
)

// Resilience accounts a run's fault handling: what went wrong (outage
// windows, injected rejections, monitoring dropouts) and how well the
// provisioning loop degraded gracefully (failovers, retries, recovery
// times, per-center availability). Every Result carries one; without
// fault injection it is simply all zeros.
type Resilience struct {
	// Outages counts distinct unhealthy windows per center. Scheduled
	// failures and injected faults that overlap on one center merge
	// into a single window (the refcounted fail/degrade state decides
	// health, not the event list).
	Outages int
	// FullOutages and PartialOutages classify the windows: full if the
	// center was completely offline at any point inside the window,
	// partial if it only ever lost a fraction of its machines. They
	// sum to Outages.
	FullOutages    int
	PartialOutages int
	// CapacityRecovered counts windows whose center returned to full
	// health within the run.
	CapacityRecovered int
	// ServiceRecovered counts windows after whose start the game
	// returned to undisrupted play (a tick free of significant
	// under-allocation); MeanTimeToRecoverTicks averages the ticks
	// that took. Capacity coming back and service healing are
	// different events — a failover can heal service while the center
	// is still dark.
	ServiceRecovered       int
	MeanTimeToRecoverTicks float64
	// Failovers counts zone-ticks that re-acquired capacity lost to a
	// failed or degraded center (excluding that center from the
	// retry); FailoverLeases the leases those re-acquisitions won.
	Failovers      int
	FailoverLeases int
	// Retries counts backed-off re-attempts after injected grant
	// rejections (the bounded exponential-backoff path).
	Retries int
	// Rejections and PartialGrants count what the fault injector did
	// to the run's grant attempts.
	Rejections    int
	PartialGrants int
	// DroppedSamples counts monitoring samples that never arrived and
	// were carried forward into the predictors.
	DroppedSamples int
	// CapacityLostCPUTicks tick-weights the CPU capacity unavailable
	// to the ecosystem: one unit means one CPU's worth of machines was
	// gone for one tick.
	CapacityLostCPUTicks float64
	// RegionBlackouts counts whole-region blackout windows the
	// correlated fault model injected (each downs every center of one
	// failure domain at once).
	RegionBlackouts int
	// FailoversDeferred counts failover re-acquisitions the per-tick
	// failover budget pushed to a later, jittered tick (storm control)
	// instead of letting a blackout stampede the survivors.
	FailoversDeferred int
	// BrownoutTicks counts ticks spent in brownout mode: surviving
	// effective capacity (minus the per-region reserve) could not cover
	// the demand, so the lowest-priority zones were shed.
	BrownoutTicks int
	// ShedLeases counts leases released by brownout shedding;
	// ShedPlayerTicks accumulates the player-load (players x ticks)
	// whose demand went deliberately unserved while shed.
	ShedLeases      int
	ShedPlayerTicks float64
	// TimeToFullRecoveryTicks is the longest stretch from a capacity
	// impairment's onset (any center down or degraded, or brownout
	// engaged) to the tick full capacity and normal service resumed;
	// 0 when capacity was never impaired or never fully recovered.
	TimeToFullRecoveryTicks int
	// Availability maps each center to the mean fraction of its
	// capacity available over the scored ticks (1 = never impaired).
	Availability map[string]float64
}

// outageWindow is one contiguous unhealthy stretch of a center.
type outageWindow struct {
	start   int
	sawFull bool
}

// outageTracker folds per-tick center health into the Resilience
// metrics. It runs entirely on the sequential control path of the
// simulation, so its state needs no synchronization.
type outageTracker struct {
	centers []*datacenter.Center
	res     *Resilience
	// open holds the in-progress window per center index.
	open []*outageWindow
	// pending holds start ticks of windows still waiting for the
	// service to heal (a tick without a significant event).
	pending []int
	ttrSum  float64
}

func newOutageTracker(centers []*datacenter.Center, res *Resilience) *outageTracker {
	return &outageTracker{
		centers: centers,
		res:     res,
		open:    make([]*outageWindow, len(centers)),
	}
}

// observe inspects every center's health after tick t's failures and
// recoveries have been applied, opening/closing outage windows and —
// on scored ticks (t >= 1) — accumulating availability.
func (ot *outageTracker) observe(t int) {
	for i, c := range ot.centers {
		af := c.AvailableFraction()
		if t >= 1 {
			ot.res.Availability[c.Name] += af
			ot.res.CapacityLostCPUTicks += c.Capacity()[datacenter.CPU] * (1 - af)
		}
		healthy := af >= 1
		w := ot.open[i]
		switch {
		case w == nil && !healthy:
			ot.open[i] = &outageWindow{start: t, sawFull: c.Offline()}
			ot.res.Outages++
			ot.pending = append(ot.pending, t)
		case w != nil && !healthy:
			if c.Offline() {
				w.sawFull = true
			}
		case w != nil && healthy:
			ot.res.CapacityRecovered++
			ot.classify(w)
			ot.open[i] = nil
		}
	}
}

// serviceHealthy reports scored tick t's disruption state: an
// event-free tick heals every outage still pending service recovery.
func (ot *outageTracker) serviceHealthy(t int, ok bool) {
	if !ok {
		return
	}
	for _, s := range ot.pending {
		ot.res.ServiceRecovered++
		ot.ttrSum += float64(t - s)
	}
	ot.pending = ot.pending[:0]
}

func (ot *outageTracker) classify(w *outageWindow) {
	if w.sawFull {
		ot.res.FullOutages++
	} else {
		ot.res.PartialOutages++
	}
}

// finish classifies windows still open at the end of the run and
// normalizes the per-tick accumulators.
func (ot *outageTracker) finish(ticks int) {
	for i, w := range ot.open {
		if w != nil {
			ot.classify(w)
			ot.open[i] = nil
		}
	}
	if ot.res.ServiceRecovered > 0 {
		ot.res.MeanTimeToRecoverTicks = ot.ttrSum / float64(ot.res.ServiceRecovered)
	}
	if ticks > 0 {
		for name := range ot.res.Availability {
			ot.res.Availability[name] /= float64(ticks)
		}
	}
}
