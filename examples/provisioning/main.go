// Provisioning: how hosting policies shape allocation efficiency.
//
// The example sweeps the CPU resource bulk and the time bulk of a
// data-center hosting policy (the Sections V-D experiments) for a
// single game, showing the trade-off the paper identifies: coarse
// bulks waste resources, fine bulks risk under-allocation events, and
// long reservations pin resources long past their need.
//
//	go run ./examples/provisioning
package main

import (
	"fmt"
	"log"
	"time"

	"mmogdc/internal/core"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

func main() {
	dataset := trace.Generate(trace.Config{Seed: 9, Days: 3})
	game := mmog.NewGame("sweep", mmog.GenreMMORPG)
	predictor := predict.NewLastValue()

	run := func(p datacenter.HostingPolicy) *core.Result {
		centers := datacenter.BuildCenters(datacenter.TableIIISites(),
			[]datacenter.HostingPolicy{p})
		res, err := core.Run(core.Config{
			Centers:   centers,
			Workloads: []core.Workload{{Game: game, Dataset: dataset, Predictor: predictor}},
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("CPU resource-bulk sweep (time bulk fixed at 3h):")
	fmt.Printf("%8s %12s %12s %8s\n", "bulk", "over [%]", "under [%]", "events")
	for _, bulk := range []float64{0.1, 0.25, 0.5, 1.0} {
		var b datacenter.Vector
		b[datacenter.CPU] = bulk
		b[datacenter.Memory] = 2
		p := datacenter.HostingPolicy{Name: "sweep", Bulk: b, TimeBulk: 3 * time.Hour}
		res := run(p)
		fmt.Printf("%8.2f %12.2f %12.3f %8d\n", bulk,
			res.AvgOverPct[datacenter.CPU], res.AvgUnderPct[datacenter.CPU], res.Events)
	}

	fmt.Println("\ntime-bulk sweep (CPU bulk fixed at 0.37 units):")
	fmt.Printf("%8s %12s %12s %8s\n", "hours", "over [%]", "under [%]", "events")
	for _, hours := range []int{1, 3, 12, 48} {
		var b datacenter.Vector
		b[datacenter.CPU] = 0.37
		b[datacenter.Memory] = 2
		p := datacenter.HostingPolicy{Name: "sweep", Bulk: b, TimeBulk: time.Duration(hours) * time.Hour}
		res := run(p)
		fmt.Printf("%8d %12.2f %12.3f %8d\n", hours,
			res.AvgOverPct[datacenter.CPU], res.AvgUnderPct[datacenter.CPU], res.Events)
	}

	fmt.Println("\ncoarse bulks and long reservations inflate over-allocation; the finest")
	fmt.Println("bulks trade it for under-allocation events — pick by the game's tolerance")
	fmt.Println("to resource shortages (Section V-D).")
}
