package ecosystem

import (
	"time"

	"mmogdc/internal/datacenter"
)

// Queue is the best-effort service model of Section II-B: resource
// requests that cannot be fitted immediately wait in a FIFO line and
// are served as earlier leases expire. (The alternative — advance
// reservations — lives in the datacenter package.)
type Queue struct {
	m       *Matcher
	pending []Request
}

// NewQueue wraps a matcher with a best-effort waiting line.
func NewQueue(m *Matcher) *Queue {
	return &Queue{m: m}
}

// Len returns the number of waiting requests.
func (q *Queue) Len() int { return len(q.pending) }

// Submit tries to serve the request immediately; any unmet remainder
// joins the queue. It returns the leases granted now and whether a
// remainder was queued.
func (q *Queue) Submit(req Request, now time.Time) ([]*datacenter.Lease, bool) {
	leases, unmet := q.m.Allocate(req, now)
	if unmet.IsZero() {
		return leases, false
	}
	rest := req
	rest.Demand = unmet
	q.pending = append(q.pending, rest)
	return leases, true
}

// Drain expires lapsed leases and serves the waiting line in FIFO
// order with the freed capacity. Requests that still cannot be fully
// served keep their place (with the served part removed). It returns
// the newly granted leases keyed by request tag.
func (q *Queue) Drain(now time.Time) map[string][]*datacenter.Lease {
	q.m.Expire(now)
	if len(q.pending) == 0 {
		return nil
	}
	granted := map[string][]*datacenter.Lease{}
	remaining := q.pending[:0]
	for _, req := range q.pending {
		leases, unmet := q.m.Allocate(req, now)
		if len(leases) > 0 {
			granted[req.Tag] = append(granted[req.Tag], leases...)
		}
		if !unmet.IsZero() {
			rest := req
			rest.Demand = unmet
			remaining = append(remaining, rest)
		}
	}
	q.pending = remaining
	if len(granted) == 0 {
		return nil
	}
	return granted
}
