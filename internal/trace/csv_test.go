package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	ds := Generate(Config{Seed: 5, Days: 1, Regions: []Region{
		{ID: 0, Name: "a", Groups: 2},
		{ID: 1, Name: "b", Groups: 1},
	}})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Groups) != len(ds.Groups) {
		t.Fatalf("group count %d != %d", len(back.Groups), len(ds.Groups))
	}
	for i, g := range ds.Groups {
		bg := back.Groups[i]
		if bg.Name() != g.Name() {
			t.Fatalf("group %d name %q != %q", i, bg.Name(), g.Name())
		}
		if bg.Load.Len() != g.Load.Len() {
			t.Fatalf("group %d length %d != %d", i, bg.Load.Len(), g.Load.Len())
		}
		for j := range g.Load.Values {
			// Values are serialized with one decimal.
			diff := bg.Load.At(j) - g.Load.At(j)
			if diff > 0.06 || diff < -0.06 {
				t.Fatalf("group %d sample %d: %v != %v", i, j, bg.Load.At(j), g.Load.At(j))
			}
		}
	}
	if !back.Config.Start.Equal(ds.Config.Start) {
		t.Fatalf("start time %v != %v", back.Config.Start, ds.Config.Start)
	}
	if len(back.Regions) != 2 {
		t.Fatalf("regions reconstructed = %d, want 2", len(back.Regions))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "foo,bar\n"},
		{"bad group name", "time,whatever\n2007-08-18T00:00:00Z,5\n"},
		{"bad timestamp", "time,r0g0\nnot-a-time,5\n"},
		{"bad value", "time,r0g0\n2007-08-18T00:00:00Z,xyz\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadCSVRaggedRow(t *testing.T) {
	in := "time,r0g0,r0g1\n2007-08-18T00:00:00Z,1\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil {
		t.Fatal("ragged row should error")
	}
}

func TestWriteCSVHeaderOnlyForEmptySamples(t *testing.T) {
	ds := &Dataset{Groups: nil}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "time" {
		t.Fatalf("empty dataset CSV = %q", got)
	}
}

func TestReadCSVUnknownRegionSynthesized(t *testing.T) {
	in := "time,r7g0\n2007-08-18T00:00:00Z,5\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Regions) != 1 || ds.Regions[0].ID != 7 {
		t.Fatalf("regions = %+v", ds.Regions)
	}
}
