// Package market embeds the MMORPG subscription-growth dataset behind
// the paper's Fig. 1 (sourced, as the paper's was, from the public
// Woodcock MMOG-subscription survey plus the authors' own counts after
// June 2006). The figure motivates the provisioning problem: a handful
// of titles hold hundreds of thousands to millions of active players,
// and the aggregate market grows super-linearly — the paper projects
// over 60 million players by 2011 in the US and EU markets alone.
package market

import "sort"

// Point is a (year, active players) observation. Years are fractional
// (mid-year samples use .5).
type Point struct {
	Year    float64
	Players float64 // millions
}

// GameSeries is one title's subscription history.
type GameSeries struct {
	Name   string
	Points []Point
}

// PlayersAt linearly interpolates the series at the given year,
// returning 0 outside the observed range (before launch, after
// shutdown).
func (g GameSeries) PlayersAt(year float64) float64 {
	pts := g.Points
	if len(pts) == 0 || year < pts[0].Year || year > pts[len(pts)-1].Year {
		return 0
	}
	idx := sort.Search(len(pts), func(i int) bool { return pts[i].Year >= year })
	if idx == 0 {
		return pts[0].Players
	}
	if idx >= len(pts) {
		return pts[len(pts)-1].Players
	}
	a, b := pts[idx-1], pts[idx]
	if b.Year == a.Year {
		return b.Players
	}
	f := (year - a.Year) / (b.Year - a.Year)
	return a.Players + f*(b.Players-a.Players)
}

// Dataset returns the embedded Fig. 1 series: the major MMORPGs of
// 1997–2008 with approximate active-player counts in millions. Six
// titles exceed 500k players by 2008, with World of Warcraft and
// RuneScape leading, as in the paper.
func Dataset() []GameSeries {
	return []GameSeries{
		{Name: "Ultima Online", Points: []Point{
			{1997.7, 0.05}, {1998.5, 0.1}, {2000, 0.16}, {2002, 0.25}, {2004, 0.18}, {2006, 0.13}, {2008, 0.1}}},
		{Name: "EverQuest", Points: []Point{
			{1999.2, 0.06}, {2000, 0.25}, {2001.5, 0.42}, {2003, 0.43}, {2004.5, 0.41}, {2006, 0.2}, {2008, 0.15}}},
		{Name: "Asheron's Call", Points: []Point{
			{1999.9, 0.05}, {2001, 0.12}, {2003, 0.1}, {2005, 0.06}, {2008, 0.03}}},
		{Name: "Lineage", Points: []Point{
			{1998.7, 0.1}, {2000, 1.0}, {2001.5, 2.5}, {2003, 3.0}, {2004.5, 2.2}, {2006, 1.4}, {2008, 1.0}}},
		{Name: "Dark Age of Camelot", Points: []Point{
			{2001.8, 0.1}, {2002.5, 0.23}, {2003.5, 0.25}, {2005, 0.15}, {2008, 0.05}}},
		{Name: "RuneScape", Points: []Point{
			{2001, 0.02}, {2002, 0.1}, {2003, 0.3}, {2004, 0.6}, {2005, 1.2}, {2006, 3.0}, {2007, 4.5}, {2008, 5.0}}},
		{Name: "Final Fantasy XI", Points: []Point{
			{2002.4, 0.2}, {2003.5, 0.45}, {2005, 0.55}, {2006.5, 0.5}, {2008, 0.48}}},
		{Name: "Eve Online", Points: []Point{
			{2003.4, 0.03}, {2004.5, 0.07}, {2006, 0.13}, {2007, 0.2}, {2008, 0.25}}},
		{Name: "Star Wars Galaxies", Points: []Point{
			{2003.5, 0.15}, {2004.5, 0.3}, {2005.5, 0.25}, {2006.5, 0.1}, {2008, 0.06}}},
		{Name: "Lineage II", Points: []Point{
			{2003.8, 0.3}, {2005, 1.8}, {2006, 1.6}, {2007, 1.4}, {2008, 1.2}}},
		{Name: "City of Heroes", Points: []Point{
			{2004.3, 0.15}, {2005, 0.18}, {2006, 0.16}, {2007.5, 0.13}, {2008, 0.12}}},
		{Name: "World of Warcraft", Points: []Point{
			{2004.9, 0.5}, {2005.5, 3.5}, {2006, 6.0}, {2006.9, 8.0}, {2007.5, 9.3}, {2008, 10.0}}},
		{Name: "EverQuest II", Points: []Point{
			{2004.9, 0.3}, {2005.5, 0.45}, {2006.5, 0.25}, {2008, 0.2}}},
		{Name: "Guild Wars", Points: []Point{
			{2005.3, 0.5}, {2006, 1.0}, {2007, 0.9}, {2008, 0.7}}},
		{Name: "Dofus", Points: []Point{
			{2004.7, 0.05}, {2005.5, 0.2}, {2006.5, 0.5}, {2007.5, 0.6}, {2008, 0.65}}},
		{Name: "Second Life", Points: []Point{
			{2003.5, 0.01}, {2005, 0.05}, {2006, 0.2}, {2007, 0.55}, {2008, 0.6}}},
		{Name: "Tibia", Points: []Point{
			{1997.1, 0.005}, {2000, 0.02}, {2003, 0.1}, {2005, 0.25}, {2007, 0.3}, {2008, 0.3}}},
		{Name: "Toontown Online", Points: []Point{
			{2003.5, 0.05}, {2005, 0.12}, {2007, 0.12}, {2008, 0.1}}},
	}
}

// TotalAt returns the market-wide total (millions) at a year.
func TotalAt(year float64) float64 {
	var sum float64
	for _, g := range Dataset() {
		sum += g.PlayersAt(year)
	}
	return sum
}

// Top returns the n games with the most players at the given year,
// most popular first.
func Top(year float64, n int) []GameSeries {
	ds := Dataset()
	sort.Slice(ds, func(i, j int) bool {
		return ds[i].PlayersAt(year) > ds[j].PlayersAt(year)
	})
	if n > len(ds) {
		n = len(ds)
	}
	return ds[:n]
}

// GrowthReport summarizes the market at each year in [from, to].
type GrowthReport struct {
	Year   float64
	Total  float64
	Leader string
}

// Growth returns yearly totals and the leading title.
func Growth(from, to float64) []GrowthReport {
	var out []GrowthReport
	for y := from; y <= to+1e-9; y++ {
		top := Top(y, 1)
		leader := ""
		if len(top) > 0 && top[0].PlayersAt(y) > 0 {
			leader = top[0].Name
		}
		out = append(out, GrowthReport{Year: y, Total: TotalAt(y), Leader: leader})
	}
	return out
}
