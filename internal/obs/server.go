package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the opt-in HTTP surface of the observability layer:
//
//	/metrics                 Prometheus text exposition of the registry
//	/events                  flight-recorder contents as a JSON document
//	/debug/vars              expvar (includes the registry snapshot)
//	/debug/pprof/...         the standard runtime profiles
//
// Everything hangs off a private mux — importing net/http/pprof also
// registers on http.DefaultServeMux, but we never serve that mux, so
// an embedding application's routes are not polluted.

// expvar publication is process-global and panics on duplicate names;
// publish once, reading through an atomic pointer so tests (and
// successive runs in one process) can each own the live bundle.
var (
	expvarOnce sync.Once
	currentObs atomic.Pointer[Obs]
)

func (o *Obs) publishExpvar() {
	currentObs.Store(o)
	expvarOnce.Do(func() {
		expvar.Publish("mmogdc_metrics", expvar.Func(func() any {
			return currentObs.Load().Reg().Snapshot()
		}))
	})
}

// Handler returns the observability mux described above. A nil *Obs
// still returns a working handler over empty data.
func (o *Obs) Handler() http.Handler {
	o.publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.SyncRecorderGauges()
		o.SampleRuntime()
		o.Reg().WritePrometheus(w)
	})
	// Encode failures (usually the scraper hanging up mid-response) are
	// counted in the registry rather than spamming a log.
	encodeErrs := o.Reg().Counter("mmogdc_obs_http_encode_errors_total",
		"HTTP responses the observability server failed to encode or write.")
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		since := 0
		if s := q.Get("since"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "since: not an integer: "+s, http.StatusBadRequest)
				return
			}
			since = n
		}
		kind := q.Get("kind")
		rec := o.Rec()
		events := rec.Events()
		if kind != "" || since > 0 {
			kept := events[:0]
			for _, e := range events {
				if (kind == "" || e.Kind == kind) && e.Tick >= since {
					kept = append(kept, e)
				}
			}
			events = kept
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		doc := map[string]any{
			"total":     rec.Total(),
			"dropped":   rec.Dropped(),
			"sink_errs": rec.SinkErrs(),
			"matched":   len(events),
			"events":    events,
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			encodeErrs.Inc()
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "mmogdc observability\n\n/metrics\n/events\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Slow-client protection defaults for HardenedServer. The generous
// write/idle windows keep the long scrapes working — a 30-second
// /debug/pprof/profile finishes well inside WriteTimeout — while the
// tight header deadline evicts connections that never finish their
// request line (slowloris), so one stuck client cannot hold the ops
// surface open indefinitely.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = time.Minute
	DefaultWriteTimeout      = 2 * time.Minute
	DefaultIdleTimeout       = 2 * time.Minute
	DefaultMaxHeaderBytes    = 64 << 10
)

// HardenedServer wraps h in an http.Server carrying the slow-client
// protections above. Both the observability surface and cmd/mmogd's
// ingestion API serve through it, so neither can be wedged by a client
// that connects and stalls.
func HardenedServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		WriteTimeout:      DefaultWriteTimeout,
		IdleTimeout:       DefaultIdleTimeout,
		MaxHeaderBytes:    DefaultMaxHeaderBytes,
	}
}

// Server is a running observability HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability server on addr (e.g. ":8080" or
// "127.0.0.1:0" for an ephemeral port) and returns once it is
// listening; requests are served in a background goroutine. The
// server carries the HardenedServer timeouts.
func (o *Obs) Serve(addr string) (*Server, error) {
	return serveWith(addr, HardenedServer(o.Handler()))
}

// serveWith binds addr and serves srv on it in the background — the
// seam tests use to shrink the timeouts.
func serveWith(addr string, srv *http.Server) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	s := &Server{ln: ln, srv: srv}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's bound address (with the real port when an
// ephemeral one was requested).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
