// Snapshot/Restore support: every predictor in this package is
// Stateful, so the online provisioning operator (internal/operator)
// and the batch engine (internal/core) can checkpoint their forecast
// state and resume after a crash on the uninterrupted trajectory.
//
// The contract is exact: for any predictor p and fresh q built by the
// same factory, q.Restore(p.Snapshot()) followed by identical Observe
// calls on both must keep q.Predict() bit-identical to p.Predict()
// forever (TestSnapshotRoundTripEquivalence pins this per type).
// Snapshots carry a kind tag and the configuration constants that the
// factory fixes; Restore validates both, so a checkpoint can never be
// loaded into a differently configured predictor silently.
package predict

import (
	"fmt"

	"mmogdc/internal/checkpoint"
)

// Stateful is a Predictor whose full forecasting state can be
// captured and re-established. All predictors in this package
// implement it.
type Stateful interface {
	Predictor
	// Snapshot serializes the predictor's complete state.
	Snapshot() []byte
	// Restore re-establishes a state captured by Snapshot on a
	// predictor built by the same factory. It fails on kind or
	// configuration mismatches and on corrupt data.
	Restore(data []byte) error
}

// kind tags keep a snapshot from being restored into the wrong type.
const (
	kindLastValue = "lastvalue"
	kindAverage   = "average"
	kindMovingAvg = "movingavg"
	kindExpSmooth = "expsmoothing"
	kindHolt      = "holt"
	kindMedian    = "median"
	kindAR        = "ar"
	kindSeasonal  = "seasonalnaive"
	kindNeural    = "neural"
)

// openSnapshot validates the kind tag shared by every predictor
// snapshot and returns the decoder positioned after it.
func openSnapshot(data []byte, kind string) (*checkpoint.Dec, error) {
	d := checkpoint.NewDec(data)
	if got := d.Str(); got != kind {
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("predict: %w", err)
		}
		return nil, fmt.Errorf("predict: snapshot kind %q, want %q", got, kind)
	}
	return d, nil
}

// closeSnapshot finishes decoding, turning leftover bytes or underruns
// into an error.
func closeSnapshot(d *checkpoint.Dec) error {
	if err := d.Close(); err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	return nil
}

// Snapshot serializes every zone predictor's state. It fails if any
// predictor in the set is not Stateful (all predictors built by this
// package are).
func (z *ZoneSet) Snapshot() ([]byte, error) {
	e := checkpoint.NewEnc()
	e.Int(len(z.ps))
	for i, p := range z.ps {
		s, ok := p.(Stateful)
		if !ok {
			return nil, fmt.Errorf("predict: zone %d predictor %T is not snapshotable", i, p)
		}
		e.Bytes(s.Snapshot())
	}
	return e.Data(), nil
}

// Restore re-establishes a state captured by Snapshot on a ZoneSet
// built by the same factory with the same zone count. On error the
// set may be partially restored and must be discarded.
func (z *ZoneSet) Restore(data []byte) error {
	d := checkpoint.NewDec(data)
	n := d.Int()
	if err := d.Err(); err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	if n != len(z.ps) {
		return fmt.Errorf("predict: snapshot has %d zones, set has %d", n, len(z.ps))
	}
	blobs := make([][]byte, n)
	for i := range blobs {
		blobs[i] = d.Bytes()
	}
	if err := closeSnapshot(d); err != nil {
		return err
	}
	for i, p := range z.ps {
		s, ok := p.(Stateful)
		if !ok {
			return fmt.Errorf("predict: zone %d predictor %T is not snapshotable", i, p)
		}
		if err := s.Restore(blobs[i]); err != nil {
			return fmt.Errorf("zone %d: %w", i, err)
		}
	}
	return nil
}

// Snapshot implements Stateful.
func (p *LastValue) Snapshot() []byte {
	e := checkpoint.NewEnc()
	e.Str(kindLastValue)
	e.F64(p.last)
	return e.Data()
}

// Restore implements Stateful.
func (p *LastValue) Restore(data []byte) error {
	d, err := openSnapshot(data, kindLastValue)
	if err != nil {
		return err
	}
	last := d.F64()
	if err := closeSnapshot(d); err != nil {
		return err
	}
	p.last = last
	return nil
}

// Snapshot implements Stateful.
func (p *Average) Snapshot() []byte {
	e := checkpoint.NewEnc()
	e.Str(kindAverage)
	e.F64(p.sum)
	e.Int(p.n)
	return e.Data()
}

// Restore implements Stateful.
func (p *Average) Restore(data []byte) error {
	d, err := openSnapshot(data, kindAverage)
	if err != nil {
		return err
	}
	sum, n := d.F64(), d.Int()
	if err := closeSnapshot(d); err != nil {
		return err
	}
	p.sum, p.n = sum, n
	return nil
}

// Snapshot implements Stateful.
func (p *MovingAverage) Snapshot() []byte {
	e := checkpoint.NewEnc()
	e.Str(kindMovingAvg)
	e.Int(p.window)
	e.F64s(p.buf)
	e.Int(p.next)
	e.Int(p.filled)
	e.F64(p.sum)
	return e.Data()
}

// Restore implements Stateful.
func (p *MovingAverage) Restore(data []byte) error {
	d, err := openSnapshot(data, kindMovingAvg)
	if err != nil {
		return err
	}
	window := d.Int()
	buf := d.F64s()
	next, filled := d.Int(), d.Int()
	sum := d.F64()
	if err := closeSnapshot(d); err != nil {
		return err
	}
	if window != p.window {
		return fmt.Errorf("predict: snapshot window %d, predictor %d", window, p.window)
	}
	if len(buf) != window || next < 0 || next >= window || filled < 0 || filled > window {
		return fmt.Errorf("predict: inconsistent moving-average snapshot")
	}
	copy(p.buf, buf)
	p.next, p.filled, p.sum = next, filled, sum
	return nil
}

// Snapshot implements Stateful.
func (p *ExpSmoothing) Snapshot() []byte {
	e := checkpoint.NewEnc()
	e.Str(kindExpSmooth)
	e.F64(p.alpha)
	e.F64(p.s)
	e.Bool(p.init)
	return e.Data()
}

// Restore implements Stateful.
func (p *ExpSmoothing) Restore(data []byte) error {
	d, err := openSnapshot(data, kindExpSmooth)
	if err != nil {
		return err
	}
	alpha, s, init := d.F64(), d.F64(), d.Bool()
	if err := closeSnapshot(d); err != nil {
		return err
	}
	if alpha != p.alpha {
		return fmt.Errorf("predict: snapshot alpha %v, predictor %v", alpha, p.alpha)
	}
	p.s, p.init = s, init
	return nil
}

// Snapshot implements Stateful.
func (p *Holt) Snapshot() []byte {
	e := checkpoint.NewEnc()
	e.Str(kindHolt)
	e.F64(p.alpha)
	e.F64(p.beta)
	e.F64(p.level)
	e.F64(p.trend)
	e.Int(p.seen)
	return e.Data()
}

// Restore implements Stateful.
func (p *Holt) Restore(data []byte) error {
	d, err := openSnapshot(data, kindHolt)
	if err != nil {
		return err
	}
	alpha, beta := d.F64(), d.F64()
	level, trend := d.F64(), d.F64()
	seen := d.Int()
	if err := closeSnapshot(d); err != nil {
		return err
	}
	if alpha != p.alpha || beta != p.beta {
		return fmt.Errorf("predict: snapshot smoothing (%v,%v), predictor (%v,%v)", alpha, beta, p.alpha, p.beta)
	}
	p.level, p.trend, p.seen = level, trend, seen
	return nil
}

// Snapshot implements Stateful.
func (p *SlidingWindowMedian) Snapshot() []byte {
	e := checkpoint.NewEnc()
	e.Str(kindMedian)
	e.Int(p.window)
	e.F64s(p.buf)
	e.Int(p.next)
	e.Int(p.filled)
	return e.Data()
}

// Restore implements Stateful.
func (p *SlidingWindowMedian) Restore(data []byte) error {
	d, err := openSnapshot(data, kindMedian)
	if err != nil {
		return err
	}
	window := d.Int()
	buf := d.F64s()
	next, filled := d.Int(), d.Int()
	if err := closeSnapshot(d); err != nil {
		return err
	}
	if window != p.window {
		return fmt.Errorf("predict: snapshot window %d, predictor %d", window, p.window)
	}
	if len(buf) != window || next < 0 || next >= window || filled < 0 || filled > window {
		return fmt.Errorf("predict: inconsistent median snapshot")
	}
	copy(p.buf, buf)
	p.next, p.filled = next, filled
	return nil
}

// Snapshot implements Stateful.
func (p *AR) Snapshot() []byte {
	e := checkpoint.NewEnc()
	e.Str(kindAR)
	e.Int(p.order)
	e.Int(p.refitInterval)
	e.Int(p.maxHistory)
	e.F64s(p.history)
	e.F64s(p.coeffs)
	e.F64(p.mean)
	e.Int(p.sinceRefit)
	e.Bool(p.fitted)
	return e.Data()
}

// Restore implements Stateful.
func (p *AR) Restore(data []byte) error {
	d, err := openSnapshot(data, kindAR)
	if err != nil {
		return err
	}
	order, refit, maxHist := d.Int(), d.Int(), d.Int()
	history := d.F64s()
	coeffs := d.F64s()
	mean := d.F64()
	sinceRefit := d.Int()
	fitted := d.Bool()
	if err := closeSnapshot(d); err != nil {
		return err
	}
	if order != p.order || refit != p.refitInterval || maxHist != p.maxHistory {
		return fmt.Errorf("predict: AR snapshot config (%d,%d,%d), predictor (%d,%d,%d)",
			order, refit, maxHist, p.order, p.refitInterval, p.maxHistory)
	}
	if len(history) > maxHist || (fitted && len(coeffs) != order) {
		return fmt.Errorf("predict: inconsistent AR snapshot")
	}
	// Copy into the preallocated buffers rather than aliasing the
	// decoder's slices, so a restored predictor keeps its
	// allocation-free steady state.
	p.history = append(p.history[:0], history...)
	for i := range p.coeffs {
		p.coeffs[i] = 0
	}
	copy(p.coeffs, coeffs)
	p.mean = mean
	p.sinceRefit = sinceRefit
	p.fitted = fitted
	return nil
}

// Snapshot implements Stateful.
func (p *SeasonalNaive) Snapshot() []byte {
	e := checkpoint.NewEnc()
	e.Str(kindSeasonal)
	e.Int(p.period)
	e.F64s(p.buf)
	e.Int(p.n)
	return e.Data()
}

// Restore implements Stateful.
func (p *SeasonalNaive) Restore(data []byte) error {
	d, err := openSnapshot(data, kindSeasonal)
	if err != nil {
		return err
	}
	period := d.Int()
	buf := d.F64s()
	n := d.Int()
	if err := closeSnapshot(d); err != nil {
		return err
	}
	if period != p.period {
		return fmt.Errorf("predict: snapshot period %d, predictor %d", period, p.period)
	}
	if len(buf) != period || n < 0 {
		return fmt.Errorf("predict: inconsistent seasonal snapshot")
	}
	copy(p.buf, buf)
	p.n = n
	return nil
}

// Snapshot implements Stateful. Beyond the sliding window it includes
// the network weights and momentum buffers, so a restored predictor's
// online training continues bit-identically.
func (p *Neural) Snapshot() []byte {
	e := checkpoint.NewEnc()
	e.Str(kindNeural)
	e.Int(p.cfg.Window)
	e.F64(p.cfg.Capacity)
	e.F64(p.cfg.OutputScale)
	e.Bool(p.cfg.Direct)
	e.F64s(p.window)
	e.Int(p.seen)
	e.F64s(p.prevIn)
	e.F64(p.prevLast)
	e.Bool(p.havePre)
	e.Bytes(p.net.Snapshot())
	return e.Data()
}

// Restore implements Stateful.
func (p *Neural) Restore(data []byte) error {
	d, err := openSnapshot(data, kindNeural)
	if err != nil {
		return err
	}
	window := d.Int()
	capacity, outputScale := d.F64(), d.F64()
	direct := d.Bool()
	win := d.F64s()
	seen := d.Int()
	prevIn := d.F64s()
	prevLast := d.F64()
	havePre := d.Bool()
	netData := d.Bytes()
	if err := closeSnapshot(d); err != nil {
		return err
	}
	if window != p.cfg.Window || capacity != p.cfg.Capacity ||
		outputScale != p.cfg.OutputScale || direct != p.cfg.Direct {
		return fmt.Errorf("predict: neural snapshot from a differently configured predictor")
	}
	if len(win) > window || len(prevIn) != window {
		return fmt.Errorf("predict: inconsistent neural snapshot")
	}
	if err := p.net.Restore(netData); err != nil {
		return err
	}
	p.window = append(p.window[:0], win...)
	p.seen = seen
	copy(p.prevIn, prevIn)
	p.prevLast = prevLast
	p.havePre = havePre
	return nil
}
