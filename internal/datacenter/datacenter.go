// Package datacenter implements the paper's data-center model
// (Section II-B): hosters pooling machines whose resources — CPU,
// memory, and external network input/output — are rented to game
// operators in *bulks*. A hosting policy fixes, per resource type, the
// minimum number of resource units that can be allocated in one
// request (the resource bulk) and the minimum duration of an
// allocation (the time bulk). Allocated resources are reserved for the
// whole lease duration: no preemption, no early release.
//
// Resources are measured in the paper's abstract units: 1.0 unit of a
// resource is what a fully loaded game server consumes (for external
// outward bandwidth, 3 MB/s).
package datacenter

import (
	"fmt"
	"math"
	"time"

	"mmogdc/internal/geo"
)

// Resource enumerates the four resource types of Section II-B.
type Resource int

const (
	// CPU time from data center machines.
	CPU Resource = iota
	// Memory from data center machines.
	Memory
	// ExtNetIn is input from the external network of a data center.
	ExtNetIn
	// ExtNetOut is output to the external network of a data center.
	ExtNetOut
	// NumResources is the number of resource types.
	NumResources
)

// String implements fmt.Stringer with the paper's labels.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "CPU"
	case Memory:
		return "Memory"
	case ExtNetIn:
		return "ExtNet[in]"
	case ExtNetOut:
		return "ExtNet[out]"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// AllResources lists the resource types in declaration order.
var AllResources = []Resource{CPU, Memory, ExtNetIn, ExtNetOut}

// Vector is a quantity of each resource type, in abstract units.
type Vector [NumResources]float64

// Add returns v + o.
func (v Vector) Add(o Vector) Vector {
	for i := range v {
		v[i] += o[i]
	}
	return v
}

// Sub returns v - o.
func (v Vector) Sub(o Vector) Vector {
	for i := range v {
		v[i] -= o[i]
	}
	return v
}

// Scale returns v scaled by f.
func (v Vector) Scale(f float64) Vector {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Max returns the element-wise maximum.
func (v Vector) Max(o Vector) Vector {
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// ClampNonNegative zeroes negative components.
func (v Vector) ClampNonNegative() Vector {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
	}
	return v
}

// IsZero reports whether every component is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// FitsWithin reports whether v <= o element-wise (with tolerance).
func (v Vector) FitsWithin(o Vector) bool {
	const eps = 1e-9
	for i := range v {
		if v[i] > o[i]+eps {
			return false
		}
	}
	return true
}

// HostingPolicy is a data center's space-time renting policy
// (Section II-B): one resource bulk per resource type plus the time
// bulk. A zero bulk means the policy does not constrain that resource
// (the paper's "n/a"): it is allocated exactly as requested alongside
// the constrained resources.
type HostingPolicy struct {
	// Name labels the policy ("HP-1" ... "HP-11").
	Name string
	// Bulk is the minimal allocation quantum per resource; 0 = n/a.
	Bulk Vector
	// TimeBulk is the minimal duration of an allocation.
	TimeBulk time.Duration
}

// RoundUp rounds a request up to whole bulks. Unconstrained resources
// (bulk 0) pass through unchanged; constrained resources are raised to
// the smallest positive multiple of the bulk covering the request (a
// non-zero request always costs at least one bulk).
func (p HostingPolicy) RoundUp(req Vector) Vector {
	var out Vector
	for i, want := range req {
		if want < 0 {
			want = 0
		}
		b := p.Bulk[i]
		if b <= 0 || want == 0 {
			out[i] = want
			continue
		}
		out[i] = math.Ceil(want/b-1e-9) * b
	}
	return out
}

// Grain is the sorting key for the paper's matching preference for
// "finer grained resources": the CPU bulk, the resource every MMOG
// request is ultimately sized by. Policies that do not constrain CPU
// sort as coarsest.
func (p HostingPolicy) Grain() float64 {
	if p.Bulk[CPU] <= 0 {
		return math.Inf(1)
	}
	return p.Bulk[CPU]
}

// Lease is one bulk allocation held by a game operator.
type Lease struct {
	// Center owns the leased resources.
	Center *Center
	// Alloc is the allocated (bulk-rounded) resource vector.
	Alloc Vector
	// Start and Expires delimit the reservation.
	Start   time.Time
	Expires time.Time
	// Tag carries the requester's identifier (e.g. zone name).
	Tag      string
	released bool
}

// Active reports whether the lease holds resources at time t.
func (l *Lease) Active(t time.Time) bool {
	return !l.released && !t.Before(l.Start) && t.Before(l.Expires)
}

// PerMachineCapacity is the resource capacity one data-center machine
// contributes. A machine runs one fully loaded game server (1 CPU
// unit); hosting centers provision memory and network generously
// relative to CPU, which is why the network-heavy policies of Table IV
// can bundle several ExtNet[in] units per CPU bulk without exhausting
// the pipe — CPU is the binding resource, as in the paper (the
// East-coast centers are the only ones left with free resources in
// Fig. 14).
var PerMachineCapacity = Vector{1, 4, 12, 4}

// Center is one data center (the paper assumes one cluster per hoster,
// so center == cluster == hoster).
type Center struct {
	// Name identifies the center in reports ("US East (1)").
	Name string
	// Location anchors latency-class matching.
	Location geo.Point
	// Machines is the cluster size.
	Machines int
	// Policy is the hosting policy set by the center's owner.
	Policy HostingPolicy

	capacity  Vector
	allocated Vector
	leases    []*Lease
	reserved  []*Lease
	prices    PriceTable
	totalCost float64
	// watermark is the latest time the center has observed (via Lease
	// or Expire); reservations must start at or after it.
	watermark time.Time
	// failDepth refcounts overlapping full-outage windows: the center
	// is offline while failDepth > 0, and a window's recovery never
	// revives a center still inside another window.
	failDepth int
	// degraded is the raw sum of the machine fractions lost to the
	// currently open partial-degradation windows. It may exceed 1
	// transiently (overlapping degradations); the effective capacity
	// clamps it.
	degraded float64
}

// NewCenter builds a center with capacity Machines x PerMachineCapacity.
func NewCenter(name string, loc geo.Point, machines int, policy HostingPolicy) *Center {
	return &Center{
		Name:     name,
		Location: loc,
		Machines: machines,
		Policy:   policy,
		capacity: PerMachineCapacity.Scale(float64(machines)),
	}
}

// Capacity returns the total resource capacity.
func (c *Center) Capacity() Vector { return c.capacity }

// Allocated returns the currently reserved resources.
func (c *Center) Allocated() Vector { return c.allocated }

// AvailableFraction is the share of the center's machines currently
// healthy: 0 while offline, 1−degraded under partial degradation.
func (c *Center) AvailableFraction() float64 {
	if c.failDepth > 0 {
		return 0
	}
	d := c.degraded
	if d > 1 {
		d = 1
	}
	if d < 0 {
		d = 0
	}
	return 1 - d
}

// EffectiveCapacity is the capacity the surviving machines provide:
// the nominal capacity scaled by AvailableFraction.
func (c *Center) EffectiveCapacity() Vector {
	f := c.AvailableFraction()
	if f >= 1 {
		return c.capacity
	}
	return c.capacity.Scale(f)
}

// Free returns the currently available resources on the surviving
// machines.
func (c *Center) Free() Vector {
	return c.EffectiveCapacity().Sub(c.allocated).ClampNonNegative()
}

// Expire releases every lease that has ended by time t, activates
// reservations whose windows have begun, and returns the number of
// leases released.
func (c *Center) Expire(t time.Time) int {
	if t.After(c.watermark) {
		c.watermark = t
	}
	c.activateReservations(t)
	n := 0
	live := c.leases[:0]
	for _, l := range c.leases {
		if !l.released && !t.Before(l.Expires) {
			l.released = true
			c.allocated = c.allocated.Sub(l.Alloc).ClampNonNegative()
			n++
			continue
		}
		live = append(live, l)
	}
	c.leases = live
	if len(c.leases) == 0 {
		// Snap float residue: with no live leases the allocation is
		// zero by definition, not 1e-16.
		c.allocated = Vector{}
	}
	if c.degraded > 0 {
		// An activated reservation may not fit the degraded capacity
		// its window was admitted against.
		c.shedToFit()
	}
	return n
}

// ErrInsufficient is returned when a center cannot host a request.
var ErrInsufficient = fmt.Errorf("datacenter: insufficient free capacity")

// ErrOffline is returned while a center is failed.
var ErrOffline = fmt.Errorf("datacenter: center offline")

// Fail takes the center offline: every live lease and pending
// reservation is lost immediately (the machines are gone, not merely
// full), and new requests are rejected until the center is back. Fail
// is refcounted so overlapping fault windows compose — the center
// recovers only after a matching number of Recover calls. It returns
// the leases and reservations dropped (empty for nested failures,
// whose machines are already gone), so callers can fail the lost
// capacity over to other centers.
func (c *Center) Fail() []*Lease {
	c.failDepth++
	if c.failDepth > 1 {
		return nil
	}
	dropped := make([]*Lease, 0, len(c.leases)+len(c.reserved))
	for _, l := range c.leases {
		l.released = true
		dropped = append(dropped, l)
	}
	for _, l := range c.reserved {
		l.released = true
		dropped = append(dropped, l)
	}
	c.leases = c.leases[:0]
	c.reserved = c.reserved[:0]
	c.allocated = Vector{}
	return dropped
}

// Recover undoes one Fail. The center comes back online (with empty
// machines) only when every open failure window has recovered.
func (c *Center) Recover() {
	if c.failDepth > 0 {
		c.failDepth--
	}
}

// Offline reports whether the center is inside at least one full
// outage window.
func (c *Center) Offline() bool { return c.failDepth > 0 }

// Degrade removes frac of the center's machines — a partial outage:
// the center keeps serving on what survives. Overlapping degradations
// compose additively (each Restore gives back exactly what its
// Degrade took). Leases no longer fitting the shrunk capacity are
// shed, newest first, and returned so the caller can re-acquire them
// elsewhere.
func (c *Center) Degrade(frac float64) []*Lease {
	if frac < 0 {
		frac = 0
	}
	c.degraded += frac
	return c.shedToFit()
}

// Restore gives back the machines a Degrade(frac) took.
func (c *Center) Restore(frac float64) {
	if frac < 0 {
		frac = 0
	}
	c.degraded -= frac
	if c.degraded < 1e-12 {
		// Snap float residue: fully restored means fully restored.
		c.degraded = 0
	}
}

// shedToFit drops live leases, newest first, until the allocation
// fits the effective capacity, and returns the dropped leases.
func (c *Center) shedToFit() []*Lease {
	var dropped []*Lease
	eff := c.EffectiveCapacity()
	for len(c.leases) > 0 && !c.allocated.FitsWithin(eff) {
		l := c.leases[len(c.leases)-1]
		c.leases = c.leases[:len(c.leases)-1]
		l.released = true
		c.allocated = c.allocated.Sub(l.Alloc).ClampNonNegative()
		dropped = append(dropped, l)
	}
	if len(c.leases) == 0 {
		c.allocated = Vector{}
	}
	return dropped
}

// Lease reserves the request (rounded up to the policy's bulks) from
// time now for at least the policy's time bulk. It fails with
// ErrInsufficient when the rounded request does not fit the free
// capacity — leases are all-or-nothing; callers wanting partial
// fulfillment split the request before calling.
func (c *Center) Lease(req Vector, now time.Time, tag string) (*Lease, error) {
	if now.After(c.watermark) {
		c.watermark = now
	}
	if c.Offline() {
		return nil, ErrOffline
	}
	rounded := c.Policy.RoundUp(req)
	if rounded.IsZero() {
		return nil, fmt.Errorf("datacenter: empty request")
	}
	if len(c.reserved) == 0 {
		// Fast path: no future bookings, the live view decides.
		if !rounded.FitsWithin(c.Free()) {
			return nil, ErrInsufficient
		}
	} else {
		// Reservations may begin inside this lease's window; admit
		// only if the window's peak stays within the effective
		// (degradation-adjusted) capacity.
		peak := c.maxUsageDuring(now, now.Add(c.Policy.TimeBulk))
		if !rounded.Add(peak).FitsWithin(c.EffectiveCapacity()) {
			return nil, ErrInsufficient
		}
	}
	l := &Lease{
		Center:  c,
		Alloc:   rounded,
		Start:   now,
		Expires: now.Add(c.Policy.TimeBulk),
		Tag:     tag,
	}
	c.allocated = c.allocated.Add(rounded)
	c.leases = append(c.leases, l)
	c.totalCost += c.Prices().LeaseCost(l)
	return l, nil
}

// ActiveLeases returns the number of currently held leases.
func (c *Center) ActiveLeases() int { return len(c.leases) }
