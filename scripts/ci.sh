#!/usr/bin/env sh
# CI entry point — equivalent to `make ci` for environments without
# make. Keeps the race detector on the full suite so the parallel
# per-zone engine in internal/core is re-proven on every PR.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Re-run the suite with a shuffled test order (fixed seed so a failure
# reproduces): tests must not depend on the order they are declared in.
go test -shuffle 1 ./...

# Gated benchmark snapshot: runs the CoreRun/Checkpoint/ObsOverhead
# benchmarks (so they always stay runnable), refreshes BENCH_core.json,
# and fails on a >20% allocs/op or B/op (or >2x ns/op) regression
# against the committed snapshot (scripts/benchgate). Accept an
# intentional change by committing the refreshed BENCH_core.json.
sh scripts/bench_json.sh

# Fault-injection smoke: the stochastic injector plus a correlated
# region blackout under the race detector, gated by mmogaudit — every
# SLA-breach episode must carry a root cause and all consistency
# checks must pass.
sh scripts/chaos_smoke.sh

# Crash-recovery smoke under the race detector: run to a deterministic
# "crash" (-stop-after-tick) with checkpointing on, resume over the
# checkpoint directory, and require the resumed stdout to be
# byte-identical to an uninterrupted run's — metrics continuity across
# the kill, end to end.
d=$(mktemp -d)
go run -race ./cmd/mmogsim -days 1 -predictor movingavg -fault-dropout 0.02 \
	> "$d/ref.out"
go run -race ./cmd/mmogsim -days 1 -predictor movingavg -fault-dropout 0.02 \
	-checkpoint-dir "$d/ckpt" -checkpoint-every 100 -stop-after-tick 400 \
	> "$d/stop.out" 2> "$d/stop.err"
test ! -s "$d/stop.out"
go run -race ./cmd/mmogsim -days 1 -predictor movingavg -fault-dropout 0.02 \
	-checkpoint-dir "$d/ckpt" -checkpoint-every 100 \
	> "$d/resume.out" 2> "$d/resume.err"
grep -q 'resumed from checkpoint at tick 400' "$d/resume.err"
cmp "$d/ref.out" "$d/resume.out"
rm -rf "$d"

# Observability smoke: scrape /metrics and /debug/pprof from a live
# run, byte-diff obs-on stdout against obs-off (write-only telemetry
# contract), and run the run's artifacts through mmogaudit.
sh scripts/obs_smoke.sh

# Daemon smoke: the full mmogd lifecycle — load, SIGTERM drain,
# checkpoint restart with lease reconciliation (clean and after
# kill -9), hot reload (HTTP + SIGHUP), 10x overload shedding with
# 429s, the blown-drain hard exit, and the mmogaudit load report.
sh scripts/daemon_smoke.sh

# SLO + tracing smoke: a forced breach under an armed burn-rate alert
# with end-to-end traceparent propagation; mmogaudit merges the client
# and server traces, scores the alert against ground truth (perfect
# precision/recall, detection lag <= 2 ticks), and a rules-off control
# run must answer byte-identically (write-only telemetry).
sh scripts/slo_smoke.sh
