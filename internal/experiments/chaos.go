package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"mmogdc/internal/audit"
	"mmogdc/internal/core"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/faults"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/obs"
	"mmogdc/internal/trace"
)

// Ext11Chaos is the scenario corpus for correlated failure domains: a
// whole-region blackout at the demand peak, a follow-the-sun rolling
// blackout that chases the load across domains, and a flash crowd
// landing in the middle of an outage. Each scenario runs the dynamic
// operator with storm control and brownout engaged, records the full
// flight-recorder stream, and feeds it through the mmogaudit analyzer —
// the acceptance bar is that every SLA-breach episode carries an
// attributable root cause (zero unclassified).
func Ext11Chaos(o Options) (string, error) {
	opts := o.withDefaults()
	if !opts.Quick && opts.Days > 4 {
		opts.Days = 4
	}
	ds := provisioningTrace(opts)
	game := standardGame()
	neural := neuralFactory(opts)

	ticksPerDay := ds.Samples() / opts.Days
	peak := peakTick(ds)
	const blackoutTicks = 40 // 80 minutes of darkness per domain

	// The flash-crowd trace layers a content-release surge (+60%,
	// Fig. 2's population event) so it is still ramping when the eu
	// blackout lands on the (shifted) peak.
	crowdDs := chaosTrace(opts, []trace.Event{{
		Kind: trace.ContentRelease, Magnitude: 0.6, RecoveryDays: 1,
		Day: float64(peak)/float64(ticksPerDay) - 0.25,
	}})

	scenarios := []struct {
		name string
		ds   *trace.Dataset
		fc   *faults.Config
	}{
		{"region blackout at peak", ds, &faults.Config{Seed: opts.Seed,
			ScheduledBlackouts: []faults.RegionBlackout{
				{Region: "eu", Start: clampTick(peak-10, ds), Duration: blackoutTicks},
			}}},
		{"follow-the-sun rolling blackout", ds, &faults.Config{Seed: opts.Seed,
			ScheduledBlackouts: []faults.RegionBlackout{
				{Region: "eu", Start: clampTick(peak-10, ds), Duration: blackoutTicks},
				{Region: "na-east", Start: clampTick(peak+50, ds), Duration: blackoutTicks},
				{Region: "na-west", Start: clampTick(peak+110, ds), Duration: blackoutTicks},
			}}},
		{"flash crowd during outage", crowdDs, &faults.Config{Seed: opts.Seed,
			ScheduledBlackouts: []faults.RegionBlackout{
				{Region: "eu", Start: clampTick(peak-10, crowdDs), Duration: blackoutTicks},
			}}},
	}

	digests, err := parallelMap(len(scenarios), func(i int) (string, error) {
		sc := scenarios[i]
		telemetry := obs.New()
		var stream bytes.Buffer
		telemetry.Recorder.SetSink(&stream)
		res, err := core.Run(core.Config{
			Centers:               tightFleet(game, sc.ds),
			Workloads:             []core.Workload{{Game: game, Dataset: sc.ds, Predictor: neural}},
			Faults:                sc.fc,
			FailoverBudgetPerTick: 4,
			Brownout:              true,
			BrownoutReserveFrac:   0.10,
			Obs:                   telemetry,
		})
		if err != nil {
			return "", err
		}
		events, err := audit.LoadEvents(&stream)
		if err != nil {
			return "", err
		}
		rp := audit.Analyze(events, audit.BuildMetricsDoc(telemetry, res), nil)
		return chaosDigest(sc.name, res, rp), nil
	})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Extension 11 — correlated failure-domain scenario corpus with audit attribution\n")
	fmt.Fprintf(&b, "(%d ticks; storm-control budget 4 failovers/tick, brownout reserve 10%%, seed %d)\n",
		ds.Samples(), opts.Seed)
	for _, d := range digests {
		b.WriteString("\n")
		b.WriteString(d)
	}
	b.WriteString("\nEvery breach the corpus provokes is pinned to a mechanism the operator can\n")
	b.WriteString("act on — a blackout window, a brownout shed, a deferred failover — rather\n")
	b.WriteString("than surfacing as an anonymous dip. An audit run that cannot attribute an\n")
	b.WriteString("episode fails the corpus (mmogaudit -fail-on-unclassified exits non-zero).\n")
	return b.String(), nil
}

// chaosDigest condenses one scenario's mmogaudit report: resilience
// accounting, the SLA-breach episode census by root cause, and the
// analyzer's consistency-check verdict.
func chaosDigest(name string, res *core.Result, rp *audit.Report) string {
	var b strings.Builder
	r := res.Resilience
	fmt.Fprintf(&b, "--- %s ---\n", name)
	fmt.Fprintf(&b, "region blackouts: %d", r.RegionBlackouts)
	for _, w := range rp.Blackouts {
		fmt.Fprintf(&b, "  [%s %d-%d]", w.Subject, w.StartTick, w.EndTick)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "failovers: %d (%d deferred by storm control)  brownout: %d tick(s), %d lease(s) shed, %s player-ticks unserved\n",
		r.Failovers, r.FailoversDeferred, r.BrownoutTicks, r.ShedLeases, f2(r.ShedPlayerTicks))
	fmt.Fprintf(&b, "time to full recovery: %d tick(s)  disruption events: %d\n",
		r.TimeToFullRecoveryTicks, res.Events)

	causes := map[string]int{}
	for _, ep := range rp.Episodes {
		causes[ep.Cause]++
	}
	if len(rp.Episodes) == 0 {
		b.WriteString("SLA-breach episodes: none\n")
	} else {
		fmt.Fprintf(&b, "SLA-breach episodes: %d, by root cause:\n", len(rp.Episodes))
		var rows [][]string
		for _, cause := range sortedKeys(causes) {
			rows = append(rows, []string{"  " + cause, fmt.Sprintf("%d", causes[cause])})
		}
		b.WriteString(table([]string{"  cause", "episodes"}, rows))
	}
	fmt.Fprintf(&b, "unclassified episodes: %d\n", rp.Unclassified)

	ok := 0
	var failed []string
	for _, c := range rp.Checks {
		if c.OK {
			ok++
		} else {
			failed = append(failed, c.Name)
		}
	}
	fmt.Fprintf(&b, "consistency checks: %d/%d ok", ok, len(rp.Checks))
	if len(failed) > 0 {
		fmt.Fprintf(&b, "  FAILED: %s", strings.Join(failed, "; "))
	}
	b.WriteString("\n")
	return b.String()
}

// tightFleet builds a three-domain deployment sized to the workload:
// total capacity ~1.3x the trace's peak CPU demand, with the Europe
// domain holding the majority share the way the trace's demand does.
// Blacking out eu at peak then genuinely exceeds the survivors — the
// regime where storm control and brownout shedding have decisions to
// make. At the paper's full Table III scale this workload is a
// rounding error and every scenario trivially absorbs; the corpus is
// about scarcity under correlation.
func tightFleet(game *mmog.Game, ds *trace.Dataset) []*datacenter.Center {
	var peakCPU float64
	for t := 0; t < ds.Samples(); t++ {
		var d float64
		for _, g := range ds.Groups {
			d += game.DemandForEntities(g.Load.Values[t]).CPU
		}
		if d > peakCPU {
			peakCPU = d
		}
	}
	total := peakCPU * 1.3 / float64(datacenter.PerMachineCapacity[datacenter.CPU])
	sites := []struct {
		name  string
		loc   geo.Point
		share float64
	}{
		{"london", geo.London, 0.32}, // eu: 60%
		{"amsterdam", geo.Amsterdam, 0.28},
		{"nyc", geo.NewYork, 0.12}, // na-east: 22%
		{"ashburn", geo.Ashburn, 0.10},
		{"sanjose", geo.SanJose, 0.10}, // na-west: 18%
		{"vancouver", geo.Vancouver, 0.08},
	}
	policy := datacenter.OptimalPolicy()
	out := make([]*datacenter.Center, len(sites))
	for i, s := range sites {
		m := int(total*s.share + 0.5)
		if m < 1 {
			m = 1
		}
		out[i] = datacenter.NewCenter(s.name, s.loc, m, policy)
	}
	return out
}

// chaosTrace is provisioningTrace with Fig. 2-style population events
// layered on the same seed and regions.
func chaosTrace(o Options, events []trace.Event) *trace.Dataset {
	cfg := trace.Config{Seed: o.Seed, Days: o.Days, Events: events}
	if o.Quick {
		cfg.Regions = []trace.Region{
			{ID: 0, Name: "Europe", Location: trace.DefaultRegions()[0].Location, Groups: 10},
			{ID: 1, Name: "US East Coast", Location: trace.DefaultRegions()[1].Location, UTCOffsetHours: -5, Groups: 6},
		}
	}
	return trace.Generate(cfg)
}

// peakTick returns the tick of the trace's aggregate demand peak — the
// worst moment to lose a failure domain, so the moment the corpus does.
func peakTick(ds *trace.Dataset) int {
	best, bestAt := -1.0, 0
	for t := 0; t < ds.Samples(); t++ {
		var sum float64
		for _, g := range ds.Groups {
			sum += g.Load.Values[t]
		}
		if sum > best {
			best, bestAt = sum, t
		}
	}
	return bestAt
}

// clampTick keeps a scheduled blackout start inside the trace.
func clampTick(t int, ds *trace.Dataset) int {
	if t < 0 {
		return 0
	}
	if max := ds.Samples() - 1; t > max {
		return max
	}
	return t
}
