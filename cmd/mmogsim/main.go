// Command mmogsim runs one dynamic-provisioning simulation end to end:
// it generates (or loads) a population trace, pretrains the neural
// predictor on an earlier observation window, simulates the
// request-offer matching against the Table III data centers, and
// reports the paper's three metrics.
//
// Usage:
//
//	mmogsim -days 14 -update "O(n^2)" -policy HP-1,HP-2
//	mmogsim -trace trace.csv -predictor lastvalue -static
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"mmogdc/internal/core"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

func main() {
	var (
		days      = flag.Int("days", 14, "generated trace length in days")
		seed      = flag.Uint64("seed", 42, "random seed")
		traceFile = flag.String("trace", "", "load a CSV trace instead of generating one")
		update    = flag.String("update", "O(n^2)", "update model: O(n), O(n log n), O(n^2), O(n^2 log n), O(n^3)")
		policy    = flag.String("policy", "HP-1,HP-2", "comma-separated Table IV policies (or 'optimal') assigned round-robin")
		predictor = flag.String("predictor", "neural", "neural|average|lastvalue|movingavg|median|expsmoothing")
		static    = flag.Bool("static", false, "static (peak-capacity) provisioning instead of dynamic")
		margin    = flag.Float64("margin", 0, "safety margin on predicted demand (e.g. 0.1 = +10%)")
		workers   = flag.Int("workers", 0, "per-zone simulation parallelism (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	ds, err := loadTrace(*traceFile, *seed, *days)
	if err != nil {
		fatal(err)
	}
	game, err := gameFor(*update)
	if err != nil {
		fatal(err)
	}

	cfg := core.Config{Static: *static, SafetyMargin: *margin, Workers: *workers}
	if !*static {
		policies, err := parsePolicies(*policy)
		if err != nil {
			fatal(err)
		}
		cfg.Centers = datacenter.BuildCenters(datacenter.TableIIISites(), policies)
		f, err := factoryFor(*predictor, *seed, *days)
		if err != nil {
			fatal(err)
		}
		cfg.Workloads = []core.Workload{{Game: game, Dataset: ds, Predictor: f}}
	} else {
		cfg.Workloads = []core.Workload{{Game: game, Dataset: ds}}
	}

	res, err := core.Run(cfg)
	if err != nil {
		fatal(err)
	}

	mode := "dynamic"
	if *static {
		mode = "static"
	}
	fmt.Printf("mode=%s update=%s groups=%d ticks=%d\n", mode, game.Update, len(ds.Groups), res.Ticks)
	for _, r := range datacenter.AllResources {
		fmt.Printf("  %-12s over-allocation %8s   under-allocation %8.3f%%\n",
			r, pct(res.AvgOverPct[r]), res.AvgUnderPct[r])
	}
	fmt.Printf("  significant under-allocation events (|Y|>1%%): %d / %d ticks\n", res.Events, res.Ticks)
	if res.Unmet > 0 {
		fmt.Printf("  WARNING: %d ticks with unmet demand (capacity or latency bound)\n", res.Unmet)
	}
}

func loadTrace(path string, seed uint64, days int) (*trace.Dataset, error) {
	if path == "" {
		return trace.Generate(trace.Config{Seed: seed, Days: days}), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCSV(f)
}

func gameFor(update string) (*mmog.Game, error) {
	g := mmog.NewGame("mmogsim", mmog.GenreMMORPG)
	norm := strings.ReplaceAll(strings.ToLower(update), " ", "")
	switch norm {
	case "o(n)":
		g.Update = mmog.UpdateLinear
	case "o(nlogn)", "o(nxlog(n))":
		g.Update = mmog.UpdateNLogN
	case "o(n^2)", "o(n2)":
		g.Update = mmog.UpdateQuadratic
	case "o(n^2logn)", "o(n^2xlog(n))", "o(n2logn)":
		g.Update = mmog.UpdateQuadraticLog
	case "o(n^3)", "o(n3)":
		g.Update = mmog.UpdateCubic
	default:
		return nil, fmt.Errorf("unknown update model %q", update)
	}
	return g, nil
}

func parsePolicies(spec string) ([]datacenter.HostingPolicy, error) {
	var out []datacenter.HostingPolicy
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if strings.EqualFold(name, "optimal") {
			out = append(out, datacenter.OptimalPolicy())
			continue
		}
		p, err := datacenter.PolicyByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no policies given")
	}
	return out, nil
}

func factoryFor(name string, seed uint64, days int) (predict.Factory, error) {
	switch strings.ToLower(name) {
	case "neural":
		shadowDays := 2
		if days < 2 {
			shadowDays = 1
		}
		shadow := trace.Generate(trace.Config{Seed: seed + 1, Days: shadowDays})
		collected := make([][]float64, len(shadow.Groups))
		for i, g := range shadow.Groups {
			collected[i] = g.Load.Values
		}
		f, _ := predict.PretrainShared(predict.PaperNeuralConfig(seed+3), collected, 0.8,
			predict.PaperTrainConfig(seed+2))
		return f, nil
	case "average":
		return predict.NewAverage(), nil
	case "lastvalue":
		return predict.NewLastValue(), nil
	case "movingavg":
		return predict.NewMovingAverage(predict.DefaultWindow), nil
	case "median":
		return predict.NewSlidingWindowMedian(predict.DefaultWindow), nil
	case "expsmoothing":
		return predict.NewExpSmoothing(0.5, "Exp. smoothing 50%"), nil
	default:
		return nil, fmt.Errorf("unknown predictor %q", name)
	}
}

// pct renders a percentage metric; an undefined one (NaN, e.g.
// over-allocation for a resource that never saw load) reads "n/a".
func pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
