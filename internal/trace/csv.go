package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"mmogdc/internal/series"
)

// WriteCSV serializes the dataset in a wide CSV layout: one row per
// sample, one column per server group, with a header row of group
// names and a leading timestamp column (RFC 3339). The layout matches
// what cmd/tracegen emits and what ReadCSV parses back.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(d.Groups)+1)
	header = append(header, "time")
	for _, g := range d.Groups {
		header = append(header, g.Name())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	n := d.Samples()
	row := make([]string, len(d.Groups)+1)
	for i := 0; i < n; i++ {
		var ts time.Time
		if len(d.Groups) > 0 {
			ts = d.Groups[0].Load.TimeAt(i)
		}
		row[0] = ts.Format(time.RFC3339)
		for gi, g := range d.Groups {
			row[gi+1] = strconv.FormatFloat(g.Load.At(i), 'f', 1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV. Group names
// must follow the "r<region>g<index>" convention; region metadata is
// reconstructed with default locations when the region ID is known,
// and synthesized otherwise.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	header := records[0]
	if len(header) < 2 || header[0] != "time" {
		return nil, fmt.Errorf("trace: bad header %v", header)
	}

	var start time.Time
	if len(records) > 1 {
		start, err = time.Parse(time.RFC3339, records[1][0])
		if err != nil {
			return nil, fmt.Errorf("trace: bad timestamp %q: %w", records[1][0], err)
		}
	}

	ds := &Dataset{Config: Config{Start: start}}
	regionSeen := map[int]bool{}
	defaults := DefaultRegions()
	for _, name := range header[1:] {
		var regionID, index int
		if _, err := fmt.Sscanf(name, "r%dg%d", &regionID, &index); err != nil {
			return nil, fmt.Errorf("trace: bad group name %q: %w", name, err)
		}
		g := &Group{
			RegionID: regionID,
			Index:    index,
			Load:     series.New(series.DefaultTick, start),
		}
		ds.Groups = append(ds.Groups, g)
		if !regionSeen[regionID] {
			regionSeen[regionID] = true
			if regionID >= 0 && regionID < len(defaults) {
				ds.Regions = append(ds.Regions, defaults[regionID])
			} else {
				ds.Regions = append(ds.Regions, Region{ID: regionID, Name: fmt.Sprintf("region %d", regionID)})
			}
		}
	}

	for ri, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("trace: row %d has %d fields, want %d", ri+1, len(rec), len(header))
		}
		for gi, g := range ds.Groups {
			v, err := strconv.ParseFloat(rec[gi+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d group %s: %w", ri+1, g.Name(), err)
			}
			g.Load.Append(v)
		}
	}
	return ds, nil
}
