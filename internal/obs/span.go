package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// This file is the span-tracing half of the observability layer: a
// nil-safe, lock-cheap tracer of causally-linked spans driven by the
// injectable Clock (deterministic traces under ManualClock), exported
// as Chrome trace_event JSON (loadable in Perfetto or chrome://tracing)
// or as JSONL for programmatic consumers like cmd/mmogaudit.
//
// The span model mirrors the engines' structure: one root span per
// simulation tick, phase child spans (observe/reduce/acquire), per-zone
// predict spans annotated with the executing par.Pool worker index,
// per-zone acquire spans whose Link field chains failover spans to the
// outage window and retry spans to the rejection they back off from,
// and async begin/end pairs tracking fault windows across ticks.

// SpanID identifies one span within a trace. 0 means "no span".
type SpanID uint64

// Record phases (the trace_event ph values they export as).
const (
	PhaseSpan       = "span"    // complete span ("X")
	PhaseInstant    = "instant" // point event ("i")
	PhaseAsyncBegin = "abegin"  // async window opens ("b")
	PhaseAsyncEnd   = "aend"    // async window closes ("e")
)

// SpanRec is one recorded trace entry. Beyond identity (ID, Parent)
// and timing, it carries the small fixed annotation set the engines
// need — a subject (zone tag or center name), the simulation tick, the
// executing worker index, a free numeric value, and an optional causal
// Link to a related span (failover→outage window, retry→rejection).
type SpanRec struct {
	ID      SpanID    `json:"id"`
	Parent  SpanID    `json:"parent,omitempty"`
	Link    SpanID    `json:"link,omitempty"`
	Name    string    `json:"name"`
	Cat     string    `json:"cat,omitempty"`
	Phase   string    `json:"phase"`
	Subject string    `json:"subject,omitempty"`
	Tick    int       `json:"tick"`
	Worker  int       `json:"worker,omitempty"`
	Value   float64   `json:"value,omitempty"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end,omitempty"`
}

// Tracer records spans into a bounded buffer. When the buffer fills,
// new records are dropped (the earliest history is the valuable part
// of a trace) and counted. All methods are safe on a nil receiver —
// a nil *Tracer begins nil *Spans whose methods are allocation-free
// no-ops and makes no clock calls — and safe for concurrent use.
type Tracer struct {
	// TraceID tags every exported record; runs can set it to correlate
	// multi-process traces. Defaults to 1.
	TraceID uint64
	// Clock times the spans; nil falls back to System. Set a
	// ManualClock for deterministic traces.
	Clock Clock

	mu      sync.Mutex
	nextID  SpanID
	recs    []SpanRec
	cap     int
	dropped uint64
}

// DefaultTracerCapacity is the record budget NewTracer uses for
// capacity <= 0: enough for a one-day run's per-zone spans.
const DefaultTracerCapacity = 1 << 18

// NewTracer builds a tracer retaining the first capacity records
// (DefaultTracerCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{TraceID: 1, cap: capacity}
}

func (t *Tracer) clockNow() time.Time {
	if t.Clock == nil {
		return time.Now()
	}
	return t.Clock.Now()
}

// emit assigns an ID if the record has none and appends it, dropping
// (and counting) once the buffer is full. Returns the record's ID.
func (t *Tracer) emit(rec SpanRec) SpanID {
	t.mu.Lock()
	if rec.ID == 0 {
		t.nextID++
		rec.ID = t.nextID
	}
	if len(t.recs) >= t.cap {
		t.dropped++
	} else {
		t.recs = append(t.recs, rec)
	}
	id := rec.ID
	t.mu.Unlock()
	return id
}

// SetIDBase starts span-ID allocation at base+1. Processes that will
// have their traces merged (mmogload's client trace with mmogd's
// server trace) call this with a per-process prefix — see PIDSpanBase
// — so span IDs never collide across the merged timeline. Call it
// before the first span is begun; it does not renumber existing
// records.
func (t *Tracer) SetIDBase(base SpanID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.nextID = base
	t.mu.Unlock()
}

// allocID hands out the next span ID.
func (t *Tracer) allocID() SpanID {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return id
}

// Span is a live (begun, not yet ended) span handle. All methods are
// no-ops on a nil receiver, so call sites never branch on whether
// tracing is enabled.
type Span struct {
	t   *Tracer
	rec SpanRec
}

// Begin starts a span, reading the tracer's clock. A nil tracer
// returns a nil span (no clock call, no allocation).
func (t *Tracer) Begin(name, cat string, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	return t.BeginAt(name, cat, parent, t.clockNow())
}

// BeginAt starts a span at an already-measured instant (no clock
// call) — the engines bracket phases with one clock read and share it
// between the histogram and the span.
func (t *Tracer) BeginAt(name, cat string, parent SpanID, start time.Time) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, rec: SpanRec{
		ID: t.allocID(), Parent: parent, Name: name, Cat: cat,
		Phase: PhaseSpan, Start: start,
	}}
}

// ID returns the span's ID (0 for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.rec.ID
}

// SetSubject annotates the span with a zone tag or center name.
func (s *Span) SetSubject(v string) {
	if s != nil {
		s.rec.Subject = v
	}
}

// SetTick annotates the span with the simulation tick.
func (s *Span) SetTick(t int) {
	if s != nil {
		s.rec.Tick = t
	}
}

// SetWorker annotates the span with the executing worker index (the
// trace_event tid, so per-worker tracks line up in the viewer).
func (s *Span) SetWorker(w int) {
	if s != nil {
		s.rec.Worker = w
	}
}

// SetValue attaches a free numeric annotation.
func (s *Span) SetValue(v float64) {
	if s != nil {
		s.rec.Value = v
	}
}

// SetLink chains this span to a causally related one (a failover to
// its outage window, a retry to the rejection it backs off from).
func (s *Span) SetLink(id SpanID) {
	if s != nil {
		s.rec.Link = id
	}
}

// End closes the span at the tracer's clock and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.t.clockNow())
}

// EndAt closes the span at an already-measured instant and records it.
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.rec.End = end
	s.t.emit(s.rec)
}

// Complete records an already-timed span in one call (no clock reads)
// and returns its ID.
func (t *Tracer) Complete(rec SpanRec) SpanID {
	if t == nil {
		return 0
	}
	rec.Phase = PhaseSpan
	return t.emit(rec)
}

// Instant records a point event at the tracer's clock.
func (t *Tracer) Instant(name, cat, subject string, tick int) SpanID {
	if t == nil {
		return 0
	}
	return t.emit(SpanRec{
		Name: name, Cat: cat, Phase: PhaseInstant,
		Subject: subject, Tick: tick, Start: t.clockNow(),
	})
}

// AsyncBegin opens an async window (an outage or degradation track
// event spanning ticks) and returns its ID for the matching AsyncEnd
// and for Link annotations on spans it causes.
func (t *Tracer) AsyncBegin(name, cat, subject string, tick int, value float64) SpanID {
	if t == nil {
		return 0
	}
	return t.emit(SpanRec{
		Name: name, Cat: cat, Phase: PhaseAsyncBegin,
		Subject: subject, Tick: tick, Value: value, Start: t.clockNow(),
	})
}

// AsyncEnd closes the async window opened under id. The name and cat
// must match the AsyncBegin (trace_event pairs b/e by name+cat+id).
func (t *Tracer) AsyncEnd(id SpanID, name, cat, subject string, tick int) {
	if t == nil || id == 0 {
		return
	}
	t.emit(SpanRec{
		ID: id, Name: name, Cat: cat, Phase: PhaseAsyncEnd,
		Subject: subject, Tick: tick, Start: t.clockNow(),
	})
}

// Records returns a copy of the retained records in emit order.
func (t *Tracer) Records() []SpanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRec(nil), t.recs...)
}

// Len returns the number of retained records.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// Dropped returns how many records the capacity bound discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// sortedRecords returns the retained records in deterministic export
// order: by start time, then phase, name, subject, and ID. Under a
// sequential run with a ManualClock the order — and therefore the
// exported bytes — is a pure function of the simulation.
func (t *Tracer) sortedRecords() []SpanRec {
	recs := t.Records()
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.ID < b.ID
	})
	return recs
}

// epoch returns the earliest start among the records; exported
// timestamps are microseconds since this instant.
func epoch(recs []SpanRec) time.Time {
	var e time.Time
	for i, r := range recs {
		if i == 0 || r.Start.Before(e) {
			e = r.Start
		}
	}
	return e
}

// traceEvent is one Chrome trace_event object.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// toTraceEvent maps one record into the Chrome schema.
func toTraceEvent(r SpanRec, e time.Time, traceID uint64) traceEvent {
	ev := traceEvent{
		Name: r.Name, Cat: r.Cat, PID: 1, TID: r.Worker,
		TS: micros(r.Start.Sub(e)),
	}
	if ev.Cat == "" {
		ev.Cat = "mmogdc"
	}
	args := map[string]any{"trace": traceID, "span": uint64(r.ID), "tick": r.Tick}
	if r.Parent != 0 {
		args["parent"] = uint64(r.Parent)
	}
	if r.Link != 0 {
		args["link"] = uint64(r.Link)
	}
	if r.Subject != "" {
		args["subject"] = r.Subject
	}
	if r.Value != 0 {
		args["value"] = r.Value
	}
	ev.Args = args
	switch r.Phase {
	case PhaseInstant:
		ev.Ph, ev.S = "i", "t"
	case PhaseAsyncBegin:
		ev.Ph, ev.ID = "b", fmt.Sprintf("0x%x", uint64(r.ID))
	case PhaseAsyncEnd:
		ev.Ph, ev.ID = "e", fmt.Sprintf("0x%x", uint64(r.ID))
	default:
		ev.Ph = "X"
		dur := micros(r.End.Sub(r.Start))
		if dur < 0 {
			dur = 0
		}
		ev.Dur = &dur
	}
	return ev
}

// WriteTrace renders the trace as one Chrome trace_event JSON document
// ({"traceEvents": [...]}), viewable in Perfetto or chrome://tracing.
// A nil tracer writes an empty document. The output is deterministic
// for a deterministic record set (sorted, fixed field order).
func (t *Tracer) WriteTrace(w io.Writer) error {
	recs := t.sortedRecords()
	e := epoch(recs)
	var traceID uint64 = 1
	if t != nil {
		traceID = t.TraceID
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, r := range recs {
		line, err := json.Marshal(toTraceEvent(r, e, traceID))
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return err
}

// WriteJSONL renders the trace as one SpanRec JSON object per line, in
// the same deterministic order as WriteTrace — the programmatic format
// cmd/mmogaudit and replay tooling consume.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, r := range t.sortedRecords() {
		line, err := json.Marshal(r)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
