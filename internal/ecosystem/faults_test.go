package ecosystem

import (
	"math"
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
)

// rejectAll refuses every grant attempt.
type rejectAll struct{}

func (rejectAll) GrantFault(string) (bool, float64) { return true, 0 }

// halveAll trims every grant to half the attempted amount.
type halveAll struct{}

func (halveAll) GrantFault(string) (bool, float64) { return false, 0.5 }

func TestAllocateExcludesNamedCenters(t *testing.T) {
	a := datacenter.NewCenter("a", geo.London, 10, mkPolicy("p", 0.25, time.Hour))
	b := datacenter.NewCenter("b", geo.London, 10, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{a, b})
	req := cpuReq("z", 1.0, geo.London, math.Inf(1))
	req.Exclude = []string{"a"}
	leases, unmet := m.Allocate(req, t0)
	if !unmet.IsZero() {
		t.Fatalf("unmet %v with a non-excluded center free", unmet)
	}
	for _, l := range leases {
		if l.Center.Name == "a" {
			t.Fatal("lease granted by an excluded center")
		}
	}
	if a.Allocated()[datacenter.CPU] != 0 {
		t.Fatal("excluded center holds allocation")
	}

	// Excluding everything behaves like an empty ecosystem.
	req.Exclude = []string{"a", "b"}
	leases, unmet = m.Allocate(req, t0)
	if len(leases) != 0 || unmet[datacenter.CPU] < 1.0 {
		t.Fatalf("fully-excluded ecosystem still granted: %d leases, unmet %v", len(leases), unmet)
	}
}

func TestAllocateDetailedRejectAll(t *testing.T) {
	c := datacenter.NewCenter("dc", geo.London, 10, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{c})
	m.SetFaultInjector(rejectAll{})
	leases, unmet, out := m.AllocateDetailed(cpuReq("z", 2.0, geo.London, math.Inf(1)), t0)
	if len(leases) != 0 {
		t.Fatalf("reject-all injector granted %d leases", len(leases))
	}
	if unmet[datacenter.CPU] < 2.0 {
		t.Fatalf("unmet %v, want the full demand", unmet)
	}
	if out.Rejections == 0 {
		t.Fatal("rejection not counted in the outcome")
	}
	if c.Allocated()[datacenter.CPU] != 0 {
		t.Fatal("rejected grant left allocation behind")
	}
}

func TestAllocateDetailedPartialGrants(t *testing.T) {
	c := datacenter.NewCenter("dc", geo.London, 40, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{c})
	m.SetFaultInjector(halveAll{})
	leases, unmet, out := m.AllocateDetailed(cpuReq("z", 4.0, geo.London, math.Inf(1)), t0)
	if out.PartialGrants == 0 {
		t.Fatal("trimmed grant not counted in the outcome")
	}
	if out.Rejections != 0 {
		t.Fatalf("halving injector counted %d rejections", out.Rejections)
	}
	var granted float64
	for _, l := range leases {
		granted += l.Alloc[datacenter.CPU]
	}
	// The single pass grants roughly half and reports the rest unmet;
	// the accounting must still balance.
	if granted+unmet[datacenter.CPU]+1e-9 < 4.0 {
		t.Fatalf("granted %v + unmet %v < demand 4.0", granted, unmet[datacenter.CPU])
	}
	if granted >= 4.0 {
		t.Fatalf("halving injector granted the full demand (%v)", granted)
	}
}

func TestAllocateNoInjectorUnchanged(t *testing.T) {
	// Allocate (the non-detailed form) on a fault-free matcher must be
	// the baseline behavior: full grant, zero outcome.
	c := datacenter.NewCenter("dc", geo.London, 10, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{c})
	leases, unmet, out := m.AllocateDetailed(cpuReq("z", 1.0, geo.London, math.Inf(1)), t0)
	if len(leases) == 0 || !unmet.IsZero() {
		t.Fatalf("baseline grant failed: %d leases, unmet %v", len(leases), unmet)
	}
	if out.Rejections != 0 || out.PartialGrants != 0 {
		t.Fatalf("fault-free outcome non-zero: %+v", out)
	}
}
