package stats_test

import (
	"fmt"
	"math"

	"mmogdc/internal/stats"
)

// Detecting a diurnal cycle the way the Fig. 3 analysis does: the
// autocorrelation of a periodic load peaks at the full period and
// troughs at the half period.
func ExampleACF() {
	const period = 24
	load := make([]float64, period*10)
	for i := range load {
		load[i] = 1000 + 400*math.Sin(2*math.Pi*float64(i)/period)
	}
	acf := stats.ACF(load, period)
	fmt.Printf("lag 0: %.2f\n", acf[0])
	fmt.Printf("half period: %.2f\n", acf[period/2])
	fmt.Printf("full period: %.2f\n", acf[period])
	// Output:
	// lag 0: 1.00
	// half period: -0.95
	// full period: 0.90
}

// The five-number summary behind the Fig. 6 box plots.
func ExampleSummary() {
	s, _ := stats.Summary([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	fmt.Printf("min %.0f, median %.1f, max %.0f\n", s.Min, s.Median, s.Max)
	// Output: min 1, median 3.5, max 9
}
