package experiments

import (
	"fmt"
	"math"
	"strings"

	"mmogdc/internal/core"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/plot"
	"mmogdc/internal/predict"
	"mmogdc/internal/stats"
	"mmogdc/internal/trace"
)

// hp12Centers builds the Section V-B environment: the Table III sites
// with HP-1 and HP-2 assigned round-robin.
func hp12Centers() []*datacenter.Center {
	return datacenter.BuildCenters(datacenter.TableIIISites(), datacenter.Policies()[:2])
}

// optimalCenters builds the Table III sites with the fine-grained
// "optimal" policy everywhere (Sections V-C, V-F).
func optimalCenters() []*datacenter.Center {
	return datacenter.BuildCenters(datacenter.TableIIISites(),
		[]datacenter.HostingPolicy{datacenter.OptimalPolicy()})
}

// policyCenters builds the Table III sites with one uniform policy.
func policyCenters(p datacenter.HostingPolicy) []*datacenter.Center {
	return datacenter.BuildCenters(datacenter.TableIIISites(),
		[]datacenter.HostingPolicy{p})
}

// runDynamic runs a dynamic-provisioning simulation for one game.
func runDynamic(ds *trace.Dataset, game *mmog.Game, f predict.Factory,
	centers []*datacenter.Center, track bool) (*core.Result, error) {
	return core.Run(core.Config{
		Centers:      centers,
		TrackCenters: track,
		Workloads:    []core.Workload{{Game: game, Dataset: ds, Predictor: f}},
	})
}

// runStatic runs the static-provisioning baseline.
func runStatic(ds *trace.Dataset, game *mmog.Game) (*core.Result, error) {
	return core.Run(core.Config{
		Static:    true,
		Workloads: []core.Workload{{Game: game, Dataset: ds}},
	})
}

// tab5Predictors returns the six Table V prediction algorithms; the
// neural factory is built by the caller.
func tab5Predictors(neural predict.Factory) []struct {
	Name string
	F    predict.Factory
} {
	return []struct {
		Name string
		F    predict.Factory
	}{
		{"Neural", neural},
		{"Average", predict.NewAverage()},
		{"Last value", predict.NewLastValue()},
		{"Moving average", predict.NewMovingAverage(predict.DefaultWindow)},
		{"Sliding window", predict.NewSlidingWindowMedian(predict.DefaultWindow)},
		{"Exp. smoothing", predict.NewExpSmoothing(0.5, "Exp. smoothing 50%")},
	}
}

// Tab05 reproduces Table V: the average performance of dynamic
// allocation under six prediction algorithms, on the HP-1/HP-2
// environment with the O(n^2) update model.
func Tab05(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	game := standardGame()
	neural := neuralFactory(opts)

	var b strings.Builder
	b.WriteString("Table V — dynamic allocation under six prediction algorithms\n")
	b.WriteString("(over/under-allocation in %, events = ticks with |Y| > 1%)\n\n")
	preds := tab5Predictors(neural)
	results, err := parallelMap(len(preds), func(i int) (*core.Result, error) {
		return runDynamic(ds, game, preds[i].F, hp12Centers(), false)
	})
	if err != nil {
		return "", err
	}
	var rows [][]string
	type scored struct {
		name   string
		events int
	}
	var scores []scored
	for i, res := range results {
		rows = append(rows, []string{preds[i].Name,
			f2(res.AvgOverPct[datacenter.CPU]),
			f2(res.AvgOverPct[datacenter.ExtNetIn]),
			f2(res.AvgOverPct[datacenter.ExtNetOut]),
			f2(res.AvgUnderPct[datacenter.CPU]),
			f2(res.AvgUnderPct[datacenter.ExtNetOut]),
			fmt.Sprintf("%d", res.Events),
		})
		scores = append(scores, scored{preds[i].Name, res.Events})
	}
	b.WriteString(table([]string{"predictor", "over CPU", "over ExtNet[in]",
		"over ExtNet[out]", "under CPU", "under ExtNet[out]", "|Y|>1% events"}, rows))

	best := scores[0]
	for _, s := range scores[1:] {
		if s.events < best.events {
			best = s
		}
	}
	fmt.Fprintf(&b, "\nFewest significant under-allocation events: %s (%d)\n", best.name, best.events)
	b.WriteString("The huge ExtNet[in] over-allocation is the HP-1/HP-2 policies bundling too much\n")
	b.WriteString("network bandwidth per CPU bulk — the paper's observation verbatim.\n")
	return b.String(), nil
}

// Fig07 reproduces Figure 7: the cumulative number of significant
// under-allocation events over time for the five normally-performing
// predictors (Average is excluded, as in the paper's figure).
func Fig07(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	game := standardGame()
	neural := neuralFactory(opts)

	preds := tab5Predictors(neural)
	// Drop Average (the paper plots the normal-performance class).
	var kept []struct {
		Name string
		F    predict.Factory
	}
	for _, p := range preds {
		if p.Name != "Average" {
			kept = append(kept, p)
		}
	}

	results, err := parallelMap(len(kept), func(i int) (*core.Result, error) {
		return runDynamic(ds, game, kept[i].F, hp12Centers(), false)
	})
	if err != nil {
		return "", err
	}
	var series [][]int
	for _, res := range results {
		series = append(series, res.CumEvents)
	}

	var b strings.Builder
	b.WriteString("Figure 7 — cumulative significant under-allocation events over time\n\n")
	var chartSeries []plot.Series
	for i, p := range kept {
		vals := make([]float64, len(series[i]))
		for j, v := range series[i] {
			vals[j] = float64(v)
		}
		chartSeries = append(chartSeries, plot.Series{Name: p.Name, Values: vals})
	}
	chart := plot.Chart{YLabel: "cumulative |Y|>1% events", XLabel: "days", Series: chartSeries}
	b.WriteString(chart.Render())
	b.WriteByte('\n')
	header := []string{"day"}
	for _, p := range kept {
		header = append(header, p.Name)
	}
	var rows [][]string
	n := len(series[0])
	for d := 1; d*trace.SamplesPerDay <= n; d++ {
		idx := d*trace.SamplesPerDay - 1
		row := []string{fmt.Sprintf("%d", d)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%d", s[idx]))
		}
		rows = append(rows, row)
	}
	b.WriteString(table(header, rows))
	return b.String(), nil
}

// Fig08 reproduces Figure 8: the CPU over-allocation over time under
// static vs dynamic (Neural-driven) resource allocation.
func Fig08(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	game := standardGame()

	// Fig. 8 compares the two allocation mechanisms on the optimal
	// hosting policy (Table II), isolating the static-vs-dynamic
	// difference from policy-induced waste.
	dyn, err := runDynamic(ds, game, neuralFactory(opts), optimalCenters(), false)
	if err != nil {
		return "", err
	}
	st, err := runStatic(ds, game)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Figure 8 — CPU over-allocation [%]: static vs dynamic (Neural predictor)\n\n")
	chart := plot.Chart{
		YLabel: "over-allocation [%]",
		XLabel: "days",
		Series: []plot.Series{
			{Name: "static", Values: st.OverPct},
			{Name: "dynamic", Values: dyn.OverPct},
		},
	}
	b.WriteString(chart.Render())
	b.WriteByte('\n')
	var rows [][]string
	half := trace.SamplesPerDay / 2
	for w := 0; (w+1)*half <= len(dyn.OverPct) && len(rows) < 28; w++ {
		seg := func(xs []float64) float64 { return stats.Mean(xs[w*half : (w+1)*half]) }
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", float64(w)/2),
			fmt.Sprintf("%.0f", seg(st.OverPct)),
			fmt.Sprintf("%.0f", seg(dyn.OverPct)),
		})
	}
	b.WriteString(table([]string{"day", "static", "dynamic"}, rows))
	ratio := st.AvgOverPct[datacenter.CPU] / dyn.AvgOverPct[datacenter.CPU]
	fmt.Fprintf(&b, "\nAverage over-allocation: static %.0f%%, dynamic %.0f%% — static is %.1fx more\n",
		st.AvgOverPct[datacenter.CPU], dyn.AvgOverPct[datacenter.CPU], ratio)
	b.WriteString("inefficient (paper: ~250% vs ~25%, i.e. dynamic provisioning wins by 5-10x).\n")
	return b.String(), nil
}

// updateModelGame builds the standard game with a specific update
// model.
func updateModelGame(m mmog.UpdateModel) *mmog.Game {
	g := standardGame()
	g.Update = m
	g.Name = "RuneScape-like " + m.String()
	return g
}

// Tab06 reproduces Table VI: static vs dynamic allocation across the
// five interaction types, on the optimal hosting policy.
func Tab06(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	neural := neuralFactory(opts)

	var b strings.Builder
	b.WriteString("Table VI — static vs dynamic allocation for five interaction types\n\n")
	type pair struct{ st, dyn *core.Result }
	results, err := parallelMap(len(mmog.AllUpdateModels), func(i int) (pair, error) {
		game := updateModelGame(mmog.AllUpdateModels[i])
		st, err := runStatic(ds, game)
		if err != nil {
			return pair{}, err
		}
		dyn, err := runDynamic(ds, game, neural, optimalCenters(), false)
		if err != nil {
			return pair{}, err
		}
		return pair{st, dyn}, nil
	})
	if err != nil {
		return "", err
	}
	var rows [][]string
	prevOver := -1.0
	monotone := true
	for i, m := range mmog.AllUpdateModels {
		st, dyn := results[i].st, results[i].dyn
		rows = append(rows, []string{m.String(),
			f2(st.AvgOverPct[datacenter.CPU]),
			f2(dyn.AvgOverPct[datacenter.CPU]),
			f3(dyn.AvgUnderPct[datacenter.CPU]),
			fmt.Sprintf("%d", dyn.Events),
		})
		if dyn.AvgOverPct[datacenter.CPU] < prevOver {
			monotone = false
		}
		prevOver = dyn.AvgOverPct[datacenter.CPU]
	}
	b.WriteString(table([]string{"interaction type", "static over [%]",
		"dynamic over [%]", "dynamic under [%]", "|Y|>1% events"}, rows))
	fmt.Fprintf(&b, "\nOver-allocation rises with interaction complexity (monotone: %v); static is\n", monotone)
	b.WriteString("several times less efficient than dynamic at every complexity (paper: 5-7x).\n")
	return b.String(), nil
}

// Fig09 reproduces Figure 9: the over- and under-allocation time
// series for the O(n), O(n^2), and O(n^3) update models.
func Fig09(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	neural := neuralFactory(opts)

	models := []mmog.UpdateModel{mmog.UpdateLinear, mmog.UpdateQuadratic, mmog.UpdateCubic}
	results, err := parallelMap(len(models), func(i int) (*core.Result, error) {
		return runDynamic(ds, updateModelGame(models[i]), neural, optimalCenters(), false)
	})
	if err != nil {
		return "", err
	}
	var over, under [][]float64
	for _, res := range results {
		over = append(over, res.OverPct)
		under = append(under, res.UnderPct)
	}

	var b strings.Builder
	b.WriteString("Figure 9 — CPU over/under-allocation [%] over time per update model\n\n")
	header := []string{"day"}
	for _, m := range models {
		header = append(header, "over "+m.String(), "under "+m.String())
	}
	var rows [][]string
	day := trace.SamplesPerDay
	for d := 0; (d+1)*day <= len(over[0]); d++ {
		row := []string{fmt.Sprintf("%d", d+1)}
		for i := range models {
			row = append(row,
				fmt.Sprintf("%.0f", stats.Mean(over[i][d*day:(d+1)*day])),
				f3(stats.Min(under[i][d*day:(d+1)*day])))
		}
		rows = append(rows, row)
	}
	b.WriteString(table(header, rows))
	b.WriteString("\nHigher update-model complexity -> larger over-allocation fluctuations and\n")
	b.WriteString("deeper under-allocation dips, as in the paper.\n")
	return b.String(), nil
}

// Fig10 reproduces Figure 10: cumulative significant under-allocation
// events over time for all five update models.
func Fig10(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	neural := neuralFactory(opts)

	results, err := parallelMap(len(mmog.AllUpdateModels), func(i int) (*core.Result, error) {
		return runDynamic(ds, updateModelGame(mmog.AllUpdateModels[i]), neural, optimalCenters(), false)
	})
	if err != nil {
		return "", err
	}
	var series [][]int
	for _, res := range results {
		series = append(series, res.CumEvents)
	}

	var b strings.Builder
	b.WriteString("Figure 10 — cumulative |Y|>1% events over time per update model\n\n")
	header := []string{"day"}
	for _, m := range mmog.AllUpdateModels {
		header = append(header, m.String())
	}
	var rows [][]string
	day := trace.SamplesPerDay
	for d := 1; d*day <= len(series[0]); d++ {
		row := []string{fmt.Sprintf("%d", d)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%d", s[d*day-1]))
		}
		rows = append(rows, row)
	}
	b.WriteString(table(header, rows))
	return b.String(), nil
}

// Fig11 reproduces Figure 11: the impact of the CPU resource bulk
// (policies HP-3 through HP-7) on over/under-allocation and events.
func Fig11(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	game := standardGame()
	neural := neuralFactory(opts)

	var b strings.Builder
	b.WriteString("Figure 11 — impact of the CPU resource bulk (HP-3..HP-7, time bulk 180 min)\n\n")
	names := []string{"HP-3", "HP-4", "HP-5", "HP-6", "HP-7"}
	rows, err := policySweep(names, ds, game, neural, func(p datacenter.HostingPolicy) string {
		return f2(p.Bulk[datacenter.CPU])
	})
	if err != nil {
		return "", err
	}
	b.WriteString(table([]string{"policy", "CPU bulk [units]", "over [%]", "under [%]", "events"}, rows))
	b.WriteString("\nCoarser bulks -> higher over-allocation; finer bulks -> more under-allocation\n")
	b.WriteString("events (less rounding slack to absorb prediction misses), as in the paper.\n")
	return b.String(), nil
}

// Fig12 reproduces Figure 12: the impact of the time bulk (policies
// HP-5 and HP-8 through HP-11, 3 h to 48 h).
func Fig12(o Options) (string, error) {
	opts := o.withDefaults()
	ds := provisioningTrace(opts)
	game := standardGame()
	neural := neuralFactory(opts)

	var b strings.Builder
	b.WriteString("Figure 12 — impact of the time bulk (CPU bulk fixed at 0.37 units)\n\n")
	names := []string{"HP-5", "HP-8", "HP-9", "HP-10", "HP-11"}
	rows, err := policySweep(names, ds, game, neural, func(p datacenter.HostingPolicy) string {
		return fmt.Sprintf("%.0f", p.TimeBulk.Hours())
	})
	if err != nil {
		return "", err
	}
	b.WriteString(table([]string{"policy", "time bulk [h]", "over [%]", "under [%]", "events"}, rows))
	b.WriteString("\nShorter time bulks make allocation much more efficient; longer bulks pin\n")
	b.WriteString("resources past their need. Events concentrate at the shortest bulks.\n")
	return b.String(), nil
}

// policySweep runs one dynamic simulation per Table IV policy name in
// parallel and renders the standard sweep rows; knob extracts the
// swept parameter's display value from the policy.
func policySweep(names []string, ds *trace.Dataset, game *mmog.Game,
	neural predict.Factory, knob func(datacenter.HostingPolicy) string) ([][]string, error) {
	policies := make([]datacenter.HostingPolicy, len(names))
	for i, name := range names {
		p, err := datacenter.PolicyByName(name)
		if err != nil {
			return nil, err
		}
		policies[i] = p
	}
	results, err := parallelMap(len(policies), func(i int) (*core.Result, error) {
		return runDynamic(ds, game, neural, policyCenters(policies[i]), false)
	})
	if err != nil {
		return nil, err
	}
	rows := make([][]string, len(policies))
	for i, res := range results {
		rows[i] = []string{names[i],
			knob(policies[i]),
			f2(res.AvgOverPct[datacenter.CPU]),
			f3(res.AvgUnderPct[datacenter.CPU]),
			fmt.Sprintf("%d", res.Events),
		}
	}
	return rows, nil
}

// naSetup builds the Section V-E environment: only the North American
// sites, with coarse policies on the East coast that become gradually
// finer toward the West, plus the North American slice of the trace.
func naSetup(o Options) (*trace.Dataset, []*datacenter.Center) {
	// Policy gradient: East coarse -> West fine.
	byName := map[string]string{
		"US East":     "HP-7",
		"Canada East": "HP-7",
		"US Central":  "HP-5",
		"Canada West": "HP-4",
		"US West":     "HP-3",
	}
	var centers []*datacenter.Center
	for _, s := range datacenter.TableIIISites() {
		if s.Continent != "North America" {
			continue
		}
		p, _ := datacenter.PolicyByName(byName[s.Name])
		centers = append(centers, datacenter.BuildCenters([]datacenter.SiteSpec{s},
			[]datacenter.HostingPolicy{p})...)
	}

	// North American player regions only.
	all := trace.DefaultRegions()
	regions := []trace.Region{all[1], all[2], all[3]} // US East, US West, US Central
	if o.Quick {
		for i := range regions {
			regions[i].Groups = 6
		}
	}
	ds := trace.Generate(trace.Config{Seed: o.Seed, Days: o.Days, Regions: regions})
	return ds, centers
}

// latencyClassGame clones the standard game with a latency class.
func latencyClassGame(c geo.LatencyClass) *mmog.Game {
	g := standardGame()
	g.LatencyKm = c.MaxDistanceKm()
	g.Name = fmt.Sprintf("RuneScape-like @ %v", c)
	return g
}

// Fig13 reproduces Figure 13: the distribution of allocated resources
// over the North American data centers for the five latency-tolerance
// classes.
func Fig13(o Options) (string, error) {
	opts := o.withDefaults()
	if !opts.Quick && opts.Days > 7 {
		opts.Days = 7 // five full simulations; a week each matches the paper's patterns
	}
	neural := neuralFactory(opts)

	var b strings.Builder
	b.WriteString("Figure 13 — share of allocated CPU per center, by latency tolerance\n\n")
	var centerNames []string
	{
		_, centers := naSetup(opts)
		for _, c := range centers {
			centerNames = append(centerNames, c.Name)
		}
	}
	rows, err := parallelMap(len(geo.AllLatencyClasses), func(i int) ([]string, error) {
		class := geo.AllLatencyClasses[i]
		ds, centers := naSetup(opts)
		res, err := runDynamic(ds, latencyClassGame(class), neural, centers, true)
		if err != nil {
			return nil, err
		}
		total := 0.0
		for _, c := range centers {
			total += res.CenterStats[c.Name].AvgAllocatedCPU
		}
		row := []string{class.String()}
		for _, c := range centers {
			share := 0.0
			if total > 0 {
				share = res.CenterStats[c.Name].AvgAllocatedCPU / total * 100
			}
			row = append(row, fmt.Sprintf("%.0f%%", share))
		}
		return row, nil
	})
	if err != nil {
		return "", err
	}
	header := append([]string{"latency tolerance"}, centerNames...)
	b.WriteString(table(header, rows))
	b.WriteString("\nWith growing tolerance, demand escapes the coarse-policy East-coast centers\n")
	b.WriteString("toward the finer-grained Central and West-coast ones.\n")
	return b.String(), nil
}

// Fig14 reproduces Figure 14: the per-center allocation at the Very
// far tolerance — East-coast demand served in the West, and the
// coarse-policy East-coast centers the only ones with free resources.
func Fig14(o Options) (string, error) {
	opts := o.withDefaults()
	if !opts.Quick && opts.Days > 7 {
		opts.Days = 7
	}
	neural := neuralFactory(opts)
	ds, centers := naSetup(opts)
	res, err := runDynamic(ds, latencyClassGame(geo.VeryFar), neural, centers, true)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Figure 14 — per-center CPU allocation at Very far tolerance [units]\n\n")
	var rows [][]string
	freeEast, freeOther := 0.0, 0.0
	for _, c := range centers {
		cs := res.CenterStats[c.Name]
		east := cs.AllocatedByRegion["US East Coast"]
		other := cs.AvgAllocatedCPU - east
		if other < 0 {
			other = 0
		}
		rows = append(rows, []string{c.Name, c.Policy.Name,
			f2(east), f2(other), f2(cs.AvgFreeCPU)})
		if strings.Contains(c.Name, "East") {
			freeEast += cs.AvgFreeCPU
		} else {
			freeOther += cs.AvgFreeCPU
		}
	}
	b.WriteString(table([]string{"center", "policy",
		"East-coast requests", "other requests", "free"}, rows))
	fmt.Fprintf(&b, "\nFree CPU concentrates in the coarse-policy East-coast centers (%.1f units vs\n", freeEast)
	fmt.Fprintf(&b, "%.1f in the rest): unsuitable policies are penalized by being left unused,\n", freeOther)
	b.WriteString("while East-coast demand runs on Central/West resources.\n")
	return b.String(), nil
}

// Tab07 reproduces Table VII: over/under-allocation while concurrently
// servicing three MMOG types in different proportions.
func Tab07(o Options) (string, error) {
	opts := o.withDefaults()
	full := provisioningTrace(opts)
	neural := neuralFactory(opts)

	mixes := [][3]int{
		{0, 0, 100}, {5, 5, 90}, {10, 10, 80}, {25, 25, 50}, {33, 33, 33}, {0, 100, 0}, {100, 0, 0},
	}
	games := []*mmog.Game{
		{Name: "MMOG A", Update: mmog.UpdateNLogN, LatencyKm: math.Inf(1), Profile: mmog.DefaultProfile},
		{Name: "MMOG B", Update: mmog.UpdateQuadratic, LatencyKm: math.Inf(1), Profile: mmog.DefaultProfile},
		{Name: "MMOG C", Update: mmog.UpdateQuadraticLog, LatencyKm: math.Inf(1), Profile: mmog.DefaultProfile},
	}

	var b strings.Builder
	b.WriteString("Table VII — concurrent MMOG mixes (A: O(n log n), B: O(n^2), C: O(n^2 log n))\n\n")
	rows, err := parallelMap(len(mixes), func(i int) ([]string, error) {
		mix := mixes[i]
		workloads, err := splitWorkloads(full, games, mix, neural)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.Config{Centers: optimalCenters(), Workloads: workloads})
		if err != nil {
			return nil, err
		}
		return []string{
			fmt.Sprintf("%d/%d/%d", mix[0], mix[1], mix[2]),
			f2(res.AvgOverPct[datacenter.CPU]),
			f3(res.AvgUnderPct[datacenter.CPU]),
			fmt.Sprintf("%d", res.Events),
		}, nil
	})
	if err != nil {
		return "", err
	}
	b.WriteString(table([]string{"A/B/C [%]", "over [%]", "under [%]", "events"}, rows))
	b.WriteString("\nEfficiency is determined by the heaviest consumer: any mix containing the\n")
	b.WriteString("compute-intensive B or C games costs like a B/C-only workload, while the\n")
	b.WriteString("all-A scenario is markedly cheaper — matching the paper's conclusion.\n")
	return b.String(), nil
}

// splitWorkloads partitions the dataset's server groups among the
// games in proportion to mix (percentages; zero-share games get no
// groups).
func splitWorkloads(ds *trace.Dataset, games []*mmog.Game, mix [3]int, f predict.Factory) ([]core.Workload, error) {
	if len(games) != 3 {
		return nil, fmt.Errorf("experiments: need exactly 3 games")
	}
	total := mix[0] + mix[1] + mix[2]
	if total == 0 {
		return nil, fmt.Errorf("experiments: empty mix")
	}
	// Deterministic proportional assignment via largest-remainder over
	// a running quota.
	sub := make([][]*trace.Group, 3)
	var quota [3]float64
	for _, g := range ds.Groups {
		best, bestGap := -1, -1.0
		for i := range games {
			want := float64(mix[i]) / float64(total)
			gap := want - quota[i]/float64(1+len(sub[0])+len(sub[1])+len(sub[2]))
			if mix[i] > 0 && gap > bestGap {
				best, bestGap = i, gap
			}
		}
		sub[best] = append(sub[best], g)
		quota[best]++
	}
	var out []core.Workload
	for i, game := range games {
		if len(sub[i]) == 0 {
			continue
		}
		out = append(out, core.Workload{
			Game: game,
			Dataset: &trace.Dataset{
				Config:  ds.Config,
				Regions: ds.Regions,
				Groups:  sub[i],
			},
			Predictor: f,
		})
	}
	return out, nil
}
