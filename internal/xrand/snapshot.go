package xrand

import (
	"fmt"
	"math"
)

// Snapshot captures the generator's full state so a checkpointed
// simulation can resume its stochastic streams mid-sequence: the PCG
// state and increment plus the spare Box-Muller Gaussian. The layout
// is four little-endian-free fixed words handled by the caller's
// codec; Snapshot and Restore are deliberately codec-agnostic.
func (r *Rand) Snapshot() [4]uint64 {
	var g uint64
	if r.hasGauss {
		g = 1
	}
	return [4]uint64{r.state, r.inc, math.Float64bits(r.gauss), g}
}

// Restore re-establishes a state captured by Snapshot. The increment
// must be odd (every valid PCG stream selector is); anything else is
// a corrupted snapshot.
func (r *Rand) Restore(s [4]uint64) error {
	if s[1]&1 == 0 {
		return fmt.Errorf("xrand: invalid snapshot (even increment)")
	}
	r.state = s[0]
	r.inc = s[1]
	r.gauss = math.Float64frombits(s[2])
	r.hasGauss = s[3] != 0
	return nil
}
