package obs

import (
	"math"
	"runtime/metrics"
)

// RuntimeSampler exports the Go runtime's own health — heap size, GC
// pause distribution, goroutine count, scheduler latency — as gauges
// in the bundle's registry, read from the stdlib runtime/metrics
// interface. The daemon's obs handler samples it at /metrics scrape
// time, and the last-sample gauge is stamped from the bundle's
// injected clock so tests see deterministic sample times. Like every
// other instrument the sampler is write-only telemetry: nothing in
// the provisioning path reads it back.
type RuntimeSampler struct {
	clock   Clock
	samples []metrics.Sample

	heapBytes  *Gauge
	totalBytes *Gauge
	goroutines *Gauge
	gcCycles   *Gauge
	gcPauseP50 *Gauge
	gcPauseP99 *Gauge
	gcPauseMax *Gauge
	schedP50   *Gauge
	schedP99   *Gauge
	schedMax   *Gauge
	lastUnix   *Gauge
	count      *Counter
}

// The runtime/metrics names sampled. Histogram-valued metrics are
// reduced to p50/p99/max gauges (full runtime histograms would bloat
// the exposition for little diagnostic gain).
const (
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmTotalBytes = "/memory/classes/total:bytes"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// NewRuntimeSampler registers the runtime gauges in r and returns a
// sampler timed by clock (nil falls back to System). Gauges stay zero
// until the first Sample call.
func NewRuntimeSampler(r *Registry, clock Clock) *RuntimeSampler {
	names := []string{rmHeapBytes, rmTotalBytes, rmGoroutines, rmGCCycles, rmGCPauses, rmSchedLat}
	s := &RuntimeSampler{clock: clock, samples: make([]metrics.Sample, len(names))}
	for i, n := range names {
		s.samples[i].Name = n
	}
	s.heapBytes = r.Gauge("mmogdc_runtime_heap_bytes",
		"Bytes of live heap objects (runtime/metrics "+rmHeapBytes+").")
	s.totalBytes = r.Gauge("mmogdc_runtime_total_bytes",
		"Total bytes of memory mapped by the Go runtime.")
	s.goroutines = r.Gauge("mmogdc_runtime_goroutines",
		"Live goroutine count.")
	s.gcCycles = r.Gauge("mmogdc_runtime_gc_cycles_total",
		"Completed GC cycles since process start.")
	s.gcPauseP50 = r.Gauge("mmogdc_runtime_gc_pause_seconds", "GC stop-the-world pause quantiles.", L("q", "0.5"))
	s.gcPauseP99 = r.Gauge("mmogdc_runtime_gc_pause_seconds", "GC stop-the-world pause quantiles.", L("q", "0.99"))
	s.gcPauseMax = r.Gauge("mmogdc_runtime_gc_pause_seconds", "GC stop-the-world pause quantiles.", L("q", "max"))
	s.schedP50 = r.Gauge("mmogdc_runtime_sched_latency_seconds", "Goroutine scheduling latency quantiles.", L("q", "0.5"))
	s.schedP99 = r.Gauge("mmogdc_runtime_sched_latency_seconds", "Goroutine scheduling latency quantiles.", L("q", "0.99"))
	s.schedMax = r.Gauge("mmogdc_runtime_sched_latency_seconds", "Goroutine scheduling latency quantiles.", L("q", "max"))
	s.lastUnix = r.Gauge("mmogdc_runtime_last_sample_unix_seconds",
		"Clock time of the most recent runtime sample.")
	s.count = r.Counter("mmogdc_runtime_samples_total",
		"Runtime self-telemetry samples taken.")
	return s
}

// Sample reads the runtime metrics and publishes them. Safe for
// concurrent use (runtime/metrics.Read is) and on a nil receiver.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	metrics.Read(s.samples)
	for _, m := range s.samples {
		switch m.Name {
		case rmHeapBytes:
			s.heapBytes.Set(float64(m.Value.Uint64()))
		case rmTotalBytes:
			s.totalBytes.Set(float64(m.Value.Uint64()))
		case rmGoroutines:
			s.goroutines.Set(float64(m.Value.Uint64()))
		case rmGCCycles:
			s.gcCycles.Set(float64(m.Value.Uint64()))
		case rmGCPauses:
			p50, p99, max := histQuantiles(m.Value.Float64Histogram())
			s.gcPauseP50.Set(p50)
			s.gcPauseP99.Set(p99)
			s.gcPauseMax.Set(max)
		case rmSchedLat:
			p50, p99, max := histQuantiles(m.Value.Float64Histogram())
			s.schedP50.Set(p50)
			s.schedP99.Set(p99)
			s.schedMax.Set(max)
		}
	}
	clock := s.clock
	if clock == nil {
		clock = System
	}
	s.lastUnix.Set(float64(clock.Now().UnixNano()) / 1e9)
	s.count.Inc()
}

// histQuantiles reduces a runtime Float64Histogram to approximate
// p50/p99/max, reporting each as the upper edge of the bucket the
// quantile falls in (the lower edge for the unbounded last bucket).
func histQuantiles(h *metrics.Float64Histogram) (p50, p99, max float64) {
	if h == nil || len(h.Counts) == 0 {
		return 0, 0, 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, 0, 0
	}
	edge := func(i int) float64 {
		// Bucket i spans Buckets[i]..Buckets[i+1]; clamp the open-ended
		// edges to the nearest finite boundary.
		hi := h.Buckets[i+1]
		if math.IsInf(hi, 0) {
			hi = h.Buckets[i]
		}
		if math.IsInf(hi, 0) {
			return 0
		}
		return hi
	}
	at := func(q float64) float64 {
		want := uint64(q * float64(total))
		if want == 0 {
			want = 1
		}
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			if cum >= want {
				return edge(i)
			}
		}
		return edge(len(h.Counts) - 1)
	}
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			max = edge(i)
			break
		}
	}
	return at(0.50), at(0.99), max
}
