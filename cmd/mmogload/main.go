// Command mmogload replays emulator traffic against a running mmogd
// and reports how the daemon's observe loop held up — a
// Meterstick-style performance-variability view: tail latency of the
// ingestion round trip (p50/p95/p99/max), the shed rate under
// backpressure, and the admission accounting.
//
//	mmogd -addr 127.0.0.1:8080 &
//	mmogload -addr 127.0.0.1:8080 -n 720 -interval 10ms -rate 10 -o load.json
//	mmogaudit -events events.jsonl -load load.json
//
// The generator steps an emulated game world (the paper's Section
// IV-D1 emulator) and POSTs each two-minute snapshot to /v1/observe at
// interval/rate pacing: -rate 1 is the base cadence, -rate 10 the
// 10x overload run that must shed with 429s instead of queueing
// without bound. The -o report is consumable by cmd/mmogaudit.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"mmogdc/internal/audit"
	"mmogdc/internal/emulator"
	"mmogdc/internal/obs"
	"mmogdc/internal/stats"
)

func main() {
	var (
		addr     = flag.String("addr", "", "mmogd address (host:port); required")
		game     = flag.String("game", "live", "game name to observe for")
		n        = flag.Int("n", 720, "number of samples to send (720 = one emulated day)")
		interval = flag.Duration("interval", 10*time.Millisecond, "base pacing between samples")
		rate     = flag.Float64("rate", 1, "rate multiplier: effective pacing is interval/rate")
		grid     = flag.Int("grid", 12, "emulator sub-zone grid side (grid*grid zones)")
		entities = flag.Int("entities", 1800, "peak emulated entity population")
		seed     = flag.Uint64("seed", 1, "emulator seed")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		retries  = flag.Int("retries", 3, "max re-sends per sample after a transport error or 503 (0 disables)")
		outPath  = flag.String("o", "", "write the JSON load report here (for mmogaudit -load)")
		traceOut = flag.String("trace-out", "", "write a Chrome trace of client request spans here (enables W3C traceparent propagation)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "mmogload: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	if *rate <= 0 || *n <= 0 {
		fmt.Fprintln(os.Stderr, "mmogload: -rate and -n must be > 0")
		os.Exit(2)
	}

	cfg := emulator.Config{
		Name:     "load",
		Seed:     *seed,
		GridW:    *grid,
		GridH:    *grid,
		Entities: *entities,
		Steps:    *n,
	}
	world := emulator.NewWorld(cfg)

	client := &http.Client{Timeout: *timeout}
	url := "http://" + *addr + "/v1/observe"
	pace := time.Duration(float64(*interval) / *rate)

	// With -trace-out every request carries a W3C traceparent whose
	// parent-id is this request's client span, so the daemon's
	// per-request span chains under it and mmogaudit can merge the two
	// trace files into one cross-process timeline. The trace-id is
	// derived from the seed: two runs with the same seed share one
	// trace.
	var tracer *obs.Tracer
	traceID := *seed
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
		tracer.SetIDBase(obs.PIDSpanBase())
	}

	var accepted, shed, rejected, retried int
	rtts := make([]float64, 0, *n)
	byStatus := map[string][]float64{}
	values := make([]float64, *grid**grid)
	body := &bytes.Buffer{}
	start := time.Now()
	next := start
	for i := 0; i < *n; i++ {
		world.Step()
		counts := world.ZoneCounts()
		for j, c := range counts {
			values[j] = float64(c)
		}
		body.Reset()
		if err := json.NewEncoder(body).Encode(map[string]any{
			"game": *game, "values": values,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "mmogload:", err)
			os.Exit(1)
		}
		// One attempt returns the status code, or 0 on a transport
		// error. Transient failures — no response at all, or a 503
		// (daemon draining, region circuit open) — are retried with a
		// capped jittered backoff; a 429 is the backpressure signal the
		// overload run exists to measure and is never retried. The RTT
		// sample covers the whole resolution including retries: that is
		// the observe-loop latency a client actually experiences.
		var span *obs.Span
		var traceparent string
		if tracer != nil {
			span = tracer.Begin("client.request", "client", 0)
			span.SetSubject(*game)
			span.SetTick(i)
			traceparent = obs.Traceparent(traceID, span.ID())
		}
		post := func() int {
			req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body.Bytes()))
			if err != nil {
				return 0
			}
			req.Header.Set("Content-Type", "application/json")
			if traceparent != "" {
				req.Header.Set("traceparent", traceparent)
			}
			resp, err := client.Do(req)
			if err != nil {
				return 0
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return resp.StatusCode
		}
		t0 := time.Now()
		status := post()
		for r := 0; r < *retries && (status == 0 || status == http.StatusServiceUnavailable); r++ {
			time.Sleep(backoff(r, i))
			retried++
			status = post()
		}
		rtt := float64(time.Since(t0)) / float64(time.Millisecond)
		rtts = append(rtts, rtt)
		// The client span covers the whole resolution, retries
		// included, and records the final status — the same window the
		// RTT sample measures.
		if span != nil {
			span.SetValue(float64(status))
			span.End()
		}
		var bucket string
		switch status {
		case http.StatusAccepted:
			accepted++
			bucket = "accepted"
		case http.StatusTooManyRequests:
			shed++
			bucket = "shed"
		default:
			rejected++
			bucket = "rejected"
		}
		byStatus[bucket] = append(byStatus[bucket], rtt)
		// Fixed-schedule pacing (not sleep-after-response): a slow
		// daemon does not slow the generator down, which is what makes
		// the overload run an overload.
		next = next.Add(pace)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	elapsed := time.Since(start)

	report := &audit.LoadReport{
		Game:            *game,
		Samples:         *n,
		Accepted:        accepted,
		Shed:            shed,
		Rejected:        rejected,
		DurationSeconds: elapsed.Seconds(),
		AttemptedHz:     float64(*n) / elapsed.Seconds(),
		Retries:         retried,
		RTT: audit.LoadQuantiles{
			P50MS: stats.Quantile(rtts, 0.50),
			P95MS: stats.Quantile(rtts, 0.95),
			P99MS: stats.Quantile(rtts, 0.99),
			MaxMS: stats.Max(rtts),
		},
	}
	report.RTTByStatus = map[string]audit.StatusQuantiles{}
	for bucket, samples := range byStatus {
		report.RTTByStatus[bucket] = audit.StatusQuantiles{
			Count: len(samples),
			LoadQuantiles: audit.LoadQuantiles{
				P50MS: stats.Quantile(samples, 0.50),
				P95MS: stats.Quantile(samples, 0.95),
				P99MS: stats.Quantile(samples, 0.99),
				MaxMS: stats.Max(samples),
			},
		}
	}

	fmt.Printf("mmogload: %d samples in %.2fs (%.1f/s attempted, pace %s)\n",
		report.Samples, report.DurationSeconds, report.AttemptedHz, pace)
	fmt.Printf("mmogload: sent=%d accepted=%d shed=%d rejected=%d retries=%d\n",
		report.Samples, report.Accepted, report.Shed, report.Rejected, report.Retries)
	fmt.Printf("mmogload: rtt_ms p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		report.RTT.P50MS, report.RTT.P95MS, report.RTT.P99MS, report.RTT.MaxMS)
	for _, bucket := range []string{"accepted", "shed", "rejected"} {
		if q, ok := report.RTTByStatus[bucket]; ok {
			fmt.Printf("mmogload: rtt_ms[%s] n=%d p50=%.3f p99=%.3f max=%.3f\n",
				bucket, q.Count, q.P50MS, q.P99MS, q.MaxMS)
		}
	}

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = tracer.WriteTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmogload: trace-out:", err)
			os.Exit(1)
		}
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmogload:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "mmogload:", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// backoff returns the delay before retry r of sample i: exponential
// from 5ms, capped at 80ms, with deterministic +/-25% jitter drawn
// from the sample/attempt pair so concurrent generators do not hammer
// a recovering daemon in lockstep.
func backoff(r, i int) time.Duration {
	d := 5 * time.Millisecond << uint(r)
	if d > 80*time.Millisecond {
		d = 80 * time.Millisecond
	}
	h := uint64(i)*0x9E3779B97F4A7C15 + uint64(r+1)*0xBF58476D1CE4E5B9
	jitter := time.Duration(h%uint64(d/2)) - d/4
	return d + jitter
}
