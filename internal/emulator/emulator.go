// Package emulator reimplements the paper's distributed game emulator
// (Section IV-D1). The authors could not use the real RuneScape server
// code, so they built an emulator that drives artificial players
// through a sub-zoned game world and samples the per-sub-zone entity
// counts every two minutes; the resulting signals are the training and
// evaluation data for the load predictors (Fig. 5).
//
// The emulated players follow four AI profiles matching the four
// classic MMOG behavioral archetypes (achiever, explorer, socializer,
// killer):
//
//   - aggressive: seeks and interacts with opponents, converging on
//     populated sub-zones and creating interaction hot-spots;
//   - scout: discovers uncharted zones, spreading out;
//   - team player: acts in a group with its teammates;
//   - camper: hides and waits, rarely moving.
//
// Each entity has a preferred profile but switches dynamically with a
// small probability, reproducing the mixed behavior of deployed
// MMOGs. Besides the profile mix, the emulator models the paper's
// four knobs: peak hours (a diurnal active-population envelope), peak
// load, overall dynamics (day-scale variability), and instantaneous
// dynamics (two-minute-scale variability).
package emulator

import (
	"fmt"
	"math"

	"mmogdc/internal/series"
	"mmogdc/internal/xrand"
)

// Profile is an AI behavior archetype.
type Profile int

const (
	// Aggressive entities seek opponents (the "killer" archetype).
	Aggressive Profile = iota
	// Scout entities explore uncharted zones (the "explorer").
	Scout
	// TeamPlayer entities move with their team (the "socializer").
	TeamPlayer
	// Camper entities hide and wait (the "achiever" holding a spot).
	Camper
	numProfiles
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case Aggressive:
		return "aggressive"
	case Scout:
		return "scout"
	case TeamPlayer:
		return "team player"
	case Camper:
		return "camper"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// Level grades the paper's qualitative dynamics knobs.
type Level int

const (
	// Low dynamics: stable signal.
	Low Level = iota
	// Medium dynamics.
	Medium
	// High dynamics: fast, large changes.
	High
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Config parameterizes one emulation run (one Table I data set).
type Config struct {
	// Name labels the data set ("Set 1" ... "Set 8").
	Name string
	// Seed makes the run reproducible.
	Seed uint64
	// GridW and GridH set the sub-zone grid dimensions; both default
	// to 12 (144 sub-zones).
	GridW, GridH int
	// Entities is the peak entity population; defaults to 1800.
	Entities int
	// ProfileMix is the preferred-profile distribution in the order
	// aggressive, scout, team player, camper; it is normalized.
	ProfileMix [4]float64
	// PeakHours enables the diurnal active-population envelope.
	PeakHours bool
	// PeakLoad scales the entity population (relative popularity).
	PeakLoad Level
	// Overall sets the day-scale dynamics of the entity interaction.
	Overall Level
	// Instant sets the two-minute-scale dynamics.
	Instant Level
	// Steps is the number of two-minute samples; defaults to one
	// simulated day (720).
	Steps int
	// Teams is the number of teams for team players; defaults to 8.
	Teams int
}

func (c Config) withDefaults() Config {
	if c.GridW == 0 {
		c.GridW = 12
	}
	if c.GridH == 0 {
		c.GridH = 12
	}
	if c.Entities == 0 {
		c.Entities = 1800
	}
	if c.Steps == 0 {
		c.Steps = series.DefaultTicksPerDay
	}
	if c.Teams == 0 {
		c.Teams = 8
	}
	var sum float64
	for _, v := range c.ProfileMix {
		sum += v
	}
	if sum == 0 {
		c.ProfileMix = [4]float64{25, 25, 25, 25}
	}
	return c
}

// entity is one emulated player.
type entity struct {
	x, y      int
	preferred Profile
	current   Profile
	team      int
	active    bool
}

// World is a running emulation.
type World struct {
	cfg    Config
	rng    *xrand.Rand
	ents   []*entity
	counts []int // per-zone entity counts, row-major
	step   int
	// migrationP, respawnP and switchP derive from the dynamics levels.
	migrationP float64
	respawnP   float64
	switchP    float64
	// hotspot is a slowly wandering attractor for aggressive players.
	hotX, hotY float64
	// cyclePhase tracks the combat/round cycle (radians); cycleAmp and
	// cycleStep derive from the instantaneous-dynamics level.
	cyclePhase float64
	cycleAmp   float64
	cycleStep  float64
}

// NewWorld builds the world and places the entities.
func NewWorld(cfg Config) *World {
	c := cfg.withDefaults()
	w := &World{
		cfg:    c,
		rng:    xrand.New(c.Seed),
		counts: make([]int, c.GridW*c.GridH),
	}
	w.migrationP = migrationProbability(c.Instant)
	w.respawnP = respawnProbability(c.Instant)
	w.switchP = switchProbability(c.Overall)
	w.cycleAmp, w.cycleStep = cycleParameters(c.Instant)
	w.hotX = float64(c.GridW) / 2
	w.hotY = float64(c.GridH) / 2

	weights := make([]float64, numProfiles)
	for i, v := range c.ProfileMix {
		weights[i] = v
	}
	for i := 0; i < c.Entities; i++ {
		p := Profile(w.rng.WeightedChoice(weights))
		e := &entity{
			x:         w.rng.Intn(c.GridW),
			y:         w.rng.Intn(c.GridH),
			preferred: p,
			current:   p,
			team:      w.rng.Intn(c.Teams),
			active:    true,
		}
		w.ents = append(w.ents, e)
		w.counts[w.zoneIndex(e.x, e.y)]++
	}
	return w
}

func migrationProbability(instant Level) float64 {
	// Probability per step that an entity relocates. High instantaneous
	// dynamics (fast-paced FPS play) means most entities move every
	// sample; low (MMORPG wandering) means few do.
	switch instant {
	case Low:
		return 0.06
	case Medium:
		return 0.30
	default:
		return 0.85
	}
}

func respawnProbability(instant Level) float64 {
	// Probability that a move is a death/respawn teleport to a random
	// zone rather than a directed step. Fast-paced play (high
	// instantaneous dynamics) kills and respawns players constantly,
	// which is what makes consecutive two-minute samples of a zone
	// fluctuate around the interaction attractors instead of drifting
	// like a random walk.
	switch instant {
	case Low:
		return 0.03
	case Medium:
		return 0.10
	default:
		return 0.25
	}
}

// cycleParameters returns the amplitude and per-step phase advance of
// the combat/round cycle. Fast-paced games run in rounds: the active
// population in the interaction areas swells during combat and thins
// during respawn/lobby phases, a rhythm with a period of a few
// sampling intervals. This oscillation is the "large difference in
// the entity interaction over a short period of time" that defines
// high instantaneous dynamics — and, unlike white churn, it is
// *predictable* from the recent window, which is exactly what
// separates a learned predictor from fixed smoothers.
func cycleParameters(instant Level) (amp, step float64) {
	switch instant {
	case Low:
		return 0.05, 2 * math.Pi / 12
	case Medium:
		return 0.18, 2 * math.Pi / 12
	default:
		return 0.30, 2 * math.Pi / 12
	}
}

// hotspotDrift returns the per-step standard deviation of the
// hot-spot attractor's random walk, in zones.
func hotspotDrift(overall Level) float64 {
	switch overall {
	case Low:
		return 0
	case Medium:
		return 0.12
	default:
		return 0.45
	}
}

func switchProbability(overall Level) float64 {
	// Probability per step that an entity temporarily plays another
	// profile. Higher overall dynamics shifts the interaction structure
	// over the day.
	switch overall {
	case Low:
		return 0.002
	case Medium:
		return 0.01
	default:
		return 0.03
	}
}

func (w *World) zoneIndex(x, y int) int { return y*w.cfg.GridW + x }

// ZoneCounts returns a copy of the current per-zone entity counts.
func (w *World) ZoneCounts() []int {
	out := make([]int, len(w.counts))
	copy(out, w.counts)
	return out
}

// InteractionCount returns the number of entity pairs currently able
// to interact: entities sharing a sub-zone (a sub-zone is exactly one
// interaction neighborhood). This is the quantity the paper's update
// models abstract — counting it lets an experiment measure the
// *empirical* interaction-scaling exponent of a profile mix instead of
// assuming one.
func (w *World) InteractionCount() int {
	total := 0
	for _, n := range w.counts {
		total += n * (n - 1) / 2
	}
	return total
}

// ActiveEntities returns the number of currently active entities.
func (w *World) ActiveEntities() int {
	n := 0
	for _, e := range w.ents {
		if e.active {
			n++
		}
	}
	return n
}

// activeTarget returns how many entities should be active at a step,
// applying the peak-hours envelope and overall dynamics.
func (w *World) activeTarget(step int) int {
	c := w.cfg
	frac := 1.0
	if c.PeakHours {
		hour := 24 * float64(step%series.DefaultTicksPerDay) / float64(series.DefaultTicksPerDay)
		// Evening peak, early-morning trough, like the trace package.
		frac = 0.55 + 0.45*math.Sin(2*math.Pi*(hour-13.5)/24)
	}
	switch c.Overall {
	case High:
		// A slow extra wave makes day-scale interaction drift larger.
		frac *= 1 + 0.25*math.Sin(2*math.Pi*float64(step)/float64(c.Steps)*3)
	case Medium:
		frac *= 1 + 0.10*math.Sin(2*math.Pi*float64(step)/float64(c.Steps)*3)
	}
	peakScale := 1.0
	switch c.PeakLoad {
	case Low:
		peakScale = 0.5
	case Medium:
		peakScale = 0.75
	}
	// Combat/round cycle: the phase advances with slight jitter so the
	// rhythm drifts like real matches do.
	frac *= 1 + w.cycleAmp*math.Sin(w.cyclePhase)
	// Login/logout churn: the instantaneous population fluctuates
	// around the envelope (sessions start and end at will).
	frac *= 1 + 0.04*w.rng.NormFloat64()
	n := int(frac * peakScale * float64(c.Entities))
	if n < 0 {
		n = 0
	}
	if n > c.Entities {
		n = c.Entities
	}
	return n
}

// Step advances the world by one two-minute sample.
func (w *World) Step() {
	c := w.cfg
	// 0. Advance the combat cycle with phase jitter.
	w.cyclePhase += w.cycleStep * (1 + 0.04*w.rng.NormFloat64())

	// 1. Log in / log out entities toward the activity target.
	target := w.activeTarget(w.step)
	w.adjustActive(target)

	// 2. Drift the hot-spot attractor. The drift rate is the overall
	// (day-scale) dynamics knob: with low overall dynamics the action
	// stays at the map's choke points, with high dynamics the centers
	// of interaction relocate over the day.
	drift := hotspotDrift(c.Overall)
	if drift > 0 {
		w.hotX = clampF(w.hotX+w.rng.Norm(0, drift), 0, float64(c.GridW-1))
		w.hotY = clampF(w.hotY+w.rng.Norm(0, drift), 0, float64(c.GridH-1))
	}

	// 3. Team rally points: the centroid of each team's members.
	teamX := make([]float64, c.Teams)
	teamY := make([]float64, c.Teams)
	teamN := make([]int, c.Teams)
	for _, e := range w.ents {
		if !e.active {
			continue
		}
		teamX[e.team] += float64(e.x)
		teamY[e.team] += float64(e.y)
		teamN[e.team]++
	}
	for t := 0; t < c.Teams; t++ {
		if teamN[t] > 0 {
			teamX[t] /= float64(teamN[t])
			teamY[t] /= float64(teamN[t])
		}
	}

	// 4. Find the globally most crowded zone: aggressive entities are
	// drawn to the action, which is what concentrates the population
	// into interaction hot-spots.
	crowdX, crowdY, crowdBest := int(w.hotX), int(w.hotY), -1
	for y := 0; y < c.GridH; y++ {
		for x := 0; x < c.GridW; x++ {
			if n := w.counts[w.zoneIndex(x, y)]; n > crowdBest {
				crowdBest, crowdX, crowdY = n, x, y
			}
		}
	}

	// combatBias swings with the round cycle: near 1 during combat
	// (aggressive players converge on the fight), near 0 during the
	// respawn/regroup phase (they scatter). The swing width scales
	// with the instantaneous-dynamics level via cycleAmp.
	swing := w.cycleAmp * 3.3
	if swing > 1 {
		swing = 1
	}
	combatBias := 0.5 * (1 + swing*math.Sin(w.cyclePhase))

	// 5. Move entities.
	for _, e := range w.ents {
		if !e.active {
			continue
		}
		// Dynamic profile switching: temporarily adopt a random
		// profile, or revert to the preferred one.
		if w.rng.Float64() < w.switchP {
			if e.current != e.preferred {
				e.current = e.preferred
			} else {
				e.current = Profile(w.rng.Intn(int(numProfiles)))
			}
		}
		p := w.migrationP
		if e.current == Camper {
			p *= 0.08 // campers hold their spot
		}
		if w.rng.Float64() >= p {
			continue
		}
		respawnP := w.respawnP
		if e.current == Aggressive {
			// Aggressive players die (and scatter) mostly during the
			// low phase of the round cycle and pile into the fight
			// during the high phase.
			respawnP *= 2 * (1 - combatBias)
		}
		var nx, ny int
		if e.current != Camper && w.rng.Float64() < respawnP {
			// Death and respawn: rejoin the world at a random zone.
			nx, ny = w.rng.Intn(c.GridW), w.rng.Intn(c.GridH)
		} else {
			nx, ny = w.proposeMove(e, teamX, teamY, crowdX, crowdY, combatBias)
		}
		if nx == e.x && ny == e.y {
			continue
		}
		w.counts[w.zoneIndex(e.x, e.y)]--
		e.x, e.y = nx, ny
		w.counts[w.zoneIndex(e.x, e.y)]++
	}
	w.step++
}

// adjustActive logs entities in or out to reach the target count.
// Logins place the entity near the hot-spot (new players join the
// action); logouts pick random active entities.
func (w *World) adjustActive(target int) {
	active := w.ActiveEntities()
	for active < target {
		// Activate the first inactive entity (scan from a random
		// offset to avoid bias).
		off := w.rng.Intn(len(w.ents))
		for i := 0; i < len(w.ents); i++ {
			e := w.ents[(off+i)%len(w.ents)]
			if !e.active {
				e.active = true
				e.x = clampI(int(w.hotX)+w.rng.Intn(5)-2, 0, w.cfg.GridW-1)
				e.y = clampI(int(w.hotY)+w.rng.Intn(5)-2, 0, w.cfg.GridH-1)
				w.counts[w.zoneIndex(e.x, e.y)]++
				break
			}
		}
		active++
	}
	for active > target {
		off := w.rng.Intn(len(w.ents))
		for i := 0; i < len(w.ents); i++ {
			e := w.ents[(off+i)%len(w.ents)]
			if e.active {
				e.active = false
				w.counts[w.zoneIndex(e.x, e.y)]--
				break
			}
		}
		active--
	}
}

// proposeMove returns the entity's next zone according to its current
// profile.
func (w *World) proposeMove(e *entity, teamX, teamY []float64, crowdX, crowdY int, combatBias float64) (int, int) {
	c := w.cfg
	switch e.current {
	case Aggressive:
		// Seek opponents: usually head for the globally most crowded
		// zone (the fight everyone has heard about), otherwise climb
		// toward the most crowded neighboring zone. The pull follows
		// the round cycle.
		if w.rng.Float64() < 0.15+0.7*combatBias {
			return w.stepToward(e.x, e.y, crowdX, crowdY)
		}
		bx, by, best := e.x, e.y, -1
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				nx, ny := e.x+dx, e.y+dy
				if nx < 0 || ny < 0 || nx >= c.GridW || ny >= c.GridH {
					continue
				}
				if n := w.counts[w.zoneIndex(nx, ny)]; n > best {
					best, bx, by = n, nx, ny
				}
			}
		}
		if best <= 0 {
			return w.stepToward(e.x, e.y, int(w.hotX), int(w.hotY))
		}
		return bx, by
	case Scout:
		// Move toward the least crowded neighboring zone.
		bx, by := e.x, e.y
		best := math.MaxInt
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := e.x+dx, e.y+dy
				if nx < 0 || ny < 0 || nx >= c.GridW || ny >= c.GridH {
					continue
				}
				if n := w.counts[w.zoneIndex(nx, ny)]; n < best {
					best, bx, by = n, nx, ny
				}
			}
		}
		return bx, by
	case TeamPlayer:
		return w.stepToward(e.x, e.y, int(teamX[e.team]+0.5), int(teamY[e.team]+0.5))
	case Camper:
		// A rare reposition to a random nearby zone.
		nx := clampI(e.x+w.rng.Intn(3)-1, 0, c.GridW-1)
		ny := clampI(e.y+w.rng.Intn(3)-1, 0, c.GridH-1)
		return nx, ny
	default:
		return e.x, e.y
	}
}

func (w *World) stepToward(x, y, tx, ty int) (int, int) {
	nx, ny := x, y
	if tx > x {
		nx++
	} else if tx < x {
		nx--
	}
	if ty > y {
		ny++
	} else if ty < y {
		ny--
	}
	return clampI(nx, 0, w.cfg.GridW-1), clampI(ny, 0, w.cfg.GridH-1)
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DataSet is the output of one emulation run: the per-sub-zone entity
// counts over time plus the total, sampled every two minutes.
type DataSet struct {
	Config Config
	// Zones[z] is the entity-count series of sub-zone z (row-major).
	Zones []*series.Series
	// Total is the sum across sub-zones (the global signal Fig. 5's
	// prediction error is computed against).
	Total *series.Series
	// Interactions is the per-step count of co-located entity pairs —
	// the raw material of the update-model abstraction.
	Interactions *series.Series
}

// Run executes the emulation and collects the data set.
func Run(cfg Config) *DataSet {
	w := NewWorld(cfg)
	c := w.cfg
	ds := &DataSet{
		Config:       c,
		Zones:        make([]*series.Series, len(w.counts)),
		Total:        series.New(series.DefaultTick, seriesStart),
		Interactions: series.New(series.DefaultTick, seriesStart),
	}
	for z := range ds.Zones {
		ds.Zones[z] = series.New(series.DefaultTick, seriesStart)
	}
	for s := 0; s < c.Steps; s++ {
		w.Step()
		total := 0.0
		for z, n := range w.counts {
			ds.Zones[z].Append(float64(n))
			total += float64(n)
		}
		ds.Total.Append(total)
		ds.Interactions.Append(float64(w.InteractionCount()))
	}
	return ds
}
