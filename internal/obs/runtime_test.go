package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeSamplerPublishesGauges(t *testing.T) {
	o := New()
	o.Clock = NewManualClock(time.Unix(1000, 0), 0)
	s := o.EnableRuntimeMetrics()
	if s == nil || o.Runtime != s {
		t.Fatal("EnableRuntimeMetrics did not attach the sampler")
	}
	runtime.GC() // guarantee at least one completed GC cycle
	o.SampleRuntime()

	reg := o.Registry
	if v := reg.Gauge("mmogdc_runtime_heap_bytes", "").Value(); v <= 0 {
		t.Fatalf("heap bytes = %v", v)
	}
	if v := reg.Gauge("mmogdc_runtime_goroutines", "").Value(); v < 1 {
		t.Fatalf("goroutines = %v", v)
	}
	if v := reg.Gauge("mmogdc_runtime_gc_cycles_total", "").Value(); v < 1 {
		t.Fatalf("gc cycles = %v", v)
	}
	if v := reg.Counter("mmogdc_runtime_samples_total", "").Value(); v != 1 {
		t.Fatalf("samples counter = %d", v)
	}
	// Stamped from the injected clock, not the wall clock.
	if v := reg.Gauge("mmogdc_runtime_last_sample_unix_seconds", "").Value(); v != 1000 {
		t.Fatalf("last sample stamp = %v, want 1000", v)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mmogdc_runtime_gc_pause_seconds{q=\"0.99\"}",
		"mmogdc_runtime_sched_latency_seconds{q=\"max\"}",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %s:\n%s", want, sb.String())
		}
	}

	var disabled *Obs
	disabled.SampleRuntime() // nil bundle: no-op
	(&Obs{Registry: NewRegistry()}).SampleRuntime()
}

func TestHistQuantilesDegenerate(t *testing.T) {
	if p50, p99, max := histQuantiles(nil); p50 != 0 || p99 != 0 || max != 0 {
		t.Fatalf("nil hist -> %v %v %v", p50, p99, max)
	}
}
