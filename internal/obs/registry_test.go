package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	c.Add(0)  // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("same name+labels must return the same counter instance")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	l1 := r.Counter("lbl_total", "labeled", L("a", "1"), L("b", "2"))
	l2 := r.Counter("lbl_total", "labeled", L("b", "2"), L("a", "1"))
	if l1 != l2 {
		t.Fatal("label order must not distinguish series")
	}
	l3 := r.Counter("lbl_total", "labeled", L("a", "1"), L("b", "3"))
	if l3 == l1 {
		t.Fatal("different label values must be distinct series")
	}
	if n := r.SeriesCount(); n != 4 {
		t.Fatalf("SeriesCount = %d, want 4", n)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "first registration wins")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "wrong kind")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 5, 100, math.Inf(1), math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	// Per-bucket: le=0.1 gets 0.05 and 0.1 (inclusive), le=1 gets 0.5
	// and 1, le=10 gets 5, +Inf gets 100, Inf, NaN.
	want := []int64{2, 2, 1, 3}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if !math.IsNaN(h.Sum()) {
		t.Fatalf("sum with a NaN observation should be NaN, got %v", h.Sum())
	}

	h2 := r.Histogram("d_seconds", "durations", TimeBuckets)
	h2.ObserveDuration(3 * time.Millisecond)
	if h2.Count() != 1 || h2.Sum() != 0.003 {
		t.Fatalf("ObserveDuration: count=%d sum=%v", h2.Count(), h2.Sum())
	}
}

func TestBucketValidation(t *testing.T) {
	r := NewRegistry()
	// A trailing +Inf is dropped, not rejected.
	h := r.Histogram("inf_ok", "x", []float64{1, 2, math.Inf(1)})
	if len(h.bounds) != 2 {
		t.Fatalf("trailing +Inf should be stripped, bounds = %v", h.bounds)
	}
	for _, bad := range [][]float64{{2, 1}, {1, 1}, {math.NaN()}, {math.Inf(-1), 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("buckets %v must panic", bad)
				}
			}()
			r.Histogram("bad", "x", bad)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > want[i]*1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestNilInstrumentsAreFreeNoOps is the disabled-path contract: every
// operation on nil instruments (what a nil Registry hands out) must do
// nothing and allocate nothing.
func TestNilInstrumentsAreFreeNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "nil registry returns nil")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", TimeBuckets)
	var rec *Recorder
	var o *Obs
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(7)
		g.Set(1)
		g.Add(2)
		h.Observe(0.5)
		h.ObserveDuration(time.Millisecond)
		rec.Record(Event{Kind: "x"})
		_ = o.Now()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %.1f per run, want 0", allocs)
	}
	if r.SeriesCount() != 0 || rec.Len() != 0 || rec.Total() != 0 {
		t.Fatal("nil accessors must report empty")
	}
	if r.PrometheusText() != "" {
		t.Fatal("nil registry must expose nothing")
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestConcurrentIncObserve hammers one counter, gauge, and histogram
// from many goroutines; run under -race this proves the atomics, and
// the totals prove no update is lost.
func TestConcurrentIncObserve(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			// Mix registration and updates: series lookup must be
			// concurrency-safe too.
			c := r.Counter("cc_total", "contended")
			g := r.Gauge("cg", "contended")
			h := r.Histogram("ch_seconds", "contended", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.75)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("cc_total", "contended").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("cg", "contended").Value(); got != float64(workers*perWorker) {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	h := r.Histogram("ch_seconds", "contended", []float64{0.5})
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(workers) * perWorker / 2 * 0.75
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestManualClock(t *testing.T) {
	start := time.Date(2008, 3, 1, 0, 0, 0, 0, time.UTC)
	c := NewManualClock(start, 5*time.Microsecond)
	t0 := c.Now()
	t1 := c.Now()
	if !t0.Equal(start) || t1.Sub(t0) != 5*time.Microsecond {
		t.Fatalf("manual clock readings %v, %v", t0, t1)
	}
	c.Advance(time.Second)
	if got := c.Now().Sub(t1); got != time.Second+5*time.Microsecond {
		t.Fatalf("after Advance: %v", got)
	}
}
