package audit

import (
	"strings"
	"testing"

	"mmogdc/internal/obs"
)

// whyStream is a hand-built run with one breach episode whose acquire
// passes carry decision records, plus one acquisition the ring "lost"
// the decision for.
func whyStream() []obs.Event {
	return []obs.Event{
		// Healthy acquire before the trouble: grant + decision.
		{Tick: 5, Kind: obs.EventGrant, Subject: "g", Value: 2, Detail: "centers: local"},
		{Tick: 5, Kind: obs.EventDecision, Subject: "g", Value: 1,
			Detail: "local=granted,nearby=not-needed"},
		// The breach window: rejections drive a two-tick episode.
		{Tick: 10, Kind: obs.EventRejection, Subject: "g", Value: 2},
		{Tick: 10, Kind: obs.EventGrant, Subject: "g", Value: 1, Detail: "centers: nearby"},
		{Tick: 10, Kind: obs.EventDecision, Subject: "g", Value: 2,
			Detail: "local=rejected-by-injector,nearby=partial-trimmed"},
		{Tick: 10, Kind: obs.EventDecision, Subject: "g", Value: 3,
			Detail: "local=rejected-by-injector,nearby=no-capacity"},
		{Tick: 10, Kind: obs.EventBreach, Subject: "run", Value: -6},
		{Tick: 11, Kind: obs.EventBreach, Subject: "run", Value: -4},
		// A retry inside the window with no decision record: the one
		// unexplained link in the chain.
		{Tick: 11, Kind: obs.EventRetry, Subject: "g"},
	}
}

func TestWhyChainsResolveEpisodes(t *testing.T) {
	rp := Analyze(whyStream(), nil, nil)
	if !rp.HasDecisions {
		t.Fatal("decision events present but HasDecisions is false")
	}
	if len(rp.Episodes) != 1 || len(rp.WhyChains) != 1 {
		t.Fatalf("episodes=%d whychains=%d, want 1 and 1", len(rp.Episodes), len(rp.WhyChains))
	}
	wc := rp.WhyChains[0]
	if wc.Episode != 1 {
		t.Fatalf("chain episode = %d, want 1", wc.Episode)
	}
	// Sites in [10-8, 11]: the tick-5 grant, the tick-10 grant, and the
	// tick-11 retry. The retry has no decision record.
	if wc.Acquisitions != 3 || wc.Resolved != 2 || wc.Unexplained != 1 {
		t.Fatalf("chain = %+v, want 3 acquisitions, 2 resolved, 1 unexplained", wc)
	}
	if rp.UnexplainedChains != 1 {
		t.Fatalf("UnexplainedChains = %d, want 1", rp.UnexplainedChains)
	}
	got := map[string]int{}
	for _, d := range wc.Dispositions {
		got[d.Kind] = d.Count
	}
	want := map[string]int{
		"granted": 1, "not-needed": 1, "rejected-by-injector": 2,
		"partial-trimmed": 1, "no-capacity": 1,
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("disposition %q = %d, want %d (all: %v)", k, got[k], n, got)
		}
	}
}

func TestWhyConsistencyChecks(t *testing.T) {
	rp := Analyze(whyStream(), nil, nil)
	find := func(name string) Check {
		t.Helper()
		for _, c := range rp.Checks {
			if c.Name == name {
				return c
			}
		}
		t.Fatalf("check %q missing (have %+v)", name, rp.Checks)
		return Check{}
	}
	// Tick 10 has one rejection event (Value 2) and two walks with one
	// rejected-by-injector each: 2 == 2.
	if c := find("rejection events match rejected-by-injector dispositions"); !c.OK {
		t.Fatalf("rejection check failed: %+v", c)
	}
	if c := find("granted centers appear in decision walks (mismatches)"); !c.OK {
		t.Fatalf("grant-walk check failed: %+v", c)
	}

	// Corrupt the stream: a grant names a center the decision never
	// granted — the check must flag it.
	bad := whyStream()
	for i := range bad {
		if bad[i].Tick == 10 && bad[i].Kind == obs.EventGrant {
			bad[i].Detail = "centers: phantom"
		}
	}
	rp = Analyze(bad, nil, nil)
	found := false
	for _, c := range rp.Checks {
		if c.Name == "granted centers appear in decision walks (mismatches)" {
			found = true
			if c.OK {
				t.Fatal("phantom granted center passed the walk check")
			}
		}
	}
	if !found {
		t.Fatal("grant-walk check missing")
	}
}

func TestWhySectionRenderGated(t *testing.T) {
	var with, without strings.Builder
	if err := Analyze(whyStream(), nil, nil).Render(&with); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(with.String(), "## Why (decision provenance)") {
		t.Fatal("Why section missing with decision events present")
	}
	if !strings.Contains(with.String(), "WARNING: 1 acquisition(s) in breach windows have no decision record") {
		t.Fatalf("unexplained warning missing:\n%s", with.String())
	}

	// The same stream minus decision events renders no Why section and
	// no provenance checks: provenance-free reports are unchanged.
	var plain []obs.Event
	for _, e := range whyStream() {
		if e.Kind != obs.EventDecision {
			plain = append(plain, e)
		}
	}
	rp := Analyze(plain, nil, nil)
	if rp.HasDecisions || len(rp.WhyChains) != 0 || len(rp.Checks) != 0 {
		t.Fatalf("provenance artifacts on a decision-free stream: %+v", rp.Checks)
	}
	if err := rp.Render(&without); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(without.String(), "Why (decision provenance)") {
		t.Fatal("Why section rendered without decision events")
	}
}

func TestDegradedTelemetryWarning(t *testing.T) {
	events := []obs.Event{{Tick: 1, Kind: obs.EventGrant, Subject: "g", Value: 1}}
	md := &MetricsDoc{Ticks: 2, Recorder: RecorderStats{Total: 1, Retained: 1}}

	var clean strings.Builder
	if err := Analyze(events, md, nil).Render(&clean); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), "degraded telemetry") {
		t.Fatal("degraded-telemetry warning on a loss-free run")
	}

	md.Recorder.Dropped = 7
	md.Recorder.SinkErrs = 1
	var lossy strings.Builder
	if err := Analyze(events, md, nil).Render(&lossy); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lossy.String(),
		"WARNING: degraded telemetry — 7 event(s) overwritten by the ring, 1 sink error(s)") {
		t.Fatalf("degraded-telemetry warning missing:\n%s", lossy.String())
	}
}
