#!/usr/bin/env sh
# Chaos smoke: fault-injection scenarios under the race detector, with
# the mmogaudit toolchain as the exit gate.
#
# 1. Stochastic injector: MTBF/MTTR outages plus grant rejections and
#    monitoring dropouts must finish and report resilience accounting
#    (the injector, failover, and backoff paths on the parallel engine).
# 2. Correlated region blackout: a scheduled eu blackout at the evening
#    peak with storm control and brownout armed. The run's telemetry is
#    piped through mmogaudit, which must (a) pass every consistency
#    check, (b) attribute every SLA-breach episode to a root cause
#    (-fail-on-unclassified exits 1 otherwise), and (c) render the
#    failure-domain window it reconstructed from the event stream.
set -eu
cd "$(dirname "$0")/.."

go run -race ./cmd/mmogsim -days 1 -predictor lastvalue \
	-mtbf 150 -mttr 25 -fault-seed 7 \
	-fault-reject 0.05 -fault-dropout 0.02 -fault-degraded 0.5 \
	| grep 'outages:' > /dev/null

d=$(mktemp -d)
trap 'rm -rf "$d"' EXIT

go run -race ./cmd/mmogsim -days 1 -predictor lastvalue \
	-blackout eu:480:40 -failover-budget 4 -brownout -brownout-reserve 0.1 \
	-obs-events "$d/events.jsonl" -metrics-out "$d/metrics.json" \
	> "$d/sim.out" 2> "$d/sim.err"
grep -q 'region blackouts: 1' "$d/sim.out"
grep -q 'failovers deferred by storm control' "$d/sim.out"

go run ./cmd/mmogaudit -events "$d/events.jsonl" -metrics "$d/metrics.json" \
	-fail-on-unclassified > "$d/audit.md"
grep -q '## Failure domains' "$d/audit.md"
grep -q '| eu | 480-520 |' "$d/audit.md"

echo "chaos-smoke: ok"
