package experiments

import (
	"fmt"
	"strings"

	"mmogdc/internal/emulator"
	"mmogdc/internal/market"
	"mmogdc/internal/nettrace"
	"mmogdc/internal/plot"
	"mmogdc/internal/stats"
	"mmogdc/internal/trace"
)

// Fig01 reproduces Figure 1: the MMORPG subscription growth 1997–2008
// and the titles holding more than 500k players.
func Fig01(o Options) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 1 — MMORPG players over time (millions)\n\n")
	var rows [][]string
	for _, r := range market.Growth(1997, 2008) {
		rows = append(rows, []string{fmt.Sprintf("%.0f", r.Year), f2(r.Total), r.Leader})
	}
	b.WriteString(table([]string{"year", "total players [M]", "leading title"}, rows))

	b.WriteString("\nTitles above 500k players in 2008 (paper: six such games):\n")
	count := 0
	for _, g := range market.Top(2008, len(market.Dataset())) {
		p := g.PlayersAt(2008)
		if p < 0.5 {
			break
		}
		count++
		fmt.Fprintf(&b, "  %-20s %5.2f M\n", g.Name, p)
	}
	fmt.Fprintf(&b, "  -> %d titles above 500k\n", count)
	return b.String(), nil
}

// Fig02 reproduces Figure 2: two months of global active concurrent
// players including the unpopular-decision crash and two new-content
// surges, plotted as two-hour averages.
func Fig02(o Options) (string, error) {
	opts := o.withDefaults()
	days := 61
	if opts.Quick {
		days = 35
	}
	cfg := trace.Config{Seed: opts.Seed, Days: days, Events: trace.Fig2Events()}
	ds := trace.Generate(cfg)
	global, err := ds.GlobalLoad()
	if err != nil {
		return "", err
	}
	twoHour := global.Resample(60)

	var b strings.Builder
	b.WriteString("Figure 2 — global active concurrent players (two-hour averages)\n\n")
	chart := plot.Chart{
		Title:  "global active concurrent players",
		YLabel: "players",
		XLabel: "days",
		Series: []plot.Series{{Name: "population", Values: twoHour.Values}},
	}
	b.WriteString(chart.Render())
	b.WriteByte('\n')
	var rows [][]string
	for d := 0; d < days; d += 2 {
		// Daily peak from the two-hour series (12 samples per day).
		from, to := d*12, (d+2)*12
		if to > twoHour.Len() {
			to = twoHour.Len()
		}
		if from >= to {
			break
		}
		seg := twoHour.Values[from:to]
		rows = append(rows, []string{
			fmt.Sprintf("day %2d-%2d", d, d+2),
			fmt.Sprintf("%.0f", stats.Min(seg)),
			fmt.Sprintf("%.0f", stats.Mean(seg)),
			fmt.Sprintf("%.0f", stats.Max(seg)),
		})
	}
	b.WriteString(table([]string{"window", "min", "mean", "peak"}, rows))

	// Quantify the paper's two observations (when the trace is long
	// enough to contain them).
	day := trace.SamplesPerDay
	if len(global.Values) >= 24*day {
		pre := stats.Mean(global.Values[20*day : 22*day])
		crash := stats.Mean(global.Values[23*day : 24*day])
		fmt.Fprintf(&b, "\nUnpopular decision (day 22): population drop %.0f%% within a day (paper: ~25%%)\n",
			(1-crash/pre)*100)
	}
	if len(global.Values) >= 33*day {
		surge := stats.Max(global.Values[30*day : 33*day])
		base := stats.Mean(global.Values[28*day : 30*day])
		fmt.Fprintf(&b, "Content release (day 30): peak surge +%.0f%% over the pre-release level (paper: ~50%%)\n",
			(surge/base-1)*100)
	}
	return b.String(), nil
}

// Fig03 reproduces Figure 3: the region-0 (Europe) workload analysis —
// per-step min/median/max group load, the cross-group IQR cycle, and
// the load autocorrelation with its 24-hour peak and 12-hour trough.
func Fig03(o Options) (string, error) {
	opts := o.withDefaults()
	days := 16 // two full weeks plus the two adjacent days
	if opts.Quick {
		days = 4
	}
	ds := trace.Generate(trace.Config{Seed: opts.Seed, Days: days})
	groups := ds.RegionGroups(0)
	n := ds.Samples()

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — RuneScape-like workload for region 0 (Europe), %d server groups, %d samples\n\n",
		len(groups), n)

	// Top subplot: min / median / max across groups.
	var minSeries, medSeries, maxSeries []float64
	for t := 0; t < n; t += 10 {
		xs := make([]float64, len(groups))
		for i, g := range groups {
			xs[i] = g.Load.At(t)
		}
		minSeries = append(minSeries, stats.Min(xs))
		medSeries = append(medSeries, stats.Median(xs))
		maxSeries = append(maxSeries, stats.Max(xs))
	}
	chart := plot.Chart{
		Title:  "(a) group-load range over time",
		YLabel: "players per group", XLabel: "time",
		Series: []plot.Series{
			{Name: "max", Values: maxSeries},
			{Name: "median", Values: medSeries},
			{Name: "min", Values: minSeries},
		},
	}
	b.WriteString(chart.Render())
	b.WriteString("\n(a') group-load range over time (4-hour summary)\n")
	var rows [][]string
	step := 120
	for t := 0; t < n && len(rows) < 12; t += step {
		xs := make([]float64, len(groups))
		for i, g := range groups {
			xs[i] = g.Load.At(t)
		}
		rows = append(rows, []string{
			fmt.Sprintf("t=%5d (%4.1fd)", t, float64(t)/trace.SamplesPerDay),
			fmt.Sprintf("%.0f", stats.Min(xs)),
			fmt.Sprintf("%.0f", stats.Median(xs)),
			fmt.Sprintf("%.0f", stats.Max(xs)),
			fmt.Sprintf("%.0f", stats.IQR(xs)),
		})
	}
	b.WriteString(table([]string{"time", "min", "median", "max", "IQR"}, rows))

	// Middle subplot: diurnal cycle of the IQR.
	iqr := make([]float64, n)
	for t := 0; t < n; t++ {
		xs := make([]float64, len(groups))
		for i, g := range groups {
			xs[i] = g.Load.At(t)
		}
		iqr[t] = stats.IQR(xs)
	}
	iqrACF := stats.ACF(iqr, 740)
	_, iqrPeak := stats.ArgMax(iqrACF, 700, 740)
	fmt.Fprintf(&b, "\n(b) cross-group IQR: mean %.0f players, ACF at 24h lag %.2f (diurnal cycle present)\n",
		stats.Mean(iqr), iqrPeak)

	// Bottom subplot: per-group ACF peaks.
	var peak24, trough12 []float64
	saturated := 0
	for _, g := range groups {
		if g.Saturated {
			saturated++
			continue
		}
		acf := stats.ACF(g.Load.Values, 740)
		_, p := stats.ArgMax(acf, 700, 740)
		_, tr := stats.ArgMin(acf, 340, 380)
		peak24 = append(peak24, p)
		trough12 = append(trough12, tr)
	}
	fmt.Fprintf(&b, "(c) per-group load ACF: 24h-lag peak mean %.2f, 12h-lag trough mean %.2f across %d groups\n",
		stats.Mean(peak24), stats.Mean(trough12), len(peak24))
	fmt.Fprintf(&b, "    %d/%d groups are saturated special worlds pinned near 95%% load (paper: 2-5%%)\n",
		saturated, len(groups))
	return b.String(), nil
}

// Fig04 reproduces Figure 4: the CDFs of packet length (truncated at
// 500 B) and packet inter-arrival time (truncated at 600 ms) for the
// eight emulated game-session traces.
func Fig04(o Options) (string, error) {
	opts := o.withDefaults()
	packets := 20000
	if opts.Quick {
		packets = 2000
	}
	sessions := nettrace.Fig4(packets, opts.Seed)

	var b strings.Builder
	b.WriteString("Figure 4 — packet length and inter-arrival time per session trace\n\n")
	var rows [][]string
	for _, s := range sessions {
		rows = append(rows, []string{
			s.Archetype.ID,
			s.Archetype.Description,
			fmt.Sprintf("%.0f", s.Size.Percentile(0.5)),
			fmt.Sprintf("%.0f", s.Size.Percentile(0.95)),
			fmt.Sprintf("%.0f%%", s.Size.At(500)*100),
			fmt.Sprintf("%.0f", s.IAT.Percentile(0.5)),
			fmt.Sprintf("%.0f", s.IAT.Percentile(0.95)),
			fmt.Sprintf("%.0f%%", s.IAT.At(600)*100),
		})
	}
	b.WriteString(table([]string{"trace", "session type",
		"size P50 [B]", "size P95 [B]", "<=500B",
		"IAT P50 [ms]", "IAT P95 [ms]", "<=600ms"}, rows))

	b.WriteString("\nKey relationships (Section III-D):\n")
	find := func(id string) nettrace.SessionCDFs {
		for _, s := range sessions {
			if s.Archetype.ID == id {
				return s
			}
		}
		return nettrace.SessionCDFs{}
	}
	t2, t7 := find("Trace 2"), find("Trace 7")
	fmt.Fprintf(&b, "  market (T2) vs p2p (T7): similar sizes (%.0f vs %.0f B) but IAT %.1fx larger (thinking time)\n",
		t2.Size.Percentile(0.5), t7.Size.Percentile(0.5),
		t2.IAT.Percentile(0.5)/t7.IAT.Percentile(0.5))
	t4 := find("Trace 4")
	fmt.Fprintf(&b, "  group interaction (T4): smallest IAT (%.0f ms) and largest packets (%.0f B) of all traces\n",
		t4.IAT.Percentile(0.5), t4.Size.Percentile(0.5))
	t5a, t5b := find("Trace 5a"), find("Trace 5b")
	fmt.Fprintf(&b, "  validation pair (T5a/T5b): sizes %.0f vs %.0f B, IATs %.0f vs %.0f ms (near-identical)\n",
		t5a.Size.Percentile(0.5), t5b.Size.Percentile(0.5),
		t5a.IAT.Percentile(0.5), t5b.IAT.Percentile(0.5))
	return b.String(), nil
}

// Tab01 reproduces Table I: the eight emulator configurations and the
// properties of the generated data sets.
func Tab01(o Options) (string, error) {
	opts := o.withDefaults()
	var b strings.Builder
	b.WriteString("Table I — emulator configurations and generated data sets\n\n")
	var rows [][]string
	for _, cfg := range emulator.TableIConfigs() {
		if opts.Quick {
			cfg.Steps = 120
			cfg.Entities = 400
		}
		ds := emulator.Run(cfg)
		total := ds.Total.Values
		// Mean absolute per-step change as the instantaneous-dynamics
		// readout.
		var change float64
		for i := 1; i < len(total); i++ {
			d := total[i] - total[i-1]
			if d < 0 {
				d = -d
			}
			change += d
		}
		change /= float64(len(total) - 1)
		rows = append(rows, []string{
			cfg.Name,
			fmt.Sprintf("%.0f/%.0f/%.0f/%.0f", cfg.ProfileMix[0], cfg.ProfileMix[1], cfg.ProfileMix[2], cfg.ProfileMix[3]),
			fmt.Sprintf("%v", cfg.PeakHours),
			cfg.Overall.String(),
			cfg.Instant.String(),
			fmt.Sprintf("Type %s", roman(int(emulator.SignalTypeOf(cfg)))),
			fmt.Sprintf("%.0f", stats.Max(total)),
			fmt.Sprintf("%.0f", stats.Mean(total)),
			f2(change),
		})
	}
	b.WriteString(table([]string{"set", "aggr/scout/team/camp [%]", "peak hours",
		"overall", "instant", "signal", "peak pop", "mean pop", "step change"}, rows))
	return b.String(), nil
}

func roman(n int) string {
	switch n {
	case 1:
		return "I"
	case 2:
		return "II"
	case 3:
		return "III"
	default:
		return fmt.Sprintf("%d", n)
	}
}
