package market

import "testing"

func TestPlayersAtInterpolation(t *testing.T) {
	g := GameSeries{Name: "x", Points: []Point{{2000, 1}, {2002, 3}}}
	if got := g.PlayersAt(2001); got != 2 {
		t.Fatalf("interpolated = %v, want 2", got)
	}
	if got := g.PlayersAt(2000); got != 1 {
		t.Fatalf("left endpoint = %v", got)
	}
	if got := g.PlayersAt(2002); got != 3 {
		t.Fatalf("right endpoint = %v", got)
	}
	if g.PlayersAt(1999) != 0 || g.PlayersAt(2003) != 0 {
		t.Fatal("outside range should be 0")
	}
	if (GameSeries{}).PlayersAt(2000) != 0 {
		t.Fatal("empty series should be 0")
	}
}

func TestDatasetShape(t *testing.T) {
	ds := Dataset()
	if len(ds) < 15 {
		t.Fatalf("dataset too small: %d games", len(ds))
	}
	// Six titles with > 500k players by 2008, as the paper highlights.
	big := 0
	for _, g := range ds {
		if g.PlayersAt(2008) >= 0.5 {
			big++
		}
	}
	if big < 6 {
		t.Fatalf("only %d titles above 500k in 2008, want >= 6", big)
	}
	// Series are sorted by year.
	for _, g := range ds {
		for i := 1; i < len(g.Points); i++ {
			if g.Points[i].Year <= g.Points[i-1].Year {
				t.Fatalf("%s: unsorted points at %d", g.Name, i)
			}
		}
	}
}

func TestMarketGrowth(t *testing.T) {
	// The market must grow strongly over the decade.
	if TotalAt(2008) < 4*TotalAt(2002) {
		t.Fatalf("2008 total %v should dwarf 2002 total %v", TotalAt(2008), TotalAt(2002))
	}
}

func TestTopLeaders(t *testing.T) {
	top := Top(2008, 2)
	if top[0].Name != "World of Warcraft" {
		t.Fatalf("2008 leader = %s", top[0].Name)
	}
	if top[1].Name != "RuneScape" {
		t.Fatalf("2008 runner-up = %s, want RuneScape", top[1].Name)
	}
	top03 := Top(2003, 1)
	if top03[0].Name != "Lineage" {
		t.Fatalf("2003 leader = %s, want Lineage", top03[0].Name)
	}
	if got := Top(2008, 100); len(got) != len(Dataset()) {
		t.Fatal("Top should clamp n")
	}
}

func TestGrowthReport(t *testing.T) {
	rep := Growth(1997, 2008)
	if len(rep) != 12 {
		t.Fatalf("report years = %d", len(rep))
	}
	if rep[len(rep)-1].Leader != "World of Warcraft" {
		t.Fatalf("2008 leader = %s", rep[len(rep)-1].Leader)
	}
	for i := 1; i < len(rep); i++ {
		if rep[i].Year != rep[i-1].Year+1 {
			t.Fatal("years not consecutive")
		}
	}
}
