package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last family").Add(3)
	r.Counter("aa_total", "first family", L("game", "rpg")).Add(7)
	r.Counter("aa_total", "first family", L("game", "mmorpg")).Inc()
	g := r.Gauge("mid_gauge", "a help with \\ backslash\nand newline")
	g.Set(1.25)

	text := r.PrometheusText()

	// Families in name order, series in label order.
	ia, im, iz := strings.Index(text, "# HELP aa_total"), strings.Index(text, "# HELP mid_gauge"), strings.Index(text, "# HELP zz_total")
	if !(ia >= 0 && ia < im && im < iz) {
		t.Fatalf("families out of order:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE aa_total counter") {
		t.Fatalf("missing TYPE line:\n%s", text)
	}
	i1 := strings.Index(text, `aa_total{game="mmorpg"} 1`)
	i2 := strings.Index(text, `aa_total{game="rpg"} 7`)
	if !(i1 >= 0 && i2 >= 0 && i1 < i2) {
		t.Fatalf("series out of order or missing:\n%s", text)
	}
	if !strings.Contains(text, "mid_gauge 1.25") {
		t.Fatalf("gauge value missing:\n%s", text)
	}
	if !strings.Contains(text, `# HELP mid_gauge a help with \\ backslash\nand newline`) {
		t.Fatalf("help not escaped:\n%s", text)
	}

	// Rendering is deterministic.
	if again := r.PrometheusText(); again != text {
		t.Fatal("repeated rendering differs")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "escapes", L("path", "a\\b\"c\nd")).Inc()
	text := r.PrometheusText()
	want := `esc_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("escaped series %q not found in:\n%s", want, text)
	}
}

func TestNaNInfRendering(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g_nan", "").Set(math.NaN())
	r.Gauge("g_pinf", "").Set(math.Inf(1))
	r.Gauge("g_ninf", "").Set(math.Inf(-1))
	text := r.PrometheusText()
	for _, want := range []string{"g_nan NaN\n", "g_pinf +Inf\n", "g_ninf -Inf\n"} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}

	// The JSON snapshot must stay encodable: non-finite values become
	// strings (encoding/json rejects NaN/Inf numbers).
	snap := r.Snapshot()
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
	if snap["g_nan"] != "NaN" || snap["g_pinf"] != "+Inf" || snap["g_ninf"] != "-Inf" {
		t.Fatalf("non-finite snapshot values: %v", snap)
	}
}

func TestHistogramExpositionCumulativity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10}, L("phase", "observe"))
	// Exact binary fractions, so the rendered sum is exact too.
	for _, v := range []float64{0.0625, 0.5, 0.5, 5, 48} {
		h.Observe(v)
	}
	text := r.PrometheusText()
	wants := []string{
		`lat_seconds_bucket{phase="observe",le="0.1"} 1`,
		`lat_seconds_bucket{phase="observe",le="1"} 3`,
		`lat_seconds_bucket{phase="observe",le="10"} 4`,
		`lat_seconds_bucket{phase="observe",le="+Inf"} 5`,
		`lat_seconds_sum{phase="observe"} 54.0625`,
		`lat_seconds_count{phase="observe"} 5`,
	}
	last := -1
	for _, want := range wants {
		i := strings.Index(text, want)
		if i < 0 {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
		if i < last {
			t.Fatalf("%q out of order in:\n%s", want, text)
		}
		last = i
	}
	if !strings.Contains(text, "# TYPE lat_seconds histogram") {
		t.Fatalf("missing histogram TYPE in:\n%s", text)
	}

	// The JSON snapshot buckets are cumulative too and keyed by le.
	snap := r.Snapshot()
	doc := snap[`lat_seconds{phase="observe"}`].(map[string]any)
	buckets := doc["buckets"].(map[string]int64)
	if buckets["0.1"] != 1 || buckets["1"] != 3 || buckets["10"] != 4 || buckets["+Inf"] != 5 {
		t.Fatalf("snapshot buckets not cumulative: %v", buckets)
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(2)
	r.Counter("a_total", "", L("x", "1")).Add(1)
	r.Gauge("c", "").Set(3)
	j1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(r.Snapshot())
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", j1, j2)
	}
	if !strings.Contains(string(j1), `"a_total{x=\"1\"}":1`) {
		t.Fatalf("unexpected snapshot JSON: %s", j1)
	}
}
