package ecosystem

import (
	"math"
	"strings"
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
)

// dispOf returns the verdict for a named center, failing if absent.
func dispOf(t *testing.T, d *Decision, center string) CandidateVerdict {
	t.Helper()
	for _, v := range d.Candidates {
		if v.Center == center {
			return v
		}
	}
	t.Fatalf("decision has no verdict for %q: %+v", center, d.Candidates)
	return CandidateVerdict{}
}

func TestProvenanceDispositions(t *testing.T) {
	// Four centers, one fate each: "shunned" is excluded by failover,
	// "sydney" is out of the latency class, "small" grants everything,
	// "spare" is ranked but never reached.
	small := datacenter.NewCenter("small", geo.London, 10, mkPolicy("p", 0.25, time.Hour))
	spare := datacenter.NewCenter("spare", geo.Amsterdam, 10, mkPolicy("p", 0.25, time.Hour))
	shunned := datacenter.NewCenter("shunned", geo.London, 10, mkPolicy("p", 0.25, time.Hour))
	sydney := datacenter.NewCenter("sydney", geo.Sydney, 10, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{small, spare, shunned, sydney})
	m.SetDecisionLog(NewDecisionLog(4))

	req := cpuReq("z", 1.0, geo.London, 2000)
	req.Exclude = []string{"shunned"}
	_, unmet, out := m.AllocateDetailed(req, t0)
	if !unmet.IsZero() {
		t.Fatalf("unmet = %v", unmet)
	}
	if out.Decision == nil {
		t.Fatal("log installed but Outcome.Decision is nil")
	}
	d := out.Decision
	if d.Tag != "z" || d.Seq != 1 {
		t.Fatalf("decision tag/seq = %q/%d", d.Tag, d.Seq)
	}
	if len(d.Candidates) != 4 {
		t.Fatalf("got %d verdicts, want one per center: %+v", len(d.Candidates), d.Candidates)
	}

	if v := dispOf(t, d, "small"); v.Disposition != DispGranted || v.Rank != 1 || v.CPU != 1.0 {
		t.Fatalf("small = %+v, want granted rank 1 cpu 1.0", v)
	}
	if v := dispOf(t, d, "spare"); v.Disposition != DispNotNeeded || v.Rank != 2 {
		t.Fatalf("spare = %+v, want not-needed rank 2", v)
	}
	if v := dispOf(t, d, "shunned"); v.Disposition != DispExcludedByFailover || v.Rank != 0 {
		t.Fatalf("shunned = %+v, want excluded-by-failover rank 0", v)
	}
	if v := dispOf(t, d, "sydney"); v.Disposition != DispOutOfLatencyClass || v.Rank != 0 {
		t.Fatalf("sydney = %+v, want out-of-latency-class rank 0", v)
	}

	// Ranked verdicts precede the filtered ones in walk order.
	walk := d.WalkDetail()
	if !strings.HasPrefix(walk, "small=granted,spare=not-needed,") {
		t.Fatalf("walk = %q", walk)
	}
	if strings.Count(walk, "=") != 4 || strings.Count(walk, ",") != 3 {
		t.Fatalf("walk shape off: %q", walk)
	}
}

func TestProvenanceInjectorDispositions(t *testing.T) {
	reject := datacenter.NewCenter("reject", geo.London, 10, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{reject})
	m.SetFaultInjector(rejectAll{})
	m.SetDecisionLog(NewDecisionLog(2))
	_, _, out := m.AllocateDetailed(cpuReq("z", 1.0, geo.London, math.Inf(1)), t0)
	if v := dispOf(t, out.Decision, "reject"); v.Disposition != DispRejectedByInjector {
		t.Fatalf("reject = %+v, want rejected-by-injector", v)
	}

	trim := datacenter.NewCenter("trim", geo.London, 40, mkPolicy("p", 0.25, time.Hour))
	m = NewMatcher([]*datacenter.Center{trim})
	m.SetFaultInjector(halveAll{})
	m.SetDecisionLog(NewDecisionLog(2))
	_, _, out = m.AllocateDetailed(cpuReq("z", 4.0, geo.London, math.Inf(1)), t0)
	v := dispOf(t, out.Decision, "trim")
	if v.Disposition != DispPartialTrimmed {
		t.Fatalf("trim = %+v, want partial-trimmed", v)
	}
	if v.CPU <= 0 || v.CPU >= 4.0 {
		t.Fatalf("trimmed grant CPU = %v, want in (0, 4)", v.CPU)
	}
}

func TestProvenanceNoCapacity(t *testing.T) {
	// One machine = 1 CPU unit of capacity; the second call finds it
	// exhausted.
	tiny := datacenter.NewCenter("tiny", geo.London, 1, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{tiny})
	m.SetDecisionLog(NewDecisionLog(4))
	m.Allocate(cpuReq("z", 1.0, geo.London, math.Inf(1)), t0)
	_, unmet, out := m.AllocateDetailed(cpuReq("z", 1.0, geo.London, math.Inf(1)), t0)
	if unmet.IsZero() {
		t.Fatal("exhausted center still granted")
	}
	if v := dispOf(t, out.Decision, "tiny"); v.Disposition != DispNoCapacity {
		t.Fatalf("tiny = %+v, want no-capacity", v)
	}
	if out.Decision.UnmetCPU != unmet[datacenter.CPU] {
		t.Fatalf("decision unmet %v != outcome unmet %v", out.Decision.UnmetCPU, unmet[datacenter.CPU])
	}
}

func TestProvenanceDisabledIsNil(t *testing.T) {
	c := datacenter.NewCenter("dc", geo.London, 10, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{c})
	_, _, out := m.AllocateDetailed(cpuReq("z", 1.0, geo.London, math.Inf(1)), t0)
	if out.Decision != nil {
		t.Fatal("no log installed but Outcome.Decision is set")
	}
}

func TestProvenanceDoesNotChangeAllocation(t *testing.T) {
	// The same request sequence against a logged and an unlogged
	// matcher must produce identical leases and unmet demand — the
	// provenance layer is write-only.
	build := func(log bool) *Matcher {
		a := datacenter.NewCenter("a", geo.Amsterdam, 3, mkPolicy("p", 0.25, time.Hour))
		b := datacenter.NewCenter("b", geo.London, 3, mkPolicy("p", 0.5, time.Hour))
		m := NewMatcher([]*datacenter.Center{a, b})
		m.SetFaultInjector(halveAll{})
		if log {
			m.SetDecisionLog(NewDecisionLog(8))
		}
		return m
	}
	plain, logged := build(false), build(true)
	for i := 0; i < 6; i++ {
		req := cpuReq("z", 0.75+float64(i%3), geo.London, math.Inf(1))
		lp, up, _ := plain.AllocateDetailed(req, t0)
		ll, ul, _ := logged.AllocateDetailed(req, t0)
		if up != ul {
			t.Fatalf("call %d: unmet diverged: %v vs %v", i, up, ul)
		}
		if len(lp) != len(ll) {
			t.Fatalf("call %d: lease count diverged: %d vs %d", i, len(lp), len(ll))
		}
		for j := range lp {
			if lp[j].Center.Name != ll[j].Center.Name || lp[j].Alloc != ll[j].Alloc {
				t.Fatalf("call %d lease %d diverged: %s %v vs %s %v",
					i, j, lp[j].Center.Name, lp[j].Alloc, ll[j].Center.Name, ll[j].Alloc)
			}
		}
	}
}

func TestDecisionLogRingWrap(t *testing.T) {
	c := datacenter.NewCenter("dc", geo.London, 100, mkPolicy("p", 0.25, time.Hour))
	m := NewMatcher([]*datacenter.Center{c})
	log := NewDecisionLog(2)
	m.SetDecisionLog(log)
	for i := 0; i < 5; i++ {
		m.Allocate(cpuReq("z", 0.25, geo.London, math.Inf(1)), t0)
	}
	if log.Total() != 5 {
		t.Fatalf("Total = %d, want 5", log.Total())
	}
	snap := log.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot holds %d, want ring capacity 2", len(snap))
	}
	if snap[0].Seq != 4 || snap[1].Seq != 5 {
		t.Fatalf("snapshot seqs = %d,%d, want oldest-first 4,5", snap[0].Seq, snap[1].Seq)
	}
	if last := log.Last(); last == nil || last.Seq != 5 {
		t.Fatalf("Last = %+v, want seq 5", last)
	}
	// Snapshot must be a deep copy: mutating it cannot touch the ring.
	snap[0].Candidates[0].Center = "tampered"
	if log.Snapshot()[0].Candidates[0].Center == "tampered" {
		t.Fatal("Snapshot aliases the ring storage")
	}
}

// TestCompareCandidatesInsertionOrderIndependence pins the tie-break:
// two centers with identical policy, identical distance (same
// location), and therefore the same latency class must rank by name no
// matter the order they were registered in — the candidate ranking
// must be a pure function of the ecosystem, not of Matcher
// construction history.
func TestCompareCandidatesInsertionOrderIndependence(t *testing.T) {
	build := func(order ...string) *Matcher {
		var cs []*datacenter.Center
		for _, name := range order {
			cs = append(cs, datacenter.NewCenter(name, geo.London, 10, mkPolicy("p", 0.25, time.Hour)))
		}
		return NewMatcher(cs)
	}
	req := cpuReq("z", 0.5, geo.London, math.Inf(1))

	fwd, _ := build("alpha", "beta").Allocate(req, t0)
	rev, _ := build("beta", "alpha").Allocate(req, t0)
	if fwd[0].Center.Name != "alpha" || rev[0].Center.Name != "alpha" {
		t.Fatalf("winner depends on insertion order: fwd=%s rev=%s",
			fwd[0].Center.Name, rev[0].Center.Name)
	}

	// The comparator itself must be antisymmetric on the name tie.
	a := candidate{center: datacenter.NewCenter("alpha", geo.London, 1, mkPolicy("p", 0.25, time.Hour)), distKm: 0}
	b := candidate{center: datacenter.NewCenter("beta", geo.London, 1, mkPolicy("p", 0.25, time.Hour)), distKm: 0}
	if compareCandidates(a, b) >= 0 || compareCandidates(b, a) <= 0 {
		t.Fatalf("name tie-break not antisymmetric: cmp(a,b)=%d cmp(b,a)=%d",
			compareCandidates(a, b), compareCandidates(b, a))
	}
	if compareCandidates(a, a) != 0 {
		t.Fatalf("cmp(a,a) = %d, want 0", compareCandidates(a, a))
	}
}
