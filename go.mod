module mmogdc

go 1.22
