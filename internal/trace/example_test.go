package trace_test

import (
	"fmt"

	"mmogdc/internal/trace"
)

// Generating a synthetic RuneScape-like trace: five regions of server
// groups, sampled every two minutes, fully determined by the seed.
func ExampleGenerate() {
	ds := trace.Generate(trace.Config{Seed: 42, Days: 1})
	global, _ := ds.GlobalLoad()
	fmt.Printf("%d server groups over %d regions, %d samples\n",
		len(ds.Groups), len(ds.Regions), ds.Samples())
	fmt.Printf("first group is %s, global population at t0 is positive: %v\n",
		ds.Groups[0].Name(), global.At(0) > 0)
	// Output:
	// 125 server groups over 5 regions, 720 samples
	// first group is r0g0, global population at t0 is positive: true
}

// Population events reshape the whole game's player base (Fig. 2).
func ExampleEvent_Multiplier() {
	crash := trace.Event{
		Kind:          trace.UnpopularDecision,
		Day:           10,
		Magnitude:     0.25,
		RecoveryDays:  3,
		ResidualLevel: 0.95,
	}
	fmt.Printf("before: %.2f\n", crash.Multiplier(9))
	fmt.Printf("bottom: %.2f\n", crash.Multiplier(11))
	fmt.Printf("long run: %.2f\n", crash.Multiplier(40))
	// Output:
	// before: 1.00
	// bottom: 0.75
	// long run: 0.95
}
