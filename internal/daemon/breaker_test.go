package daemon

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBreakerStateMachine walks the region circuit through its whole
// life directly: trip after threshold consecutive rejected passes,
// refuse while open, admit a paced half-open probe, reopen on a failed
// probe, and close on a granted one. testMatcher's centers (London and
// Amsterdam) both live in the "eu" failure domain.
func TestBreakerStateMachine(t *testing.T) {
	hot := fastHot()
	hot.BreakerThreshold = 3
	hot.BreakerCooldown = 2
	d := newTestDaemon(t, func(c *Config) { c.Hot = hot })
	defer drain(t, d)
	b := d.brk

	if !b.allow("eu") {
		t.Fatal("closed circuit refused admission")
	}
	// Two rejected passes are below the threshold.
	b.record(nil, []string{"dc-a"})
	b.record(nil, []string{"dc-a", "dc-b"})
	if s := b.snapshotStates()["eu"]; s != breakerClosed {
		t.Fatalf("below threshold, state = %d", s)
	}
	// A granted pass resets the streak even when another center in the
	// region rejected.
	b.record([]string{"dc-b"}, []string{"dc-a"})
	b.record(nil, []string{"dc-a"})
	b.record(nil, []string{"dc-a"})
	if s := b.snapshotStates()["eu"]; s != breakerClosed {
		t.Fatalf("streak did not reset on grant, state = %d", s)
	}
	// The third consecutive rejection trips the circuit.
	b.record(nil, []string{"dc-a"})
	if s := b.snapshotStates()["eu"]; s != breakerOpen {
		t.Fatalf("at threshold, state = %d", s)
	}
	// Open: refusals are paced, every BreakerCooldown-th converts into
	// a half-open probe admission.
	if b.allow("eu") {
		t.Fatal("open circuit admitted before the cooldown")
	}
	if !b.allow("eu") {
		t.Fatal("cooldown refusals did not convert into a probe")
	}
	if s := b.snapshotStates()["eu"]; s != breakerHalfOpen {
		t.Fatalf("after probe admission, state = %d", s)
	}
	// The probe's pass is rejected: straight back to open.
	b.record(nil, []string{"dc-b"})
	if s := b.snapshotStates()["eu"]; s != breakerOpen {
		t.Fatalf("failed probe, state = %d", s)
	}
	// Next probe succeeds: the circuit closes and admission is free.
	b.allow("eu")
	if !b.allow("eu") {
		t.Fatal("second probe not admitted")
	}
	b.record([]string{"dc-a"}, nil)
	if s := b.snapshotStates()["eu"]; s != breakerClosed {
		t.Fatalf("granted probe, state = %d", s)
	}
	if !b.allow("eu") {
		t.Fatal("closed circuit refused admission after recovery")
	}
	// A pass that never touched the region leaves it alone.
	b.record(nil, nil)
	if s := b.snapshotStates()["eu"]; s != breakerClosed {
		t.Fatalf("idle pass moved the state to %d", s)
	}
	// Unknown regions are never gated.
	if !b.allow("mars") {
		t.Fatal("unknown region refused")
	}
}

// TestBreakerDisabledByDefault: with BreakerThreshold 0 the breaker is
// inert no matter what the grant stream looks like.
func TestBreakerDisabledByDefault(t *testing.T) {
	d := newTestDaemon(t, nil)
	defer drain(t, d)
	for i := 0; i < 10; i++ {
		d.brk.record(nil, []string{"dc-a", "dc-b"})
	}
	if s := d.brk.snapshotStates()["eu"]; s != breakerClosed {
		t.Fatalf("disarmed breaker tripped, state = %d", s)
	}
	if !d.brk.allow("eu") {
		t.Fatal("disarmed breaker refused admission")
	}
}

// TestBreakerTripsAndRecoversOverAPI drives the full loop through the
// HTTP surface: total grant rejection trips the "eu" circuit and
// observe returns the typed region_unavailable 503; healing the fault
// injector lets a half-open probe grant, the circuit closes, and
// admission resumes with 202s.
func TestBreakerTripsAndRecoversOverAPI(t *testing.T) {
	hot := fastHot()
	hot.FaultRejectProb = 1 // every grant attempt is rejected
	hot.BreakerThreshold = 2
	hot.BreakerCooldown = 3
	d := newTestDaemon(t, func(c *Config) { c.Hot = hot })
	defer drain(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	ticksSeen := 0
	admit := func() int {
		t.Helper()
		resp := postObserve(t, srv.URL, "g1", []float64{100, 50})
		code := resp.StatusCode
		if code == http.StatusAccepted {
			ticksSeen++
			resp.Body.Close()
			waitTicks(t, d, "g1", ticksSeen)
			return code
		}
		if c := decodeError(t, resp); c != "region_unavailable" {
			t.Fatalf("refused with code %q, want region_unavailable (status %d)", c, code)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("region_unavailable without Retry-After")
		}
		return code
	}

	// Rejected grant passes (spaced by the operator's bounded backoff)
	// accumulate until the circuit opens and admission turns into 503s.
	tripped := false
	for i := 0; i < 50 && !tripped; i++ {
		tripped = admit() == http.StatusServiceUnavailable
	}
	if !tripped {
		t.Fatal("total grant rejection never tripped the region circuit")
	}

	// Heal the hoster and keep knocking: refusals pace in half-open
	// probes, one eventually grants, and the circuit closes.
	healed := d.Hot()
	healed.FaultRejectProb = 0
	if err := d.Reload(healed); err != nil {
		t.Fatal(err)
	}
	recovered := false
	for i := 0; i < 80 && !recovered; i++ {
		recovered = admit() == http.StatusAccepted &&
			d.brk.snapshotStates()["eu"] == breakerClosed
	}
	if !recovered {
		t.Fatalf("circuit never closed after healing (state %d)",
			d.brk.snapshotStates()["eu"])
	}

	// The trip is visible on the ops surface.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), `mmogdc_daemon_breaker_trips_total{region="eu"}`) {
		t.Fatal("/metrics missing the breaker trip counter")
	}
	if !strings.Contains(buf.String(), `mmogdc_daemon_rejected_total{reason="region_unavailable"}`) {
		t.Fatal("/metrics missing the typed rejection counter")
	}
}
