package obs

import "time"

// Obs bundles one run's observability: the metrics registry, the
// flight recorder, the optional span tracer, and the clock that times
// instrumented sections. A nil *Obs disables everything — the
// accessors return nil instruments whose methods are allocation-free
// no-ops, so engines thread a single pointer and never branch per
// metric.
type Obs struct {
	Registry *Registry
	Recorder *Recorder
	// Tracer records causally-linked spans when non-nil. Tracing is
	// opt-in (EnableTracing) even on an otherwise enabled bundle: span
	// recording is heavier than counters, and a nil Tracer keeps the
	// span call sites allocation-free.
	Tracer *Tracer
	// Runtime samples the Go runtime's self-telemetry when non-nil
	// (EnableRuntimeMetrics); the HTTP handler refreshes it at scrape
	// time. Off by default for the same reason tracing is.
	Runtime *RuntimeSampler
	// Clock times instrumented sections; nil falls back to System.
	// Tests inject a ManualClock for deterministic latency histograms.
	Clock Clock
}

// New builds an enabled observability bundle with a fresh registry, a
// default-capacity flight recorder, and the system clock. Tracing
// stays off until EnableTracing.
func New() *Obs {
	return &Obs{Registry: NewRegistry(), Recorder: NewRecorder(0), Clock: System}
}

// EnableTracing attaches a span tracer retaining up to capacity
// records (<= 0 uses DefaultTracerCapacity), sharing the bundle's
// clock, and returns it.
func (o *Obs) EnableTracing(capacity int) *Tracer {
	if o == nil {
		return nil
	}
	o.Tracer = NewTracer(capacity)
	o.Tracer.Clock = o.Clock
	return o.Tracer
}

// EnableRuntimeMetrics attaches a runtime/metrics-backed sampler
// publishing GC pause, heap, goroutine, and scheduler-latency gauges
// into the bundle's registry, timed by the bundle's clock, and
// returns it. The obs HTTP handler samples it on every /metrics
// scrape; callers may also Sample on their own cadence.
func (o *Obs) EnableRuntimeMetrics() *RuntimeSampler {
	if o == nil {
		return nil
	}
	o.Runtime = NewRuntimeSampler(o.Registry, o.Clock)
	return o.Runtime
}

// SampleRuntime refreshes the runtime gauges if the sampler is
// enabled; a no-op otherwise.
func (o *Obs) SampleRuntime() {
	if o == nil {
		return
	}
	o.Runtime.Sample()
}

// Reg returns the registry (nil when disabled).
func (o *Obs) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Rec returns the flight recorder (nil when disabled).
func (o *Obs) Rec() *Recorder {
	if o == nil {
		return nil
	}
	return o.Recorder
}

// Trc returns the span tracer (nil when disabled or tracing is off).
func (o *Obs) Trc() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// SyncRecorderGauges publishes the recorder's loss accounting —
// ring-overwritten events and failed sink writes — as gauges, so a
// /metrics scrape or -metrics-out snapshot makes silent event loss
// visible. Called by the HTTP handler at scrape time and by summary
// writers before snapshotting.
func (o *Obs) SyncRecorderGauges() {
	if o == nil {
		return
	}
	rec := o.Recorder
	o.Registry.Gauge("mmogdc_recorder_dropped_events",
		"Flight-recorder events overwritten by the bounded ring.").Set(float64(rec.Dropped()))
	o.Registry.Gauge("mmogdc_recorder_sink_errors",
		"Flight-recorder JSONL sink writes that failed.").Set(float64(rec.SinkErrs()))
}

// Now reads the bundle's clock. Disabled bundles return the zero Time
// without touching any clock, keeping the disabled path free of
// time.Now calls.
func (o *Obs) Now() time.Time {
	if o == nil {
		return time.Time{}
	}
	if o.Clock == nil {
		return time.Now()
	}
	return o.Clock.Now()
}
