#!/usr/bin/env sh
# Machine-readable benchmark snapshot: run the core-engine, checkpoint,
# and observability-overhead benchmarks with -benchmem and condense the
# output into BENCH_core.json (name -> ns/op, B/op, allocs/op) at the
# repo root. One iteration per benchmark keeps this cheap enough for
# CI; the numbers are a smoke-grade snapshot, not a measurement run.
set -eu
cd "$(dirname "$0")/.."

d=$(mktemp -d)
trap 'rm -rf "$d"' EXIT

go test -run '^$' -bench 'CoreRun|ObsOverhead' -benchtime 1x -benchmem . \
    > "$d/bench.out"
go test -run '^$' -bench Checkpoint -benchtime 1x -benchmem \
    ./internal/operator/ >> "$d/bench.out"

go run ./scripts/benchjson < "$d/bench.out" > BENCH_core.json
echo "bench-json: wrote BENCH_core.json ($(grep -c '"ns_per_op"' BENCH_core.json) benchmarks)"
