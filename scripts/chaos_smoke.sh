#!/usr/bin/env sh
# Chaos smoke: fault-injection scenarios under the race detector, with
# the mmogaudit toolchain as the exit gate.
#
# 1. Stochastic injector: MTBF/MTTR outages plus grant rejections and
#    monitoring dropouts must finish and report resilience accounting
#    (the injector, failover, and backoff paths on the parallel engine).
# 2. Correlated region blackout: a scheduled eu blackout at the evening
#    peak with storm control and brownout armed, with decision
#    provenance recording. The run's telemetry is piped through
#    mmogaudit, which must (a) pass every consistency check — including
#    the decision-walk cross-checks, (b) attribute every SLA-breach
#    episode to a root cause (-fail-on-unclassified exits 1 otherwise),
#    (c) resolve every breach episode's decision chain completely
#    (-fail-on-unexplained), and (d) render the failure-domain window
#    and Why section it reconstructed from the event stream. A
#    provenance-off control run must produce byte-identical stdout —
#    recording decisions is write-only.
set -eu
cd "$(dirname "$0")/.."

go run -race ./cmd/mmogsim -days 1 -predictor lastvalue \
	-mtbf 150 -mttr 25 -fault-seed 7 \
	-fault-reject 0.05 -fault-dropout 0.02 -fault-degraded 0.5 \
	| grep 'outages:' > /dev/null

d=$(mktemp -d)
trap 'rm -rf "$d"' EXIT

go run -race ./cmd/mmogsim -days 1 -predictor lastvalue \
	-blackout eu:480:40 -failover-budget 4 -brownout -brownout-reserve 0.1 \
	-provenance 4096 -obs-ring 32768 \
	-obs-events "$d/events.jsonl" -metrics-out "$d/metrics.json" \
	> "$d/sim.out" 2> "$d/sim.err"
grep -q 'region blackouts: 1' "$d/sim.out"
grep -q 'failovers deferred by storm control' "$d/sim.out"

# Write-only contract: the identical run without provenance answers
# byte-identically on stdout.
go run -race ./cmd/mmogsim -days 1 -predictor lastvalue \
	-blackout eu:480:40 -failover-budget 4 -brownout -brownout-reserve 0.1 \
	> "$d/sim_off.out" 2> "$d/sim_off.err"
cmp "$d/sim.out" "$d/sim_off.out"

go run ./cmd/mmogaudit -events "$d/events.jsonl" -metrics "$d/metrics.json" \
	-fail-on-unclassified -fail-on-unexplained -fail-on-drops > "$d/audit.md"
grep -q '## Failure domains' "$d/audit.md"
grep -q '| eu | 480-520 |' "$d/audit.md"
grep -q '## Why (decision provenance)' "$d/audit.md"
grep -q 'rejection events match rejected-by-injector dispositions: OK' "$d/audit.md"
grep -q 'granted centers appear in decision walks (mismatches): OK' "$d/audit.md"

echo "chaos-smoke: ok"
