package core

import (
	"math"
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

// equivalenceConfig builds a deliberately rich simulation — two games
// with different predictors and update models, two regions per game,
// two contended centers, interaction prioritization, tick-0 and
// mid-run outages, center tracking — freshly for each call (centers
// and predictors are stateful across a run).
func equivalenceConfig(workers int) Config {
	mkDS := func(seed uint64) *trace.Dataset {
		return trace.Generate(trace.Config{Seed: seed, Days: 1, Regions: []trace.Region{
			{ID: 0, Name: "Europe", Location: geo.London, Groups: 6},
			{ID: 1, Name: "US East Coast", Location: geo.NewYork, UTCOffsetHours: -5, Groups: 4},
		}})
	}
	gA := mmog.NewGame("A", mmog.GenreMMORPG)
	gB := mmog.NewGame("B", mmog.GenreRPG)
	gB.Update = mmog.UpdateLinear

	var bulk datacenter.Vector
	bulk[datacenter.CPU] = 0.25
	policy := datacenter.HostingPolicy{Name: "fine", Bulk: bulk, TimeBulk: time.Hour}
	centers := []*datacenter.Center{
		datacenter.NewCenter("london", geo.London, 40, policy),
		datacenter.NewCenter("nyc", geo.NewYork, 30, policy),
	}

	return Config{
		Workers:                 workers,
		Centers:                 centers,
		TrackCenters:            true,
		PrioritizeByInteraction: true,
		SafetyMargin:            0.1,
		Failures: []Failure{
			{Center: "nyc", AtTick: 0, DurationTicks: 12},
			{Center: "london", AtTick: 300, DurationTicks: 40},
		},
		Workloads: []Workload{
			{Game: gA, Dataset: mkDS(17), Predictor: predict.NewNeural(predict.PaperNeuralConfig(3))},
			{Game: gB, Dataset: mkDS(23), Predictor: predict.NewMovingAverage(6)},
		},
	}
}

// bitsEqual compares floats bit-for-bit, treating every NaN as equal
// to every other NaN (reflect.DeepEqual-style).
func bitsEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func compareResults(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Ticks != b.Ticks || a.Events != b.Events || a.Unmet != b.Unmet {
		t.Fatalf("scalar fields differ: ticks %d/%d events %d/%d unmet %d/%d",
			a.Ticks, b.Ticks, a.Events, b.Events, a.Unmet, b.Unmet)
	}
	for r := 0; r < int(datacenter.NumResources); r++ {
		if !bitsEqual(a.AvgOverPct[r], b.AvgOverPct[r]) {
			t.Errorf("AvgOverPct[%d]: %v != %v", r, a.AvgOverPct[r], b.AvgOverPct[r])
		}
		if !bitsEqual(a.AvgUnderPct[r], b.AvgUnderPct[r]) {
			t.Errorf("AvgUnderPct[%d]: %v != %v", r, a.AvgUnderPct[r], b.AvgUnderPct[r])
		}
	}
	if len(a.CumEvents) != len(b.CumEvents) {
		t.Fatalf("CumEvents length %d != %d", len(a.CumEvents), len(b.CumEvents))
	}
	for i := range a.CumEvents {
		if a.CumEvents[i] != b.CumEvents[i] {
			t.Fatalf("CumEvents[%d]: %d != %d", i, a.CumEvents[i], b.CumEvents[i])
		}
	}
	for i := range a.OverPct {
		if !bitsEqual(a.OverPct[i], b.OverPct[i]) {
			t.Fatalf("OverPct[%d]: %v != %v", i, a.OverPct[i], b.OverPct[i])
		}
	}
	for i := range a.UnderPct {
		if !bitsEqual(a.UnderPct[i], b.UnderPct[i]) {
			t.Fatalf("UnderPct[%d]: %v != %v", i, a.UnderPct[i], b.UnderPct[i])
		}
	}
	if len(a.AvgUnderByGame) != len(b.AvgUnderByGame) {
		t.Fatalf("AvgUnderByGame size %d != %d", len(a.AvgUnderByGame), len(b.AvgUnderByGame))
	}
	for name, v := range a.AvgUnderByGame {
		if w, ok := b.AvgUnderByGame[name]; !ok || !bitsEqual(v, w) {
			t.Errorf("AvgUnderByGame[%q]: %v != %v", name, v, w)
		}
	}
	if len(a.CenterStats) != len(b.CenterStats) {
		t.Fatalf("CenterStats size %d != %d", len(a.CenterStats), len(b.CenterStats))
	}
	for name, ca := range a.CenterStats {
		cb := b.CenterStats[name]
		if cb == nil {
			t.Fatalf("CenterStats[%q] missing", name)
		}
		if !bitsEqual(ca.AvgAllocatedCPU, cb.AvgAllocatedCPU) || !bitsEqual(ca.AvgFreeCPU, cb.AvgFreeCPU) {
			t.Errorf("CenterStats[%q]: alloc %v/%v free %v/%v",
				name, ca.AvgAllocatedCPU, cb.AvgAllocatedCPU, ca.AvgFreeCPU, cb.AvgFreeCPU)
		}
		if len(ca.AllocatedByRegion) != len(cb.AllocatedByRegion) {
			t.Fatalf("CenterStats[%q].AllocatedByRegion size %d != %d",
				name, len(ca.AllocatedByRegion), len(cb.AllocatedByRegion))
		}
		for region, v := range ca.AllocatedByRegion {
			if w, ok := cb.AllocatedByRegion[region]; !ok || !bitsEqual(v, w) {
				t.Errorf("CenterStats[%q].AllocatedByRegion[%q]: %v != %v", name, region, v, w)
			}
		}
	}
}

// TestParallelSequentialEquivalence is the contract of the three-phase
// engine: Workers=1 (fully sequential, the pre-parallelization
// behavior) and Workers=8 must produce bit-identical Results on a
// multi-game, multi-center run with outages injected.
func TestParallelSequentialEquivalence(t *testing.T) {
	seq, err := Run(equivalenceConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(equivalenceConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, seq, par)
	if seq.Ticks == 0 || seq.Events == 0 {
		t.Fatalf("degenerate run: ticks=%d events=%d (outages should disrupt)", seq.Ticks, seq.Events)
	}

	// Auto-sized pool (Workers=0) must match too.
	auto, err := Run(equivalenceConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, seq, auto)
}

// TestParallelEquivalenceStatic covers the static-provisioning path,
// whose per-zone phase skips prediction entirely.
func TestParallelEquivalenceStatic(t *testing.T) {
	mk := func(workers int) *Result {
		ds := syntheticDataset(5, 120, 1400)
		res, err := Run(Config{
			Static:    true,
			Workers:   workers,
			Workloads: []Workload{{Game: testGame(), Dataset: ds}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	compareResults(t, mk(1), mk(8))
}
