package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	before := parent.state
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if parent.state != before {
		t.Fatal("Split advanced the parent stream")
	}
	// Children with different labels produce different streams.
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children produced %d/100 identical draws", same)
	}
	// Splitting again with the same label reproduces the stream.
	c1b := parent.Split(1)
	c1a := parent.Split(1)
	for i := 0; i < 100; i++ {
		if c1a.Uint64() != c1b.Uint64() {
			t.Fatalf("same-label splits diverged at draw %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(8)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(3.5)
	}
	mean := sum / n
	if math.Abs(mean-3.5) > 0.1 {
		t.Fatalf("Exp(3.5) mean = %v", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(40, 2.5)
		if v < 40 {
			t.Fatalf("Pareto(40, 2.5) = %v below scale", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(29)
	weights := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight buckets were chosen: %v", counts)
	}
	// Expect proportions 1:3:6.
	total := float64(counts[1] + counts[2] + counts[4])
	for i, want := range map[int]float64{1: 0.1, 2: 0.3, 4: 0.6} {
		got := float64(counts[i]) / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("bucket %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	for _, weights := range [][]float64{nil, {}, {0, 0}, {-1, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedChoice(%v) did not panic", weights)
				}
			}()
			New(1).WeightedChoice(weights)
		}()
	}
}

func TestInt63nRange(t *testing.T) {
	r := New(31)
	const n = int64(1) << 40
	for i := 0; i < 1000; i++ {
		v := r.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(37)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %v", p)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(3, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
