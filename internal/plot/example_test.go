package plot_test

import (
	"fmt"
	"strings"

	"mmogdc/internal/plot"
)

// A minimal two-series chart, as the figure experiments render them.
func ExampleChart_Render() {
	c := plot.Chart{
		Title:  "load",
		Width:  24,
		Height: 4,
		Series: []plot.Series{
			{Name: "static", Values: []float64{4, 4, 4, 4}},
			{Name: "dynamic", Values: []float64{1, 2, 1, 2}},
		},
	}
	out := c.Render()
	fmt.Println(strings.Contains(out, "* static"))
	fmt.Println(strings.Contains(out, "+ dynamic"))
	// Output:
	// true
	// true
}
