// Command scrape is a minimal HTTP GET-to-stdout used by the shell
// smokes when curl is not installed: it fetches one URL and writes the
// body to stdout, failing on any non-2xx status. No flags, no
// dependencies — `go run ./scripts/scrape <url>`.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: scrape <url>")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		fmt.Fprintf(os.Stderr, "scrape: %s -> %s\n", os.Args[1], resp.Status)
		os.Exit(1)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
