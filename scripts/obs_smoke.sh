#!/usr/bin/env sh
# Observability smoke: run mmogsim with the telemetry server on an
# ephemeral port, scrape /metrics and /debug/pprof while it lingers,
# assert the key series exist, prove the write-only contract by
# byte-diffing the obs-on stdout against an obs-off run's, and feed the
# run's artifacts (events JSONL, metrics JSON, Chrome trace) through
# mmogaudit end to end.
set -eu
cd "$(dirname "$0")/.."

d=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$d"
}
trap cleanup EXIT

go build -o "$d/mmogsim" ./cmd/mmogsim
go build -o "$d/mmogaudit" ./cmd/mmogaudit
go build -o "$d/scrape" ./scripts/scrape

# fetch <url>: curl when the host has it, else the bundled scraper —
# the smoke must not require anything beyond the go toolchain.
if command -v curl > /dev/null 2>&1; then
    fetch() { curl -sf "$1"; }
else
    fetch() { "$d/scrape" "$1"; }
fi

args="-days 1 -predictor lastvalue -mtbf 150 -mttr 25 -fault-seed 7 \
    -fault-reject 0.05 -fault-dropout 0.02 -fault-degraded 0.5"

# Reference run, observability off.
"$d/mmogsim" $args > "$d/off.out"

# Obs-on run: ephemeral port, JSONL event sink, JSON metrics dump,
# Chrome trace, and a linger window holding the server up after the run
# for the scrapes.
"$d/mmogsim" $args -obs-addr 127.0.0.1:0 -obs-linger 120s \
    -obs-events "$d/events.jsonl" -metrics-out "$d/metrics.json" \
    -trace-out "$d/run.trace" \
    > "$d/on.out" 2> "$d/obs.err" &
pid=$!

# The "lingering" stderr line is printed after every artifact (metrics
# dump, trace) is fully written, before the linger sleep — once it
# appears the run is done and the server is still up.
i=0
while ! grep -q '^obs: lingering' "$d/obs.err" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "obs-smoke: run never finished" >&2
        cat "$d/obs.err" >&2
        exit 1
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "obs-smoke: run died early" >&2
        cat "$d/obs.err" >&2
        exit 1
    fi
    sleep 0.2
done

addr=$(sed -n 's/^obs: serving http on //p' "$d/obs.err" | head -n 1)
if [ -z "$addr" ]; then
    echo "obs-smoke: no 'obs: serving http on' line on stderr" >&2
    cat "$d/obs.err" >&2
    exit 1
fi

fetch "http://$addr/metrics" > "$d/metrics.txt"
grep -q '^mmogdc_tick_duration_seconds_bucket' "$d/metrics.txt"
grep -q '^mmogdc_tick_phase_duration_seconds_bucket{phase="observe"' "$d/metrics.txt"
grep -q '^mmogdc_failovers_total' "$d/metrics.txt"
grep -q '^mmogdc_center_availability{center=' "$d/metrics.txt"
grep -q '^mmogdc_recorder_dropped_events' "$d/metrics.txt"
fetch "http://$addr/debug/pprof/goroutine?debug=1" | grep -q 'goroutine'
fetch "http://$addr/debug/vars" | grep -q 'mmogdc_metrics'
fetch "http://$addr/events" | grep -q '"events"'
# Filtered view: only grant events, and the match count reported.
fetch "http://$addr/events?kind=grant" > "$d/grants.json"
grep -q '"matched"' "$d/grants.json"
grep -q '"kind": "grant"' "$d/grants.json"

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# Write-only contract: stdout must be byte-identical with obs enabled.
cmp "$d/off.out" "$d/on.out"
# The JSONL sink captured structured events with seq numbering.
test -s "$d/events.jsonl"
grep -q '"kind"' "$d/events.jsonl"
grep -q '"seq"' "$d/events.jsonl"
# The JSON dump carries the registry snapshot.
grep -q '"mmogdc_ticks_total"' "$d/metrics.json"
# The trace is a Chrome trace_event document.
grep -q '"traceEvents"' "$d/run.trace"

# Post-run audit: the toolchain must digest the three artifacts into a
# report whose consistency checks pass (mmogaudit exits 1 otherwise).
"$d/mmogaudit" -events "$d/events.jsonl" -metrics "$d/metrics.json" \
    -trace "$d/run.trace" > "$d/audit.md"
grep -q '^# mmogdc provisioning audit' "$d/audit.md"
grep -q 'Consistency checks' "$d/audit.md"
grep -q 'OK' "$d/audit.md"

echo "obs-smoke: ok"
