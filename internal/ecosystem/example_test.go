package ecosystem_test

import (
	"fmt"
	"math"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/ecosystem"
	"mmogdc/internal/geo"
)

// Request–offer matching across hosters: the matcher filters by the
// game's latency tolerance, then prefers the finest-grained policy
// with the shortest reservation time.
func ExampleMatcher_Allocate() {
	hp3, _ := datacenter.PolicyByName("HP-3") // fine grain
	hp7, _ := datacenter.PolicyByName("HP-7") // coarse grain
	centers := []*datacenter.Center{
		datacenter.NewCenter("coarse-but-close", geo.London, 8, hp7),
		datacenter.NewCenter("fine-but-far", geo.NewYork, 8, hp3),
	}
	m := ecosystem.NewMatcher(centers)

	var demand datacenter.Vector
	demand[datacenter.CPU] = 0.4

	leases, unmet := m.Allocate(ecosystem.Request{
		Tag:           "world-3",
		Origin:        geo.London,
		MaxDistanceKm: math.Inf(1), // a latency-tolerant game
		Demand:        demand,
	}, time.Date(2008, 1, 1, 12, 0, 0, 0, time.UTC))

	fmt.Printf("served by %s, unmet: %v\n", leases[0].Center.Name, unmet.IsZero() == false)
	// Output: served by fine-but-far, unmet: false
}
