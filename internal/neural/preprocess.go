package neural

import (
	"fmt"
	"math"
)

// Preprocessor transforms a raw input window before it reaches the
// network. The paper attaches "several signal preprocessors based on
// polynomial functions which have the purpose of removing the
// unwanted noise from the processed signal".
type Preprocessor interface {
	// Process returns the de-noised window; the result has the same
	// length as the input. Implementations must not retain the input.
	Process(window []float64) []float64
}

// Identity passes the window through unchanged.
type Identity struct{}

// Process implements Preprocessor.
func (Identity) Process(window []float64) []float64 {
	return append([]float64(nil), window...)
}

// PolySmoother least-squares-fits a polynomial of the configured
// degree to the window and returns the fitted values — a zero-delay
// smoothing filter (Savitzky–Golay style, full-window variant). The
// fit is recomputed per call, which is what keeps the neural predictor
// the slowest-but-still-microsecond method in Fig. 6.
type PolySmoother struct {
	// Degree of the fitted polynomial; 2 works well for the 6-sample
	// windows the paper uses.
	Degree int
}

// Process implements Preprocessor.
func (p PolySmoother) Process(window []float64) []float64 {
	n := len(window)
	deg := p.Degree
	if deg < 0 {
		deg = 0
	}
	if deg >= n {
		// Not enough points to constrain the fit; pass through.
		return append([]float64(nil), window...)
	}
	coef := polyfit(window, deg)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = polyval(coef, float64(i))
	}
	return out
}

// polyfit fits y[i] ~ poly(i) of the given degree by solving the
// normal equations with Gaussian elimination. Windows are tiny (6–12
// samples, degree <= 3), so the cubic cost is irrelevant.
func polyfit(y []float64, degree int) []float64 {
	n := len(y)
	k := degree + 1
	// Precompute power sums S_m = sum(i^m) and T_m = sum(i^m * y_i).
	s := make([]float64, 2*k-1)
	tv := make([]float64, k)
	for i := 0; i < n; i++ {
		x := float64(i)
		pw := 1.0
		for m := 0; m < 2*k-1; m++ {
			s[m] += pw
			if m < k {
				tv[m] += pw * y[i]
			}
			pw *= x
		}
	}
	// Build the normal-equation matrix A[r][c] = S_{r+c}.
	a := make([][]float64, k)
	for r := 0; r < k; r++ {
		a[r] = make([]float64, k+1)
		for c := 0; c < k; c++ {
			a[r][c] = s[r+c]
		}
		a[r][k] = tv[r]
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if a[col][col] == 0 {
			continue // singular; coefficient stays zero
		}
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= k; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	coef := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		if a[r][r] == 0 {
			coef[r] = 0
			continue
		}
		sum := a[r][k]
		for c := r + 1; c < k; c++ {
			sum -= a[r][c] * coef[c]
		}
		coef[r] = sum / a[r][r]
	}
	return coef
}

// polyval evaluates the polynomial (Horner).
func polyval(coef []float64, x float64) float64 {
	v := 0.0
	for i := len(coef) - 1; i >= 0; i-- {
		v = v*x + coef[i]
	}
	return v
}

// Normalizer maps raw values into the network's working range [0, 1]
// given a fixed capacity, and back.
type Normalizer struct {
	// Capacity is the value mapped to 1.0; it must be positive.
	Capacity float64
}

// NewNormalizer validates the capacity.
func NewNormalizer(capacity float64) (Normalizer, error) {
	if capacity <= 0 {
		return Normalizer{}, fmt.Errorf("neural: capacity must be positive, got %v", capacity)
	}
	return Normalizer{Capacity: capacity}, nil
}

// Norm maps a raw value into [0, ...]; values above capacity exceed 1.
func (n Normalizer) Norm(v float64) float64 { return v / n.Capacity }

// Denorm inverts Norm, clamping at zero (a population prediction can
// never be negative).
func (n Normalizer) Denorm(v float64) float64 {
	out := v * n.Capacity
	if out < 0 {
		return 0
	}
	return out
}
