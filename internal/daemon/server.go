package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"mmogdc/internal/obs"
	"mmogdc/internal/operator"
)

// The daemon's HTTP surface:
//
//	POST /v1/observe    ingest one per-game tick sample (202 / 429 / 4xx)
//	GET  /v1/forecast   latest per-zone forecast for one game
//	GET  /v1/leases     the live lease book for one game
//	GET  /v1/explain    the last-N allocation decisions with verdicts
//	                    (requires Config.ExplainDepth / mmogd -explain)
//	GET  /v1/config     the active hot configuration
//	POST /v1/config     validate-and-swap a new hot configuration
//	GET  /healthz       process liveness (always 200 while serving)
//	GET  /readyz        admission readiness (503 while draining)
//	GET  /metrics …     the observability surface (internal/obs)
//
// Error responses are typed JSON: {"error":{"code":..., "message":...}}.

// apiError is the typed error body every non-2xx response carries.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (d *Daemon) typedError(w http.ResponseWriter, status int, code, msg string) {
	d.rejected(code)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]apiError{"error": {Code: code, Message: msg}})
}

// rejected counts one refused request by reason code. The counter map
// is tiny (one entry per code) and lazily built.
func (d *Daemon) rejected(code string) {
	d.ecoMu.Lock()
	c := d.mRejected[code]
	if c == nil {
		c = d.obs.Registry.Counter("mmogdc_daemon_rejected_total",
			"Requests refused, by typed error code.", obs.L("reason", code))
		d.mRejected[code] = c
	}
	d.ecoMu.Unlock()
	c.Inc()
}

// statusWriter captures the response status code for the per-endpoint
// request histogram and the request span.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps one /v1 endpoint with request-scoped telemetry:
// the mmogdc_daemon_http_request_seconds{path,code} histogram, and —
// when tracing is on — a daemon.request span parented under the
// client's W3C traceparent header (mmogload sends one per request)
// and stamped into the request context so the admission path can
// chain the queue-wait and observe spans to it. The health probes are
// deliberately not wrapped: a scraper hitting healthz every second
// would pollute the series for zero diagnostic value.
func (d *Daemon) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := d.obs.Now()
		var span *obs.Span
		if trc := d.obs.Trc(); trc != nil {
			_, parent, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
			span = trc.BeginAt("daemon.request", "daemon", parent, start)
			span.SetSubject(path)
			r = r.WithContext(obs.ContextWithSpan(r.Context(), span.ID()))
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		end := d.obs.Now()
		d.obs.Registry.Histogram("mmogdc_daemon_http_request_seconds",
			"HTTP request latency by /v1 endpoint and status code (healthz/readyz excluded).",
			obs.TimeBuckets, obs.L("path", path), obs.L("code", strconv.Itoa(sw.code))).
			Observe(end.Sub(start).Seconds())
		if span != nil {
			span.SetValue(float64(sw.code))
			span.EndAt(end)
		}
	}
}

// ObserveRequest is the POST /v1/observe body: one monitoring snapshot
// of per-zone entity counts (or any non-negative load measure).
type ObserveRequest struct {
	Game   string    `json:"game"`
	Values []float64 `json:"values"`
}

func (d *Daemon) handleObserve(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, d.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req ObserveRequest
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			d.typedError(w, http.StatusRequestEntityTooLarge, "oversized_body",
				fmt.Sprintf("body exceeds %d bytes", mbe.Limit))
			return
		}
		d.typedError(w, http.StatusBadRequest, "malformed_body", err.Error())
		return
	}
	g := d.games[req.Game]
	if g == nil {
		d.typedError(w, http.StatusNotFound, "unknown_game",
			fmt.Sprintf("game %q is not provisioned by this daemon", req.Game))
		return
	}
	if len(req.Values) == 0 {
		d.typedError(w, http.StatusBadRequest, "bad_value", "values must carry at least one zone")
		return
	}
	for i, v := range req.Values {
		if math.IsInf(v, 0) || math.IsNaN(v) || v < 0 {
			d.typedError(w, http.StatusBadRequest, "bad_value",
				fmt.Sprintf("values[%d] = %v is not a finite non-negative load", i, v))
			return
		}
	}
	// The first accepted observation fixes the game's zone count; every
	// later snapshot must match it (a malformed client must not wedge
	// the operator with shape errors).
	n := int64(len(req.Values))
	if !g.zones.CompareAndSwap(0, n) && g.zones.Load() != n {
		d.typedError(w, http.StatusConflict, "zone_mismatch",
			fmt.Sprintf("observed %d zones, game %q has %d", n, req.Game, g.zones.Load()))
		return
	}
	// The region circuit breaker gates admission: a game homed in a
	// region whose centers keep rejecting grants is refused instead of
	// queueing observations the region cannot serve.
	if !d.brk.allow(g.region) {
		// The matcher never sees a refused observation; synthesize its
		// provenance so /v1/explain can answer for the refusal too.
		d.explainCircuitOpen(g, g.region)
		w.Header().Set("Retry-After", "1")
		d.typedError(w, http.StatusServiceUnavailable, "region_unavailable",
			fmt.Sprintf("region %q circuit is open after consecutive grant failures", g.region))
		return
	}
	tick, err := d.enqueue(g, req.Values, obs.SpanFromContext(r.Context()))
	switch {
	case errors.Is(err, errDraining):
		d.typedError(w, http.StatusServiceUnavailable, "draining", "daemon is draining; not admitting")
		return
	case errors.Is(err, errQueueFull):
		// Backpressure: shed with 429 and tell the client when to come
		// back — one observe deadline is the worst-case drain time of
		// one queue slot.
		retry := 1
		if t := d.hot.Load().ObserveTimeout(); t > time.Second {
			retry = int(t / time.Second)
		}
		w.Header().Set("Retry-After", fmt.Sprint(retry))
		d.typedError(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("ingest queue for %q is full (%d waiting)", req.Game, cap(g.queue)))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{
		"game": req.Game, "tick": tick, "queued": len(g.queue),
	})
}

// gameFor resolves the ?game= query parameter, defaulting to the only
// game when exactly one is provisioned.
func (d *Daemon) gameFor(w http.ResponseWriter, r *http.Request) *game {
	name := r.URL.Query().Get("game")
	if name == "" && len(d.order) == 1 {
		name = d.order[0]
	}
	g := d.games[name]
	if g == nil {
		d.typedError(w, http.StatusNotFound, "unknown_game",
			fmt.Sprintf("game %q is not provisioned by this daemon", name))
		return nil
	}
	return g
}

func (d *Daemon) handleForecast(w http.ResponseWriter, r *http.Request) {
	g := d.gameFor(w, r)
	if g == nil {
		return
	}
	d.ecoMu.Lock()
	m := g.op.Metrics()
	src := g.op.Forecast()
	forecast := append([]float64(nil), src...)
	d.ecoMu.Unlock()
	total := 0.0
	for _, f := range forecast {
		total += f
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(map[string]any{
		"game": g.spec.Name, "ticks": m.Ticks, "zones": len(forecast),
		"total": total, "forecast": forecast,
	})
}

func (d *Daemon) handleLeases(w http.ResponseWriter, r *http.Request) {
	g := d.gameFor(w, r)
	if g == nil {
		return
	}
	d.ecoMu.Lock()
	views := g.op.LeaseViews(g.now)
	d.ecoMu.Unlock()
	if views == nil {
		views = []operator.LeaseView{}
	}
	cpu := 0.0
	for _, v := range views {
		cpu += v.CPU
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(map[string]any{
		"game": g.spec.Name, "count": len(views), "cpu_units": cpu, "leases": views,
	})
}

func (d *Daemon) handleConfigGet(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(d.Hot())
}

func (d *Daemon) handleConfigPost(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, d.cfg.MaxBodyBytes)
	// The candidate starts from the active configuration, so a partial
	// body tweaks only the fields it names.
	h := d.Hot()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&h); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			d.typedError(w, http.StatusRequestEntityTooLarge, "oversized_body",
				fmt.Sprintf("body exceeds %d bytes", mbe.Limit))
			return
		}
		d.typedError(w, http.StatusBadRequest, "malformed_body", err.Error())
		return
	}
	if err := d.Reload(h); err != nil {
		d.typedError(w, http.StatusBadRequest, "invalid_config", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(map[string]any{"applied": true, "config": d.Hot()})
}

// Handler returns the daemon's full HTTP surface: the /v1 API, the
// health endpoints, and the observability mux (metrics, events,
// pprof) as the fallback.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/observe", d.instrument("/v1/observe", d.handleObserve))
	mux.HandleFunc("GET /v1/forecast", d.instrument("/v1/forecast", d.handleForecast))
	mux.HandleFunc("GET /v1/leases", d.instrument("/v1/leases", d.handleLeases))
	mux.HandleFunc("GET /v1/explain", d.instrument("/v1/explain", d.handleExplain))
	mux.HandleFunc("GET /v1/config", d.instrument("/v1/config", d.handleConfigGet))
	mux.HandleFunc("POST /v1/config", d.instrument("/v1/config", d.handleConfigPost))
	// Method-less duplicates catch method confusion with a typed 405;
	// without them the mux would fall through to the "/" pattern below
	// and report a misleading 404 from the obs surface.
	for path, allow := range map[string]string{
		"/v1/observe": "POST", "/v1/forecast": "GET", "/v1/leases": "GET",
		"/v1/explain": "GET", "/v1/config": "GET, POST",
	} {
		mux.HandleFunc(path, d.instrument(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			d.typedError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Sprintf("%s does not allow %s", r.URL.Path, r.Method))
		}))
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if d.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})
	mux.Handle("/", d.obs.Handler())
	return mux
}

// Server is the daemon's running HTTP listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the daemon's API on addr (use "127.0.0.1:0" for an
// ephemeral port) behind the hardened obs HTTP server — header, read,
// write, and idle deadlines plus a header-size cap, so a slow or
// malicious client cannot wedge the ingestion surface.
func (d *Daemon) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	s := &Server{ln: ln, srv: obs.HardenedServer(d.Handler())}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (with the real ephemeral port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener immediately (in-flight requests are cut).
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting and waits for in-flight requests, bounded
// by ctx.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
