// Package slo is the daemon's online SLO engine: multi-window
// burn-rate alerting (the Google SRE workbook recipe) evaluated
// directly against the obs registry's counters and histograms, on
// whatever clock the caller injects — the daemon uses each game's
// virtual tick clock, so evaluation is deterministic and independent
// of wall time.
//
// A rule watches one bad/total signal (shed rate, slow observe loops,
// observe failures, SLA-breach ticks, grant rejections), derives the
// bad-event ratio over a short and a long trailing window, and divides
// each by the objective (the budgeted bad fraction) to get a burn
// rate. The alert fires when BOTH windows burn at or above the
// threshold — the long window guards against blips, the short window
// both speeds detection and lets the alert resolve quickly once the
// signal recovers (the classic single-window "alert stays red for an
// hour after the incident" failure). Firing and resolving emit
// slo_alert flight-recorder events and flip the
// mmogdc_slo_alert_active gauge that scrapes and mmogaudit's
// alert-quality scoring consume.
//
// Like the rest of the obs layer the engine is write-only telemetry:
// it reads metrics and publishes alerts, but nothing in the
// provisioning path reads it back, so enabling rules cannot change a
// run's output (the daemon's bit-identical test pins this).
package slo

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mmogdc/internal/obs"
)

// Signal names a rule can watch. All are per-game ratios of "bad"
// events to total opportunities, read from the daemon's and operator's
// registered series.
const (
	// SignalShedRate: observations shed with 429 / observations offered
	// (shed + ingested) — the backpressure SLO.
	SignalShedRate = "shed_rate"
	// SignalObserveLatency: observe-loop completions slower than
	// LatencyObjectiveMS / all completions — the tail-latency SLO over
	// mmogdc_daemon_observe_loop_seconds.
	SignalObserveLatency = "observe_latency"
	// SignalObserveFailures: observe passes that timed out or failed /
	// observations ingested.
	SignalObserveFailures = "observe_failures"
	// SignalBreachRate: disruptive (SLA-breaching) ticks / all operator
	// ticks — the paper's availability measure.
	SignalBreachRate = "breach_rate"
	// SignalRejectionRate: vetoed grant attempts / operator ticks.
	SignalRejectionRate = "rejection_rate"
)

var signals = map[string]bool{
	SignalShedRate:        true,
	SignalObserveLatency:  true,
	SignalObserveFailures: true,
	SignalBreachRate:      true,
	SignalRejectionRate:   true,
}

// RuleConfig is one hot-reloadable burn-rate rule, JSON-shaped for the
// daemon's config file (slo_rules array).
type RuleConfig struct {
	// Name labels the alert (event subject, gauge label). Required,
	// unique across the rule set.
	Name string `json:"name"`
	// Signal is one of the Signal* constants.
	Signal string `json:"signal"`
	// Game scopes the rule; empty means the daemon's first game.
	Game string `json:"game,omitempty"`
	// Objective is the error budget as a bad fraction in (0, 1): 0.01
	// means 99% of events may not be bad. Burn rate is the observed bad
	// ratio divided by this.
	Objective float64 `json:"objective"`
	// LatencyObjectiveMS is the latency target for observe_latency:
	// completions slower than this are bad. Ignored by other signals.
	LatencyObjectiveMS float64 `json:"latency_objective_ms,omitempty"`
	// ShortWindowS and LongWindowS are the two trailing windows in
	// seconds of the evaluation clock (for the daemon: virtual game
	// seconds, i.e. ShortWindowS/tick_seconds ticks).
	ShortWindowS float64 `json:"short_window_s"`
	LongWindowS  float64 `json:"long_window_s"`
	// BurnFactor is the burn-rate threshold both windows must meet or
	// exceed to fire; <= 0 defaults to 1 (exactly exhausting the
	// budget).
	BurnFactor float64 `json:"burn_factor,omitempty"`
}

func (rc RuleConfig) factor() float64 {
	if rc.BurnFactor <= 0 {
		return 1
	}
	return rc.BurnFactor
}

// Validate rejects a malformed rule with a field-specific error.
func (rc RuleConfig) Validate() error {
	if rc.Name == "" {
		return fmt.Errorf("slo rule: name is required")
	}
	if !signals[rc.Signal] {
		return fmt.Errorf("slo rule %q: unknown signal %q", rc.Name, rc.Signal)
	}
	if !(rc.Objective > 0 && rc.Objective < 1) {
		return fmt.Errorf("slo rule %q: objective must be in (0, 1), got %v", rc.Name, rc.Objective)
	}
	if rc.ShortWindowS <= 0 || rc.LongWindowS <= 0 {
		return fmt.Errorf("slo rule %q: windows must be > 0", rc.Name)
	}
	if rc.ShortWindowS >= rc.LongWindowS {
		return fmt.Errorf("slo rule %q: short window (%vs) must be shorter than long (%vs)",
			rc.Name, rc.ShortWindowS, rc.LongWindowS)
	}
	if rc.Signal == SignalObserveLatency && rc.LatencyObjectiveMS <= 0 {
		return fmt.Errorf("slo rule %q: observe_latency needs latency_objective_ms > 0", rc.Name)
	}
	return nil
}

// ValidateRules validates each rule and rejects duplicate names.
func ValidateRules(rules []RuleConfig) error {
	seen := map[string]bool{}
	for _, rc := range rules {
		if err := rc.Validate(); err != nil {
			return err
		}
		if seen[rc.Name] {
			return fmt.Errorf("slo rule %q: duplicate name", rc.Name)
		}
		seen[rc.Name] = true
	}
	return nil
}

// source reads a signal's cumulative (bad, total) pair.
type source func() (bad, total float64)

// point is one cumulative reading at one evaluation instant.
type point struct {
	t          time.Time
	bad, total float64
}

// ruleState is one rule's compiled sources, trailing readings, and
// alert latch.
type ruleState struct {
	cfg    RuleConfig
	factor float64
	short  time.Duration
	long   time.Duration
	src    source

	ring   []point // trailing readings, pruned past the long window
	firing bool

	active    *obs.Gauge
	burnShort *obs.Gauge
	burnLong  *obs.Gauge
}

// Engine evaluates a rule set. Safe for concurrent Eval calls (the
// daemon has one worker goroutine per game); nil engines are no-ops,
// which is how "no rules configured" is represented.
type Engine struct {
	mu     sync.Mutex
	rec    *obs.Recorder
	byGame map[string][]*ruleState
	all    []*ruleState
}

// NewEngine compiles rules against reg, resolving empty Game fields to
// defaultGame, and will emit alert transitions to rec. The registry
// lookups are idempotent: signals bind to the same series the daemon
// and operator publish into.
func NewEngine(rules []RuleConfig, reg *obs.Registry, rec *obs.Recorder, defaultGame string) (*Engine, error) {
	if err := ValidateRules(rules); err != nil {
		return nil, err
	}
	e := &Engine{rec: rec, byGame: map[string][]*ruleState{}}
	for _, rc := range rules {
		game := rc.Game
		if game == "" {
			game = defaultGame
		}
		rs := &ruleState{
			cfg:    rc,
			factor: rc.factor(),
			short:  time.Duration(rc.ShortWindowS * float64(time.Second)),
			long:   time.Duration(rc.LongWindowS * float64(time.Second)),
			src:    sourceFor(rc, game, reg),
			active: reg.Gauge("mmogdc_slo_alert_active",
				"1 while the rule's multi-window burn-rate alert is firing.",
				obs.L("rule", rc.Name)),
			burnShort: reg.Gauge("mmogdc_slo_burn_rate",
				"Burn rate (bad ratio over the window / objective) per rule and window.",
				obs.L("rule", rc.Name), obs.L("window", "short")),
			burnLong: reg.Gauge("mmogdc_slo_burn_rate",
				"Burn rate (bad ratio over the window / objective) per rule and window.",
				obs.L("rule", rc.Name), obs.L("window", "long")),
		}
		rs.active.Set(0)
		e.byGame[game] = append(e.byGame[game], rs)
		e.all = append(e.all, rs)
	}
	return e, nil
}

// sourceFor binds a rule to the registered series its signal reads.
// Help strings only matter on first registration; in the daemon these
// series already exist by the time rules compile.
func sourceFor(rc RuleConfig, game string, reg *obs.Registry) source {
	lg := obs.L("game", game)
	switch rc.Signal {
	case SignalShedRate:
		shed := reg.Counter("mmogdc_daemon_shed_total",
			"Observations shed with 429 because the ingest queue was full.", lg)
		ingest := reg.Counter("mmogdc_daemon_ingest_total",
			"Observations admitted into the ingest queue.", lg)
		return func() (float64, float64) {
			bad := float64(shed.Value())
			return bad, bad + float64(ingest.Value())
		}
	case SignalObserveLatency:
		h := reg.Histogram("mmogdc_daemon_observe_loop_seconds",
			"Admission-to-observed latency of one observation (queue wait plus the observe pass).",
			obs.TimeBuckets, lg)
		bound := rc.LatencyObjectiveMS / 1e3
		return func() (float64, float64) {
			total := float64(h.Count())
			return total - float64(h.CountAtOrBelow(bound)), total
		}
	case SignalObserveFailures:
		timeouts := reg.Counter("mmogdc_daemon_observe_timeouts_total",
			"Observe passes cut short by the observe deadline.", lg)
		errs := reg.Counter("mmogdc_daemon_observe_errors_total",
			"Observe passes that failed outright.", lg)
		ingest := reg.Counter("mmogdc_daemon_ingest_total",
			"Observations admitted into the ingest queue.", lg)
		return func() (float64, float64) {
			return float64(timeouts.Value() + errs.Value()), float64(ingest.Value())
		}
	case SignalBreachRate:
		bad := reg.Counter("mmogdc_operator_disruptive_ticks_total",
			"Ticks whose shortfall exceeded 1% of the session's machines.", lg)
		ticks := reg.Counter("mmogdc_operator_ticks_total",
			"Monitoring snapshots the operator ingested.", lg)
		return func() (float64, float64) {
			return float64(bad.Value()), float64(ticks.Value())
		}
	case SignalRejectionRate:
		rej := reg.Counter("mmogdc_operator_rejections_total",
			"Grant attempts vetoed by the fault injector.", lg)
		ticks := reg.Counter("mmogdc_operator_ticks_total",
			"Monitoring snapshots the operator ingested.", lg)
		return func() (float64, float64) {
			return float64(rej.Value()), float64(ticks.Value())
		}
	}
	// Unreachable after ValidateRules.
	return func() (float64, float64) { return 0, 0 }
}

// Eval takes one reading for every rule scoped to game, stamped with
// the caller's clock (the daemon passes the observation's virtual game
// time and tick), and fires or resolves alerts. A nil engine is a
// no-op.
func (e *Engine) Eval(game string, tick int, now time.Time) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.byGame[game] {
		rs.eval(e.rec, tick, now)
	}
}

func (rs *ruleState) eval(rec *obs.Recorder, tick int, now time.Time) {
	bad, total := rs.src()
	rs.ring = append(rs.ring, point{t: now, bad: bad, total: total})
	// Prune, but keep the newest reading at or before the long-window
	// cutoff: it is the baseline long deltas subtract from.
	cut := now.Add(-rs.long)
	base := 0
	for base+1 < len(rs.ring) && !rs.ring[base+1].t.After(cut) {
		base++
	}
	if base > 0 {
		rs.ring = append(rs.ring[:0], rs.ring[base:]...)
	}

	cur := rs.ring[len(rs.ring)-1]
	bShort, okShort := rs.burnOver(cur, rs.short)
	bLong, okLong := rs.burnOver(cur, rs.long)
	rs.burnShort.Set(bShort)
	rs.burnLong.Set(bLong)

	switch {
	case !rs.firing && okShort && okLong && bShort >= rs.factor && bLong >= rs.factor:
		rs.firing = true
		rs.active.Set(1)
		rec.Record(obs.Event{Tick: tick, Kind: obs.EventSLOAlert,
			Subject: rs.cfg.Name, Detail: "firing", Value: bShort})
	case rs.firing && okShort && bShort < rs.factor:
		rs.firing = false
		rs.active.Set(0)
		rec.Record(obs.Event{Tick: tick, Kind: obs.EventSLOAlert,
			Subject: rs.cfg.Name, Detail: "resolved", Value: bShort})
	}
}

// burnOver computes the burn rate over the trailing window w ending at
// cur. The baseline is the newest reading at least w old; while the
// ring is younger than w the oldest reading stands in, so a fresh
// engine can fire before a full long window of history exists —
// detection speed is the point. ok is false when there is no earlier
// reading or no events happened in the window.
func (rs *ruleState) burnOver(cur point, w time.Duration) (burn float64, ok bool) {
	cut := cur.t.Add(-w)
	var base *point
	for i := range rs.ring {
		if rs.ring[i].t.After(cut) {
			break
		}
		base = &rs.ring[i]
	}
	if base == nil && rs.ring[0].t.Before(cur.t) {
		base = &rs.ring[0]
	}
	if base == nil {
		return 0, false
	}
	dTotal := cur.total - base.total
	if dTotal <= 0 {
		return 0, false
	}
	ratio := (cur.bad - base.bad) / dTotal
	if ratio < 0 {
		ratio = 0
	}
	return ratio / rs.cfg.Objective, true
}

// Firing returns the sorted names of currently firing rules.
func (e *Engine) Firing() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, rs := range e.all {
		if rs.firing {
			out = append(out, rs.cfg.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Deactivate clears every firing alert's gauge without emitting
// resolved events — called when a hot reload replaces the rule set, so
// a retired rule cannot leave a stuck "active" series behind.
func (e *Engine) Deactivate() {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.all {
		rs.firing = false
		rs.active.Set(0)
	}
}
