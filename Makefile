# Repository CI targets. `make ci` is what a PR must keep green: vet,
# build, the full test suite under the race detector (guarding the
# parallel per-zone simulation engine in internal/core and the sweep
# pool in internal/par), and the gated benchmark snapshot (bench-json),
# which both keeps the BenchmarkCoreRun* variants runnable and fails
# the build when allocs/op or B/op regress >20% — or ns/op >2x, a
# wide tripwire because wall-clock on a loaded box is noise — against
# the committed BENCH_core.json (see scripts/benchgate).

GO ?= go

.PHONY: ci vet build test race bench-smoke bench bench-json chaos-smoke recovery-smoke obs-smoke daemon-smoke slo-smoke

ci: vet build race bench-json chaos-smoke recovery-smoke obs-smoke daemon-smoke slo-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the core-engine benchmarks: catches bit-rot in the
# bench harness without paying for a full measurement run. The
# checkpoint benchmark rides along so the operator snapshot path stays
# runnable too.
bench-smoke:
	$(GO) test -run '^$$' -bench CoreRun -benchtime 1x .
	$(GO) test -run '^$$' -bench Checkpoint -benchtime 1x ./internal/operator/
	$(GO) test -run '^$$' -bench ObsOverhead -benchtime 1x .

# Fault-injection smoke: stochastic injector plus a correlated region
# blackout under the race detector, gated by mmogaudit — every breach
# episode must carry a root cause and all consistency checks must pass.
chaos-smoke:
	sh scripts/chaos_smoke.sh

# Crash-recovery smoke under the race detector: run to a deterministic
# "crash" (-stop-after-tick) with checkpointing on, resume over the
# checkpoint directory, and require the resumed stdout to be
# byte-identical to an uninterrupted run's — metrics continuity across
# the kill, end to end.
recovery-smoke:
	d=$$(mktemp -d) && \
	$(GO) run -race ./cmd/mmogsim -days 1 -predictor movingavg -fault-dropout 0.02 \
		> $$d/ref.out && \
	$(GO) run -race ./cmd/mmogsim -days 1 -predictor movingavg -fault-dropout 0.02 \
		-checkpoint-dir $$d/ckpt -checkpoint-every 100 -stop-after-tick 400 \
		> $$d/stop.out 2> $$d/stop.err && \
	test ! -s $$d/stop.out && \
	$(GO) run -race ./cmd/mmogsim -days 1 -predictor movingavg -fault-dropout 0.02 \
		-checkpoint-dir $$d/ckpt -checkpoint-every 100 \
		> $$d/resume.out 2> $$d/resume.err && \
	grep -q 'resumed from checkpoint at tick 400' $$d/resume.err && \
	cmp $$d/ref.out $$d/resume.out && \
	rm -rf $$d

# Observability smoke: serve /metrics + /debug/pprof from a live run,
# scrape and assert the key series, and byte-diff the obs-on stdout
# against an obs-off run's (the write-only telemetry contract).
obs-smoke:
	sh scripts/obs_smoke.sh

# Daemon smoke: the full mmogd lifecycle — load, SIGTERM drain,
# checkpoint restart with lease reconciliation (clean and after
# kill -9), hot reload (HTTP + SIGHUP), 10x overload shedding with
# 429s, the blown-drain hard exit, and the mmogaudit load report.
daemon-smoke:
	sh scripts/daemon_smoke.sh

# SLO + tracing smoke: a forced breach under an armed burn-rate alert
# with end-to-end traceparent propagation; mmogaudit merges the client
# and server traces, scores the alert against ground truth (perfect
# precision/recall, lag <= 2 ticks), and a rules-off control run must
# answer byte-identically (write-only telemetry).
slo-smoke:
	sh scripts/slo_smoke.sh

# Full benchmark suite (minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Machine-readable benchmark snapshot, gated against the committed
# BENCH_core.json: refreshes the snapshot and fails on a >20%
# allocs/op or B/op (or >2x ns/op) regression (scripts/benchjson +
# scripts/benchgate). To accept an intentional change, commit the
# refreshed BENCH_core.json.
bench-json:
	sh scripts/bench_json.sh
