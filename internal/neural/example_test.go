package neural_test

import (
	"fmt"

	"mmogdc/internal/neural"
	"mmogdc/internal/xrand"
)

// Training the paper's (6,3,1) perceptron in eras until the
// convergence criterion fires.
func ExampleMLP_Fit() {
	net, _ := neural.NewMLP(xrand.New(1), 2, 4, 1)

	// A toy target: y = average of the two inputs.
	var train, test []neural.Sample
	for i := 0; i < 64; i++ {
		x1 := float64(i%8) / 8
		x2 := float64(i/8) / 8
		s := neural.Sample{In: []float64{x1, x2}, Target: []float64{(x1 + x2) / 2}}
		if i%5 == 0 {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}

	report := net.Fit(train, test, neural.TrainConfig{
		LearningRate: 0.1, MaxEras: 500, Patience: 20, ShuffleSeed: 7,
	})
	fmt.Printf("converged: %v, test loss below 0.001: %v\n",
		report.Converged, report.TestLoss < 0.001)
	// Output: converged: true, test loss below 0.001: true
}
