package predict

import (
	"mmogdc/internal/obs"
	"mmogdc/internal/stats"
)

// Evaluate replays a signal through a fresh predictor and returns the
// paper's prediction-error metric (Section IV-D2): the ratio between
// the sum of un-normalized sample prediction errors |x_t - p_t| and
// the sum of all samples, as a percentage. The first sample has no
// prediction and is excluded.
func Evaluate(f Factory, signal []float64) float64 {
	p := f()
	var errSum, valSum float64
	for i, v := range signal {
		if i > 0 {
			pred := p.Predict()
			d := v - pred
			if d < 0 {
				d = -d
			}
			errSum += d
		}
		valSum += v
		p.Observe(v)
	}
	if valSum == 0 {
		return 0
	}
	return errSum / valSum * 100
}

// EvaluateZones replays a multi-zone signal through one predictor per
// zone (the per-sub-zone structure of Section IV-B) and returns the
// aggregate prediction error: total absolute error across all zones
// and steps over the total player volume.
func EvaluateZones(f Factory, zones [][]float64) float64 {
	if len(zones) == 0 {
		return 0
	}
	ps := make([]Predictor, len(zones))
	for i := range ps {
		ps[i] = f()
	}
	n := len(zones[0])
	var errSum, valSum float64
	for t := 0; t < n; t++ {
		for z, sig := range zones {
			v := sig[t]
			if t > 0 {
				d := v - ps[z].Predict()
				if d < 0 {
					d = -d
				}
				errSum += d
			}
			valSum += v
			ps[z].Observe(v)
		}
	}
	if valSum == 0 {
		return 0
	}
	return errSum / valSum * 100
}

// EvaluateZonesFrom scores prediction errors only from step from
// onward, normalizing by the player volume of the scored region.
// Predictors still observe the whole signal. This separates the
// offline data-collection region (which pretrained the neural
// predictor) from the scored deployment region, keeping the comparison
// with the baselines fair.
func EvaluateZonesFrom(f Factory, zones [][]float64, from int) float64 {
	if len(zones) == 0 {
		return 0
	}
	if from < 1 {
		from = 1
	}
	ps := make([]Predictor, len(zones))
	for i := range ps {
		ps[i] = f()
	}
	n := len(zones[0])
	var errSum, valSum float64
	for t := 0; t < n; t++ {
		for z, sig := range zones {
			v := sig[t]
			if t >= from {
				d := v - ps[z].Predict()
				if d < 0 {
					d = -d
				}
				errSum += d
				valSum += v
			}
			ps[z].Observe(v)
		}
	}
	if valSum == 0 {
		return 0
	}
	return errSum / valSum * 100
}

// EvaluateZonesAggregate scores the whole-game-world prediction: at
// each step the per-zone forecasts are summed (Section IV-B: "the
// predicted entity count for the entire game world is the sum of all
// the sub-zone predictions") and compared against the actual total
// entity count. Errors are scored from step from onward and normalized
// by the total volume of the scored region. This is the Fig. 5 metric.
func EvaluateZonesAggregate(f Factory, zones [][]float64, from int) float64 {
	if len(zones) == 0 {
		return 0
	}
	if from < 1 {
		from = 1
	}
	ps := make([]Predictor, len(zones))
	for i := range ps {
		ps[i] = f()
	}
	n := len(zones[0])
	var errSum, valSum float64
	for t := 0; t < n; t++ {
		var total, predTotal float64
		for z, sig := range zones {
			total += sig[t]
			if t >= from {
				predTotal += ps[z].Predict()
			}
		}
		if t >= from {
			d := total - predTotal
			if d < 0 {
				d = -d
			}
			errSum += d
			valSum += total
		}
		for z, sig := range zones {
			ps[z].Observe(sig[t])
		}
	}
	if valSum == 0 {
		return 0
	}
	return errSum / valSum * 100
}

// TimePredictions measures the wall-clock duration of each Predict
// call while replaying the signal and returns the five-number summary
// in microseconds (the Fig. 6 presentation). Observe time is excluded:
// the figure reports "the time took to make one prediction".
func TimePredictions(f Factory, signal []float64) (stats.FiveNum, error) {
	return TimePredictionsWith(f, signal, obs.System, nil)
}

// TimePredictionsWith is TimePredictions with an injectable monotonic
// clock — a deterministic obs.ManualClock makes the summary exactly
// reproducible in tests — and an optional histogram that receives every
// per-call duration in seconds (nil skips it).
func TimePredictionsWith(f Factory, signal []float64, clk obs.Clock, hist *obs.Histogram) (stats.FiveNum, error) {
	p := f()
	durations := make([]float64, 0, len(signal))
	for i, v := range signal {
		if i > 0 {
			start := clk.Now()
			_ = p.Predict()
			elapsed := clk.Now().Sub(start)
			durations = append(durations, float64(elapsed.Nanoseconds())/1e3)
			hist.ObserveDuration(elapsed)
		}
		p.Observe(v)
	}
	return stats.Summary(durations)
}

// EvaluateHorizon scores h-step-ahead forecasts: at each step the
// predictor (having observed samples up to t) forecasts the value at
// t+h, recursively feeding its own one-step forecasts back as
// observations for the intermediate steps. Longer lease time bulks
// make multi-step accuracy the operationally relevant quantity — a
// six-hour lease is sized by what the load will be, not by the next
// two minutes. The predictor must be resettable via its factory; the
// recursion uses a cheap state copy by replaying history, so this
// evaluator is O(n*h) predictor steps.
func EvaluateHorizon(f Factory, signal []float64, h int) float64 {
	if h < 1 {
		h = 1
	}
	if len(signal) <= h {
		return 0
	}
	var errSum, valSum float64
	// Replay-based recursion: for each origin t, build a fresh
	// predictor over signal[:t+1], then roll it forward h-1 steps on
	// its own forecasts.
	//
	// A full rebuild per origin is O(n^2); instead keep one primary
	// predictor fed with real data and clone-by-replay only the
	// rolling part, bounded by h.
	primary := f()
	for t := 0; t < len(signal); t++ {
		primary.Observe(signal[t])
		if t+h >= len(signal) {
			continue
		}
		// Roll forward h steps on forecasts. For h == 1 this is the
		// plain Predict.
		forecast := primary.Predict()
		if h > 1 {
			// Rebuild a disposable predictor over the recent window so
			// the primary's state stays untouched. A few windows of
			// history suffice for the windowed predictors; long-memory
			// predictors (Average) are approximated by the same recency.
			from := t - DefaultWindow*4
			if from < 0 {
				from = 0
			}
			roller := f()
			for i := from; i <= t; i++ {
				roller.Observe(signal[i])
			}
			forecast = roller.Predict()
			for step := 1; step < h; step++ {
				roller.Observe(forecast)
				forecast = roller.Predict()
			}
		}
		d := signal[t+h] - forecast
		if d < 0 {
			d = -d
		}
		errSum += d
		valSum += signal[t+h]
	}
	if valSum == 0 {
		return 0
	}
	return errSum / valSum * 100
}

// ReplayPredictions returns the one-step-ahead prediction series for a
// signal: out[t] is the prediction made for step t using observations
// up to t-1 (out[0] is the predictor's prior, usually 0).
func ReplayPredictions(f Factory, signal []float64) []float64 {
	p := f()
	out := make([]float64, len(signal))
	for i, v := range signal {
		out[i] = p.Predict()
		p.Observe(v)
	}
	return out
}
