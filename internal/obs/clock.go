package obs

import (
	"sync"
	"time"
)

// Clock abstracts time.Now for micro-timing, so prediction-cost tables
// and latency histograms are deterministic under test: production code
// uses System; tests inject a ManualClock.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// System is the wall clock (with Go's monotonic reading, so Sub is
// monotonic).
var System Clock = systemClock{}

// ManualClock is a deterministic test clock: every Now call returns
// the current instant and then advances it by Step, so two successive
// Now calls bracket exactly one Step. Safe for concurrent use.
type ManualClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

// NewManualClock starts a manual clock at start, advancing step per
// Now call.
func NewManualClock(start time.Time, step time.Duration) *ManualClock {
	return &ManualClock{now: start, step: step}
}

// Now returns the clock's instant and advances it by the step.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

// Advance moves the clock forward by d without producing a reading.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
