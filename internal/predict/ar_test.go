package predict

import (
	"math"
	"testing"
)

func TestARPriorAndFallback(t *testing.T) {
	p := NewAR(3, 10, 100)()
	if p.Predict() != 0 {
		t.Fatal("prior should be 0")
	}
	p.Observe(7)
	if p.Predict() != 7 {
		t.Fatalf("unfitted AR should fall back to last value, got %v", p.Predict())
	}
}

func TestARConstantSignal(t *testing.T) {
	p := NewAR(2, 5, 200)()
	for i := 0; i < 60; i++ {
		p.Observe(40)
	}
	if got := p.Predict(); math.Abs(got-40) > 1e-6 {
		t.Fatalf("constant-signal AR prediction = %v", got)
	}
}

func TestARLearnsAR1Process(t *testing.T) {
	// x_t = 0.8 x_{t-1} + noise around mean 100; the fitted AR should
	// beat last-value on the one-step error.
	state := uint64(7)
	rnd := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/(1<<53) - 0.5
	}
	signal := make([]float64, 2000)
	x := 0.0
	for i := range signal {
		x = 0.8*x + 20*rnd()
		signal[i] = 100 + x
	}
	arErr := Evaluate(NewAR(2, 50, 1000), signal)
	lvErr := Evaluate(NewLastValue(), signal)
	if arErr >= lvErr {
		t.Fatalf("AR error %v should beat last value %v on an AR(1) process", arErr, lvErr)
	}
}

func TestARPredictsSinusoidWell(t *testing.T) {
	// A pure sinusoid is an AR(2) process: the fitted model should
	// track it nearly perfectly after warm-up.
	signal := make([]float64, 1000)
	for i := range signal {
		signal[i] = 500 + 200*math.Sin(2*math.Pi*float64(i)/12)
	}
	p := NewAR(4, 30, 600)()
	var worst float64
	for i, v := range signal {
		if i > 300 {
			if d := math.Abs(p.Predict() - v); d > worst {
				worst = d
			}
		}
		p.Observe(v)
	}
	if worst > 20 {
		t.Fatalf("AR worst late error on sinusoid = %v", worst)
	}
}

func TestARHistoryBounded(t *testing.T) {
	f := NewAR(2, 10, 64)
	p := f().(*AR)
	for i := 0; i < 10000; i++ {
		p.Observe(float64(i % 13))
	}
	if len(p.history) > 64 {
		t.Fatalf("history grew to %d, cap 64", len(p.history))
	}
}

func TestARParameterClamping(t *testing.T) {
	p := NewAR(0, 0, 0)().(*AR)
	if p.order != 1 || p.refitInterval != 1 || p.maxHistory < 4 {
		t.Fatalf("clamped params = %+v", p)
	}
}

func TestARNonNegative(t *testing.T) {
	p := NewAR(3, 5, 100)()
	for i := 0; i < 200; i++ {
		p.Observe(math.Abs(math.Sin(float64(i))) * 3)
		if p.Predict() < 0 {
			t.Fatal("negative AR prediction")
		}
	}
}

func TestSeasonalNaive(t *testing.T) {
	p := NewSeasonalNaive(4)()
	if p.Predict() != 0 {
		t.Fatal("prior should be 0")
	}
	feed(p, 1, 2, 3)
	// Season not complete: last value.
	if p.Predict() != 3 {
		t.Fatalf("partial-season prediction = %v", p.Predict())
	}
	feed(p, 4)
	// Next step (index 4) maps to slot 0 -> value 1.
	if p.Predict() != 1 {
		t.Fatalf("seasonal prediction = %v, want 1", p.Predict())
	}
	feed(p, 10)
	// Next step (index 5) maps to slot 1 -> value 2.
	if p.Predict() != 2 {
		t.Fatalf("seasonal prediction = %v, want 2", p.Predict())
	}
}

func TestSeasonalNaivePerfectOnPeriodicSignal(t *testing.T) {
	const period = 24
	signal := make([]float64, period*20)
	for i := range signal {
		signal[i] = 100 + 50*math.Sin(2*math.Pi*float64(i)/period)
	}
	p := NewSeasonalNaive(period)()
	var errSum float64
	for i, v := range signal {
		if i >= period {
			errSum += math.Abs(p.Predict() - v)
		}
		p.Observe(v)
	}
	if errSum > 1e-6 {
		t.Fatalf("seasonal naive error on periodic signal = %v", errSum)
	}
}

func TestSeasonalNaivePeriodClamp(t *testing.T) {
	p := NewSeasonalNaive(0)()
	feed(p, 5, 9)
	if p.Predict() != 9 {
		t.Fatalf("period-1 seasonal naive should track last value, got %v", p.Predict())
	}
}
