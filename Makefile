# Repository CI targets. `make ci` is what a PR must keep green: vet,
# build, the full test suite under the race detector (guarding the
# parallel per-zone simulation engine in internal/core and the sweep
# pool in internal/par), and a one-iteration benchmark smoke so the
# BenchmarkCoreRun* variants always stay runnable.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench chaos-smoke

ci: vet build race bench-smoke chaos-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the core-engine benchmarks: catches bit-rot in the
# bench harness without paying for a full measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench CoreRun -benchtime 1x .

# Fault-injection smoke: a short chaos run under the race detector must
# finish and report its resilience accounting (stochastic injector,
# failover, and backoff paths on top of the parallel engine).
chaos-smoke:
	$(GO) run -race ./cmd/mmogsim -days 1 -predictor lastvalue \
		-mtbf 150 -mttr 25 -fault-seed 7 \
		-fault-reject 0.05 -fault-dropout 0.02 -fault-degraded 0.5 \
		| grep 'outages:' > /dev/null

# Full benchmark suite (minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
