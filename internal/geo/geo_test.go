package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceZero(t *testing.T) {
	if d := DistanceKm(London, London); d != 0 {
		t.Fatalf("distance of a point to itself = %v", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	err := quick.Check(func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := Point{math.Mod(lat2, 90), math.Mod(lon2, 180)}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		a, b     Point
		wantKm   float64
		tolerKm  float64
		pairName string
	}{
		{London, Amsterdam, 358, 15, "London-Amsterdam"},
		{NewYork, LosAngeles, 3936, 50, "NewYork-LosAngeles"},
		{Helsinki, Stockholm, 396, 15, "Helsinki-Stockholm"},
		{Sydney, Melbourne, 714, 20, "Sydney-Melbourne"},
		{London, Sydney, 16994, 150, "London-Sydney"},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.wantKm) > c.tolerKm {
			t.Errorf("%s: got %.0f km, want %.0f±%.0f", c.pairName, got, c.wantKm, c.tolerKm)
		}
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	pts := []Point{London, NewYork, Sydney, Helsinki, SanJose, Montreal}
	for _, a := range pts {
		for _, b := range pts {
			for _, c := range pts {
				ab := DistanceKm(a, b)
				bc := DistanceKm(b, c)
				ac := DistanceKm(a, c)
				if ac > ab+bc+1e-6 {
					t.Fatalf("triangle inequality violated: d(%v,%v)=%v > %v+%v", a, c, ac, ab, bc)
				}
			}
		}
	}
}

func TestLatencyClassThresholds(t *testing.T) {
	cases := []struct {
		d    float64
		want LatencyClass
	}{
		{0, SameLocation},
		{49, SameLocation},
		{51, VeryClose},
		{999, VeryClose},
		{1000, VeryClose}, // boundaries are inclusive, matching Admits
		{1001, Close},
		{1999, Close},
		{2000, Close},
		{2001, Far},
		{3999, Far},
		{4000, Far},
		{4001, VeryFar},
		{20000, VeryFar},
	}
	for _, c := range cases {
		if got := ClassOf(c.d); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestAdmitsMonotonicity(t *testing.T) {
	// A looser class must admit everything a tighter class admits.
	distances := []float64{0, 10, 100, 999, 1500, 3000, 8000}
	for i := 0; i+1 < len(AllLatencyClasses); i++ {
		tight, loose := AllLatencyClasses[i], AllLatencyClasses[i+1]
		for _, d := range distances {
			if tight.Admits(d) && !loose.Admits(d) {
				t.Errorf("%v admits %v km but %v does not", tight, d, loose)
			}
		}
	}
}

func TestVeryFarAdmitsEverything(t *testing.T) {
	for _, d := range []float64{0, 1, 1e4, 1e6, math.MaxFloat64} {
		if !VeryFar.Admits(d) {
			t.Fatalf("VeryFar rejected distance %v", d)
		}
	}
}

func TestLatencyClassStrings(t *testing.T) {
	for _, c := range AllLatencyClasses {
		if c.String() == "" {
			t.Errorf("class %d has empty String()", int(c))
		}
	}
	if got := LatencyClass(99).String(); got != "LatencyClass(99)" {
		t.Errorf("unknown class String() = %q", got)
	}
}

func TestClassOfConsistentWithAdmits(t *testing.T) {
	err := quick.Check(func(raw float64) bool {
		d := math.Abs(math.Mod(raw, 25000))
		c := ClassOf(d)
		if !c.Admits(d) {
			return false
		}
		// The next-tighter class must not admit it.
		if c > SameLocation && LatencyClass(c-1).Admits(d) {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegionOfBucketsNamedLocations(t *testing.T) {
	cases := []struct {
		p    Point
		want string
	}{
		{Helsinki, "eu"}, {Stockholm, "eu"}, {London, "eu"}, {Amsterdam, "eu"},
		{SanJose, "na-west"}, {Seattle, "na-west"}, {Vancouver, "na-west"}, {LosAngeles, "na-west"},
		{Chicago, "na-east"}, {NewYork, "na-east"}, {Ashburn, "na-east"},
		{Toronto, "na-east"}, {Montreal, "na-east"},
		{Sydney, "au"}, {Melbourne, "au"},
	}
	for _, c := range cases {
		if got := RegionOf(c.p); got != c.want {
			t.Errorf("RegionOf(%+v) = %q, want %q", c.p, got, c.want)
		}
	}
	// Off-grid points fall into deterministic grid cells, never panic.
	odd := Point{-50.0, -70.0} // Patagonia
	if got := RegionOf(odd); got != RegionOf(odd) || got == "" {
		t.Errorf("RegionOf grid fallback unstable or empty: %q", got)
	}
	if RegionOf(Point{-50, -70}) == RegionOf(Point{10, 70}) {
		t.Error("distant grid cells collide")
	}
}
