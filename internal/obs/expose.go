package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders the registry: the Prometheus text exposition
// format served on /metrics, and a JSON-friendly snapshot for
// machine-readable run summaries (-metrics-out) and /debug/vars.
// Both renderings are deterministic — families sorted by name, series
// by canonical label key — so outputs are diffable across runs.

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.sortedFamilies() {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusText renders the registry to a string (tests, summaries).
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns the family's series in canonical key order.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	f.mu.Unlock()
	return out
}

func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	for _, s := range f.sortedSeries() {
		var err error
		switch f.kind {
		case counterKind:
			_, err = fmt.Fprintf(w, "%s %d\n", seriesID(f.name, s.labels), s.counter.Value())
		case gaugeKind:
			_, err = fmt.Fprintf(w, "%s %s\n", seriesID(f.name, s.labels), formatFloat(s.gauge.Value()))
		case histogramKind:
			err = s.histogram.write(w, f.name, s.labels)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// write renders one histogram series: cumulative le buckets (ending in
// +Inf), then _sum and _count.
func (h *Histogram) write(w io.Writer, name string, labels []Label) error {
	counts := h.snapshotCounts()
	cum := int64(0)
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s %d\n",
			seriesID(name+"_bucket", append(append([]Label(nil), labels...), Label{"le", le})), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", seriesID(name+"_sum", labels), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesID(name+"_count", labels), h.Count())
	return err
}

// seriesID renders name{k1="v1",k2="v2"} (no braces when unlabeled).
// Labels are already in canonical (sorted) order except a trailing
// "le", which by construction sorts into place only coincidentally —
// it is appended last, matching Prometheus convention.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline only (quotes
// are legal in help text).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip decimal, with NaN/+Inf/-Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonNumber renders a float as a JSON-encodable value: numbers stay
// numbers, non-finite values (which encoding/json rejects) become
// their exposition-format strings.
func jsonNumber(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return formatFloat(v)
	}
	return v
}

// Snapshot returns the registry as one JSON-encodable document: series
// id → value (counters as integers, gauges as numbers, histograms as
// {count, sum, buckets} with cumulative le-keyed buckets). Map keys
// make encoding/json sort the output, so the document is
// deterministic. A nil registry returns an empty map.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			id := seriesID(f.name, s.labels)
			switch f.kind {
			case counterKind:
				out[id] = s.counter.Value()
			case gaugeKind:
				out[id] = jsonNumber(s.gauge.Value())
			case histogramKind:
				h := s.histogram
				buckets := map[string]int64{}
				cum := int64(0)
				for i, c := range h.snapshotCounts() {
					cum += c
					le := "+Inf"
					if i < len(h.bounds) {
						le = formatFloat(h.bounds[i])
					}
					buckets[le] = cum
				}
				out[id] = map[string]any{
					"count":   h.Count(),
					"sum":     jsonNumber(h.Sum()),
					"buckets": buckets,
				}
			}
		}
	}
	return out
}
