package neural

import (
	"math"
	"testing"
	"testing/quick"

	"mmogdc/internal/xrand"
)

func TestIdentity(t *testing.T) {
	in := []float64{1, 2, 3}
	out := Identity{}.Process(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("identity changed the window: %v", out)
		}
	}
	out[0] = 99
	if in[0] == 99 {
		t.Fatal("identity aliases its input")
	}
}

func TestPolySmootherReproducesPolynomial(t *testing.T) {
	// A window that already is a degree-2 polynomial must pass through
	// (numerically) unchanged.
	in := make([]float64, 8)
	for i := range in {
		x := float64(i)
		in[i] = 3 + 2*x - 0.5*x*x
	}
	out := PolySmoother{Degree: 2}.Process(in)
	for i := range in {
		if math.Abs(out[i]-in[i]) > 1e-6 {
			t.Fatalf("poly window distorted at %d: %v != %v", i, out[i], in[i])
		}
	}
}

func TestPolySmootherRemovesNoise(t *testing.T) {
	r := xrand.New(3)
	base := make([]float64, 12)
	noisy := make([]float64, 12)
	for i := range base {
		x := float64(i)
		base[i] = 100 + 10*x
		noisy[i] = base[i] + r.Norm(0, 8)
	}
	out := PolySmoother{Degree: 1}.Process(noisy)
	var rawErr, smoothErr float64
	for i := range base {
		rawErr += math.Abs(noisy[i] - base[i])
		smoothErr += math.Abs(out[i] - base[i])
	}
	if smoothErr >= rawErr {
		t.Fatalf("smoothing did not reduce noise: %v >= %v", smoothErr, rawErr)
	}
}

func TestPolySmootherDegreeTooHigh(t *testing.T) {
	in := []float64{5, 6}
	out := PolySmoother{Degree: 5}.Process(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("over-parameterized fit should pass through, got %v", out)
		}
	}
}

func TestPolySmootherConstantWindow(t *testing.T) {
	in := []float64{4, 4, 4, 4, 4, 4}
	out := PolySmoother{Degree: 2}.Process(in)
	for i := range in {
		if math.Abs(out[i]-4) > 1e-9 {
			t.Fatalf("constant window distorted: %v", out)
		}
	}
}

func TestPolySmootherNegativeDegree(t *testing.T) {
	in := []float64{1, 5, 9}
	out := PolySmoother{Degree: -1}.Process(in)
	// Degree clamps to 0: the mean.
	want := 5.0
	for i := range out {
		if math.Abs(out[i]-want) > 1e-9 {
			t.Fatalf("degree-0 fit = %v, want all %v", out, want)
		}
	}
}

func TestPolySmootherLengthPreserved(t *testing.T) {
	err := quick.Check(func(raw []float64, degRaw uint8) bool {
		in := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			in = append(in, v)
		}
		deg := int(degRaw % 4)
		out := PolySmoother{Degree: deg}.Process(in)
		return len(out) == len(in)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormalizer(t *testing.T) {
	n, err := NewNormalizer(2000)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Norm(1000); got != 0.5 {
		t.Fatalf("Norm = %v", got)
	}
	if got := n.Denorm(0.5); got != 1000 {
		t.Fatalf("Denorm = %v", got)
	}
	if got := n.Denorm(-0.3); got != 0 {
		t.Fatalf("negative denorm should clamp to 0, got %v", got)
	}
	if _, err := NewNormalizer(0); err == nil {
		t.Fatal("zero capacity should be rejected")
	}
	if _, err := NewNormalizer(-5); err == nil {
		t.Fatal("negative capacity should be rejected")
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	n, _ := NewNormalizer(1234)
	err := quick.Check(func(raw float64) bool {
		v := math.Abs(math.Mod(raw, 1e6))
		return math.Abs(n.Denorm(n.Norm(v))-v) < 1e-9*(1+v)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
