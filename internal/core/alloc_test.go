package core

import (
	"fmt"
	"testing"

	"mmogdc/internal/predict"
)

// TestRunAllocationBudget locks in the steady-state allocation contract
// of the tick loop. A whole Run still allocates for three legitimate
// reasons: setup (zone state, partials, arenas, predictors, result
// series), the lease objects the acquire phase creates as demand grows
// (retained state, proportional to demand growth, ~1.5 objects per
// grant here), and the parallel dispatch's O(workers) closures per
// tick. What it must NOT do is allocate per zone per tick in the
// observe/predict/reduce path. The budgets sit ~6k above the measured
// totals for this configuration; the guarded regression class (one
// allocation per zone-tick, e.g. a tag formatted inside the loop) adds
// at least groups*samples = 11.5k objects and fails immediately.
func TestRunAllocationBudget(t *testing.T) {
	const (
		groups  = 16
		samples = 720
	)
	budgets := map[int]float64{1: 24000, 2: 29000, 8: 33000}
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			run := func() {
				ds := syntheticDataset(groups, samples, 500)
				cfg := Config{
					Workers:   workers,
					Centers:   fineCenters(1000),
					Workloads: []Workload{{Game: testGame(), Dataset: ds, Predictor: predict.NewLastValue()}},
				}
				if _, err := Run(cfg); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm up lazy runtime state outside the measurement
			avg := testing.AllocsPerRun(3, run)
			t.Logf("workers=%d: %.0f allocs per run (%d zones x %d ticks)", workers, avg, groups, samples)
			if budget := budgets[workers]; avg > budget {
				t.Errorf("workers=%d: %.0f allocs per run exceeds budget %.0f — the tick loop is allocating again", workers, avg, budget)
			}
		})
	}
}
