// Command mmogsim runs one dynamic-provisioning simulation end to end:
// it generates (or loads) a population trace, pretrains the neural
// predictor on an earlier observation window, simulates the
// request-offer matching against the Table III data centers, and
// reports the paper's three metrics.
//
// Usage:
//
//	mmogsim -days 14 -update "O(n^2)" -policy HP-1,HP-2
//	mmogsim -trace trace.csv -predictor lastvalue -static
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mmogdc/internal/audit"
	"mmogdc/internal/core"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/faults"
	"mmogdc/internal/mmog"
	"mmogdc/internal/obs"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

func main() {
	var (
		days      = flag.Int("days", 14, "generated trace length in days")
		seed      = flag.Uint64("seed", 42, "random seed")
		traceFile = flag.String("trace", "", "load a CSV trace instead of generating one")
		update    = flag.String("update", "O(n^2)", "update model: O(n), O(n log n), O(n^2), O(n^2 log n), O(n^3)")
		policy    = flag.String("policy", "HP-1,HP-2", "comma-separated Table IV policies (or 'optimal') assigned round-robin")
		predictor = flag.String("predictor", "neural", "neural|average|lastvalue|movingavg|median|expsmoothing")
		static    = flag.Bool("static", false, "static (peak-capacity) provisioning instead of dynamic")
		margin    = flag.Float64("margin", 0, "safety margin on predicted demand (e.g. 0.1 = +10%)")
		workers   = flag.Int("workers", 0, "per-zone simulation parallelism (0 = GOMAXPROCS, 1 = sequential)")

		ckptDir   = flag.String("checkpoint-dir", "", "directory for crash-safe run checkpoints (empty disables; a run over existing checkpoints resumes from the newest valid one)")
		ckptEvery = flag.Int("checkpoint-every", 60, "checkpoint cadence in ticks")
		stopAfter = flag.Int("stop-after-tick", 0, "halt right after this tick completes (simulated crash for recovery drills; 0 = run to the end)")

		obsAddr    = flag.String("obs-addr", "", "serve /metrics, /events, /debug/vars, and /debug/pprof on this address while the run executes (e.g. 127.0.0.1:8080; :0 picks a free port, printed to stderr)")
		obsLinger  = flag.Duration("obs-linger", 0, "keep the -obs-addr server up this long after the run finishes (for scraping a completed run)")
		obsEvents  = flag.String("obs-events", "", "append every flight-recorder event to this JSONL file")
		obsRing    = flag.Int("obs-ring", 0, "flight-recorder ring capacity in events (0 = default 4096; size it to the run when gating on zero overwrites)")
		provDepth  = flag.Int("provenance", 0, "record the last N allocation decisions with per-candidate dispositions; with -obs-events, each acquire also emits a 'decision' event (0 disables)")
		metricsOut = flag.String("metrics-out", "", "write a JSON snapshot of all metrics (plus the resilience summary) to this file after the run")
		traceOut   = flag.String("trace-out", "", "record spans and write a Chrome trace_event JSON file (view in Perfetto; feed to mmogaudit)")

		failFile  = flag.String("failures", "", "scheduled outage file: one 'center,atTick,durationTicks' per line, # comments")
		faultSeed = flag.Uint64("fault-seed", 0, "seed of the stochastic fault injector (0 = reuse -seed)")
		mtbf      = flag.Float64("mtbf", 0, "mean ticks between center outages (0 disables stochastic outages)")
		mttr      = flag.Float64("mttr", 0, "mean outage duration in ticks (0 = injector default)")
		degraded  = flag.Float64("fault-degraded", 0, "probability an outage is partial (center keeps a share of machines)")
		reject    = flag.Float64("fault-reject", 0, "probability a center rejects one grant attempt")
		partial   = flag.Float64("fault-partial", 0, "probability a grant is trimmed to a fraction")
		dropout   = flag.Float64("fault-dropout", 0, "probability one zone's monitoring sample is lost at one tick")

		regionMTBF = flag.Float64("region-mtbf", 0, "mean ticks between whole-region blackouts (0 disables correlated region faults)")
		regionMTTR = flag.Float64("region-mttr", 0, "mean region blackout duration in ticks (0 = injector default)")
		aftershock = flag.Float64("aftershock", 0, "probability each center of a recovering region suffers a follow-on outage")
		blackouts  = flag.String("blackout", "", "scheduled region blackouts, comma-separated region:startTick:durationTicks (e.g. eu:480:40)")

		failoverBudget  = flag.Int("failover-budget", 0, "max failover re-acquisitions per tick; the excess defers with jittered backoff (0 = unlimited)")
		brownout        = flag.Bool("brownout", false, "shed lowest-priority leases instead of thrashing when surviving capacity cannot cover demand")
		brownoutReserve = flag.Float64("brownout-reserve", 0, "fraction of surviving capacity held back as headroom during brownout")
	)
	flag.Parse()

	// Observability: the bundle exists whenever any obs flag asks for
	// it; the simulation itself is bit-identical either way.
	var telemetry *obs.Obs
	if *obsAddr != "" || *obsEvents != "" || *metricsOut != "" || *traceOut != "" {
		telemetry = obs.New()
		if *obsRing > 0 {
			telemetry.Recorder = obs.NewRecorder(*obsRing)
		}
	}
	if *traceOut != "" {
		telemetry.EnableTracing(0)
	}
	if *obsEvents != "" {
		f, err := os.Create(*obsEvents)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		telemetry.Recorder.SetSink(f)
	}
	if *obsAddr != "" {
		srv, err := telemetry.Serve(*obsAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving http on %s\n", srv.Addr())
	}

	ds, err := loadTrace(*traceFile, *seed, *days)
	if err != nil {
		fatal(err)
	}
	game, err := gameFor(*update)
	if err != nil {
		fatal(err)
	}

	fcfg := faults.Config{
		Seed:          *faultSeed,
		MTBFTicks:     *mtbf,
		MTTRTicks:     *mttr,
		DegradedShare: *degraded,
		RejectProb:    *reject,

		PartialGrantProb: *partial,
		DropoutProb:      *dropout,

		RegionMTBFTicks: *regionMTBF,
		RegionMTTRTicks: *regionMTTR,
		AftershockProb:  *aftershock,
	}
	if *blackouts != "" {
		windows, err := parseBlackouts(*blackouts)
		if err != nil {
			fatal(err)
		}
		fcfg.ScheduledBlackouts = windows
	}
	if fcfg.Seed == 0 {
		fcfg.Seed = *seed
	}
	faulted := fcfg.Enabled() || *failFile != ""

	cfg := core.Config{
		Static: *static, SafetyMargin: *margin, Workers: *workers,
		CheckpointDir:         *ckptDir,
		CheckpointEveryTicks:  *ckptEvery,
		StopAfterTick:         *stopAfter,
		Obs:                   telemetry,
		Provenance:            *provDepth,
		FailoverBudgetPerTick: *failoverBudget,
		Brownout:              *brownout,
		BrownoutReserveFrac:   *brownoutReserve,
	}
	if fcfg.Enabled() {
		cfg.Faults = &fcfg
	}
	if *failFile != "" {
		failures, err := loadFailures(*failFile)
		if err != nil {
			fatal(err)
		}
		cfg.Failures = failures
	}
	// Static mode normally needs no centers, but outages need somewhere
	// to strike: give the static fleet its home centers too.
	if !*static || faulted {
		policies, err := parsePolicies(*policy)
		if err != nil {
			fatal(err)
		}
		cfg.Centers = datacenter.BuildCenters(datacenter.TableIIISites(), policies)
	}
	if !*static {
		f, err := factoryFor(*predictor, *seed, *days)
		if err != nil {
			fatal(err)
		}
		cfg.Workloads = []core.Workload{{Game: game, Dataset: ds, Predictor: f}}
	} else {
		cfg.Workloads = []core.Workload{{Game: game, Dataset: ds}}
	}

	res, err := core.Run(cfg)
	if errors.Is(err, core.ErrStopped) {
		// A deliberate crash drill: the state to resume from is in the
		// checkpoint directory, there is no final result to print.
		fmt.Fprintf(os.Stderr, "stopped after tick %d (checkpoints in %s); rerun without -stop-after-tick to resume\n",
			*stopAfter, *ckptDir)
		return
	}
	if err != nil {
		fatal(err)
	}
	if res.ResumedFromTick > 0 {
		// Stderr, so resumed stdout stays byte-diffable against an
		// uninterrupted run's.
		fmt.Fprintf(os.Stderr, "resumed from checkpoint at tick %d\n", res.ResumedFromTick)
	}

	mode := "dynamic"
	if *static {
		mode = "static"
	}
	fmt.Printf("mode=%s update=%s groups=%d ticks=%d\n", mode, game.Update, len(ds.Groups), res.Ticks)
	for _, r := range datacenter.AllResources {
		fmt.Printf("  %-12s over-allocation %8s   under-allocation %8.3f%%\n",
			r, pct(res.AvgOverPct[r]), res.AvgUnderPct[r])
	}
	fmt.Printf("  significant under-allocation events (|Y|>1%%): %d / %d ticks\n", res.Events, res.Ticks)
	if res.Unmet > 0 {
		fmt.Printf("  WARNING: %d ticks with unmet demand (capacity or latency bound)\n", res.Unmet)
	}
	if faulted {
		printResilience(res.Resilience)
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, telemetry, res); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, telemetry); err != nil {
			fatal(err)
		}
	}
	if telemetry != nil {
		// Stderr, so obs-on stdout stays byte-diffable against obs-off.
		fmt.Fprintf(os.Stderr, "obs: %d events recorded, %d overwritten by the ring, %d sink errors\n",
			telemetry.Recorder.Total(), telemetry.Recorder.Dropped(), telemetry.Recorder.SinkErrs())
		if trc := telemetry.Trc(); trc != nil {
			fmt.Fprintf(os.Stderr, "obs: %d trace records, %d dropped at the capacity bound\n",
				trc.Len(), trc.Dropped())
		}
	}
	if *obsAddr != "" && *obsLinger > 0 {
		fmt.Fprintf(os.Stderr, "obs: lingering %s for scrapes\n", *obsLinger)
		time.Sleep(*obsLinger)
	}
}

// writeMetrics dumps the final registry snapshot plus the run's
// headline results as one JSON document (the schema mmogaudit parses —
// audit.BuildMetricsDoc is the single definition).
func writeMetrics(path string, telemetry *obs.Obs, res *core.Result) error {
	blob, err := json.MarshalIndent(audit.BuildMetricsDoc(telemetry, res), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// writeTrace dumps the recorded spans as one Chrome trace_event JSON
// document.
func writeTrace(path string, telemetry *obs.Obs) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.Trc().WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printResilience renders the fault-handling section of a run that had
// faults configured.
func printResilience(r *core.Resilience) {
	fmt.Printf("resilience:\n")
	fmt.Printf("  outages: %d (%d full, %d partial), capacity recovered in-run: %d\n",
		r.Outages, r.FullOutages, r.PartialOutages, r.CapacityRecovered)
	if r.ServiceRecovered > 0 {
		fmt.Printf("  service recovered: %d, mean time to recover: %.2f ticks\n",
			r.ServiceRecovered, r.MeanTimeToRecoverTicks)
	}
	fmt.Printf("  failovers: %d (%d leases re-acquired), retries after rejection: %d\n",
		r.Failovers, r.FailoverLeases, r.Retries)
	fmt.Printf("  injected: %d rejections, %d partial grants, %d dropped samples\n",
		r.Rejections, r.PartialGrants, r.DroppedSamples)
	fmt.Printf("  capacity lost: %.1f CPU-ticks\n", r.CapacityLostCPUTicks)
	// The failure-domain lines appear only when that machinery fired, so
	// per-center fault runs keep their historical output byte-for-byte.
	if r.RegionBlackouts > 0 || r.FailoversDeferred > 0 {
		fmt.Printf("  region blackouts: %d, failovers deferred by storm control: %d\n",
			r.RegionBlackouts, r.FailoversDeferred)
	}
	if r.BrownoutTicks > 0 {
		fmt.Printf("  brownout: %d ticks, %d leases shed, %.1f player-ticks unserved\n",
			r.BrownoutTicks, r.ShedLeases, r.ShedPlayerTicks)
	}
	if r.TimeToFullRecoveryTicks > 0 && (r.RegionBlackouts > 0 || r.BrownoutTicks > 0) {
		fmt.Printf("  time to full recovery: %d ticks\n", r.TimeToFullRecoveryTicks)
	}
	if len(r.Availability) > 0 {
		names := make([]string, 0, len(r.Availability))
		for name := range r.Availability {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("  availability by center:\n")
		for _, name := range names {
			fmt.Printf("    %-24s %7.3f%%\n", name, r.Availability[name]*100)
		}
	}
}

// parseBlackouts parses the -blackout flag: comma-separated
// region:startTick:durationTicks windows.
func parseBlackouts(spec string) ([]faults.RegionBlackout, error) {
	var out []faults.RegionBlackout
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("blackout %q: want region:startTick:durationTicks", item)
		}
		start, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("blackout %q: bad start tick: %v", item, err)
		}
		dur, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, fmt.Errorf("blackout %q: bad duration: %v", item, err)
		}
		out = append(out, faults.RegionBlackout{
			Region: strings.TrimSpace(parts[0]), Start: start, Duration: dur,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("blackout: no windows in %q", spec)
	}
	return out, nil
}

// loadFailures parses a scheduled-outage file: one outage per line as
// "center,atTick,durationTicks"; blank lines and # comments skipped.
func loadFailures(path string) ([]core.Failure, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var out []core.Failure
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("%s:%d: want 'center,atTick,durationTicks', got %q", path, line, text)
		}
		at, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad tick: %v", path, line, err)
		}
		dur, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad duration: %v", path, line, err)
		}
		out = append(out, core.Failure{
			Center: strings.TrimSpace(parts[0]), AtTick: at, DurationTicks: dur,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func loadTrace(path string, seed uint64, days int) (*trace.Dataset, error) {
	if path == "" {
		return trace.Generate(trace.Config{Seed: seed, Days: days}), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCSV(f)
}

func gameFor(update string) (*mmog.Game, error) {
	g := mmog.NewGame("mmogsim", mmog.GenreMMORPG)
	norm := strings.ReplaceAll(strings.ToLower(update), " ", "")
	switch norm {
	case "o(n)":
		g.Update = mmog.UpdateLinear
	case "o(nlogn)", "o(nxlog(n))":
		g.Update = mmog.UpdateNLogN
	case "o(n^2)", "o(n2)":
		g.Update = mmog.UpdateQuadratic
	case "o(n^2logn)", "o(n^2xlog(n))", "o(n2logn)":
		g.Update = mmog.UpdateQuadraticLog
	case "o(n^3)", "o(n3)":
		g.Update = mmog.UpdateCubic
	default:
		return nil, fmt.Errorf("unknown update model %q", update)
	}
	return g, nil
}

func parsePolicies(spec string) ([]datacenter.HostingPolicy, error) {
	var out []datacenter.HostingPolicy
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if strings.EqualFold(name, "optimal") {
			out = append(out, datacenter.OptimalPolicy())
			continue
		}
		p, err := datacenter.PolicyByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no policies given")
	}
	return out, nil
}

func factoryFor(name string, seed uint64, days int) (predict.Factory, error) {
	switch strings.ToLower(name) {
	case "neural":
		shadowDays := 2
		if days < 2 {
			shadowDays = 1
		}
		shadow := trace.Generate(trace.Config{Seed: seed + 1, Days: shadowDays})
		collected := make([][]float64, len(shadow.Groups))
		for i, g := range shadow.Groups {
			collected[i] = g.Load.Values
		}
		f, _ := predict.PretrainShared(predict.PaperNeuralConfig(seed+3), collected, 0.8,
			predict.PaperTrainConfig(seed+2))
		return f, nil
	case "average":
		return predict.NewAverage(), nil
	case "lastvalue":
		return predict.NewLastValue(), nil
	case "movingavg":
		return predict.NewMovingAverage(predict.DefaultWindow), nil
	case "median":
		return predict.NewSlidingWindowMedian(predict.DefaultWindow), nil
	case "expsmoothing":
		return predict.NewExpSmoothing(0.5, "Exp. smoothing 50%"), nil
	default:
		return nil, fmt.Errorf("unknown predictor %q", name)
	}
}

// pct renders a percentage metric; an undefined one (NaN, e.g.
// over-allocation for a resource that never saw load) reads "n/a".
func pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
