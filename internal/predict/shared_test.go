package predict

import (
	"math"
	"testing"

	"mmogdc/internal/neural"
)

// syntheticZones builds z zones of length n with a shared oscillation
// plus per-zone noise.
func syntheticZones(z, n int, seed uint64) [][]float64 {
	out := make([][]float64, z)
	state := seed
	rnd := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/(1<<53) - 0.5
	}
	for zi := range out {
		sig := make([]float64, n)
		level := 20 + 10*float64(zi%5)
		for t := range sig {
			wave := 8 * math.Sin(2*math.Pi*float64(t)/12)
			sig[t] = level + wave + 3*rnd()
			if sig[t] < 0 {
				sig[t] = 0
			}
		}
		out[zi] = sig
	}
	return out
}

func TestPretrainSharedTrainsAndClones(t *testing.T) {
	zones := syntheticZones(6, 300, 9)
	f, res := PretrainShared(PaperNeuralConfig(3), zones, 0.8, PaperTrainConfig(5))
	if res.Eras == 0 {
		t.Fatal("no training eras ran")
	}
	a, b := f(), f()
	// Clones start identical but are independent.
	for i := 0; i < 20; i++ {
		a.Observe(float64(10 + i))
	}
	if b.Predict() != 0 {
		t.Fatal("factory instances share state")
	}
}

func TestPretrainSharedAutoCapacity(t *testing.T) {
	zones := syntheticZones(3, 200, 11)
	cfg := PaperNeuralConfig(3)
	cfg.Capacity = 0 // force auto-calibration
	f, _ := PretrainShared(cfg, zones, 0.8, PaperTrainConfig(5))
	p := f().(*Neural)
	maxV := 0.0
	for _, sig := range zones {
		for _, v := range sig {
			if v > maxV {
				maxV = v
			}
		}
	}
	if math.Abs(p.cfg.Capacity-maxV*1.25) > 1e-9 {
		t.Fatalf("auto capacity = %v, want %v", p.cfg.Capacity, maxV*1.25)
	}
	if p.cfg.OutputScale <= 1 {
		t.Fatalf("auto output scale = %v, want > 1 for small deltas", p.cfg.OutputScale)
	}
}

func TestPretrainSharedEmptyCollected(t *testing.T) {
	f, res := PretrainShared(PaperNeuralConfig(3), nil, 0.8, neural.TrainConfig{})
	if res.Eras != 0 {
		t.Fatal("empty collection should not train")
	}
	if f() == nil {
		t.Fatal("factory should still work")
	}
}

func TestPretrainSharedBeatsLastValueOnOscillation(t *testing.T) {
	// The headline adaptive-accuracy claim on a predictable signal: an
	// oscillating load that fixed smoothers lag.
	train := syntheticZones(6, 400, 21)
	eval := syntheticZones(6, 400, 22)
	f, _ := PretrainShared(PaperNeuralConfig(3), train, 0.8, PaperTrainConfig(7))
	nErr := EvaluateZonesFrom(f, eval, 1)
	lvErr := EvaluateZonesFrom(NewLastValue(), eval, 1)
	if nErr >= lvErr {
		t.Fatalf("pretrained neural %v should beat last value %v on oscillating load", nErr, lvErr)
	}
}

func TestPaperConfigs(t *testing.T) {
	c := PaperNeuralConfig(5)
	if c.Window != 6 || c.Hidden != 3 {
		t.Fatalf("paper structure must be (6,3,1), got (%d,%d,1)", c.Window, c.Hidden)
	}
	tc := PaperTrainConfig(5)
	if tc.ShuffleSeed != 5 || tc.MaxEras == 0 {
		t.Fatalf("train config wrong: %+v", tc)
	}
}
