package operator

import (
	"math"
	"testing"
	"time"

	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/obs"
	"mmogdc/internal/predict"
)

// TestObsBridgesMetrics drives an operator with monitoring dropouts
// enabled and checks the registry counters land on exactly the values
// Metrics reports, and that enabling obs changes no metric.
func TestObsBridgesMetrics(t *testing.T) {
	run := func(o *obs.Obs) Metrics {
		op, err := New(Config{
			Game:      mmog.NewGame("op", mmog.GenreMMORPG),
			Origin:    geo.London,
			Predictor: predict.NewLastValue(),
			Matcher:   testMatcher(10),
			Obs:       o,
		})
		if err != nil {
			t.Fatal(err)
		}
		now := t0
		for i := 0; i < 30; i++ {
			loads := []float64{800, 600, 400}
			if i%7 == 3 {
				loads[1] = math.NaN() // monitoring dropout
			}
			if err := op.Observe(now, loads); err != nil {
				t.Fatal(err)
			}
			now = now.Add(2 * time.Minute)
		}
		return op.Metrics()
	}

	plain := run(nil)
	o := obs.New()
	instrumented := run(o)
	if plain != instrumented {
		t.Fatalf("obs changed operator metrics:\n%+v\n%+v", plain, instrumented)
	}

	r := o.Registry
	g := obs.L("game", "op")
	checks := []struct {
		name string
		got  int64
		want int
	}{
		{"mmogdc_operator_ticks_total", r.Counter("mmogdc_operator_ticks_total", "", g).Value(), instrumented.Ticks},
		{"mmogdc_operator_dropped_samples_total", r.Counter("mmogdc_operator_dropped_samples_total", "", g).Value(), instrumented.DroppedSamples},
		{"mmogdc_operator_rejections_total", r.Counter("mmogdc_operator_rejections_total", "", g).Value(), instrumented.Rejections},
		{"mmogdc_operator_retries_total", r.Counter("mmogdc_operator_retries_total", "", g).Value(), instrumented.Retries},
		{"mmogdc_operator_failovers_total", r.Counter("mmogdc_operator_failovers_total", "", g).Value(), instrumented.Failovers},
	}
	for _, c := range checks {
		if c.got != int64(c.want) {
			t.Errorf("%s = %d, want %d (Metrics parity)", c.name, c.got, c.want)
		}
	}
	if instrumented.DroppedSamples == 0 {
		t.Fatal("scenario never dropped a sample")
	}
	if h := r.Histogram("mmogdc_operator_observe_duration_seconds", "", obs.TimeBuckets, g); h.Count() != int64(instrumented.Ticks) {
		t.Errorf("observe duration count = %d, want %d", h.Count(), instrumented.Ticks)
	}
	if lg := r.Gauge("mmogdc_operator_load_cpu_units", "", g); lg.Value() <= 0 {
		t.Errorf("load gauge = %v, want > 0", lg.Value())
	}
	// The recorder saw the dropouts.
	sawDrop := false
	for _, e := range o.Recorder.Events() {
		if e.Kind == obs.EventDropped {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Error("flight recorder has no dropped-sample events")
	}
}
