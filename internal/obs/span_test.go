package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func manualTracer() *Tracer {
	tr := NewTracer(0)
	tr.Clock = NewManualClock(time.Unix(0, 0), time.Millisecond)
	return tr
}

func TestSpanHierarchyAndAnnotations(t *testing.T) {
	tr := manualTracer()
	root := tr.Begin("tick", "tick", 0)
	root.SetTick(7)
	child := tr.Begin("phase.observe", "tick", root.ID())
	child.SetTick(7)
	zone := tr.Begin("predict", "zone", child.ID())
	zone.SetSubject("A/z1")
	zone.SetWorker(2)
	zone.SetValue(3.5)
	zone.End()
	child.End()
	root.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Records land in end order: zone, child, root.
	z, c, r := recs[0], recs[1], recs[2]
	if z.Parent != c.ID || c.Parent != r.ID || r.Parent != 0 {
		t.Fatalf("parent chain broken: %+v", recs)
	}
	if z.Subject != "A/z1" || z.Worker != 2 || z.Value != 3.5 {
		t.Fatalf("zone annotations lost: %+v", z)
	}
	if r.Tick != 7 || !r.End.After(r.Start) {
		t.Fatalf("root span malformed: %+v", r)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", "y", 0)
	if sp != nil {
		t.Fatal("nil tracer must begin nil spans")
	}
	// Every method must be a no-op, not a panic.
	sp.SetSubject("s")
	sp.SetTick(1)
	sp.SetWorker(1)
	sp.SetValue(1)
	sp.SetLink(1)
	sp.End()
	sp.EndAt(time.Time{})
	if sp.ID() != 0 {
		t.Fatal("nil span must have ID 0")
	}
	if tr.Complete(SpanRec{}) != 0 || tr.Instant("i", "", "", 0) != 0 ||
		tr.AsyncBegin("a", "", "", 0, 0) != 0 {
		t.Fatal("nil tracer must hand out ID 0")
	}
	tr.AsyncEnd(1, "a", "", "", 0)
	if tr.Records() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report empty state")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil-tracer trace not valid JSON: %s", buf.String())
	}
}

func TestTracerDisabledIsAllocationFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Begin("tick", "tick", 0)
		sp.SetTick(1)
		sp.SetWorker(3)
		sp.SetLink(2)
		sp.End()
		tr.AsyncBegin("outage", "faults", "c", 1, 1)
		tr.AsyncEnd(1, "outage", "faults", "c", 2)
		tr.Complete(SpanRec{Name: "phase.reduce"})
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestTracerCapacityDropsAndCounts(t *testing.T) {
	tr := NewTracer(2)
	tr.Clock = NewManualClock(time.Unix(0, 0), time.Millisecond)
	for i := 0; i < 5; i++ {
		tr.Begin("s", "c", 0).End()
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d, want 2/3", tr.Len(), tr.Dropped())
	}
}

func TestTracerDeterministicExport(t *testing.T) {
	render := func() (string, string) {
		tr := manualTracer()
		root := tr.Begin("tick", "tick", 0)
		win := tr.AsyncBegin("outage", "faults", "nyc", 1, 1)
		fo := tr.Begin("acquire.failover", "zone", root.ID())
		fo.SetSubject("A/z1")
		fo.SetLink(win)
		fo.End()
		tr.AsyncEnd(win, "outage", "faults", "nyc", 3)
		root.End()
		var trace, jsonl bytes.Buffer
		if err := tr.WriteTrace(&trace); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		return trace.String(), jsonl.String()
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 {
		t.Error("trace export is not deterministic")
	}
	if j1 != j2 {
		t.Error("JSONL export is not deterministic")
	}
	if !json.Valid([]byte(t1)) {
		t.Fatalf("trace not valid JSON: %s", t1)
	}
	if !strings.Contains(t1, `"traceEvents"`) || !strings.Contains(t1, `"ph":"b"`) ||
		!strings.Contains(t1, `"ph":"e"`) || !strings.Contains(t1, `"ph":"X"`) {
		t.Fatalf("trace missing expected phases: %s", t1)
	}
	if !strings.Contains(t1, `"link"`) {
		t.Fatalf("failover link lost in export: %s", t1)
	}
}

func TestTracerAsyncPairsShareID(t *testing.T) {
	tr := manualTracer()
	win := tr.AsyncBegin("outage", "faults", "nyc", 1, 1)
	tr.AsyncEnd(win, "outage", "faults", "nyc", 4)
	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].ID != recs[1].ID || recs[0].Phase != PhaseAsyncBegin || recs[1].Phase != PhaseAsyncEnd {
		t.Fatalf("async pair malformed: %+v", recs)
	}
	if recs[0].Name != recs[1].Name || recs[0].Cat != recs[1].Cat {
		t.Fatalf("async pair name/cat mismatch (trace_event pairs by name+cat+id): %+v", recs)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Begin("predict", "zone", 0)
				sp.SetWorker(worker)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("len=%d, want 800", tr.Len())
	}
	seen := map[SpanID]bool{}
	for _, r := range tr.Records() {
		if seen[r.ID] {
			t.Fatalf("duplicate span ID %d", r.ID)
		}
		seen[r.ID] = true
	}
}
