#!/usr/bin/env sh
# Daemon smoke: the full mmogd lifecycle end to end, single-CPU cheap.
#
#   1. serve + load at 1x, SIGTERM mid-run -> clean drain, exit 0
#   2. restart over the checkpoint -> byte-checked "0/0/0" lease
#      reconciliation (a clean drain released everything)
#   3. load again, kill -9, restart -> the reconciliation reports the
#      leases that did NOT survive the crash (lost > 0)
#   4. hot reload: valid POST /v1/config applied, invalid rejected with
#      the old config kept, SIGHUP re-reads -config the same way
#   5. 10x overload against a tiny queue -> 429 shedding visible in the
#      generator accounting AND in /metrics
#   6. drain that cannot meet its deadline -> hard exit, code 3
#   7. mmogaudit digests the daemon's event log + the load report
#
# Latency numbers are reported, never gated — wall-clock on a loaded
# single-CPU box is noise (see scripts/benchgate for the same stance).
set -eu
cd "$(dirname "$0")/.."

d=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$d"
}
trap cleanup EXIT

go build -race -o "$d/mmogd" ./cmd/mmogd
go build -o "$d/mmogload" ./cmd/mmogload
go build -o "$d/mmogaudit" ./cmd/mmogaudit
go build -o "$d/scrape" ./scripts/scrape

if command -v curl > /dev/null 2>&1; then
    fetch() { curl -sf "$1"; }
    post() { curl -sf -X POST -H 'Content-Type: application/json' --data-binary "@$1" "$2"; }
else
    fetch() { "$d/scrape" "$1"; }
    post() { "$d/scrape" -post "$1" "$2"; }
fi

# start_daemon <errfile> [extra args...]: launch mmogd on an ephemeral
# port, wait for the serving line, and set $pid and $addr.
start_daemon() {
    errfile=$1
    shift
    "$d/mmogd" -addr 127.0.0.1:0 "$@" 2> "$errfile" &
    pid=$!
    i=0
    while ! grep -q '^daemon: serving http on ' "$errfile" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "daemon-smoke: daemon never came up" >&2
            cat "$errfile" >&2
            exit 1
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "daemon-smoke: daemon died at startup" >&2
            cat "$errfile" >&2
            exit 1
        fi
        sleep 0.1
    done
    addr=$(sed -n 's/^daemon: serving http on //p' "$errfile" | head -n 1)
}

load="$d/mmogload -game live -grid 6 -entities 400 -interval 10ms"

# --- Phase 1: serve, load at 1x, SIGTERM -> clean drain, exit 0 -------
start_daemon "$d/p1.err" -games live -tick-seconds 1 \
    -checkpoint-dir "$d/ckpt" -checkpoint-every 5
$load -addr "$addr" -n 40 -rate 1 -o "$d/load1.json" > "$d/load1.out"
grep -q 'accepted=40 shed=0 rejected=0' "$d/load1.out"
fetch "http://$addr/readyz" | grep -q 'ready'
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "daemon-smoke: clean drain exited non-zero" >&2
    cat "$d/p1.err" >&2
    exit 1
fi
pid=""
grep -q '^daemon: drain complete' "$d/p1.err"

# --- Phase 2: restart -> clean 0/0/0 reconciliation -------------------
start_daemon "$d/p2.err" -games live -tick-seconds 1 \
    -checkpoint-dir "$d/ckpt" -checkpoint-every 5
grep -Eq 'restored checkpoint from tick [0-9]+: 0 leases adopted, 0 lost, 0 orphans released' "$d/p2.err"

# --- Phase 3: load, kill -9, restart -> crash reconciliation ----------
$load -addr "$addr" -n 20 -rate 1 > /dev/null
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
start_daemon "$d/p3.err" -games live -tick-seconds 1 \
    -checkpoint-dir "$d/ckpt" -checkpoint-every 5
# The dead process's leases cannot be adopted by a fresh ecosystem: the
# restart must report them lost, not pretend they survived.
grep -Eq 'restored checkpoint from tick [0-9]+: 0 leases adopted, [1-9][0-9]* lost, [0-9]+ orphans released' "$d/p3.err"
kill -TERM "$pid"
wait "$pid" || true
pid=""

# --- Phase 4: hot reload over HTTP and SIGHUP -------------------------
printf '{}' > "$d/hot.json"
start_daemon "$d/p4.err" -games live -tick-seconds 1 -queue 4 \
    -config "$d/hot.json" -obs-events "$d/events.jsonl" -explain 64 \
    -drain-timeout 30s
printf '{"observe_delay_ms": 40}' > "$d/body.json"
post "$d/body.json" "http://$addr/v1/config" | grep -q '"applied": *true'
fetch "http://$addr/v1/config" | grep -q '"observe_delay_ms": *40'
# An invalid candidate is refused (non-2xx) and the old config stays.
printf '{"fault_reject_prob": 2}' > "$d/bad.json"
if post "$d/bad.json" "http://$addr/v1/config" > /dev/null 2>&1; then
    echo "daemon-smoke: invalid config was accepted" >&2
    exit 1
fi
fetch "http://$addr/v1/config" | grep -q '"fault_reject_prob": *0'
printf '{"fault_reject_prob": 2}' > "$d/hot.json"
kill -HUP "$pid"
i=0
until grep -q '^daemon: reload rejected, keeping active config' "$d/p4.err"; do
    i=$((i + 1)); [ "$i" -gt 100 ] && { cat "$d/p4.err" >&2; exit 1; }
    sleep 0.1
done
printf '{"observe_delay_ms": 40, "fault_dropout_prob": 0.05}' > "$d/hot.json"
kill -HUP "$pid"
i=0
until grep -q '^daemon: reload applied' "$d/p4.err"; do
    i=$((i + 1)); [ "$i" -gt 100 ] && { cat "$d/p4.err" >&2; exit 1; }
    sleep 0.1
done

# --- Phase 5: 10x overload -> shed with 429s --------------------------
# 10x pacing against a 4-deep queue draining one sample per 40ms: the
# generator must see 429s, and the same count must land in /metrics.
$load -addr "$addr" -n 60 -rate 10 -interval 20ms -o "$d/load10.json" > "$d/load10.out"
grep -Eq 'shed=[1-9][0-9]*' "$d/load10.out"
grep -Eq 'rtt_ms p50=[0-9.]+ p95=[0-9.]+ p99=[0-9.]+ max=[0-9.]+' "$d/load10.out"
fetch "http://$addr/metrics" > "$d/metrics.txt"
grep -Eq '^mmogdc_daemon_shed_total\{game="live"\} [1-9][0-9]*$' "$d/metrics.txt"
grep -Eq '^mmogdc_daemon_ingest_total\{game="live"\} [1-9][0-9]*$' "$d/metrics.txt"
shed_cli=$(sed -n 's/.* shed=\([0-9]*\) .*/\1/p' "$d/load10.out")
grep -q "^mmogdc_daemon_shed_total{game=\"live\"} $shed_cli\$" "$d/metrics.txt"
# Decision provenance is live under overload: /v1/explain answers with
# retained decision records whose candidates carry dispositions.
fetch "http://$addr/v1/explain?game=live" > "$d/explain.json"
grep -q '"game": *"live"' "$d/explain.json"
grep -q '"depth": *64' "$d/explain.json"
grep -Eq '"disposition": *"(granted|partial-trimmed|not-needed|no-capacity|rejected-by-injector)"' "$d/explain.json"
kill -TERM "$pid"
wait "$pid" || { echo "daemon-smoke: phase-4 drain failed" >&2; exit 1; }
pid=""
grep -q '^daemon: drain complete' "$d/p4.err"

# --- Phase 6: a drain that cannot meet its deadline hard-exits 3 ------
start_daemon "$d/p6.err" -games live -tick-seconds 1 \
    -observe-delay 500ms -drain-timeout 200ms
$load -addr "$addr" -n 6 -rate 10 > /dev/null
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 3 ]; then
    echo "daemon-smoke: blown drain deadline exited $rc, want 3" >&2
    cat "$d/p6.err" >&2
    exit 1
fi
grep -q '^daemon: drain deadline exceeded' "$d/p6.err"

# --- Phase 7: the audit toolchain digests the run ---------------------
"$d/mmogaudit" -events "$d/events.jsonl" -load "$d/load10.json" > "$d/audit.md"
grep -q '^# mmogdc provisioning audit' "$d/audit.md"
grep -q 'Daemon load' "$d/audit.md"
grep -q 'observe-loop RTT ms' "$d/audit.md"
grep -q 'Consistency checks' "$d/audit.md"

echo "daemon-smoke: ok"
