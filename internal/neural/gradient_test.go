package neural

import (
	"math"
	"testing"

	"mmogdc/internal/xrand"
)

// TestBackpropMatchesNumericalGradient verifies the backpropagation
// implementation against central-difference numerical gradients: for
// random networks and samples, perturb each weight and bias by ±h and
// compare d(loss)/d(w) with what one Train step applies (recovered
// from the weight delta at momentum 0, divided by the learning rate).
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	r := xrand.New(123)
	const (
		lr  = 1e-3
		h   = 1e-5
		tol = 1e-4
	)
	for trial := 0; trial < 5; trial++ {
		m, err := NewMLP(xrand.New(uint64(trial+1)), 4, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		in := []float64{r.Norm(0, 1), r.Norm(0, 1), r.Norm(0, 1), r.Norm(0, 1)}
		target := []float64{r.Norm(0, 1), r.Norm(0, 1)}

		// loss(w) with the current network weights.
		loss := func(net *MLP) float64 {
			out := net.Forward(in)
			var l float64
			for j := range out {
				d := out[j] - target[j]
				l += d * d
			}
			return l
		}

		// Numerical gradient for every weight and bias, on a frozen
		// copy.
		frozen := m.Clone()
		numGradW := make([][][]float64, len(frozen.weights))
		numGradB := make([][]float64, len(frozen.biases))
		for l := range frozen.weights {
			numGradW[l] = make([][]float64, len(frozen.weights[l]))
			for j := range frozen.weights[l] {
				numGradW[l][j] = make([]float64, len(frozen.weights[l][j]))
				for i := range frozen.weights[l][j] {
					orig := frozen.weights[l][j][i]
					frozen.weights[l][j][i] = orig + h
					up := loss(frozen)
					frozen.weights[l][j][i] = orig - h
					down := loss(frozen)
					frozen.weights[l][j][i] = orig
					numGradW[l][j][i] = (up - down) / (2 * h)
				}
			}
			numGradB[l] = make([]float64, len(frozen.biases[l]))
			for j := range frozen.biases[l] {
				orig := frozen.biases[l][j]
				frozen.biases[l][j] = orig + h
				up := loss(frozen)
				frozen.biases[l][j] = orig - h
				down := loss(frozen)
				frozen.biases[l][j] = orig
				numGradB[l][j] = (up - down) / (2 * h)
			}
		}

		// Analytical gradient: one Train step at momentum 0 moves each
		// weight by -lr * dLoss'/dw where the implementation's error
		// signal is (out - target), i.e. half of d(Σ(out-t)²)/d(out).
		before := m.Clone()
		m.Train(in, target, lr, 0)
		for l := range m.weights {
			for j := range m.weights[l] {
				for i := range m.weights[l][j] {
					applied := (before.weights[l][j][i] - m.weights[l][j][i]) / lr
					want := numGradW[l][j][i] / 2
					if math.Abs(applied-want) > tol*(1+math.Abs(want)) {
						t.Fatalf("trial %d: weight[%d][%d][%d] gradient %v, numerical %v",
							trial, l, j, i, applied, want)
					}
				}
			}
			for j := range m.biases[l] {
				applied := (before.biases[l][j] - m.biases[l][j]) / lr
				want := numGradB[l][j] / 2
				if math.Abs(applied-want) > tol*(1+math.Abs(want)) {
					t.Fatalf("trial %d: bias[%d][%d] gradient %v, numerical %v",
						trial, l, j, applied, want)
				}
			}
		}
	}
}

// TestTrainClippedBoundsGradient checks that clipping limits the
// update magnitude on an outlier target.
func TestTrainClippedBoundsGradient(t *testing.T) {
	mkNet := func() *MLP {
		m, _ := NewMLP(xrand.New(7), 2, 2, 1)
		return m
	}
	in := []float64{0.5, -0.5}
	outlier := []float64{1000}

	free := mkNet()
	clipped := mkNet()
	free.Train(in, outlier, 0.001, 0)
	clipped.TrainClipped(in, outlier, 0.001, 0, 0.5)

	// Compare how far each network moved its first-layer weights.
	move := func(m *MLP) float64 {
		ref := mkNet()
		var sum float64
		for l := range m.weights {
			for j := range m.weights[l] {
				for i := range m.weights[l][j] {
					sum += math.Abs(m.weights[l][j][i] - ref.weights[l][j][i])
				}
			}
		}
		return sum
	}
	if move(clipped) >= move(free)/10 {
		t.Fatalf("clipping barely reduced the outlier update: %v vs %v", move(clipped), move(free))
	}
}
