package experiments

import (
	"fmt"
	"strings"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/series"
	"mmogdc/internal/trace"
)

// Ext04Reservations demonstrates the advance-reservation service model
// of Section II-B: two game operators compete for one small data
// center. The "booking" operator reserves its evening-peak capacity
// every morning, sized from the previous day's observed peak; the
// "reactive" operator leases on demand. Under contention the booked
// capacity is guaranteed, and the reactive operator absorbs the
// shortfall — quantifying what the reservation model buys.
func Ext04Reservations(o Options) (string, error) {
	opts := o.withDefaults()
	days := 5
	if opts.Quick {
		days = 3
	}

	// Two equal games, one trace each (same statistics).
	mk := func(seed uint64) *trace.Dataset {
		return trace.Generate(trace.Config{Seed: seed, Days: days,
			Regions: []trace.Region{{ID: 0, Name: "Europe", Location: geo.London, Groups: 6}}})
	}
	bookerTrace, reactiveTrace := mk(opts.Seed), mk(opts.Seed+1)
	game := mmog.NewGame("contender", mmog.GenreMMORPG)

	// One deliberately tight center: enough for one evening peak but
	// not two.
	run := func(withBooking bool) (bookShort, reactShort float64) {
		var bulk datacenter.Vector
		bulk[datacenter.CPU] = 0.05
		policy := datacenter.HostingPolicy{Name: "tight", Bulk: bulk, TimeBulk: 2 * time.Hour}
		center := datacenter.NewCenter("shared", geo.London, 5, policy)

		demandAt := func(ds *trace.Dataset, t int) float64 {
			var sum float64
			for _, g := range ds.Groups {
				sum += game.DemandForEntities(g.Load.At(t)).CPU
			}
			return sum
		}

		start := bookerTrace.Groups[0].Load.Start
		tick := series.DefaultTick
		samples := bookerTrace.Samples()
		var bookerLeases, reactiveLeases []*datacenter.Lease
		active := func(ls []*datacenter.Lease, now time.Time) float64 {
			var sum float64
			for _, l := range ls {
				if l.Active(now) {
					sum += l.Alloc[datacenter.CPU]
				}
			}
			return sum
		}

		var yesterdayPeak, runningPeak float64
		eveningTicks := 0
		for t := 1; t < samples; t++ {
			now := start.Add(time.Duration(t) * tick)
			center.Expire(now)
			tod := t % trace.SamplesPerDay

			// A new day: yesterday's peak becomes the booking size.
			if tod == 0 {
				yesterdayPeak, runningPeak = runningPeak, 0
			}
			if d := demandAt(bookerTrace, t); d > runningPeak {
				runningPeak = d
			}

			// Morning booking: at 10:00, reserve the evening windows
			// (17:00-23:00) at yesterday's observed peak demand.
			if withBooking && tod == 10*30 && yesterdayPeak > 0 {
				day := t / trace.SamplesPerDay
				for _, h := range []int{17, 19, 21} {
					ws := start.Add(time.Duration(day*trace.SamplesPerDay+h*30) * tick)
					if l, err := center.Reserve(cpuOnly(yesterdayPeak), ws, "booker"); err == nil {
						bookerLeases = append(bookerLeases, l)
					}
				}
			}

			// Both operators top up reactively; arrival order
			// alternates per tick for fairness.
			acquire := func(ds *trace.Dataset, leases *[]*datacenter.Lease, tag string) float64 {
				want := demandAt(ds, t)
				have := active(*leases, now)
				if need := want - have; need > 1e-9 {
					if l, err := center.Lease(cpuOnly(need), now, tag); err == nil {
						*leases = append(*leases, l)
						have += l.Alloc[datacenter.CPU]
					}
				}
				short := want - have
				if short < 0 {
					short = 0
				}
				return short
			}
			var bs, rs float64
			if t%2 == 0 {
				bs = acquire(bookerTrace, &bookerLeases, "booker")
				rs = acquire(reactiveTrace, &reactiveLeases, "reactive")
			} else {
				rs = acquire(reactiveTrace, &reactiveLeases, "reactive")
				bs = acquire(bookerTrace, &bookerLeases, "booker")
			}
			// Score the contended evening hours (17:00-23:00), where
			// the booking strategy makes its stand.
			if hour := tod / 30; hour >= 17 && hour < 23 {
				bookShort += bs
				reactShort += rs
				eveningTicks++
			}
		}
		return bookShort / float64(eveningTicks), reactShort / float64(eveningTicks)
	}

	noBookA, noBookB := run(false)
	bookA, bookB := run(true)

	var b strings.Builder
	b.WriteString("Extension 4 — advance reservations vs purely reactive leasing\n")
	b.WriteString("(two operators on one tight center; mean unserved CPU demand in the contended\nevening hours, 17:00-23:00 [units])\n\n")
	rows := [][]string{
		{"neither books", f3(noBookA), f3(noBookB)},
		{"operator A books evening peaks", f3(bookA), f3(bookB)},
	}
	b.WriteString(table([]string{"scenario", "operator A shortfall", "operator B shortfall"}, rows))
	fmt.Fprintf(&b, "\nBooking the evening windows cuts operator A's shortfall %.1fx (%.3f -> %.3f\n",
		safeRatio(noBookA, bookA), noBookA, bookA)
	b.WriteString("units) by guaranteeing peak capacity before the contention begins; the\n")
	b.WriteString("reactive rival pays for it — the queue-vs-schedule trade-off of Sec. II-B.\n")
	return b.String(), nil
}

// cpuOnly builds a CPU-only demand vector.
func cpuOnly(units float64) datacenter.Vector {
	var v datacenter.Vector
	v[datacenter.CPU] = units
	return v
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
