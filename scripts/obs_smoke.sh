#!/usr/bin/env sh
# Observability smoke: run mmogsim with the telemetry server on an
# ephemeral port, scrape /metrics and /debug/pprof while it lingers,
# assert the key series exist, and prove the write-only contract by
# byte-diffing the obs-on stdout against an obs-off run's.
set -eu
cd "$(dirname "$0")/.."

d=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$d"
}
trap cleanup EXIT

go build -o "$d/mmogsim" ./cmd/mmogsim
args="-days 1 -predictor lastvalue -mtbf 150 -mttr 25 -fault-seed 7 \
    -fault-reject 0.05 -fault-dropout 0.02 -fault-degraded 0.5"

# Reference run, observability off.
"$d/mmogsim" $args > "$d/off.out"

# Obs-on run: ephemeral port, JSONL event sink, JSON metrics dump, and
# a linger window holding the server up after the run for the scrapes.
"$d/mmogsim" $args -obs-addr 127.0.0.1:0 -obs-linger 120s \
    -obs-events "$d/events.jsonl" -metrics-out "$d/metrics.json" \
    > "$d/on.out" 2> "$d/obs.err" &
pid=$!

# The metrics dump is written after the last tick, before the linger —
# once it exists the run is done and the server is still up.
i=0
while [ ! -s "$d/metrics.json" ]; do
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "obs-smoke: run never finished" >&2
        cat "$d/obs.err" >&2
        exit 1
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "obs-smoke: run died early" >&2
        cat "$d/obs.err" >&2
        exit 1
    fi
    sleep 0.2
done

addr=$(sed -n 's/^obs: serving http on //p' "$d/obs.err" | head -n 1)
if [ -z "$addr" ]; then
    echo "obs-smoke: no 'obs: serving http on' line on stderr" >&2
    cat "$d/obs.err" >&2
    exit 1
fi

curl -sf "http://$addr/metrics" > "$d/metrics.txt"
grep -q '^mmogdc_tick_duration_seconds_bucket' "$d/metrics.txt"
grep -q '^mmogdc_tick_phase_duration_seconds_bucket{phase="observe"' "$d/metrics.txt"
grep -q '^mmogdc_failovers_total' "$d/metrics.txt"
grep -q '^mmogdc_center_availability{center=' "$d/metrics.txt"
curl -sf "http://$addr/debug/pprof/goroutine?debug=1" | grep -q 'goroutine'
curl -sf "http://$addr/debug/vars" | grep -q 'mmogdc_metrics'
curl -sf "http://$addr/events" | grep -q '"events"'

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# Write-only contract: stdout must be byte-identical with obs enabled.
cmp "$d/off.out" "$d/on.out"
# The JSONL sink captured structured events.
test -s "$d/events.jsonl"
grep -q '"kind"' "$d/events.jsonl"
# The JSON dump carries the registry snapshot.
grep -q '"mmogdc_ticks_total"' "$d/metrics.json"

echo "obs-smoke: ok"
