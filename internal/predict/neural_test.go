package predict

import (
	"math"
	"testing"

	"mmogdc/internal/neural"
)

func TestNeuralPriorAndWarmup(t *testing.T) {
	p := MustNeural(NeuralConfig{Seed: 1, Capacity: 100})
	if p.Predict() != 0 {
		t.Fatal("prior should be 0")
	}
	p.Observe(50)
	// Window not full: falls back to last value.
	if got := p.Predict(); got != 50 {
		t.Fatalf("warmup Predict = %v, want 50", got)
	}
}

func TestNeuralDeterministic(t *testing.T) {
	mk := func() []float64 {
		p := MustNeural(NeuralConfig{Seed: 7, Capacity: 100})
		out := make([]float64, 0, 50)
		for i := 0; i < 50; i++ {
			p.Observe(float64(30 + i%11))
			out = append(out, p.Predict())
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("neural diverged at step %d", i)
		}
	}
}

func TestNeuralNonNegativePredictions(t *testing.T) {
	p := MustNeural(NeuralConfig{Seed: 3, Capacity: 100})
	for i := 0; i < 200; i++ {
		p.Observe(float64(i%7) * 3)
		if got := p.Predict(); got < 0 {
			t.Fatalf("negative prediction %v at step %d", got, i)
		}
	}
}

func TestNeuralLearnsConstantSignal(t *testing.T) {
	p := MustNeural(NeuralConfig{Seed: 5, Capacity: 100})
	for i := 0; i < 400; i++ {
		p.Observe(60)
	}
	if got := p.Predict(); math.Abs(got-60) > 5 {
		t.Fatalf("constant-signal prediction = %v, want ~60", got)
	}
}

func TestNeuralTracksRamp(t *testing.T) {
	p := MustNeural(NeuralConfig{Seed: 9, Capacity: 2000})
	var lastErr float64
	for i := 0; i < 600; i++ {
		v := float64(i)
		pred := p.Predict()
		if i > 500 {
			lastErr += math.Abs(pred - v)
		}
		p.Observe(v)
	}
	lastErr /= 99
	// Late-ramp predictions should be within a few percent.
	if lastErr > 40 {
		t.Fatalf("ramp tracking error = %v", lastErr)
	}
}

func TestNeuralPretrainImprovesColdStart(t *testing.T) {
	// A periodic signal: pretrained network should beat a cold one on
	// the evaluation metric.
	signal := make([]float64, 720)
	for i := range signal {
		signal[i] = 1000 + 600*math.Sin(2*math.Pi*float64(i)/240)
	}
	cold := Evaluate(NewNeural(NeuralConfig{Seed: 11, Capacity: 2000}), signal)

	warm := MustNeural(NeuralConfig{Seed: 11, Capacity: 2000})
	res := warm.Pretrain(signal[:360], 0.8, neural.TrainConfig{MaxEras: 100})
	if res.Eras == 0 {
		t.Fatal("pretraining ran no eras")
	}
	var errSum, valSum float64
	for i, v := range signal {
		if i > 0 {
			errSum += math.Abs(v - warm.Predict())
		}
		valSum += v
		warm.Observe(v)
	}
	warmErr := errSum / valSum * 100
	if warmErr >= cold {
		t.Fatalf("pretrained error %v should beat cold %v", warmErr, cold)
	}
}

func TestNeuralPretrainEmptySignal(t *testing.T) {
	p := MustNeural(NeuralConfig{Seed: 1, Capacity: 100})
	res := p.Pretrain(nil, 0.8, neural.TrainConfig{})
	if res.Eras != 0 {
		t.Fatalf("empty pretrain ran %d eras", res.Eras)
	}
	res = p.Pretrain([]float64{1, 2, 3}, 0.8, neural.TrainConfig{})
	if res.Eras != 0 {
		t.Fatal("too-short signal should produce no samples")
	}
}

func TestNeuralPretrainBadFraction(t *testing.T) {
	p := MustNeural(NeuralConfig{Seed: 1, Capacity: 100})
	signal := make([]float64, 100)
	for i := range signal {
		signal[i] = float64(i % 10)
	}
	// Invalid fractions fall back to the default and still train.
	res := p.Pretrain(signal, -3, neural.TrainConfig{MaxEras: 5, Patience: 5})
	if res.Eras == 0 {
		t.Fatal("pretrain with clamped fraction ran no eras")
	}
}

func TestNeuralName(t *testing.T) {
	if MustNeural(NeuralConfig{Seed: 1, Capacity: 1}).Name() != "Neural" {
		t.Fatal("wrong name")
	}
}

func TestNeuralBeatsNaivePredictorsOnStructuredNoisySignal(t *testing.T) {
	// The headline claim of Section IV-D2: on signals with strong
	// short-term structure plus noise, the neural predictor achieves
	// lower error than the naive baselines. Build a signal with
	// nonlinear mean-reverting dynamics.
	state := uint64(99)
	rnd := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	signal := make([]float64, 1440)
	x := 500.0
	for i := range signal {
		// Mean-reverting around a slow sine with multiplicative kicks.
		target := 1000 + 500*math.Sin(2*math.Pi*float64(i)/720)
		x += 0.3*(target-x) + (rnd()-0.5)*120
		if x < 0 {
			x = 0
		}
		signal[i] = x
	}
	neuralErr := Evaluate(NewNeural(NeuralConfig{Seed: 13, Capacity: 2000, Degree: 1}), signal)
	avgErr := Evaluate(NewAverage(), signal)
	if neuralErr >= avgErr {
		t.Errorf("neural %v should beat average %v", neuralErr, avgErr)
	}
}
