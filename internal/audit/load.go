package audit

import (
	"encoding/json"
	"fmt"
	"io"
)

// LoadQuantiles is a Meterstick-style tail-latency summary in
// milliseconds.
type LoadQuantiles struct {
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// StatusQuantiles is one admission outcome's share of the round trips
// and its own latency tail — a 429 resolves much faster than an
// accepted observe, so the blended RTT quantiles understate the
// accepted path under shedding; this breakdown keeps them honest.
type StatusQuantiles struct {
	Count int `json:"count"`
	LoadQuantiles
}

// LoadReport is cmd/mmogload's machine-readable run summary: how the
// daemon's admission behaved under the generated load (accepted vs
// shed vs rejected) and the observe-loop round-trip latency tail —
// the performance-variability view Meterstick takes of game hosting.
// mmogaudit ingests it with -load and folds it into the audit.
type LoadReport struct {
	Game            string        `json:"game"`
	Samples         int           `json:"samples"`
	Accepted        int           `json:"accepted"`
	Shed            int           `json:"shed"`
	Rejected        int           `json:"rejected"`
	DurationSeconds float64       `json:"duration_seconds"`
	AttemptedHz     float64       `json:"attempted_hz"`
	RTT             LoadQuantiles `json:"rtt"`
	// Retries counts re-sent requests after transient failures
	// (transport errors and 503s). A retried sample still resolves to
	// exactly one of accepted/shed/rejected, so the accounting check
	// stays exact.
	Retries int `json:"retries,omitempty"`
	// DrainSeconds is the daemon's measured drain time when the
	// generator captured it (0 otherwise).
	DrainSeconds float64 `json:"drain_seconds,omitempty"`
	// RTTByStatus splits the round-trip tail by admission outcome,
	// keyed "accepted" / "shed" / "rejected". Optional: older reports
	// omit it, and the per-status counts must sum to Samples when
	// present (checked by AttachLoad).
	RTTByStatus map[string]StatusQuantiles `json:"rtt_by_status,omitempty"`
}

// LoadLoadReport parses a cmd/mmogload -o document.
func LoadLoadReport(r io.Reader) (*LoadReport, error) {
	var ld LoadReport
	if err := json.NewDecoder(r).Decode(&ld); err != nil {
		return nil, fmt.Errorf("audit: load report: %w", err)
	}
	return &ld, nil
}

// AttachLoad folds a load-generator report into the audit: the
// Meterstick-style section renders, and the admission accounting is
// consistency-checked (every sent sample must be accounted for as
// accepted, shed, or rejected).
func (rp *Report) AttachLoad(ld *LoadReport) {
	rp.Load = ld
	rp.Checks = append(rp.Checks,
		check("load samples all accounted (accepted+shed+rejected)",
			fmt.Sprint(ld.Samples),
			fmt.Sprint(ld.Accepted+ld.Shed+ld.Rejected)))
	if len(ld.RTTByStatus) > 0 {
		sum := 0
		for _, q := range ld.RTTByStatus {
			sum += q.Count
		}
		rp.Checks = append(rp.Checks,
			check("per-status RTT counts sum to samples",
				fmt.Sprint(ld.Samples), fmt.Sprint(sum)))
	}
}
