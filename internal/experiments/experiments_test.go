package experiments

import (
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true} }

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 18 {
		t.Fatalf("registry has %d experiments, want 18", len(reg))
	}
	seen := map[string]bool{}
	for _, s := range reg {
		if s.ID == "" || s.Title == "" || s.Artifact == "" || s.Run == nil {
			t.Errorf("incomplete spec: %+v", s)
		}
		if seen[s.ID] {
			t.Errorf("duplicate id %s", s.ID)
		}
		seen[s.ID] = true
	}
	for _, want := range []string{"fig01", "fig05", "tab05", "tab06", "tab07", "fig14"} {
		if !seen[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestByID(t *testing.T) {
	s, err := ByID("fig08")
	if err != nil || s.ID != "fig08" {
		t.Fatalf("ByID(fig08) = %+v, %v", s, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]string{"a", "long header"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "long header") {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[1], "--") {
		t.Fatal("separator missing")
	}
}

func TestFig01(t *testing.T) {
	out, err := Fig01(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"World of Warcraft", "RuneScape", "2008", "titles above 500k"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig01 output missing %q", want)
		}
	}
}

func TestFig02(t *testing.T) {
	out, err := Fig02(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Unpopular decision", "Content release", "day"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig02 output missing %q", want)
		}
	}
}

func TestFig03(t *testing.T) {
	out, err := Fig03(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"region 0", "IQR", "ACF", "24h"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig03 output missing %q", want)
		}
	}
}

func TestFig04(t *testing.T) {
	out, err := Fig04(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Trace 5a", "Trace 7", "thinking time", "group interaction"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig04 output missing %q", want)
		}
	}
}

func TestTab01(t *testing.T) {
	out, err := Tab01(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Set 1", "Set 8", "Type I", "Type II"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab01 output missing %q", want)
		}
	}
}

func TestFig05(t *testing.T) {
	out, err := Fig05(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Neural", "Last value", "Sliding window median"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig05 output missing %q", want)
		}
	}
}

func TestFig06(t *testing.T) {
	out, err := Fig06(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Neural", "median", "µs"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig06 output missing %q", want)
		}
	}
}

func TestTab05(t *testing.T) {
	out, err := Tab05(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Neural", "Average", "ExtNet[in]", "events"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab05 output missing %q", want)
		}
	}
}

func TestFig07(t *testing.T) {
	out, err := Fig07(quick())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Average") {
		t.Error("fig07 should exclude the Average predictor")
	}
	if !strings.Contains(out, "Neural") {
		t.Error("fig07 missing Neural")
	}
}

func TestFig08(t *testing.T) {
	out, err := Fig08(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static", "dynamic", "inefficient"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig08 output missing %q", want)
		}
	}
}

func TestTab06(t *testing.T) {
	out, err := Tab06(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"O(n)", "O(n^3)", "static over"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab06 output missing %q", want)
		}
	}
}

func TestFig09(t *testing.T) {
	out, err := Fig09(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "over O(n^2)") {
		t.Error("fig09 missing O(n^2) series")
	}
}

func TestFig10(t *testing.T) {
	out, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "O(n x log(n))") {
		t.Error("fig10 missing O(n log n) series")
	}
}

func TestFig11(t *testing.T) {
	out, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HP-3", "HP-7", "CPU bulk"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig11 output missing %q", want)
		}
	}
}

func TestFig12(t *testing.T) {
	out, err := Fig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HP-5", "HP-11", "time bulk"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig12 output missing %q", want)
		}
	}
}

func TestFig13(t *testing.T) {
	out, err := Fig13(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Same location", "Very far", "US West"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig13 output missing %q", want)
		}
	}
}

func TestFig14(t *testing.T) {
	out, err := Fig14(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"East-coast requests", "free", "US East"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig14 output missing %q", want)
		}
	}
}

func TestTab07(t *testing.T) {
	out, err := Tab07(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0/0/100", "100/0/0", "heaviest consumer"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab07 output missing %q", want)
		}
	}
}
