package ecosystem

import (
	"math"
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/geo"
	"mmogdc/internal/xrand"
)

// TestMatcherInvariantsUnderRandomLoad drives the matcher with random
// request streams against random center configurations and checks the
// structural invariants after every operation:
//
//   - no center is ever allocated beyond its capacity;
//   - granted leases plus unmet demand cover at least the request
//     (never less than asked minus what was declared unmet);
//   - every lease respects the requester's latency bound;
//   - expiry is complete (allocations return to zero when everything
//     has lapsed).
func TestMatcherInvariantsUnderRandomLoad(t *testing.T) {
	rng := xrand.New(0xfeed)
	locations := []geo.Point{geo.London, geo.NewYork, geo.SanJose, geo.Sydney, geo.Chicago}

	for round := 0; round < 30; round++ {
		// Random ecosystem.
		nCenters := 1 + rng.Intn(5)
		centers := make([]*datacenter.Center, nCenters)
		for i := range centers {
			var bulk datacenter.Vector
			bulk[datacenter.CPU] = 0.1 + 0.5*rng.Float64()
			bulk[datacenter.Memory] = float64(rng.Intn(3))
			policy := datacenter.HostingPolicy{
				Name:     "rand",
				Bulk:     bulk,
				TimeBulk: time.Duration(30+rng.Intn(180)) * time.Minute,
			}
			centers[i] = datacenter.NewCenter(
				string(rune('A'+i)), locations[rng.Intn(len(locations))], 1+rng.Intn(6), policy)
		}
		m := NewMatcher(centers)
		now := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)

		for step := 0; step < 60; step++ {
			origin := locations[rng.Intn(len(locations))]
			maxKm := math.Inf(1)
			if rng.Bool(0.4) {
				maxKm = 500 + 8000*rng.Float64()
			}
			var demand datacenter.Vector
			demand[datacenter.CPU] = 3 * rng.Float64()
			if rng.Bool(0.5) {
				demand[datacenter.Memory] = 4 * rng.Float64()
			}

			leases, unmet := m.Allocate(Request{
				Tag: "prop", Origin: origin, MaxDistanceKm: maxKm, Demand: demand,
			}, now)

			var granted datacenter.Vector
			for _, l := range leases {
				granted = granted.Add(l.Alloc)
				if d := geo.DistanceKm(origin, l.Center.Location); d > maxKm {
					t.Fatalf("round %d: lease at %.0f km violates %.0f km bound", round, d, maxKm)
				}
			}
			// granted + unmet >= demand (rounding may exceed demand).
			covered := granted.Add(unmet)
			for r := 0; r < int(datacenter.NumResources); r++ {
				if covered[r]+1e-9 < demand[r] {
					t.Fatalf("round %d: resource %v demand %v not covered by %v granted + %v unmet",
						round, datacenter.Resource(r), demand[r], granted[r], unmet[r])
				}
			}
			for _, c := range centers {
				if !c.Allocated().FitsWithin(c.Capacity()) {
					t.Fatalf("round %d: center %s over-allocated", round, c.Name)
				}
			}
			now = now.Add(time.Duration(1+rng.Intn(30)) * time.Minute)
			m.Expire(now)
		}

		// Everything lapses eventually.
		m.Expire(now.Add(100 * time.Hour))
		for _, c := range centers {
			if !c.Allocated().IsZero() {
				t.Fatalf("round %d: center %s retains allocation after global expiry", round, c.Name)
			}
		}
	}
}
