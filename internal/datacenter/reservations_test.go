package datacenter

import (
	"testing"
	"time"

	"mmogdc/internal/geo"
)

func cpuVec(units float64) Vector {
	var v Vector
	v[CPU] = units
	return v
}

func TestReserveBasicLifecycle(t *testing.T) {
	c := NewCenter("dc", geo.London, 2, testPolicy())
	start := t0.Add(2 * time.Hour)
	l, err := c.Reserve(cpuVec(0.6), start, "evening")
	if err != nil {
		t.Fatal(err)
	}
	if l.Alloc[CPU] != 0.75 {
		t.Fatalf("reserved CPU = %v, want bulk-rounded 0.75", l.Alloc[CPU])
	}
	if c.Reservations() != 1 {
		t.Fatalf("reservations = %d", c.Reservations())
	}
	// Not yet active: the live view is untouched.
	if !c.Allocated().IsZero() {
		t.Fatal("reservation counted as live allocation")
	}
	// Advance past the window start: activation.
	c.Expire(start)
	if c.Reservations() != 0 {
		t.Fatal("reservation not activated")
	}
	if c.Allocated()[CPU] != 0.75 {
		t.Fatalf("activated allocation = %v", c.Allocated()[CPU])
	}
	// And it expires like any lease.
	c.Expire(start.Add(time.Hour))
	if !c.Allocated().IsZero() {
		t.Fatal("activated reservation did not expire")
	}
}

func TestReserveRejectsPastWindow(t *testing.T) {
	c := NewCenter("dc", geo.London, 2, testPolicy())
	c.Expire(t0.Add(time.Hour))
	if _, err := c.Reserve(cpuVec(0.5), t0, "late"); err != ErrPastWindow {
		t.Fatalf("err = %v, want ErrPastWindow", err)
	}
}

func TestReserveRejectsEmptyRequest(t *testing.T) {
	c := NewCenter("dc", geo.London, 2, testPolicy())
	if _, err := c.Reserve(Vector{}, t0.Add(time.Hour), "x"); err == nil {
		t.Fatal("empty reservation should error")
	}
}

func TestReserveCapacityAcrossOverlappingReservations(t *testing.T) {
	c := NewCenter("dc", geo.London, 1, testPolicy()) // 1 CPU unit
	start := t0.Add(time.Hour)
	if _, err := c.Reserve(cpuVec(0.75), start, "a"); err != nil {
		t.Fatal(err)
	}
	// A second overlapping reservation of 0.5 would exceed 1 unit.
	if _, err := c.Reserve(cpuVec(0.5), start.Add(30*time.Minute), "b"); err != ErrInsufficient {
		t.Fatalf("overlapping over-booking allowed: %v", err)
	}
	// A disjoint window fits (policy time bulk is one hour).
	if _, err := c.Reserve(cpuVec(0.5), start.Add(time.Hour), "c"); err != nil {
		t.Fatalf("disjoint reservation rejected: %v", err)
	}
}

func TestReserveAccountsForLiveLeases(t *testing.T) {
	c := NewCenter("dc", geo.London, 1, testPolicy())
	// A live lease holding 0.75 until t0+1h.
	if _, err := c.Lease(cpuVec(0.75), t0, "live"); err != nil {
		t.Fatal(err)
	}
	// A reservation starting inside the live lease's window must see
	// its usage.
	if _, err := c.Reserve(cpuVec(0.5), t0.Add(30*time.Minute), "r"); err != ErrInsufficient {
		t.Fatalf("reservation ignored live lease: %v", err)
	}
	// After the live lease expires, the same reservation fits.
	if _, err := c.Reserve(cpuVec(0.5), t0.Add(time.Hour), "r2"); err != nil {
		t.Fatalf("post-expiry reservation rejected: %v", err)
	}
}

func TestLeaseSeesFutureReservations(t *testing.T) {
	c := NewCenter("dc", geo.London, 1, testPolicy())
	// Book the whole machine starting in 30 minutes.
	if _, err := c.Reserve(cpuVec(1.0), t0.Add(30*time.Minute), "r"); err != nil {
		t.Fatal(err)
	}
	// An immediate one-hour lease would collide with the booking.
	if _, err := c.Lease(cpuVec(0.5), t0, "now"); err != ErrInsufficient {
		t.Fatalf("lease ignored future reservation: %v", err)
	}
}

func TestReservationBilledAtGrant(t *testing.T) {
	c := NewCenter("dc", geo.London, 2, testPolicy())
	if _, err := c.Reserve(cpuVec(0.25), t0.Add(time.Hour), "r"); err != nil {
		t.Fatal(err)
	}
	want := 0.25 * 1.00 * 1.0 // one bulk for one hour at CPU price
	if got := c.TotalCost(); got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}

func TestStaleReservationDropped(t *testing.T) {
	c := NewCenter("dc", geo.London, 2, testPolicy())
	if _, err := c.Reserve(cpuVec(0.25), t0.Add(time.Hour), "r"); err != nil {
		t.Fatal(err)
	}
	// Jump far past the whole window: the reservation must not
	// activate retroactively.
	c.Expire(t0.Add(10 * time.Hour))
	if c.Reservations() != 0 {
		t.Fatal("stale reservation kept")
	}
	if !c.Allocated().IsZero() {
		t.Fatal("stale reservation activated")
	}
}

func TestReservationPreemptsLaterLeaseDemand(t *testing.T) {
	// The scenario reservations exist for: book the evening peak in
	// the morning, then watch a competing immediate lease bounce.
	c := NewCenter("dc", geo.London, 1, testPolicy())
	evening := t0.Add(8 * time.Hour)
	if _, err := c.Reserve(cpuVec(1.0), evening, "peak"); err != nil {
		t.Fatal(err)
	}
	// The competing operator shows up just before the peak.
	c.Expire(evening.Add(-10 * time.Minute))
	if _, err := c.Lease(cpuVec(1.0), evening.Add(-10*time.Minute), "rival"); err != ErrInsufficient {
		t.Fatalf("rival lease overlapping the booking allowed: %v", err)
	}
	// At the window start the booking activates.
	c.Expire(evening)
	if c.Allocated()[CPU] != 1.0 {
		t.Fatalf("booking not active at its window: %v", c.Allocated())
	}
}
