package experiments

import "sync"

// parallelMap runs fn(0..n-1) concurrently and returns the collected
// results in index order, or the first error encountered. The sweep
// experiments use it to run their independent simulations — different
// predictors, policies, update models, latency classes — in parallel:
// each simulation owns its centers, leases, and predictors, and only
// reads the shared trace dataset and the pretrained network prototype
// (which is cloned, never trained, after pretraining).
func parallelMap[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
