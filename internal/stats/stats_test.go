package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestSumKahan(t *testing.T) {
	// Sum many tiny values against one large one; naive summation
	// loses them, Kahan keeps them.
	xs := make([]float64, 0, 10001)
	xs = append(xs, 1e16)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 1.0)
	}
	if got := Sum(xs); got != 1e16+10000 {
		t.Fatalf("Sum = %v, want %v", got, 1e16+10000)
	}
}

func TestMeanBasics(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2}
	if got := Min(xs); got != -9 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Fatalf("Max = %v", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty should be NaN")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Quantile(xs, 0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 40 {
		t.Fatalf("q1 = %v", got)
	}
	// Out-of-range q values are clamped.
	if got := Quantile(xs, -3); got != 10 {
		t.Fatalf("q(-3) = %v", got)
	}
	if got := Quantile(xs, 2); got != 40 {
		t.Fatalf("q(2) = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{9, 1, 5}
	Quantile(xs, 0.5)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestIQRKnown(t *testing.T) {
	// 1..9: Q1 = 3, Q3 = 7 under type-7 interpolation.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := IQR(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("IQR = %v, want 4", got)
	}
}

func TestSummary(t *testing.T) {
	s, err := Summary([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Q1 != 2 || s.Q3 != 4 || s.Mean != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if _, err := Summary(nil); err != ErrEmpty {
		t.Fatalf("Summary(nil) err = %v, want ErrEmpty", err)
	}
}

func TestACFLagZeroIsOne(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4, 6, 2, 8}
	acf := ACF(xs, 3)
	if !almostEqual(acf[0], 1, 1e-12) {
		t.Fatalf("ACF[0] = %v", acf[0])
	}
	if len(acf) != 4 {
		t.Fatalf("len(ACF) = %d, want 4", len(acf))
	}
}

func TestACFPeriodicSignal(t *testing.T) {
	// A sine with period 24 must have an ACF peak at lag 24 and a
	// trough at lag 12 — the diurnal structure Fig. 3 looks for.
	const period = 24
	n := period * 20
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	acf := ACF(xs, period+2)
	if acf[period] < 0.9 {
		t.Errorf("ACF at full period = %v, want > 0.9", acf[period])
	}
	if acf[period/2] > -0.9 {
		t.Errorf("ACF at half period = %v, want < -0.9", acf[period/2])
	}
}

func TestACFConstantSeries(t *testing.T) {
	acf := ACF([]float64{5, 5, 5, 5}, 2)
	if acf[0] != 1 || acf[1] != 0 || acf[2] != 0 {
		t.Fatalf("constant-series ACF = %v", acf)
	}
}

func TestACFClampsLag(t *testing.T) {
	acf := ACF([]float64{1, 2, 3}, 10)
	if len(acf) != 3 {
		t.Fatalf("len = %d, want clamp to n-1+1 = 3", len(acf))
	}
}

func TestACFBounded(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		// Build a pseudo-random series from the seed.
		xs := make([]float64, 64)
		s := uint64(seed)
		for i := range xs {
			s = s*6364136223846793005 + 1442695040888963407
			xs[i] = float64(s%1000) / 10
		}
		for _, v := range ACF(xs, 20) {
			if v > 1+1e-9 || v < -1-1e-9 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{3, 9, 2, 9, 1}
	if i, v := ArgMax(xs, 0, len(xs)); i != 1 || v != 9 {
		t.Fatalf("ArgMax = (%d, %v)", i, v)
	}
	if i, v := ArgMin(xs, 0, len(xs)); i != 4 || v != 1 {
		t.Fatalf("ArgMin = (%d, %v)", i, v)
	}
	if i, _ := ArgMax(xs, 3, 3); i != -1 {
		t.Fatal("empty range should return -1")
	}
	if i, v := ArgMax(xs, -5, 99); i != 1 || v != 9 {
		t.Fatalf("ArgMax with clamped range = (%d, %v)", i, v)
	}
}

func TestMedianIsBetweenMinAndMax(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		return m >= Min(xs) && m <= Max(xs)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIQRNonNegative(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return IQR(xs) >= 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept, r2 := LinearFit(xs, ys)
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 1, 1e-12) || !almostEqual(r2, 1, 1e-12) {
		t.Fatalf("fit = (%v, %v, %v)", slope, intercept, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if s, _, _ := LinearFit([]float64{1}, []float64{2}); !math.IsNaN(s) {
		t.Fatal("single point should give NaN")
	}
	if s, _, _ := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); !math.IsNaN(s) {
		t.Fatal("zero x-variance should give NaN")
	}
	if s, _, _ := LinearFit([]float64{1, 2}, []float64{3}); !math.IsNaN(s) {
		t.Fatal("length mismatch should give NaN")
	}
	// Constant y: perfect fit with zero slope.
	s, b, r2 := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if s != 0 || b != 4 || r2 != 1 {
		t.Fatalf("constant-y fit = (%v, %v, %v)", s, b, r2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	// R^2 must drop below 1 with noise but the slope should be close.
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	state := uint64(17)
	for i := range xs {
		state = state*6364136223846793005 + 1442695040888963407
		noise := float64(state%100)/50 - 1
		xs[i] = float64(i)
		ys[i] = 0.5*float64(i) + 2 + noise
	}
	slope, _, r2 := LinearFit(xs, ys)
	if math.Abs(slope-0.5) > 0.05 {
		t.Fatalf("noisy slope = %v", slope)
	}
	if r2 >= 1 || r2 < 0.9 {
		t.Fatalf("noisy R^2 = %v", r2)
	}
}
