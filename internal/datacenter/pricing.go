package datacenter

import "time"

// PriceTable is the per-resource price of one abstract unit for one
// hour, in arbitrary currency. Data centers charge for what they
// *allocate* (the bulk-rounded amounts, for the whole time bulk), not
// for what the game actually consumes — which is precisely why
// mis-fitted hosting policies cost game operators real money and why
// the over-allocation metric translates directly into operating cost.
type PriceTable Vector

// DefaultPrices is a plausible 2008-era hosting price point: CPU is
// the expensive resource, memory and bandwidth come cheaper per unit.
var DefaultPrices = PriceTable{
	CPU:       1.00, // one machine's CPU for one hour
	Memory:    0.10,
	ExtNetIn:  0.02,
	ExtNetOut: 0.15,
}

// LeaseCost returns the price of one lease: every allocated resource
// is billed for the lease's full duration at the per-unit-hour rates.
func (p PriceTable) LeaseCost(l *Lease) float64 {
	hours := l.Expires.Sub(l.Start).Hours()
	if hours <= 0 {
		return 0
	}
	var cost float64
	for r, units := range l.Alloc {
		cost += p[r] * units * hours
	}
	return cost
}

// AllocationCost returns the price of holding the given allocation for
// the given duration.
func (p PriceTable) AllocationCost(alloc Vector, d time.Duration) float64 {
	hours := d.Hours()
	if hours <= 0 {
		return 0
	}
	var cost float64
	for r, units := range alloc {
		cost += p[r] * units * hours
	}
	return cost
}

// TotalCost returns the cumulative price of every lease the center has
// granted (charged in full at grant time, since leases cannot be
// terminated early).
func (c *Center) TotalCost() float64 { return c.totalCost }

// Prices returns the center's price table (DefaultPrices unless
// SetPrices was called).
func (c *Center) Prices() PriceTable {
	if c.prices == (PriceTable{}) {
		return DefaultPrices
	}
	return c.prices
}

// SetPrices overrides the center's price table.
func (c *Center) SetPrices(p PriceTable) { c.prices = p }

// TotalCostOf sums the accumulated lease costs across centers.
func TotalCostOf(centers []*Center) float64 {
	var sum float64
	for _, c := range centers {
		sum += c.TotalCost()
	}
	return sum
}
