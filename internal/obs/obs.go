package obs

import "time"

// Obs bundles one run's observability: the metrics registry, the
// flight recorder, and the clock that times instrumented sections.
// A nil *Obs disables everything — the accessors return nil
// instruments whose methods are allocation-free no-ops, so engines
// thread a single pointer and never branch per metric.
type Obs struct {
	Registry *Registry
	Recorder *Recorder
	// Clock times instrumented sections; nil falls back to System.
	// Tests inject a ManualClock for deterministic latency histograms.
	Clock Clock
}

// New builds an enabled observability bundle with a fresh registry, a
// default-capacity flight recorder, and the system clock.
func New() *Obs {
	return &Obs{Registry: NewRegistry(), Recorder: NewRecorder(0), Clock: System}
}

// Reg returns the registry (nil when disabled).
func (o *Obs) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Rec returns the flight recorder (nil when disabled).
func (o *Obs) Rec() *Recorder {
	if o == nil {
		return nil
	}
	return o.Recorder
}

// Now reads the bundle's clock. Disabled bundles return the zero Time
// without touching any clock, keeping the disabled path free of
// time.Now calls.
func (o *Obs) Now() time.Time {
	if o == nil {
		return time.Time{}
	}
	if o.Clock == nil {
		return time.Now()
	}
	return o.Clock.Now()
}
