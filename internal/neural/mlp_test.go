package neural

import (
	"math"
	"testing"

	"mmogdc/internal/xrand"
)

func TestNewMLPValidation(t *testing.T) {
	r := xrand.New(1)
	if _, err := NewMLP(r, 6); err == nil {
		t.Error("single-layer network should be rejected")
	}
	if _, err := NewMLP(r, 6, 0, 1); err == nil {
		t.Error("zero-width layer should be rejected")
	}
	m, err := NewMLP(r, 6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.InputSize() != 6 || m.OutputSize() != 1 {
		t.Fatalf("sizes = (%d, %d)", m.InputSize(), m.OutputSize())
	}
}

func TestForwardDeterministic(t *testing.T) {
	m1, _ := NewMLP(xrand.New(5), 4, 3, 2)
	m2, _ := NewMLP(xrand.New(5), 4, 3, 2)
	in := []float64{0.1, -0.2, 0.3, 0.4}
	o1 := append([]float64(nil), m1.Forward(in)...)
	o2 := m2.Forward(in)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same-seed networks disagree at output %d", i)
		}
	}
}

func TestForwardPanicsOnBadInput(t *testing.T) {
	m, _ := NewMLP(xrand.New(1), 3, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size input did not panic")
		}
	}()
	m.Forward([]float64{1, 2})
}

func TestTrainReducesLossOnLinearFunction(t *testing.T) {
	m, _ := NewMLP(xrand.New(7), 2, 4, 1)
	f := func(x, y float64) float64 { return 0.3*x - 0.2*y + 0.1 }
	r := xrand.New(8)
	var first, last float64
	const steps = 4000
	for i := 0; i < steps; i++ {
		x, y := r.Float64(), r.Float64()
		loss := m.Train([]float64{x, y}, []float64{f(x, y)}, 0.05, 0.5)
		if i < 100 {
			first += loss
		}
		if i >= steps-100 {
			last += loss
		}
	}
	if last > first/3 {
		t.Fatalf("loss did not shrink: first-100 sum %v, last-100 sum %v", first, last)
	}
}

func TestTrainLearnsNonlinearFunction(t *testing.T) {
	// XOR-like target requires the hidden layer.
	m, _ := NewMLP(xrand.New(11), 2, 6, 1)
	data := []Sample{
		{In: []float64{0, 0}, Target: []float64{0}},
		{In: []float64{0, 1}, Target: []float64{1}},
		{In: []float64{1, 0}, Target: []float64{1}},
		{In: []float64{1, 1}, Target: []float64{0}},
	}
	res := m.Fit(data, nil, TrainConfig{LearningRate: 0.1, Momentum: 0.5, MaxEras: 4000, Patience: 4000})
	if res.TrainLoss > 0.03 {
		t.Fatalf("XOR loss after %d eras = %v", res.Eras, res.TrainLoss)
	}
	for _, s := range data {
		out := m.Forward(s.In)[0]
		if math.Abs(out-s.Target[0]) > 0.3 {
			t.Errorf("XOR(%v) = %v, want %v", s.In, out, s.Target[0])
		}
	}
}

func TestTrainPanicsOnBadTarget(t *testing.T) {
	m, _ := NewMLP(xrand.New(1), 2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size target did not panic")
		}
	}()
	m.Train([]float64{1, 2}, []float64{1, 2}, 0.1, 0)
}

func TestFitConvergence(t *testing.T) {
	// An easy target should trigger the patience-based convergence
	// criterion well before MaxEras.
	m, _ := NewMLP(xrand.New(13), 1, 2, 1)
	var train, test []Sample
	for i := 0; i < 32; i++ {
		x := float64(i) / 32
		s := Sample{In: []float64{x}, Target: []float64{0.5 * x}}
		if i%4 == 0 {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}
	res := m.Fit(train, test, TrainConfig{MaxEras: 2000})
	if !res.Converged {
		t.Fatalf("training did not converge in %d eras (test loss %v)", res.Eras, res.TestLoss)
	}
	if res.Eras >= 2000 {
		t.Fatal("convergence flag set but all eras used")
	}
}

func TestFitEmptyTrainSet(t *testing.T) {
	m, _ := NewMLP(xrand.New(1), 1, 1, 1)
	res := m.Fit(nil, nil, TrainConfig{})
	if res.Eras != 0 || res.Converged {
		t.Fatalf("empty fit result = %+v", res)
	}
}

func TestLossEmpty(t *testing.T) {
	m, _ := NewMLP(xrand.New(1), 1, 1, 1)
	if m.Loss(nil) != 0 {
		t.Fatal("Loss(nil) should be 0")
	}
}

func TestCloneIndependent(t *testing.T) {
	m, _ := NewMLP(xrand.New(17), 2, 3, 1)
	in := []float64{0.4, -0.1}
	before := m.Forward(in)[0]
	c := m.Clone()
	// Training the clone must not affect the original.
	for i := 0; i < 100; i++ {
		c.Train(in, []float64{2}, 0.1, 0.5)
	}
	after := m.Forward(in)[0]
	if before != after {
		t.Fatal("training the clone changed the original")
	}
	if c.Forward(in)[0] == before {
		t.Fatal("clone did not learn")
	}
}

func BenchmarkForward631(b *testing.B) {
	m, _ := NewMLP(xrand.New(1), 6, 3, 1)
	in := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Forward(in)
	}
}

func BenchmarkTrain631(b *testing.B) {
	m, _ := NewMLP(xrand.New(1), 6, 3, 1)
	in := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	target := []float64{0.35}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Train(in, target, 0.05, 0.5)
	}
}
