package operator

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"mmogdc/internal/checkpoint"
)

// assertTrajectoriesEqual requires the crashed run to match the
// reference bit-for-bit from tick `from` on, forecasts and ecosystem
// allocation alike.
func assertTrajectoriesEqual(t *testing.T, res *HarnessResult, from int) {
	t.Helper()
	for i := from; i < len(res.Reference); i++ {
		a, b := res.Reference[i], res.Crashed[i]
		if len(a.Forecast) != len(b.Forecast) {
			t.Fatalf("tick %d: forecast lengths %d vs %d", i, len(a.Forecast), len(b.Forecast))
		}
		for z := range a.Forecast {
			if math.Float64bits(a.Forecast[z]) != math.Float64bits(b.Forecast[z]) {
				t.Fatalf("tick %d zone %d: forecast %v (reference) vs %v (crashed)",
					i, z, a.Forecast[z], b.Forecast[z])
			}
		}
		if math.Float64bits(a.AllocatedCPU) != math.Float64bits(b.AllocatedCPU) {
			t.Fatalf("tick %d: allocated CPU %v (reference) vs %v (crashed)",
				i, a.AllocatedCPU, b.AllocatedCPU)
		}
	}
}

func assertForecastsEqual(t *testing.T, res *HarnessResult) {
	t.Helper()
	for i := range res.Reference {
		a, b := res.Reference[i].Forecast, res.Crashed[i].Forecast
		for z := range a {
			if math.Float64bits(a[z]) != math.Float64bits(b[z]) {
				t.Fatalf("tick %d zone %d: forecast %v (reference) vs %v (crashed)", i, z, a[z], b[z])
			}
		}
	}
}

// TestCrashEquivalenceTickCadence is the headline guarantee: with a
// checkpoint every tick, killing the operator at tick boundaries AND
// mid-tick (after leases were acquired but before the checkpoint was
// written) leaves the resumed run bit-identical to an uninterrupted
// one — forecasts, ecosystem allocation, and final metrics.
func TestCrashEquivalenceTickCadence(t *testing.T) {
	res, err := RunCrashHarness(HarnessConfig{
		Seed:          42,
		Ticks:         150,
		DropoutProb:   0.05,
		CheckpointDir: t.TempDir(),
		Crashes: []CrashPoint{
			{Tick: 7},
			{Tick: 23, MidTick: true},
			{Tick: 64},
			{Tick: 65, MidTick: true}, // back-to-back with the boundary crash
			{Tick: 120, MidTick: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Restores) != 5 {
		t.Fatalf("restores = %d", len(res.Restores))
	}
	assertTrajectoriesEqual(t, res, 0)
	if res.CrashedMetrics != res.ReferenceMetrics {
		t.Fatalf("metrics diverged:\n  reference %+v\n  crashed   %+v",
			res.ReferenceMetrics, res.CrashedMetrics)
	}
	// The mid-tick crashes must have found orphans (the leases acquired
	// by the doomed tick) and released them.
	sawOrphans := false
	for _, r := range res.Restores {
		if r.MidTick && r.Reconciliation.Orphaned > 0 {
			sawOrphans = true
		}
		if r.Reconciliation.Adopted == 0 {
			t.Fatalf("restore at tick %d adopted nothing: %+v", r.AtTick, r.Reconciliation)
		}
	}
	if !sawOrphans {
		t.Fatal("mid-tick crashes produced no orphaned leases — the harness is not testing the hard case")
	}
}

// TestCrashEquivalenceWithOutages overlays full-center outages: the
// failover machinery and the crash recovery must compose. Crashes are
// placed outside the outage transitions' replay windows, so the runs
// stay bit-identical.
func TestCrashEquivalenceWithOutages(t *testing.T) {
	res, err := RunCrashHarness(HarnessConfig{
		Seed:          7,
		Ticks:         150,
		CheckpointDir: t.TempDir(),
		Outages: []HarnessOutage{
			{Center: "alpha", Start: 40, End: 55},
			{Center: "beta", Start: 90, End: 100},
		},
		Crashes: []CrashPoint{
			{Tick: 30, MidTick: true},
			{Tick: 47}, // inside alpha's outage
			{Tick: 110, MidTick: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertTrajectoriesEqual(t, res, 0)
	if res.CrashedMetrics != res.ReferenceMetrics {
		t.Fatalf("metrics diverged:\n  reference %+v\n  crashed   %+v",
			res.ReferenceMetrics, res.CrashedMetrics)
	}
	if res.ReferenceMetrics.Failovers == 0 {
		t.Fatal("outage scenario produced no failovers — not exercising the composition")
	}
}

// TestCrashEquivalenceMidRegionBlackout extends the matrix with
// correlated failure domains: both European centers black out in a
// rolling window (alpha, then beta two ticks later — inside the
// failover cooldown, so storm control parks the second failover), and
// the operator is killed both at a boundary and mid-tick while the
// region is dark. The resumed trajectory must stay bit-identical,
// including the deferred-failover state threaded through the
// checkpoint.
func TestCrashEquivalenceMidRegionBlackout(t *testing.T) {
	cfg := HarnessConfig{
		Seed:                  21,
		Ticks:                 150,
		MultiRegion:           true,
		FailoverCooldownTicks: 5,
		CheckpointDir:         t.TempDir(),
		Outages: []HarnessOutage{
			{Center: "alpha", Start: 40, End: 60},
			{Center: "beta", Start: 42, End: 60}, // rolling: lands inside the cooldown
		},
		Crashes: []CrashPoint{
			{Tick: 44},                // boundary, region dark, failover parked
			{Tick: 51, MidTick: true}, // mid-tick while still dark
		},
	}
	res, err := RunCrashHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Restores) != 2 {
		t.Fatalf("restores = %d", len(res.Restores))
	}
	assertTrajectoriesEqual(t, res, 0)
	if res.CrashedMetrics != res.ReferenceMetrics {
		t.Fatalf("metrics diverged:\n  reference %+v\n  crashed   %+v",
			res.ReferenceMetrics, res.CrashedMetrics)
	}
	if res.ReferenceMetrics.Failovers == 0 {
		t.Fatal("region blackout produced no failovers")
	}
	if res.ReferenceMetrics.FailoversDeferred == 0 {
		t.Fatal("rolling blackout inside the cooldown deferred nothing — storm control was not exercised")
	}
}

// TestCrashEquivalenceRandomizedSchedule drives the crash ticks from
// the fault injector's exponential schedule (faults.Config.
// OperatorCrashMTBFTicks) instead of hand-picked points. With a
// coarser cadence the replay window can span ticks whose leases
// already expired, so allocations may legitimately diverge briefly;
// forecasts must stay bit-identical throughout, and the allocation
// must re-converge within one lease time bulk (30 ticks) of each
// crash.
func TestCrashEquivalenceRandomizedSchedule(t *testing.T) {
	res, err := RunCrashHarness(HarnessConfig{
		Seed:            1234,
		Ticks:           240,
		CheckpointEvery: 5,
		CrashMTBFTicks:  60,
		MidTickShare:    0.5,
		DropoutProb:     0.03,
		CheckpointDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Restores) == 0 {
		t.Fatal("randomized schedule injected no crashes; lower the MTBF")
	}
	assertForecastsEqual(t, res)
	// Allocation equality outside the convergence horizon of any crash.
	const horizon = 35 // one lease time bulk plus slack
	inWindow := func(tick int) bool {
		for _, r := range res.Restores {
			if tick >= r.FromTick && tick < r.AtTick+horizon {
				return true
			}
		}
		return false
	}
	checked := 0
	for i := range res.Reference {
		if inWindow(i) {
			continue
		}
		checked++
		if a, b := res.Reference[i].AllocatedCPU, res.Crashed[i].AllocatedCPU; math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("tick %d (outside every convergence window): allocated %v vs %v", i, a, b)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d ticks outside convergence windows; scenario too crash-dense to mean anything", checked)
	}
}

// TestHarnessFallsBackOverCorruptCheckpoint damages the newest
// snapshot mid-run: the recovery must skip it (reporting the skipped
// file), restart from the previous good one, and still reproduce the
// uninterrupted trajectory.
func TestHarnessFallsBackOverCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// First run the scenario up to the crash point in a throwaway copy
	// to learn which checkpoint file the crash would restore from, then
	// corrupt it in the real run. Simpler: run the harness once with no
	// crashes to materialize checkpoints, corrupt the one before tick
	// 12, and run the crashy scenario against a fresh directory seeded
	// with those files.
	seed := HarnessConfig{
		Seed:          9,
		Ticks:         12,
		CheckpointDir: dir,
	}
	if _, err := RunCrashHarness(seed); err != nil {
		t.Fatal(err)
	}
	mgr, err := checkpoint.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	ticks, err := mgr.Ticks()
	if err != nil {
		t.Fatal(err)
	}
	newest := ticks[len(ticks)-1]
	blob, err := os.ReadFile(mgr.Path(newest))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-4] ^= 0x40
	if err := os.WriteFile(mgr.Path(newest), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := mgr.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Tick != newest-1 {
		t.Fatalf("fallback restored tick %d, want %d", snap.Tick, newest-1)
	}
	if len(snap.Corrupt) != 1 || snap.Corrupt[0] != filepath.Base(mgr.Path(newest)) {
		t.Fatalf("corrupt files = %v", snap.Corrupt)
	}
}

// TestHarnessCorruptionDuringCrashRun flips a bit in the newest
// checkpoint right before a crash recovery reads it: the restore must
// reject the damaged file, fall back to the previous good snapshot
// (replaying one extra tick), report the skipped file — and the run
// must still match the reference bit-for-bit. The crash lands early
// (tick 12, within the first lease time bulk) so no lease has expired
// inside the widened replay window and bit-equality is the exact
// expectation, not just convergence.
func TestHarnessCorruptionDuringCrashRun(t *testing.T) {
	dir := t.TempDir()
	mgr, err := checkpoint.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := ""
	res, err := RunCrashHarness(HarnessConfig{
		Seed:          11,
		Ticks:         90,
		CheckpointDir: dir,
		Crashes:       []CrashPoint{{Tick: 12}},
		PreRestore: func(atTick int) {
			ticks, err := mgr.Ticks()
			if err != nil || len(ticks) == 0 {
				t.Errorf("pre-restore at %d: %v", atTick, err)
				return
			}
			newest := mgr.Path(ticks[len(ticks)-1])
			blob, err := os.ReadFile(newest)
			if err != nil {
				t.Errorf("pre-restore: %v", err)
				return
			}
			blob[len(blob)-1] ^= 0x01
			if err := os.WriteFile(newest, blob, 0o644); err != nil {
				t.Errorf("pre-restore: %v", err)
			}
			corrupted = filepath.Base(newest)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Restores) != 1 {
		t.Fatalf("restores = %d", len(res.Restores))
	}
	r := res.Restores[0]
	if r.FromTick != 10 {
		t.Fatalf("fallback restored from tick %d, want 10 (11 was corrupted)", r.FromTick)
	}
	if len(r.CorruptSkipped) != 1 || r.CorruptSkipped[0] != corrupted {
		t.Fatalf("corrupt files skipped = %v, want [%s]", r.CorruptSkipped, corrupted)
	}
	assertTrajectoriesEqual(t, res, 0)
	if res.CrashedMetrics != res.ReferenceMetrics {
		t.Fatalf("metrics diverged:\n  reference %+v\n  crashed   %+v",
			res.ReferenceMetrics, res.CrashedMetrics)
	}
}
