package datacenter

import (
	"fmt"
	"time"

	"mmogdc/internal/geo"
)

// Policies returns the paper's eleven hosting policies (Table IV).
// Bulk sizes are in abstract resource units; "n/a" entries are zero
// (unconstrained). HP-1 and HP-2 bundle network bandwidth with CPU;
// HP-3 through HP-7 sweep the CPU resource bulk at a fixed 3-hour time
// bulk; HP-5 and HP-8 through HP-11 sweep the time bulk at a fixed
// 0.37-unit CPU bulk.
func Policies() []HostingPolicy {
	mk := func(name string, cpu, mem, in, out float64, minutes int) HostingPolicy {
		var b Vector
		b[CPU] = cpu
		b[Memory] = mem
		b[ExtNetIn] = in
		b[ExtNetOut] = out
		return HostingPolicy{Name: name, Bulk: b, TimeBulk: time.Duration(minutes) * time.Minute}
	}
	return []HostingPolicy{
		mk("HP-1", 0.25, 0, 6, 0.33, 360),
		mk("HP-2", 0.25, 0, 4, 0.5, 360),
		mk("HP-3", 0.22, 2, 0, 0, 180),
		mk("HP-4", 0.28, 2, 0, 0, 180),
		mk("HP-5", 0.37, 2, 0, 0, 180),
		mk("HP-6", 0.56, 2, 0, 0, 180),
		mk("HP-7", 1.11, 2, 0, 0, 180),
		mk("HP-8", 0.37, 2, 0, 0, 360),
		mk("HP-9", 0.37, 2, 0, 0, 720),
		mk("HP-10", 0.37, 2, 0, 0, 1440),
		mk("HP-11", 0.37, 2, 0, 0, 2880),
	}
}

// OptimalPolicy returns the fine-grained reference policy the paper's
// Sections V-C through V-F call "optimal": resource bulks small enough
// that rounding waste is marginal, and a short time bulk so unneeded
// resources lapse quickly. It is the policy a data center would offer
// if it adapted fully to MMOG needs.
func OptimalPolicy() HostingPolicy {
	var b Vector
	b[CPU] = 0.05
	b[Memory] = 0.25
	b[ExtNetIn] = 0.25
	b[ExtNetOut] = 0.1
	return HostingPolicy{Name: "optimal", Bulk: b, TimeBulk: 60 * time.Minute}
}

// PolicyByName returns the Table IV policy with the given name.
func PolicyByName(name string) (HostingPolicy, error) {
	for _, p := range Policies() {
		if p.Name == name {
			return p, nil
		}
	}
	return HostingPolicy{}, fmt.Errorf("datacenter: unknown policy %q", name)
}

// SiteSpec describes one Table III location before policies are
// assigned.
type SiteSpec struct {
	// Name is the paper's location label.
	Name string
	// Location is the site's coordinates.
	Location geo.Point
	// Centers is the number of data centers at the location.
	Centers int
	// Machines is the total machine count at the location (shared
	// evenly between the centers, as Section V-B prescribes).
	Machines int
	// Continent groups sites for the Section V-E North-America-only
	// setup.
	Continent string
}

// TableIIISites returns the paper's experimental environment
// (Table III): 17 data centers on 10 sites across Europe, North
// America, and Australia, 166 machines in total.
func TableIIISites() []SiteSpec {
	return []SiteSpec{
		{Name: "Finland", Location: geo.Helsinki, Centers: 2, Machines: 8, Continent: "Europe"},
		{Name: "Sweden", Location: geo.Stockholm, Centers: 2, Machines: 8, Continent: "Europe"},
		{Name: "U.K.", Location: geo.London, Centers: 2, Machines: 20, Continent: "Europe"},
		{Name: "Netherlands", Location: geo.Amsterdam, Centers: 2, Machines: 15, Continent: "Europe"},
		{Name: "US West", Location: geo.SanJose, Centers: 2, Machines: 35, Continent: "North America"},
		{Name: "Canada West", Location: geo.Vancouver, Centers: 1, Machines: 15, Continent: "North America"},
		{Name: "US Central", Location: geo.Chicago, Centers: 1, Machines: 15, Continent: "North America"},
		{Name: "US East", Location: geo.NewYork, Centers: 2, Machines: 32, Continent: "North America"},
		{Name: "Canada East", Location: geo.Montreal, Centers: 1, Machines: 10, Continent: "North America"},
		{Name: "Australia", Location: geo.Sydney, Centers: 2, Machines: 8, Continent: "Australia"},
	}
}

// BuildCenters expands the site specs into centers, assigning policies
// round-robin per site the way Section V-B does for HP-1/HP-2: when a
// site hosts two centers they get policies[0] and policies[1] with
// half the machines each; single-center sites get policies[i%len].
// Machine counts that do not divide evenly give the remainder to the
// first center.
func BuildCenters(sites []SiteSpec, policies []HostingPolicy) []*Center {
	if len(policies) == 0 {
		policies = Policies()[:2]
	}
	var out []*Center
	rr := 0
	for _, s := range sites {
		n := s.Centers
		if n < 1 {
			n = 1
		}
		per := s.Machines / n
		rem := s.Machines % n
		for i := 0; i < n; i++ {
			m := per
			if i == 0 {
				m += rem
			}
			name := s.Name
			if n > 1 {
				name = fmt.Sprintf("%s (%d)", s.Name, i+1)
			}
			p := policies[rr%len(policies)]
			rr++
			out = append(out, NewCenter(name, s.Location, m, p))
		}
	}
	return out
}

// TotalMachines sums the machines of the centers.
func TotalMachines(centers []*Center) int {
	n := 0
	for _, c := range centers {
		n += c.Machines
	}
	return n
}
