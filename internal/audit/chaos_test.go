package audit

import (
	"bytes"
	"strings"
	"testing"

	"mmogdc/internal/core"
	"mmogdc/internal/obs"
)

// chaosStream is a hand-built event stream with one breach episode per
// classifier cause, in precedence order.
func chaosStream() []obs.Event {
	return []obs.Event{
		// Region blackout window 100-140 with a breach inside it; the
		// blackout also downs centers (outage events), but the coarser
		// domain cause must win.
		{Tick: 100, Kind: obs.EventRegionBlackout, Subject: "eu", Value: 2},
		{Tick: 100, Kind: obs.EventOutage, Subject: "london"},
		{Tick: 100, Kind: obs.EventOutage, Subject: "amsterdam"},
		{Tick: 102, Kind: obs.EventBreach, Subject: "run", Value: -50},
		{Tick: 103, Kind: obs.EventBreach, Subject: "run", Value: -60},
		{Tick: 140, Kind: obs.EventRegionRecover, Subject: "eu", Value: 2},
		{Tick: 140, Kind: obs.EventRecover, Subject: "london"},
		{Tick: 140, Kind: obs.EventRecover, Subject: "amsterdam"},
		// Brownout window 150-160 with shedding and a breach.
		{Tick: 150, Kind: obs.EventBrownoutStart, Subject: "run", Value: 1.5},
		{Tick: 150, Kind: obs.EventShed, Subject: "zone 3", Value: 900},
		{Tick: 151, Kind: obs.EventShed, Subject: "zone 2", Value: 400},
		{Tick: 152, Kind: obs.EventBreach, Subject: "run", Value: -20},
		{Tick: 160, Kind: obs.EventBrownoutEnd, Subject: "run"},
		// Plain single-center outage 200-210.
		{Tick: 200, Kind: obs.EventOutage, Subject: "nyc"},
		{Tick: 205, Kind: obs.EventBreach, Subject: "run", Value: -10},
		{Tick: 210, Kind: obs.EventRecover, Subject: "nyc"},
		// Rejection backoff.
		{Tick: 250, Kind: obs.EventRejection, Subject: "run", Value: 2},
		{Tick: 251, Kind: obs.EventBreach, Subject: "run", Value: -3},
		// Storm control deferral.
		{Tick: 300, Kind: obs.EventDeferred, Subject: "run", Value: 302},
		{Tick: 302, Kind: obs.EventBreach, Subject: "run", Value: -4},
		// Forecast miss: the engine was granting, demand outran it.
		{Tick: 350, Kind: obs.EventGrant, Subject: "run", Value: 2.5},
		{Tick: 352, Kind: obs.EventBreach, Subject: "run", Value: -2},
		// Nothing anywhere near this one.
		{Tick: 400, Kind: obs.EventBreach, Subject: "run", Value: -5},
	}
}

func TestClassifierFailureDomainCauses(t *testing.T) {
	rp := Analyze(chaosStream(), nil, nil)
	wantCauses := []string{
		"region blackout",
		"brownout shedding",
		"outage",
		"rejection backoff",
		"failover storm control",
		"prediction miss",
		"unclassified",
	}
	if len(rp.Episodes) != len(wantCauses) {
		t.Fatalf("episodes = %d, want %d: %+v", len(rp.Episodes), len(wantCauses), rp.Episodes)
	}
	for i, want := range wantCauses {
		if got := rp.Episodes[i].Cause; got != want {
			t.Errorf("episode %d (ticks %d-%d) cause = %q, want %q",
				i+1, rp.Episodes[i].StartTick, rp.Episodes[i].EndTick, got, want)
		}
	}
	if rp.Unclassified != 1 {
		t.Fatalf("unclassified = %d, want 1", rp.Unclassified)
	}
	if len(rp.Blackouts) != 1 || rp.Blackouts[0] != (DomainWindow{Subject: "eu", StartTick: 100, EndTick: 140}) {
		t.Fatalf("blackout windows = %+v", rp.Blackouts)
	}
	if len(rp.Brownouts) != 1 || rp.Brownouts[0] != (DomainWindow{Subject: "run", StartTick: 150, EndTick: 160}) {
		t.Fatalf("brownout windows = %+v", rp.Brownouts)
	}
	if rp.ShedEvents != 2 || rp.ShedPlayerTicks != 1300 {
		t.Fatalf("sheds = %d / %.1f player-ticks", rp.ShedEvents, rp.ShedPlayerTicks)
	}
	if rp.DeferredFailovers != 1 {
		t.Fatalf("deferred = %d", rp.DeferredFailovers)
	}

	var buf bytes.Buffer
	if err := rp.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## Failure domains",
		"| eu | 100-140 |",
		"| run | 150-160 |",
		"brownout shedding: 2 shed events, 1300.0 player-ticks deliberately unserved",
		"failover storm control: 1 failovers deferred",
		"WARNING: 1 episode(s) unclassified",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

// TestClassifierDomainConsistencyChecks: the gated cross-checks fire
// only when the machinery fired, and flag count drift.
func TestClassifierDomainConsistencyChecks(t *testing.T) {
	md := &MetricsDoc{
		Resilience: &core.Resilience{RegionBlackouts: 1, FailoversDeferred: 1},
		Recorder:   RecorderStats{Total: uint64(len(chaosStream()))},
	}
	rp := Analyze(chaosStream(), md, nil)
	find := func(name string) *Check {
		for i := range rp.Checks {
			if rp.Checks[i].Name == name {
				return &rp.Checks[i]
			}
		}
		return nil
	}
	for _, name := range []string{
		"region blackout events match Resilience.RegionBlackouts",
		"deferral events match Resilience.FailoversDeferred",
	} {
		c := find(name)
		if c == nil {
			t.Fatalf("check %q missing", name)
		}
		if !c.OK {
			t.Fatalf("check %q failed: want %s, got %s", name, c.Want, c.Got)
		}
	}

	// Drift is flagged.
	md.Resilience.RegionBlackouts = 3
	rp = Analyze(chaosStream(), md, nil)
	for i := range rp.Checks {
		if rp.Checks[i].Name == "region blackout events match Resilience.RegionBlackouts" {
			if rp.Checks[i].OK {
				t.Fatal("count drift not flagged")
			}
			return
		}
	}
	t.Fatal("drifted check missing")
}

// TestClassifierQuietStreamUnchanged: a stream without failure-domain
// events must produce no domain windows, no gated checks, and no
// Failure domains section — the property the golden report rests on.
func TestClassifierQuietStreamUnchanged(t *testing.T) {
	events := []obs.Event{
		{Tick: 10, Kind: obs.EventOutage, Subject: "nyc"},
		{Tick: 12, Kind: obs.EventBreach, Subject: "run", Value: -5},
		{Tick: 20, Kind: obs.EventRecover, Subject: "nyc"},
	}
	md := &MetricsDoc{
		Resilience: &core.Resilience{},
		Recorder:   RecorderStats{Total: 3},
	}
	rp := Analyze(events, md, nil)
	if len(rp.Blackouts) != 0 || len(rp.Brownouts) != 0 || rp.Unclassified != 0 {
		t.Fatalf("quiet stream grew domain state: %+v", rp)
	}
	for _, c := range rp.Checks {
		if strings.Contains(c.Name, "Resilience.RegionBlackouts") ||
			strings.Contains(c.Name, "Resilience.FailoversDeferred") {
			t.Fatalf("gated check %q fired on a quiet stream", c.Name)
		}
	}
	var buf bytes.Buffer
	if err := rp.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Failure domains") {
		t.Fatal("Failure domains section rendered for a quiet stream")
	}
}
