// Package stats implements the descriptive statistics the paper's
// workload analysis relies on (Section III): order statistics and
// quartiles, interquartile range, autocorrelation, empirical CDFs, and
// small summary helpers used across the experiment runners.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty data")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	// Kahan summation: the provisioning metrics sum tens of thousands
	// of per-tick terms and plain accumulation visibly drifts.
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance, or NaN for empty input.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear
// interpolation between order statistics (type-7, the common default).
// It returns NaN for empty input and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQR returns the interquartile range Q3 - Q1 (Section III-C uses it
// to characterize the load variability between server groups).
func IQR(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25)
}

// FiveNum is a five-number summary plus the mean, as used by the
// predictor-timing figure (Fig. 6).
type FiveNum struct {
	Min, Q1, Median, Q3, Max, Mean float64
}

// Summary returns the five-number summary of xs.
func Summary(xs []float64) (FiveNum, error) {
	if len(xs) == 0 {
		return FiveNum{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return FiveNum{
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(xs),
	}, nil
}

// ACF returns the autocorrelation function of xs for lags 0..maxLag
// inclusive (Fig. 3 bottom uses it to expose the 24-hour diurnal
// cycle). The result has length maxLag+1 with ACF[0] == 1 whenever the
// series has non-zero variance. For constant series it returns zeros
// beyond lag 0.
func ACF(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]float64, maxLag+1)
	m := Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	if denom == 0 {
		out[0] = 1
		return out
	}
	for lag := 0; lag <= maxLag; lag++ {
		var num float64
		for i := 0; i+lag < n; i++ {
			num += (xs[i] - m) * (xs[i+lag] - m)
		}
		out[lag] = num / denom
	}
	return out
}

// LinearFit returns the least-squares line y = slope*x + intercept
// through the points, plus the coefficient of determination R². It
// returns NaNs for fewer than two points or zero x-variance.
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return math.NaN(), math.NaN(), math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}

// ArgMax returns the index of the maximum of xs in [from, to) and the
// value itself. It returns -1 for an empty range.
func ArgMax(xs []float64, from, to int) (int, float64) {
	if from < 0 {
		from = 0
	}
	if to > len(xs) {
		to = len(xs)
	}
	if from >= to {
		return -1, math.NaN()
	}
	idx, best := from, xs[from]
	for i := from + 1; i < to; i++ {
		if xs[i] > best {
			idx, best = i, xs[i]
		}
	}
	return idx, best
}

// ArgMin is the mirror of ArgMax.
func ArgMin(xs []float64, from, to int) (int, float64) {
	if from < 0 {
		from = 0
	}
	if to > len(xs) {
		to = len(xs)
	}
	if from >= to {
		return -1, math.NaN()
	}
	idx, best := from, xs[from]
	for i := from + 1; i < to; i++ {
		if xs[i] < best {
			idx, best = i, xs[i]
		}
	}
	return idx, best
}
