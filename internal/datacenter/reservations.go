package datacenter

import (
	"fmt"
	"time"
)

// Advance reservations implement the second service model of
// Section II-B: "depending on the data center's service model, either
// best-effort or based on advance reservations, resource requests are
// queued or immediately fitted in the schedule". A reservation books a
// bulk allocation for a *future* window; the center admits it only if
// the window's peak usage — live leases still overlapping it plus
// other reservations — leaves room.

// ErrPastWindow rejects reservations that start in the past relative
// to the center's clock (use Lease for immediate needs).
var ErrPastWindow = fmt.Errorf("datacenter: reservation window already started")

// Reserve books the request (rounded up to the policy's bulks) for the
// window [start, start+TimeBulk). The reservation is billed at grant
// time like any lease. It fails with ErrInsufficient when the window's
// peak usage would exceed capacity.
func (c *Center) Reserve(req Vector, start time.Time, tag string) (*Lease, error) {
	if c.Offline() {
		return nil, ErrOffline
	}
	if start.Before(c.watermark) {
		return nil, ErrPastWindow
	}
	rounded := c.Policy.RoundUp(req)
	if rounded.IsZero() {
		return nil, fmt.Errorf("datacenter: empty reservation")
	}
	end := start.Add(c.Policy.TimeBulk)
	peak := c.maxUsageDuring(start, end)
	if !rounded.Add(peak).FitsWithin(c.EffectiveCapacity()) {
		return nil, ErrInsufficient
	}
	l := &Lease{
		Center:  c,
		Alloc:   rounded,
		Start:   start,
		Expires: end,
		Tag:     tag,
	}
	c.reserved = append(c.reserved, l)
	c.totalCost += c.Prices().LeaseCost(l)
	return l, nil
}

// Reservations returns the number of not-yet-activated reservations.
func (c *Center) Reservations() int { return len(c.reserved) }

// maxUsageDuring returns the element-wise peak resource usage over the
// window [s, e): live leases that still overlap it plus reservations
// whose windows intersect it. Usage within the window only changes at
// lease start instants, so evaluating at s and at every start inside
// (s, e) is exact.
func (c *Center) maxUsageDuring(s, e time.Time) Vector {
	points := []time.Time{s}
	for _, l := range c.reserved {
		if l.Start.After(s) && l.Start.Before(e) {
			points = append(points, l.Start)
		}
	}
	var peak Vector
	for _, t := range points {
		var usage Vector
		for _, l := range c.leases {
			if l.Active(t) {
				usage = usage.Add(l.Alloc)
			}
		}
		for _, l := range c.reserved {
			if l.Active(t) {
				usage = usage.Add(l.Alloc)
			}
		}
		peak = peak.Max(usage)
	}
	return peak
}

// activateReservations moves reservations whose windows have begun
// into the live lease set (and drops any that already expired without
// ever being observed live). Called from Expire, which every consumer
// runs once per tick.
func (c *Center) activateReservations(now time.Time) {
	if len(c.reserved) == 0 {
		return
	}
	pending := c.reserved[:0]
	for _, l := range c.reserved {
		switch {
		case !now.Before(l.Expires):
			// Whole window already in the past: nothing to activate.
			l.released = true
		case !now.Before(l.Start):
			c.leases = append(c.leases, l)
			c.allocated = c.allocated.Add(l.Alloc)
		default:
			pending = append(pending, l)
		}
	}
	c.reserved = pending
}
