package operator

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"
	"time"

	"mmogdc/internal/datacenter"
	"mmogdc/internal/ecosystem"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
)

// TestObserveRejectsZoneCountMismatchBeforeSideEffects is the
// regression test for the silent-mismatch bug: a snapshot with the
// wrong zone count must be rejected up front, leaving the tick
// counter, metrics, lease book, and LOCF buffer untouched.
func TestObserveRejectsZoneCountMismatchBeforeSideEffects(t *testing.T) {
	op := testOperator(t, 10)
	if err := op.Observe(t0, []float64{800, 600}); err != nil {
		t.Fatal(err)
	}
	before := op.Metrics()
	beforeLoads := append([]float64(nil), op.lastLoads...)
	beforeLeases := len(op.leases)
	for _, bad := range [][]float64{{800}, {800, 600, 400}, nil} {
		if err := op.Observe(t0.Add(2*time.Minute), bad); err == nil {
			t.Fatalf("zone count %d accepted (want 2)", len(bad))
		}
	}
	if got := op.Metrics(); got != before {
		t.Fatalf("rejected snapshots mutated metrics: %+v -> %+v", before, got)
	}
	if !reflect.DeepEqual(op.lastLoads, beforeLoads) {
		t.Fatalf("rejected snapshots mutated LOCF buffer: %v", op.lastLoads)
	}
	if len(op.leases) != beforeLeases {
		t.Fatal("rejected snapshots mutated the lease book")
	}
	// A valid snapshot still works afterwards.
	if err := op.Observe(t0.Add(2*time.Minute), []float64{810, 590}); err != nil {
		t.Fatal(err)
	}
	if op.Metrics().Ticks != 2 {
		t.Fatalf("ticks = %d", op.Metrics().Ticks)
	}
}

func TestObserveRejectsEmptyFirstSnapshot(t *testing.T) {
	op := testOperator(t, 10)
	if err := op.Observe(t0, nil); err == nil {
		t.Fatal("empty first snapshot accepted")
	}
	if op.Metrics().Ticks != 0 {
		t.Fatal("rejected first snapshot advanced the tick counter")
	}
}

func checkpointConfig(m *ecosystem.Matcher) Config {
	return Config{
		Game:      mmog.NewGame("ckpt", mmog.GenreMMORPG),
		Origin:    geo.London,
		Predictor: predict.NewAR(3, 6, 32),
		Matcher:   m,
	}
}

func runTicks(t *testing.T, op *Operator, from, n int, loads []float64) time.Time {
	t.Helper()
	now := t0.Add(time.Duration(from) * 2 * time.Minute)
	for i := 0; i < n; i++ {
		if err := op.Observe(now, loads); err != nil {
			t.Fatal(err)
		}
		now = now.Add(2 * time.Minute)
	}
	return now
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	m := testMatcher(20)
	cfg := checkpointConfig(m)
	op, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := runTicks(t, op, 0, 20, []float64{700, 500, 300})

	var buf bytes.Buffer
	if err := op.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, rec, err := Restore(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// The ecosystem is untouched since the checkpoint: every lease is
	// still live and must be adopted, nothing lost, nothing orphaned.
	if rec.Adopted == 0 || rec.Lost != 0 || rec.Orphaned != 0 {
		t.Fatalf("reconciliation = %+v", rec)
	}
	if got, want := restored.Metrics(), op.Metrics(); got != want {
		t.Fatalf("restored metrics %+v, want %+v", got, want)
	}
	fa, fb := op.Forecast(), restored.Forecast()
	for i := range fa {
		if math.Float64bits(fa[i]) != math.Float64bits(fb[i]) {
			t.Fatalf("forecast[%d] %v vs %v", i, fa[i], fb[i])
		}
	}
	// The restored operator keeps provisioning cleanly.
	for i := 0; i < 10; i++ {
		if err := restored.Observe(now, []float64{700, 500, 300}); err != nil {
			t.Fatal(err)
		}
		now = now.Add(2 * time.Minute)
	}
	if s := restored.Metrics().AvgShortfall; s > 0.1 {
		t.Fatalf("restored operator shortfall = %v", s)
	}
}

func TestCheckpointBeforeFirstObserve(t *testing.T) {
	m := testMatcher(5)
	cfg := checkpointConfig(m)
	op, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := op.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, _, err := Restore(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// The zone count is still unfixed; the first Observe decides it.
	if err := restored.Observe(t0, []float64{100, 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsDamage(t *testing.T) {
	m := testMatcher(20)
	cfg := checkpointConfig(m)
	op, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runTicks(t, op, 0, 10, []float64{600, 400})
	var buf bytes.Buffer
	if err := op.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	if _, _, err := Restore(cfg, bytes.NewReader(blob[:len(blob)/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	for _, i := range []int{10, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x04
		if _, _, err := Restore(cfg, bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	// A checkpoint from another game must be refused.
	other := cfg
	other.Game = mmog.NewGame("other-game", mmog.GenreMMORPG)
	if _, _, err := Restore(other, bytes.NewReader(blob)); err == nil {
		t.Fatal("checkpoint for a different game accepted")
	}
}

func TestRestoreReconcilesLostAndOrphanedLeases(t *testing.T) {
	var b datacenter.Vector
	b[datacenter.CPU] = 0.05
	p := datacenter.HostingPolicy{Name: "fine", Bulk: b, TimeBulk: time.Hour}
	alpha := datacenter.NewCenter("alpha", geo.London, 8, p)
	beta := datacenter.NewCenter("beta", geo.London, 40, p)
	m := ecosystem.NewMatcher([]*datacenter.Center{alpha, beta})
	cfg := checkpointConfig(m)
	op, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Load exceeding alpha's capacity spreads leases over both centers.
	now := runTicks(t, op, 0, 8, []float64{9000, 7000})
	var buf bytes.Buffer
	if err := op.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// After the checkpoint: the doomed operator keeps working (orphan
	// leases the checkpoint cannot know), then alpha dies (checkpointed
	// leases that did not survive).
	runTicksAt(t, op, now, 2, []float64{12000, 9000})
	orphans := 0
	for _, c := range m.Centers() {
		for range c.LeasesByTag(cfg.Game.Name) {
			orphans++
		}
	}
	alpha.Fail()

	restored, rec, err := Restore(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Adopted == 0 {
		t.Fatalf("no leases adopted: %+v", rec)
	}
	if rec.Lost == 0 {
		t.Fatalf("alpha's failure lost no checkpointed leases: %+v", rec)
	}
	if rec.Orphaned == 0 {
		t.Fatalf("post-checkpoint leases were not orphaned: %+v", rec)
	}
	if rec.Adopted+rec.Orphaned > orphans+rec.Adopted {
		t.Fatalf("accounting mismatch: %+v vs %d live", rec, orphans)
	}
	// Orphans are gone from the ecosystem: only adopted leases remain.
	live := 0
	for _, c := range m.Centers() {
		live += len(c.LeasesByTag(cfg.Game.Name))
	}
	if live != rec.Adopted {
		t.Fatalf("ecosystem holds %d game leases after restore, want %d adopted", live, rec.Adopted)
	}
	// The tombstones steer the first tick's failover away from alpha.
	now = now.Add(4 * time.Minute)
	if err := restored.Observe(now, []float64{9000, 7000}); err != nil {
		t.Fatal(err)
	}
	if restored.Metrics().Failovers == 0 {
		t.Fatal("restore after center loss triggered no failover")
	}
	if got := alpha.Allocated()[datacenter.CPU]; got != 0 {
		t.Fatalf("failover re-leased %v CPU from the dead center", got)
	}
}

func runTicksAt(t *testing.T, op *Operator, now time.Time, n int, loads []float64) time.Time {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := op.Observe(now, loads); err != nil {
			t.Fatal(err)
		}
		now = now.Add(2 * time.Minute)
	}
	return now
}

func TestShutdownReleasesLeasesAndFlushesCheckpoint(t *testing.T) {
	m := testMatcher(20)
	cfg := checkpointConfig(m)
	op, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := runTicks(t, op, 0, 12, []float64{900, 700})
	if m.Centers()[0].Allocated()[datacenter.CPU] == 0 {
		t.Fatal("setup leased nothing")
	}
	ticksBefore := op.Metrics().Ticks

	var final bytes.Buffer
	if err := op.Shutdown(now, &final); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Centers() {
		if got := c.Allocated()[datacenter.CPU]; got != 0 {
			t.Fatalf("center %s still holds %v CPU after shutdown", c.Name, got)
		}
		if n := len(c.LeasesByTag(cfg.Game.Name)); n != 0 {
			t.Fatalf("center %s still lists %d game leases", c.Name, n)
		}
	}
	restored, rec, err := Restore(cfg, &final)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Adopted != 0 || rec.Lost != 0 || rec.Orphaned != 0 {
		t.Fatalf("clean-shutdown checkpoint reconciled %+v, want zeros", rec)
	}
	if restored.Metrics().Ticks != ticksBefore {
		t.Fatalf("restored ticks = %d, want %d", restored.Metrics().Ticks, ticksBefore)
	}
	if len(restored.leases) != 0 {
		t.Fatal("clean-shutdown checkpoint restored a lease book")
	}
}

func BenchmarkCheckpoint(b *testing.B) {
	m := testMatcher(200)
	cfg := Config{
		Game:      mmog.NewGame("bench", mmog.GenreMMORPG),
		Origin:    geo.London,
		Predictor: predict.NewAR(4, 8, 64),
		Matcher:   m,
	}
	op, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	loads := make([]float64, 50)
	for i := range loads {
		loads[i] = 400 + 10*float64(i)
	}
	now := t0
	for i := 0; i < 64; i++ {
		if err := op.Observe(now, loads); err != nil {
			b.Fatal(err)
		}
		now = now.Add(2 * time.Minute)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op.Checkpoint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
