#!/usr/bin/env sh
# SLO + tracing smoke: the request-scoped observability stack end to
# end, single-CPU cheap.
#
#   1. mmogd runs with an armed breach-rate burn alert and 100% grant
#      rejection (a forced, unambiguous SLA-breach episode) plus
#      tracing; mmogload drives it with traceparent propagation and a
#      client-side trace.
#   2. The flight recorder must show the alert firing (slo_alert).
#   3. mmogaudit merges the two traces, scores the alert against the
#      breach episodes, and must report perfect precision/recall with
#      detection lag <= 2 ticks — gated by -fail-on-missed-breach.
#   4. A control daemon with identical faults but NO rules must produce
#      a byte-identical /v1/forecast answer (write-only telemetry).
#
# Latency numbers are reported, never gated — wall-clock on a loaded
# single-CPU box is noise (see scripts/benchgate for the same stance).
set -eu
cd "$(dirname "$0")/.."

d=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$d"
}
trap cleanup EXIT

go build -race -o "$d/mmogd" ./cmd/mmogd
go build -o "$d/mmogload" ./cmd/mmogload
go build -o "$d/mmogaudit" ./cmd/mmogaudit
go build -o "$d/scrape" ./scripts/scrape

if command -v curl > /dev/null 2>&1; then
    fetch() { curl -sf "$1"; }
else
    fetch() { "$d/scrape" "$1"; }
fi

start_daemon() {
    errfile=$1
    shift
    "$d/mmogd" -addr 127.0.0.1:0 "$@" 2> "$errfile" &
    pid=$!
    i=0
    while ! grep -q '^daemon: serving http on ' "$errfile" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "slo-smoke: daemon never came up" >&2
            cat "$errfile" >&2
            exit 1
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "slo-smoke: daemon died at startup" >&2
            cat "$errfile" >&2
            exit 1
        fi
        sleep 0.1
    done
    addr=$(sed -n 's/^daemon: serving http on //p' "$errfile" | head -n 1)
}

# Hot config: every grant attempt rejected (the forced breach) and a
# breach-rate burn alert over a 3s/12s window pair on the 1s virtual
# tick — both windows saturate within a few ticks.
cat > "$d/hot.json" <<'EOF'
{
  "tick_seconds": 1,
  "observe_timeout_ms": 2000,
  "fault_reject_prob": 1,
  "fault_seed": 1,
  "slo_rules": [
    {
      "name": "breach-burn",
      "signal": "breach_rate",
      "objective": 0.01,
      "short_window_s": 3,
      "long_window_s": 12,
      "burn_factor": 1
    }
  ]
}
EOF

# --- Phase 1: traced load against the armed, faulted daemon -----------
start_daemon "$d/p1.err" -games live -config "$d/hot.json" \
    -obs-events "$d/events.jsonl" -trace-out "$d/server.trace"
"$d/mmogload" -addr "$addr" -game live -grid 6 -entities 400 \
    -interval 10ms -n 30 -rate 1 \
    -trace-out "$d/client.trace" -o "$d/load.json" > "$d/load.out"
grep -q 'accepted=30' "$d/load.out"
grep -q 'rtt_ms\[accepted\] n=30' "$d/load.out"
fetch "http://$addr/v1/forecast?game=live" > "$d/forecast.json"
# Runtime self-telemetry is on by default and must be on /metrics.
fetch "http://$addr/metrics" > "$d/metrics.txt"
grep -q '^mmogdc_runtime_heap_bytes ' "$d/metrics.txt"
grep -Eq '^mmogdc_runtime_gc_pause_seconds\{q="0.99"\} ' "$d/metrics.txt"
grep -Eq '^mmogdc_slo_alert_active\{rule="breach-burn"\} 1$' "$d/metrics.txt"
kill -TERM "$pid"
wait "$pid" || { echo "slo-smoke: drain failed" >&2; cat "$d/p1.err" >&2; exit 1; }
pid=""
grep -q '^daemon: drain complete' "$d/p1.err"

# --- Phase 2: the alert fired into the flight recorder ----------------
grep -q '"kind":"slo_alert"' "$d/events.jsonl"
grep -q '"detail":"firing"' "$d/events.jsonl"

# --- Phase 3: cross-process audit with the alert-quality gate ---------
"$d/mmogaudit" -events "$d/events.jsonl" \
    -trace "$d/server.trace" -client-trace "$d/client.trace" \
    -merged-trace-out "$d/merged.trace" \
    -load "$d/load.json" -fail-on-missed-breach -o "$d/audit.md"
grep -q '^# mmogdc provisioning audit' "$d/audit.md"
grep -q 'precision 1.000  recall 1.000' "$d/audit.md"
grep -Eq 'detection lag ticks: mean [0-9.]+  max [0-2]$' "$d/audit.md"
# 30 observes match end to end; the server count also includes the
# instrumented GETs the smoke itself issued (forecast), so only the
# client side is pinned.
grep -Eq 'matched requests: 30 \(client 30, server [0-9]+\)' "$d/audit.md"
grep -q 'daemon.queue_wait' "$d/audit.md"
grep -q '"traceEvents"' "$d/merged.trace"
# The merged timeline carries both processes: client spans on pid 2,
# server spans on pid 1.
grep -q '"name":"client.request"' "$d/merged.trace"
grep -q '"name":"daemon.request"' "$d/merged.trace"

# --- Phase 4: telemetry is write-only — same run, no rules, no
# tracing, byte-identical forecast ------------------------------------
cat > "$d/hot_off.json" <<'EOF'
{
  "tick_seconds": 1,
  "observe_timeout_ms": 2000,
  "fault_reject_prob": 1,
  "fault_seed": 1
}
EOF
start_daemon "$d/p4.err" -games live -config "$d/hot_off.json" -runtime-metrics=false
"$d/mmogload" -addr "$addr" -game live -grid 6 -entities 400 \
    -interval 10ms -n 30 -rate 1 > /dev/null
fetch "http://$addr/v1/forecast?game=live" > "$d/forecast_off.json"
kill -TERM "$pid"
wait "$pid" || true
pid=""
cmp "$d/forecast.json" "$d/forecast_off.json"

echo "slo-smoke: ok"
