// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout: a map from benchmark name to its
// ns/op and (when -benchmem is on) allocs/op and B/op. encoding/json
// sorts map keys, so the output is deterministic modulo the measured
// numbers — good enough to diff run-over-run in BENCH_core.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Benchmark lines look like:
//
//	BenchmarkCoreRun/workers=4-8   12   95054187 ns/op   1234 B/op   56 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	results := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := result{NsPerOp: ns}
		if m[3] != "" {
			if b, err := strconv.ParseInt(m[3], 10, 64); err == nil {
				r.BytesPerOp = &b
			}
		}
		if m[4] != "" {
			if a, err := strconv.ParseInt(m[4], 10, 64); err == nil {
				r.AllocsPerOp = &a
			}
		}
		results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
