// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment is a named runner producing a
// plain-text report; cmd/experiments exposes them on the command line
// and the repository's benchmark suite wraps them as testing.B
// targets. The per-experiment index in DESIGN.md maps experiment IDs
// to paper artifacts.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mmogdc/internal/mmog"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

// Options tune experiment size; the zero value runs the full
// paper-scale configuration.
type Options struct {
	// Days is the provisioning-trace length; defaults to 14 (the
	// paper's two weeks).
	Days int
	// Seed drives every stochastic component; defaults to 42.
	Seed uint64
	// Quick shrinks workloads for fast test runs.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Days == 0 {
		o.Days = 14
		if o.Quick {
			o.Days = 2
		}
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Spec describes one runnable experiment.
type Spec struct {
	// ID is the index key ("tab05", "fig08", ...).
	ID string
	// Artifact names the paper artifact it regenerates.
	Artifact string
	// Title is a one-line description.
	Title string
	// Run produces the report.
	Run func(Options) (string, error)
}

// Registry lists every experiment in paper order.
func Registry() []Spec {
	return []Spec{
		{ID: "fig01", Artifact: "Figure 1", Title: "MMORPG players over time", Run: Fig01},
		{ID: "fig02", Artifact: "Figure 2", Title: "Global active concurrent players with population events", Run: Fig02},
		{ID: "fig03", Artifact: "Figure 3", Title: "Regional workload: load range, IQR, autocorrelation", Run: Fig03},
		{ID: "fig04", Artifact: "Figure 4", Title: "Packet length and IAT CDFs for eight session traces", Run: Fig04},
		{ID: "tab01", Artifact: "Table I", Title: "Emulator configurations and generated data sets", Run: Tab01},
		{ID: "fig05", Artifact: "Figure 5", Title: "Prediction error of seven algorithms on eight data sets", Run: Fig05},
		{ID: "fig06", Artifact: "Figure 6", Title: "Per-prediction latency of the prediction methods", Run: Fig06},
		{ID: "tab05", Artifact: "Table V", Title: "Dynamic allocation under six prediction algorithms", Run: Tab05},
		{ID: "fig07", Artifact: "Figure 7", Title: "Cumulative significant under-allocation events per predictor", Run: Fig07},
		{ID: "fig08", Artifact: "Figure 8", Title: "Over-allocation: static vs dynamic provisioning", Run: Fig08},
		{ID: "tab06", Artifact: "Table VI", Title: "Static vs dynamic across five interaction types", Run: Tab06},
		{ID: "fig09", Artifact: "Figure 9", Title: "Over/under-allocation time series for three update models", Run: Fig09},
		{ID: "fig10", Artifact: "Figure 10", Title: "Cumulative events for five update models", Run: Fig10},
		{ID: "fig11", Artifact: "Figure 11", Title: "Impact of the CPU resource bulk", Run: Fig11},
		{ID: "fig12", Artifact: "Figure 12", Title: "Impact of the time bulk", Run: Fig12},
		{ID: "fig13", Artifact: "Figure 13", Title: "Allocation distribution by latency tolerance", Run: Fig13},
		{ID: "fig14", Artifact: "Figure 14", Title: "Per-center allocation at Very far tolerance", Run: Fig14},
		{ID: "tab07", Artifact: "Table VII", Title: "Concurrent MMOG mixes", Run: Tab07},
	}
}

// All returns the paper experiments followed by the extensions.
func All() []Spec {
	return append(Registry(), Extensions()...)
}

// ByID returns the experiment (or extension) with the given ID.
func ByID(id string) (Spec, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// ---- shared setup ----

// provisioningTrace is the workload of the Section V experiments: the
// first Options.Days days of the RuneScape-like trace.
func provisioningTrace(o Options) *trace.Dataset {
	cfg := trace.Config{Seed: o.Seed, Days: o.Days}
	if o.Quick {
		cfg.Regions = []trace.Region{
			{ID: 0, Name: "Europe", Location: trace.DefaultRegions()[0].Location, Groups: 10},
			{ID: 1, Name: "US East Coast", Location: trace.DefaultRegions()[1].Location, UTCOffsetHours: -5, Groups: 6},
		}
	}
	return trace.Generate(cfg)
}

// shadowCollected is the offline data-collection phase for the neural
// predictor: an earlier observation period of the same game (same
// configuration, different seed).
func shadowCollected(o Options) [][]float64 {
	days := 2
	if o.Quick {
		days = 1
	}
	cfg := trace.Config{Seed: o.Seed + 1, Days: days}
	if o.Quick {
		cfg.Regions = []trace.Region{
			{ID: 0, Name: "Europe", Location: trace.DefaultRegions()[0].Location, Groups: 10},
		}
	}
	ds := trace.Generate(cfg)
	out := make([][]float64, len(ds.Groups))
	for i, g := range ds.Groups {
		out[i] = g.Load.Values
	}
	return out
}

// neuralFactory pretrains the paper's neural predictor on the shadow
// trace.
func neuralFactory(o Options) predict.Factory {
	tc := predict.PaperTrainConfig(o.Seed + 2)
	if o.Quick {
		tc.MaxEras = 10
	}
	f, _ := predict.PretrainShared(predict.PaperNeuralConfig(o.Seed+3), shadowCollected(o), 0.8, tc)
	return f
}

// standardGame is the RuneScape-like O(n^2) game of Sections V-B/V-D.
func standardGame() *mmog.Game {
	return mmog.NewGame("RuneScape-like", mmog.GenreMMORPG)
}

// ---- rendering helpers ----

// table renders rows of columns with aligned widths.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// f2 formats a float with two decimals. Undefined metrics (NaN, e.g.
// core.Result.AvgOverPct for a resource that never saw load) render
// as "n/a" instead of leaking "NaN" into report text.
func f2(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}

// f3 formats a float with three decimals; NaN renders as "n/a".
func f3(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}

// sortedKeys returns the map's keys sorted.
func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
