package predict

import (
	"math"
)

// AR is an autoregressive predictor of order p, the class of "more
// elaborated prediction algorithms" Section IV-A discusses: it fits
// an AR(p) model to the observed history and predicts the next sample
// from the last p values. The paper argues such methods are "more time
// consuming and resource intensive, thus being ill suited for MMOGs";
// this implementation exists to quantify that trade-off — the
// coefficients are re-estimated from the sample autocovariances
// (Yule–Walker equations, solved by Levinson–Durbin recursion) every
// RefitInterval observations, which is exactly the recurring cost the
// paper objects to.
type AR struct {
	order         int
	refitInterval int
	history       []float64
	maxHistory    int
	coeffs        []float64
	mean          float64
	sinceRefit    int
	fitted        bool
	// Levinson–Durbin scratch (autocovariances and the two recursion
	// rows), preallocated so the recurring refit — the very cost the
	// paper objects to — at least does not allocate.
	rScratch, aScratch, prevScratch []float64
}

// NewAR returns an AR(p) predictor factory that refits every
// refitInterval observations over a bounded history window.
func NewAR(order, refitInterval, maxHistory int) Factory {
	if order < 1 {
		order = 1
	}
	if refitInterval < 1 {
		refitInterval = 1
	}
	if maxHistory < 4*order {
		maxHistory = 4 * order
	}
	return func() Predictor {
		return &AR{
			order:         order,
			refitInterval: refitInterval,
			maxHistory:    maxHistory,
			// Observe lets the history momentarily reach maxHistory+1
			// before trimming; capacity covers that peak so appends
			// never reallocate.
			history:     make([]float64, 0, maxHistory+1),
			coeffs:      make([]float64, order),
			rScratch:    make([]float64, order+1),
			aScratch:    make([]float64, order+1),
			prevScratch: make([]float64, order+1),
		}
	}
}

// Name implements Predictor.
func (p *AR) Name() string { return "AR" }

// Observe implements Predictor.
func (p *AR) Observe(v float64) {
	p.history = append(p.history, v)
	if len(p.history) > p.maxHistory {
		// Drop the oldest half to amortize the copy.
		keep := p.maxHistory / 2
		copy(p.history, p.history[len(p.history)-keep:])
		p.history = p.history[:keep]
	}
	p.sinceRefit++
	if p.sinceRefit >= p.refitInterval && len(p.history) >= 3*p.order {
		p.refit()
		p.sinceRefit = 0
	}
}

// Predict implements Predictor.
func (p *AR) Predict() float64 {
	n := len(p.history)
	if n == 0 {
		return 0
	}
	if !p.fitted || n < p.order {
		return p.history[n-1]
	}
	pred := p.mean
	for i := 0; i < p.order; i++ {
		pred += p.coeffs[i] * (p.history[n-1-i] - p.mean)
	}
	if pred < 0 {
		pred = 0
	}
	return pred
}

// refit re-estimates the AR coefficients with Yule–Walker /
// Levinson–Durbin over the current history window.
func (p *AR) refit() {
	n := len(p.history)
	var sum float64
	for _, v := range p.history {
		sum += v
	}
	mean := sum / float64(n)

	// Sample autocovariances r[0..order], into reused scratch (every
	// element is written before being read).
	r := p.rScratch
	for lag := 0; lag <= p.order; lag++ {
		var acc float64
		for i := 0; i+lag < n; i++ {
			acc += (p.history[i] - mean) * (p.history[i+lag] - mean)
		}
		r[lag] = acc / float64(n)
	}
	if r[0] <= 1e-12 {
		// Constant signal: predict the mean.
		for i := range p.coeffs {
			p.coeffs[i] = 0
		}
		p.mean = mean
		p.fitted = true
		return
	}

	// Levinson–Durbin recursion. a must start zeroed; prev is fully
	// overwritten by the copy before any read.
	a := p.aScratch
	for i := range a {
		a[i] = 0
	}
	prev := p.prevScratch
	e := r[0]
	for k := 1; k <= p.order; k++ {
		acc := r[k]
		for j := 1; j < k; j++ {
			acc -= a[j] * r[k-j]
		}
		if e <= 1e-12 {
			break
		}
		kappa := acc / e
		copy(prev, a)
		a[k] = kappa
		for j := 1; j < k; j++ {
			a[j] = prev[j] - kappa*prev[k-j]
		}
		e *= 1 - kappa*kappa
	}
	for i := 1; i <= p.order; i++ {
		c := a[i]
		// Guard against numerically unstable fits.
		if math.IsNaN(c) || math.IsInf(c, 0) {
			c = 0
		}
		p.coeffs[i-1] = c
	}
	p.mean = mean
	p.fitted = true
}

// SeasonalNaive predicts the value observed one season (e.g. one day =
// 720 two-minute samples) ago, falling back to the last value until a
// full season has been seen. It is the natural "explanatory"
// alternative for strongly diurnal MMOG load (Section IV-A's
// explanatory models, reduced to their seasonal essence) — accurate
// once a full cycle is recorded, but blind to trend breaks such as the
// Fig. 2 population events.
type SeasonalNaive struct {
	period int
	buf    []float64
	n      int
}

// NewSeasonalNaive returns a seasonal-naive factory with the given
// period in samples.
func NewSeasonalNaive(period int) Factory {
	if period < 1 {
		period = 1
	}
	return func() Predictor {
		return &SeasonalNaive{period: period, buf: make([]float64, period)}
	}
}

// Name implements Predictor.
func (p *SeasonalNaive) Name() string { return "Seasonal naive" }

// Observe implements Predictor.
func (p *SeasonalNaive) Observe(v float64) {
	p.buf[p.n%p.period] = v
	p.n++
}

// Predict implements Predictor.
func (p *SeasonalNaive) Predict() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < p.period {
		return p.buf[(p.n-1)%p.period]
	}
	// The next step's seasonal slot is p.n % period (one season ago).
	return p.buf[p.n%p.period]
}
