package predict

import (
	"mmogdc/internal/neural"
	"mmogdc/internal/xrand"
)

// NeuralConfig parameterizes the neural predictor.
type NeuralConfig struct {
	// Seed initializes the network weights deterministically.
	Seed uint64
	// Window is the number of past samples fed to the network; the
	// paper's structure is (6, 3, 1).
	Window int
	// Hidden is the hidden-layer width.
	Hidden int
	// Capacity normalizes inputs into the network's working range;
	// use the signal's plausible maximum (e.g. zone capacity).
	Capacity float64
	// LearningRate and Momentum drive the online weight updates.
	LearningRate float64
	Momentum     float64
	// Degree of the polynomial de-noising preprocessor; negative
	// disables preprocessing.
	Degree int
	// WarmupSteps delays online training until this many samples have
	// been observed (the window must fill first regardless).
	WarmupSteps int
	// OutputScale multiplies training targets (and divides network
	// outputs) so the regression target has a healthy magnitude even
	// when the normalized signal moves by tiny deltas. PretrainShared
	// auto-calibrates it from the collected data when zero; otherwise
	// it defaults to 1.
	OutputScale float64
	// OnlineLearningRate is the learning rate used for the per-sample
	// updates during deployment; it defaults to LearningRate. Use a
	// smaller value to keep a converged pretrained network from being
	// perturbed by noisy single-sample updates.
	OnlineLearningRate float64
	// ErrorClip bounds the error driving each weight update
	// (Huber-style); zero disables clipping.
	ErrorClip float64
	// Direct makes the network output the next load level directly.
	// The default (false) is residual mode: the network predicts the
	// load *change* over the next interval, added to the last observed
	// value. Residual mode cannot be worse than the last-value
	// predictor when the network outputs zero and learns trends and
	// mean-reversion as corrections; the ablation benchmark compares
	// the two modes.
	Direct bool
}

func (c NeuralConfig) withDefaults() NeuralConfig {
	if c.Window == 0 {
		c.Window = 6
	}
	if c.Hidden == 0 {
		c.Hidden = 3
	}
	if c.Capacity == 0 {
		c.Capacity = 2000
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.Momentum == 0 {
		c.Momentum = 0.5
	}
	if c.WarmupSteps == 0 {
		c.WarmupSteps = c.Window + 1
	}
	if c.OutputScale == 0 {
		c.OutputScale = 1
	}
	if c.OnlineLearningRate == 0 {
		c.OnlineLearningRate = c.LearningRate
	}
	return c
}

// Neural is the paper's neural-network-based predictor: a (6,3,1)
// multi-layer perceptron over a sliding window of the last six
// samples, de-noised by a polynomial preprocessor and normalized by
// the signal capacity. Deployment is online: every new observation
// also provides a training example (previous window -> actual value),
// so the network keeps adapting to the signal — the online analogue of
// the paper's offline data-collection and training-era phases, which
// Pretrain reproduces verbatim.
type Neural struct {
	cfg    NeuralConfig
	net    *neural.MLP
	pre    neural.Preprocessor
	norm   neural.Normalizer
	window []float64 // normalized history, newest last
	seen   int
	// prevIn holds the input window that produced the previous
	// prediction, i.e. the training input once the actual arrives;
	// prevLast is the normalized last value of that window (the
	// baseline the residual is added to).
	prevIn   []float64
	prevLast float64
	havePre  bool
	// targetBuf is the reusable one-element training-target slice; the
	// network does not retain it across calls.
	targetBuf []float64
}

// NewNeural returns a neural predictor factory.
func NewNeural(cfg NeuralConfig) Factory {
	return func() Predictor {
		return MustNeural(cfg)
	}
}

// MustNeural builds a neural predictor, panicking on invalid
// configuration (the configs in this repository are static).
func MustNeural(cfg NeuralConfig) *Neural {
	c := cfg.withDefaults()
	r := xrand.New(c.Seed)
	net, err := neural.NewMLP(r, c.Window, c.Hidden, 1)
	if err != nil {
		panic(err)
	}
	norm, err := neural.NewNormalizer(c.Capacity)
	if err != nil {
		panic(err)
	}
	var pre neural.Preprocessor = neural.Identity{}
	if c.Degree >= 0 {
		// Pointer receiver: ProcessInto reuses the smoother's solver
		// scratch, so each Neural owns its preprocessor exclusively.
		pre = &neural.PolySmoother{Degree: c.Degree}
	}
	return &Neural{
		cfg:       c,
		net:       net,
		pre:       pre,
		norm:      norm,
		window:    make([]float64, 0, c.Window),
		prevIn:    make([]float64, c.Window),
		targetBuf: make([]float64, 1),
	}
}

// Name implements Predictor.
func (p *Neural) Name() string { return "Neural" }

// Observe implements Predictor.
func (p *Neural) Observe(v float64) {
	nv := p.norm.Norm(v)
	// Online training: the window that preceded this observation
	// should have predicted it.
	if p.havePre && p.seen >= p.cfg.WarmupSteps {
		target := nv
		if !p.cfg.Direct {
			target = nv - p.prevLast
		}
		target *= p.cfg.OutputScale
		p.targetBuf[0] = target
		p.net.TrainClipped(p.prevIn, p.targetBuf, p.cfg.OnlineLearningRate, p.cfg.Momentum, p.cfg.ErrorClip)
	}
	if len(p.window) == p.cfg.Window {
		copy(p.window, p.window[1:])
		p.window[len(p.window)-1] = nv
	} else {
		p.window = append(p.window, nv)
	}
	p.seen++
	if len(p.window) == p.cfg.Window {
		p.pre.ProcessInto(p.prevIn, p.window)
		p.prevLast = p.window[len(p.window)-1]
		p.havePre = true
	}
}

// Predict implements Predictor.
func (p *Neural) Predict() float64 {
	if p.seen == 0 {
		return 0
	}
	if !p.havePre {
		// Window not yet full: fall back to the last value.
		return p.norm.Denorm(p.window[len(p.window)-1])
	}
	out := p.net.Forward(p.prevIn)[0] / p.cfg.OutputScale
	if !p.cfg.Direct {
		out += p.prevLast
	}
	return p.norm.Denorm(out)
}

// Pretrain reproduces the paper's two offline phases on a collected
// signal: it builds (window -> next sample) examples from the signal,
// splits them into training and test sets, and runs era-based training
// until convergence. It returns the training report.
func (p *Neural) Pretrain(signal []float64, trainFraction float64, cfg neural.TrainConfig) neural.TrainResult {
	if trainFraction <= 0 || trainFraction > 1 {
		trainFraction = 0.8
	}
	w := p.cfg.Window
	var samples []neural.Sample
	for i := 0; i+w < len(signal); i++ {
		in := make([]float64, w)
		for j := 0; j < w; j++ {
			in[j] = p.norm.Norm(signal[i+j])
		}
		in = p.pre.Process(in)
		target := p.norm.Norm(signal[i+w])
		if !p.cfg.Direct {
			target -= p.norm.Norm(signal[i+w-1])
		}
		samples = append(samples, neural.Sample{
			In:     in,
			Target: []float64{target * p.cfg.OutputScale},
		})
	}
	if len(samples) == 0 {
		return neural.TrainResult{}
	}
	split := int(float64(len(samples)) * trainFraction)
	if split < 1 {
		split = 1
	}
	return p.net.Fit(samples[:split], samples[split:], cfg)
}
