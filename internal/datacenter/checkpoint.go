package datacenter

import "time"

// This file holds the hooks crash recovery needs: inspecting and
// reconstructing a center's lease book, and snapshotting the scalar
// accounting state that cannot be recomputed from the leases (the
// allocated vector depends on float summation order; the cost total
// includes long-expired leases).

// Released reports whether the lease has been released (expired, shed,
// lost to a center failure, or explicitly released).
func (l *Lease) Released() bool { return l.released }

// Leases returns a copy of the live lease list in acquisition order
// (the order shedToFit sheds from, newest last).
func (c *Center) Leases() []*Lease {
	out := make([]*Lease, len(c.leases))
	copy(out, c.leases)
	return out
}

// LeasesByTag returns the live leases carrying the tag, in acquisition
// order.
func (c *Center) LeasesByTag(tag string) []*Lease {
	var out []*Lease
	for _, l := range c.leases {
		if l.Tag == tag {
			out = append(out, l)
		}
	}
	return out
}

// Release drops one live lease before its expiry, freeing its
// resources. It exists for crash reconciliation — releasing leases a
// restarted operator no longer recognizes as its own (acquired after
// the checkpoint it restored from) — so the paid cost is not refunded:
// the allocation genuinely happened. Returns false when the lease is
// not live on this center.
func (c *Center) Release(l *Lease) bool {
	for i, cur := range c.leases {
		if cur == l {
			c.leases = append(c.leases[:i], c.leases[i+1:]...)
			l.released = true
			c.allocated = c.allocated.Sub(l.Alloc).ClampNonNegative()
			if len(c.leases) == 0 {
				c.allocated = Vector{}
			}
			return true
		}
	}
	return false
}

// Adopt re-creates a lease from checkpointed bookkeeping WITHOUT
// touching the center's allocation or cost accounting — those are
// restored wholesale via RestoreCheckpointState, and double-counting
// an adopted lease would corrupt both. Adoption order matters: it
// fixes the shed order and the float summation order, so callers must
// adopt in the original acquisition order.
func (c *Center) Adopt(alloc Vector, start, expires time.Time, tag string) *Lease {
	l := &Lease{Center: c, Alloc: alloc, Start: start, Expires: expires, Tag: tag}
	c.leases = append(c.leases, l)
	return l
}

// Tombstone builds an already-released lease remembering where a
// checkpointed allocation used to live. A restored operator holds one
// for each lease that did not survive the crash window: the tombstone
// is inert (it contributes no capacity and is never matched by the
// center) but still names its center, which routes the operator's
// same-tick failover re-acquisition around it.
func Tombstone(c *Center, alloc Vector, start, expires time.Time, tag string) *Lease {
	return &Lease{Center: c, Alloc: alloc, Start: start, Expires: expires, Tag: tag, released: true}
}

// CheckpointState is the scalar state a checkpoint must carry per
// center beyond the lease book.
type CheckpointState struct {
	// Allocated is the reserved-resource vector, bit-exact. It cannot
	// be recomputed as the sum of live leases: float accumulation order
	// and the residue of past expiries make the stored value the only
	// faithful one.
	Allocated Vector
	// TotalCost is the cumulative rental cost.
	TotalCost float64
	// Watermark is the latest time the center has observed.
	Watermark time.Time
	// FailDepth and Degraded reproduce the fault state: the refcount of
	// open full-outage windows and the raw degraded machine fraction.
	FailDepth int
	Degraded  float64
}

// CheckpointState captures the center's scalar accounting state.
func (c *Center) CheckpointState() CheckpointState {
	return CheckpointState{
		Allocated: c.allocated,
		TotalCost: c.totalCost,
		Watermark: c.watermark,
		FailDepth: c.failDepth,
		Degraded:  c.degraded,
	}
}

// RestoreCheckpointState overwrites the scalar accounting state with a
// checkpointed one. Callers re-adopt the lease book separately (see
// Adopt); the two must come from the same checkpoint.
func (c *Center) RestoreCheckpointState(s CheckpointState) {
	c.allocated = s.Allocated
	c.totalCost = s.TotalCost
	c.watermark = s.Watermark
	c.failDepth = s.FailDepth
	c.degraded = s.Degraded
}
