package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestServerEndpoints(t *testing.T) {
	o := New()
	o.Registry.Counter("mmogdc_failovers_total", "failovers").Add(2)
	o.Registry.Histogram("mmogdc_tick_duration_seconds", "tick time", TimeBuckets).Observe(0.01)
	o.Recorder.Record(Event{Tick: 3, Kind: EventFailover, Subject: "g/z1"})

	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics -> %d", code)
	}
	for _, want := range []string{
		"mmogdc_failovers_total 2",
		"# TYPE mmogdc_tick_duration_seconds histogram",
		`mmogdc_tick_duration_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/events")
	if code != 200 {
		t.Fatalf("/events -> %d", code)
	}
	var doc struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/events not JSON: %v\n%s", err, body)
	}
	if doc.Total != 1 || len(doc.Events) != 1 || doc.Events[0].Kind != EventFailover {
		t.Fatalf("/events doc = %+v", doc)
	}

	code, body = get("/debug/vars")
	if code != 200 || !strings.Contains(body, "mmogdc_metrics") {
		t.Fatalf("/debug/vars -> %d, mmogdc_metrics present=%v", code, strings.Contains(body, "mmogdc_metrics"))
	}

	code, body = get("/debug/pprof/goroutine?debug=1")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/goroutine -> %d", code)
	}

	if code, _ := get("/no-such"); code != 404 {
		t.Fatalf("unknown path -> %d, want 404", code)
	}
}

// TestEventsFilters covers the /events query parameters: kind narrows
// to one event kind, since drops events before a tick, and a
// non-integer since is a client error.
func TestEventsFilters(t *testing.T) {
	o := New()
	o.Recorder.Record(Event{Tick: 1, Kind: EventGrant, Subject: "g/z1"})
	o.Recorder.Record(Event{Tick: 5, Kind: EventOutage, Subject: "nyc"})
	o.Recorder.Record(Event{Tick: 9, Kind: EventGrant, Subject: "g/z2"})

	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	fetch := func(path string) (uint64, int, []Event) {
		t.Helper()
		code, body := get(path)
		if code != 200 {
			t.Fatalf("%s -> %d: %s", path, code, body)
		}
		var doc struct {
			Total   uint64  `json:"total"`
			Matched int     `json:"matched"`
			Events  []Event `json:"events"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("%s not JSON: %v\n%s", path, err, body)
		}
		return doc.Total, doc.Matched, doc.Events
	}

	if total, matched, events := fetch("/events?kind=grant"); total != 3 || matched != 2 ||
		len(events) != 2 || events[0].Tick != 1 || events[1].Tick != 9 {
		t.Fatalf("kind filter: total=%d matched=%d events=%+v", total, matched, events)
	}
	if _, matched, events := fetch("/events?since=5"); matched != 2 ||
		events[0].Kind != EventOutage || events[1].Tick != 9 {
		t.Fatalf("since filter: matched=%d events=%+v", matched, events)
	}
	if _, matched, events := fetch("/events?kind=grant&since=2"); matched != 1 ||
		events[0].Tick != 9 {
		t.Fatalf("combined filter: matched=%d events=%+v", matched, events)
	}
	if _, matched, _ := fetch("/events?kind=no-such"); matched != 0 {
		t.Fatalf("unknown kind matched %d events", matched)
	}
	if code, body := get("/events?since=abc"); code != http.StatusBadRequest {
		t.Fatalf("bad since -> %d (%s), want 400", code, body)
	}
}

// The observability server must carry slow-client protections: a
// client that connects and never finishes its request header cannot
// hold a connection (and its goroutine) open indefinitely.
func TestServeHardenedTimeouts(t *testing.T) {
	o := New()
	s, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := s.srv
	if srv.ReadHeaderTimeout != DefaultReadHeaderTimeout ||
		srv.ReadTimeout != DefaultReadTimeout ||
		srv.WriteTimeout != DefaultWriteTimeout ||
		srv.IdleTimeout != DefaultIdleTimeout ||
		srv.MaxHeaderBytes != DefaultMaxHeaderBytes {
		t.Fatalf("Serve left a timeout unset: %+v", srv)
	}
}

// Functional slowloris check with a shrunken header deadline: the
// server must hang up on a client that stalls mid-header.
func TestSlowClientEvicted(t *testing.T) {
	o := New()
	srv := HardenedServer(o.Handler())
	srv.ReadHeaderTimeout = 50 * time.Millisecond
	srv.ReadTimeout = 50 * time.Millisecond
	s, err := serveWith("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Start a request but never finish the header block.
	if _, err := io.WriteString(conn, "GET /metrics HTTP/1.1\r\nHost: x\r\n"); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		// A 408 response body also proves the eviction; either way the
		// next read must hit EOF.
		if _, err := io.ReadAll(conn); err != nil {
			t.Fatalf("read after eviction: %v", err)
		}
	}
}

// TestEventsCombinedFiltersAfterWrap drives ?kind= and ?since=
// together over a recorder whose ring has wrapped: the filters apply
// to the retained window only, while total/dropped keep reporting the
// full history, so a consumer can tell "no matches" from "matches
// already overwritten".
func TestEventsCombinedFiltersAfterWrap(t *testing.T) {
	o := &Obs{Registry: NewRegistry(), Recorder: NewRecorder(8), Clock: System}
	// 20 events, alternating kinds; the ring keeps ticks 12..19.
	for i := 0; i < 20; i++ {
		kind := EventGrant
		if i%2 == 1 {
			kind = EventRejection
		}
		o.Recorder.Record(Event{Tick: i, Kind: kind, Subject: "g"})
	}
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	fetch := func(path string) (total, dropped uint64, matched int, events []Event) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
		var doc struct {
			Total   uint64  `json:"total"`
			Dropped uint64  `json:"dropped"`
			Matched int     `json:"matched"`
			Events  []Event `json:"events"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc.Total, doc.Dropped, doc.Matched, doc.Events
	}

	// Retained grants are ticks 12, 14, 16, 18; since=15 keeps 16, 18.
	total, dropped, matched, events := fetch("/events?kind=grant&since=15")
	if total != 20 || dropped != 12 {
		t.Fatalf("total=%d dropped=%d, want 20/12", total, dropped)
	}
	if matched != 2 || len(events) != 2 ||
		events[0].Tick != 16 || events[1].Tick != 18 {
		t.Fatalf("combined filter after wrap: matched=%d events=%+v", matched, events)
	}
	for _, e := range events {
		if e.Kind != EventGrant {
			t.Fatalf("kind filter leaked %q", e.Kind)
		}
	}
	// since pointing below the retained window matches everything kept
	// of that kind — overwritten events are reported via dropped, not
	// resurrected.
	if _, _, matched, _ := fetch("/events?kind=rejection&since=0"); matched != 4 {
		t.Fatalf("rejection since=0 matched %d, want 4", matched)
	}
}
