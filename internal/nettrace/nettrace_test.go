package nettrace

import (
	"math"
	"testing"

	"mmogdc/internal/stats"
)

func TestArchetypeRoster(t *testing.T) {
	arch := Archetypes()
	if len(arch) != 9 {
		t.Fatalf("want 9 archetypes (8 traces, trace 5 twice), got %d", len(arch))
	}
	ids := map[string]bool{}
	for _, a := range arch {
		if ids[a.ID] {
			t.Errorf("duplicate archetype id %q", a.ID)
		}
		ids[a.ID] = true
	}
	for _, want := range []string{"Trace 0", "Trace 5a", "Trace 5b", "Trace 7"} {
		if !ids[want] {
			t.Errorf("missing archetype %q", want)
		}
	}
}

func TestArchetypeByID(t *testing.T) {
	a, err := ArchetypeByID("Trace 4")
	if err != nil {
		t.Fatal(err)
	}
	if a.Description == "" {
		t.Fatal("empty description")
	}
	if _, err := ArchetypeByID("Trace 99"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestGenerateSessionDeterministic(t *testing.T) {
	a, _ := ArchetypeByID("Trace 1")
	s1 := GenerateSession(a, 500, 7)
	s2 := GenerateSession(a, 500, 7)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
	s3 := GenerateSession(a, 500, 8)
	same := 0
	for i := range s1 {
		if s1[i] == s3[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds share %d/500 packets", same)
	}
}

func TestPacketBounds(t *testing.T) {
	for _, a := range Archetypes() {
		pkts := GenerateSession(a, 2000, 11)
		for i, p := range pkts {
			if p.SizeB < 20 || p.SizeB > 1400 {
				t.Fatalf("%s packet %d size %v out of [20, 1400]", a.ID, i, p.SizeB)
			}
			if p.IATms < 1 && a.ThinkShare == 0 {
				t.Fatalf("%s packet %d IAT %v < 1ms", a.ID, i, p.IATms)
			}
			if p.IATms <= 0 {
				t.Fatalf("%s packet %d non-positive IAT", a.ID, i)
			}
		}
	}
}

// sessionStats returns median size and median IAT for an archetype.
func sessionStats(t *testing.T, id string, seed uint64) (size, iat float64) {
	t.Helper()
	a, err := ArchetypeByID(id)
	if err != nil {
		t.Fatal(err)
	}
	pkts := GenerateSession(a, 5000, seed)
	return stats.Median(Sizes(pkts)), stats.Median(IATs(pkts))
}

func TestFastPacedInsensitiveToCrowding(t *testing.T) {
	// Section III-D: for fast-paced traces (T1 non-crowded, T6
	// crowded) the level of interaction does not change the load.
	s1, i1 := sessionStats(t, "Trace 1", 21)
	s6, i6 := sessionStats(t, "Trace 6", 22)
	if math.Abs(s1-s6)/s1 > 0.15 {
		t.Errorf("fast-paced sizes differ too much: %v vs %v", s1, s6)
	}
	if math.Abs(i1-i6)/i1 > 0.2 {
		t.Errorf("fast-paced IATs differ too much: %v vs %v", i1, i6)
	}
}

func TestMarketHasSimilarSizesButLargerIAT(t *testing.T) {
	// T2 (market) vs T3/T7: similar packet sizes, very different IAT —
	// trades require thinking time.
	s2, i2 := sessionStats(t, "Trace 2", 23)
	s7, i7 := sessionStats(t, "Trace 7", 24)
	if math.Abs(s2-s7)/s2 > 0.25 {
		t.Errorf("p2p sizes should be similar: %v vs %v", s2, s7)
	}
	if i2 < 1.5*i7 {
		t.Errorf("market IAT %v should far exceed T7 IAT %v", i2, i7)
	}
}

func TestGroupInteractionExtremes(t *testing.T) {
	// T4 (group interaction): lower IAT than every other trace, and
	// larger packets.
	_, iatT4 := sessionStats(t, "Trace 4", 25)
	sizeT4, _ := sessionStats(t, "Trace 4", 25)
	for _, a := range Archetypes() {
		if a.ID == "Trace 4" {
			continue
		}
		size, iat := sessionStats(t, a.ID, 26)
		if iat <= iatT4 {
			t.Errorf("%s IAT %v should exceed T4's %v", a.ID, iat, iatT4)
		}
		if size >= sizeT4 {
			t.Errorf("%s size %v should be below T4's %v", a.ID, size, sizeT4)
		}
	}
}

func TestValidationPairNearlyIdentical(t *testing.T) {
	// T5a and T5b come from the same environment at consecutive
	// times: distributions must agree closely despite different seeds.
	sa, ia := sessionStats(t, "Trace 5a", 31)
	sb, ib := sessionStats(t, "Trace 5b", 32)
	if math.Abs(sa-sb)/sa > 0.1 {
		t.Errorf("validation pair sizes differ: %v vs %v", sa, sb)
	}
	if math.Abs(ia-ib)/ia > 0.1 {
		t.Errorf("validation pair IATs differ: %v vs %v", ia, ib)
	}
}

func TestBandwidthOrdering(t *testing.T) {
	// Per-client bandwidth (size/IAT) must rank group interaction and
	// fast-paced play above slow p2p sessions.
	bw := func(id string) float64 {
		a, _ := ArchetypeByID(id)
		return BandwidthMBps(GenerateSession(a, 5000, 41))
	}
	if bw("Trace 4") <= bw("Trace 2") {
		t.Error("group interaction should out-consume the market")
	}
	if bw("Trace 6") <= bw("Trace 0") {
		t.Error("fast-paced play should out-consume content creation")
	}
}

func TestBandwidthEmptyAndZero(t *testing.T) {
	if BandwidthMBps(nil) != 0 {
		t.Fatal("empty session bandwidth should be 0")
	}
	if BandwidthMBps([]Packet{{SizeB: 100, IATms: 0}}) != 0 {
		t.Fatal("zero-duration session bandwidth should be 0")
	}
}

func TestSizesAndIATs(t *testing.T) {
	pkts := []Packet{{SizeB: 10, IATms: 1}, {SizeB: 20, IATms: 2}}
	if s := Sizes(pkts); s[0] != 10 || s[1] != 20 {
		t.Fatalf("Sizes = %v", s)
	}
	if i := IATs(pkts); i[0] != 1 || i[1] != 2 {
		t.Fatalf("IATs = %v", i)
	}
}

func TestFig4(t *testing.T) {
	out := Fig4(1000, 1)
	if len(out) != 9 {
		t.Fatalf("Fig4 returned %d sessions", len(out))
	}
	for _, s := range out {
		if s.Size.N() != 1000 || s.IAT.N() != 1000 {
			t.Fatalf("%s: wrong sample counts", s.Archetype.ID)
		}
		// The truncation points used in the paper's plots must cover
		// most of the mass.
		if p := s.Size.At(500); p < 0.5 {
			t.Errorf("%s: only %.0f%% of packets below 500 B", s.Archetype.ID, p*100)
		}
		if p := s.IAT.At(600); p < 0.5 {
			t.Errorf("%s: only %.0f%% of IATs below 600 ms", s.Archetype.ID, p*100)
		}
	}
}
