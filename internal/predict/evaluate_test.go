package predict

import (
	"math"
	"testing"
)

func TestEvaluateLastValueKnown(t *testing.T) {
	// Signal 10, 20, 30: last-value predicts 10 then 20; errors are
	// 10 + 10 = 20 over a volume of 60 -> 33.33%.
	got := Evaluate(NewLastValue(), []float64{10, 20, 30})
	if math.Abs(got-100.0/3) > 1e-9 {
		t.Fatalf("error = %v, want 33.33", got)
	}
}

func TestEvaluateZeroVolume(t *testing.T) {
	if got := Evaluate(NewLastValue(), []float64{0, 0, 0}); got != 0 {
		t.Fatalf("zero-volume error = %v", got)
	}
	if got := Evaluate(NewLastValue(), nil); got != 0 {
		t.Fatalf("empty-signal error = %v", got)
	}
}

func TestEvaluateZonesMatchesSingleZone(t *testing.T) {
	sig := []float64{5, 8, 2, 9, 4, 7}
	single := Evaluate(NewMovingAverage(3), sig)
	multi := EvaluateZones(NewMovingAverage(3), [][]float64{sig})
	if math.Abs(single-multi) > 1e-9 {
		t.Fatalf("single %v != zones %v", single, multi)
	}
	if EvaluateZones(NewLastValue(), nil) != 0 {
		t.Fatal("no zones should give 0")
	}
}

func TestEvaluateZonesAggregates(t *testing.T) {
	// Two zones: one constant (perfectly predicted), one alternating.
	constant := []float64{10, 10, 10, 10}
	jumpy := []float64{0, 10, 0, 10}
	err2 := EvaluateZones(NewLastValue(), [][]float64{constant, jumpy})
	// Last value on jumpy: errors 10, 10, 10 = 30. Volume = 40 + 20.
	want := 30.0 / 60 * 100
	if math.Abs(err2-want) > 1e-9 {
		t.Fatalf("aggregate error = %v, want %v", err2, want)
	}
}

func TestReplayPredictionsShape(t *testing.T) {
	sig := []float64{1, 2, 3, 4}
	preds := ReplayPredictions(NewLastValue(), sig)
	if len(preds) != len(sig) {
		t.Fatalf("len = %d", len(preds))
	}
	if preds[0] != 0 {
		t.Fatalf("prior prediction = %v", preds[0])
	}
	for i := 1; i < len(sig); i++ {
		if preds[i] != sig[i-1] {
			t.Fatalf("preds[%d] = %v, want %v", i, preds[i], sig[i-1])
		}
	}
}

func TestTimePredictions(t *testing.T) {
	sig := make([]float64, 300)
	for i := range sig {
		sig[i] = float64(i % 17)
	}
	s, err := TimePredictions(NewSlidingWindowMedian(6), sig)
	if err != nil {
		t.Fatal(err)
	}
	if s.Min < 0 || s.Median <= 0 || s.Max < s.Median {
		t.Fatalf("timing summary implausible: %+v", s)
	}
}

func TestZoneSet(t *testing.T) {
	z := NewZoneSet(NewLastValue(), 3)
	if z.Len() != 3 {
		t.Fatalf("Len = %d", z.Len())
	}
	if err := z.Observe([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	each := z.PredictEach()
	if each[0] != 1 || each[1] != 2 || each[2] != 3 {
		t.Fatalf("PredictEach = %v", each)
	}
	if z.PredictTotal() != 6 {
		t.Fatalf("PredictTotal = %v", z.PredictTotal())
	}
	if err := z.Observe([]float64{1}); err == nil {
		t.Fatal("wrong zone count should error")
	}
}

func TestEvaluateSmootherBeatsLastValueOnNoise(t *testing.T) {
	// For pure i.i.d. noise around a level, averaging beats last-value.
	sig := make([]float64, 500)
	state := uint64(12345)
	for i := range sig {
		state = state*6364136223846793005 + 1442695040888963407
		sig[i] = 100 + float64(state%21) - 10
	}
	lv := Evaluate(NewLastValue(), sig)
	avg := Evaluate(NewAverage(), sig)
	if avg >= lv {
		t.Fatalf("average %v should beat last value %v on stationary noise", avg, lv)
	}
}

func TestEvaluateHorizonOneMatchesEvaluateRegion(t *testing.T) {
	// At h=1 the horizon evaluator scores the same forecasts as
	// Evaluate, just normalized over the scored region.
	sig := []float64{10, 20, 30, 25, 35, 40}
	h1 := EvaluateHorizon(NewLastValue(), sig, 1)
	// Hand-computed: predictions 10,20,30,25,35 vs 20,30,25,35,40.
	// errors 10+10+5+10+5 = 40 over volume 150.
	want := 40.0 / 150 * 100
	if math.Abs(h1-want) > 1e-9 {
		t.Fatalf("h=1 error = %v, want %v", h1, want)
	}
}

func TestEvaluateHorizonGrowsWithH(t *testing.T) {
	// On a random-walk-ish signal, farther horizons are harder.
	state := uint64(3)
	sig := make([]float64, 400)
	x := 100.0
	for i := range sig {
		state = state*6364136223846793005 + 1442695040888963407
		x += float64(state%21) - 10
		if x < 1 {
			x = 1
		}
		sig[i] = x
	}
	e1 := EvaluateHorizon(NewLastValue(), sig, 1)
	e5 := EvaluateHorizon(NewLastValue(), sig, 5)
	if e5 <= e1 {
		t.Fatalf("h=5 error %v should exceed h=1 error %v", e5, e1)
	}
}

func TestEvaluateHorizonEdgeCases(t *testing.T) {
	if EvaluateHorizon(NewLastValue(), []float64{1, 2}, 5) != 0 {
		t.Fatal("signal shorter than horizon should score 0")
	}
	if EvaluateHorizon(NewLastValue(), nil, 0) != 0 {
		t.Fatal("empty signal should score 0")
	}
	// h<1 clamps to 1.
	sig := []float64{10, 20, 30}
	if EvaluateHorizon(NewLastValue(), sig, 0) != EvaluateHorizon(NewLastValue(), sig, 1) {
		t.Fatal("h=0 should behave like h=1")
	}
}

func TestEvaluateHorizonHoltBeatsLastValueOnRamp(t *testing.T) {
	// Multi-step forecasts magnify the trend advantage: Holt
	// extrapolates the slope h steps out, last-value cannot.
	sig := make([]float64, 300)
	for i := range sig {
		sig[i] = 100 + 3*float64(i)
	}
	holt := EvaluateHorizon(NewHolt(0.5, 0.3), sig, 5)
	lv := EvaluateHorizon(NewLastValue(), sig, 5)
	if holt >= lv/2 {
		t.Fatalf("Holt h=5 error %v should be far below last value %v", holt, lv)
	}
}
