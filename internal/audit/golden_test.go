package audit

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mmogdc/internal/core"
	"mmogdc/internal/datacenter"
	"mmogdc/internal/faults"
	"mmogdc/internal/geo"
	"mmogdc/internal/mmog"
	"mmogdc/internal/obs"
	"mmogdc/internal/predict"
	"mmogdc/internal/trace"
)

// -update regenerates the golden audit report:
//
//	go test ./internal/audit -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden audit report")

// auditConfig is a chaos-grade scenario exercising every event kind
// the audit classifies: scheduled outages, stochastic faults (full and
// partial outages, rejections with retries, partial grants, monitoring
// dropouts), and same-tick failovers. Workers must stay 1 and the
// bundle's clock a ManualClock so the trace — and therefore the
// rendered report — is byte-deterministic.
func auditConfig(o *obs.Obs) core.Config {
	mkDS := func(seed uint64) *trace.Dataset {
		return trace.Generate(trace.Config{Seed: seed, Days: 1, Regions: []trace.Region{
			{ID: 0, Name: "Europe", Location: geo.London, Groups: 6},
			{ID: 1, Name: "US East Coast", Location: geo.NewYork, UTCOffsetHours: -5, Groups: 4},
		}})
	}
	gA := mmog.NewGame("A", mmog.GenreMMORPG)
	gB := mmog.NewGame("B", mmog.GenreRPG)
	gB.Update = mmog.UpdateLinear

	var bulk datacenter.Vector
	bulk[datacenter.CPU] = 0.25
	policy := datacenter.HostingPolicy{Name: "fine", Bulk: bulk, TimeBulk: time.Hour}
	centers := []*datacenter.Center{
		datacenter.NewCenter("london", geo.London, 40, policy),
		datacenter.NewCenter("nyc", geo.NewYork, 30, policy),
	}

	return core.Config{
		Workers:      1,
		Centers:      centers,
		SafetyMargin: 0.1,
		Failures: []core.Failure{
			{Center: "nyc", AtTick: 0, DurationTicks: 12},
			{Center: "london", AtTick: 300, DurationTicks: 40},
		},
		Faults: &faults.Config{
			Seed:             99,
			MTBFTicks:        150,
			MTTRTicks:        25,
			DegradedShare:    0.5,
			RejectProb:       0.05,
			PartialGrantProb: 0.05,
			DropoutProb:      0.05,
		},
		Workloads: []core.Workload{
			{Game: gA, Dataset: mkDS(17), Predictor: predict.NewMovingAverage(6)},
			{Game: gB, Dataset: mkDS(23), Predictor: predict.NewMovingAverage(6)},
		},
		Obs: o,
	}
}

// runArtifacts executes the scenario once and returns the three audit
// inputs exactly as a CLI run would produce them: the JSONL event
// stream, the metrics document bytes, and the Chrome trace bytes.
func runArtifacts(t *testing.T) (eventsJSONL, metricsJSON, traceJSON []byte, res *core.Result) {
	t.Helper()
	o := obs.New()
	o.Clock = obs.NewManualClock(time.Unix(0, 0), time.Millisecond)
	// Keep every event: the census-vs-Recorder.Total check needs the
	// sink and the ring to agree on the whole story.
	o.Recorder = obs.NewRecorder(1 << 17)
	var sink bytes.Buffer
	o.Recorder.SetSink(&sink)
	o.EnableTracing(0)

	res, err := core.Run(auditConfig(o))
	if err != nil {
		t.Fatal(err)
	}

	metricsJSON, err = json.MarshalIndent(BuildMetricsDoc(o, res), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	if err := o.Tracer.WriteTrace(&traceBuf); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes(), metricsJSON, traceBuf.Bytes(), res
}

// TestAuditGolden pins the full toolchain end to end: simulate with
// deterministic telemetry, round-trip all three artifacts through the
// loaders, and compare the rendered audit byte-for-byte. The embedded
// consistency checks cross-verify the event stream against the
// Result-derived metrics document.
func TestAuditGolden(t *testing.T) {
	eventsJSONL, metricsJSON, traceJSON, res := runArtifacts(t)

	events, err := LoadEvents(bytes.NewReader(eventsJSONL))
	if err != nil {
		t.Fatal(err)
	}
	md, err := LoadMetrics(bytes.NewReader(metricsJSON))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace(bytes.NewReader(traceJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	rp := Analyze(events, md, tr)

	// The breach episodes must replay exactly the Result's disruptive
	// ticks, and the stream must carry every recorded event.
	if rp.BreachTicks != res.Events {
		t.Errorf("breach ticks = %d, want Result.Events = %d", rp.BreachTicks, res.Events)
	}
	if uint64(rp.EventTotal) != md.Recorder.Total {
		t.Errorf("event stream length = %d, want Recorder.Total = %d", rp.EventTotal, md.Recorder.Total)
	}
	for _, c := range rp.Checks {
		if !c.OK {
			t.Errorf("consistency check %q failed: want %s, got %s", c.Name, c.Want, c.Got)
		}
	}
	if res.Events == 0 || res.Resilience.Failovers == 0 || res.Resilience.Rejections == 0 {
		t.Fatalf("degenerate scenario — audit exercises nothing: events=%d resilience=%+v",
			res.Events, res.Resilience)
	}
	if rp.FailoverLatency.Count == 0 {
		t.Error("no acquire.failover spans in the trace")
	}

	var got bytes.Buffer
	if err := rp.Render(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "audit.md")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("audit report drifted from golden (regenerate deliberately with -update)\n--- got ---\n%s", got.String())
	}
}

// TestAuditDeterministic runs the toolchain twice and requires byte-
// identical artifacts and report — the property the golden file rests
// on.
func TestAuditDeterministic(t *testing.T) {
	e1, m1, t1, _ := runArtifacts(t)
	e2, m2, t2, _ := runArtifacts(t)
	if !bytes.Equal(e1, e2) {
		t.Error("event streams differ across identical runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics documents differ across identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("traces differ across identical runs")
	}
}

// TestTraceIsValidChromeJSON validates the exported trace against the
// trace_event schema essentials: one JSON document with a traceEvents
// array whose entries carry a known ph, and b/e async records that
// pair up by id.
func TestTraceIsValidChromeJSON(t *testing.T) {
	_, _, traceJSON, _ := runArtifacts(t)
	if !json.Valid(traceJSON) {
		t.Fatal("trace is not valid JSON")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceJSON, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	asyncDepth := map[string]int{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("event %d: complete span without dur: %v", i, ev)
			}
		case "i":
			if s, _ := ev["s"].(string); s == "" {
				t.Fatalf("event %d: instant without scope: %v", i, ev)
			}
		case "b":
			id, _ := ev["id"].(string)
			asyncDepth[id]++
		case "e":
			id, _ := ev["id"].(string)
			asyncDepth[id]--
			if asyncDepth[id] < 0 {
				t.Fatalf("event %d: async end before begin for id %s", i, id)
			}
		default:
			t.Fatalf("event %d: unexpected ph %q", i, ph)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event %d: missing ts: %v", i, ev)
		}
	}
	for id, d := range asyncDepth {
		if d != 0 {
			// A window still open at run end is legitimate (the center
			// never recovered); a negative depth was caught above.
			if d < 0 {
				t.Errorf("async id %s closed more than it opened", id)
			}
		}
	}
}
